//! Property-based invariants of the ABR client state machines, plus the
//! backend-determinism contract for full ABR sessions.
//!
//! The ladder policy ([`AbrPolicy`]) and playout buffer ([`AbrBuffer`])
//! are pure state machines, so proptest drives them directly with
//! randomized schedules: the buffer can never go negative, the ladder is
//! monotone in buffer level, and a session whose sustained throughput
//! covers the lowest rung never stalls after startup. The one
//! network-level property — a full QBone ABR session is bit-identical
//! under both `DSV_QUEUE` event-queue backends — closes the loop from
//! the state machines to the committed goldens.
//!
//! [`AbrPolicy`]: dsv_stream::abr::AbrPolicy
//! [`AbrBuffer`]: dsv_stream::abr::AbrBuffer

use std::sync::Mutex;

use dsv_core::prelude::*;
use dsv_core::smoothing::DEPTH_10MTU;
use dsv_sim::{SimDuration, SimTime};
use dsv_stream::abr::{segment_bytes, AbrBuffer, AbrPolicy};
use proptest::prelude::*;

/// Serializes tests that switch backends via the environment.
static ENV_LOCK: Mutex<()> = Mutex::new(());

/// A random ladder of 1–6 rungs plus a positive step. Callers sort the
/// rungs ascending (the vendored proptest has no mapping combinator).
fn ladder_strategy() -> impl Strategy<Value = (Vec<u64>, u64)> {
    (
        prop::collection::vec(50_000u64..5_000_000, 1..6),
        500_000u64..8_000_000,
    )
}

/// Sorts a raw ladder draw into the ascending form [`AbrPolicy`] needs.
fn ascending(lad: (Vec<u64>, u64)) -> (Vec<u64>, u64) {
    let (mut rungs, step) = lad;
    rungs.sort_unstable();
    (rungs, step)
}

proptest! {
    /// The playout buffer never goes negative and its stall accounting
    /// is consistent for any completion schedule: stalls only grow,
    /// rebuffer events never outnumber completions, and the buffered
    /// content never exceeds what was actually delivered.
    #[test]
    fn buffer_never_negative_and_stalls_are_consistent(
        gaps in prop::collection::vec(0u64..8_000_000_000, 1..60),
        seg_us in 200_000u64..5_000_000,
    ) {
        let mut b = AbrBuffer::new();
        let seg = SimDuration::from_micros(seg_us);
        let mut now = SimTime::ZERO;
        let mut last_stall = SimDuration::ZERO;
        for (i, &gap) in gaps.iter().enumerate() {
            now += SimDuration::from_nanos(gap);
            b.on_segment_complete(now, seg);
            // Never negative: buffer_at saturates at zero by contract,
            // and right after a completion it holds at least nothing and
            // at most everything delivered so far.
            let buf = b.buffer_at(now);
            prop_assert!(buf >= SimDuration::ZERO);
            prop_assert!(buf <= seg * (i as u64 + 1), "buffer exceeds delivered content");
            // Stall time is monotone and rebuffers bounded by arrivals.
            prop_assert!(b.stall >= last_stall, "stall time shrank");
            last_stall = b.stall;
            prop_assert!(b.rebuffers as usize <= i + 1);
            // Probing the buffer far in the future still never underflows.
            prop_assert_eq!(
                b.buffer_at(now + seg * 1000),
                SimDuration::ZERO,
                "drained buffer must read zero, not wrap"
            );
        }
    }

    /// The ladder choice is monotone in buffer level (more buffered
    /// content never selects a lower rung) and capped by the top rung.
    #[test]
    fn ladder_is_monotone_in_buffer_level(
        lad in ladder_strategy(),
        est in 0u64..6_000_000,
        probes in prop::collection::vec(0u64..60_000_000, 2..40),
    ) {
        let (rungs, step) = ascending(lad);
        let p = AbrPolicy::new(rungs.clone(), step);
        let mut sorted = probes;
        sorted.sort_unstable();
        let mut last = 0usize;
        for &buffer_us in &sorted {
            let r = p.choose(buffer_us, est);
            prop_assert!(r < rungs.len());
            prop_assert!(r >= last, "ladder dropped as the buffer grew");
            last = r;
        }
    }

    /// The ladder choice is also monotone in the throughput estimate.
    #[test]
    fn ladder_is_monotone_in_throughput_estimate(
        lad in ladder_strategy(),
        buffer_us in 0u64..60_000_000,
        ests in prop::collection::vec(0u64..8_000_000, 2..40),
    ) {
        let (rungs, step) = ascending(lad);
        let p = AbrPolicy::new(rungs, step);
        let mut ests = ests;
        ests.sort_unstable();
        let mut last = 0usize;
        for &est in &ests {
            let r = p.choose(buffer_us, est);
            prop_assert!(r >= last, "ladder dropped as the estimate grew");
            last = r;
        }
    }

    /// The no-stall guarantee: drive a whole idealized session through
    /// the pure state machines at a constant delivery rate at least the
    /// lowest rung. Every chosen rung is then affordable (the rate cap
    /// picks a rung the throughput sustains), each fetch completes
    /// within one segment duration, and the buffer never runs dry after
    /// the first segment: zero rebuffers, zero stall.
    #[test]
    fn no_stall_when_throughput_covers_the_lowest_rung(
        lad in ladder_strategy(),
        headroom_pct in 0u64..300,
        segments in 2u32..40,
        seg_us in 500_000u64..4_000_000,
    ) {
        let (rungs, step) = ascending(lad);
        let bps = rungs[0] + rungs[0] * headroom_pct / 100;
        let p = AbrPolicy::new(rungs, step);
        let mut b = AbrBuffer::new();
        let seg_dur = SimDuration::from_micros(seg_us);
        let mut now = SimTime::ZERO;
        let mut est = 0u64;
        for _ in 0..segments {
            let buffer_us = b.buffer_at(now).as_nanos() / 1_000;
            let rung = p.choose(buffer_us, est);
            let bytes = segment_bytes(p.rungs[rung], seg_us);
            // Constant-rate delivery: the fetch takes bytes·8/bps.
            let fetch = SimDuration::from_nanos(bytes * 8 * 1_000_000_000 / bps);
            now += fetch;
            b.on_segment_complete(now, seg_dur);
            est = bps;
        }
        prop_assert_eq!(b.rebuffers, 0, "sustained throughput must not stall");
        prop_assert_eq!(b.stall, SimDuration::ZERO);
    }

    /// Rate-cap safety: the chosen rung's encoding rate never exceeds
    /// the throughput estimate once an estimate exists (the buffer cap
    /// can only push the choice *down*).
    #[test]
    fn chosen_rung_is_affordable(
        lad in ladder_strategy(),
        buffer_us in 0u64..60_000_000,
        est in 1u64..8_000_000,
    ) {
        let (rungs, step) = ascending(lad);
        let p = AbrPolicy::new(rungs.clone(), step);
        let r = p.choose(buffer_us, est);
        if rungs[0] <= est {
            prop_assert!(p.rungs[r] <= est, "rung {r} not affordable at {est}");
        } else {
            prop_assert_eq!(r, 0, "below the floor rung the policy pins to 0");
        }
    }
}

#[test]
fn abr_session_is_deterministic_across_queue_backends() {
    // The full QBone ABR session — ladder, mini-TCP, policer, WAN path —
    // must produce a byte-identical FlowsOutcome on both event-queue
    // backends, or the committed goldens would depend on which backend
    // regenerated them.
    let _guard = ENV_LOCK.lock().unwrap();
    let cfg = SmoothingConfig::new(
        ClipId2::Lost,
        1_500_000,
        SmoothingServer::Abr,
        EfProfile::new(1_200_000, DEPTH_10MTU),
    );
    let mut outs = Vec::new();
    for backend in ["wheel", "heap"] {
        std::env::set_var("DSV_QUEUE", backend);
        outs.push(serde_json::to_string(&run_smoothing(&cfg)).unwrap());
    }
    std::env::remove_var("DSV_QUEUE");
    assert_eq!(outs[0], outs[1], "ABR outcome differs between backends");
}
