//! Whole-pipeline determinism: a run is a pure function of its
//! configuration and seed, from packet trace through VQM score. This is
//! the property that makes every number in EXPERIMENTS.md reproducible by
//! `cargo run`.

use dsv_core::prelude::*;

#[test]
fn qbone_runs_are_bit_identical() {
    let cfg = QboneConfig::new(
        ClipId2::Lost,
        1_500_000,
        EfProfile::new(1_600_000, DEPTH_2MTU),
    );
    let (a_out, a_rep) = run_qbone_detailed(&cfg);
    let (b_out, b_rep) = run_qbone_detailed(&cfg);
    assert_eq!(a_out.quality, b_out.quality);
    assert_eq!(a_out.frame_loss, b_out.frame_loss);
    assert_eq!(a_out.policer_drops, b_out.policer_drops);
    assert_eq!(a_rep.arrival, b_rep.arrival);
    assert_eq!(a_rep.playback.displayed, b_rep.playback.displayed);
}

#[test]
fn local_runs_are_bit_identical_including_cross_traffic() {
    let mut cfg = LocalConfig::new(
        ClipId2::Lost,
        EfProfile::new(1_300_000, DEPTH_3MTU),
        LocalTransport::Udp,
    );
    cfg.cross_traffic = true;
    let a = run_local(&cfg);
    let b = run_local(&cfg);
    assert_eq!(a.quality, b.quality);
    assert_eq!(a.rx_packets, b.rx_packets);
    assert_eq!(a.mean_delay_ms, b.mean_delay_ms);
}

#[test]
fn seeds_change_cross_traffic_but_not_the_regime() {
    let mk = |seed: u64| {
        let mut cfg = LocalConfig::new(
            ClipId2::Lost,
            EfProfile::new(1_600_000, DEPTH_3MTU),
            LocalTransport::Udp,
        );
        cfg.cross_traffic = true;
        cfg.seed = seed;
        run_local(&cfg)
    };
    let a = mk(1);
    let b = mk(2);
    // Different random background, same conclusion.
    assert!(
        (a.quality - b.quality).abs() < 0.2,
        "seeds flipped the regime: {} vs {}",
        a.quality,
        b.quality
    );
}

#[test]
fn parallel_sweep_is_byte_identical_to_serial() {
    // The runner fans grid points across threads; because every outcome
    // is a pure function of its config, the serialized SweepResult must
    // be byte-for-byte what a serial run produces.
    let base = QboneConfig::new(
        ClipId2::Lost,
        1_000_000,
        EfProfile::new(1_000_000, DEPTH_2MTU),
    );
    let rates = [900_000u64, 1_400_000];
    let depths = [DEPTH_2MTU, DEPTH_3MTU];
    let serial = Runner::serial().qbone_sweep(&base, &rates, &depths, "2x2 determinism grid");
    let parallel = Runner::serial().with_threads(8).qbone_sweep(
        &base,
        &rates,
        &depths,
        "2x2 determinism grid",
    );
    assert_eq!(
        serde_json::to_string_pretty(&serial).unwrap(),
        serde_json::to_string_pretty(&parallel).unwrap(),
        "parallel sweep diverged from serial"
    );
}

#[test]
fn cached_sweep_replays_the_computed_result() {
    let dir = std::env::temp_dir().join(format!("dsv-determinism-cache-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let base = QboneConfig::new(
        ClipId2::Lost,
        1_000_000,
        EfProfile::new(1_000_000, DEPTH_2MTU),
    );
    let rates = [900_000u64, 1_400_000];
    let depths = [DEPTH_2MTU, DEPTH_3MTU];
    let runner = Runner::serial().with_cache(Some(dir.clone()));
    let cold = runner.qbone_sweep(&base, &rates, &depths, "cache grid");
    assert_eq!(
        std::fs::read_dir(&dir).unwrap().count(),
        4,
        "each grid point persists one cache entry"
    );
    let warm = runner.qbone_sweep(&base, &rates, &depths, "cache grid");
    assert_eq!(
        serde_json::to_string_pretty(&cold).unwrap(),
        serde_json::to_string_pretty(&warm).unwrap(),
        "cache replay diverged from computation"
    );
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn sweep_encodes_each_artifact_at_most_once() {
    use dsv_core::artifacts::{self, Codec};
    let _guard = artifacts::force_sharing(true);
    // An encoding rate no other test uses, so the process-wide counter
    // for this key is entirely ours.
    let enc = 1_234_567u64;
    let base = QboneConfig::new(ClipId2::Lost, enc, EfProfile::new(enc, DEPTH_2MTU));
    let rates = [900_011u64, 1_400_011];
    let depths = [DEPTH_2MTU, DEPTH_3MTU];
    Runner::serial()
        .with_threads(4)
        .qbone_sweep(&base, &rates, &depths, "at-most-once grid");
    assert_eq!(
        artifacts::encode_runs(dsv_media::scene::ClipId::Lost, Codec::Mpeg1, enc),
        1,
        "4 grid points and 4 workers must share one encode"
    );
}

#[test]
fn shared_artifacts_leave_sweep_output_byte_identical() {
    use dsv_core::artifacts;
    let base = QboneConfig::new(
        ClipId2::Lost,
        1_000_000,
        EfProfile::new(1_000_000, DEPTH_2MTU),
    );
    let rates = [900_000u64, 1_400_000];
    let depths = [DEPTH_2MTU];
    let unshared = {
        let _guard = artifacts::force_sharing(false);
        Runner::serial().qbone_sweep(&base, &rates, &depths, "sharing grid")
    };
    let shared = {
        let _guard = artifacts::force_sharing(true);
        artifacts::clear();
        Runner::serial().qbone_sweep(&base, &rates, &depths, "sharing grid")
    };
    assert_eq!(
        serde_json::to_string_pretty(&unshared).unwrap(),
        serde_json::to_string_pretty(&shared).unwrap(),
        "artifact sharing changed sweep output"
    );
}

#[test]
fn tcp_runs_are_bit_identical() {
    let mut cfg = LocalConfig::new(
        ClipId2::Lost,
        EfProfile::new(1_300_000, DEPTH_3MTU),
        LocalTransport::Tcp,
    );
    cfg.shaped = true;
    let a = run_local(&cfg);
    let b = run_local(&cfg);
    assert_eq!(a.quality, b.quality);
    assert_eq!(a.rx_packets, b.rx_packets);
}
