//! Whole-pipeline determinism: a run is a pure function of its
//! configuration and seed, from packet trace through VQM score. This is
//! the property that makes every number in EXPERIMENTS.md reproducible by
//! `cargo run`.

use dsv_core::prelude::*;

#[test]
fn qbone_runs_are_bit_identical() {
    let cfg = QboneConfig::new(
        ClipId2::Lost,
        1_500_000,
        EfProfile::new(1_600_000, DEPTH_2MTU),
    );
    let (a_out, a_rep) = run_qbone_detailed(&cfg);
    let (b_out, b_rep) = run_qbone_detailed(&cfg);
    assert_eq!(a_out.quality, b_out.quality);
    assert_eq!(a_out.frame_loss, b_out.frame_loss);
    assert_eq!(a_out.policer_drops, b_out.policer_drops);
    assert_eq!(a_rep.arrival, b_rep.arrival);
    assert_eq!(a_rep.playback.displayed, b_rep.playback.displayed);
}

#[test]
fn local_runs_are_bit_identical_including_cross_traffic() {
    let mut cfg = LocalConfig::new(
        ClipId2::Lost,
        EfProfile::new(1_300_000, DEPTH_3MTU),
        LocalTransport::Udp,
    );
    cfg.cross_traffic = true;
    let a = run_local(&cfg);
    let b = run_local(&cfg);
    assert_eq!(a.quality, b.quality);
    assert_eq!(a.rx_packets, b.rx_packets);
    assert_eq!(a.mean_delay_ms, b.mean_delay_ms);
}

#[test]
fn seeds_change_cross_traffic_but_not_the_regime() {
    let mk = |seed: u64| {
        let mut cfg = LocalConfig::new(
            ClipId2::Lost,
            EfProfile::new(1_600_000, DEPTH_3MTU),
            LocalTransport::Udp,
        );
        cfg.cross_traffic = true;
        cfg.seed = seed;
        run_local(&cfg)
    };
    let a = mk(1);
    let b = mk(2);
    // Different random background, same conclusion.
    assert!(
        (a.quality - b.quality).abs() < 0.2,
        "seeds flipped the regime: {} vs {}",
        a.quality,
        b.quality
    );
}

#[test]
fn tcp_runs_are_bit_identical() {
    let mut cfg = LocalConfig::new(
        ClipId2::Lost,
        EfProfile::new(1_300_000, DEPTH_3MTU),
        LocalTransport::Tcp,
    );
    cfg.shaped = true;
    let a = run_local(&cfg);
    let b = run_local(&cfg);
    assert_eq!(a.quality, b.quality);
    assert_eq!(a.rx_packets, b.rx_packets);
}
