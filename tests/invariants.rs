//! Property-based invariants across the core data structures, checked
//! with randomized traffic (proptest). These are the contracts DESIGN.md
//! commits to: byte-accurate conformance, order preservation, playback
//! schedule sanity, VQM score bounds.

use dsv_diffserv::prelude::*;
use dsv_media::features::FeatureFrame;
use dsv_net::prelude::*;
use dsv_sim::{EventQueue, SimTime};
use dsv_stream::playback::{playback_schedule, PlaybackConfig};
use dsv_vqm::Vqm;
use proptest::prelude::*;

fn pkt(id: u64, size: u32) -> Packet<()> {
    Packet {
        id: PacketId(id),
        flow: FlowId(1),
        src: NodeId(0),
        dst: NodeId(1),
        size,
        dscp: Dscp::BEST_EFFORT,
        proto: Proto::Udp,
        fragment: None,
        sent_at: SimTime::ZERO,
        payload: (),
    }
}

proptest! {
    /// Over any arrival pattern, a policer admits at most
    /// `depth + rate·Δt/8` bytes — the token-bucket conformance bound.
    #[test]
    fn policer_conformance_bound(
        rate in 100_000u64..10_000_000,
        depth in 1500u32..20_000,
        arrivals in prop::collection::vec((0u64..5_000_000, 64u32..1500), 1..200),
    ) {
        let mut p = Policer::car_drop(rate, depth);
        // Sort arrival offsets to get a valid (monotone) schedule.
        let mut times: Vec<(u64, u32)> = arrivals;
        times.sort_by_key(|t| t.0);
        let mut accepted: u64 = 0;
        let mut last_t = 0u64;
        for (i, &(t_ns, size)) in times.iter().enumerate() {
            last_t = t_ns;
            if let PolicerVerdict::Pass(_) =
                p.police(SimTime::from_nanos(t_ns), pkt(i as u64, size))
            {
                accepted += size as u64;
            }
        }
        let window_secs = last_t as f64 / 1e9;
        let bound = depth as f64 + rate as f64 * window_secs / 8.0;
        prop_assert!(accepted as f64 <= bound + 1.0,
            "accepted {accepted} > bound {bound}");
    }

    /// A shaper's releases are conformant AND in order, and nothing is
    /// lost while the queue has room.
    #[test]
    fn shaper_conformance_and_order(
        rate in 200_000u64..5_000_000,
        depth in 1500u32..9000,
        arrivals in prop::collection::vec((0u64..2_000_000, 64u32..1500), 1..100),
    ) {
        let mut s: Shaper<()> = Shaper::new(rate, depth, u64::MAX);
        let mut times: Vec<(u64, u32)> = arrivals;
        times.sort_by_key(|t| t.0);
        let mut released: Vec<(SimTime, u64, u32)> = Vec::new();
        let mut poll: Option<SimTime> = None;
        let drain = |s: &mut Shaper<()>, at: SimTime,
                         released: &mut Vec<(SimTime, u64, u32)>| {
            let (ready, next) = s.pop_ready(at);
            for p in ready {
                released.push((at, p.id.0, p.size));
            }
            next
        };
        for (i, &(t_ns, size)) in times.iter().enumerate() {
            let now = SimTime::from_nanos(t_ns);
            // Drain any releases due before this arrival.
            if let Some(at) = poll {
                if at <= now {
                    poll = drain(&mut s, at, &mut released);
                }
            }
            match s.offer(now, pkt(i as u64, size)) {
                ShaperResult::PassNow(p) => released.push((now, p.id.0, p.size)),
                ShaperResult::Queued { next_release } => poll = Some(next_release),
                ShaperResult::Overflow(_) => unreachable!("unbounded queue"),
            }
        }
        while let Some(at) = poll {
            poll = drain(&mut s, at, &mut released);
        }
        // All packets came out.
        prop_assert_eq!(released.len(), times.len());
        // In order.
        for w in released.windows(2) {
            prop_assert!(w[0].1 < w[1].1, "reordered: {:?}", w);
            prop_assert!(w[0].0 <= w[1].0);
        }
        // Conformant: cumulative bytes by each release time within bound.
        let t0 = released[0].0;
        let mut cum = 0u64;
        for &(t, _, size) in &released {
            cum += size as u64;
            let window = t.saturating_since(t0).as_secs_f64();
            let bound = depth as f64 + rate as f64 * window / 8.0
                // The first release may already use banked tokens for
                // `size` bytes beyond the depth accounting base.
                + 1500.0;
            prop_assert!(cum as f64 <= bound + 1.0, "cum {cum} > {bound}");
        }
    }

    /// The playback schedule always emits exactly one frame per slot,
    /// never shows a frame that was not decodable, and never travels
    /// backwards in display order.
    #[test]
    fn playback_schedule_invariants(
        arrivals in prop::collection::vec(
            prop::option::weighted(0.8, 0u64..200_000_000_000), 1..400),
    ) {
        let times: Vec<Option<SimTime>> =
            arrivals.iter().map(|o| o.map(SimTime::from_nanos)).collect();
        let res = playback_schedule(&times, &PlaybackConfig::default());
        prop_assert_eq!(res.displayed.len(), times.len());
        if !res.total_failure {
            for (slot, &shown) in res.displayed.iter().enumerate() {
                prop_assert!((shown as usize) < times.len());
                prop_assert!(times[shown as usize].is_some(),
                    "slot {slot} shows undecodable frame {shown}");
            }
            // Display order is non-decreasing except the initial splash.
            let first_fresh = res.displayed.iter()
                .position(|&d| times[d as usize].is_some());
            if let Some(start) = first_fresh {
                for w in res.displayed[start..].windows(2) {
                    prop_assert!(w[1] >= w[0], "rewound: {:?}", w);
                }
            }
            prop_assert!(res.repeats <= res.displayed.len());
            prop_assert!(res.longest_freeze <= res.repeats);
        }
    }

    /// VQM scores live in [0, 1.05] for any pair of equally long feature
    /// streams.
    #[test]
    fn vqm_score_bounds(
        sis in prop::collection::vec(1.0f64..250.0, 120..360),
        tis in prop::collection::vec(0.0f64..100.0, 120..360),
    ) {
        let n = sis.len().min(tis.len());
        let reference: Vec<FeatureFrame> = (0..n).map(|i| FeatureFrame {
            si: sis[i], ti: tis[i], y_mean: 120.0, chroma: 20.0, fidelity: 1.0,
        }).collect();
        // Received: a crudely impaired version.
        let received: Vec<FeatureFrame> = reference.iter().enumerate().map(|(i, f)| {
            let mut g = *f;
            if i % 7 == 0 { g.ti = 0.0; }
            if i % 11 == 0 { g.si *= 0.5; }
            g
        }).collect();
        let res = Vqm::default().score_streams(&reference, &received);
        prop_assert!(res.overall >= 0.0);
        prop_assert!(res.overall <= 1.05 + 1e-12, "score {}", res.overall);
        let self_res = Vqm::default().score_streams(&reference, &reference);
        prop_assert!(self_res.overall <= res.overall + 1e-12,
            "self-comparison must not score worse than impairment");
    }

    /// Degenerate inputs — tiny clips (down to one frame) and perfectly
    /// flat streams with zero temporal variance — must never produce a
    /// NaN, an infinity, or a score outside [0, 1.05].
    #[test]
    fn vqm_degenerate_inputs_stay_bounded(
        n in 1usize..8,
        si in 1.0f64..250.0,
        ti_sel in 0u8..3,
        long in 0u8..2,
    ) {
        let ti = [0.0f64, 0.5, 40.0][ti_sel as usize];
        let len = if long == 1 { 350 } else { n };
        let frame = FeatureFrame { si, ti, y_mean: 128.0, chroma: 20.0, fidelity: 1.0 };
        let reference = vec![frame; len];
        let mut received = reference.clone();
        received[0].fidelity = 0.3;
        for rec in [&reference, &received] {
            let res = Vqm::default().score_streams(&reference, rec);
            prop_assert!(res.overall.is_finite(), "score {}", res.overall);
            prop_assert!(res.overall >= 0.0);
            prop_assert!(res.overall <= 1.05 + 1e-12, "score {}", res.overall);
            for seg in &res.segments {
                prop_assert!(seg.score.is_finite());
            }
        }
    }

    /// The event queue delivers in (time, insertion) order for any batch.
    #[test]
    fn event_queue_total_order(
        times in prop::collection::vec(0u64..1_000_000, 1..300),
    ) {
        let mut q = EventQueue::new();
        for (i, &t) in times.iter().enumerate() {
            q.schedule(SimTime::from_nanos(t), i);
        }
        let mut last: Option<(SimTime, usize)> = None;
        while let Some((t, i)) = q.pop() {
            if let Some((lt, li)) = last {
                prop_assert!(t >= lt);
                if t == lt {
                    prop_assert!(i > li, "FIFO violated on tie");
                }
            }
            last = Some((t, i));
        }
    }
}

#[test]
fn decodable_is_subset_of_received() {
    // Deterministic check over many random loss patterns.
    use dsv_media::decoder::decodable_frames;
    use dsv_media::encoder::mpeg1;
    use dsv_media::scene::ClipId;
    use dsv_sim::SimRng;
    let clip = mpeg1::encode(&ClipId::Lost.model(), 1_000_000);
    let mut rng = SimRng::seed_from_u64(42);
    for _ in 0..20 {
        let received: Vec<bool> = (0..clip.frames.len()).map(|_| rng.chance(0.9)).collect();
        let ok = decodable_frames(&clip.frames, &received);
        for (i, (&r, &d)) in received.iter().zip(&ok).enumerate() {
            assert!(!d || r, "frame {i} decodable but not received");
        }
    }
}
