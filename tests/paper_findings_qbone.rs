//! End-to-end verification of the paper's QBone findings (§4.1) on a
//! coarse token-rate grid. These are the claims EXPERIMENTS.md reports;
//! if one of them regresses, the reproduction is broken even if every
//! unit test passes.
//!
//! The grids load committed goldens (`results/findings_qbone_*.json`)
//! through [`dsv_core::golden`]: a checksum over the generating configs
//! fails loudly if the tested grid drifts from the committed one, and
//! `DSV_REGEN=1` re-simulates and rewrites the files. See DESIGN.md §7.

use dsv_core::prelude::*;

const ENC: u64 = 1_500_000;

fn sweep_lost() -> SweepResult {
    let base = QboneConfig::new(ClipId2::Lost, ENC, EfProfile::new(ENC, DEPTH_2MTU));
    // Eight points spanning 0.88×–1.45× the encoding rate.
    let rates: Vec<u64> = (0..8)
        .map(|i| (ENC as f64 * (0.88 + i as f64 * 0.08)) as u64)
        .collect();
    golden_qbone_sweep(
        "findings_qbone_sweep",
        &base,
        &rates,
        &[DEPTH_2MTU, DEPTH_3MTU],
        "findings sweep",
    )
}

// Indices into the point-run golden below (job order is the contract —
// the checksum catches any drift).
const LOST_LOW: usize = 0;
const LOST_HIGH: usize = 1;
const DARK_LOW: usize = 2;
const DARK_HIGH: usize = 3;
const VSBEST_LOW_ENC: usize = 4;
const VSBEST_HIGH_ENC: usize = 5;
const HOPELESS: usize = 6;

/// The non-grid point runs the findings below share, as one golden.
fn point_outcomes() -> Vec<RunOutcome> {
    let probe = |clip: ClipId2, rate: u64| {
        Job::Qbone(QboneConfig::new(
            clip,
            ENC,
            EfProfile::new(rate, DEPTH_3MTU),
        ))
    };
    let low_rate = (ENC as f64 * 0.9) as u64;
    let high_rate = (ENC as f64 * 1.3) as u64;
    let token = 1_250_000u64; // covers 1.0M comfortably, starves 1.7M
    let mut low_enc = QboneConfig::new(ClipId2::Lost, 1_000_000, EfProfile::new(token, DEPTH_3MTU));
    low_enc.score_vs_best = true;
    let mut high_enc =
        QboneConfig::new(ClipId2::Lost, 1_700_000, EfProfile::new(token, DEPTH_3MTU));
    high_enc.score_vs_best = true;
    let jobs = vec![
        probe(ClipId2::Lost, low_rate),
        probe(ClipId2::Lost, high_rate),
        probe(ClipId2::Dark, low_rate),
        probe(ClipId2::Dark, high_rate),
        Job::Qbone(low_enc),
        Job::Qbone(high_enc),
        Job::Qbone(QboneConfig::new(
            ClipId2::Lost,
            1_700_000,
            EfProfile::new(1_000_000, DEPTH_2MTU),
        )),
    ];
    golden_outcomes("findings_qbone_points", &jobs)
}

#[test]
fn qbone_findings_hold() {
    let sweep = sweep_lost();
    let c3000 = sweep.curve(DEPTH_2MTU);
    let c4500 = sweep.curve(DEPTH_3MTU);

    // Finding: "setting the token rate value below the encoding rate is of
    // no use at all" — the lowest-rate point is unwatchable for both
    // depths.
    assert!(c3000[0].1 > 0.9, "below-rate 3000: {:?}", c3000[0]);
    assert!(c4500[0].1 > 0.9, "below-rate 4500: {:?}", c4500[0]);
    assert!(c3000[0].2 > 0.9, "below-rate frame loss: {:?}", c3000[0]);

    // Finding: quality improves (weakly) with token rate, modulo small
    // run-to-run wobble the paper itself flags.
    assert!(
        mostly_monotone_decreasing(&c3000, 0.08),
        "3000 not monotone: {c3000:?}"
    );
    assert!(
        mostly_monotone_decreasing(&c4500, 0.08),
        "4500 not monotone: {c4500:?}"
    );

    // Finding: "a small increase of the token bucket depth … can translate
    // into substantial improvements": the 4500-byte curve dominates and
    // reaches good quality at a lower rate.
    assert!(
        quality_area(&c4500) < quality_area(&c3000),
        "4500 should dominate 3000"
    );
    let cut3000 = cutoff_rate(&c3000, 0.1).expect("3000 reaches good quality in grid");
    let cut4500 = cutoff_rate(&c4500, 0.1).expect("4500 reaches good quality in grid");
    assert!(
        cut4500 < cut3000,
        "4500 cutoff {cut4500} should be below 3000 cutoff {cut3000}"
    );

    // Finding: with the 2-MTU bucket "the token rate has to be set to a
    // value around or even above the maximum encoding rate" (Table 2's
    // windowed max ≈ 1.10–1.25 × the target for our CBR model); with
    // 4500 bytes a rate near the average suffices.
    assert!(
        cut3000 as f64 >= 1.08 * ENC as f64,
        "3000 cutoff {cut3000} should be near/above the max rate"
    );
    assert!(
        (cut4500 as f64) < 1.15 * ENC as f64,
        "4500 cutoff {cut4500} should be near the average rate"
    );

    // Finding: quality and frame loss are decoupled — somewhere on the
    // curve a small loss improvement buys a big quality improvement.
    let slope = max_quality_per_loss_slope(&c3000);
    assert!(slope > 2.0, "decoupling slope too weak: {slope}");
}

#[test]
fn clips_share_the_shape() {
    // Finding: "the different motion characteristics of their content do
    // not significantly affect the basic relation" — Dark's curve has the
    // same shape: bad below the rate, good once the profile covers it.
    let outcomes = point_outcomes();
    for (name, low, high) in [
        ("lost", &outcomes[LOST_LOW], &outcomes[LOST_HIGH]),
        ("dark", &outcomes[DARK_LOW], &outcomes[DARK_HIGH]),
    ] {
        assert!(low.quality > 0.8, "{name} low-rate quality {}", low.quality);
        assert!(
            high.quality < 0.1,
            "{name} high-rate quality {}",
            high.quality
        );
    }
    // Absolute levels may differ between clips (the paper's 0.19 vs 0.14
    // example), but both must traverse the same regimes.
}

#[test]
fn lower_encoding_with_headroom_beats_higher_encoding_with_losses() {
    // The paper's second experiment set: against the 1.7 Mbps reference,
    // a clean 1.0 Mbps stream beats a policed 1.7 Mbps stream when the
    // token rate only covers the lower encoding.
    let outcomes = point_outcomes();
    let low_out = &outcomes[VSBEST_LOW_ENC];
    let high_out = &outcomes[VSBEST_HIGH_ENC];
    let low_q = low_out.quality_vs_best.expect("requested");
    let high_q = high_out.quality_vs_best.expect("requested");
    assert!(
        low_q + 0.3 < high_q,
        "clean 1.0M ({low_q:.3}) should beat starved 1.7M ({high_q:.3})"
    );
    // And the reason is loss, not encoding: the low encoding's penalty is
    // the modest encoding gap.
    assert!(low_q < 0.3, "encoding-gap-only score {low_q}");
    assert!(high_out.frame_loss > 0.3, "starved 1.7M loses frames");
}

#[test]
fn failed_calibration_produces_worst_score() {
    // At a hopeless profile, most VQM segments fail temporal calibration
    // and the score saturates at 1.0 — exactly the tool behaviour the
    // paper describes for long degraded periods.
    let out = &point_outcomes()[HOPELESS];
    assert!(out.failed_segments > 0, "expected calibration failures");
    assert!(out.quality > 0.9, "quality {}", out.quality);
}
