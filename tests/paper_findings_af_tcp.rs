//! The Lochin & Anelli AF second act: TCP flows with committed rates
//! through srTCM/trTCM markers into a WRED AF bottleneck.
//!
//! The related-work question layered onto the paper's engine: when a
//! video-scale TCP flow buys an AF "rate guarantee" (a committed rate
//! marked green by a token-bucket meter, excess demoted to higher drop
//! precedence), does it actually receive that rate? The reproduction
//! pins the known answer — the guarantee holds only while the aggregate
//! committed rate stays well below the bottleneck capacity, erodes as
//! provisioning approaches one, and is RTT-biased throughout, with the
//! trTCM's peak-rate band softening none of it.
//!
//! The grid loads a committed golden (`results/findings_af_tcp.json`)
//! through [`dsv_core::golden::golden_flows`]: a checksum over the
//! generating configs fails loudly if the tested grid drifts from the
//! committed one, and `DSV_REGEN=1` re-simulates and rewrites the file.

use dsv_core::prelude::*;

/// Aggregate committed rate as a fraction of the 6 Mbit/s bottleneck.
const FRACTIONS: [f64; 5] = [0.3, 0.5, 0.7, 0.85, 0.95];
const BOTTLENECK: u64 = 6_000_000;
const FLOWS: usize = 4;

/// Four equal committed rates summing to `frac` of the bottleneck.
fn equal(frac: f64, trtcm: bool) -> AfTcpConfig {
    let per_flow = (BOTTLENECK as f64 * frac / FLOWS as f64) as u64;
    let mut cfg = AfTcpConfig::new(vec![per_flow; FLOWS], vec![0; FLOWS]);
    cfg.trtcm = trtcm;
    cfg
}

/// The committed grid: the srTCM provisioning ladder, the same ladder
/// re-metered with trTCM, then the heterogeneity probes.
fn grid() -> Vec<FlowJob> {
    let mut jobs = Vec::new();
    for &trtcm in &[false, true] {
        for &frac in &FRACTIONS {
            jobs.push(FlowJob::AfTcp(equal(frac, trtcm)));
        }
    }
    // RTT heterogeneity at comfortable provisioning: two short paths,
    // two with 40 ms extra, all with the same committed rate.
    jobs.push(FlowJob::AfTcp(AfTcpConfig::new(
        vec![1_050_000; FLOWS],
        vec![0, 0, 40, 40],
    )));
    // Target heterogeneity, underprovisioned and near capacity.
    jobs.push(FlowJob::AfTcp(AfTcpConfig::new(
        vec![250_000, 500_000, 750_000, 1_350_000],
        vec![0; FLOWS],
    )));
    jobs.push(FlowJob::AfTcp(AfTcpConfig::new(
        vec![500_000, 1_000_000, 1_500_000, 2_700_000],
        vec![0; FLOWS],
    )));
    jobs
}

fn outcomes() -> Vec<FlowsOutcome> {
    golden_flows("findings_af_tcp", &grid())
}

/// Outcome on the srTCM (`trtcm = false`) provisioning ladder.
fn srtcm(outs: &[FlowsOutcome], f: usize) -> &FlowsOutcome {
    &outs[f]
}

/// Outcome on the trTCM provisioning ladder.
fn trtcm(outs: &[FlowsOutcome], f: usize) -> &FlowsOutcome {
    &outs[FRACTIONS.len() + f]
}

const RTT_PAIR: usize = 10;
const HETERO_LOW: usize = 11;
const HETERO_NEAR: usize = 12;

/// Per-flow achieved/target ratios for one outcome.
fn ratios(out: &FlowsOutcome) -> Vec<f64> {
    out.per_flow
        .iter()
        .map(|f| f.achieved_bps / f.target_bps as f64)
        .collect()
}

/// The worst achieved/target ratio across an outcome's flows.
fn worst_ratio(out: &FlowsOutcome) -> f64 {
    ratios(out).into_iter().fold(f64::INFINITY, f64::min)
}

#[test]
fn golden_covers_the_grid() {
    let outs = outcomes();
    assert_eq!(outs.len(), 2 * FRACTIONS.len() + 3);
    for out in &outs {
        assert_eq!(out.per_flow.len(), FLOWS);
        // AF meters re-mark, never drop; congestion management is
        // WRED's job and it is active in every cell of the grid.
        assert_eq!(out.total_policer_drops(), 0, "meters must not drop");
        assert!(out.total_queue_drops() > 0, "WRED must be active");
    }
}

#[test]
fn guarantee_holds_only_well_below_capacity() {
    // The headline reproduction: with the aggregate committed rate at
    // 30–50 % of the bottleneck every flow clears its target with slack
    // (TCP shares the excess), at 70 % the worst flow is already down to
    // its bare committed rate, and from 85 % up no flow reaches it.
    let outs = outcomes();
    for f in [0, 1] {
        assert_eq!(
            srtcm(&outs, f).flows_meeting_target(1.0),
            FLOWS,
            "frac {}: every flow must meet its target: {:?}",
            FRACTIONS[f],
            ratios(srtcm(&outs, f))
        );
        assert!(worst_ratio(srtcm(&outs, f)) > 1.3, "excess must be shared");
    }
    assert_eq!(
        srtcm(&outs, 3).flows_meeting_target(1.0),
        0,
        "85 %: {:?}",
        ratios(srtcm(&outs, 3))
    );
    assert_eq!(
        srtcm(&outs, 4).flows_meeting_target(0.9),
        0,
        "95 %: {:?}",
        ratios(srtcm(&outs, 4))
    );
}

#[test]
fn erosion_is_monotone_on_the_provisioning_ladder() {
    // The worst flow's achieved/target ratio strictly decreases as the
    // aggregate committed rate climbs toward the bottleneck, and the
    // standing AF queue deepens with it: the mean per-flow delay grows
    // strictly along the same ladder.
    let outs = outcomes();
    let worst: Vec<f64> = (0..FRACTIONS.len())
        .map(|f| worst_ratio(srtcm(&outs, f)))
        .collect();
    assert!(
        worst.windows(2).all(|w| w[0] > w[1]),
        "worst ratio must erode monotonically: {worst:?}"
    );
    let delay: Vec<f64> = (0..FRACTIONS.len())
        .map(|f| {
            let out = srtcm(&outs, f);
            out.per_flow.iter().map(|x| x.mean_delay_ms).sum::<f64>() / FLOWS as f64
        })
        .collect();
    assert!(
        delay.windows(2).all(|w| w[0] < w[1]),
        "standing queue must deepen with committed load: {delay:?}"
    );
}

#[test]
fn trtcm_peak_band_rescues_nothing_and_costs_fairness() {
    // The two-rate meter's yellow band admits bursts above the committed
    // rate, but near capacity the guarantee fails exactly as it does
    // under srTCM — and from mid-ladder up the extra band *widens* the
    // spread between equal-target flows, where the single-rate meter
    // keeps the split tight.
    let outs = outcomes();
    assert_eq!(trtcm(&outs, 0).flows_meeting_target(1.0), FLOWS);
    assert_eq!(
        trtcm(&outs, 4).flows_meeting_target(1.0),
        0,
        "95 % trTCM: {:?}",
        ratios(trtcm(&outs, 4))
    );
    let spread = |out: &FlowsOutcome| {
        let a: Vec<f64> = out.per_flow.iter().map(|f| f.achieved_bps).collect();
        a.iter().fold(0.0f64, |m, &x| m.max(x)) / a.iter().fold(f64::INFINITY, |m, &x| m.min(x))
    };
    for (f, frac) in FRACTIONS.iter().enumerate() {
        assert!(
            spread(srtcm(&outs, f)) < 1.2,
            "srTCM keeps equal flows within 20 %: frac {frac}"
        );
    }
    for f in [2, 3, 4] {
        assert!(
            spread(trtcm(&outs, f)) > spread(srtcm(&outs, f)),
            "frac {}: the peak band must cost fairness",
            FRACTIONS[f]
        );
    }
    assert!(
        spread(trtcm(&outs, 3)) > 1.3,
        "trTCM spread blows past srTCM's band: {:?}",
        ratios(trtcm(&outs, 3))
    );
}

#[test]
fn the_guarantee_is_rtt_biased() {
    // Equal committed rates, unequal paths: both short-RTT flows beat
    // both long-RTT flows outright, clear their targets with headroom,
    // and only they do — window growth is RTT-bound while the meter's
    // green band is not.
    let outs = outcomes();
    let out = &outs[RTT_PAIR];
    let short_min = out.per_flow[0]
        .achieved_bps
        .min(out.per_flow[1].achieved_bps);
    let long_max = out.per_flow[2]
        .achieved_bps
        .max(out.per_flow[3].achieved_bps);
    assert!(
        short_min > long_max,
        "short paths must dominate: {:?}",
        ratios(out)
    );
    assert_eq!(
        out.flows_meeting_target(1.0),
        2,
        "only the short paths collect the guarantee: {:?}",
        ratios(out)
    );
}

#[test]
fn large_commitments_miss_first() {
    // With heterogeneous targets the achieved/target ratio falls
    // strictly as the committed rate grows — TCP's loss-bound rate does
    // not scale with the purchase. Near capacity the largest commitment
    // collects less than half of what it bought; even underprovisioned,
    // the flow whose target approaches the TCP-fair share is the one
    // left short.
    let outs = outcomes();
    for i in [HETERO_LOW, HETERO_NEAR] {
        let r = ratios(&outs[i]);
        assert!(
            r.windows(2).all(|w| w[0] > w[1]),
            "ratio must fall with target size: {r:?}"
        );
    }
    assert!(
        outs[HETERO_NEAR].per_flow[3].achieved_bps
            < 0.5 * outs[HETERO_NEAR].per_flow[3].target_bps as f64,
        "the big buyer near capacity gets less than half"
    );
    assert!(
        outs[HETERO_LOW].flows_meeting_target(1.0) >= 3,
        "small commitments are honored even as the big one slips: {:?}",
        ratios(&outs[HETERO_LOW])
    );
}
