//! Differential equivalence: the scenario compiler must lower each
//! testbed spec to a network that is **byte-for-byte** the one the old
//! imperative builders produced.
//!
//! The `legacy` module below preserves the pre-IR `NetworkBuilder` code
//! (creation-order node ids and all) exactly as the experiment layer
//! shipped it. Each test builds the same configuration both ways, runs
//! both networks under an explicit event-queue backend, scores both runs
//! with the same pipeline, and asserts the serialized [`RunOutcome`]s are
//! identical — on sampled points of the committed figure grids, under
//! both the timing-wheel and the binary-heap backend.

use dsv_core::artifacts::{self, ArtifactStore, Codec};
use dsv_core::local::{local_spec, LocalConfig, LocalTransport};
use dsv_core::prelude::*;
use dsv_core::qbone::{qbone_spec, QboneConfig};
use dsv_net::app::Handle;
use dsv_net::network::{Network, Simulation};
use dsv_net::packet::FlowId;
use dsv_scenario::{compile, CompileOptions};
use dsv_sim::{EventQueue, QueueBackend, SimTime};
use dsv_stream::client::StreamClient;
use dsv_stream::payload::StreamPayload;
use dsv_stream::server::adaptive::AdaptiveServer;

const MEDIA_FLOW: FlowId = FlowId(1);

/// The imperative builders exactly as they existed before the scenario
/// IR, kept as the differential oracle. Node ids are positional; the
/// client pre-computes the server's id (`NodeId(5)`) from creation order.
mod legacy {
    use super::*;
    use dsv_diffserv::classifier::MatchRule;
    use dsv_diffserv::policer::{ExceedAction, Policer};
    use dsv_diffserv::policy::{PolicyAction, PolicyTable};
    use dsv_diffserv::shaper::Shaper;
    use dsv_media::encoder::{mpeg1, wmv};
    use dsv_media::scene::ClipId;
    use dsv_net::app::Shared;
    use dsv_net::frame_relay::table1;
    use dsv_net::link::Link;
    use dsv_net::network::NetworkBuilder;
    use dsv_net::packet::{Dscp, NodeId};
    use dsv_net::qdisc::{QueueLimits, StrictPriorityQueue};
    use dsv_net::traffic::{CountingSink, OnOffSource};
    use dsv_sim::{SimDuration, SimRng};
    use dsv_stream::client::{ClientConfig, ClientMode};
    use dsv_stream::playback::PlaybackConfig;
    use dsv_stream::server::adaptive::AdaptiveConfig;
    use dsv_stream::server::paced::{PacedConfig, PacedServer};
    use dsv_stream::server::tcp_server::{TcpServerConfig, TcpStreamServer};

    const UP_FLOW: FlowId = FlowId(2);
    const CT_FLOW: FlowId = FlowId(100);
    const JITTER_FLOW: FlowId = FlowId(101);

    /// The pre-IR QBone topology (paced server only — the sampled grid
    /// points all use it).
    pub fn qbone_net(cfg: &QboneConfig) -> (Network<StreamPayload>, Handle<StreamClient>) {
        let clip_id: ClipId = cfg.clip.into();
        let clip = artifacts::encoding(clip_id, Codec::Mpeg1, cfg.encoding_bps);
        let mut rng = SimRng::seed_from_u64(cfg.seed);

        let mut b = NetworkBuilder::<StreamPayload>::new();
        let (client_handle, client_app) = Shared::new(StreamClient::new(ClientConfig {
            server: NodeId(5), // the server is created sixth (index 5)
            up_flow: UP_FLOW,
            frames: clip.frames.len() as u32,
            kind_fn: mpeg1::frame_kind,
            playback: PlaybackConfig::default(),
            feedback_interval: None,
            mode: ClientMode::Udp,
            media_rate_bps: cfg.encoding_bps,
        }));
        let client = b.add_host("client", Box::new(client_app));
        let local_edge = b.add_router("local-edge");
        let core2 = b.add_router("core2");
        let core1 = b.add_router("core1");
        let remote_edge = b.add_router("remote-edge");
        let server = b.add_host(
            "video-server",
            Box::new(PacedServer::new(
                PacedConfig::new(client, MEDIA_FLOW, Dscp::EF_QBONE),
                &clip,
            )),
        );

        b.connect(client, local_edge, Link::ethernet_10mbps());
        b.connect(server, remote_edge, Link::fast_ethernet());

        let prio = || {
            Box::new(StrictPriorityQueue::ef_default(
                QueueLimits::bytes(120_000),
                QueueLimits::packets(60),
            ))
        };
        let wan = |rate: u64, ms: u64| Link::new(rate, SimDuration::from_millis(ms));
        b.connect_with(
            remote_edge,
            core1,
            wan(45_000_000, 5),
            wan(45_000_000, 5),
            prio(),
            prio(),
        );
        b.connect_with(
            core1,
            core2,
            wan(155_000_000, 20),
            wan(155_000_000, 20),
            prio(),
            prio(),
        );
        b.connect_with(
            core2,
            local_edge,
            wan(45_000_000, 5),
            wan(45_000_000, 5),
            prio(),
            prio(),
        );

        let policer = Policer::car_drop(cfg.profile.token_rate_bps, cfg.profile.bucket_depth_bytes);
        let table = PolicyTable::new().with(
            MatchRule::src_dst(server, client),
            PolicyAction::Police(policer),
        );
        b.set_conditioner(remote_edge, Box::new(table));

        if cfg.cross_traffic {
            let ct_sink = b.add_host("ct-sink", Box::new(CountingSink::default()));
            b.connect(ct_sink, core2, Link::fast_ethernet());
            let ct_src = b.add_host(
                "ct-src",
                Box::new(OnOffSource::new(
                    ct_sink,
                    CT_FLOW,
                    1000,
                    30_000_000,
                    SimDuration::from_millis(200),
                    SimDuration::from_millis(200),
                    Dscp::BEST_EFFORT,
                    SimTime::from_secs(200),
                    rng.fork(1),
                )),
            );
            b.connect(ct_src, core1, Link::fast_ethernet());
        }

        (b.build(), client_handle)
    }

    /// What [`local_net`] hands back: the network plus the client and
    /// (for multi-rate runs) adaptive-server handles.
    pub type LocalNet = (
        Network<StreamPayload>,
        Handle<StreamClient>,
        Option<Handle<AdaptiveServer>>,
    );

    /// The pre-IR local-testbed topology.
    pub fn local_net(cfg: &LocalConfig) -> LocalNet {
        let clip_id: ClipId = cfg.clip.into();
        let clip = artifacts::encoding(clip_id, Codec::Wmv, cfg.cap_bps);
        let mut rng = SimRng::seed_from_u64(cfg.seed);

        let mut b = NetworkBuilder::<StreamPayload>::new();
        let frames = clip.frames.len() as u32;
        let server_id = NodeId(5);
        let client_mode = match cfg.transport {
            LocalTransport::Udp => ClientMode::Udp,
            LocalTransport::Tcp => ClientMode::Tcp {
                frame_bytes: clip.frames.iter().map(|f| f.bytes).collect(),
                fidelities: clip.frames.iter().map(|f| f.fidelity).collect(),
            },
        };
        let feedback = match cfg.transport {
            LocalTransport::Udp => Some(SimDuration::from_secs(1)),
            LocalTransport::Tcp => None,
        };
        let (client_handle, client_app) = Shared::new(StreamClient::new(ClientConfig {
            server: server_id,
            up_flow: UP_FLOW,
            frames,
            kind_fn: wmv::frame_kind,
            playback: PlaybackConfig::default(),
            feedback_interval: feedback,
            mode: client_mode,
            media_rate_bps: cfg.cap_bps,
        }));

        let client = b.add_host("client", Box::new(client_app));
        let r3 = b.add_router("router3");
        let r2 = b.add_router("router2");
        let r1 = b.add_router("router1");
        let linux = b.add_router("linux-shaper");

        let mut adaptive_handle = None;
        let server = match cfg.transport {
            LocalTransport::Udp => {
                let tiers = if cfg.multi_rate {
                    let low = artifacts::encoding(clip_id, Codec::Wmv, 300_000);
                    vec![(*low).clone(), (*clip).clone()]
                } else {
                    vec![(*clip).clone()]
                };
                let (h, app) = Shared::new(AdaptiveServer::new(
                    AdaptiveConfig::new(client, MEDIA_FLOW, Dscp::BEST_EFFORT),
                    tiers,
                ));
                adaptive_handle = Some(h);
                b.add_host("wmt-server", Box::new(app))
            }
            LocalTransport::Tcp => b.add_host(
                "wmt-server",
                Box::new(TcpStreamServer::new(
                    TcpServerConfig::new(client, MEDIA_FLOW, Dscp::BEST_EFFORT),
                    &clip,
                )),
            ),
        };
        assert_eq!(server, server_id);

        let prio = || {
            Box::new(StrictPriorityQueue::ef_default(
                QueueLimits::bytes(60_000),
                QueueLimits::packets(50),
            ))
        };
        b.connect(client, r3, Link::ethernet_10mbps());
        let v35 = table1::router3_fr0().as_link(SimDuration::from_micros(500));
        b.connect_with(r2, r3, v35, v35, prio(), prio());
        let hssi = table1::router2_fr1().as_link(SimDuration::from_micros(500));
        b.connect_with(r1, r2, hssi, hssi, prio(), prio());
        b.connect(linux, r1, Link::ethernet_10mbps());
        b.connect(server, linux, Link::ethernet_10mbps());

        let policer = Policer::new(
            dsv_diffserv::token_bucket::TokenBucket::new(
                cfg.profile.token_rate_bps,
                cfg.profile.bucket_depth_bytes,
            ),
            Some(Dscp::EF),
            ExceedAction::Drop,
        );
        let table = PolicyTable::new().with(
            MatchRule::src_dst(server, client),
            PolicyAction::Police(policer),
        );
        b.set_conditioner(r1, Box::new(table));

        if cfg.shaped {
            let shaper: Shaper<StreamPayload> = Shaper::new(
                cfg.profile.token_rate_bps,
                cfg.profile.bucket_depth_bytes,
                64 * 1024,
            );
            let table = PolicyTable::new().with(
                MatchRule::src_dst(server, client),
                PolicyAction::Shape(shaper),
            );
            b.set_conditioner(linux, Box::new(table));
        }

        if cfg.cross_traffic {
            let ct_sink = b.add_host("ct-sink", Box::new(CountingSink::default()));
            b.connect(ct_sink, r3, Link::ethernet_10mbps());
            let jitter_src = b.add_host(
                "jitter-src",
                Box::new(OnOffSource::new(
                    ct_sink,
                    JITTER_FLOW,
                    1500,
                    5_000_000,
                    SimDuration::from_millis(50),
                    SimDuration::from_millis(300),
                    Dscp::BEST_EFFORT,
                    SimTime::from_secs(200),
                    rng.fork(2),
                )),
            );
            b.connect(jitter_src, linux, Link::ethernet_10mbps());
        }

        (b.build(), client_handle, adaptive_handle)
    }
}

/// Run a built network to `horizon` under an explicit backend.
fn drive(
    net: Network<StreamPayload>,
    horizon: SimTime,
    backend: QueueBackend,
) -> Simulation<StreamPayload> {
    let mut queue = EventQueue::with_backend(backend);
    net.schedule_starts(&mut queue);
    let mut sim = Simulation { net, queue };
    sim.run_until(horizon);
    sim
}

/// Score a finished QBone session exactly as `run_qbone` does.
fn score_qbone(
    cfg: &QboneConfig,
    sim: &Simulation<StreamPayload>,
    client: &Handle<StreamClient>,
) -> RunOutcome {
    let clip_id: dsv_media::scene::ClipId = cfg.clip.into();
    let report = client.borrow().report();
    let media = sim.net.stats.flow(MEDIA_FLOW);
    let source = artifacts::source_features(clip_id);
    let reference = artifacts::reference_features(clip_id, Codec::Mpeg1, cfg.encoding_bps);
    let score = dsv_core::qoe::score_session(&source, &reference, &report, None);
    RunOutcome::assemble(&report, &media, &score, 0, 0, false)
}

/// Score a finished local session exactly as `run_local` does.
fn score_local(
    cfg: &LocalConfig,
    sim: &Simulation<StreamPayload>,
    client: &Handle<StreamClient>,
    adaptive: Option<&Handle<AdaptiveServer>>,
) -> RunOutcome {
    let clip_id: dsv_media::scene::ClipId = cfg.clip.into();
    let report = client.borrow().report();
    let media = sim.net.stats.flow(MEDIA_FLOW);
    let shaper_drops = media.drops_for(dsv_net::packet::DropReason::ShaperOverflow);
    let (collapses, broken) = adaptive
        .map(|h| {
            let s = h.borrow();
            (s.collapses, s.broken)
        })
        .unwrap_or((0, false));
    let source = artifacts::source_features(clip_id);
    let reference = artifacts::reference_features(clip_id, Codec::Wmv, cfg.cap_bps);
    let score = dsv_core::qoe::score_session(&source, &reference, &report, None);
    RunOutcome::assemble(&report, &media, &score, shaper_drops, collapses, broken)
}

fn json(outcome: &RunOutcome) -> String {
    serde_json::to_string(outcome).expect("outcome serializes")
}

const BACKENDS: [QueueBackend; 2] = [QueueBackend::Wheel, QueueBackend::Heap];

fn check_qbone_point(cfg: &QboneConfig) {
    let horizon = SimTime::ZERO + run_horizon(cfg.clip.into());
    for backend in BACKENDS {
        let (net, client) = legacy::qbone_net(cfg);
        let old = {
            let sim = drive(net, horizon, backend);
            score_qbone(cfg, &sim, &client)
        };

        let compiled = compile(
            &qbone_spec(cfg),
            CompileOptions {
                store: Some(&ArtifactStore),
                wrap: None,
            },
        )
        .expect("qbone spec compiles");
        let spec_client = compiled.sole_client().expect("one client").clone();
        let new = {
            let sim = drive(compiled.net, horizon, backend);
            score_qbone(cfg, &sim, &spec_client)
        };

        assert_eq!(
            json(&old),
            json(&new),
            "qbone {:?} under {backend:?}: spec-compiled run diverged from the legacy builder",
            cfg.profile
        );
    }
}

fn check_local_point(cfg: &LocalConfig) {
    let horizon =
        SimTime::ZERO + run_horizon(cfg.clip.into()) + dsv_sim::SimDuration::from_secs(30);
    for backend in BACKENDS {
        let (net, client, adaptive) = legacy::local_net(cfg);
        let old = {
            let sim = drive(net, horizon, backend);
            score_local(cfg, &sim, &client, adaptive.as_ref())
        };

        let compiled = compile(
            &local_spec(cfg),
            CompileOptions {
                store: Some(&ArtifactStore),
                wrap: None,
            },
        )
        .expect("local spec compiles");
        let spec_client = compiled.sole_client().expect("one client").clone();
        let spec_adaptive = compiled.adaptives.first().map(|(_, h)| h.clone());
        let new = {
            let sim = drive(compiled.net, horizon, backend);
            score_local(cfg, &sim, &spec_client, spec_adaptive.as_ref())
        };

        assert_eq!(
            json(&old),
            json(&new),
            "local {:?} under {backend:?}: spec-compiled run diverged from the legacy builder",
            cfg.profile
        );
    }
}

#[test]
fn qbone_spec_matches_legacy_builder_on_committed_grid_points() {
    // Sampled from the findings_qbone_sweep grid (ENC = 1.5 Mbps): the
    // starved low corner and a comfortable high point, one per depth.
    let enc = 1_500_000u64;
    let starved = (enc as f64 * 0.88) as u64;
    let clean = (enc as f64 * 1.36) as u64;
    check_qbone_point(&QboneConfig::new(
        ClipId2::Lost,
        enc,
        EfProfile::new(starved, DEPTH_2MTU),
    ));
    check_qbone_point(&QboneConfig::new(
        ClipId2::Lost,
        enc,
        EfProfile::new(clean, DEPTH_3MTU),
    ));
}

#[test]
fn qbone_spec_matches_legacy_builder_with_cross_traffic() {
    // Cross traffic exercises the RNG-fork parity (the on/off source
    // consumes fork 1 in both paths).
    let mut cfg = QboneConfig::new(
        ClipId2::Lost,
        1_500_000,
        EfProfile::new(1_900_000, DEPTH_3MTU),
    );
    cfg.cross_traffic = true;
    check_qbone_point(&cfg);
}

#[test]
fn local_spec_matches_legacy_builder_on_committed_grid_points() {
    // Sampled from the findings_local grids: a starved UDP point and a
    // shaped TCP point (the shaper path plus mini-TCP dynamics).
    check_local_point(&LocalConfig::new(
        ClipId2::Lost,
        EfProfile::new(400_000, DEPTH_2MTU),
        LocalTransport::Udp,
    ));
    let mut tcp = LocalConfig::new(
        ClipId2::Lost,
        EfProfile::new(1_300_000, DEPTH_3MTU),
        LocalTransport::Tcp,
    );
    tcp.shaped = true;
    check_local_point(&tcp);
}

#[test]
fn local_spec_matches_legacy_builder_with_jitter_traffic() {
    let mut cfg = LocalConfig::new(
        ClipId2::Lost,
        EfProfile::new(1_200_000, DEPTH_3MTU),
        LocalTransport::Udp,
    );
    cfg.cross_traffic = true;
    cfg.multi_rate = true;
    check_local_point(&cfg);
}
