//! The pixel path end-to-end: rasterize real YUV frames from the scene
//! models, extract features from pixels (not formulas), and verify the
//! VQM verdicts agree with the analytic fast path. This is the test that
//! keeps the analytic feature substitution honest (DESIGN.md §2).

use dsv_media::features::FeatureFrame;
use dsv_media::scene::ClipId;
use dsv_media::yuv::{BigYuv, Rasterizer};
use dsv_vqm::{Vqm, VqmConfig};

/// Extract a measured feature stream from rendered pixels for frames
/// `[0, n)`, applying a frame-repeat schedule (`displayed[k]` = source
/// frame shown in slot `k`).
fn measured_stream(n: u32, displayed: &[u32]) -> Vec<FeatureFrame> {
    let model = ClipId::Lost.model();
    let r = Rasterizer::new(&model, 48, 36);
    // Render each distinct source frame once.
    let mut cache: std::collections::HashMap<u32, dsv_media::yuv::YuvFrame> =
        std::collections::HashMap::new();
    let mut get = |idx: u32| cache.entry(idx).or_insert_with(|| r.render(idx)).clone();
    let mut out = Vec::with_capacity(n as usize);
    let mut prev: Option<dsv_media::yuv::YuvFrame> = None;
    for &idx in displayed.iter().take(n as usize) {
        let cur = get(idx);
        let mut f = cur.features(prev.as_ref());
        f.fidelity = 1.0;
        out.push(f);
        prev = Some(cur);
    }
    out
}

fn short_vqm() -> Vqm {
    // Short segments so a 240-frame clip yields multiple segments.
    Vqm::new(VqmConfig {
        segment_frames: 120,
        overlap_frames: 30,
        alignment_uncertainty: 30,
        ..VqmConfig::default()
    })
}

#[test]
fn pixel_vqm_scores_pristine_as_near_perfect() {
    let n = 240u32;
    let identity: Vec<u32> = (0..n).collect();
    let reference = measured_stream(n, &identity);
    let res = short_vqm().score_streams(&reference, &reference);
    assert_eq!(res.failed_segments, 0);
    assert!(res.overall < 1e-9, "self-score {}", res.overall);
}

#[test]
fn pixel_vqm_orders_light_vs_heavy_impairment() {
    let n = 240u32;
    let identity: Vec<u32> = (0..n).collect();
    let reference = measured_stream(n, &identity);

    // Light: repeat every 40th frame. Heavy: freeze in runs of 8.
    let light: Vec<u32> = (0..n)
        .map(|i| if i % 40 == 1 { i - 1 } else { i })
        .collect();
    let heavy: Vec<u32> = (0..n).map(|i| (i / 8) * 8).collect();
    let light_stream = measured_stream(n, &light);
    let heavy_stream = measured_stream(n, &heavy);

    let vqm = short_vqm();
    let light_score = vqm.score_streams(&reference, &light_stream).overall;
    let heavy_score = vqm.score_streams(&reference, &heavy_stream).overall;
    assert!(
        light_score < heavy_score,
        "pixel path must order impairments: light {light_score} heavy {heavy_score}"
    );
    assert!(light_score > 0.0, "light impairment must register");
}

#[test]
fn pixel_and_analytic_paths_agree_on_the_verdict() {
    let n = 240u32;
    let model = ClipId::Lost.model();
    let identity: Vec<u32> = (0..n).collect();
    let schedule: Vec<u32> = (0..n)
        .map(|i| if i % 20 == 1 { i - 1 } else { i })
        .collect();

    // Pixel path.
    let ref_px = measured_stream(n, &identity);
    let rec_px = measured_stream(n, &schedule);
    let px = short_vqm().score_streams(&ref_px, &rec_px).overall;

    // Analytic path.
    let src = model.source_features();
    let ref_an: Vec<FeatureFrame> = src[..n as usize].to_vec();
    let rec_an = dsv_media::features::displayed_stream(&ref_an, &schedule);
    let an = short_vqm().score_streams(&ref_an, &rec_an).overall;

    // Same verdict class: both must flag a moderate impairment (clearly
    // not perfect, clearly not total failure) and land within a factor of
    // four of each other — the pixel extractor measures more motion
    // energy than the analytic model assumes, so exact equality is not
    // expected, only agreement of verdict.
    assert!(px > 0.02 && px < 0.9, "pixel score {px}");
    assert!(an > 0.02 && an < 0.9, "analytic score {an}");
    let ratio = px.max(an) / px.min(an).max(1e-9);
    assert!(ratio < 4.0, "paths disagree: pixel {px} vs analytic {an}");
}

#[test]
fn bigyuv_round_trip_preserves_features() {
    // Storage-filter fidelity: writing frames to the BigYUV container and
    // reading them back preserves the extracted features exactly.
    let model = ClipId::Lost.model();
    let r = Rasterizer::new(&model, 32, 24);
    let mut store = BigYuv::new(32, 24);
    let mut direct = Vec::new();
    let mut prev = None;
    for i in 0..30u32 {
        let f = r.render(i);
        direct.push(f.features(prev.as_ref()));
        store.push(&f);
        prev = Some(f);
    }
    let mut prev = None;
    for (i, d) in direct.iter().enumerate() {
        let f = store.frame(i);
        let got = f.features(prev.as_ref());
        assert_eq!(got.si, d.si, "frame {i} SI");
        assert_eq!(got.ti, d.ti, "frame {i} TI");
        prev = Some(f);
    }
}
