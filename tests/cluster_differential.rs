//! The symmetry-cluster layer's correctness contract, end to end.
//!
//! Exact clustering (`DSV_CLUSTER=exact`, the runner default) merges
//! grid points only when their compiled specs share a symmetry-normal
//! form, so its contract is *byte-identity*: for every committed
//! testbed, a clustered grid's outcomes — including the transplanted
//! members — must equal the unclustered serial run's exactly.
//! Approx mode (`DSV_CLUSTER=approx:<eps>`) deliberately trades that
//! exactness for fewer simulations, but must keep its word about how
//! far it strayed: every interpolated point records an [`ErrorBound`]
//! and the ground truth must sit inside it.
//!
//! The queue backend is fixed per process (`DSV_QUEUE` is read once),
//! so backend coverage comes from `ci.sh`, which runs this suite under
//! both `wheel` and `heap`, and separately with `DSV_SHARDS=2` exported
//! for the whole suite.
//!
//! [`ErrorBound`]: dsv_core::runner::ErrorBound

use dsv_core::af::AfConfig;
use dsv_core::aggregate::{aggregate_spec, AggregateConfig};
use dsv_core::local::{LocalConfig, LocalTransport};
use dsv_core::prelude::{ClipId2, ClusterMode, EfProfile, Job, PointSource, Runner, DEPTH_2MTU};
use dsv_core::qbone::QboneConfig;
use dsv_scenario::{canonicalize, ActionSpec};

fn qbone_cfg(rate: u64) -> QboneConfig {
    QboneConfig::new(ClipId2::Lost, 1_000_000, EfProfile::new(rate, DEPTH_2MTU))
}

fn outcomes_json<T: serde::Serialize>(outs: &[T]) -> Vec<String> {
    outs.iter()
        .map(|o| serde_json::to_string(o).unwrap())
        .collect()
}

#[test]
fn exact_mode_is_byte_identical_on_the_single_stream_testbeds() {
    // One mixed batch over three testbeds (QBone, local Frame-Relay,
    // AF), with a deliberate duplicate per testbed so the cluster layer
    // actually transplants something on each.
    let local = LocalConfig::new(
        ClipId2::Lost,
        EfProfile::new(1_100_000, DEPTH_2MTU),
        LocalTransport::Udp,
    );
    let af = AfConfig::new(ClipId2::Lost, 1_000_000, 2_000_000);
    let jobs = [
        Job::Qbone(qbone_cfg(1_000_000)),
        Job::Local(local.clone()),
        Job::Af(af.clone()),
        Job::Qbone(qbone_cfg(1_400_000)),
        Job::Qbone(qbone_cfg(1_000_000)),
        Job::Local(local),
        Job::Af(af),
    ];
    let full = Runner::serial().run(&jobs);
    let clustered = Runner::serial()
        .with_cluster(ClusterMode::Exact)
        .run_clustered(&jobs);

    // The duplicates were transplanted, the rest simulated…
    let sources: Vec<bool> = clustered.iter().map(|p| p.source.is_direct()).collect();
    assert_eq!(sources, [true, true, true, true, false, false, false]);
    for (member, rep) in [(4usize, 0usize), (5, 1), (6, 2)] {
        assert!(
            matches!(clustered[member].source, PointSource::Reused { representative } if representative == rep),
            "point {member} should reuse {rep}: {:?}",
            clustered[member].source
        );
    }
    // …and every outcome, transplanted or not, byte-matches the
    // unclustered serial reference.
    let clustered_outs: Vec<_> = clustered.into_iter().map(|p| p.outcome).collect();
    assert_eq!(outcomes_json(&full), outcomes_json(&clustered_outs));
}

#[test]
fn exact_mode_is_byte_identical_on_rotated_aggregates() {
    // The aggregate testbed's symmetry class is nontrivial: a rotated
    // declaration order is a *different* spec whose per-flow outcomes
    // permute, so the transplant must route through the canonical flow
    // ranks, not just clone. Byte-identity against the unclustered run
    // is exactly the per-position invariance claim.
    let base = AggregateConfig::new(
        ClipId2::Lost,
        1_000_000,
        3,
        EfProfile::new(3_600_000, 2 * DEPTH_2MTU),
    );
    let starved = AggregateConfig::new(
        ClipId2::Lost,
        1_000_000,
        3,
        EfProfile::new(2_400_000, DEPTH_2MTU),
    );
    let cfgs = [
        base.clone(),
        starved,
        base.clone().with_rotation(1),
        base.with_rotation(2),
    ];
    let full = Runner::serial().run_aggregate_batch(&cfgs);
    let clustered = Runner::serial()
        .with_cluster(ClusterMode::Exact)
        .run_aggregate_clustered(&cfgs);
    assert!(matches!(clustered[0].source, PointSource::Simulated));
    assert!(matches!(clustered[1].source, PointSource::Simulated));
    for p in &clustered[2..] {
        assert!(
            matches!(p.source, PointSource::Reused { representative: 0 }),
            "rotations must reuse the unrotated representative: {:?}",
            p.source
        );
    }
    let clustered_outs: Vec<_> = clustered.into_iter().map(|p| p.outcome).collect();
    assert_eq!(outcomes_json(&full), outcomes_json(&clustered_outs));
    // Non-vacuity: the transplanted rotation is not a trivial clone —
    // at a starved point the per-position outcomes differ, so the
    // rank-routed per-flow vectors must differ between rotations of one
    // one representative. (At this clean operating point they may tie;
    // assert on the starved grid instead.)
    let starved_pair = [
        AggregateConfig::new(
            ClipId2::Lost,
            1_000_000,
            3,
            EfProfile::new(2_400_000, DEPTH_2MTU),
        ),
        AggregateConfig::new(
            ClipId2::Lost,
            1_000_000,
            3,
            EfProfile::new(2_400_000, DEPTH_2MTU),
        )
        .with_rotation(1),
    ];
    let pair = Runner::serial()
        .with_cluster(ClusterMode::Exact)
        .run_aggregate_clustered(&starved_pair);
    assert!(matches!(
        pair[1].source,
        PointSource::Reused { representative: 0 }
    ));
    assert_ne!(
        serde_json::to_string(&pair[0].outcome).unwrap(),
        serde_json::to_string(&pair[1].outcome).unwrap(),
        "a rotated starved aggregate must permute, not clone, per-flow outcomes"
    );
}

#[test]
fn exact_mode_is_byte_identical_on_rotated_af_tcp_declarations() {
    // The transport-level testbed added for the AF second act: a
    // heterogeneous-target AF-TCP scenario near capacity, declared in
    // three rotations, mixed with a genuinely different RTT layout so
    // the batch has two classes. The rotations must collapse onto the
    // unrotated representative and the rank-routed per-flow transplant
    // must byte-match the unclustered serial run.
    use dsv_core::prelude::{AfTcpConfig, FlowJob};
    let hetero = AfTcpConfig::new(vec![500_000, 1_000_000, 1_500_000, 2_700_000], vec![0; 4]);
    let jobs = [
        FlowJob::AfTcp(hetero.clone()),
        FlowJob::AfTcp(AfTcpConfig::new(vec![1_050_000; 4], vec![0, 0, 40, 40])),
        FlowJob::AfTcp(hetero.clone().with_rotation(1)),
        FlowJob::AfTcp(hetero.clone().with_rotation(3)),
    ];
    let full = Runner::serial().run_flows_batch(&jobs);
    let clustered = Runner::serial()
        .with_cluster(ClusterMode::Exact)
        .run_flows_clustered(&jobs);
    assert!(matches!(clustered[0].source, PointSource::Simulated));
    assert!(matches!(clustered[1].source, PointSource::Simulated));
    for p in &clustered[2..] {
        assert!(
            matches!(p.source, PointSource::Reused { representative: 0 }),
            "rotations must reuse the unrotated representative: {:?}",
            p.source
        );
    }
    let clustered_outs: Vec<_> = clustered.into_iter().map(|p| p.outcome).collect();
    assert_eq!(outcomes_json(&full), outcomes_json(&clustered_outs));
    // Non-vacuity: the heterogeneous targets make the per-position
    // outcomes genuinely distinct, so the rotated transplant is a
    // permutation, not a clone.
    assert_ne!(
        serde_json::to_string(&full[0]).unwrap(),
        serde_json::to_string(&full[2]).unwrap(),
        "rotation must permute per-flow AF outcomes"
    );
}

#[test]
fn perturbing_one_conditioner_row_breaks_the_merge() {
    // The negative contract: clustering must never merge specs that are
    // not provably symmetric. Nudge a single conditioner row of one
    // aggregate pair and the canonical forms — and so the cluster
    // classes — must separate.
    let cfg = AggregateConfig::new(
        ClipId2::Lost,
        1_000_000,
        2,
        EfProfile::new(2_800_000, 2 * DEPTH_2MTU),
    );
    let spec = aggregate_spec(&cfg);
    let mut perturbed = spec.clone();
    let rule = &mut perturbed.conditioners[0].rules[0];
    match &mut rule.action {
        ActionSpec::Police { rate_bps, .. } => *rate_bps += 1,
        other => panic!("aggregate border rule should police, got {other:?}"),
    }
    assert_ne!(
        canonicalize(&spec).json(),
        canonicalize(&perturbed).json(),
        "a one-row conditioner perturbation must change the canonical form"
    );

    // Same property end to end through the runner: jobs whose configs
    // differ by one policer parameter land in distinct classes and both
    // simulate.
    let jobs = [
        Job::Qbone(qbone_cfg(1_000_000)),
        Job::Qbone(qbone_cfg(1_000_001)),
    ];
    let clustered = Runner::serial()
        .with_cluster(ClusterMode::Exact)
        .run_clustered(&jobs);
    assert!(clustered.iter().all(|p| p.source.is_direct()));
}

#[test]
fn approx_bounds_hold_on_a_dense_qbone_rate_grid() {
    // The error-bounded mode's acceptance gate: on a dense (64+ point)
    // policer-rate grid, approx mode must (a) actually skip simulations
    // and (b) record, for every interpolated point, a per-metric bound
    // that contains the ground truth the full run produces.
    let rates: Vec<u64> = (0..66).map(|i| 800_000 + 25_000 * i).collect();
    let jobs: Vec<Job> = rates.iter().map(|&r| Job::Qbone(qbone_cfg(r))).collect();
    let threads = std::thread::available_parallelism().map_or(1, |n| n.get());
    let truth = Runner::serial().with_threads(threads).run(&jobs);
    let approx = Runner::serial()
        .with_threads(threads)
        .with_cluster(ClusterMode::Approx(0.05))
        .run_clustered(&jobs);

    let interpolated: Vec<usize> = (0..jobs.len())
        .filter(|&i| matches!(approx[i].source, PointSource::Interpolated { .. }))
        .collect();
    assert!(
        interpolated.len() >= jobs.len() / 4,
        "a dense monotone grid should interpolate a healthy fraction, got {} of {}",
        interpolated.len(),
        jobs.len()
    );
    for &i in &interpolated {
        let PointSource::Interpolated { lo, hi, ref bound } = approx[i].source else {
            unreachable!()
        };
        assert!(
            lo < i && i < hi,
            "anchors must bracket point {i}: {lo}..{hi}"
        );
        let got = &approx[i].outcome;
        let want = &truth[i];
        assert!(
            (got.quality - want.quality).abs() <= bound.quality,
            "point {i}: quality {} vs truth {} exceeds bound {}",
            got.quality,
            want.quality,
            bound.quality
        );
        assert!(
            (got.frame_loss - want.frame_loss).abs() <= bound.frame_loss,
            "point {i}: frame_loss {} vs truth {} exceeds bound {}",
            got.frame_loss,
            want.frame_loss,
            bound.frame_loss
        );
        assert!(
            (got.packet_loss - want.packet_loss).abs() <= bound.packet_loss,
            "point {i}: packet_loss {} vs truth {} exceeds bound {}",
            got.packet_loss,
            want.packet_loss,
            bound.packet_loss
        );
    }
    // Anchors (and any exact duplicates) are exact: they byte-match the
    // ground truth.
    for i in 0..jobs.len() {
        if approx[i].source.is_direct() {
            assert_eq!(
                serde_json::to_string(&approx[i].outcome).unwrap(),
                serde_json::to_string(&truth[i]).unwrap(),
                "simulated anchor {i} must match the full run exactly"
            );
        }
    }
}
