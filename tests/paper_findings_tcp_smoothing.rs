//! The bursty-vs-TCP-vs-ABR smoothing sweep under QBone EF policers.
//!
//! The paper's §5 conjecture: a TCP-based streaming server would not
//! need the explicit pacing shaper, because congestion control
//! "self-smooths" the burst structure the policer punishes. This grid
//! pins what the engine actually shows, in three acts:
//!
//! * **Loss terms, shallow buckets** — at the paper's 2-MTU depth the
//!   closed loop concedes rate and takes a small fraction of the open
//!   loop's policer drops. That is the conjecture, confirmed — but only
//!   in loss terms: the concession is so deep that goodput is capped by
//!   the bucket depth, not the token rate.
//! * **Deep buckets invert the ranking** — once the bucket admits a full
//!   congestion window, the open-loop sender is conformant (zero drops,
//!   full rate) while TCP's probing still overshoots. Self-smoothing is
//!   a shallow-bucket phenomenon.
//! * **ABR turns the loss story into a quality story** — the ladder
//!   downshifts instead of stalling wherever the bucket is workable, and
//!   climbs with provisioning; only the shallowest bucket breaks it.
//!
//! The grid loads a committed golden
//! (`results/findings_tcp_smoothing.json`) through
//! [`dsv_core::golden::golden_flows`]: a checksum over the generating
//! configs fails loudly if the tested grid drifts from the committed
//! one, and `DSV_REGEN=1` re-simulates and rewrites the file.

use dsv_core::prelude::*;
use dsv_core::smoothing::{DEPTH_10MTU, DEPTH_40MTU};

const ENC: u64 = 1_500_000;
const SERVERS: [SmoothingServer; 3] = [
    SmoothingServer::Bursty,
    SmoothingServer::Tcp,
    SmoothingServer::Abr,
];
/// Token rates spanning under-, at-, and over-provisioned profiles
/// relative to the 1.5 Mbit/s encoding.
const RATES: [u64; 3] = [800_000, 1_650_000, 5_000_000];
/// The paper's shallow bucket, a one-window bucket, and a deep one.
const DEPTHS: [u32; 3] = [DEPTH_2MTU, DEPTH_10MTU, DEPTH_40MTU];

/// The committed grid, server-major, then token rate, then bucket depth.
fn grid() -> Vec<FlowJob> {
    let mut jobs = Vec::new();
    for &server in &SERVERS {
        for &rate in &RATES {
            for &depth in &DEPTHS {
                jobs.push(FlowJob::Smoothing(SmoothingConfig::new(
                    ClipId2::Lost,
                    ENC,
                    server,
                    EfProfile::new(rate, depth),
                )));
            }
        }
    }
    jobs
}

fn outcomes() -> Vec<FlowsOutcome> {
    golden_flows("findings_tcp_smoothing", &grid())
}

/// The single flow at (server index, rate index, depth index).
fn flow(outs: &[FlowsOutcome], s: usize, r: usize, d: usize) -> &FlowOutcome {
    &outs[(s * RATES.len() + r) * DEPTHS.len() + d].per_flow[0]
}

#[test]
fn golden_covers_the_grid() {
    let outs = outcomes();
    assert_eq!(outs.len(), SERVERS.len() * RATES.len() * DEPTHS.len());
    for out in &outs {
        assert_eq!(out.per_flow.len(), 1, "smoothing runs are single-flow");
    }
}

#[test]
fn tcp_self_smooths_in_loss_terms_at_the_paper_bucket() {
    // The conjecture, confirmed where the paper posed it: at 2 MTU the
    // open loop blasts into the drops while the closed loop concedes.
    let outs = outcomes();
    let b = flow(&outs, 0, 1, 0);
    let t = flow(&outs, 1, 1, 0);
    assert!(b.packet_loss > 0.4, "open loop bleeds: {}", b.packet_loss);
    assert!(
        t.policer_drops * 3 < b.policer_drops,
        "tcp {} vs bursty {} policer drops",
        t.policer_drops,
        b.policer_drops
    );
    assert!(t.packet_loss < b.packet_loss);
}

#[test]
fn bucket_depth_not_token_rate_caps_the_closed_loop() {
    // The cost of the concession: at 2 MTU, doubling the token rate buys
    // TCP nothing — line-rate window bursts are clipped by the bucket
    // depth, so 800 kbit/s and 1.65 Mbit/s profiles land on the *same*
    // goodput, far below even the smaller token rate.
    let outs = outcomes();
    let low = flow(&outs, 1, 0, 0);
    let mid = flow(&outs, 1, 1, 0);
    assert_eq!(
        low.achieved_bps, mid.achieved_bps,
        "token rate must be irrelevant at 2 MTU"
    );
    assert!(
        low.achieved_bps < 0.5 * RATES[0] as f64,
        "goodput {} is bucket-capped, not token-capped",
        low.achieved_bps
    );
}

#[test]
fn deep_buckets_invert_the_ranking() {
    // A 40-MTU bucket admits the whole burst: the open loop becomes
    // conformant (zero policer drops, full encoding rate) while TCP's
    // probing still overshoots and undershoots the open loop's goodput.
    // Self-smoothing is a shallow-bucket phenomenon.
    let outs = outcomes();
    let b = flow(&outs, 0, 1, 2);
    let t = flow(&outs, 1, 1, 2);
    assert_eq!(b.policer_drops, 0, "open loop conformant at 40 MTU");
    assert!(
        b.achieved_bps > 0.95 * b.target_bps as f64,
        "open loop holds its rate: {} vs {}",
        b.achieved_bps,
        b.target_bps
    );
    assert!(
        t.achieved_bps < b.achieved_bps,
        "tcp {} must trail the conformant open loop {}",
        t.achieved_bps,
        b.achieved_bps
    );
}

#[test]
fn open_loop_is_token_limited_when_underprovisioned() {
    // At 800 kbit/s the open loop delivers the token rate at every
    // depth — the policer, not the bucket, is the binding constraint —
    // and pays for it in loss at the shallow bucket.
    let outs = outcomes();
    for (d, depth) in DEPTHS.iter().enumerate() {
        let b = flow(&outs, 0, 0, d);
        let ratio = b.achieved_bps / RATES[0] as f64;
        assert!(
            (0.9..=1.1).contains(&ratio),
            "depth {depth}: achieved {} should track the token rate",
            b.achieved_bps
        );
    }
    assert!(flow(&outs, 0, 0, 0).packet_loss > 0.3);
}

#[test]
fn tcp_goodput_grows_from_shallow_to_deep() {
    // Across the bucket sweep TCP recovers goodput as the bucket
    // deepens; at the encoding-rate profile the growth is monotone.
    let outs = outcomes();
    for r in [0, 1] {
        assert!(
            flow(&outs, 1, r, 0).achieved_bps < flow(&outs, 1, r, 2).achieved_bps,
            "rate {}: deep bucket must beat shallow",
            RATES[r]
        );
    }
    let shallow = flow(&outs, 1, 1, 0).achieved_bps;
    let window = flow(&outs, 1, 1, 1).achieved_bps;
    let deep = flow(&outs, 1, 1, 2).achieved_bps;
    assert!(
        shallow < window && window < deep,
        "{shallow} {window} {deep}"
    );
}

#[test]
fn abr_downshifts_instead_of_breaking_given_a_workable_bucket() {
    // The shallowest bucket starves even the lowest rung mid-session;
    // from one congestion window up, the ladder absorbs every profile in
    // the grid without abandoning the session.
    let outs = outcomes();
    for (r, rate) in RATES.iter().enumerate() {
        assert!(
            flow(&outs, 2, r, 0).broken,
            "rate {rate}: 2 MTU must break the session"
        );
        for d in [1, 2] {
            let a = flow(&outs, 2, r, d);
            assert!(
                !a.broken,
                "rate {rate} depth {}: ladder must finish",
                DEPTHS[d]
            );
        }
    }
}

#[test]
fn abr_ladder_climbs_with_provisioning() {
    // At the deep bucket the mean rung is strictly ordered by token
    // rate, and the generous profile plays the top of the ladder with a
    // clean session: no stalls, no rebuffers.
    let outs = outcomes();
    let rungs: Vec<f64> = (0..RATES.len())
        .map(|r| flow(&outs, 2, r, 2).mean_rung)
        .collect();
    assert!(
        rungs[0] < rungs[1] && rungs[1] < rungs[2],
        "mean rung must climb with the token rate: {rungs:?}"
    );
    let top = flow(&outs, 2, 2, 2);
    assert!(top.mean_rung > 2.0, "generous profile: {}", top.mean_rung);
    assert_eq!(top.rebuffers, 0);
    assert_eq!(top.stall_s, 0.0);
}
