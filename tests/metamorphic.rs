//! Metamorphic properties of the reproduction.
//!
//! Rather than pinning absolute outputs, these tests assert relations
//! that must hold between *pairs or families* of runs:
//!
//! * **Time dilation** — scaling every rate down and every duration up
//!   by the same integer factor scales all timestamps exactly and must
//!   not change a single per-packet decision.
//! * **Rate monotonicity** — raising the token rate (all else equal)
//!   never loses more traffic, on the live policer chain and on the
//!   committed paper grids.
//! * **Depth monotonicity** — the paper's b = 4500 B profile is never
//!   worse than b = 3000 B at the same rate.
//! * **Shaping monotonicity** — a shaped WMT stream is never worse than
//!   the same stream unshaped at a starved profile (§4.2).
//!
//! Every live property runs under both `DSV_QUEUE` backends; the grid
//! properties load the committed goldens (see `dsv_core::golden`).

use std::sync::Mutex;

use dsv_check::scenario::{run_policer_chain, ChainConfig};
use dsv_core::prelude::*;
use dsv_sim::{QueueBackend, SimDuration};

const ENC: u64 = 1_500_000;

/// Serializes tests that switch backends via the environment.
static ENV_LOCK: Mutex<()> = Mutex::new(());

fn both_backends() -> [QueueBackend; 2] {
    [QueueBackend::Wheel, QueueBackend::Heap]
}

/// A policed chain with real drops: 12 Mbps offered against 2 Mbps.
fn starved_chain(backend: QueueBackend) -> ChainConfig {
    ChainConfig {
        packets: 300,
        size: 1500,
        gap: SimDuration::from_millis(1),
        rate_bps: 2_000_000,
        depth_bytes: 3000,
        link_bps: 10_000_000,
        prop: SimDuration::from_micros(50),
        backend,
        ..ChainConfig::default()
    }
}

#[test]
fn time_dilation_preserves_every_decision() {
    // k = 4 divides both rates, so the dilated run's timestamps are
    // exactly 4× the originals and the policer sees identical
    // rate × interval products — same admissions, same drops, same
    // delivery order, identical loss fraction. Checked on both queue
    // backends: the wheel must not introduce scale-dependent rounding.
    const K: u64 = 4;
    for backend in both_backends() {
        let base_cfg = starved_chain(backend);
        let base = run_policer_chain(&base_cfg);
        let dilated = run_policer_chain(&base_cfg.dilated(K));
        assert!(base.drops > 0, "property needs a policed run");
        assert_eq!(
            base.delivered_ids, dilated.delivered_ids,
            "{backend:?}: dilation changed per-packet decisions"
        );
        assert_eq!(base.drops, dilated.drops);
        assert_eq!(base.loss_fraction(), dilated.loss_fraction());
        assert_eq!(
            dilated.end_time.as_nanos(),
            K * base.end_time.as_nanos(),
            "{backend:?}: timestamps must scale exactly by k"
        );
        assert_eq!(
            base.dispatched, dilated.dispatched,
            "{backend:?}: dilation changed the event structure"
        );
    }
}

#[test]
fn chain_loss_is_monotone_in_token_rate() {
    for backend in both_backends() {
        let mut losses = Vec::new();
        for rate in [1_000_000u64, 2_000_000, 4_000_000, 8_000_000, 16_000_000] {
            let out = run_policer_chain(&ChainConfig {
                rate_bps: rate,
                ..starved_chain(backend)
            });
            losses.push((rate, out.loss_fraction()));
        }
        assert!(
            losses.windows(2).all(|w| w[1].1 <= w[0].1),
            "{backend:?}: loss not monotone in rate: {losses:?}"
        );
        assert!(losses[0].1 > 0.5, "lowest rate should starve: {losses:?}");
        assert_eq!(losses.last().unwrap().1, 0.0, "highest rate is generous");
    }
}

#[test]
fn chain_loss_is_monotone_in_bucket_depth() {
    for backend in both_backends() {
        for rate in [1_500_000u64, 2_000_000, 3_000_000, 6_000_000] {
            let loss_at = |depth: u32| {
                run_policer_chain(&ChainConfig {
                    rate_bps: rate,
                    depth_bytes: depth,
                    ..starved_chain(backend)
                })
                .loss_fraction()
            };
            let shallow = loss_at(3000);
            let deep = loss_at(4500);
            assert!(
                deep <= shallow,
                "{backend:?}: deeper bucket lost more at {rate} bps: {deep} vs {shallow}"
            );
        }
    }
}

/// The committed QBone findings grid (same golden the paper-findings
/// tests load — one source of truth for both suites).
fn qbone_findings_sweep() -> SweepResult {
    let base = QboneConfig::new(ClipId2::Lost, ENC, EfProfile::new(ENC, DEPTH_2MTU));
    let rates: Vec<u64> = (0..8)
        .map(|i| (ENC as f64 * (0.88 + i as f64 * 0.08)) as u64)
        .collect();
    golden_qbone_sweep(
        "findings_qbone_sweep",
        &base,
        &rates,
        &[DEPTH_2MTU, DEPTH_3MTU],
        "findings sweep",
    )
}

#[test]
fn frame_loss_is_monotone_in_rate_on_the_paper_grid() {
    let sweep = qbone_findings_sweep();
    for depth in [DEPTH_2MTU, DEPTH_3MTU] {
        let curve = sweep.curve(depth);
        // Real sweeps wobble a little (the paper flags the same); allow
        // the run-to-run tolerance the findings tests use.
        assert!(
            curve.windows(2).all(|w| w[1].2 <= w[0].2 + 0.08),
            "depth {depth}: frame loss not monotone in rate: {curve:?}"
        );
    }
}

#[test]
fn deeper_bucket_is_never_worse_on_the_paper_grid() {
    let sweep = qbone_findings_sweep();
    let shallow = sweep.curve(DEPTH_2MTU);
    let deep = sweep.curve(DEPTH_3MTU);
    assert_eq!(shallow.len(), deep.len());
    for (s, d) in shallow.iter().zip(&deep) {
        assert_eq!(s.0, d.0, "curves must share the rate grid");
        assert!(
            d.2 <= s.2 + 0.05,
            "at {} bps the 4500 B bucket lost more frames ({} vs {})",
            s.0,
            d.2,
            s.2
        );
        assert!(
            d.1 <= s.1 + 0.05,
            "at {} bps the 4500 B bucket scored worse ({} vs {})",
            s.0,
            d.1,
            s.1
        );
    }
}

fn starved_local(shaped: bool) -> LocalConfig {
    let mut cfg = LocalConfig::new(
        ClipId2::Lost,
        EfProfile::new(1_100_000, DEPTH_2MTU),
        LocalTransport::Udp,
    );
    cfg.shaped = shaped;
    cfg
}

#[test]
fn shaping_is_never_worse_on_the_committed_pairs() {
    // Shaped-vs-unshaped WMT pairs at two starved profiles, committed as
    // goldens. Quality is a penalty (lower = better).
    let mut jobs = Vec::new();
    for rate in [1_000_000u64, 1_100_000] {
        for shaped in [false, true] {
            let mut cfg = starved_local(shaped);
            cfg.profile = EfProfile::new(rate, DEPTH_2MTU);
            jobs.push(Job::Local(cfg));
        }
    }
    let outcomes = golden_outcomes("metamorphic_local_pairs", &jobs);
    for pair in outcomes.chunks(2) {
        let (unshaped, shaped) = (&pair[0], &pair[1]);
        assert!(
            shaped.quality <= unshaped.quality + 0.02,
            "shaping hurt quality: {} vs {}",
            shaped.quality,
            unshaped.quality
        );
        assert!(
            shaped.frame_loss <= unshaped.frame_loss + 0.02,
            "shaping hurt frame loss: {} vs {}",
            shaped.frame_loss,
            unshaped.frame_loss
        );
        assert!(
            shaped.policer_drops <= unshaped.policer_drops,
            "shaping must reduce policer drops"
        );
    }
}

#[test]
fn abr_ladder_decisions_are_dilation_invariant() {
    // The ABR policy is a pure function of (buffer, estimate) against
    // (rungs, step): scaling every rate and every duration by the same
    // factor k cancels inside both the buffer quotient and the rung
    // comparison, so the chosen rung is identical — the transport-level
    // analogue of the chain dilation property, checked exactly.
    use dsv_stream::abr::AbrPolicy;
    const K: u64 = 7;
    let rungs = vec![375_000u64, 750_000, 1_125_000, 1_500_000];
    let step = 4_000_000u64;
    let base = AbrPolicy::new(rungs.clone(), step);
    let dilated = AbrPolicy::new(rungs.iter().map(|r| r / 125).collect(), step * K);
    // (rungs/125, est/125) scales the rate axis; (step·k, buffer·k)
    // scales the time axis — independently, as dilation does.
    for buffer_us in (0..30_000_000u64).step_by(1_371_733) {
        for est in (0..6_000_000u64).step_by(271_250) {
            assert_eq!(
                base.choose(buffer_us, est),
                dilated.choose(buffer_us * K, est / 125),
                "dilation changed the rung at buffer {buffer_us} est {est}"
            );
        }
    }
}

/// Scales an AF scenario in time: committed rates and the bottleneck
/// down by k, durations (including the extra RTT) up by k.
fn af_dilated(cfg: &AfTcpConfig, k: u64) -> AfTcpConfig {
    let mut d = cfg.clone();
    d.targets_bps = cfg.targets_bps.iter().map(|t| t / k).collect();
    d.bottleneck_bps = cfg.bottleneck_bps / k;
    d.rtt_extra_ms = cfg.rtt_extra_ms.iter().map(|r| r * k).collect();
    d.duration_us = cfg.duration_us * k;
    d
}

#[test]
fn af_guarantee_finding_survives_time_dilation() {
    // Mini-TCP carries absolute clocks — the 1 s initial RTO, the
    // 200 ms floor, the 60 s ceiling — so AF runs cannot dilate
    // *exactly* the way the open-loop chain does. The metamorphic claim
    // is therefore qualitative: the provisioning verdict (does every
    // flow collect its committed rate?) is scale-free. An
    // underprovisioned ladder stays fully honored and a near-capacity
    // ladder stays broken when the whole scenario runs at half the
    // rates for twice as long.
    const K: u64 = 2;
    let under = AfTcpConfig::new(vec![450_000; 4], vec![0; 4]);
    for cfg in [under.clone(), af_dilated(&under, K)] {
        let out = run_af_tcp(&cfg);
        assert_eq!(
            out.flows_meeting_target(1.0),
            4,
            "underprovisioned verdict must be scale-free"
        );
    }
    let near = AfTcpConfig::new(vec![1_425_000; 4], vec![0; 4]);
    for cfg in [near.clone(), af_dilated(&near, K)] {
        let out = run_af_tcp(&cfg);
        assert_eq!(
            out.flows_meeting_target(0.95),
            0,
            "near-capacity verdict must be scale-free"
        );
    }
}

#[test]
fn af_achieved_is_monotone_in_committed_rate() {
    // Two flows share the AF bottleneck; only the first flow's
    // committed rate grows. Its achieved goodput must not fall — more
    // green tokens never hurt — while staying a genuine contest (the
    // competitor keeps a fixed commitment throughout).
    let mut achieved = Vec::new();
    for cir in [250_000u64, 1_000_000, 2_000_000] {
        let out = run_af_tcp(&AfTcpConfig::new(vec![cir, 1_000_000], vec![0, 0]));
        achieved.push((cir, out.per_flow[0].achieved_bps));
    }
    assert!(
        achieved.windows(2).all(|w| w[1].1 >= w[0].1),
        "achieved must be monotone in the committed rate: {achieved:?}"
    );
}

#[test]
fn shaping_is_never_worse_live_under_both_backends() {
    // One live pair per backend (the committed pairs above cover the
    // grid; this proves the property is backend-independent).
    let _guard = ENV_LOCK.lock().unwrap();
    for backend in ["wheel", "heap"] {
        std::env::set_var("DSV_QUEUE", backend);
        let unshaped = run_local(&starved_local(false));
        let shaped = run_local(&starved_local(true));
        assert!(
            shaped.quality <= unshaped.quality + 0.02,
            "{backend}: shaping hurt quality: {} vs {}",
            shaped.quality,
            unshaped.quality
        );
    }
    std::env::remove_var("DSV_QUEUE");
}
