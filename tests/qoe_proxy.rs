//! The QoE proxy's error-bound contract (DESIGN.md §12).
//!
//! Three layers, all anchored to the committed dataset
//! `results/findings_qoe_proxy.json`:
//!
//! 1. the dataset itself is checksum-guarded against today's grid
//!    definitions (stale truth fails loudly, like every golden);
//! 2. the committed [`ProxyModel`] coefficients keep their mean absolute
//!    error within [`PROXY_MAE_BOUND`] on **every** committed grid, for
//!    both the same-encoding and vs-best targets;
//! 3. a live `sampled:<k>` run reproduces the committed features
//!    byte-for-byte and reports a live error bound consistent with the
//!    committed one.

use dsv_core::prelude::*;
use dsv_core::qoe::{self, QoeMode};
use dsv_core::qoe_dataset;
use dsv_vqm::qoe::{ProxyModel, COMMITTED_SAME, COMMITTED_VS_BEST, PROXY_MAE_BOUND};

#[test]
fn committed_dataset_matches_todays_grid_definitions() {
    // load() panics on a missing, unparseable, or stale file.
    let data = qoe_dataset::load();
    assert_eq!(data.grids.len(), 13, "one entry per committed grid");
    let total: usize = data.grids.iter().map(|g| g.points.len()).sum();
    assert_eq!(total, data.points, "redundant total is consistent");
    assert_eq!(
        data.points, 308,
        "296 simulations, aggregates contributing one record per flow"
    );
    for grid in &data.grids {
        assert!(!grid.points.is_empty(), "empty grid {}", grid.label);
    }
}

#[test]
fn proxy_mae_within_committed_bound_on_every_grid() {
    // Guard against placeholder coefficients sneaking into a commit.
    assert!(COMMITTED_SAME.iter().any(|&c| c != 0.0));
    assert!(COMMITTED_VS_BEST.iter().any(|&c| c != 0.0));

    let data = qoe_dataset::load();
    let model = ProxyModel::committed();
    for (label, mae_same, mae_vs_best) in qoe_dataset::proxy_grid_maes(&data, &model) {
        assert!(
            mae_same <= PROXY_MAE_BOUND,
            "grid {label}: same-encoding MAE {mae_same:.4} exceeds the \
             committed bound {PROXY_MAE_BOUND}"
        );
        if let Some(mae) = mae_vs_best {
            assert!(
                mae <= PROXY_MAE_BOUND,
                "grid {label}: vs-best MAE {mae:.4} exceeds the committed \
                 bound {PROXY_MAE_BOUND}"
            );
        }
    }
}

#[test]
fn sampled_mode_live_bound_agrees_with_committed_dataset() {
    let data = qoe_dataset::load();
    let af = data
        .grids
        .iter()
        .find(|g| g.label == "af_phb")
        .expect("af_phb grid committed");

    // The first two AF ablation configs, exactly as the dataset defines
    // them (cheap enough for a debug-mode simulation).
    let cfgs: Vec<AfConfig> = [(0u64, 0u64), (1_000_000, 500_000)]
        .iter()
        .map(|&(load, cir)| {
            let mut cfg = AfConfig::new(ClipId2::Lost, 1_500_000, load);
            cfg.cross_cir_bps = cir;
            cfg
        })
        .collect();

    let before = qoe::snapshot();
    let scope = force_mode(QoeMode::Sampled(1));
    for (i, cfg) in cfgs.iter().enumerate() {
        let (out, report) = dsv_core::af::run_af_detailed(cfg);
        let point = &af.points[i];
        // The event-path extractor reproduces the committed features
        // byte-for-byte...
        assert_eq!(
            report.features.canonical_bytes(),
            point.features.canonical_bytes(),
            "af point {i}: live features diverge from the committed dataset"
        );
        // ...and the reported score is the committed proxy's prediction.
        assert_eq!(
            out.quality,
            ProxyModel::committed().predict_same(&point.features),
            "af point {i}: sampled mode must report the proxy estimate"
        );
    }
    drop(scope);

    let delta = qoe::snapshot().since(&before);
    assert_eq!(delta.proxy_scored, 2, "both flows proxy-scored");
    assert_eq!(delta.sampled_checked, 2, "sampled:1 checks every flow");
    assert_eq!(delta.sampled_errs, 2, "one comparison per reference");
    assert_eq!(delta.full_scored, 0, "checks do not count as full scoring");
    let live_mae = delta.live_mae().expect("comparisons ran");
    assert!(
        live_mae <= PROXY_MAE_BOUND,
        "live MAE {live_mae:.4} violates the committed bound {PROXY_MAE_BOUND}"
    );
    assert!(
        delta.live_max_err() <= PROXY_MAE_BOUND,
        "live max error {:.4} violates the committed bound {PROXY_MAE_BOUND}",
        delta.live_max_err()
    );
}
