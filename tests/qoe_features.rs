//! Engine-configuration invariance of extracted flow features.
//!
//! The QoE proxy path (DESIGN.md §12) scores sessions from the
//! [`FlowFeatures`] the client extracts on the delivery path, so those
//! features must inherit the engine's byte-identity contract: the same
//! policed chain has to yield the same canonical feature bytes under the
//! timing-wheel and binary-heap event queues, under the sharded engine,
//! and under the cluster-exact canonical-spec rewrite (equal canonical
//! JSON is the premise `DSV_CLUSTER=exact` reuses outcomes on). This
//! suite pins that property on live QBone points — EF policer in the
//! path — with the parameters drawn by proptest strategies.
//!
//! Every case is four full simulations, so the property caps its case
//! count well below the default (`PROPTEST_CASES` can lower it further,
//! never raise it past the cap). A pinned starved point runs first so
//! the loss-run machinery is exercised deterministically, not just when
//! the strategy happens to draw a sub-encoding token rate.

use std::sync::Mutex;

use dsv_core::artifacts::ArtifactStore;
use dsv_core::prelude::*;
use dsv_core::qbone::{qbone_spec, QboneConfig};
use dsv_net::features::FlowFeatures;
use dsv_net::network::Simulation;
use dsv_net::shard::set_shards_for_process;
use dsv_scenario::{canonicalize, compile, shard_plan, CompileOptions, ScenarioSpec};
use dsv_sim::{EventQueue, QueueBackend, SimTime};
use proptest::prelude::*;

/// Serializes use of the process-wide shard override (mirrors
/// `shard_determinism.rs`).
static SHARD_LOCK: Mutex<()> = Mutex::new(());

const ENC: u64 = 1_500_000;

fn config(rate_frac: f64, depth: u32, cross: bool) -> QboneConfig {
    let mut cfg = QboneConfig::new(
        ClipId2::Lost,
        ENC,
        EfProfile::new((ENC as f64 * rate_frac) as u64, depth),
    );
    cfg.cross_traffic = cross;
    cfg
}

/// Compile `spec`, run it to `horizon` under an explicit queue backend
/// and shard count, and return the client's extracted features.
fn drive_features(
    spec: &ScenarioSpec,
    horizon: SimTime,
    backend: QueueBackend,
    shards: usize,
) -> FlowFeatures {
    let _guard = SHARD_LOCK.lock().unwrap_or_else(|e| e.into_inner());
    set_shards_for_process(shards);
    let compiled = compile(
        spec,
        CompileOptions {
            store: Some(&ArtifactStore),
            wrap: None,
        },
    )
    .expect("spec compiles");
    let client = compiled.sole_client().expect("one client").clone();
    let mut queue = EventQueue::with_backend(backend);
    compiled.net.schedule_starts(&mut queue);
    let mut sim = Simulation {
        net: compiled.net,
        queue,
    };
    sim.run_until(horizon);
    set_shards_for_process(0);
    let features = client.borrow().report().features.clone();
    features
}

/// Run one configuration under all engine axes and assert the canonical
/// feature bytes are identical. Returns the reference features.
fn check_invariance(cfg: &QboneConfig) -> FlowFeatures {
    let spec = qbone_spec(cfg);
    let horizon = SimTime::ZERO + run_horizon(cfg.clip.into());

    let reference = drive_features(&spec, horizon, QueueBackend::Wheel, 1);
    let bytes = reference.canonical_bytes();
    prop_assert!(
        reference.packets > 0,
        "vacuous case: no media delivered at {:?}",
        cfg.profile
    );

    let heap = drive_features(&spec, horizon, QueueBackend::Heap, 1);
    prop_assert_eq!(
        &bytes,
        &heap.canonical_bytes(),
        "heap backend changed the features at {:?}",
        cfg.profile
    );

    let sharded = drive_features(&spec, horizon, QueueBackend::Wheel, 2);
    prop_assert_eq!(
        &bytes,
        &sharded.canonical_bytes(),
        "2-shard engine changed the features at {:?}",
        cfg.profile
    );

    let canon = canonicalize(&spec).spec;
    let clustered = drive_features(&canon, horizon, QueueBackend::Wheel, 1);
    prop_assert_eq!(
        &bytes,
        &clustered.canonical_bytes(),
        "canonical-spec rewrite changed the features at {:?}",
        cfg.profile
    );

    reference
}

#[test]
fn features_are_engine_configuration_invariant_on_a_live_policed_chain() {
    // Non-vacuity for the shard axis: the QBone topology must actually
    // admit a 2-way partition, or the `shards = 2` runs silently test
    // the serial fallback.
    let plan = shard_plan(&qbone_spec(&config(1.0, DEPTH_2MTU, false)), 2)
        .expect("qbone spec splits into 2 domains");
    assert_eq!(plan.partition.domains, 2);
    assert!(plan.members.iter().all(|m| !m.is_empty()));

    // Non-vacuity for the loss machinery: a pinned starved point (the
    // scenario_differential "starved corner") must show sequence-gap
    // losses from the live policer.
    let starved = check_invariance(&config(0.88, DEPTH_2MTU, false));
    assert!(
        starved.lost_packets > 0,
        "the starved corner should lose packets to the EF policer"
    );
    assert!(starved.loss_runs > 0 && starved.max_burst_loss > 0);

    // Property: invariance holds across the sampled grid neighbourhood —
    // token rates around the encoding, both paper depths, with and
    // without backbone cross traffic.
    let mut rng = TestRng::from_label("qoe_features_invariance");
    let strategy = (0.82f64..1.30, 0u8..2, 0u8..2);
    for _ in 0..cases().min(3) {
        let (frac, depth, cross) = strategy.generate(&mut rng);
        let depth = if depth == 0 { DEPTH_2MTU } else { DEPTH_3MTU };
        check_invariance(&config(frac, depth, cross == 1));
    }
}
