//! Shard-count invariance: the sharded engine is an implementation
//! detail, never a semantics change.
//!
//! The conservative parallel engine (`dsv_net::shard`) partitions a
//! network at link boundaries and advances the domains in lockstep
//! windows. Its correctness contract is *byte-identity*: for any shard
//! count, every experiment outcome — quality score, per-packet drops,
//! delay statistics, the full serialized `RunOutcome` — equals the
//! serial run's exactly. These tests enforce that contract on all four
//! committed testbeds (QBone, local Frame-Relay, AF, aggregate).
//!
//! The queue backend is fixed per process (`DSV_QUEUE` is read once),
//! so backend coverage comes from `ci.sh`, which runs this suite under
//! both `wheel` and `heap`, and separately with `DSV_SHARDS=2` exported
//! for the whole suite.

use std::sync::Mutex;

use dsv_core::af::{af_spec, run_af, AfConfig};
use dsv_core::aggregate::{aggregate_spec, run_aggregate, AggregateConfig};
use dsv_core::local::{local_spec, run_local, LocalConfig, LocalTransport};
use dsv_core::prelude::{ClipId2, EfProfile, DEPTH_2MTU};
use dsv_core::qbone::{qbone_spec, run_qbone, QboneConfig};
use dsv_net::shard::set_shards_for_process;
use dsv_scenario::shard_plan;

/// Serializes tests that set the process-wide shard override.
static SHARD_LOCK: Mutex<()> = Mutex::new(());

/// Run `f` with the process shard count forced to `n`, restoring the
/// environment default afterwards even on panic-free early returns.
fn with_shards<T>(n: usize, f: impl FnOnce() -> T) -> T {
    let _guard = SHARD_LOCK.lock().unwrap_or_else(|e| e.into_inner());
    set_shards_for_process(n);
    let out = f();
    set_shards_for_process(0);
    out
}

fn qbone_cfg() -> QboneConfig {
    QboneConfig::new(
        ClipId2::Lost,
        1_500_000,
        EfProfile::new(1_600_000, DEPTH_2MTU),
    )
}

#[test]
fn qbone_outcome_is_shard_count_invariant() {
    let cfg = qbone_cfg();
    // Non-vacuity: the QBone topology must actually admit a 2-way
    // partition, otherwise this whole file tests the serial fallback.
    let plan = shard_plan(&qbone_spec(&cfg), 2).expect("qbone spec splits into 2 domains");
    assert_eq!(plan.partition.domains, 2);
    assert!(plan.members.iter().all(|m| !m.is_empty()));

    let serial = serde_json::to_string(&with_shards(1, || run_qbone(&cfg))).unwrap();
    for shards in [2usize, 3] {
        let sharded = serde_json::to_string(&with_shards(shards, || run_qbone(&cfg))).unwrap();
        assert_eq!(serial, sharded, "shards={shards} diverged from serial");
    }
}

#[test]
fn local_outcome_is_shard_count_invariant() {
    let mut cfg = LocalConfig::new(
        ClipId2::Lost,
        EfProfile::new(1_300_000, DEPTH_2MTU),
        LocalTransport::Udp,
    );
    cfg.cross_traffic = true; // seeded RNG apps must survive the split
    let plan2 = shard_plan(&local_spec(&cfg), 2);
    let serial = serde_json::to_string(&with_shards(1, || run_local(&cfg))).unwrap();
    let sharded = serde_json::to_string(&with_shards(2, || run_local(&cfg))).unwrap();
    assert_eq!(serial, sharded, "plan2={plan2:?}");
}

#[test]
fn af_outcome_is_shard_count_invariant() {
    let cfg = AfConfig::new(ClipId2::Lost, 1_500_000, 3_000_000);
    let plan2 = shard_plan(&af_spec(&cfg), 2);
    let serial = serde_json::to_string(&with_shards(1, || run_af(&cfg))).unwrap();
    let sharded = serde_json::to_string(&with_shards(2, || run_af(&cfg))).unwrap();
    assert_eq!(serial, sharded, "plan2={plan2:?}");
}

#[test]
fn aggregate_outcome_is_shard_count_invariant() {
    let cfg = AggregateConfig::new(
        ClipId2::Lost,
        1_000_000,
        3,
        EfProfile::new(3_600_000, 2 * DEPTH_2MTU),
    );
    let plan2 = shard_plan(&aggregate_spec(&cfg), 2);
    let serial = serde_json::to_string(&with_shards(1, || run_aggregate(&cfg))).unwrap();
    let sharded = serde_json::to_string(&with_shards(2, || run_aggregate(&cfg))).unwrap();
    assert_eq!(serial, sharded, "plan2={plan2:?}");
}

#[test]
fn spec_level_plans_exist_for_the_wide_area_testbeds() {
    // The spec-level planner (`dsv_scenario::shard_plan`) and the
    // runtime partitioner agree by construction; record here which
    // committed testbeds are actually splittable so a topology change
    // that silently serializes every sharded run is caught.
    let qbone = shard_plan(&qbone_spec(&qbone_cfg()), 2);
    assert!(qbone.is_some(), "qbone must split");
}
