//! Mini-TCP edge cases the AF and smoothing suites lean on.
//!
//! Three regimes that the happy-path transfer tests never visit:
//!
//! * **Total blackout** — no ACK ever returns. The RTO must back off
//!   exponentially to its 60 s ceiling, retransmit go-back-N from
//!   `snd_una`, and collapse the window to one segment.
//! * **Hostile remarking** — every data segment enters a congested WRED
//!   queue at the highest drop precedence. The transfer must crawl, not
//!   wedge: the sender keeps probing and whatever is delivered is
//!   delivered in order.
//! * **ACK reordering** — the return path reorders packets through a
//!   fault-injection tap ([`dsv_check::fault`]). Cumulative ACKs make
//!   reordering harmless: the transfer completes byte-for-byte as if the
//!   path were clean.

use dsv_check::fault::{FaultKind, FaultPlan};
use dsv_net::app::{Handle, Shared};
use dsv_net::conditioner::PassThrough;
use dsv_net::link::Link;
use dsv_net::network::{NetworkBuilder, Simulation};
use dsv_net::packet::{Dscp, FlowId, NodeId};
use dsv_net::wred::WredQueue;
use dsv_sim::{SimDuration, SimTime};
use dsv_stream::bulk::{BulkTcpConfig, BulkTcpSender, BulkTcpSink};
use dsv_stream::payload::StreamPayload;
use dsv_stream::tcp::{TcpSender, MSS};

#[test]
fn blackout_backs_off_exponentially_to_the_rto_ceiling() {
    let mut s = TcpSender::new();
    s.write(1_000_000);
    let mut now = SimTime::ZERO;
    let first = s.poll_send(now);
    assert!(!first.segments.is_empty(), "initial window sends");
    let initial_rto = first.arm_rto.expect("first send arms the timer");
    assert_eq!(initial_rto, SimDuration::from_secs(1));

    // Fire every deadline with no ACK ever arriving: each timeout must
    // double the RTO (clamped at 60 s), retransmit exactly the first
    // unacknowledged segment, and never advance snd_una.
    let mut rtos = Vec::new();
    for _ in 0..10 {
        let deadline = s.rto_deadline().expect("timer stays armed");
        now = deadline;
        let acts = s.on_timeout(now);
        assert_eq!(
            acts.segments,
            vec![(0, MSS)],
            "go-back-N retransmits from snd_una"
        );
        rtos.push(acts.arm_rto.expect("timeout re-arms the timer"));
        assert_eq!(s.snd_una(), 0, "nothing was acknowledged");
        assert_eq!(s.cwnd(), u64::from(MSS), "window collapses to one MSS");
    }
    assert_eq!(s.timeouts, 10);
    // 2 s, 4 s, … doubling, then pinned at the 60 s ceiling forever.
    for (i, pair) in rtos.windows(2).enumerate() {
        let doubled = pair[0] * 2;
        let expected = doubled.min(SimDuration::from_secs(60));
        assert_eq!(pair[1], expected, "backoff step {i} wrong: {rtos:?}");
    }
    assert_eq!(*rtos.last().unwrap(), SimDuration::from_secs(60));
}

/// A two-host + router fixture for transfer-level edge cases. Returns
/// the simulation and a handle to the sink; the data flow is
/// `FlowId(1)`, ACKs `FlowId(2)`.
fn bulk_fixture(
    total: u64,
    dscp: Dscp,
    wire: impl FnOnce(&mut NetworkBuilder<StreamPayload>, NodeId, NodeId, NodeId),
) -> (Simulation<StreamPayload>, Handle<BulkTcpSink>) {
    let mut b = NetworkBuilder::new();
    let r = b.add_router("r");
    let sender_guess = NodeId(2);
    let (sink_handle, sink_app) = Shared::new(BulkTcpSink::new(sender_guess, FlowId(2)));
    let sink = b.add_host("sink", Box::new(sink_app));
    let sender = b.add_host(
        "sender",
        Box::new(BulkTcpSender::new(BulkTcpConfig {
            client: sink,
            flow: FlowId(1),
            dscp,
            total_bytes: total,
        })),
    );
    assert_eq!(sender, sender_guess, "node id layout assumption");
    wire(&mut b, sender, sink, r);
    (Simulation::new(b.build()), sink_handle)
}

#[test]
fn reordered_acks_do_not_break_the_byte_stream() {
    // Clean reference run, then the same transfer with two packets held
    // back 5 ms each at the router. The router conditions *all*
    // forwarded traffic, so the held packets interleave data and ACKs —
    // the property is that the cumulative-ACK byte stream is immune
    // either way: same contiguous delivery as the clean run.
    let total = 400_000u64;
    let run = |plan: FaultPlan| {
        let (mut sim, sink) = bulk_fixture(total, Dscp::BEST_EFFORT, |b, sender, sink, r| {
            b.connect(sender, r, Link::fast_ethernet());
            b.connect(sink, r, Link::fast_ethernet());
            b.set_conditioner(r, plan.wrap("ack-path", Box::new(PassThrough)));
        });
        sim.run_until(SimTime::ZERO + SimDuration::from_secs(30));
        let delivered = sink.borrow().delivered();
        (delivered, sim.net.stats.flow(FlowId(1)).rx_bytes)
    };

    let clean = run(FaultPlan::none());
    assert!(clean.0 >= total, "clean transfer must complete");

    let hold = SimDuration::from_millis(5);
    let faulty = run(FaultPlan::new(11)
        .with("ack-path", FaultKind::Reorder { nth: 4, hold })
        .with("ack-path", FaultKind::Reorder { nth: 9, hold }));
    assert!(faulty.0 >= total, "reordered transfer must still complete");
    assert_eq!(
        clean.0, faulty.0,
        "contiguous delivery must match the clean run"
    );
}

#[test]
fn hostile_remarking_crawls_but_never_wedges() {
    // Every data segment enters a WRED bottleneck pre-marked at the
    // highest drop precedence (AF13): the early-drop band for that
    // precedence bites well before the queue fills, so the flow takes
    // sustained loss. The edge case is liveness — RTO recovery must
    // keep the transfer moving even when fast retransmit rarely fires.
    let total = 300_000u64;
    let (mut sim, sink) = bulk_fixture(total, Dscp::af(1, 3), |b, sender, sink, r| {
        b.connect(sender, r, Link::fast_ethernet());
        // A slow bottleneck with a small WRED buffer.
        let link = Link::new(1_000_000, SimDuration::from_millis(5));
        b.connect_with(
            r,
            sink,
            link,
            link,
            Box::new(WredQueue::af_default(20_000, 99)),
            Box::new(WredQueue::af_default(20_000, 99)),
        );
    });
    sim.run_until(SimTime::ZERO + SimDuration::from_secs(120));

    let delivered = sink.borrow().delivered();
    let media = sim.net.stats.flow(FlowId(1));
    assert!(media.total_drops() > 0, "the hostile marking must bite");
    assert!(
        delivered >= total / 10,
        "transfer must keep crawling under red marking, got {delivered}"
    );
    // In-order contiguous delivery never exceeds what arrived on the wire.
    assert!(delivered <= media.rx_bytes);
}
