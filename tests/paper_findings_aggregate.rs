//! The multi-flow EF-aggregate sweep the scenario IR unlocks.
//!
//! The paper polices a *single* video stream against its EF profile
//! (§4.1) and conjectures that providers will police *aggregates* of EF
//! traffic at the edge. This grid asks the question the paper could not:
//! when N identical paced video flows share one aggregate token-bucket
//! profile, does provisioning the aggregate at N × (per-flow rate) keep
//! every flow watchable?
//!
//! The answer — no, unless the bucket depth also scales — is the
//! committed finding here. The N paced servers start in phase, so the
//! policer sees N-MTU bursts; a fixed 2- or 3-MTU bucket drops part of
//! every burst regardless of the token rate.
//!
//! The grid loads a committed golden (`results/findings_aggregate.json`)
//! through [`dsv_core::golden::golden_aggregate`]: a checksum over the
//! generating configs fails loudly if the tested grid drifts from the
//! committed one, and `DSV_REGEN=1` re-simulates and rewrites the file.

use dsv_core::prelude::*;

const ENC: u64 = 1_000_000;
const FLOWS: [u32; 4] = [1, 2, 4, 8];
/// Aggregate token rate as a fraction of N × encoding rate.
const FRACTIONS: [f64; 5] = [0.9, 1.0, 1.1, 1.25, 1.4];
const DEPTHS: [u32; 2] = [DEPTH_2MTU, DEPTH_3MTU];

/// The committed grid, depth-major, then flow count, then rate fraction.
fn grid() -> Vec<AggregateConfig> {
    let mut cfgs = Vec::new();
    for &depth in &DEPTHS {
        for &n in &FLOWS {
            for &frac in &FRACTIONS {
                let rate = (ENC as f64 * n as f64 * frac) as u64;
                cfgs.push(AggregateConfig::new(
                    ClipId2::Lost,
                    ENC,
                    n,
                    EfProfile::new(rate, depth),
                ));
            }
        }
    }
    cfgs
}

fn outcomes() -> Vec<AggregateOutcome> {
    golden_aggregate("findings_aggregate", &grid())
}

/// Outcome at (depth index, flow-count index, fraction index).
fn at(outs: &[AggregateOutcome], d: usize, n: usize, f: usize) -> &AggregateOutcome {
    &outs[(d * FLOWS.len() + n) * FRACTIONS.len() + f]
}

#[test]
fn rotation_sweep_collapses_to_the_committed_grid() {
    // The declaration-order fairness sweep: every config in the
    // committed grid, re-declared at each distinct rotation (up to 4 per
    // config — enough to cover every N in the grid without quadratic
    // blow-up at N = 8). The N paced pairs are in-phase permutation
    // symmetries, so the canonicalizer must collapse all rotations of a
    // config into one class: the sweep's class count is pinned to the
    // committed grid's size, and the reuse count — members minus
    // classes — is what the cluster layer saves on this sweep.
    use std::collections::HashSet;
    let mut members = 0usize;
    let mut classes: HashSet<String> = HashSet::new();
    for cfg in grid() {
        for rot in 0..cfg.flows.min(4) {
            members += 1;
            let canon = dsv_scenario::canonicalize(&dsv_core::aggregate::aggregate_spec(
                &cfg.clone().with_rotation(rot),
            ));
            classes.insert(canon.json());
        }
    }
    assert_eq!(
        members, 110,
        "2 depths × 5 fractions × (1 + 2 + 4 + 4) rotations"
    );
    assert_eq!(
        classes.len(),
        grid().len(),
        "every rotation must collapse onto its unrotated config's class"
    );
    assert_eq!(
        members - classes.len(),
        70,
        "pinned cluster reuse on this sweep"
    );
}

#[test]
fn single_flow_recovers_the_paper_regimes() {
    // The N = 1 rows are ordinary QBone runs (the aggregate policer
    // matches the one EF flow): starved below the encoding rate, clean
    // with headroom — the paper's §4.1 shape at this encoding.
    let outs = outcomes();
    for (d, &depth) in DEPTHS.iter().enumerate() {
        let starved = at(&outs, d, 0, 0); // 0.9 × enc
        let clean = at(&outs, d, 0, FRACTIONS.len() - 1); // 1.4 × enc
        assert!(
            starved.mean_quality() > 0.8,
            "depth {depth} under-provisioned single flow: {}",
            starved.mean_quality()
        );
        assert!(
            clean.mean_quality() < 0.1,
            "depth {depth} over-provisioned single flow: {}",
            clean.mean_quality()
        );
    }
}

#[test]
fn proportional_rate_does_not_keep_aggregates_watchable() {
    // The headline finding: at the *most generous* rate in the grid
    // (1.4 × N × encoding) the single flow is clean, yet with a fixed
    // bucket depth the 8-flow aggregate still delivers an unwatchable
    // worst flow — token rate cannot buy back what the shallow bucket
    // drops from the N-deep in-phase bursts.
    let outs = outcomes();
    let f_top = FRACTIONS.len() - 1;
    for (d, &depth) in DEPTHS.iter().enumerate() {
        let one = at(&outs, d, 0, f_top);
        let eight = at(&outs, d, FLOWS.len() - 1, f_top);
        assert!(
            one.worst_quality() < 0.1,
            "depth {depth}: lone flow should be clean: {}",
            one.worst_quality()
        );
        assert!(
            eight.worst_quality() > 0.5,
            "depth {depth}: 8-flow aggregate should stay degraded: {}",
            eight.worst_quality()
        );
        assert!(
            eight.total_policer_drops() > 0,
            "the degradation must come from the aggregate policer"
        );
    }
}

#[test]
fn degradation_grows_with_aggregation_level() {
    // At the most generous provisioning in the grid (1.4 × N × encoding)
    // per-flow packet loss still grows with the aggregation level: each
    // extra flow deepens the in-phase burst the fixed bucket must absorb,
    // and the VQM score saturates long before loss does — loss is the
    // monotone signal.
    let outs = outcomes();
    let f_top = FRACTIONS.len() - 1;
    for (d, &depth) in DEPTHS.iter().enumerate() {
        let loss: Vec<f64> = (0..FLOWS.len())
            .map(|n| at(&outs, d, n, f_top).mean_packet_loss())
            .collect();
        for w in loss.windows(2) {
            assert!(
                w[1] >= w[0] - 0.01,
                "depth {depth}: loss should not shrink with N: {loss:?}"
            );
        }
        assert!(
            loss[FLOWS.len() - 1] > loss[0] + 0.3,
            "depth {depth}: 8 flows must lose clearly more than 1: {loss:?}"
        );
    }
}

#[test]
fn deeper_bucket_absorbs_more_of_the_burst() {
    // The paper's bucket-depth finding survives aggregation in relative
    // terms: at every aggregation level the 3-MTU bucket drops no more
    // than the 2-MTU bucket (summed over the rate sweep), even though
    // neither depth is deep enough to make large aggregates clean.
    let outs = outcomes();
    for (n, &flows) in FLOWS.iter().enumerate() {
        let drops = |d: usize| -> u64 {
            (0..FRACTIONS.len())
                .map(|f| at(&outs, d, n, f).total_policer_drops())
                .sum()
        };
        assert!(
            drops(1) <= drops(0),
            "N = {flows}: 3-MTU bucket should drop no more ({} vs {})",
            drops(1),
            drops(0)
        );
    }
}

#[test]
fn per_flow_loss_declines_with_aggregate_rate() {
    // Within each (depth, N) series more aggregate tokens still help:
    // mean packet loss is non-increasing in the token rate (modulo the
    // small wobble the paper flags for single-flow curves).
    let outs = outcomes();
    for (d, &depth) in DEPTHS.iter().enumerate() {
        for (n, &flows) in FLOWS.iter().enumerate() {
            let loss: Vec<f64> = (0..FRACTIONS.len())
                .map(|f| at(&outs, d, n, f).mean_packet_loss())
                .collect();
            for w in loss.windows(2) {
                assert!(
                    w[1] <= w[0] + 0.02,
                    "depth {depth}, N {flows}: loss should not grow with rate: {loss:?}"
                );
            }
        }
    }
}
