//! End-to-end verification of the paper's local-testbed findings (§4.2)
//! and the server-behaviour observations of §4.

use dsv_core::prelude::*;

fn udp(rate: u64, depth: u32) -> LocalConfig {
    LocalConfig::new(
        ClipId2::Lost,
        EfProfile::new(rate, depth),
        LocalTransport::Udp,
    )
}

#[test]
fn bursty_wmt_needs_rates_far_above_its_encoding() {
    // "despite a token rate of about twice the maximum encoding rate, we
    // were still not able to achieve the best quality level" with the
    // 2-MTU bucket. The WMV cap is ≈1.02 Mbps; test at 2.0 Mbps.
    let out = run_local(&udp(2_000_000, DEPTH_2MTU));
    assert!(
        out.quality > 0.01,
        "2-MTU bucket should never be perfect for the bursty server: {}",
        out.quality
    );
    // "increasing the token bucket depth to 4500 bytes largely eliminates
    // this difference."
    let out45 = run_local(&udp(1_600_000, DEPTH_3MTU));
    assert!(
        out45.quality < 0.05,
        "3-MTU bucket should reach ~perfect: {}",
        out45.quality
    );
}

#[test]
fn depth_benefit_is_larger_for_the_bursty_server() {
    // "the benefits derived from allowing a slight increase in bucket size
    // are much larger with this type of server and encoding" than on the
    // QBone. Compare the quality improvement 3000→4500 at a rate ~1.4×
    // the nominal encoding for both testbeds.
    let local_3000 = run_local(&udp(1_450_000, DEPTH_2MTU)).quality;
    let local_4500 = run_local(&udp(1_450_000, DEPTH_3MTU)).quality;
    let local_gain = local_3000 - local_4500;

    let enc = 1_500_000u64;
    let q = |depth| {
        run_qbone(&QboneConfig::new(
            ClipId2::Lost,
            enc,
            EfProfile::new((enc as f64 * 1.45) as u64, depth),
        ))
        .quality
    };
    let qbone_gain = q(DEPTH_2MTU) - q(DEPTH_3MTU);
    assert!(
        local_gain > qbone_gain + 0.05,
        "depth gain should be larger locally: local {local_gain:.3} vs qbone {qbone_gain:.3}"
    );
}

#[test]
fn shaping_rescues_the_bursty_stream() {
    let unshaped = run_local(&udp(1_100_000, DEPTH_2MTU));
    let mut cfg = udp(1_100_000, DEPTH_2MTU);
    cfg.shaped = true;
    let shaped = run_local(&cfg);
    assert!(
        shaped.quality + 0.3 < unshaped.quality,
        "shaped {:.3} vs unshaped {:.3}",
        shaped.quality,
        unshaped.quality
    );
    // The shaper converts most policer drops into delay. (Both counts are
    // small in absolute terms — the WMV delta chain amplifies every drop
    // into up to a key-frame interval of corrupt frames, which is why the
    // quality gap is so much larger than the drop gap.)
    assert!(
        shaped.policer_drops * 2 <= unshaped.policer_drops,
        "shaped {} vs unshaped {}",
        shaped.policer_drops,
        unshaped.policer_drops
    );
}

#[test]
fn shaped_tcp_beats_unshaped_udp() {
    // "UDP streaming remained too bursty to allow meaningful
    // experimentation … TCP streaming … resulted in a smoother traffic
    // flow that produced better quality results" (§4.2). The comparison
    // the paper draws is TCP (with the shaping front end it relied on)
    // against the bursty UDP output.
    let rate = 1_300_000u64;
    let u = udp(rate, DEPTH_2MTU);
    let mut t = LocalConfig::new(
        ClipId2::Lost,
        EfProfile::new(rate, DEPTH_2MTU),
        LocalTransport::Tcp,
    );
    t.shaped = true;
    let udp_out = run_local(&u);
    let tcp_out = run_local(&t);
    // TCP is reliable: every frame is eventually delivered.
    let (_, tcp_report) = run_local_detailed(&t);
    let received = tcp_report.received.iter().filter(|&&x| x).count();
    assert_eq!(
        received,
        tcp_report.received.len(),
        "TCP delivers all frames"
    );
    assert!(
        tcp_out.quality + 0.15 < udp_out.quality,
        "tcp {:.3} should beat bursty udp {:.3}",
        tcp_out.quality,
        udp_out.quality
    );
}

#[test]
fn death_spiral_collapses_and_can_break_the_session() {
    // At a rate the profile cannot sustain, the adaptation loop misfires:
    // compensation raises the rate, losses mount, the server collapses.
    let mut cfg = udp(800_000, DEPTH_2MTU);
    cfg.multi_rate = true;
    let out = run_local(&cfg);
    assert!(
        out.collapses >= 1,
        "expected at least one collapse, got {}",
        out.collapses
    );
    // With a generous profile the same server never collapses.
    let mut ok = udp(1_800_000, DEPTH_3MTU);
    ok.multi_rate = true;
    let healthy = run_local(&ok);
    assert_eq!(healthy.collapses, 0);
    assert!(!healthy.broken);
    assert!(healthy.quality < 0.1, "healthy quality {}", healthy.quality);
}

#[test]
fn cross_traffic_adds_jitter_but_ef_protects_the_stream() {
    // "only minor variations were observed that were primarily a
    // reflection of how the different routers implemented the
    // prioritization of EF traffic."
    let quiet = run_local(&udp(1_600_000, DEPTH_3MTU));
    let mut cfg = udp(1_600_000, DEPTH_3MTU);
    cfg.cross_traffic = true;
    let loaded = run_local(&cfg);
    assert!(
        (quiet.quality - loaded.quality).abs() < 0.15,
        "quiet {:.3} vs loaded {:.3}",
        quiet.quality,
        loaded.quality
    );
}

#[test]
fn bimodal_server_is_unusable_under_any_reasonable_profile() {
    // §4: the large-datagram servers were "mostly bi-modal with poor
    // performance until sufficient (peak) bandwidth was allocated".
    let enc = 1_500_000u64;
    let mut cfg = QboneConfig::new(
        ClipId2::Lost,
        enc,
        EfProfile::new(3_000_000, DEPTH_2MTU), // 2× the encoding!
    );
    cfg.server = QboneServer::Bursty;
    let out = run_qbone(&cfg);
    assert!(
        out.quality > 0.9,
        "bursty server should be unusable at 2x rate with 2-MTU bucket: {}",
        out.quality
    );
    // The paced server at the same profile is perfect.
    let mut paced = cfg.clone();
    paced.server = QboneServer::Paced;
    let p = run_qbone(&paced);
    assert!(p.quality < 0.02, "paced quality {}", p.quality);
}
