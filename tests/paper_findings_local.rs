//! End-to-end verification of the paper's local-testbed findings (§4.2)
//! and the server-behaviour observations of §4.
//!
//! Point runs load the committed golden `results/findings_local_points
//! .json` (checksum-guarded; regenerate with `DSV_REGEN=1` — see
//! DESIGN.md §7). The one assertion that needs a full client report
//! (TCP delivers every frame) still simulates live, since reports are
//! not part of the golden schema.

use dsv_core::prelude::*;

fn udp(rate: u64, depth: u32) -> LocalConfig {
    LocalConfig::new(
        ClipId2::Lost,
        EfProfile::new(rate, depth),
        LocalTransport::Udp,
    )
}

// Indices into the shared point golden (job order is the contract — the
// checksum catches any drift).
const WMT_2MTU_GENEROUS: usize = 0;
const WMT_3MTU_NOMINAL: usize = 1;
const DEPTH_LOCAL_3000: usize = 2;
const DEPTH_LOCAL_4500: usize = 3;
const DEPTH_QBONE_3000: usize = 4;
const DEPTH_QBONE_4500: usize = 5;
const SHAPE_UNSHAPED: usize = 6;
const SHAPE_SHAPED: usize = 7;
const TCP_UDP_BASE: usize = 8;
const TCP_SHAPED: usize = 9;
const SPIRAL_STARVED: usize = 10;
const SPIRAL_HEALTHY: usize = 11;
const CT_QUIET: usize = 12;
const CT_LOADED: usize = 13;
const BIMODAL_BURSTY: usize = 14;
const BIMODAL_PACED: usize = 15;

/// Every point run the findings below share, as one golden.
fn point_outcomes() -> Vec<RunOutcome> {
    let enc = 1_500_000u64;
    let qbone_probe = |depth| {
        Job::Qbone(QboneConfig::new(
            ClipId2::Lost,
            enc,
            EfProfile::new((enc as f64 * 1.45) as u64, depth),
        ))
    };
    let mut shaped = udp(1_100_000, DEPTH_2MTU);
    shaped.shaped = true;
    let tcp_rate = 1_300_000u64;
    let mut tcp = LocalConfig::new(
        ClipId2::Lost,
        EfProfile::new(tcp_rate, DEPTH_2MTU),
        LocalTransport::Tcp,
    );
    tcp.shaped = true;
    let mut spiral = udp(800_000, DEPTH_2MTU);
    spiral.multi_rate = true;
    let mut healthy = udp(1_800_000, DEPTH_3MTU);
    healthy.multi_rate = true;
    let mut loaded = udp(1_600_000, DEPTH_3MTU);
    loaded.cross_traffic = true;
    let mut bursty = QboneConfig::new(
        ClipId2::Lost,
        enc,
        EfProfile::new(3_000_000, DEPTH_2MTU), // 2× the encoding!
    );
    bursty.server = QboneServer::Bursty;
    let mut paced = bursty.clone();
    paced.server = QboneServer::Paced;
    let jobs = vec![
        Job::Local(udp(2_000_000, DEPTH_2MTU)),
        Job::Local(udp(1_600_000, DEPTH_3MTU)),
        Job::Local(udp(1_450_000, DEPTH_2MTU)),
        Job::Local(udp(1_450_000, DEPTH_3MTU)),
        qbone_probe(DEPTH_2MTU),
        qbone_probe(DEPTH_3MTU),
        Job::Local(udp(1_100_000, DEPTH_2MTU)),
        Job::Local(shaped),
        Job::Local(udp(tcp_rate, DEPTH_2MTU)),
        Job::Local(tcp),
        Job::Local(spiral),
        Job::Local(healthy),
        Job::Local(udp(1_600_000, DEPTH_3MTU)),
        Job::Local(loaded),
        Job::Qbone(bursty),
        Job::Qbone(paced),
    ];
    golden_outcomes("findings_local_points", &jobs)
}

#[test]
fn bursty_wmt_needs_rates_far_above_its_encoding() {
    // "despite a token rate of about twice the maximum encoding rate, we
    // were still not able to achieve the best quality level" with the
    // 2-MTU bucket. The WMV cap is ≈1.02 Mbps; test at 2.0 Mbps.
    let outcomes = point_outcomes();
    let out = &outcomes[WMT_2MTU_GENEROUS];
    assert!(
        out.quality > 0.01,
        "2-MTU bucket should never be perfect for the bursty server: {}",
        out.quality
    );
    // "increasing the token bucket depth to 4500 bytes largely eliminates
    // this difference."
    let out45 = &outcomes[WMT_3MTU_NOMINAL];
    assert!(
        out45.quality < 0.05,
        "3-MTU bucket should reach ~perfect: {}",
        out45.quality
    );
}

#[test]
fn depth_benefit_is_larger_for_the_bursty_server() {
    // "the benefits derived from allowing a slight increase in bucket size
    // are much larger with this type of server and encoding" than on the
    // QBone. Compare the quality improvement 3000→4500 at a rate ~1.4×
    // the nominal encoding for both testbeds.
    let outcomes = point_outcomes();
    let local_gain = outcomes[DEPTH_LOCAL_3000].quality - outcomes[DEPTH_LOCAL_4500].quality;
    let qbone_gain = outcomes[DEPTH_QBONE_3000].quality - outcomes[DEPTH_QBONE_4500].quality;
    assert!(
        local_gain > qbone_gain + 0.05,
        "depth gain should be larger locally: local {local_gain:.3} vs qbone {qbone_gain:.3}"
    );
}

#[test]
fn shaping_rescues_the_bursty_stream() {
    let outcomes = point_outcomes();
    let unshaped = &outcomes[SHAPE_UNSHAPED];
    let shaped = &outcomes[SHAPE_SHAPED];
    assert!(
        shaped.quality + 0.3 < unshaped.quality,
        "shaped {:.3} vs unshaped {:.3}",
        shaped.quality,
        unshaped.quality
    );
    // The shaper converts most policer drops into delay. (Both counts are
    // small in absolute terms — the WMV delta chain amplifies every drop
    // into up to a key-frame interval of corrupt frames, which is why the
    // quality gap is so much larger than the drop gap.)
    assert!(
        shaped.policer_drops * 2 <= unshaped.policer_drops,
        "shaped {} vs unshaped {}",
        shaped.policer_drops,
        unshaped.policer_drops
    );
}

#[test]
fn shaped_tcp_beats_unshaped_udp() {
    // "UDP streaming remained too bursty to allow meaningful
    // experimentation … TCP streaming … resulted in a smoother traffic
    // flow that produced better quality results" (§4.2). The comparison
    // the paper draws is TCP (with the shaping front end it relied on)
    // against the bursty UDP output.
    let outcomes = point_outcomes();
    let udp_out = &outcomes[TCP_UDP_BASE];
    let tcp_out = &outcomes[TCP_SHAPED];
    // TCP is reliable: every frame is eventually delivered. This needs
    // the client's full report, which goldens do not carry — simulate
    // the one run live.
    let mut t = LocalConfig::new(
        ClipId2::Lost,
        EfProfile::new(1_300_000, DEPTH_2MTU),
        LocalTransport::Tcp,
    );
    t.shaped = true;
    let (_, tcp_report) = run_local_detailed(&t);
    let received = tcp_report.received.iter().filter(|&&x| x).count();
    assert_eq!(
        received,
        tcp_report.received.len(),
        "TCP delivers all frames"
    );
    assert!(
        tcp_out.quality + 0.15 < udp_out.quality,
        "tcp {:.3} should beat bursty udp {:.3}",
        tcp_out.quality,
        udp_out.quality
    );
}

#[test]
fn death_spiral_collapses_and_can_break_the_session() {
    // At a rate the profile cannot sustain, the adaptation loop misfires:
    // compensation raises the rate, losses mount, the server collapses.
    let outcomes = point_outcomes();
    let out = &outcomes[SPIRAL_STARVED];
    assert!(
        out.collapses >= 1,
        "expected at least one collapse, got {}",
        out.collapses
    );
    // With a generous profile the same server never collapses.
    let healthy = &outcomes[SPIRAL_HEALTHY];
    assert_eq!(healthy.collapses, 0);
    assert!(!healthy.broken);
    assert!(healthy.quality < 0.1, "healthy quality {}", healthy.quality);
}

#[test]
fn cross_traffic_adds_jitter_but_ef_protects_the_stream() {
    // "only minor variations were observed that were primarily a
    // reflection of how the different routers implemented the
    // prioritization of EF traffic."
    let outcomes = point_outcomes();
    let quiet = &outcomes[CT_QUIET];
    let loaded = &outcomes[CT_LOADED];
    assert!(
        (quiet.quality - loaded.quality).abs() < 0.15,
        "quiet {:.3} vs loaded {:.3}",
        quiet.quality,
        loaded.quality
    );
}

#[test]
fn bimodal_server_is_unusable_under_any_reasonable_profile() {
    // §4: the large-datagram servers were "mostly bi-modal with poor
    // performance until sufficient (peak) bandwidth was allocated".
    let outcomes = point_outcomes();
    let out = &outcomes[BIMODAL_BURSTY];
    assert!(
        out.quality > 0.9,
        "bursty server should be unusable at 2x rate with 2-MTU bucket: {}",
        out.quality
    );
    // The paced server at the same profile is perfect.
    let p = &outcomes[BIMODAL_PACED];
    assert!(p.quality < 0.02, "paced quality {}", p.quality);
}
