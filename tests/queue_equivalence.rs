//! Property-based equivalence: the timing-wheel event queue must deliver
//! the **exact** sequence of `(time, seq, event)` triples the binary heap
//! delivers, over arbitrary interleavings of scheduling and dispatch.
//!
//! The heap is the ordering oracle (`DSV_QUEUE=heap` keeps it selectable
//! at runtime); these properties are why the oracle can be trusted to be
//! redundant: ties broken by schedule order, events scheduled *during*
//! dispatch, far-future timestamps (up to `SimTime::MAX` sentinels) and
//! spans that cross every wheel level all round-trip identically.

use dsv_sim::engine::RunStats;
use dsv_sim::{run_until, EventQueue, QueueBackend, SimDuration, SimTime, World};
use proptest::prelude::*;

/// Drive both backends through the same operation script and assert they
/// agree on every observable: popped `(time, event)` pairs, `peek_time`,
/// `len` and `now` after each step.
///
/// `ops` entries are `(op_selector, delta_ns)`:
/// * selector 0–5 → schedule one event `delta_ns` after the current
///   watermark (six weights so scheduling dominates and queues grow),
/// * selector 6–7 → pop one event,
/// * selector 8   → fused `pop_at_or_before(now + delta_ns)`.
///
/// Scheduling against `queue.now()` after pops is exactly "scheduling
/// during dispatch": new events land relative to the delivery watermark,
/// like a `World::handle` callback would.
fn check_equivalence(ops: &[(u8, u64)], label: &str) {
    let mut wheel: EventQueue<u64> = EventQueue::with_backend(QueueBackend::Wheel);
    let mut heap: EventQueue<u64> = EventQueue::with_backend(QueueBackend::Heap);
    let mut next_event: u64 = 0;
    let mut delivered_w: Vec<(SimTime, u64)> = Vec::new();
    let mut delivered_h: Vec<(SimTime, u64)> = Vec::new();

    for &(op, delta_ns) in ops {
        match op {
            0..=5 => {
                let at = wheel.now() + SimDuration::from_nanos(delta_ns);
                wheel.schedule(at, next_event);
                heap.schedule(at, next_event);
                next_event += 1;
            }
            6 | 7 => {
                let w = wheel.pop();
                let h = heap.pop();
                prop_assert_eq!(w, h, "{}: pop mismatch", label);
                if let Some(pair) = w {
                    delivered_w.push(pair);
                }
                if let Some(pair) = h {
                    delivered_h.push(pair);
                }
            }
            _ => {
                let horizon = wheel.now() + SimDuration::from_nanos(delta_ns);
                let w = wheel.pop_at_or_before(horizon);
                let h = heap.pop_at_or_before(horizon);
                prop_assert_eq!(w, h, "{}: pop_at_or_before mismatch", label);
                if let Some((at, _)) = w {
                    prop_assert!(at <= horizon, "{}: horizon violated", label);
                }
                if let Some(pair) = w {
                    delivered_w.push(pair);
                }
                if let Some(pair) = h {
                    delivered_h.push(pair);
                }
            }
        }
        prop_assert_eq!(wheel.peek_time(), heap.peek_time(), "{}: peek", label);
        prop_assert_eq!(wheel.len(), heap.len(), "{}: len", label);
        prop_assert_eq!(wheel.now(), heap.now(), "{}: now", label);
    }

    // Drain both completely; the tails must agree too.
    loop {
        let w = wheel.pop();
        let h = heap.pop();
        prop_assert_eq!(w, h, "{}: drain mismatch", label);
        match w {
            Some(pair) => {
                delivered_w.push(pair);
                delivered_h.push(h.unwrap());
            }
            None => break,
        }
    }
    prop_assert_eq!(
        &delivered_w,
        &delivered_h,
        "{}: full sequences differ",
        label
    );

    // Delivery is totally ordered by time, and the event ids of equal-time
    // runs are ascending — FIFO tie-breaking by schedule order.
    for pair in delivered_w.windows(2) {
        prop_assert!(pair[0].0 <= pair[1].0, "{}: time went backwards", label);
        if pair[0].0 == pair[1].0 {
            prop_assert!(
                pair[0].1 < pair[1].1,
                "{}: tie at {} broke schedule order",
                label,
                pair[0].0
            );
        }
    }
}

proptest! {
    /// Near-future traffic with heavy ties: deltas span only a few wheel
    /// ticks (the tick is 2.048 µs), so many events collapse onto the same
    /// slot and many onto the same nanosecond.
    #[test]
    fn wheel_matches_heap_with_ties(
        ops in prop::collection::vec((0u8..9, 0u64..8_192), 1..400),
    ) {
        check_equivalence(&ops, "ties");
    }

    /// The simulator's real shape: mostly near-future (per-packet) deltas
    /// with occasional far jumps (timeouts, session ends) that cascade
    /// across upper wheel levels.
    #[test]
    fn wheel_matches_heap_bimodal(
        ops in prop::collection::vec((0u8..9, 0u64..40_000_000_000), 1..300),
    ) {
        check_equivalence(&ops, "bimodal");
    }

    /// Spans that cross *every* level boundary: deltas up to ~2^63 ns push
    /// entries into the top wheel levels and exercise multi-level cascades
    /// on the way back down.
    #[test]
    fn wheel_matches_heap_overflow_spans(
        ops in prop::collection::vec((0u8..9, 0u64..9_000_000_000_000_000_000), 1..150),
    ) {
        check_equivalence(&ops, "overflow-spans");
    }

    /// The absolute far edge of the time axis: a three-regime mix of
    /// near-future ties, top-level spans (~2^62 ns) and deltas chosen so
    /// `now + delta` **saturates at `SimTime::MAX`**. Entries past the
    /// wheel's covered span park in its overflow list; near-future pops
    /// then drag the cursor forward until the parked entries must re-file
    /// — regression coverage for the reintegration bug where re-filing
    /// started from the current cursor instead of the earliest parked
    /// tick and could reorder (or worse, never release) far-horizon
    /// events.
    #[test]
    fn wheel_matches_heap_at_the_saturating_edge(
        ops in prop::collection::vec((0u8..9, 0u64..3, 0u64..16_384), 1..200),
    ) {
        let shaped: Vec<(u8, u64)> = ops
            .iter()
            .map(|&(op, regime, small)| {
                let delta = match regime {
                    0 => small,                // near-future ties
                    1 => (1u64 << 62) + small, // top wheel levels
                    _ => u64::MAX - small,     // saturates at SimTime::MAX
                };
                (op, delta)
            })
            .collect();
        check_equivalence(&shaped, "saturating-edge");
    }
}

/// `SimTime::MAX` sentinels (zero-rate links park events there) must sort
/// after everything else on both backends and still tie-break FIFO.
#[test]
fn max_time_sentinels_agree() {
    let mut wheel: EventQueue<u64> = EventQueue::with_backend(QueueBackend::Wheel);
    let mut heap: EventQueue<u64> = EventQueue::with_backend(QueueBackend::Heap);
    for (at, ev) in [
        (SimTime::MAX, 0),
        (SimTime::from_secs(5), 1),
        (SimTime::MAX, 2),
        (SimTime::ZERO, 3),
    ] {
        wheel.schedule(at, ev);
        heap.schedule(at, ev);
    }
    let mut got = Vec::new();
    loop {
        let w = wheel.pop();
        assert_eq!(w, heap.pop());
        match w {
            Some(pair) => got.push(pair),
            None => break,
        }
    }
    assert_eq!(
        got,
        vec![
            (SimTime::ZERO, 3),
            (SimTime::from_secs(5), 1),
            (SimTime::MAX, 0),
            (SimTime::MAX, 2),
        ]
    );
}

/// A periodic world for driving the full `run_until` loop (the fused
/// `pop_at_or_before` path the engine actually uses) over both backends.
struct Ticker {
    period: SimDuration,
    remaining: u32,
    log: Vec<SimTime>,
}

impl World for Ticker {
    type Event = u64;
    fn handle(&mut self, now: SimTime, ev: u64, q: &mut EventQueue<u64>) {
        self.log.push(now);
        if self.remaining > 0 {
            self.remaining -= 1;
            q.schedule(now + self.period, ev + 1);
        }
    }
}

fn run_ticker(backend: QueueBackend, horizon: SimTime) -> (RunStats, Vec<SimTime>) {
    let mut world = Ticker {
        period: SimDuration::from_millis(10),
        remaining: 50,
        log: Vec::new(),
    };
    let mut queue: EventQueue<u64> = EventQueue::with_backend(backend);
    queue.schedule(SimTime::ZERO, 0);
    let stats = run_until(&mut world, &mut queue, horizon);
    (stats, world.log)
}

/// `run_until` is horizon-inclusive: an event scheduled *exactly at* the
/// horizon dispatches, the first event beyond it stays queued, and both
/// backends agree on the dispatch count, end time and `hit_horizon`.
#[test]
fn run_until_horizon_is_inclusive_on_both_backends() {
    // The ticker fires every 10 ms starting at 0; a 100 ms horizon lands
    // exactly on the 11th event (t = 100 ms).
    let horizon = SimTime::from_millis(100);
    let (wheel, wheel_log) = run_ticker(QueueBackend::Wheel, horizon);
    let (heap, heap_log) = run_ticker(QueueBackend::Heap, horizon);

    assert_eq!(wheel, heap, "backends disagree on RunStats");
    assert_eq!(wheel_log, heap_log, "backends disagree on dispatch times");

    assert_eq!(
        *wheel_log.last().unwrap(),
        horizon,
        "the event exactly at the horizon must be dispatched"
    );
    assert_eq!(wheel.dispatched, 11);
    assert_eq!(wheel.end_time, horizon);
    assert!(
        wheel.hit_horizon,
        "the 12th event (t = 110 ms) is still pending"
    );
}

/// A horizon beyond the last event runs the world dry: `hit_horizon` is
/// false and `end_time` is the last dispatch, not the horizon.
#[test]
fn run_until_past_the_end_agrees_with_free_running() {
    let horizon = SimTime::from_secs(3600);
    for backend in [QueueBackend::Wheel, QueueBackend::Heap] {
        let (stats, log) = run_ticker(backend, horizon);
        assert_eq!(stats.dispatched, 51, "{backend:?}");
        assert_eq!(stats.end_time, SimTime::from_millis(500), "{backend:?}");
        assert!(!stats.hit_horizon, "{backend:?}");
        assert_eq!(log.len(), 51);
    }
}

/// Resuming after a horizon stop continues exactly where the run left
/// off — the fused pop must not have consumed the beyond-horizon event.
#[test]
fn run_until_resumes_without_losing_events() {
    for backend in [QueueBackend::Wheel, QueueBackend::Heap] {
        let mut world = Ticker {
            period: SimDuration::from_millis(10),
            remaining: 50,
            log: Vec::new(),
        };
        let mut queue: EventQueue<u64> = EventQueue::with_backend(backend);
        queue.schedule(SimTime::ZERO, 0);
        // Stop between events (95 ms), then resume to the end.
        let first = run_until(&mut world, &mut queue, SimTime::from_millis(95));
        assert_eq!(first.dispatched, 10, "{backend:?}");
        assert!(first.hit_horizon, "{backend:?}");
        let rest = run_until(&mut world, &mut queue, SimTime::from_secs(3600));
        assert_eq!(first.dispatched + rest.dispatched, 51, "{backend:?}");
        assert_eq!(rest.end_time, SimTime::from_millis(500), "{backend:?}");
        // No event was dispatched twice and none was skipped.
        assert_eq!(world.log.len(), 51, "{backend:?}");
        assert!(world.log.windows(2).all(|w| w[0] < w[1]), "{backend:?}");
    }
}

/// A far-future horizon releases everything; a past horizon releases
/// nothing — on both backends.
#[test]
fn horizon_extremes_agree() {
    for backend in [QueueBackend::Wheel, QueueBackend::Heap] {
        let mut q: EventQueue<u64> = EventQueue::with_backend(backend);
        q.schedule(SimTime::from_secs(10), 1);
        q.schedule(SimTime::from_secs(20), 2);
        assert_eq!(q.pop_at_or_before(SimTime::from_secs(9)), None);
        assert_eq!(q.len(), 2);
        assert_eq!(
            q.pop_at_or_before(SimTime::MAX),
            Some((SimTime::from_secs(10), 1))
        );
        assert_eq!(
            q.pop_at_or_before(SimTime::MAX),
            Some((SimTime::from_secs(20), 2))
        );
        assert_eq!(q.pop_at_or_before(SimTime::MAX), None);
    }
}
