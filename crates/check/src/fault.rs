//! Deterministic fault injection at conditioner taps.
//!
//! A [`FaultPlan`] names router taps and the [`FaultKind`]s to plant
//! there; [`FaultPlan::wrap`] turns any [`Conditioner`] into a
//! [`FaultyConditioner`] that misbehaves in exactly the planned way and
//! nowhere else. All faults are a pure function of the plan (seed
//! included) and the packet sequence — two runs with the same plan
//! inject at the same packets, so a failing self-test replays exactly.
//!
//! Faults act on the packets the wrapped conditioner *passes*: a packet
//! the inner policer drops was never forwarded, so there is nothing to
//! swallow, duplicate or reorder. Packet indices (`nth`, `from`) count
//! submissions at the tap, starting from 1.

use dsv_net::conditioner::{ConditionOutcome, Conditioner, QuickVerdict, Released};
use dsv_net::packet::Packet;
use dsv_sim::{SimDuration, SimTime};

/// One class of injected misbehaviour.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultKind {
    /// Silently swallow the `nth` submitted packet (never released, never
    /// counted as held). Violates packet conservation — the audit's
    /// end-of-run balance fires for the node, the flow and the pool.
    Drop {
        /// 1-based index of the packet to swallow.
        nth: u64,
    },
    /// Deliver the `nth` submitted packet twice. Violates conservation
    /// (a delivery with no matching send) and usually per-flow FIFO.
    Duplicate {
        /// 1-based index of the packet to clone.
        nth: u64,
    },
    /// Hold only the `nth` packet for `hold` while later packets pass.
    /// Violates per-port and per-flow FIFO once the held packet emerges
    /// behind its successors.
    Reorder {
        /// 1-based index of the packet to hold back.
        nth: u64,
        /// How long to hold it.
        hold: SimDuration,
    },
    /// Delay every packet from index `from` onward by `hold`,
    /// preserving order. This is a *legal* network behaviour: the audit
    /// must stay silent, and the streaming client must ride the jitter
    /// out — the playback-robustness half of the fault matrix.
    Delay {
        /// 1-based index of the first delayed packet.
        from: u64,
        /// Added latency.
        hold: SimDuration,
    },
    /// XOR the wire size of the `nth` passed packet with `xor` after the
    /// conditioner admits it. Violates payload/size integrity — the audit
    /// sees a packet whose size changed mid-flight.
    SizeFlip {
        /// 1-based index of the packet to corrupt.
        nth: u64,
        /// Bit pattern XORed into the size field.
        xor: u32,
    },
    /// Run the wrapped conditioner's clock `speedup`× faster than
    /// simulation time. A fast clock inflates every refill interval the
    /// token bucket sees, so it grants tokens at `speedup`× the real
    /// rate and over-admits; the analytic conformance bound (checked
    /// against *true* time) fires whenever the tap is saturated. (A
    /// constant *offset* would not do: the bucket caps at its depth and
    /// offsets cancel in refill deltas.)
    ClockSkew {
        /// How many times faster the tap's clock runs (1 = no skew).
        speedup: u32,
    },
}

/// A fault planted at one named tap.
#[derive(Debug, Clone)]
pub struct FaultSpec {
    /// Tap name — matched against the name given to [`FaultPlan::wrap`].
    pub tap: String,
    /// What goes wrong there.
    pub kind: FaultKind,
}

/// A seeded, named-tap fault schedule.
///
/// The seed does not drive any hidden randomness inside the faults
/// themselves (those are fully specified by their fields); it feeds
/// [`FaultPlan::pick`], the deterministic helper tests use to choose
/// *which* packet index to fault so that varying the seed varies the
/// injection point reproducibly.
#[derive(Debug, Clone)]
pub struct FaultPlan {
    /// Seed for [`FaultPlan::pick`].
    pub seed: u64,
    faults: Vec<FaultSpec>,
}

impl FaultPlan {
    /// An empty plan with the given seed.
    pub fn new(seed: u64) -> FaultPlan {
        FaultPlan {
            seed,
            faults: Vec::new(),
        }
    }

    /// A plan that injects nothing (the control arm of every self-test).
    pub fn none() -> FaultPlan {
        FaultPlan::new(0)
    }

    /// Add a fault at a named tap.
    pub fn with(mut self, tap: &str, kind: FaultKind) -> FaultPlan {
        self.faults.push(FaultSpec {
            tap: tap.to_string(),
            kind,
        });
        self
    }

    /// True if no fault targets any tap.
    pub fn is_empty(&self) -> bool {
        self.faults.is_empty()
    }

    /// A deterministic value in `lo..hi` derived from the plan seed and a
    /// caller-chosen salt (splitmix64 — no global RNG, no ambient state).
    pub fn pick(&self, salt: u64, lo: u64, hi: u64) -> u64 {
        assert!(lo < hi);
        let mut z = self
            .seed
            .wrapping_add(salt)
            .wrapping_add(0x9e37_79b9_7f4a_7c15);
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^= z >> 31;
        lo + z % (hi - lo)
    }

    /// Wrap `inner` with every fault planned for `tap`. Returns `inner`
    /// unchanged when nothing targets the tap, so unfaulted scenarios pay
    /// nothing and behave bit-identically to an unwrapped run.
    pub fn wrap<P: Clone + Send + 'static>(
        &self,
        tap: &str,
        inner: Box<dyn Conditioner<P> + Send>,
    ) -> Box<dyn Conditioner<P> + Send> {
        let kinds: Vec<FaultKind> = self
            .faults
            .iter()
            .filter(|f| f.tap == tap)
            .map(|f| f.kind)
            .collect();
        if kinds.is_empty() {
            return inner;
        }
        Box::new(FaultyConditioner::new(inner, kinds))
    }
}

/// A conditioner wrapper that misbehaves per a list of [`FaultKind`]s.
///
/// See the module docs for semantics. The wrapper reports its *honest*
/// holds (reorder/delay/duplicate stash) through [`Conditioner::held`],
/// but deliberately excludes swallowed packets — that lie is the point
/// of [`FaultKind::Drop`]: the conservation oracle must notice the leak.
pub struct FaultyConditioner<P> {
    inner: Box<dyn Conditioner<P> + Send>,
    faults: Vec<FaultKind>,
    /// Submissions seen so far (1-based index of the *next* packet is
    /// `seen + 1`).
    seen: u64,
    /// Honestly-held packets with their due times, in insertion order.
    held: Vec<(SimTime, Packet<P>)>,
    /// Leaked packets — never released, never reported.
    swallowed: Vec<Packet<P>>,
    /// Clock multiplier applied to the inner conditioner (1 = honest).
    skew_mul: u64,
}

impl<P> FaultyConditioner<P> {
    fn new(inner: Box<dyn Conditioner<P> + Send>, faults: Vec<FaultKind>) -> FaultyConditioner<P> {
        let skew_mul = faults
            .iter()
            .filter_map(|f| match f {
                FaultKind::ClockSkew { speedup } => Some(u64::from(*speedup).max(1)),
                _ => None,
            })
            .product::<u64>()
            .max(1);
        FaultyConditioner {
            inner,
            faults,
            seen: 0,
            held: Vec::new(),
            swallowed: Vec::new(),
            skew_mul,
        }
    }

    /// The inner conditioner's (possibly skewed) view of `now`.
    fn skewed(&self, now: SimTime) -> SimTime {
        if self.skew_mul == 1 {
            now
        } else {
            SimTime::from_nanos(now.as_nanos() * self.skew_mul)
        }
    }

    /// Packets swallowed so far (for asserting the leak happened).
    pub fn swallowed(&self) -> usize {
        self.swallowed.len()
    }
}

impl<P: Clone> Conditioner<P> for FaultyConditioner<P> {
    fn submit(&mut self, now: SimTime, pkt: Packet<P>) -> ConditionOutcome<P> {
        self.seen += 1;
        let n = self.seen;
        let skewed = self.skewed(now);
        match self.inner.submit(skewed, pkt) {
            ConditionOutcome::Pass(mut pkt) => {
                for fault in &self.faults {
                    match *fault {
                        FaultKind::Drop { nth } if n == nth => {
                            self.swallowed.push(pkt);
                            return ConditionOutcome::Absorbed { poll_at: now };
                        }
                        FaultKind::Duplicate { nth } if n == nth => {
                            self.held.push((now, pkt.clone()));
                            self.held.push((now, pkt));
                            return ConditionOutcome::Absorbed { poll_at: now };
                        }
                        FaultKind::Reorder { nth, hold } if n == nth => {
                            let due = now + hold;
                            self.held.push((due, pkt));
                            return ConditionOutcome::Absorbed { poll_at: due };
                        }
                        FaultKind::Delay { from, hold } if n >= from => {
                            let due = now + hold;
                            self.held.push((due, pkt));
                            return ConditionOutcome::Absorbed { poll_at: due };
                        }
                        FaultKind::SizeFlip { nth, xor } if n == nth => {
                            pkt.size ^= xor;
                        }
                        _ => {}
                    }
                }
                ConditionOutcome::Pass(pkt)
            }
            other => other,
        }
    }

    // Always defer to `submit`: faults need ownership of the packet.
    fn quick(&mut self, _now: SimTime, _pkt: &mut Packet<P>) -> QuickVerdict {
        QuickVerdict::NeedsSubmit
    }

    fn release(&mut self, now: SimTime) -> Released<P> {
        let skewed = self.skewed(now);
        let mut out = self.inner.release(skewed);
        // Map the inner's poll request back into true time, else the
        // network would poll it at the skewed (future) instant.
        if self.skew_mul != 1 {
            out.next_poll = out
                .next_poll
                .map(|t| SimTime::from_nanos(t.as_nanos() / self.skew_mul));
        }
        let mut i = 0;
        while i < self.held.len() {
            if self.held[i].0 <= now {
                out.packets.push(self.held.remove(i).1);
            } else {
                i += 1;
            }
        }
        let ours_next = self.held.iter().map(|(due, _)| *due).min();
        out.next_poll = match (out.next_poll, ours_next) {
            (Some(a), Some(b)) => Some(a.min(b)),
            (a, b) => a.or(b),
        };
        out
    }

    fn held(&self) -> usize {
        // Swallowed packets are intentionally *not* reported: the lie is
        // what the conservation oracle must detect.
        self.inner.held() + self.held.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dsv_net::conditioner::PassThrough;
    use dsv_net::packet::{Dscp, FlowId, NodeId, PacketId, Proto};

    fn pkt(id: u64) -> Packet<()> {
        Packet {
            id: PacketId(id),
            flow: FlowId(1),
            src: NodeId(0),
            dst: NodeId(1),
            size: 1000,
            dscp: Dscp::BEST_EFFORT,
            proto: Proto::Udp,
            fragment: None,
            sent_at: SimTime::ZERO,
            payload: (),
        }
    }

    fn wrapped(kind: FaultKind) -> Box<dyn Conditioner<()> + Send> {
        FaultPlan::new(1)
            .with("tap", kind)
            .wrap("tap", Box::new(PassThrough))
    }

    #[test]
    fn empty_plan_returns_inner_unchanged() {
        let plan = FaultPlan::none();
        let mut c = plan.wrap::<()>("tap", Box::new(PassThrough));
        assert!(matches!(
            c.submit(SimTime::ZERO, pkt(1)),
            ConditionOutcome::Pass(_)
        ));
        assert_eq!(c.held(), 0);
    }

    #[test]
    fn drop_swallows_exactly_the_nth() {
        let mut c = wrapped(FaultKind::Drop { nth: 2 });
        assert!(matches!(
            c.submit(SimTime::ZERO, pkt(1)),
            ConditionOutcome::Pass(_)
        ));
        assert!(matches!(
            c.submit(SimTime::ZERO, pkt(2)),
            ConditionOutcome::Absorbed { .. }
        ));
        assert!(matches!(
            c.submit(SimTime::ZERO, pkt(3)),
            ConditionOutcome::Pass(_)
        ));
        // The swallowed packet is hidden from the held() accounting and
        // never released — that is the planted conservation violation.
        assert_eq!(c.held(), 0);
        assert!(c.release(SimTime::from_secs(999)).packets.is_empty());
    }

    #[test]
    fn duplicate_releases_two_copies() {
        let mut c = wrapped(FaultKind::Duplicate { nth: 1 });
        assert!(matches!(
            c.submit(SimTime::ZERO, pkt(7)),
            ConditionOutcome::Absorbed { .. }
        ));
        assert_eq!(c.held(), 2);
        let out = c.release(SimTime::ZERO);
        assert_eq!(out.packets.len(), 2);
        assert_eq!(out.packets[0].id, out.packets[1].id);
        assert!(out.next_poll.is_none());
    }

    #[test]
    fn reorder_holds_one_packet_past_its_successors() {
        let hold = SimDuration::from_millis(5);
        let mut c = wrapped(FaultKind::Reorder { nth: 1, hold });
        assert!(matches!(
            c.submit(SimTime::ZERO, pkt(1)),
            ConditionOutcome::Absorbed { .. }
        ));
        assert!(matches!(
            c.submit(SimTime::from_millis(1), pkt(2)),
            ConditionOutcome::Pass(_)
        ));
        assert!(c.release(SimTime::from_millis(1)).packets.is_empty());
        let out = c.release(SimTime::ZERO + hold);
        assert_eq!(out.packets.len(), 1);
        assert_eq!(out.packets[0].id, PacketId(1));
    }

    #[test]
    fn delay_preserves_order() {
        let hold = SimDuration::from_millis(10);
        let mut c = wrapped(FaultKind::Delay { from: 1, hold });
        for i in 1..=3u64 {
            assert!(matches!(
                c.submit(SimTime::from_millis(i), pkt(i)),
                ConditionOutcome::Absorbed { .. }
            ));
        }
        assert_eq!(c.held(), 3);
        let out = c.release(SimTime::from_millis(13));
        let ids: Vec<u64> = out.packets.iter().map(|p| p.id.0).collect();
        assert_eq!(ids, vec![1, 2, 3]);
        assert!(out.next_poll.is_none());
    }

    #[test]
    fn size_flip_changes_exactly_one_packet() {
        let mut c = wrapped(FaultKind::SizeFlip { nth: 2, xor: 0x200 });
        let a = match c.submit(SimTime::ZERO, pkt(1)) {
            ConditionOutcome::Pass(p) => p,
            other => panic!("{other:?}"),
        };
        let b = match c.submit(SimTime::ZERO, pkt(2)) {
            ConditionOutcome::Pass(p) => p,
            other => panic!("{other:?}"),
        };
        assert_eq!(a.size, 1000);
        assert_eq!(b.size, 1000 ^ 0x200);
    }

    #[test]
    fn pick_is_deterministic_and_seed_sensitive() {
        let a = FaultPlan::new(1);
        let b = FaultPlan::new(2);
        assert_eq!(a.pick(0, 10, 100), a.pick(0, 10, 100));
        let v = a.pick(0, 10, 100);
        assert!((10..100).contains(&v));
        // Different seeds or salts move the injection point (with a
        // tiny collision chance that these constants avoid).
        assert_ne!(a.pick(0, 0, u64::MAX), b.pick(0, 0, u64::MAX));
        assert_ne!(a.pick(0, 0, u64::MAX), a.pick(1, 0, u64::MAX));
    }
}
