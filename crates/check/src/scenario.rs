//! Reference scenarios the self-tests inject faults into.
//!
//! Two fixtures cover the fault matrix:
//!
//! * [`run_policer_chain`] — a constant-rate source through one policed
//!   router into a recording sink. Small, fast, and fully parameterised
//!   (rates, link speed, queue backend), it is where the oracle
//!   self-tests and the metamorphic time-dilation property run.
//! * [`run_stream_chain`] — a real paced video server and streaming
//!   client across a faultable router, for playback-robustness checks.
//!
//! Both fixtures are declared as [`ScenarioSpec`]s ([`chain_spec`],
//! [`stream_spec`]) and lowered by the scenario compiler — nodes resolve
//! by name, never by creation order — with the [`FaultPlan`] installed
//! through the compiler's tap-wrap hook. Both take an explicit
//! [`QueueBackend`] so differential tests can run the wheel and the heap
//! in the same process, and both arm the audit oracles whenever the
//! `audit` feature is compiled in *and* auditing is runtime-enabled.

use dsv_media::scene::ClipId;
use dsv_net::network::Simulation;
use dsv_net::packet::FlowId;
use dsv_scenario::{
    compile, ActionSpec, AppSpec, BoundSpec, BoxConditioner, CodecSpec, CompileOptions,
    ConditionerSpec, DscpSpec, LinkParams, LinkSpec, MatchSpec, MediaRef, NodeSpec, RuleSpec,
    ScenarioSpec, TransportSpec,
};
use dsv_sim::{EventQueue, QueueBackend, SimDuration, SimTime};

use crate::fault::FaultPlan;

#[cfg(feature = "audit")]
use dsv_net::audit::AuditReport;

/// Flow id of the chain scenarios' traffic.
pub const CHAIN_FLOW: FlowId = FlowId(1);

/// Name of the faultable conditioner tap in both scenarios.
pub const TAP: &str = "ingress";

/// Parameters of the policer-chain scenario.
#[derive(Debug, Clone)]
pub struct ChainConfig {
    /// Packets the source offers.
    pub packets: u32,
    /// Wire size of each packet, bytes.
    pub size: u32,
    /// Inter-packet gap at the source.
    pub gap: SimDuration,
    /// Token rate of the policer at the tap router, bps.
    pub rate_bps: u64,
    /// Bucket depth of the policer, bytes.
    pub depth_bytes: u32,
    /// Rate of both links, bps.
    pub link_bps: u64,
    /// Propagation delay of both links.
    pub prop: SimDuration,
    /// Event-queue backend to run under.
    pub backend: QueueBackend,
    /// Faults to plant at the [`TAP`].
    pub plan: FaultPlan,
}

impl Default for ChainConfig {
    /// A generously policed chain: 12 Mbps offered against a 20 Mbps
    /// token rate, so every packet passes and a clean run is violation-
    /// free. Tests that want policer drops lower `rate_bps`.
    fn default() -> ChainConfig {
        ChainConfig {
            packets: 200,
            size: 1500,
            gap: SimDuration::from_millis(1),
            rate_bps: 20_000_000,
            depth_bytes: 4500,
            link_bps: 100_000_000,
            prop: SimDuration::from_micros(50),
            backend: QueueBackend::Wheel,
            plan: FaultPlan::none(),
        }
    }
}

impl ChainConfig {
    /// The same experiment dilated by `k`: all rates divided and all
    /// durations multiplied, so every timestamp scales by exactly `k`
    /// and every per-packet decision must be identical — the metamorphic
    /// time-dilation property. `rate_bps` and `link_bps` must be
    /// divisible by `k` for the scaling to be exact in integer time.
    pub fn dilated(&self, k: u64) -> ChainConfig {
        assert!(k > 0 && self.rate_bps % k == 0 && self.link_bps % k == 0);
        let mut cfg = self.clone();
        cfg.gap = scale(self.gap, k);
        cfg.prop = scale(self.prop, k);
        cfg.rate_bps = self.rate_bps / k;
        cfg.link_bps = self.link_bps / k;
        cfg
    }
}

fn scale(d: SimDuration, k: u64) -> SimDuration {
    SimDuration::from_nanos(d.as_nanos() * k)
}

/// What the policer chain produced.
#[derive(Debug)]
pub struct ChainOutcome {
    /// Packets the source handed to the network.
    pub tx: u64,
    /// Packets the sink received.
    pub rx: u64,
    /// Packets the policer discarded.
    pub drops: u64,
    /// Delivered packet ids, in arrival order at the sink.
    pub delivered_ids: Vec<u64>,
    /// End-of-run simulation time.
    pub end_time: SimTime,
    /// Events dispatched.
    pub dispatched: u64,
    /// The audit's verdict, when compiled in and runtime-enabled.
    #[cfg(feature = "audit")]
    pub audit: Option<AuditReport>,
}

impl ChainOutcome {
    /// Fraction of offered packets that never reached the sink.
    pub fn loss_fraction(&self) -> f64 {
        if self.tx == 0 {
            0.0
        } else {
            1.0 - self.rx as f64 / self.tx as f64
        }
    }
}

/// The declarative policer-chain topology for `cfg` (faults and backend
/// are runtime concerns and stay outside the spec).
pub fn chain_spec(cfg: &ChainConfig) -> ScenarioSpec {
    let mut spec = ScenarioSpec::new("policer-chain", 0);
    spec.nodes.push(NodeSpec::host("rx", AppSpec::IdSink));
    spec.nodes.push(NodeSpec::router("tap"));
    spec.nodes.push(NodeSpec::host(
        "tx",
        AppSpec::Pump {
            dst: "rx".to_string(),
            flow: CHAIN_FLOW.0,
            count: cfg.packets,
            size: cfg.size,
            gap_ns: cfg.gap.as_nanos(),
        },
    ));

    let link = LinkParams {
        rate_bps: cfg.link_bps,
        propagation_ns: cfg.prop.as_nanos(),
    };
    spec.links.push(LinkSpec::simple("tx", "tap", link));
    spec.links.push(LinkSpec::simple("tap", "rx", link));

    spec.conditioners.push(ConditionerSpec {
        node: "tap".to_string(),
        tap: Some(TAP.to_string()),
        rules: vec![RuleSpec {
            matches: MatchSpec::flow(CHAIN_FLOW.0),
            action: ActionSpec::Police {
                rate_bps: cfg.rate_bps,
                depth_bytes: cfg.depth_bytes,
                conform_mark: None,
            },
        }],
    });
    spec.bounds.push(BoundSpec {
        node: "tap".to_string(),
        flow: CHAIN_FLOW.0,
        rate_bps: cfg.rate_bps,
        depth_bytes: cfg.depth_bytes,
    });
    spec
}

/// Run the policer chain to completion and collect the outcome.
pub fn run_policer_chain(cfg: &ChainConfig) -> ChainOutcome {
    let spec = chain_spec(cfg);
    let wrap = |tap: &str, inner: BoxConditioner| cfg.plan.wrap(tap, inner);
    let compiled = compile(
        &spec,
        CompileOptions {
            store: None,
            wrap: Some(&wrap),
        },
    )
    .expect("chain spec compiles");
    let sink_handle = compiled
        .id_sinks
        .first()
        .expect("chain has a recording sink")
        .1
        .clone();
    let bounds = compiled.bounds.clone();

    let net = compiled.net;
    let mut queue = EventQueue::with_backend(cfg.backend);
    net.schedule_starts(&mut queue);
    let mut sim = Simulation { net, queue };

    #[cfg(feature = "audit")]
    let audited = {
        let on = sim.net.audit().enabled();
        if on {
            for &(node, flow, rate_bps, depth_bytes) in &bounds {
                sim.net
                    .audit_mut()
                    .register_conformance_bound(node, flow, rate_bps, depth_bytes);
            }
        }
        on
    };
    #[cfg(not(feature = "audit"))]
    let _ = bounds;

    let stats = sim.run();

    #[cfg(feature = "audit")]
    let audit = audited.then(|| {
        sim.net.audit_finish();
        sim.net.audit().report()
    });

    let flow = sim.net.stats.flow(CHAIN_FLOW);
    let delivered_ids = sink_handle.borrow().ids.clone();
    ChainOutcome {
        tx: flow.tx_packets,
        rx: flow.rx_packets,
        drops: flow.total_drops(),
        delivered_ids,
        end_time: stats.end_time,
        dispatched: stats.dispatched,
        #[cfg(feature = "audit")]
        audit,
    }
}

/// Parameters of the streaming scenario.
#[derive(Debug, Clone)]
pub struct StreamChainConfig {
    /// Clip to stream (MPEG-1 CBR).
    pub clip: ClipId,
    /// Encoding rate, bps.
    pub encoding_bps: u64,
    /// Event-queue backend.
    pub backend: QueueBackend,
    /// Faults to plant at the router [`TAP`].
    pub plan: FaultPlan,
}

impl Default for StreamChainConfig {
    fn default() -> StreamChainConfig {
        StreamChainConfig {
            clip: ClipId::Lost,
            encoding_bps: 1_500_000,
            backend: QueueBackend::Wheel,
            plan: FaultPlan::none(),
        }
    }
}

/// What the streaming chain produced.
#[derive(Debug)]
pub struct StreamOutcome {
    /// Fraction of frames that never became decodable at the client.
    pub frame_loss: f64,
    /// Presentation slots the playback model filled.
    pub displayed: usize,
    /// Longest run of consecutive frozen (repeated) slots.
    pub longest_freeze: usize,
    /// Whether playback failed outright.
    pub total_failure: bool,
    /// Media packets delivered.
    pub rx_packets: u64,
    /// The audit's verdict, when compiled in and runtime-enabled.
    #[cfg(feature = "audit")]
    pub audit: Option<AuditReport>,
}

/// The declarative streaming-chain topology for `cfg`.
pub fn stream_spec(cfg: &StreamChainConfig) -> ScenarioSpec {
    let media = MediaRef {
        clip: cfg.clip.into(),
        codec: CodecSpec::Mpeg1,
        rate_bps: cfg.encoding_bps,
    };
    let mut spec = ScenarioSpec::new("stream-chain", 0);
    spec.nodes.push(NodeSpec::host(
        "client",
        AppSpec::StreamClient {
            server: "server".to_string(),
            up_flow: 2,
            media,
            transport: TransportSpec::Udp,
            feedback_us: None,
        },
    ));
    spec.nodes.push(NodeSpec::router("tap"));
    spec.nodes.push(NodeSpec::host(
        "server",
        AppSpec::PacedServer {
            client: "client".to_string(),
            flow: CHAIN_FLOW.0,
            dscp: DscpSpec::BestEffort,
            media,
        },
    ));

    spec.links.push(LinkSpec::simple(
        "server",
        "tap",
        LinkParams::fast_ethernet(),
    ));
    spec.links.push(LinkSpec::simple(
        "client",
        "tap",
        LinkParams::fast_ethernet(),
    ));

    // A pass-everything conditioner: its only job is giving the fault
    // plan a named tap to hook.
    spec.conditioners.push(ConditionerSpec {
        node: "tap".to_string(),
        tap: Some(TAP.to_string()),
        rules: vec![RuleSpec {
            matches: MatchSpec::ANY,
            action: ActionSpec::Pass,
        }],
    });

    spec.horizon_ns = Some(dsv_core::experiment::run_horizon(cfg.clip).as_nanos());
    spec
}

/// Stream a real clip through a faultable router and report how the
/// client's playback model coped.
pub fn run_stream_chain(cfg: &StreamChainConfig) -> StreamOutcome {
    dsv_core::artifacts::encoding(
        cfg.clip,
        dsv_core::artifacts::Codec::Mpeg1,
        cfg.encoding_bps,
    );

    let spec = stream_spec(cfg);
    let wrap = |tap: &str, inner: BoxConditioner| cfg.plan.wrap(tap, inner);
    let compiled = compile(
        &spec,
        CompileOptions {
            store: Some(&dsv_core::artifacts::ArtifactStore),
            wrap: Some(&wrap),
        },
    )
    .expect("stream spec compiles");
    let client_handle = compiled
        .sole_client()
        .expect("stream chain has one client")
        .clone();
    let horizon = compiled.horizon.expect("stream spec sets a horizon");

    let net = compiled.net;
    let mut queue = EventQueue::with_backend(cfg.backend);
    net.schedule_starts(&mut queue);
    let mut sim = Simulation { net, queue };

    #[cfg(feature = "audit")]
    let audited = sim.net.audit().enabled();

    sim.run_until(SimTime::ZERO + horizon);

    #[cfg(feature = "audit")]
    let audit = audited.then(|| {
        sim.net.audit_finish();
        sim.net.audit().report()
    });

    let report = client_handle.borrow().report();
    let flow = sim.net.stats.flow(CHAIN_FLOW);
    StreamOutcome {
        frame_loss: report.frame_loss_fraction(),
        displayed: report.playback.displayed.len(),
        longest_freeze: report.playback.longest_freeze,
        total_failure: report.playback.total_failure,
        rx_packets: flow.rx_packets,
        #[cfg(feature = "audit")]
        audit,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn clean_chain_delivers_everything() {
        let out = run_policer_chain(&ChainConfig::default());
        assert_eq!(out.tx, 200);
        assert_eq!(out.rx, 200);
        assert_eq!(out.drops, 0);
        assert_eq!(out.delivered_ids.len(), 200);
        // FIFO path: ids arrive in send order.
        assert!(out.delivered_ids.windows(2).all(|w| w[0] < w[1]));
    }

    #[test]
    fn starved_chain_drops_at_the_policer() {
        let cfg = ChainConfig {
            rate_bps: 2_000_000, // offered 12 Mbps
            depth_bytes: 3000,
            ..ChainConfig::default()
        };
        let out = run_policer_chain(&cfg);
        assert!(out.drops > 0, "expected policer drops");
        assert_eq!(out.rx + out.drops, out.tx);
    }

    #[test]
    fn backends_agree_on_the_chain() {
        let wheel = run_policer_chain(&ChainConfig {
            rate_bps: 2_000_000,
            ..ChainConfig::default()
        });
        let heap = run_policer_chain(&ChainConfig {
            rate_bps: 2_000_000,
            backend: QueueBackend::Heap,
            ..ChainConfig::default()
        });
        assert_eq!(wheel.delivered_ids, heap.delivered_ids);
        assert_eq!(wheel.end_time, heap.end_time);
    }

    #[test]
    fn chain_spec_round_trips_and_names_resolve() {
        let spec = chain_spec(&ChainConfig::default());
        let value = serde::Serialize::to_value(&spec);
        let back: ScenarioSpec = serde::Deserialize::from_value(&value).expect("round-trips");
        assert_eq!(spec, back);
        let compiled = compile(&spec, CompileOptions::default()).expect("compiles");
        assert_eq!(compiled.ids.len(), 3);
        assert_eq!(compiled.bounds.len(), 1);
    }
}
