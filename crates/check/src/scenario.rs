//! Reference scenarios the self-tests inject faults into.
//!
//! Two fixtures cover the fault matrix:
//!
//! * [`run_policer_chain`] — a constant-rate source through one policed
//!   router into a recording sink. Small, fast, and fully parameterised
//!   (rates, link speed, queue backend), it is where the oracle
//!   self-tests and the metamorphic time-dilation property run.
//! * [`run_stream_chain`] — a real paced video server and streaming
//!   client across a faultable router, for playback-robustness checks.
//!
//! Both take an explicit [`QueueBackend`] so differential tests can run
//! the wheel and the heap in the same process, and both arm the audit
//! oracles whenever the `audit` feature is compiled in *and* auditing is
//! runtime-enabled.

use dsv_media::encoder::mpeg1;
use dsv_media::scene::ClipId;
use dsv_net::app::{AppCtx, Application, SendSpec, Shared};
use dsv_net::link::Link;
use dsv_net::network::{NetworkBuilder, Simulation};
use dsv_net::packet::{Dscp, FlowId, NodeId, Packet, Proto};
use dsv_sim::{EventQueue, QueueBackend, SimDuration, SimTime};
use dsv_stream::client::{ClientConfig, ClientMode, StreamClient};
use dsv_stream::payload::StreamPayload;
use dsv_stream::playback::PlaybackConfig;
use dsv_stream::server::paced::{PacedConfig, PacedServer};

use dsv_diffserv::classifier::MatchRule;
use dsv_diffserv::policer::Policer;
use dsv_diffserv::policy::{PolicyAction, PolicyTable};

use crate::fault::FaultPlan;

#[cfg(feature = "audit")]
use dsv_net::audit::AuditReport;

/// Flow id of the chain scenarios' traffic.
pub const CHAIN_FLOW: FlowId = FlowId(1);

/// Name of the faultable conditioner tap in both scenarios.
pub const TAP: &str = "ingress";

/// Parameters of the policer-chain scenario.
#[derive(Debug, Clone)]
pub struct ChainConfig {
    /// Packets the source offers.
    pub packets: u32,
    /// Wire size of each packet, bytes.
    pub size: u32,
    /// Inter-packet gap at the source.
    pub gap: SimDuration,
    /// Token rate of the policer at the tap router, bps.
    pub rate_bps: u64,
    /// Bucket depth of the policer, bytes.
    pub depth_bytes: u32,
    /// Rate of both links, bps.
    pub link_bps: u64,
    /// Propagation delay of both links.
    pub prop: SimDuration,
    /// Event-queue backend to run under.
    pub backend: QueueBackend,
    /// Faults to plant at the [`TAP`].
    pub plan: FaultPlan,
}

impl Default for ChainConfig {
    /// A generously policed chain: 12 Mbps offered against a 20 Mbps
    /// token rate, so every packet passes and a clean run is violation-
    /// free. Tests that want policer drops lower `rate_bps`.
    fn default() -> ChainConfig {
        ChainConfig {
            packets: 200,
            size: 1500,
            gap: SimDuration::from_millis(1),
            rate_bps: 20_000_000,
            depth_bytes: 4500,
            link_bps: 100_000_000,
            prop: SimDuration::from_micros(50),
            backend: QueueBackend::Wheel,
            plan: FaultPlan::none(),
        }
    }
}

impl ChainConfig {
    /// The same experiment dilated by `k`: all rates divided and all
    /// durations multiplied, so every timestamp scales by exactly `k`
    /// and every per-packet decision must be identical — the metamorphic
    /// time-dilation property. `rate_bps` and `link_bps` must be
    /// divisible by `k` for the scaling to be exact in integer time.
    pub fn dilated(&self, k: u64) -> ChainConfig {
        assert!(k > 0 && self.rate_bps % k == 0 && self.link_bps % k == 0);
        let mut cfg = self.clone();
        cfg.gap = scale(self.gap, k);
        cfg.prop = scale(self.prop, k);
        cfg.rate_bps = self.rate_bps / k;
        cfg.link_bps = self.link_bps / k;
        cfg
    }
}

fn scale(d: SimDuration, k: u64) -> SimDuration {
    SimDuration::from_nanos(d.as_nanos() * k)
}

/// What the policer chain produced.
#[derive(Debug)]
pub struct ChainOutcome {
    /// Packets the source handed to the network.
    pub tx: u64,
    /// Packets the sink received.
    pub rx: u64,
    /// Packets the policer discarded.
    pub drops: u64,
    /// Delivered packet ids, in arrival order at the sink.
    pub delivered_ids: Vec<u64>,
    /// End-of-run simulation time.
    pub end_time: SimTime,
    /// Events dispatched.
    pub dispatched: u64,
    /// The audit's verdict, when compiled in and runtime-enabled.
    #[cfg(feature = "audit")]
    pub audit: Option<AuditReport>,
}

impl ChainOutcome {
    /// Fraction of offered packets that never reached the sink.
    pub fn loss_fraction(&self) -> f64 {
        if self.tx == 0 {
            0.0
        } else {
            1.0 - self.rx as f64 / self.tx as f64
        }
    }
}

/// A constant-rate source (mirrors the network tests' `Blaster`).
struct Pump {
    dst: NodeId,
    count: u32,
    size: u32,
    gap: SimDuration,
    sent: u32,
}

impl Application<()> for Pump {
    fn on_start(&mut self, ctx: &mut AppCtx<()>) {
        ctx.set_timer(SimDuration::ZERO, 0);
    }
    fn on_packet(&mut self, _ctx: &mut AppCtx<()>, _pkt: Packet<()>) {}
    fn on_timer(&mut self, ctx: &mut AppCtx<()>, _token: u64) {
        if self.sent < self.count {
            self.sent += 1;
            ctx.send(SendSpec {
                dst: self.dst,
                flow: CHAIN_FLOW,
                size: self.size,
                dscp: Dscp::BEST_EFFORT,
                proto: Proto::Udp,
                fragment: None,
                payload: (),
            });
            ctx.set_timer(self.gap, 0);
        }
    }
}

/// Records delivered packet ids in arrival order.
#[derive(Default)]
struct IdSink {
    ids: Vec<u64>,
}

impl Application<()> for IdSink {
    fn on_start(&mut self, _ctx: &mut AppCtx<()>) {}
    fn on_packet(&mut self, _ctx: &mut AppCtx<()>, pkt: Packet<()>) {
        self.ids.push(pkt.id.0);
    }
    fn on_timer(&mut self, _ctx: &mut AppCtx<()>, _token: u64) {}
}

/// Run the policer chain to completion and collect the outcome.
pub fn run_policer_chain(cfg: &ChainConfig) -> ChainOutcome {
    let mut b = NetworkBuilder::<()>::new();
    let (sink_handle, sink_app) = Shared::new(IdSink::default());
    let rx = b.add_host("rx", Box::new(sink_app));
    let tap = b.add_router("tap");
    let tx = b.add_host(
        "tx",
        Box::new(Pump {
            dst: rx,
            count: cfg.packets,
            size: cfg.size,
            gap: cfg.gap,
            sent: 0,
        }),
    );
    let link = Link::new(cfg.link_bps, cfg.prop);
    b.connect(tx, tap, link);
    b.connect(tap, rx, link);

    let table = PolicyTable::new().with(
        MatchRule {
            flow: Some(CHAIN_FLOW),
            ..MatchRule::ANY
        },
        PolicyAction::Police(Policer::car_drop(cfg.rate_bps, cfg.depth_bytes)),
    );
    b.set_conditioner(tap, cfg.plan.wrap(TAP, Box::new(table)));

    let net = b.build();
    let mut queue = EventQueue::with_backend(cfg.backend);
    net.schedule_starts(&mut queue);
    let mut sim = Simulation { net, queue };

    #[cfg(feature = "audit")]
    let audited = {
        let on = sim.net.audit().enabled();
        if on {
            sim.net.audit_mut().register_conformance_bound(
                tap,
                CHAIN_FLOW,
                cfg.rate_bps,
                cfg.depth_bytes,
            );
        }
        on
    };

    let stats = sim.run();

    #[cfg(feature = "audit")]
    let audit = audited.then(|| {
        sim.net.audit_finish();
        sim.net.audit().report()
    });

    let flow = sim.net.stats.flow(CHAIN_FLOW);
    let delivered_ids = sink_handle.borrow().ids.clone();
    ChainOutcome {
        tx: flow.tx_packets,
        rx: flow.rx_packets,
        drops: flow.total_drops(),
        delivered_ids,
        end_time: stats.end_time,
        dispatched: stats.dispatched,
        #[cfg(feature = "audit")]
        audit,
    }
}

/// Parameters of the streaming scenario.
#[derive(Debug, Clone)]
pub struct StreamChainConfig {
    /// Clip to stream (MPEG-1 CBR).
    pub clip: ClipId,
    /// Encoding rate, bps.
    pub encoding_bps: u64,
    /// Event-queue backend.
    pub backend: QueueBackend,
    /// Faults to plant at the router [`TAP`].
    pub plan: FaultPlan,
}

impl Default for StreamChainConfig {
    fn default() -> StreamChainConfig {
        StreamChainConfig {
            clip: ClipId::Lost,
            encoding_bps: 1_500_000,
            backend: QueueBackend::Wheel,
            plan: FaultPlan::none(),
        }
    }
}

/// What the streaming chain produced.
#[derive(Debug)]
pub struct StreamOutcome {
    /// Fraction of frames that never became decodable at the client.
    pub frame_loss: f64,
    /// Presentation slots the playback model filled.
    pub displayed: usize,
    /// Longest run of consecutive frozen (repeated) slots.
    pub longest_freeze: usize,
    /// Whether playback failed outright.
    pub total_failure: bool,
    /// Media packets delivered.
    pub rx_packets: u64,
    /// The audit's verdict, when compiled in and runtime-enabled.
    #[cfg(feature = "audit")]
    pub audit: Option<AuditReport>,
}

/// Stream a real clip through a faultable router and report how the
/// client's playback model coped.
pub fn run_stream_chain(cfg: &StreamChainConfig) -> StreamOutcome {
    let clip = dsv_core::artifacts::encoding(
        cfg.clip,
        dsv_core::artifacts::Codec::Mpeg1,
        cfg.encoding_bps,
    );

    let mut b = NetworkBuilder::<StreamPayload>::new();
    let server_id = NodeId(2);
    let (client_handle, client_app) = Shared::new(StreamClient::new(ClientConfig {
        server: server_id,
        up_flow: FlowId(2),
        frames: clip.frames.len() as u32,
        kind_fn: mpeg1::frame_kind,
        playback: PlaybackConfig::default(),
        feedback_interval: None,
        mode: ClientMode::Udp,
    }));
    let client = b.add_host("client", Box::new(client_app));
    let tap = b.add_router("tap");
    let server = b.add_host(
        "server",
        Box::new(PacedServer::new(
            PacedConfig::new(client, CHAIN_FLOW, Dscp::BEST_EFFORT),
            &clip,
        )),
    );
    assert_eq!(server, server_id, "node creation order changed");
    b.connect(server, tap, Link::fast_ethernet());
    b.connect(client, tap, Link::fast_ethernet());

    b.set_conditioner(
        tap,
        cfg.plan
            .wrap(TAP, Box::new(dsv_net::conditioner::PassThrough)),
    );

    let net = b.build();
    let mut queue = EventQueue::with_backend(cfg.backend);
    net.schedule_starts(&mut queue);
    let mut sim = Simulation { net, queue };

    #[cfg(feature = "audit")]
    let audited = sim.net.audit().enabled();

    sim.run_until(SimTime::ZERO + dsv_core::experiment::run_horizon(cfg.clip));

    #[cfg(feature = "audit")]
    let audit = audited.then(|| {
        sim.net.audit_finish();
        sim.net.audit().report()
    });

    let report = client_handle.borrow().report();
    let flow = sim.net.stats.flow(CHAIN_FLOW);
    StreamOutcome {
        frame_loss: report.frame_loss_fraction(),
        displayed: report.playback.displayed.len(),
        longest_freeze: report.playback.longest_freeze,
        total_failure: report.playback.total_failure,
        rx_packets: flow.rx_packets,
        #[cfg(feature = "audit")]
        audit,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn clean_chain_delivers_everything() {
        let out = run_policer_chain(&ChainConfig::default());
        assert_eq!(out.tx, 200);
        assert_eq!(out.rx, 200);
        assert_eq!(out.drops, 0);
        assert_eq!(out.delivered_ids.len(), 200);
        // FIFO path: ids arrive in send order.
        assert!(out.delivered_ids.windows(2).all(|w| w[0] < w[1]));
    }

    #[test]
    fn starved_chain_drops_at_the_policer() {
        let cfg = ChainConfig {
            rate_bps: 2_000_000, // offered 12 Mbps
            depth_bytes: 3000,
            ..ChainConfig::default()
        };
        let out = run_policer_chain(&cfg);
        assert!(out.drops > 0, "expected policer drops");
        assert_eq!(out.rx + out.drops, out.tx);
    }

    #[test]
    fn backends_agree_on_the_chain() {
        let wheel = run_policer_chain(&ChainConfig {
            rate_bps: 2_000_000,
            ..ChainConfig::default()
        });
        let heap = run_policer_chain(&ChainConfig {
            rate_bps: 2_000_000,
            backend: QueueBackend::Heap,
            ..ChainConfig::default()
        });
        assert_eq!(wheel.delivered_ids, heap.delivered_ids);
        assert_eq!(wheel.end_time, heap.end_time);
    }
}
