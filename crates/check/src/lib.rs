//! # dsv-check — the verification harness
//!
//! Everything the reproduction uses to check *itself*: deterministic
//! fault injection ([`fault`]) and small reference scenarios
//! ([`scenario`]) that the audit self-tests run faults through.
//!
//! The design is mutation-testing in miniature. The audit oracles in
//! `dsv-net::audit` claim to catch packet-conservation, FIFO, causality,
//! integrity and token-bucket-conformance violations; an oracle that is
//! never seen to fire proves nothing. The [`fault::FaultPlan`] therefore
//! injects one violation of each class into an otherwise healthy
//! simulation — swallowing, duplicating, reordering, resizing or
//! clock-skewing packets at a named tap — and the self-tests in
//! `tests/fault_injection.rs` assert that exactly the matching oracle
//! fires, and that *no* oracle fires when no fault is planted.
//!
//! Faults are also how the streaming client's robustness is exercised:
//! a [`fault::FaultKind::Delay`] hold is invisible to the oracles (order
//! and conservation are preserved) but stresses the playback buffer the
//! same way real-network jitter does.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod fault;
pub mod scenario;
