//! Mutation-style self-tests for the audit oracles.
//!
//! Each test plants exactly one fault class from [`dsv_check::fault`]
//! into an otherwise healthy scenario and asserts that the matching
//! oracle fires — and, in the control tests, that *no* oracle fires on
//! an unfaulted run. An oracle that is never observed to fire proves
//! nothing; this file is what makes the audit claims falsifiable.
//!
//! The whole file compiles only with `--features audit`; auditing is
//! force-enabled programmatically so the tests do not depend on the
//! `DSV_AUDIT` environment.

#![cfg(feature = "audit")]

use dsv_check::fault::{FaultKind, FaultPlan};
use dsv_check::scenario::{
    run_policer_chain, run_stream_chain, ChainConfig, ChainOutcome, StreamChainConfig, TAP,
};
use dsv_net::audit::AuditReport;
use dsv_sim::audit::set_enabled_for_process;
use dsv_sim::{QueueBackend, SimDuration};

/// Run the chain with auditing force-enabled and return its report too.
fn audited(cfg: &ChainConfig) -> (ChainOutcome, AuditReport) {
    set_enabled_for_process(Some(true));
    let out = run_policer_chain(cfg);
    let audit = out.audit.clone().expect("auditing was force-enabled");
    // Positive proof the run was observed at all: a disarmed auditor
    // would also report zero violations.
    assert!(audit.enabled, "auditor not armed");
    assert!(audit.events > 0, "no events observed");
    assert!(audit.checks > 0, "no lifecycle checks ran");
    assert!(audit.finished, "conservation closure never ran");
    (out, audit)
}

fn faulted(kind: FaultKind) -> ChainConfig {
    ChainConfig {
        plan: FaultPlan::new(42).with(TAP, kind),
        ..ChainConfig::default()
    }
}

#[test]
fn unfaulted_run_is_silent() {
    let (out, audit) = audited(&ChainConfig::default());
    audit.assert_clean("unfaulted chain");
    assert_eq!(out.rx, out.tx);
}

#[test]
fn unfaulted_run_is_silent_on_the_heap_backend() {
    let (out, audit) = audited(&ChainConfig {
        backend: QueueBackend::Heap,
        ..ChainConfig::default()
    });
    audit.assert_clean("unfaulted chain, heap backend");
    assert_eq!(out.rx, out.tx);
}

#[test]
fn unfaulted_policed_run_is_silent() {
    // Policer drops are legal: accounted, conserved, within the bound.
    let (out, audit) = audited(&ChainConfig {
        rate_bps: 2_000_000,
        depth_bytes: 3000,
        ..ChainConfig::default()
    });
    audit.assert_clean("policed chain");
    assert!(out.drops > 0, "scenario should exercise the drop path");
}

#[test]
fn drop_fault_trips_conservation() {
    // A swallowed packet is missing from every balance: node, flow, pool.
    let (out, audit) = audited(&faulted(FaultKind::Drop { nth: 7 }));
    assert_eq!(out.rx, out.tx - 1, "exactly one packet should vanish");
    assert!(
        audit.has_violation_matching("conservation:"),
        "leak not caught: {:?}",
        audit.violations
    );
}

#[test]
fn duplicate_fault_trips_the_lifecycle_oracle() {
    // The second copy arrives with an id the auditor already retired.
    let (out, audit) = audited(&faulted(FaultKind::Duplicate { nth: 5 }));
    assert_eq!(out.rx, out.tx + 1, "one packet should arrive twice");
    assert!(
        audit.has_violation_matching("delivered twice")
            || audit.has_violation_matching("never sent"),
        "duplicate not caught: {:?}",
        audit.violations
    );
}

#[test]
fn reorder_fault_trips_fifo() {
    let (out, audit) = audited(&faulted(FaultKind::Reorder {
        nth: 10,
        hold: SimDuration::from_millis(5),
    }));
    // Everything still arrives — only the order is wrong, so
    // conservation must NOT be among the violations.
    assert_eq!(out.rx, out.tx);
    assert!(
        audit.has_violation_matching("fifo:"),
        "reordering not caught: {:?}",
        audit.violations
    );
    assert!(
        !audit.has_violation_matching("conservation:"),
        "reordering must not look like a leak: {:?}",
        audit.violations
    );
}

#[test]
fn size_flip_fault_trips_integrity() {
    let (_, audit) = audited(&faulted(FaultKind::SizeFlip { nth: 3, xor: 0x200 }));
    assert!(
        audit.has_violation_matching("integrity:"),
        "size corruption not caught: {:?}",
        audit.violations
    );
}

#[test]
fn clock_skew_fault_trips_the_conformance_bound() {
    // A policer whose clock runs 2× fast sees every refill interval
    // doubled, grants tokens at twice the contracted rate, and under a
    // saturating offered load admits more bytes than the analytic bound
    // (checked against true simulation time) allows.
    let (_, audit) = audited(&ChainConfig {
        rate_bps: 500_000, // offered 12 Mbps — heavily policed
        depth_bytes: 3000,
        plan: FaultPlan::new(42).with(TAP, FaultKind::ClockSkew { speedup: 2 }),
        ..ChainConfig::default()
    });
    assert!(
        audit.has_violation_matching("conformance:"),
        "over-admission not caught: {:?}",
        audit.violations
    );
}

#[test]
fn clock_skew_without_saturation_is_within_bound() {
    // The same skew under a generous token rate admits nothing beyond
    // what the bound allows — the oracle must not cry wolf.
    let (_, audit) = audited(&ChainConfig {
        rate_bps: 20_000_000,
        plan: FaultPlan::new(42).with(TAP, FaultKind::ClockSkew { speedup: 2 }),
        ..ChainConfig::default()
    });
    assert!(
        !audit.has_violation_matching("conformance:"),
        "false positive: {:?}",
        audit.violations
    );
}

#[test]
fn delay_fault_is_invisible_to_the_oracles() {
    // Order-preserving added latency is legal network behaviour; the
    // auditor must stay silent even though every packet was absorbed
    // and re-released by the fault wrapper.
    let (out, audit) = audited(&faulted(FaultKind::Delay {
        from: 50,
        hold: SimDuration::from_millis(20),
    }));
    audit.assert_clean("delayed chain");
    assert_eq!(out.rx, out.tx);
}

#[test]
fn seeded_plans_replay_identically() {
    let plan = FaultPlan::new(7);
    let nth = plan.pick(0, 2, 150);
    let run = || {
        audited(&ChainConfig {
            plan: FaultPlan::new(7).with(TAP, FaultKind::Drop { nth }),
            ..ChainConfig::default()
        })
    };
    let (a, ra) = run();
    let (b, rb) = run();
    assert_eq!(a.delivered_ids, b.delivered_ids);
    assert_eq!(ra.total_violations, rb.total_violations);
    assert_eq!(ra.violations, rb.violations);
}

#[test]
fn streaming_client_survives_delay_and_reorder_faults() {
    set_enabled_for_process(Some(true));

    // Baseline: clean stream, clean audit, no playback failure.
    let clean = run_stream_chain(&StreamChainConfig::default());
    let clean_audit = clean.audit.as_ref().expect("audited");
    clean_audit.assert_clean("clean stream");
    assert!(clean_audit.events > 0);
    assert!(!clean.total_failure, "clean stream must play");
    assert!(clean.frame_loss < 0.02, "clean loss {}", clean.frame_loss);

    // A 150 ms order-preserving stall mid-stream: legal jitter. The
    // audit stays silent and playback absorbs it without collapsing.
    let delayed = run_stream_chain(&StreamChainConfig {
        plan: FaultPlan::new(1).with(
            TAP,
            FaultKind::Delay {
                from: 200,
                hold: SimDuration::from_millis(150),
            },
        ),
        ..StreamChainConfig::default()
    });
    delayed
        .audit
        .as_ref()
        .expect("audited")
        .assert_clean("delayed stream");
    assert!(!delayed.total_failure, "client must ride out the stall");
    assert_eq!(delayed.displayed, clean.displayed);

    // A reordered packet: the oracle fires AND the client still plays —
    // robustness and detection are independent properties.
    let reordered = run_stream_chain(&StreamChainConfig {
        plan: FaultPlan::new(2).with(
            TAP,
            FaultKind::Reorder {
                nth: 100,
                hold: SimDuration::from_millis(40),
            },
        ),
        ..StreamChainConfig::default()
    });
    let audit = reordered.audit.as_ref().expect("audited");
    assert!(
        audit.has_violation_matching("fifo:"),
        "reorder not caught: {:?}",
        audit.violations
    );
    assert!(!reordered.total_failure, "client must survive reordering");
}
