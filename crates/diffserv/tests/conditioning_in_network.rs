//! Conditioners driven by the real event loop: policers and shapers
//! attached to routers, fed by live traffic sources. These tests pin the
//! end-to-end semantics the experiment layer relies on (drop accounting,
//! shaped-release timing, EF marking downstream of the policer).

use dsv_diffserv::prelude::*;
use dsv_net::prelude::*;
use dsv_sim::{SimDuration, SimTime};

const FLOW: FlowId = FlowId(1);

fn build(
    rate_bps: u64,
    cond: Box<dyn Conditioner<()> + Send>,
    send_rate_bps: u64,
    secs: u64,
) -> Simulation<()> {
    let mut b = NetworkBuilder::<()>::new();
    let sink = b.add_host("sink", Box::new(CountingSink::default()));
    let r = b.add_router("r");
    let src = b.add_host(
        "src",
        Box::new(CbrSource {
            dst: sink,
            flow: FLOW,
            packet_size: 1500,
            rate_bps: send_rate_bps,
            dscp: Dscp::BEST_EFFORT,
            stop_at: SimTime::from_secs(secs),
        }),
    );
    b.connect(src, r, Link::fast_ethernet());
    b.connect(
        r,
        sink,
        Link::new(rate_bps.max(10_000_000), SimDuration::from_micros(100)),
    );
    b.set_conditioner(r, cond);
    Simulation::new(b.build())
}

#[test]
fn policer_passes_exactly_the_token_rate() {
    // CBR at 2 Mbps through a 1 Mbps policer for 20 s: accepted bytes must
    // equal rate·t/8 + depth within one packet.
    let policer = Policer::ef_drop(1_000_000, 3000);
    let table: PolicyTable<()> =
        PolicyTable::new().with(MatchRule::ANY, PolicyAction::Police(policer));
    let mut sim = build(10_000_000, Box::new(table), 2_000_000, 20);
    sim.run();
    let c = sim.net.stats.flow(FLOW);
    let expected_bytes = 1_000_000.0 * 20.0 / 8.0 + 3000.0;
    let delivered = c.rx_bytes as f64;
    assert!(
        (delivered - expected_bytes).abs() < 3_000.0,
        "delivered {delivered} vs expected {expected_bytes}"
    );
    assert_eq!(
        c.drops_for(DropReason::PolicerNonConformant) + c.rx_packets,
        c.tx_packets
    );
    // Every packet dropped for exactly one reason; none vanished.
    assert!(c.drops_for(DropReason::QueueOverflow) == 0);
}

#[test]
fn policer_marks_survivors_ef() {
    // The EF marking applied at the policer is visible at delivery — the
    // premise for the downstream priority queues.
    let mut b = NetworkBuilder::<()>::new();
    struct MarkCheck {
        ef: u64,
        other: u64,
    }
    impl Application<()> for MarkCheck {
        fn on_start(&mut self, _ctx: &mut AppCtx<()>) {}
        fn on_packet(&mut self, _ctx: &mut AppCtx<()>, pkt: Packet<()>) {
            if pkt.dscp.is_ef() {
                self.ef += 1;
            } else {
                self.other += 1;
            }
        }
        fn on_timer(&mut self, _ctx: &mut AppCtx<()>, _token: u64) {}
    }
    let (handle, app) = Shared::new(MarkCheck { ef: 0, other: 0 });
    let sink = b.add_host("sink", Box::new(app));
    let r = b.add_router("r");
    let src = b.add_host(
        "src",
        Box::new(CbrSource {
            dst: sink,
            flow: FLOW,
            packet_size: 1000,
            rate_bps: 800_000,
            dscp: Dscp::BEST_EFFORT,
            stop_at: SimTime::from_secs(2),
        }),
    );
    b.connect(src, r, Link::fast_ethernet());
    b.connect(r, sink, Link::fast_ethernet());
    let table: PolicyTable<()> = PolicyTable::new().with(
        MatchRule::ANY,
        PolicyAction::Police(Policer::ef_drop(1_000_000, 3000)),
    );
    b.set_conditioner(r, Box::new(table));
    let mut sim = Simulation::new(b.build());
    sim.run();
    let mc = handle.borrow();
    assert!(
        mc.ef > 100,
        "conformant packets arrive EF-marked: {}",
        mc.ef
    );
    assert_eq!(mc.other, 0, "nothing arrives unmarked");
}

#[test]
fn shaper_in_network_delays_instead_of_dropping() {
    // Same overload as the policer test, but shaping: everything within
    // the (large) delay queue arrives, at the shaped rate.
    let shaper: Shaper<()> = Shaper::new(1_000_000, 3000, 50_000_000);
    let table: PolicyTable<()> =
        PolicyTable::new().with(MatchRule::ANY, PolicyAction::Shape(shaper));
    let mut sim = build(10_000_000, Box::new(table), 2_000_000, 10);
    sim.run();
    let c = sim.net.stats.flow(FLOW);
    assert_eq!(c.total_drops(), 0, "nothing dropped");
    assert_eq!(c.rx_packets, c.tx_packets, "everything delivered");
    // The tail of the stream waited for the 1 Mbps drain: 10 s of input at
    // 2 Mbps takes ~20 s to drain, so max delay ≈ 10 s.
    assert!(
        c.delay.max > SimDuration::from_secs(8),
        "max delay {:?}",
        c.delay.max
    );
    // Delivered arrival rate never exceeded the shaper rate: the last
    // packet lands no earlier than total_bytes / rate.
    let drain_secs = c.rx_bytes as f64 * 8.0 / 1_000_000.0;
    assert!(drain_secs > 19.0, "drain {drain_secs}");
}

#[test]
fn shaper_overflow_is_accounted() {
    // A small delay queue under the same overload sheds the excess as
    // ShaperOverflow, not silently.
    let shaper: Shaper<()> = Shaper::new(1_000_000, 3000, 30_000);
    let table: PolicyTable<()> =
        PolicyTable::new().with(MatchRule::ANY, PolicyAction::Shape(shaper));
    let mut sim = build(10_000_000, Box::new(table), 2_000_000, 10);
    sim.run();
    let c = sim.net.stats.flow(FLOW);
    assert!(c.drops_for(DropReason::ShaperOverflow) > 0);
    assert_eq!(
        c.rx_packets + c.drops_for(DropReason::ShaperOverflow),
        c.tx_packets
    );
    // Goodput still pinned at the shaper rate: the source sends for 10 s
    // and the (small) queue drains moments later, so delivered bytes ≈
    // 1 Mbps × 10 s.
    let expected = 1_000_000.0 * 10.0 / 8.0;
    assert!(
        (c.rx_bytes as f64 - expected).abs() < 0.08 * expected,
        "delivered {} vs expected {expected}",
        c.rx_bytes
    );
}

#[test]
fn wred_core_sheds_by_color_end_to_end() {
    // AF edge marking + WRED core queue: under congestion the red-marked
    // flow loses far more than the green-marked flow.
    let mut b = NetworkBuilder::<()>::new();
    let sink = b.add_host("sink", Box::new(CountingSink::default()));
    let core = b.add_router("core");
    let edge = b.add_router("edge");
    let green_src = b.add_host(
        "green",
        Box::new(CbrSource {
            dst: sink,
            flow: FlowId(1),
            packet_size: 1200,
            rate_bps: 2_000_000,
            dscp: Dscp::af(1, 1),
            stop_at: SimTime::from_secs(10),
        }),
    );
    let red_src = b.add_host(
        "red",
        Box::new(CbrSource {
            dst: sink,
            flow: FlowId(2),
            packet_size: 1200,
            rate_bps: 2_000_000,
            dscp: Dscp::af(1, 3),
            stop_at: SimTime::from_secs(10),
        }),
    );
    b.connect(green_src, edge, Link::fast_ethernet());
    b.connect(red_src, edge, Link::fast_ethernet());
    // 3 Mbps bottleneck for 4 Mbps of offered load.
    b.connect_with(
        edge,
        core,
        Link::new(3_000_000, SimDuration::from_micros(500)),
        Link::new(3_000_000, SimDuration::from_micros(500)),
        Box::new(WredQueue::af_default(60_000, 99)),
        Box::new(DropTailQueue::new(QueueLimits::UNBOUNDED)),
    );
    b.connect(core, sink, Link::fast_ethernet());
    let mut sim = Simulation::new(b.build());
    sim.run();
    let green = sim.net.stats.flow(FlowId(1));
    let red = sim.net.stats.flow(FlowId(2));
    assert!(
        red.loss_fraction() > 2.0 * green.loss_fraction() + 0.05,
        "red {:.3} vs green {:.3}",
        red.loss_fraction(),
        green.loss_fraction()
    );
    // Combined goodput saturates the bottleneck.
    let total = (green.rx_bytes + red.rx_bytes) as f64 * 8.0 / 10.0;
    assert!(total > 2_500_000.0, "bottleneck utilization {total}");
}
