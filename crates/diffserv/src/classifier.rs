//! Multi-field classification.
//!
//! "At router 1, the profile specifies the source address of the video
//! server and the destination address of the video client, which will then
//! trigger the creation of a classifier entry at the router to extract the
//! corresponding set of packets" (paper §3.2.1.2). A [`MatchRule`] is such a
//! profile: any combination of source host, destination host, flow, DSCP and
//! protocol, each field optional (None = wildcard).

use dsv_net::packet::{Dscp, FlowId, NodeId, Packet, Proto};

/// A packet-matching profile. All present fields must match (conjunction);
/// absent fields are wildcards.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct MatchRule {
    /// Match the originating host.
    pub src: Option<NodeId>,
    /// Match the destination host.
    pub dst: Option<NodeId>,
    /// Match the flow label.
    pub flow: Option<FlowId>,
    /// Match the current DSCP marking.
    pub dscp: Option<Dscp>,
    /// Match the transport tag.
    pub proto: Option<Proto>,
}

impl MatchRule {
    /// Matches everything.
    pub const ANY: MatchRule = MatchRule {
        src: None,
        dst: None,
        flow: None,
        dscp: None,
        proto: None,
    };

    /// The paper's router-1 profile: source = video server, destination =
    /// video client.
    pub fn src_dst(src: NodeId, dst: NodeId) -> MatchRule {
        MatchRule {
            src: Some(src),
            dst: Some(dst),
            ..MatchRule::ANY
        }
    }

    /// Match packets already carrying an EF marking (routers 2 and 3 only
    /// classify on the DSCP).
    pub fn ef_marked() -> MatchRule {
        MatchRule {
            dscp: Some(Dscp::EF),
            ..MatchRule::ANY
        }
    }

    /// Does `pkt` satisfy this rule?
    pub fn matches<P>(&self, pkt: &Packet<P>) -> bool {
        self.src.is_none_or(|v| v == pkt.src)
            && self.dst.is_none_or(|v| v == pkt.dst)
            && self.flow.is_none_or(|v| v == pkt.flow)
            && self
                .dscp
                .is_none_or(|v| v == pkt.dscp || (v.is_ef() && pkt.dscp.is_ef()))
            && self.proto.is_none_or(|v| v == pkt.proto)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dsv_sim::SimTime;

    fn pkt(src: u32, dst: u32, flow: u32, dscp: Dscp, proto: Proto) -> Packet<()> {
        Packet {
            id: dsv_net::packet::PacketId(0),
            flow: FlowId(flow),
            src: NodeId(src),
            dst: NodeId(dst),
            size: 100,
            dscp,
            proto,
            fragment: None,
            sent_at: SimTime::ZERO,
            payload: (),
        }
    }

    #[test]
    fn any_matches_everything() {
        assert!(MatchRule::ANY.matches(&pkt(1, 2, 3, Dscp::EF, Proto::Udp)));
        assert!(MatchRule::ANY.matches(&pkt(9, 8, 7, Dscp::BEST_EFFORT, Proto::Tcp)));
    }

    #[test]
    fn src_dst_profile() {
        let r = MatchRule::src_dst(NodeId(1), NodeId(2));
        assert!(r.matches(&pkt(1, 2, 99, Dscp::BEST_EFFORT, Proto::Udp)));
        assert!(!r.matches(&pkt(1, 3, 99, Dscp::BEST_EFFORT, Proto::Udp)));
        assert!(!r.matches(&pkt(4, 2, 99, Dscp::BEST_EFFORT, Proto::Udp)));
    }

    #[test]
    fn ef_rule_accepts_both_ef_codepoints() {
        let r = MatchRule::ef_marked();
        assert!(r.matches(&pkt(1, 2, 3, Dscp::EF, Proto::Udp)));
        assert!(r.matches(&pkt(1, 2, 3, Dscp::EF_QBONE, Proto::Udp)));
        assert!(!r.matches(&pkt(1, 2, 3, Dscp::BEST_EFFORT, Proto::Udp)));
    }

    #[test]
    fn conjunction_of_fields() {
        let r = MatchRule {
            src: Some(NodeId(1)),
            proto: Some(Proto::Tcp),
            ..MatchRule::ANY
        };
        assert!(r.matches(&pkt(1, 2, 3, Dscp::EF, Proto::Tcp)));
        assert!(!r.matches(&pkt(1, 2, 3, Dscp::EF, Proto::Udp)));
    }
}
