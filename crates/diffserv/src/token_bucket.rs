//! The token bucket — the mechanism at the heart of the paper.
//!
//! "These limitations are typically enforced through a token bucket that
//! controls both the rate and the burstiness of the traffic. The token
//! bucket parameters, i.e., token rate and token bucket depth, therefore
//! play a major role in determining the level of service provided to a
//! flow" (paper §2.1). The entire evaluation sweeps these two parameters.
//!
//! The implementation is **exact integer arithmetic**: the token level is
//! kept in units of bit-nanoseconds (`bits × 10⁹`), so that credit
//! accumulated over any sequence of refills equals the credit of one big
//! refill, with no floating-point drift. This is what makes the conformance
//! invariant testable as an equality: over any interval, accepted bytes
//! never exceed `rate·Δt/8 + depth`.

use dsv_sim::{SimDuration, SimTime};

/// Scale factor: internal token units are bits × NANOS (i.e. bit-seconds
/// × 10⁻⁹ worth of credit at 1 bps).
const SCALE: u128 = 1_000_000_000;

/// A byte-accurate token bucket.
#[derive(Debug, Clone)]
pub struct TokenBucket {
    rate_bps: u64,
    depth_bytes: u32,
    /// Current token level in bits × 10⁹ (≤ cap).
    level: u128,
    /// Time of the last refill.
    last: SimTime,
}

impl TokenBucket {
    /// Create a bucket that starts **full** (the paper's policers are
    /// configured and idle before the stream starts, so the first packets
    /// see a full bucket).
    pub fn new(rate_bps: u64, depth_bytes: u32) -> Self {
        assert!(rate_bps > 0, "token rate must be positive");
        assert!(depth_bytes > 0, "bucket depth must be positive");
        TokenBucket {
            rate_bps,
            depth_bytes,
            level: Self::cap_for(depth_bytes),
            last: SimTime::ZERO,
        }
    }

    fn cap_for(depth_bytes: u32) -> u128 {
        depth_bytes as u128 * 8 * SCALE
    }

    fn cap(&self) -> u128 {
        Self::cap_for(self.depth_bytes)
    }

    /// Configured token rate, bits per second.
    pub fn rate_bps(&self) -> u64 {
        self.rate_bps
    }

    /// Configured depth in bytes.
    pub fn depth_bytes(&self) -> u32 {
        self.depth_bytes
    }

    /// Advance the refill clock to `now`.
    pub fn refill(&mut self, now: SimTime) {
        if let Some(elapsed) = now.checked_since(self.last) {
            let add = elapsed.as_nanos() as u128 * self.rate_bps as u128;
            self.level = (self.level + add).min(self.cap());
            self.last = now;
        }
        // `now` in the past (spurious poll orderings): leave state alone;
        // the bucket's clock is monotone.
    }

    /// Tokens currently available, in whole bytes (after refilling to
    /// `now`).
    pub fn available_bytes(&mut self, now: SimTime) -> u32 {
        self.refill(now);
        (self.level / (8 * SCALE)) as u32
    }

    /// Attempt to withdraw `bytes` at `now`. On success the tokens are
    /// consumed; on failure the level is untouched (a non-conformant packet
    /// does not steal credit from its successors — RFC 2697 semantics).
    pub fn try_consume(&mut self, now: SimTime, bytes: u32) -> bool {
        self.refill(now);
        let cost = bytes as u128 * 8 * SCALE;
        if cost > self.cap() {
            // A packet larger than the bucket can never conform.
            return false;
        }
        if self.level >= cost {
            self.level -= cost;
            true
        } else {
            false
        }
    }

    /// Earliest time at or after `now` when a `bytes`-byte packet would
    /// conform, or `None` if it can never conform (larger than the bucket).
    /// Used by shapers to schedule releases.
    pub fn conformance_time(&mut self, now: SimTime, bytes: u32) -> Option<SimTime> {
        self.refill(now);
        let cost = bytes as u128 * 8 * SCALE;
        if cost > self.cap() {
            return None;
        }
        if self.level >= cost {
            return Some(now);
        }
        let deficit = cost - self.level;
        let wait_ns = deficit.div_ceil(self.rate_bps as u128);
        Some(now + SimDuration::from_nanos(u64::try_from(wait_ns).unwrap_or(u64::MAX)))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn starts_full() {
        let mut tb = TokenBucket::new(1_000_000, 3000);
        assert_eq!(tb.available_bytes(SimTime::ZERO), 3000);
        assert!(tb.try_consume(SimTime::ZERO, 3000));
        assert!(!tb.try_consume(SimTime::ZERO, 1));
    }

    #[test]
    fn refills_at_rate() {
        let mut tb = TokenBucket::new(8_000_000, 3000); // 1 byte per µs
        assert!(tb.try_consume(SimTime::ZERO, 3000));
        assert_eq!(tb.available_bytes(SimTime::from_micros(1500)), 1500);
        assert!(tb.try_consume(SimTime::from_micros(1500), 1500));
        assert!(!tb.try_consume(SimTime::from_micros(1500), 1));
    }

    #[test]
    fn never_exceeds_depth() {
        let mut tb = TokenBucket::new(1_000_000, 3000);
        assert_eq!(tb.available_bytes(SimTime::from_secs(3600)), 3000);
    }

    #[test]
    fn failed_consume_preserves_tokens() {
        let mut tb = TokenBucket::new(1_000_000, 3000);
        assert!(tb.try_consume(SimTime::ZERO, 2000)); // 1000 left
        assert!(!tb.try_consume(SimTime::ZERO, 1500)); // fails
        assert!(tb.try_consume(SimTime::ZERO, 1000)); // still there
    }

    #[test]
    fn oversized_packet_never_conforms() {
        let mut tb = TokenBucket::new(1_000_000, 1500);
        assert!(!tb.try_consume(SimTime::ZERO, 1501));
        assert_eq!(tb.conformance_time(SimTime::ZERO, 1501), None);
    }

    #[test]
    fn fractional_credit_is_never_lost() {
        // 3 bps: one byte takes 8/3 s. Refill in many tiny steps and verify
        // no credit is lost to rounding.
        let mut tb = TokenBucket::new(3, 100);
        assert!(tb.try_consume(SimTime::ZERO, 100));
        // Refill in 1 ms steps for exactly 8/3 s (2666.667 ms -> use 2667).
        for ms in 1..=2667u64 {
            tb.refill(SimTime::from_millis(ms));
        }
        // After 2.667 s at 3 bps we have 8.001 bits = 1 byte.
        assert!(tb.try_consume(SimTime::from_millis(2667), 1));
        assert!(!tb.try_consume(SimTime::from_millis(2667), 1));
    }

    #[test]
    fn conformance_time_is_exact() {
        let mut tb = TokenBucket::new(8_000_000, 1500); // 1 byte/µs
        assert!(tb.try_consume(SimTime::ZERO, 1500));
        // Need 1500 bytes again: exactly 1500 µs.
        let t = tb.conformance_time(SimTime::ZERO, 1500).unwrap();
        assert_eq!(t, SimTime::from_micros(1500));
        // And consuming at that instant succeeds…
        assert!(tb.try_consume(t, 1500));
        // …with nothing to spare.
        assert!(!tb.try_consume(t, 1));
    }

    #[test]
    fn clock_is_monotone_under_spurious_past_refills() {
        let mut tb = TokenBucket::new(8_000_000, 1500);
        assert!(tb.try_consume(SimTime::from_millis(10), 1500));
        // A refill "in the past" must not mint tokens or move the clock.
        tb.refill(SimTime::from_millis(5));
        assert_eq!(tb.available_bytes(SimTime::from_millis(10)), 0);
    }

    #[test]
    fn long_interval_conformance_bound() {
        // Over any window, accepted bytes <= rate*dt/8 + depth.
        let rate = 1_700_000u64;
        let depth = 3000u32;
        let mut tb = TokenBucket::new(rate, depth);
        let mut accepted: u64 = 0;
        let mut t = SimTime::ZERO;
        let step = SimDuration::from_micros(700);
        for i in 0..10_000u64 {
            t = SimTime::ZERO + step * i;
            if tb.try_consume(t, 1500) {
                accepted += 1500;
            }
        }
        let window = t.saturating_since(SimTime::ZERO).as_secs_f64();
        let bound = rate as f64 * window / 8.0 + depth as f64;
        assert!(
            (accepted as f64) <= bound + 1.0,
            "accepted {accepted} exceeds bound {bound}"
        );
    }
}
