//! Three-color meters (RFC 2697 srTCM, RFC 2698 trTCM).
//!
//! The paper's AF discussion (§2.1) notes that the AF PHB group "primarily
//! calls for policing actions that mark packets with different colors
//! (DSCPs) depending on their level of non-conformance". These meters are
//! the standard mechanisms for that marking and are provided for AF-style
//! policies; the headline experiments use only the EF policer.

use dsv_sim::SimTime;

use crate::token_bucket::TokenBucket;

/// Metering color.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Color {
    /// Conforms to the committed rate/burst.
    Green,
    /// Exceeds committed but within excess/peak allowance.
    Yellow,
    /// Exceeds everything.
    Red,
}

/// Single-rate three-color meter (RFC 2697), color-blind mode.
///
/// Two buckets share the committed rate: C (depth CBS) refills first, and
/// overflow tokens spill into E (depth EBS).
#[derive(Debug, Clone)]
pub struct SrTcm {
    cir_bps: u64,
    /// Wall clock of the last update (tokens spill C→E between updates).
    last: SimTime,
    c_level_bytes: f64,
    e_level_bytes: f64,
    cbs: u32,
    ebs: u32,
}

impl SrTcm {
    /// Build with committed rate (bps), committed burst (bytes) and excess
    /// burst (bytes). Both buckets start full.
    ///
    /// The C/E levels are tracked as `f64` bytes with a shared refill that
    /// spills C's overflow into E, per RFC 2697 §3.1.
    pub fn new(cir_bps: u64, cbs_bytes: u32, ebs_bytes: u32) -> Self {
        assert!(cir_bps > 0 && cbs_bytes > 0);
        SrTcm {
            cir_bps,
            last: SimTime::ZERO,
            c_level_bytes: cbs_bytes as f64,
            e_level_bytes: ebs_bytes as f64,
            cbs: cbs_bytes,
            ebs: ebs_bytes,
        }
    }

    fn update(&mut self, now: SimTime) {
        if let Some(elapsed) = now.checked_since(self.last) {
            let mut add = self.cir_bps as f64 * elapsed.as_secs_f64() / 8.0;
            let c_room = self.cbs as f64 - self.c_level_bytes;
            let to_c = add.min(c_room);
            self.c_level_bytes += to_c;
            add -= to_c;
            self.e_level_bytes = (self.e_level_bytes + add).min(self.ebs as f64);
            self.last = now;
        }
    }

    /// Meter one packet of `bytes` bytes at `now`.
    pub fn meter(&mut self, now: SimTime, bytes: u32) -> Color {
        self.update(now);
        let b = bytes as f64;
        if self.c_level_bytes >= b {
            self.c_level_bytes -= b;
            Color::Green
        } else if self.e_level_bytes >= b {
            self.e_level_bytes -= b;
            Color::Yellow
        } else {
            Color::Red
        }
    }
}

/// Two-rate three-color meter (RFC 2698), color-blind mode.
///
/// Red if the packet exceeds the peak bucket; else yellow if it exceeds the
/// committed bucket; else green (both buckets are debited for green).
#[derive(Debug, Clone)]
pub struct TrTcm {
    p: TokenBucket,
    c: TokenBucket,
}

impl TrTcm {
    /// Build with peak rate/burst and committed rate/burst.
    pub fn new(pir_bps: u64, pbs_bytes: u32, cir_bps: u64, cbs_bytes: u32) -> Self {
        assert!(pir_bps >= cir_bps, "peak rate below committed rate");
        TrTcm {
            p: TokenBucket::new(pir_bps, pbs_bytes),
            c: TokenBucket::new(cir_bps, cbs_bytes),
        }
    }

    /// Meter one packet of `bytes` bytes at `now`.
    pub fn meter(&mut self, now: SimTime, bytes: u32) -> Color {
        // RFC 2698: check peak first.
        if !self.p.try_consume(now, bytes) {
            return Color::Red;
        }
        if self.c.try_consume(now, bytes) {
            Color::Green
        } else {
            Color::Yellow
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn srtcm_burst_coloring() {
        // CIR 1 Mbps, CBS 3000, EBS 3000; both start full.
        let mut m = SrTcm::new(1_000_000, 3000, 3000);
        assert_eq!(m.meter(SimTime::ZERO, 1500), Color::Green);
        assert_eq!(m.meter(SimTime::ZERO, 1500), Color::Green);
        assert_eq!(m.meter(SimTime::ZERO, 1500), Color::Yellow);
        assert_eq!(m.meter(SimTime::ZERO, 1500), Color::Yellow);
        assert_eq!(m.meter(SimTime::ZERO, 1500), Color::Red);
    }

    #[test]
    fn srtcm_refills_committed_first() {
        let mut m = SrTcm::new(8_000_000, 1500, 1500); // 1 byte/µs
                                                       // Drain both buckets.
        assert_eq!(m.meter(SimTime::ZERO, 1500), Color::Green);
        assert_eq!(m.meter(SimTime::ZERO, 1500), Color::Yellow);
        assert_eq!(m.meter(SimTime::ZERO, 100), Color::Red);
        // After 1500 µs, C is full again; E still empty.
        assert_eq!(m.meter(SimTime::from_micros(1500), 1500), Color::Green);
        assert_eq!(m.meter(SimTime::from_micros(1500), 100), Color::Red);
        // After C refills, surplus spills into E.
        assert_eq!(m.meter(SimTime::from_micros(4500), 1500), Color::Green);
        assert_eq!(m.meter(SimTime::from_micros(4500), 1400), Color::Yellow);
    }

    #[test]
    fn srtcm_zero_ebs_never_yellow() {
        let mut m = SrTcm::new(1_000_000, 3000, 0);
        assert_eq!(m.meter(SimTime::ZERO, 3000), Color::Green);
        assert_eq!(m.meter(SimTime::ZERO, 1), Color::Red);
    }

    #[test]
    fn trtcm_distinguishes_rates() {
        // PIR 2 Mbps / PBS 3000, CIR 1 Mbps / CBS 1500.
        let mut m = TrTcm::new(2_000_000, 3000, 1_000_000, 1500);
        assert_eq!(m.meter(SimTime::ZERO, 1500), Color::Green);
        assert_eq!(m.meter(SimTime::ZERO, 1500), Color::Yellow); // C empty, P ok
        assert_eq!(m.meter(SimTime::ZERO, 1500), Color::Red); // P empty
                                                              // After 6 ms: P gained 1500 B, C gained 750 B.
        assert_eq!(m.meter(SimTime::from_millis(6), 1500), Color::Yellow);
    }

    #[test]
    #[should_panic(expected = "peak rate below committed")]
    fn trtcm_validates_rates() {
        TrTcm::new(1_000_000, 3000, 2_000_000, 3000);
    }
}
