//! Per-router policy tables — the glue that turns the conditioning blocks
//! into a [`Conditioner`] the network invokes at router ingress.
//!
//! "A policy specifies a 'profile' that identifies the packet to which the
//! policy applies, and an action that determines the treatment that these
//! packets are to receive" (paper §3.2.1.2). A [`PolicyTable`] is an
//! ordered list of `(profile, action)` pairs; the first matching rule wins
//! and unmatched packets pass untouched.

use dsv_net::conditioner::{ConditionOutcome, Conditioner, QuickVerdict, Released};
use dsv_net::packet::{DropReason, Dscp, Packet};
use dsv_sim::SimTime;

use crate::classifier::MatchRule;
use crate::meter::{Color, SrTcm, TrTcm};
use crate::policer::{Policer, PolicerVerdict};
use crate::shaper::{Shaper, ShaperResult};

/// The treatment applied to packets matching a profile.
pub enum PolicyAction<P> {
    /// Meter against a token bucket; conformant packets are forwarded
    /// (optionally re-marked), non-conformant handled per the policer.
    Police(Policer),
    /// Delay non-conformant packets until conformant.
    Shape(Shaper<P>),
    /// Unconditionally set the DSCP.
    Mark(Dscp),
    /// AF-style conditioning: meter with an srTCM and mark the packet with
    /// the class's green/yellow/red drop precedence (RFC 2597). Never
    /// drops — shedding happens in the core's WRED queues.
    MeterAf {
        /// The single-rate three-color meter.
        meter: SrTcm,
        /// AF class 1..=4.
        class: u8,
    },
    /// AF conditioning with a two-rate meter (RFC 2698): green below the
    /// committed rate, yellow between committed and peak, red above peak.
    /// Like [`PolicyAction::MeterAf`] it only marks; WRED sheds.
    MeterTrtcm {
        /// The two-rate three-color meter.
        meter: TrTcm,
        /// AF class 1..=4.
        class: u8,
    },
    /// Explicitly pass untouched (useful to exempt a sub-profile ahead of a
    /// broader rule).
    Pass,
}

struct PolicyRule<P> {
    profile: MatchRule,
    action: PolicyAction<P>,
}

/// An ordered, first-match policy table implementing
/// [`dsv_net::conditioner::Conditioner`].
pub struct PolicyTable<P> {
    rules: Vec<PolicyRule<P>>,
}

impl<P> PolicyTable<P> {
    /// Empty table (passes everything).
    pub fn new() -> Self {
        PolicyTable { rules: Vec::new() }
    }

    /// Append a rule; earlier rules take precedence.
    pub fn push(&mut self, profile: MatchRule, action: PolicyAction<P>) -> &mut Self {
        self.rules.push(PolicyRule { profile, action });
        self
    }

    /// Builder-style rule addition.
    pub fn with(mut self, profile: MatchRule, action: PolicyAction<P>) -> Self {
        self.push(profile, action);
        self
    }

    /// Total conformant/non-conformant counts across all policers
    /// (diagnostics for experiment reports).
    pub fn policer_counts(&self) -> (u64, u64) {
        let mut ok = 0;
        let mut bad = 0;
        for r in &self.rules {
            if let PolicyAction::Police(p) = &r.action {
                ok += p.conformant;
                bad += p.non_conformant;
            }
        }
        (ok, bad)
    }
}

impl<P> Default for PolicyTable<P> {
    fn default() -> Self {
        Self::new()
    }
}

impl<P> Conditioner<P> for PolicyTable<P> {
    fn submit(&mut self, now: SimTime, pkt: Packet<P>) -> ConditionOutcome<P> {
        for rule in &mut self.rules {
            if !rule.profile.matches(&pkt) {
                continue;
            }
            return match &mut rule.action {
                PolicyAction::Pass => ConditionOutcome::Pass(pkt),
                PolicyAction::Mark(d) => {
                    let mut pkt = pkt;
                    pkt.dscp = *d;
                    ConditionOutcome::Pass(pkt)
                }
                PolicyAction::MeterAf { meter, class } => {
                    let mut pkt = pkt;
                    let precedence = match meter.meter(now, pkt.size) {
                        Color::Green => 1,
                        Color::Yellow => 2,
                        Color::Red => 3,
                    };
                    pkt.dscp = Dscp::af(*class, precedence);
                    ConditionOutcome::Pass(pkt)
                }
                PolicyAction::MeterTrtcm { meter, class } => {
                    let mut pkt = pkt;
                    let precedence = match meter.meter(now, pkt.size) {
                        Color::Green => 1,
                        Color::Yellow => 2,
                        Color::Red => 3,
                    };
                    pkt.dscp = Dscp::af(*class, precedence);
                    ConditionOutcome::Pass(pkt)
                }
                PolicyAction::Police(p) => match p.police(now, pkt) {
                    PolicerVerdict::Pass(pkt) => ConditionOutcome::Pass(pkt),
                    PolicerVerdict::Drop(pkt) => {
                        ConditionOutcome::Drop(pkt, DropReason::PolicerNonConformant)
                    }
                },
                PolicyAction::Shape(s) => match s.offer(now, pkt) {
                    ShaperResult::PassNow(pkt) => ConditionOutcome::Pass(pkt),
                    ShaperResult::Queued { next_release } => ConditionOutcome::Absorbed {
                        poll_at: next_release,
                    },
                    ShaperResult::Overflow(pkt) => {
                        ConditionOutcome::Drop(pkt, DropReason::ShaperOverflow)
                    }
                },
            };
        }
        ConditionOutcome::Pass(pkt)
    }

    /// In-place mirror of [`PolicyTable::submit`]: everything except
    /// shaping (which absorbs the packet) is decided against a borrow, so
    /// the network's pass-through fast path applies to policed, marked and
    /// metered traffic alike.
    fn quick(&mut self, now: SimTime, pkt: &mut Packet<P>) -> QuickVerdict {
        for rule in &mut self.rules {
            if !rule.profile.matches(pkt) {
                continue;
            }
            return match &mut rule.action {
                PolicyAction::Pass => QuickVerdict::Pass,
                PolicyAction::Mark(d) => {
                    pkt.dscp = *d;
                    QuickVerdict::Pass
                }
                PolicyAction::MeterAf { meter, class } => {
                    let precedence = match meter.meter(now, pkt.size) {
                        Color::Green => 1,
                        Color::Yellow => 2,
                        Color::Red => 3,
                    };
                    pkt.dscp = Dscp::af(*class, precedence);
                    QuickVerdict::Pass
                }
                PolicyAction::MeterTrtcm { meter, class } => {
                    let precedence = match meter.meter(now, pkt.size) {
                        Color::Green => 1,
                        Color::Yellow => 2,
                        Color::Red => 3,
                    };
                    pkt.dscp = Dscp::af(*class, precedence);
                    QuickVerdict::Pass
                }
                PolicyAction::Police(p) => {
                    if p.police_in_place(now, pkt) {
                        QuickVerdict::Pass
                    } else {
                        QuickVerdict::Drop(DropReason::PolicerNonConformant)
                    }
                }
                PolicyAction::Shape(_) => QuickVerdict::NeedsSubmit,
            };
        }
        QuickVerdict::Pass
    }

    fn release(&mut self, now: SimTime) -> Released<P> {
        let mut packets = Vec::new();
        let mut next_poll: Option<SimTime> = None;
        for rule in &mut self.rules {
            if let PolicyAction::Shape(s) = &mut rule.action {
                let (ready, next) = s.pop_ready(now);
                packets.extend(ready);
                next_poll = match (next_poll, next) {
                    (Some(a), Some(b)) => Some(a.min(b)),
                    (a, b) => a.or(b),
                };
            }
        }
        Released { packets, next_poll }
    }

    fn held(&self) -> usize {
        self.rules
            .iter()
            .map(|rule| match &rule.action {
                PolicyAction::Shape(s) => s.queue_len(),
                _ => 0,
            })
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dsv_net::packet::{FlowId, NodeId, PacketId, Proto};

    fn pkt(id: u64, src: u32, size: u32) -> Packet<()> {
        Packet {
            id: PacketId(id),
            flow: FlowId(1),
            src: NodeId(src),
            dst: NodeId(9),
            size,
            dscp: Dscp::BEST_EFFORT,
            proto: Proto::Udp,
            fragment: None,
            sent_at: SimTime::ZERO,
            payload: (),
        }
    }

    #[test]
    fn unmatched_packets_pass() {
        let mut t: PolicyTable<()> = PolicyTable::new().with(
            MatchRule {
                src: Some(NodeId(1)),
                ..MatchRule::ANY
            },
            PolicyAction::Police(Policer::ef_drop(1_000_000, 1500)),
        );
        // src 2 doesn't match: passes even though the policer would drop it.
        match t.submit(SimTime::ZERO, pkt(1, 2, 99_999)) {
            ConditionOutcome::Pass(p) => assert_eq!(p.dscp, Dscp::BEST_EFFORT),
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn first_match_wins() {
        let mut t: PolicyTable<()> = PolicyTable::new()
            .with(
                MatchRule {
                    src: Some(NodeId(1)),
                    ..MatchRule::ANY
                },
                PolicyAction::Mark(Dscp::EF),
            )
            .with(MatchRule::ANY, PolicyAction::Mark(Dscp::cs(1)));
        match t.submit(SimTime::ZERO, pkt(1, 1, 100)) {
            ConditionOutcome::Pass(p) => assert_eq!(p.dscp, Dscp::EF),
            other => panic!("{other:?}"),
        }
        match t.submit(SimTime::ZERO, pkt(2, 5, 100)) {
            ConditionOutcome::Pass(p) => assert_eq!(p.dscp, Dscp::cs(1)),
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn police_action_drops_and_counts() {
        let mut t: PolicyTable<()> = PolicyTable::new().with(
            MatchRule::ANY,
            PolicyAction::Police(Policer::ef_drop(1_000_000, 3000)),
        );
        assert!(matches!(
            t.submit(SimTime::ZERO, pkt(1, 1, 1500)),
            ConditionOutcome::Pass(_)
        ));
        assert!(matches!(
            t.submit(SimTime::ZERO, pkt(2, 1, 1500)),
            ConditionOutcome::Pass(_)
        ));
        match t.submit(SimTime::ZERO, pkt(3, 1, 1500)) {
            ConditionOutcome::Drop(_, DropReason::PolicerNonConformant) => {}
            other => panic!("{other:?}"),
        }
        assert_eq!(t.policer_counts(), (2, 1));
    }

    #[test]
    fn shape_action_absorbs_and_releases() {
        let mut t: PolicyTable<()> = PolicyTable::new().with(
            MatchRule::ANY,
            PolicyAction::Shape(Shaper::new(8_000_000, 1500, 100_000)),
        );
        assert!(matches!(
            t.submit(SimTime::ZERO, pkt(1, 1, 1500)),
            ConditionOutcome::Pass(_)
        ));
        let poll_at = match t.submit(SimTime::ZERO, pkt(2, 1, 1500)) {
            ConditionOutcome::Absorbed { poll_at } => poll_at,
            other => panic!("{other:?}"),
        };
        assert_eq!(poll_at, SimTime::from_micros(1500));
        let rel = t.release(poll_at);
        assert_eq!(rel.packets.len(), 1);
        assert_eq!(rel.packets[0].id, PacketId(2));
        assert!(rel.next_poll.is_none());
    }

    #[test]
    fn meter_af_colors_by_conformance() {
        use crate::meter::SrTcm;
        let mut t: PolicyTable<()> = PolicyTable::new().with(
            MatchRule::ANY,
            PolicyAction::MeterAf {
                meter: SrTcm::new(1_000_000, 1500, 1500),
                class: 2,
            },
        );
        let color_of =
            |t: &mut PolicyTable<()>, id: u64| match t.submit(SimTime::ZERO, pkt(id, 1, 1500)) {
                ConditionOutcome::Pass(p) => p.dscp,
                other => panic!("{other:?}"),
            };
        assert_eq!(color_of(&mut t, 1), Dscp::af(2, 1)); // green
        assert_eq!(color_of(&mut t, 2), Dscp::af(2, 2)); // yellow
        assert_eq!(color_of(&mut t, 3), Dscp::af(2, 3)); // red: never drop
    }

    #[test]
    fn meter_trtcm_colors_by_two_rates() {
        use crate::meter::TrTcm;
        // Peak bucket holds 2 packets, committed bucket 1: the first packet
        // is green, the second only passes the peak test (yellow), and the
        // third exceeds both rates (red).
        let mut t: PolicyTable<()> = PolicyTable::new().with(
            MatchRule::ANY,
            PolicyAction::MeterTrtcm {
                meter: TrTcm::new(2_000_000, 3000, 1_000_000, 1500),
                class: 3,
            },
        );
        let color_of =
            |t: &mut PolicyTable<()>, id: u64| match t.submit(SimTime::ZERO, pkt(id, 1, 1500)) {
                ConditionOutcome::Pass(p) => p.dscp,
                other => panic!("{other:?}"),
            };
        assert_eq!(color_of(&mut t, 1), Dscp::af(3, 1)); // green
        assert_eq!(color_of(&mut t, 2), Dscp::af(3, 2)); // yellow
        assert_eq!(color_of(&mut t, 3), Dscp::af(3, 3)); // red: never drop
    }

    #[test]
    fn empty_table_passes() {
        let mut t: PolicyTable<()> = PolicyTable::new();
        assert!(matches!(
            t.submit(SimTime::ZERO, pkt(1, 1, 100)),
            ConditionOutcome::Pass(_)
        ));
        assert!(t.release(SimTime::ZERO).packets.is_empty());
    }
}
