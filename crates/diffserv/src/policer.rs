//! Policing: the "hard" conditioning action.
//!
//! An EF policer meters each packet against a token bucket; conformant
//! packets are (re)marked with the EF code point and forwarded, and
//! non-conformant packets are **dropped** — the configuration used at
//! router 1 of the local testbed and (as Cisco CAR) at the QBone ingress.
//! A remark ("color down") action is also provided for AF-style policies.

use dsv_net::packet::{Dscp, Packet};
use dsv_sim::SimTime;

use crate::token_bucket::TokenBucket;

/// What to do with a non-conformant packet.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ExceedAction {
    /// Discard it (EF-style hard policing).
    Drop,
    /// Re-mark it with a lower-grade code point and forward (AF-style).
    Remark(Dscp),
}

/// Verdict returned by [`Policer::police`].
#[derive(Debug)]
pub enum PolicerVerdict<P> {
    /// Forward the (possibly re-marked) packet.
    Pass(Packet<P>),
    /// Discard the packet.
    Drop(Packet<P>),
}

/// A token-bucket policer.
#[derive(Debug, Clone)]
pub struct Policer {
    bucket: TokenBucket,
    /// Marking applied to conformant packets (e.g. EF), or `None` to leave
    /// the packet's existing marking alone.
    pub conform_mark: Option<Dscp>,
    /// Treatment of non-conformant packets.
    pub exceed: ExceedAction,
    /// Count of conformant packets.
    pub conformant: u64,
    /// Count of non-conformant packets.
    pub non_conformant: u64,
}

impl Policer {
    /// Build a policer.
    pub fn new(bucket: TokenBucket, conform_mark: Option<Dscp>, exceed: ExceedAction) -> Self {
        Policer {
            bucket,
            conform_mark,
            exceed,
            conformant: 0,
            non_conformant: 0,
        }
    }

    /// The paper's local-testbed router-1 policer: mark conformant packets
    /// EF, drop the rest.
    pub fn ef_drop(rate_bps: u64, depth_bytes: u32) -> Self {
        Policer::new(
            TokenBucket::new(rate_bps, depth_bytes),
            Some(Dscp::EF),
            ExceedAction::Drop,
        )
    }

    /// Cisco Committed Access Rate as configured at the QBone ingress:
    /// packets arrive pre-marked EF from the server; CAR drops packets that
    /// exceed the Abilene Premium Service profile and passes the rest
    /// unmodified.
    pub fn car_drop(rate_bps: u64, depth_bytes: u32) -> Self {
        Policer::new(
            TokenBucket::new(rate_bps, depth_bytes),
            None,
            ExceedAction::Drop,
        )
    }

    /// Apply the policer to one packet.
    pub fn police<P>(&mut self, now: SimTime, mut pkt: Packet<P>) -> PolicerVerdict<P> {
        if self.police_in_place(now, &mut pkt) {
            PolicerVerdict::Pass(pkt)
        } else {
            PolicerVerdict::Drop(pkt)
        }
    }

    /// Apply the policer to a borrowed packet, re-marking it in place.
    /// Returns `true` to forward, `false` to drop.
    pub fn police_in_place<P>(&mut self, now: SimTime, pkt: &mut Packet<P>) -> bool {
        // Audit oracle: `conformance_time` is the analytic twin of
        // `try_consume` — a packet is conformant right now iff its
        // conformance time is `now`. Cross-check the two on every policed
        // packet so the incremental integer bucket can never drift from
        // the closed-form answer. (`conformance_time` only refills, which
        // is idempotent at a fixed `now`, so asking first is side-effect
        // free with respect to the consume below.)
        #[cfg(feature = "audit")]
        let predicted = if dsv_sim::audit::runtime_enabled() {
            Some(self.bucket.conformance_time(now, pkt.size) == Some(now))
        } else {
            None
        };
        let conformant = self.bucket.try_consume(now, pkt.size);
        #[cfg(feature = "audit")]
        if let Some(predicted) = predicted {
            assert_eq!(
                conformant, predicted,
                "audit: token-bucket conformance_time and try_consume disagree \
                 for a {}-byte packet at {now:?}",
                pkt.size
            );
        }
        if conformant {
            self.conformant += 1;
            if let Some(mark) = self.conform_mark {
                pkt.dscp = mark;
            }
            true
        } else {
            self.non_conformant += 1;
            match self.exceed {
                ExceedAction::Drop => false,
                ExceedAction::Remark(d) => {
                    pkt.dscp = d;
                    true
                }
            }
        }
    }

    /// Access to the underlying bucket (diagnostics/tests).
    pub fn bucket_mut(&mut self) -> &mut TokenBucket {
        &mut self.bucket
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dsv_net::packet::{FlowId, NodeId, PacketId, Proto};

    fn pkt(id: u64, size: u32) -> Packet<()> {
        Packet {
            id: PacketId(id),
            flow: FlowId(1),
            src: NodeId(0),
            dst: NodeId(1),
            size,
            dscp: Dscp::BEST_EFFORT,
            proto: Proto::Udp,
            fragment: None,
            sent_at: SimTime::ZERO,
            payload: (),
        }
    }

    #[test]
    fn ef_drop_marks_conformant_and_drops_excess() {
        // Depth 3000 = two MTUs; bucket starts full.
        let mut p = Policer::ef_drop(1_000_000, 3000);
        match p.police(SimTime::ZERO, pkt(1, 1500)) {
            PolicerVerdict::Pass(out) => assert_eq!(out.dscp, Dscp::EF),
            _ => panic!("expected pass"),
        }
        assert!(matches!(
            p.police(SimTime::ZERO, pkt(2, 1500)),
            PolicerVerdict::Pass(_)
        ));
        // Third back-to-back MTU: bucket empty -> dropped.
        assert!(matches!(
            p.police(SimTime::ZERO, pkt(3, 1500)),
            PolicerVerdict::Drop(_)
        ));
        assert_eq!(p.conformant, 2);
        assert_eq!(p.non_conformant, 1);
    }

    #[test]
    fn car_leaves_marking_alone() {
        let mut p = Policer::car_drop(1_000_000, 3000);
        let mut input = pkt(1, 1000);
        input.dscp = Dscp::EF_QBONE; // pre-marked by the server
        match p.police(SimTime::ZERO, input) {
            PolicerVerdict::Pass(out) => assert_eq!(out.dscp, Dscp::EF_QBONE),
            _ => panic!("expected pass"),
        }
    }

    #[test]
    fn remark_action_colors_down() {
        let mut p = Policer::new(
            TokenBucket::new(1_000_000, 1500),
            Some(Dscp::af(1, 1)),
            ExceedAction::Remark(Dscp::af(1, 3)),
        );
        match p.police(SimTime::ZERO, pkt(1, 1500)) {
            PolicerVerdict::Pass(out) => assert_eq!(out.dscp, Dscp::af(1, 1)),
            _ => panic!(),
        }
        match p.police(SimTime::ZERO, pkt(2, 1500)) {
            PolicerVerdict::Pass(out) => assert_eq!(out.dscp, Dscp::af(1, 3)),
            _ => panic!("remark policers never drop"),
        }
    }

    #[test]
    fn conformance_returns_with_time() {
        let mut p = Policer::ef_drop(8_000_000, 1500); // refills 1 byte/µs
        assert!(matches!(
            p.police(SimTime::ZERO, pkt(1, 1500)),
            PolicerVerdict::Pass(_)
        ));
        assert!(matches!(
            p.police(SimTime::from_micros(100), pkt(2, 1500)),
            PolicerVerdict::Drop(_)
        ));
        // 1500 µs after the first packet the bucket is full again.
        assert!(matches!(
            p.police(SimTime::from_micros(1500), pkt(3, 1500)),
            PolicerVerdict::Pass(_)
        ));
    }
}
