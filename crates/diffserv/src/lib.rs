//! # dsv-diffserv — Differentiated Services traffic conditioning
//!
//! The conditioning blocks of the Diff-Serv architecture (RFC 2475) as used
//! by the paper's testbeds:
//!
//! * [`token_bucket::TokenBucket`] — exact, byte-accurate metering; the
//!   (token rate, bucket depth) pair is the independent variable of every
//!   experiment in the paper;
//! * [`policer::Policer`] — EF "hard" policing (drop non-conformant), with
//!   a Cisco-CAR-style constructor for the QBone ingress configuration;
//! * [`shaper::Shaper`] — delay non-conformant packets until conformant
//!   (the paper's upstream Linux shaping router);
//! * [`meter`] — RFC 2697/2698 three-color meters for AF-style policies;
//! * [`classifier::MatchRule`] — multi-field profiles;
//! * [`policy::PolicyTable`] — ordered profile→action tables implementing
//!   [`dsv_net::conditioner::Conditioner`], attachable to any router.
//!
//! ## Example: the paper's router-1 policy
//!
//! ```
//! use dsv_diffserv::prelude::*;
//! use dsv_net::packet::NodeId;
//!
//! // Police server->client traffic to 1.7 Mbps with a two-MTU bucket,
//! // marking conformant packets EF and dropping the rest.
//! let table: PolicyTable<()> = PolicyTable::new().with(
//!     MatchRule::src_dst(NodeId(0), NodeId(4)),
//!     PolicyAction::Police(Policer::ef_drop(1_700_000, 3000)),
//! );
//! # let _ = table;
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod classifier;
pub mod meter;
pub mod policer;
pub mod policy;
pub mod shaper;
pub mod token_bucket;

/// Convenient re-exports.
pub mod prelude {
    pub use crate::classifier::MatchRule;
    pub use crate::meter::{Color, SrTcm, TrTcm};
    pub use crate::policer::{ExceedAction, Policer, PolicerVerdict};
    pub use crate::policy::{PolicyAction, PolicyTable};
    pub use crate::shaper::{Shaper, ShaperResult};
    pub use crate::token_bucket::TokenBucket;
}
