//! Shaping: the "soft" conditioning action.
//!
//! "A shaper is a token bucket, which instead of simply dropping (policing)
//! non-conformant packets, is configured to delay them until the earliest
//! time at which they are deemed conformant" (paper, footnote 5). The
//! paper's Linux router performed exactly this role upstream of the
//! policing router in some local-testbed experiments, smoothing the bursty
//! WMT server output.
//!
//! The shaper preserves order: a newly arriving packet never overtakes
//! queued ones, even if tokens are momentarily available. Its delay queue is
//! bounded; overflow becomes a drop (a shaper in front of a sustained
//! over-rate source must shed load somewhere).

use std::collections::VecDeque;

use dsv_net::packet::Packet;
use dsv_sim::SimTime;

use crate::token_bucket::TokenBucket;

/// Result of offering a packet to a shaper.
#[derive(Debug)]
pub enum ShaperResult<P> {
    /// The packet was conformant and passes through immediately.
    PassNow(Packet<P>),
    /// The packet was queued; poll [`Shaper::pop_ready`] at the given time.
    Queued {
        /// Earliest time the head of the queue becomes conformant.
        next_release: SimTime,
    },
    /// The delay queue was full; the packet is returned for drop accounting.
    Overflow(Packet<P>),
}

/// A token-bucket shaper with a bounded FIFO delay queue.
#[derive(Debug)]
pub struct Shaper<P> {
    bucket: TokenBucket,
    queue: VecDeque<Packet<P>>,
    queued_bytes: u64,
    max_queue_bytes: u64,
    /// Cumulative packets delayed (passed through the queue).
    pub delayed: u64,
    /// Cumulative packets dropped on overflow.
    pub overflows: u64,
}

impl<P> Shaper<P> {
    /// Build a shaper with the given bucket and delay-queue capacity.
    pub fn new(rate_bps: u64, depth_bytes: u32, max_queue_bytes: u64) -> Self {
        Shaper {
            bucket: TokenBucket::new(rate_bps, depth_bytes),
            queue: VecDeque::new(),
            queued_bytes: 0,
            max_queue_bytes,
            delayed: 0,
            overflows: 0,
        }
    }

    /// Offer a packet at `now`.
    pub fn offer(&mut self, now: SimTime, pkt: Packet<P>) -> ShaperResult<P> {
        if self.queue.is_empty() && self.bucket.try_consume(now, pkt.size) {
            return ShaperResult::PassNow(pkt);
        }
        if self.queued_bytes + pkt.size as u64 > self.max_queue_bytes {
            self.overflows += 1;
            return ShaperResult::Overflow(pkt);
        }
        self.queued_bytes += pkt.size as u64;
        self.queue.push_back(pkt);
        self.delayed += 1;
        let head = self.queue.front().expect("just pushed");
        let next_release = self
            .bucket
            .conformance_time(now, head.size)
            .expect("packet size exceeds bucket depth: shaper cannot ever release it");
        ShaperResult::Queued { next_release }
    }

    /// Pop every queued packet that is conformant at `now`, in order, and
    /// report when to poll next (if packets remain).
    pub fn pop_ready(&mut self, now: SimTime) -> (Vec<Packet<P>>, Option<SimTime>) {
        let mut out = Vec::new();
        while let Some(head) = self.queue.front() {
            if self.bucket.try_consume(now, head.size) {
                let pkt = self.queue.pop_front().expect("front exists");
                self.queued_bytes -= pkt.size as u64;
                out.push(pkt);
            } else {
                let next = self
                    .bucket
                    .conformance_time(now, head.size)
                    .expect("queued packet must eventually conform");
                return (out, Some(next));
            }
        }
        (out, None)
    }

    /// Packets currently held.
    pub fn queue_len(&self) -> usize {
        self.queue.len()
    }

    /// Bytes currently held.
    pub fn queue_bytes(&self) -> u64 {
        self.queued_bytes
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dsv_net::packet::{Dscp, FlowId, NodeId, PacketId, Proto};

    fn pkt(id: u64, size: u32) -> Packet<()> {
        Packet {
            id: PacketId(id),
            flow: FlowId(1),
            src: NodeId(0),
            dst: NodeId(1),
            size,
            dscp: Dscp::BEST_EFFORT,
            proto: Proto::Udp,
            fragment: None,
            sent_at: SimTime::ZERO,
            payload: (),
        }
    }

    #[test]
    fn conformant_passes_immediately() {
        let mut s: Shaper<()> = Shaper::new(1_000_000, 3000, 100_000);
        assert!(matches!(
            s.offer(SimTime::ZERO, pkt(1, 1500)),
            ShaperResult::PassNow(_)
        ));
    }

    #[test]
    fn non_conformant_is_delayed_not_dropped() {
        // 8 Mbps = 1 byte/µs, depth 1500.
        let mut s: Shaper<()> = Shaper::new(8_000_000, 1500, 100_000);
        assert!(matches!(
            s.offer(SimTime::ZERO, pkt(1, 1500)),
            ShaperResult::PassNow(_)
        ));
        let next = match s.offer(SimTime::ZERO, pkt(2, 1500)) {
            ShaperResult::Queued { next_release } => next_release,
            other => panic!("expected queued, got {other:?}"),
        };
        assert_eq!(next, SimTime::from_micros(1500));
        // Too early: nothing released, poll time unchanged.
        let (early, again) = s.pop_ready(SimTime::from_micros(100));
        assert!(early.is_empty());
        assert_eq!(again, Some(next));
        // At the release time the packet emerges.
        let (ready, more) = s.pop_ready(next);
        assert_eq!(ready.len(), 1);
        assert_eq!(ready[0].id, PacketId(2));
        assert_eq!(more, None);
    }

    #[test]
    fn order_is_preserved_across_queue() {
        let mut s: Shaper<()> = Shaper::new(8_000_000, 1500, 100_000);
        assert!(matches!(
            s.offer(SimTime::ZERO, pkt(1, 1500)),
            ShaperResult::PassNow(_)
        ));
        // Queue two small packets.
        assert!(matches!(
            s.offer(SimTime::ZERO, pkt(2, 700)),
            ShaperResult::Queued { .. }
        ));
        assert!(matches!(
            s.offer(SimTime::ZERO, pkt(3, 100)),
            ShaperResult::Queued { .. }
        ));
        // Even though packet 3 alone would conform sooner, 2 goes first.
        let (ready, _) = s.pop_ready(SimTime::from_micros(800));
        assert_eq!(ready.iter().map(|p| p.id.0).collect::<Vec<_>>(), vec![2, 3]);
    }

    #[test]
    fn later_arrival_does_not_overtake_queue() {
        let mut s: Shaper<()> = Shaper::new(8_000_000, 1500, 100_000);
        assert!(matches!(
            s.offer(SimTime::ZERO, pkt(1, 1500)),
            ShaperResult::PassNow(_)
        ));
        assert!(matches!(
            s.offer(SimTime::ZERO, pkt(2, 1500)),
            ShaperResult::Queued { .. }
        ));
        // Much later, tokens abound — but packet 3 must still queue behind 2.
        match s.offer(SimTime::from_micros(1400), pkt(3, 100)) {
            ShaperResult::Queued { .. } => {}
            other => panic!("expected queued, got {other:?}"),
        }
        // At t=3000 the (capped) bucket covers only packet 2…
        let (ready, next) = s.pop_ready(SimTime::from_micros(3000));
        assert_eq!(ready.iter().map(|p| p.id.0).collect::<Vec<_>>(), vec![2]);
        // …and packet 3 (100 B) needs another 100 µs of credit.
        assert_eq!(next, Some(SimTime::from_micros(3100)));
        let (ready, none) = s.pop_ready(SimTime::from_micros(3100));
        assert_eq!(ready.iter().map(|p| p.id.0).collect::<Vec<_>>(), vec![3]);
        assert_eq!(none, None);
    }

    #[test]
    fn overflow_drops() {
        let mut s: Shaper<()> = Shaper::new(8_000_000, 1500, 2000);
        assert!(matches!(
            s.offer(SimTime::ZERO, pkt(1, 1500)),
            ShaperResult::PassNow(_)
        ));
        assert!(matches!(
            s.offer(SimTime::ZERO, pkt(2, 1500)),
            ShaperResult::Queued { .. }
        ));
        // Queue holds 1500 bytes; another 1500 exceeds the 2000-byte cap.
        assert!(matches!(
            s.offer(SimTime::ZERO, pkt(3, 1500)),
            ShaperResult::Overflow(_)
        ));
        assert_eq!(s.overflows, 1);
        assert_eq!(s.queue_len(), 1);
        assert_eq!(s.queue_bytes(), 1500);
    }

    #[test]
    fn output_is_conformant() {
        // Shape a big burst and verify the output never violates the bucket.
        let mut s: Shaper<()> = Shaper::new(1_000_000, 3000, 1_000_000);
        let mut releases: Vec<(SimTime, u32)> = Vec::new();
        let mut next_poll = None;
        for i in 0..50 {
            match s.offer(SimTime::ZERO, pkt(i, 1500)) {
                ShaperResult::PassNow(p) => releases.push((SimTime::ZERO, p.size)),
                ShaperResult::Queued { next_release } => next_poll = Some(next_release),
                ShaperResult::Overflow(_) => panic!("queue sized for the burst"),
            }
        }
        while let Some(t) = next_poll {
            let (ready, more) = s.pop_ready(t);
            for p in ready {
                releases.push((t, p.size));
            }
            next_poll = more;
        }
        assert_eq!(releases.len(), 50);
        // Check conformance of the release schedule: cumulative bytes by
        // time t never exceed depth + rate*t/8.
        for (t, _) in &releases {
            let cum: u64 = releases
                .iter()
                .filter(|(rt, _)| rt <= t)
                .map(|(_, sz)| *sz as u64)
                .sum();
            let bound = 3000.0 + 1_000_000.0 * t.as_secs_f64() / 8.0;
            assert!(cum as f64 <= bound + 1.0, "at {t}: {cum} > {bound}");
        }
    }
}
