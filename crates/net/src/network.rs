//! The network world: topology, routing, forwarding, and the event loop
//! glue.
//!
//! A [`Network`] owns hosts (with [`Application`]s), routers (with optional
//! ingress [`Conditioner`]s), ports (with [`Qdisc`]s and [`Link`]s), and a
//! [`NetStats`] collector. It implements [`dsv_sim::World`] over
//! [`NetEvent`]; the [`Simulation`] wrapper bundles it with an event queue
//! and start-up scheduling.
//!
//! Forwarding is store-and-forward: a packet is fully received at a node
//! (serialization + propagation of the upstream link) before it is
//! conditioned, routed, queued and re-serialized. Routing tables are
//! computed once at build time by breadth-first search, so any connected
//! topology works without manual route entry.
//!
//! Every handler is generic over a [`NetSink`] — the serial engine passes
//! the plain [`EventQueue`], while the sharded engine (see [`crate::shard`])
//! passes a per-domain sink that stamps events and routes cross-domain
//! arrivals through boundary batches. The handlers themselves cannot tell
//! the difference, which is what makes the two engines produce the same
//! event sequence.

use std::collections::VecDeque;

use dsv_sim::{EventQueue, SimDuration, SimTime, World};

use crate::app::{AppCommand, AppCtx, Application};
#[cfg(feature = "audit")]
use crate::audit::SimAudit;
use crate::conditioner::{ConditionOutcome, Conditioner, QuickVerdict};
use crate::link::Link;
use crate::packet::{DropReason, FlowId, NodeId, Packet, PacketId, PortId};
use crate::pool::{PacketPool, PacketRef};
use crate::qdisc::{DropTailQueue, Qdisc, QueueLimits};
use crate::stats::NetStats;

/// Events the network world handles.
///
/// Deliberately small (16 bytes) and payload-free: in-flight packets live
/// in the network's [`PacketPool`] and events carry only a [`PacketRef`],
/// so queue entries stay compact and forwarding allocates nothing.
#[derive(Debug)]
pub enum NetEvent {
    /// Deliver the start callback to a host's application.
    Start(NodeId),
    /// Fire an application timer.
    Timer {
        /// Host whose application set the timer.
        node: NodeId,
        /// Opaque token from [`crate::app::AppCtx::set_timer`].
        token: u64,
    },
    /// A packet has fully arrived at `node`.
    Arrive {
        /// Receiving node.
        node: NodeId,
        /// Handle to the packet, parked in the network's pool while on
        /// the wire.
        packet: PacketRef,
    },
    /// An output port finished serializing its current packet.
    PortReady {
        /// Node owning the port.
        node: NodeId,
        /// The port.
        port: PortId,
    },
    /// Poll `node`'s conditioner for shaped packets that became conformant.
    CondPoll(NodeId),
}

impl NetEvent {
    /// The node an event is addressed to — the event's *location*, which
    /// the sharded engine uses both to assign events to domains and to
    /// stamp the events a dispatch schedules.
    pub fn node(&self) -> NodeId {
        match *self {
            NetEvent::Start(node) | NetEvent::CondPoll(node) => node,
            NetEvent::Timer { node, .. }
            | NetEvent::Arrive { node, .. }
            | NetEvent::PortReady { node, .. } => node,
        }
    }
}

/// Where the network handlers put the events (and boundary packets) they
/// produce.
///
/// The serial engine's sink is the [`EventQueue`] itself: everything is
/// local and `schedule` is a plain queue insert. The sharded engine's sink
/// is a per-domain wrapper that stamps each event with a partition-
/// independent [`dsv_sim::EventStamp`] and diverts packets crossing a
/// domain boundary into an outbox ([`NetSink::send_remote`]) instead of
/// the local queue.
pub trait NetSink<P> {
    /// Schedule `event` at absolute time `at`.
    fn schedule(&mut self, at: SimTime, event: NetEvent);

    /// Whether `node` is simulated by this sink's domain. The serial
    /// engine owns every node.
    fn is_local(&self, _node: NodeId) -> bool {
        true
    }

    /// Hand off a packet whose next arrival happens at a node owned by
    /// another domain. Only called when [`NetSink::is_local`] returned
    /// `false` for `dst` — never on the serial path.
    fn send_remote(&mut self, _at: SimTime, _dst: NodeId, _pkt: Packet<P>) {
        unreachable!("this sink owns every node; send_remote has no meaning")
    }
}

impl<P> NetSink<P> for EventQueue<NetEvent> {
    fn schedule(&mut self, at: SimTime, event: NetEvent) {
        EventQueue::schedule(self, at, event);
    }
}

struct Port<P> {
    link: Link,
    peer: NodeId,
    qdisc: Box<dyn Qdisc<P> + Send>,
    busy: bool,
    /// Packets currently inside `qdisc`, mirrored here so the hot paths
    /// (is the port drained? can a packet pass straight through?) answer
    /// without a virtual call. Maintained by the only two call sites that
    /// mutate the discipline.
    queued: u32,
    /// Cached [`Qdisc::direct_admit_cap`]: with the port idle and drained,
    /// a packet of `size <= direct_cap` bytes transmits straight through
    /// without touching the discipline.
    direct_cap: u32,
    /// Last `(size, serialization time)` computed for this port. Streams
    /// send runs of equal-sized packets, so this one-entry memo removes a
    /// 128-bit division from almost every transmission.
    ser_memo: (u32, SimDuration),
}

enum NodeKind {
    Host { start_at: SimTime },
    Router,
}

struct Node<P> {
    kind: NodeKind,
    name: String,
    ports: Vec<Port<P>>,
    /// Next-hop port toward each destination, indexed by destination
    /// node id (`None` for non-host destinations). A flat vector: route
    /// lookup is per packet per hop, far too hot for hashing.
    routes: Vec<Option<PortId>>,
}

/// An empty stand-in occupying a foreign node's slot in a domain network
/// (and a split-out node's slot in the main network) so `NodeId` indexing
/// stays global. Placeholders are never the target of an event.
fn placeholder_node<P>() -> Node<P> {
    Node {
        kind: NodeKind::Router,
        name: String::new(),
        ports: Vec::new(),
        routes: Vec::new(),
    }
}

/// Builds a [`Network`].
pub struct NetworkBuilder<P> {
    nodes: Vec<Node<P>>,
    apps: Vec<Option<Box<dyn Application<P> + Send>>>,
    conditioners: Vec<Option<Box<dyn Conditioner<P> + Send>>>,
}

impl<P: Send + 'static> NetworkBuilder<P> {
    /// Start an empty topology.
    pub fn new() -> Self {
        NetworkBuilder {
            nodes: Vec::new(),
            apps: Vec::new(),
            conditioners: Vec::new(),
        }
    }

    /// Add a host running `app`, starting at t = 0.
    pub fn add_host(&mut self, name: &str, app: Box<dyn Application<P> + Send>) -> NodeId {
        self.add_host_starting(name, app, SimTime::ZERO)
    }

    /// Add a host whose application starts at `start_at`.
    pub fn add_host_starting(
        &mut self,
        name: &str,
        app: Box<dyn Application<P> + Send>,
        start_at: SimTime,
    ) -> NodeId {
        let id = NodeId(self.nodes.len() as u32);
        self.nodes.push(Node {
            kind: NodeKind::Host { start_at },
            name: name.to_string(),
            ports: Vec::new(),
            routes: Vec::new(),
        });
        self.apps.push(Some(app));
        self.conditioners.push(None);
        id
    }

    /// Add a router.
    pub fn add_router(&mut self, name: &str) -> NodeId {
        let id = NodeId(self.nodes.len() as u32);
        self.nodes.push(Node {
            kind: NodeKind::Router,
            name: name.to_string(),
            ports: Vec::new(),
            routes: Vec::new(),
        });
        self.apps.push(None);
        self.conditioners.push(None);
        id
    }

    /// Connect two nodes with symmetric links and unbounded FIFO ports.
    pub fn connect(&mut self, a: NodeId, b: NodeId, link: Link) {
        self.connect_with(
            a,
            b,
            link,
            link,
            Box::new(DropTailQueue::new(QueueLimits::UNBOUNDED)),
            Box::new(DropTailQueue::new(QueueLimits::UNBOUNDED)),
        );
    }

    /// Connect two nodes with per-direction links and queueing disciplines.
    /// `qdisc_ab` sits on `a`'s port toward `b`.
    pub fn connect_with(
        &mut self,
        a: NodeId,
        b: NodeId,
        link_ab: Link,
        link_ba: Link,
        qdisc_ab: Box<dyn Qdisc<P> + Send>,
        qdisc_ba: Box<dyn Qdisc<P> + Send>,
    ) {
        assert_ne!(a, b, "self-loops are not allowed");
        let cap_ab = qdisc_ab.direct_admit_cap();
        let cap_ba = qdisc_ba.direct_admit_cap();
        self.nodes[a.0 as usize].ports.push(Port {
            link: link_ab,
            peer: b,
            qdisc: qdisc_ab,
            busy: false,
            queued: 0,
            direct_cap: cap_ab,
            ser_memo: (0, SimDuration::ZERO),
        });
        self.nodes[b.0 as usize].ports.push(Port {
            link: link_ba,
            peer: a,
            qdisc: qdisc_ba,
            busy: false,
            queued: 0,
            direct_cap: cap_ba,
            ser_memo: (0, SimDuration::ZERO),
        });
    }

    /// Attach an ingress conditioner to a router.
    pub fn set_conditioner(&mut self, node: NodeId, cond: Box<dyn Conditioner<P> + Send>) {
        assert!(
            matches!(self.nodes[node.0 as usize].kind, NodeKind::Router),
            "conditioners attach to routers"
        );
        self.conditioners[node.0 as usize] = Some(cond);
    }

    /// Finalize: compute routes and return the network.
    ///
    /// # Panics
    /// Panics if some host pair is disconnected (misbuilt topology) or a
    /// host has other than exactly one port.
    pub fn build(self) -> Network<P> {
        let NetworkBuilder {
            mut nodes,
            apps,
            conditioners,
        } = self;

        for node in &nodes {
            if matches!(node.kind, NodeKind::Host { .. }) {
                assert_eq!(
                    node.ports.len(),
                    1,
                    "host {} must have exactly one access port",
                    node.name
                );
            }
        }

        // Adjacency: (node, port index) -> peer.
        let adj: Vec<Vec<NodeId>> = nodes
            .iter()
            .map(|n| n.ports.iter().map(|p| p.peer).collect())
            .collect();

        // For each destination host, BFS from the destination over the
        // (symmetric) topology; each node's route is its port toward the
        // BFS parent direction.
        let host_ids: Vec<NodeId> = nodes
            .iter()
            .enumerate()
            .filter(|(_, n)| matches!(n.kind, NodeKind::Host { .. }))
            .map(|(i, _)| NodeId(i as u32))
            .collect();

        let node_count = nodes.len();
        for node in &mut nodes {
            node.routes = vec![None; node_count];
        }

        for &dst in &host_ids {
            let mut dist: Vec<Option<u32>> = vec![None; nodes.len()];
            dist[dst.0 as usize] = Some(0);
            let mut q = VecDeque::from([dst]);
            while let Some(u) = q.pop_front() {
                let du = dist[u.0 as usize].unwrap();
                for &v in &adj[u.0 as usize] {
                    if dist[v.0 as usize].is_none() {
                        dist[v.0 as usize] = Some(du + 1);
                        q.push_back(v);
                    }
                }
            }
            for (i, node) in nodes.iter_mut().enumerate() {
                if NodeId(i as u32) == dst {
                    continue;
                }
                let Some(di) = dist[i] else {
                    panic!("node {} has no path to host {}", node.name, dst.0);
                };
                // Pick the first port whose peer is strictly closer.
                let port = node
                    .ports
                    .iter()
                    .position(|p| dist[p.peer.0 as usize].is_some_and(|dp| dp + 1 == di))
                    .expect("BFS invariant: some neighbour is closer");
                node.routes[dst.0 as usize] = Some(PortId(port as u16));
            }
        }

        let node_count = conditioners.len();
        Network {
            nodes,
            apps,
            conditioners,
            cond_poll_at: vec![None; node_count],
            stats: NetStats::new(),
            flow_next_id: Vec::new(),
            // Streaming runs keep at most a few dozen packets on the wire
            // at once (the in-flight high-water mark reported by
            // `DSV_PROFILE=1` stays under ~32 across the paper's grids);
            // pre-size so the pool never reallocates mid-run.
            pool: PacketPool::with_capacity(64),
            cmd_buf: Vec::with_capacity(8),
            #[cfg(feature = "audit")]
            audit: SimAudit::new(node_count),
        }
    }
}

impl<P: Send + 'static> Default for NetworkBuilder<P> {
    fn default() -> Self {
        Self::new()
    }
}

/// The simulated network (see module docs).
pub struct Network<P> {
    nodes: Vec<Node<P>>,
    apps: Vec<Option<Box<dyn Application<P> + Send>>>,
    conditioners: Vec<Option<Box<dyn Conditioner<P> + Send>>>,
    /// Earliest pending [`NetEvent::CondPoll`] per node, or `None` if no
    /// poll is outstanding. A backlogged shaper asks to be polled once per
    /// queued packet *and* once per poll that finds the head unready; without
    /// deduplication those requests pile into thousands of parallel poll
    /// chains that all fire at every release instant (a measured ~200×
    /// event-count blowup on starved-profile shaped runs). Only the earliest
    /// request needs a real event — later ones are satisfied by it.
    cond_poll_at: Vec<Option<SimTime>>,
    /// Statistics collector (public so experiments can enable tracing before
    /// the run and read counters afterwards).
    pub stats: NetStats,
    /// Next packet id **per flow** (linear scan: a run has a handful of
    /// flows). Per-flow numbering makes ids independent of how sends from
    /// different flows interleave globally — the property that lets every
    /// shard assign ids locally and still match the serial engine.
    flow_next_id: Vec<(FlowId, u64)>,
    /// In-flight packets, parked between transmission and arrival so the
    /// event queue carries only [`PacketRef`] handles.
    pool: PacketPool<P>,
    /// Reusable application command buffer: one allocation for the whole
    /// run instead of one per callback that issues commands.
    cmd_buf: Vec<AppCommand<P>>,
    /// Online invariant checker (armed by `DSV_AUDIT=1`; see
    /// [`crate::audit`]). Absent entirely when the feature is compiled out.
    #[cfg(feature = "audit")]
    audit: SimAudit,
}

impl<P: 'static> Network<P> {
    /// Schedule the start events for every host. Call once before running.
    pub fn schedule_starts(&self, queue: &mut EventQueue<NetEvent>) {
        for (i, node) in self.nodes.iter().enumerate() {
            if let NodeKind::Host { start_at } = node.kind {
                queue.schedule(start_at, NetEvent::Start(NodeId(i as u32)));
            }
        }
    }

    /// Human-readable node name (diagnostics).
    pub fn node_name(&self, node: NodeId) -> &str {
        &self.nodes[node.0 as usize].name
    }

    /// Borrow an application back out of the network after a run (for
    /// reading collected client-side state). Panics if `node` is a router.
    pub fn app(&self, node: NodeId) -> &dyn Application<P> {
        self.apps[node.0 as usize]
            .as_deref()
            .expect("node is not a host")
    }

    /// Mutable access to an application (test instrumentation).
    pub fn app_mut(&mut self, node: NodeId) -> &mut (dyn Application<P> + 'static) {
        self.apps[node.0 as usize]
            .as_deref_mut()
            .expect("node is not a host")
    }

    fn next_packet_id(&mut self, flow: FlowId) -> PacketId {
        match self.flow_next_id.iter_mut().find(|(f, _)| *f == flow) {
            Some((_, next)) => {
                let id = *next;
                *next += 1;
                PacketId(id)
            }
            None => {
                self.flow_next_id.push((flow, 1));
                PacketId(0)
            }
        }
    }

    fn dispatch_app<S, F>(&mut self, now: SimTime, node: NodeId, f: F, sink: &mut S)
    where
        S: NetSink<P>,
        F: FnOnce(&mut dyn Application<P>, &mut AppCtx<P>),
    {
        let idx = node.0 as usize;
        // Hand the application the network's reusable command buffer;
        // callbacks never nest (commands are executed after the callback
        // returns and only schedule events), so one buffer suffices. The
        // app stays in place — `apps` and `cmd_buf` are disjoint fields,
        // so the callback borrow never conflicts with the buffer move.
        let mut ctx = AppCtx::with_buffer(now, node, std::mem::take(&mut self.cmd_buf));
        let app = self.apps[idx].as_mut().expect("event for a router app");
        f(app.as_mut(), &mut ctx);
        let mut commands = ctx.take_commands();
        for cmd in commands.drain(..) {
            match cmd {
                AppCommand::SetTimer { delay, token } => {
                    sink.schedule(now + delay, NetEvent::Timer { node, token });
                }
                AppCommand::Send(spec) => {
                    let id = self.next_packet_id(spec.flow);
                    let pkt = Packet {
                        id,
                        flow: spec.flow,
                        src: node,
                        dst: spec.dst,
                        size: spec.size,
                        dscp: spec.dscp,
                        proto: spec.proto,
                        fragment: spec.fragment,
                        sent_at: now,
                        payload: spec.payload,
                    };
                    self.stats.on_sent(now, pkt.flow, pkt.id, pkt.size, node);
                    #[cfg(feature = "audit")]
                    self.audit.on_sent(pkt.flow, pkt.id, pkt.size, node);
                    // Hosts have exactly one port (asserted at build).
                    self.enqueue_on_port(now, node, PortId(0), pkt, sink);
                }
            }
        }
        self.cmd_buf = commands;
    }

    fn forward<S: NetSink<P>>(&mut self, now: SimTime, node: NodeId, pkt: Packet<P>, sink: &mut S) {
        let idx = node.0 as usize;
        match self.nodes[idx]
            .routes
            .get(pkt.dst.0 as usize)
            .copied()
            .flatten()
        {
            Some(port) => self.enqueue_on_port(now, node, port, pkt, sink),
            None => {
                self.stats
                    .on_dropped(now, pkt.flow, pkt.id, pkt.size, node, DropReason::NoRoute);
                #[cfg(feature = "audit")]
                self.audit.on_dropped(pkt.flow, pkt.id, pkt.size, node);
            }
        }
    }

    fn enqueue_on_port<S: NetSink<P>>(
        &mut self,
        now: SimTime,
        node: NodeId,
        port: PortId,
        pkt: Packet<P>,
        sink: &mut S,
    ) {
        let idx = node.0 as usize;
        let p = &mut self.nodes[idx].ports[port.0 as usize];
        // Idle port, discipline drained and willing: transmit straight
        // through — an enqueue followed by an immediate dequeue would hand
        // the same packet back, so skip both virtual calls.
        if !p.busy && p.queued == 0 && pkt.size <= p.direct_cap {
            self.begin_transmit(now, node, port, pkt, sink);
            return;
        }
        match p.qdisc.enqueue(pkt) {
            Ok(()) => {
                p.queued += 1;
                if !p.busy {
                    self.transmit_next(now, node, port, sink);
                }
            }
            Err(pkt) => {
                self.stats.on_dropped(
                    now,
                    pkt.flow,
                    pkt.id,
                    pkt.size,
                    node,
                    DropReason::QueueOverflow,
                );
                #[cfg(feature = "audit")]
                self.audit.on_dropped(pkt.flow, pkt.id, pkt.size, node);
            }
        }
    }

    fn transmit_next<S: NetSink<P>>(
        &mut self,
        now: SimTime,
        node: NodeId,
        port: PortId,
        sink: &mut S,
    ) {
        let idx = node.0 as usize;
        let p = &mut self.nodes[idx].ports[port.0 as usize];
        debug_assert!(!p.busy);
        if p.queued == 0 {
            return;
        }
        if let Some(pkt) = p.qdisc.dequeue() {
            p.queued -= 1;
            self.begin_transmit(now, node, port, pkt, sink);
        }
    }

    /// Put `pkt` on the wire out of an idle `port`: mark the port busy and
    /// schedule its `PortReady` plus the peer's `Arrive` (in that order —
    /// the event sequence every path through the port logic must produce).
    fn begin_transmit<S: NetSink<P>>(
        &mut self,
        now: SimTime,
        node: NodeId,
        port: PortId,
        pkt: Packet<P>,
        sink: &mut S,
    ) {
        #[cfg(feature = "audit")]
        self.audit
            .on_transmit(now, node, port, pkt.flow, pkt.id, pkt.size);
        let p = &mut self.nodes[node.0 as usize].ports[port.0 as usize];
        debug_assert!(!p.busy);
        p.busy = true;
        let ser = if p.ser_memo.0 == pkt.size {
            p.ser_memo.1
        } else {
            let ser = p.link.serialization(pkt.size);
            p.ser_memo = (pkt.size, ser);
            ser
        };
        let arrive = now + ser + p.link.propagation;
        let peer = p.peer;
        sink.schedule(now + ser, NetEvent::PortReady { node, port });
        if sink.is_local(peer) {
            sink.schedule(
                arrive,
                NetEvent::Arrive {
                    node: peer,
                    packet: self.pool.insert(pkt),
                },
            );
        } else {
            sink.send_remote(arrive, peer, pkt);
        }
    }

    /// Like [`Network::begin_transmit`], but for a packet that never left
    /// the pool: the same [`PacketRef`] rides the next `Arrive`, so a
    /// router hop moves a handle instead of the packet body.
    fn relay_transmit<S: NetSink<P>>(
        &mut self,
        now: SimTime,
        node: NodeId,
        port: PortId,
        size: u32,
        packet: PacketRef,
        sink: &mut S,
    ) {
        #[cfg(feature = "audit")]
        if self.audit.enabled() {
            let (flow, id) = {
                let pkt = self.pool.get_mut(packet);
                (pkt.flow, pkt.id)
            };
            self.audit.on_transmit(now, node, port, flow, id, size);
        }
        let p = &mut self.nodes[node.0 as usize].ports[port.0 as usize];
        debug_assert!(!p.busy);
        p.busy = true;
        let ser = if p.ser_memo.0 == size {
            p.ser_memo.1
        } else {
            let ser = p.link.serialization(size);
            p.ser_memo = (size, ser);
            ser
        };
        let arrive = now + ser + p.link.propagation;
        let peer = p.peer;
        sink.schedule(now + ser, NetEvent::PortReady { node, port });
        if sink.is_local(peer) {
            sink.schedule(arrive, NetEvent::Arrive { node: peer, packet });
        } else {
            // The relayed packet leaves this domain's pool and crosses the
            // boundary by value; the receiving domain re-parks it.
            let pkt = self.pool.take(packet);
            sink.send_remote(arrive, peer, pkt);
        }
    }

    /// Peak number of simultaneously in-flight packets observed so far
    /// (sizes [`PacketPool::with_capacity`]; reported by `DSV_PROFILE=1`).
    pub fn pool_high_water(&self) -> usize {
        self.pool.high_water()
    }

    /// Number of nodes in the topology.
    pub fn node_count(&self) -> usize {
        self.nodes.len()
    }

    /// Every directed link as `(min(a, b), max(a, b), propagation delay)`
    /// — the weighted graph the sharded engine partitions. Each physical
    /// link contributes one entry per direction; the partitioner treats
    /// them as parallel edges and takes the minimum crossing weight, so
    /// asymmetric propagation delays are handled conservatively.
    pub fn link_edges(&self) -> Vec<(u32, u32, SimDuration)> {
        let mut edges = Vec::new();
        for (i, node) in self.nodes.iter().enumerate() {
            let a = i as u32;
            for p in &node.ports {
                let b = p.peer.0;
                edges.push((a.min(b), a.max(b), p.link.propagation));
            }
        }
        edges
    }

    /// The in-flight packet pool (sharded engine: boundary handoff and
    /// leftover-event reassembly move packets between domain pools).
    pub(crate) fn pool_mut(&mut self) -> &mut PacketPool<P> {
        &mut self.pool
    }

    /// Carve the network into `k` per-domain networks, moving each node
    /// (with its application and conditioner) into the network of the
    /// domain that owns it. Every domain network keeps full-length,
    /// globally-indexed vectors with placeholders in foreign slots, so
    /// `NodeId`s stay valid everywhere. The main network is left hollow
    /// until [`Network::absorb_domain`] moves everything back.
    pub(crate) fn split_domains(&mut self, domain_of: &[u32], k: usize) -> Vec<Network<P>> {
        let n = self.nodes.len();
        debug_assert_eq!(domain_of.len(), n);
        let mut out = Vec::with_capacity(k);
        for d in 0..k as u32 {
            let mut nodes = Vec::with_capacity(n);
            let mut apps = Vec::with_capacity(n);
            let mut conditioners = Vec::with_capacity(n);
            for (i, &owner) in domain_of.iter().enumerate() {
                if owner == d {
                    nodes.push(std::mem::replace(&mut self.nodes[i], placeholder_node()));
                    apps.push(self.apps[i].take());
                    conditioners.push(self.conditioners[i].take());
                } else {
                    nodes.push(placeholder_node());
                    apps.push(None);
                    conditioners.push(None);
                }
            }
            out.push(Network {
                nodes,
                apps,
                conditioners,
                cond_poll_at: self.cond_poll_at.clone(),
                stats: self.stats.fork_registrations(),
                flow_next_id: self.flow_next_id.clone(),
                pool: PacketPool::with_capacity(64),
                cmd_buf: Vec::with_capacity(8),
                #[cfg(feature = "audit")]
                audit: self.audit.fork_domain(),
            });
        }
        out
    }

    /// Reabsorb one domain network after a sharded run: move its owned
    /// nodes (with all queued packets and conditioner backlog) back into
    /// place and fold its statistics and audit ledger into the main ones.
    /// The domain's pool must already be drained (leftover `Arrive`
    /// packets are transferred during queue reassembly, before this call).
    pub(crate) fn absorb_domain(&mut self, mut dom: Network<P>, domain: u32, domain_of: &[u32]) {
        debug_assert_eq!(
            dom.pool.live(),
            0,
            "domain pool must be drained before absorbing"
        );
        for (i, &owner) in domain_of.iter().enumerate() {
            if owner != domain {
                continue;
            }
            self.nodes[i] = std::mem::replace(&mut dom.nodes[i], placeholder_node());
            self.apps[i] = dom.apps[i].take();
            self.conditioners[i] = dom.conditioners[i].take();
            self.cond_poll_at[i] = dom.cond_poll_at[i];
        }
        for (flow, next) in dom.flow_next_id {
            match self.flow_next_id.iter_mut().find(|(f, _)| *f == flow) {
                Some((_, mine)) => *mine = (*mine).max(next),
                None => self.flow_next_id.push((flow, next)),
            }
        }
        self.stats.merge_from(dom.stats);
        self.pool.absorb_high_water(dom.pool.high_water());
        #[cfg(feature = "audit")]
        self.audit.merge_from(dom.audit);
    }

    /// A packet arrived at a router: condition it, route it, and move it
    /// toward its next hop.
    ///
    /// The packet stays parked in the pool while the conditioner's
    /// [`Conditioner::quick`] verdict and the route are computed against a
    /// borrow; if the outgoing port is idle and its discipline admits the
    /// packet directly, the very same [`PacketRef`] is relayed onward and
    /// the hop never copies the packet at all. Every other case (shaping,
    /// drops, busy ports, full queues) lifts the packet out and follows
    /// the classic store-and-forward path, producing the identical event
    /// sequence it always has.
    fn router_arrive<S: NetSink<P>>(
        &mut self,
        now: SimTime,
        node: NodeId,
        packet: PacketRef,
        sink: &mut S,
    ) {
        let idx = node.0 as usize;
        let verdict = match self.conditioners[idx].as_mut() {
            Some(cond) => cond.quick(now, self.pool.get_mut(packet)),
            None => QuickVerdict::Pass,
        };
        match verdict {
            QuickVerdict::Pass => {
                let (dst, size) = {
                    let pkt = self.pool.get_mut(packet);
                    (pkt.dst, pkt.size)
                };
                match self.nodes[idx]
                    .routes
                    .get(dst.0 as usize)
                    .copied()
                    .flatten()
                {
                    Some(port) => {
                        let p = &self.nodes[idx].ports[port.0 as usize];
                        if !p.busy && p.queued == 0 && size <= p.direct_cap {
                            self.relay_transmit(now, node, port, size, packet, sink);
                        } else {
                            let pkt = self.pool.take(packet);
                            self.enqueue_on_port(now, node, port, pkt, sink);
                        }
                    }
                    None => {
                        let pkt = self.pool.take(packet);
                        self.stats.on_dropped(
                            now,
                            pkt.flow,
                            pkt.id,
                            pkt.size,
                            node,
                            DropReason::NoRoute,
                        );
                        #[cfg(feature = "audit")]
                        self.audit.on_dropped(pkt.flow, pkt.id, pkt.size, node);
                    }
                }
            }
            QuickVerdict::Drop(reason) => {
                let pkt = self.pool.take(packet);
                self.stats
                    .on_dropped(now, pkt.flow, pkt.id, pkt.size, node, reason);
                #[cfg(feature = "audit")]
                self.audit.on_dropped(pkt.flow, pkt.id, pkt.size, node);
            }
            QuickVerdict::NeedsSubmit => {
                let pkt = self.pool.take(packet);
                self.condition_and_forward(now, node, pkt, sink);
            }
        }
    }

    fn condition_and_forward<S: NetSink<P>>(
        &mut self,
        now: SimTime,
        node: NodeId,
        pkt: Packet<P>,
        sink: &mut S,
    ) {
        let idx = node.0 as usize;
        if let Some(mut cond) = self.conditioners[idx].take() {
            let outcome = cond.submit(now, pkt);
            self.conditioners[idx] = Some(cond);
            match outcome {
                ConditionOutcome::Pass(pkt) => self.forward(now, node, pkt, sink),
                ConditionOutcome::Drop(pkt, reason) => {
                    self.stats
                        .on_dropped(now, pkt.flow, pkt.id, pkt.size, node, reason);
                    #[cfg(feature = "audit")]
                    self.audit.on_dropped(pkt.flow, pkt.id, pkt.size, node);
                }
                ConditionOutcome::Absorbed { poll_at } => {
                    self.schedule_cond_poll(node, poll_at.max(now), sink);
                }
            }
        } else {
            self.forward(now, node, pkt, sink);
        }
    }

    /// Request a conditioner poll at `at`, skipping the event if an earlier
    /// (or equal) poll is already pending — that one will observe the same
    /// queue head and reschedule as needed.
    fn schedule_cond_poll<S: NetSink<P>>(&mut self, node: NodeId, at: SimTime, sink: &mut S) {
        let slot = &mut self.cond_poll_at[node.0 as usize];
        match slot {
            Some(pending) if *pending <= at => {}
            _ => {
                *slot = Some(at);
                sink.schedule(at, NetEvent::CondPoll(node));
            }
        }
    }

    fn poll_conditioner<S: NetSink<P>>(&mut self, now: SimTime, node: NodeId, sink: &mut S) {
        let idx = node.0 as usize;
        // This firing satisfies the pending request (if it is the one we
        // tracked); later requests re-arm via `schedule_cond_poll`.
        if self.cond_poll_at[idx].is_some_and(|t| t <= now) {
            self.cond_poll_at[idx] = None;
        }
        if let Some(mut cond) = self.conditioners[idx].take() {
            let released = cond.release(now);
            self.conditioners[idx] = Some(cond);
            for pkt in released.packets {
                self.forward(now, node, pkt, sink);
            }
            if let Some(next) = released.next_poll {
                self.schedule_cond_poll(node, next.max(now), sink);
            }
        }
    }

    /// Close the audit's end-of-run conservation equations: count packets
    /// still physically held at each node (port queues + conditioner
    /// backlog) and on the wire, and check them against the lifecycle
    /// ledger. Call once after the run; a no-op if the audit is disarmed.
    #[cfg(feature = "audit")]
    pub fn audit_finish(&mut self) {
        if !self.audit.enabled() {
            return;
        }
        let held: Vec<u64> = self
            .nodes
            .iter()
            .enumerate()
            .map(|(i, n)| {
                let queued: u64 = n.ports.iter().map(|p| u64::from(p.queued)).sum();
                let absorbed = self.conditioners[i].as_ref().map_or(0, |c| c.held() as u64);
                queued + absorbed
            })
            .collect();
        self.audit.finish(self.pool.live(), &held);
    }

    /// The audit observer (read [`SimAudit::report`] after a run).
    #[cfg(feature = "audit")]
    pub fn audit(&self) -> &SimAudit {
        &self.audit
    }

    /// Mutable audit observer — arm it programmatically or register
    /// token-bucket conformance bounds before the run.
    #[cfg(feature = "audit")]
    pub fn audit_mut(&mut self) -> &mut SimAudit {
        &mut self.audit
    }
}

impl<P: 'static> Network<P> {
    /// Dispatch one event through any [`NetSink`] — the single handler
    /// shared by the serial engine ([`World::handle`] passes the event
    /// queue) and the sharded engine (a per-domain stamping sink).
    pub fn handle_event<S: NetSink<P>>(&mut self, now: SimTime, event: NetEvent, sink: &mut S) {
        #[cfg(feature = "audit")]
        self.audit.on_event(now);
        match event {
            NetEvent::Start(node) => {
                self.dispatch_app(now, node, |app, ctx| app.on_start(ctx), sink);
            }
            NetEvent::Timer { node, token } => {
                self.dispatch_app(now, node, |app, ctx| app.on_timer(ctx, token), sink);
            }
            NetEvent::PortReady { node, port } => {
                let p = &mut self.nodes[node.0 as usize].ports[port.0 as usize];
                p.busy = false;
                self.transmit_next(now, node, port, sink);
            }
            NetEvent::CondPoll(node) => self.poll_conditioner(now, node, sink),
            NetEvent::Arrive { node, packet } => {
                let idx = node.0 as usize;
                #[cfg(feature = "audit")]
                self.audit.on_arrive(node);
                match self.nodes[idx].kind {
                    NodeKind::Router => self.router_arrive(now, node, packet, sink),
                    NodeKind::Host { .. } => {
                        let packet = self.pool.take(packet);
                        if packet.dst == node {
                            let delay = now.saturating_since(packet.sent_at);
                            self.stats.on_delivered(
                                now,
                                packet.flow,
                                packet.id,
                                packet.size,
                                node,
                                delay,
                            );
                            #[cfg(feature = "audit")]
                            self.audit
                                .on_delivered(packet.flow, packet.id, packet.size, node);
                            self.dispatch_app(
                                now,
                                node,
                                |app, ctx| app.on_packet(ctx, packet),
                                sink,
                            );
                        } else {
                            // A packet washed up at the wrong host: surface
                            // as a routing drop rather than corrupting app
                            // state.
                            self.stats.on_dropped(
                                now,
                                packet.flow,
                                packet.id,
                                packet.size,
                                node,
                                DropReason::NoRoute,
                            );
                            #[cfg(feature = "audit")]
                            self.audit
                                .on_dropped(packet.flow, packet.id, packet.size, node);
                        }
                    }
                }
            }
        }
    }
}

impl<P: 'static> World for Network<P> {
    type Event = NetEvent;

    fn handle(&mut self, now: SimTime, event: NetEvent, queue: &mut EventQueue<NetEvent>) {
        self.handle_event(now, event, queue);
    }
}

/// A network bundled with its event queue: the convenient top-level runner.
pub struct Simulation<P> {
    /// The network world.
    pub net: Network<P>,
    /// The pending-event queue.
    pub queue: EventQueue<NetEvent>,
}

impl<P: Send + 'static> Simulation<P> {
    /// Wrap a built network and schedule host start events.
    pub fn new(net: Network<P>) -> Self {
        // The paper's grids keep only a few dozen events pending (the
        // queue high-water mark reported by `DSV_PROFILE=1`); the
        // capacity covers bursty topologies without a mid-run grow.
        let mut queue = EventQueue::with_capacity(4096);
        net.schedule_starts(&mut queue);
        Simulation { net, queue }
    }

    /// Run until no events remain.
    pub fn run(&mut self) -> dsv_sim::engine::RunStats {
        self.run_until(SimTime::MAX)
    }

    /// Run until `horizon` (inclusive).
    ///
    /// With `DSV_SHARDS` > 1 (and a topology that yields a safe parallel
    /// window) the run is delegated to the sharded engine; otherwise —
    /// and always by default — the serial dispatch loop runs. Both paths
    /// produce the same statistics and post-run state.
    pub fn run_until(&mut self, horizon: SimTime) -> dsv_sim::engine::RunStats {
        let shards = crate::shard::shards_from_env();
        if shards > 1 {
            if let Some(stats) =
                crate::shard::run_sharded(&mut self.net, &mut self.queue, horizon, shards)
            {
                return stats;
            }
        }
        dsv_sim::run_until(&mut self.net, &mut self.queue, horizon)
    }

    /// Run for `span` beyond the current queue time.
    pub fn run_for(&mut self, span: SimDuration) -> dsv_sim::engine::RunStats {
        let horizon = self.queue.now() + span;
        self.run_until(horizon)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::app::SendSpec;
    use crate::packet::{Dscp, FlowId, Proto};
    use crate::qdisc::StrictPriorityQueue;

    /// Sends `count` packets of `size` bytes, `gap` apart.
    struct Blaster {
        dst: NodeId,
        flow: FlowId,
        count: u32,
        size: u32,
        gap: SimDuration,
        sent: u32,
        dscp: Dscp,
    }

    impl Application<()> for Blaster {
        fn on_start(&mut self, ctx: &mut AppCtx<()>) {
            ctx.set_timer(SimDuration::ZERO, 0);
        }
        fn on_packet(&mut self, _ctx: &mut AppCtx<()>, _pkt: Packet<()>) {}
        fn on_timer(&mut self, ctx: &mut AppCtx<()>, _token: u64) {
            if self.sent < self.count {
                self.sent += 1;
                ctx.send(SendSpec {
                    dst: self.dst,
                    flow: self.flow,
                    size: self.size,
                    dscp: self.dscp,
                    proto: Proto::Udp,
                    fragment: None,
                    payload: (),
                });
                ctx.set_timer(self.gap, 0);
            }
        }
    }

    /// Records arrival times.
    #[derive(Default)]
    struct Recorder {
        arrivals: Vec<SimTime>,
    }

    impl Application<()> for Recorder {
        fn on_start(&mut self, _ctx: &mut AppCtx<()>) {}
        fn on_packet(&mut self, ctx: &mut AppCtx<()>, _pkt: Packet<()>) {
            self.arrivals.push(ctx.now());
        }
        fn on_timer(&mut self, _ctx: &mut AppCtx<()>, _token: u64) {}
    }

    fn two_hosts_one_router() -> (Simulation<()>, NodeId, NodeId) {
        let mut b = NetworkBuilder::new();
        let rx = b.add_host("rx", Box::new(Recorder::default()));
        let r = b.add_router("r1");
        let tx = b.add_host(
            "tx",
            Box::new(Blaster {
                dst: rx,
                flow: FlowId(1),
                count: 10,
                size: 1500,
                gap: SimDuration::from_millis(10),
                sent: 0,
                dscp: Dscp::BEST_EFFORT,
            }),
        );
        b.connect(tx, r, Link::ethernet_10mbps());
        b.connect(r, rx, Link::ethernet_10mbps());
        (Simulation::new(b.build()), tx, rx)
    }

    #[test]
    fn packets_flow_end_to_end() {
        let (mut sim, _tx, rx) = two_hosts_one_router();
        sim.run();
        let c = sim.net.stats.flow(FlowId(1));
        assert_eq!(c.tx_packets, 10);
        assert_eq!(c.rx_packets, 10);
        assert_eq!(c.total_drops(), 0);
        // Delay = 2 × (1.2 ms serialization + 5 µs propagation).
        assert_eq!(c.delay.min, SimDuration::from_micros(2 * (1200 + 5)));
        let _ = sim.net.app(rx); // hosts expose their application
    }

    #[test]
    fn deterministic_across_runs() {
        let (mut a, _, _) = two_hosts_one_router();
        let (mut b, _, _) = two_hosts_one_router();
        let sa = a.run();
        let sb = b.run();
        assert_eq!(sa.dispatched, sb.dispatched);
        assert_eq!(sa.end_time, sb.end_time);
        let fa = a.net.stats.flow(FlowId(1));
        let fb = b.net.stats.flow(FlowId(1));
        assert_eq!(fa.delay.mean(), fb.delay.mean());
    }

    #[test]
    fn bottleneck_queue_overflow_drops() {
        let mut b = NetworkBuilder::new();
        let rx = b.add_host("rx", Box::new(Recorder::default()));
        let r = b.add_router("r1");
        let tx = b.add_host(
            "tx",
            Box::new(Blaster {
                dst: rx,
                flow: FlowId(1),
                count: 100,
                size: 1500,
                gap: SimDuration::ZERO, // all at once
                sent: 0,
                dscp: Dscp::BEST_EFFORT,
            }),
        );
        b.connect(tx, r, Link::ethernet_10mbps());
        // Slow bottleneck with a 5-packet queue toward rx.
        b.connect_with(
            r,
            rx,
            Link::new(1_000_000, SimDuration::from_micros(5)),
            Link::new(1_000_000, SimDuration::from_micros(5)),
            Box::new(DropTailQueue::new(QueueLimits::packets(5))),
            Box::new(DropTailQueue::new(QueueLimits::UNBOUNDED)),
        );
        let mut sim = Simulation::new(b.build());
        sim.run();
        let c = sim.net.stats.flow(FlowId(1));
        assert_eq!(c.tx_packets, 100);
        assert!(c.drops_for(DropReason::QueueOverflow) > 0);
        assert_eq!(c.rx_packets + c.drops_for(DropReason::QueueOverflow), 100);
    }

    #[test]
    fn ef_priority_beats_best_effort_through_bottleneck() {
        // Two blasters share a 2 Mbps bottleneck; the EF one is served
        // strictly first, so its delay stays near the unloaded value.
        let mut b = NetworkBuilder::new();
        let rx = b.add_host("rx", Box::new(Recorder::default()));
        let r = b.add_router("r1");
        let ef_tx = b.add_host(
            "ef",
            Box::new(Blaster {
                dst: rx,
                flow: FlowId(1),
                count: 50,
                size: 1500,
                gap: SimDuration::from_millis(10),
                sent: 0,
                dscp: Dscp::EF,
            }),
        );
        let be_tx = b.add_host(
            "be",
            Box::new(Blaster {
                dst: rx,
                flow: FlowId(2),
                count: 500,
                size: 1500,
                gap: SimDuration::from_millis(1),
                sent: 0,
                dscp: Dscp::BEST_EFFORT,
            }),
        );
        b.connect(ef_tx, r, Link::ethernet_10mbps());
        b.connect(be_tx, r, Link::ethernet_10mbps());
        b.connect_with(
            r,
            rx,
            Link::new(2_000_000, SimDuration::from_micros(5)),
            Link::new(2_000_000, SimDuration::from_micros(5)),
            Box::new(StrictPriorityQueue::ef_default(
                QueueLimits::UNBOUNDED,
                QueueLimits::packets(30),
            )),
            Box::new(DropTailQueue::new(QueueLimits::UNBOUNDED)),
        );
        let mut sim = Simulation::new(b.build());
        sim.run();
        let ef = sim.net.stats.flow(FlowId(1));
        let be = sim.net.stats.flow(FlowId(2));
        assert_eq!(ef.rx_packets, 50);
        assert_eq!(ef.total_drops(), 0);
        // EF max delay bounded by one BE packet in service plus its own
        // serialization times; far below BE's queueing delay.
        assert!(
            ef.delay.max < SimDuration::from_millis(16),
            "{:?}",
            ef.delay.max
        );
        assert!(be.delay.max > ef.delay.max);
        assert!(be.drops_for(DropReason::QueueOverflow) > 0);
    }

    #[test]
    fn multihop_routing_works() {
        // tx - r1 - r2 - r3 - rx chain.
        let mut b = NetworkBuilder::new();
        let rx = b.add_host("rx", Box::new(Recorder::default()));
        let r1 = b.add_router("r1");
        let r2 = b.add_router("r2");
        let r3 = b.add_router("r3");
        let tx = b.add_host(
            "tx",
            Box::new(Blaster {
                dst: rx,
                flow: FlowId(1),
                count: 3,
                size: 500,
                gap: SimDuration::from_millis(1),
                sent: 0,
                dscp: Dscp::BEST_EFFORT,
            }),
        );
        b.connect(tx, r1, Link::fast_ethernet());
        b.connect(r1, r2, Link::fast_ethernet());
        b.connect(r2, r3, Link::fast_ethernet());
        b.connect(r3, rx, Link::fast_ethernet());
        let mut sim = Simulation::new(b.build());
        sim.run();
        assert_eq!(sim.net.stats.flow(FlowId(1)).rx_packets, 3);
    }

    #[test]
    #[should_panic(expected = "no path")]
    fn disconnected_topology_panics_at_build() {
        let mut b: NetworkBuilder<()> = NetworkBuilder::new();
        let h1 = b.add_host("a", Box::new(Recorder::default()));
        let r1 = b.add_router("ra");
        let h2 = b.add_host("b", Box::new(Recorder::default()));
        let r2 = b.add_router("rb");
        // Two islands: a—ra and b—rb.
        b.connect(h1, r1, Link::fast_ethernet());
        b.connect(h2, r2, Link::fast_ethernet());
        b.build();
    }

    #[test]
    fn run_for_advances_relative_horizon() {
        let (mut sim, _, _) = two_hosts_one_router();
        sim.run_for(SimDuration::from_millis(25));
        let c = sim.net.stats.flow(FlowId(1));
        // Packets at t≈0,10,20 ms have been sent; later ones pending.
        assert_eq!(c.tx_packets, 3);
        sim.run();
        assert_eq!(sim.net.stats.flow(FlowId(1)).tx_packets, 10);
    }
}
