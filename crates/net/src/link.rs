//! Point-to-point links.
//!
//! A [`Link`] models a simplex wire: a serialization rate in bits per second
//! and a propagation delay. The paper's testbeds are built from three link
//! classes — LAN segments (hosts to routers), Frame-Relay WAN circuits
//! between routers (see [`crate::frame_relay`]), and the wide-area QBone
//! path — all of which reduce to these two parameters plus queueing at the
//! sending port.

use dsv_sim::{SimDuration, SimTime};

/// A simplex point-to-point link.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Link {
    /// Serialization rate in bits per second.
    pub rate_bps: u64,
    /// Propagation delay.
    pub propagation: SimDuration,
}

impl Link {
    /// Construct a link.
    pub const fn new(rate_bps: u64, propagation: SimDuration) -> Self {
        Link {
            rate_bps,
            propagation,
        }
    }

    /// A 10 Mbps Ethernet segment with negligible propagation delay —
    /// the hubs used for local connectivity in the paper's testbed.
    pub const fn ethernet_10mbps() -> Self {
        Link::new(10_000_000, SimDuration::from_micros(5))
    }

    /// A 100 Mbps Ethernet segment.
    pub const fn fast_ethernet() -> Self {
        Link::new(100_000_000, SimDuration::from_micros(5))
    }

    /// Serialization time for a packet of `bytes` bytes.
    pub fn serialization(&self, bytes: u32) -> SimDuration {
        SimDuration::for_bytes_at_bps(bytes as u64, self.rate_bps)
    }

    /// Instant at which the last bit of a packet transmitted starting at
    /// `start` reaches the far end.
    pub fn arrival_time(&self, start: SimTime, bytes: u32) -> SimTime {
        start + self.serialization(bytes) + self.propagation
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn serialization_matches_rate() {
        let l = Link::new(2_000_000, SimDuration::from_millis(1));
        // 1500 B at 2 Mbps = 6 ms.
        assert_eq!(l.serialization(1500), SimDuration::from_millis(6));
        assert_eq!(l.arrival_time(SimTime::ZERO, 1500), SimTime::from_millis(7));
    }

    #[test]
    fn ethernet_profile() {
        let l = Link::ethernet_10mbps();
        assert_eq!(l.serialization(1500), SimDuration::from_micros(1200));
    }
}
