//! The application interface for hosts.
//!
//! Streaming servers, clients, transport endpoints and cross-traffic
//! generators are all [`Application`]s: event-driven state machines attached
//! to host nodes. They interact with the network exclusively through an
//! [`AppCtx`] command buffer — sends and timers are recorded during the
//! callback and executed by the network afterwards, which keeps borrows
//! simple and interleavings deterministic.

use dsv_sim::{SimDuration, SimTime};

use crate::packet::{Dscp, FlowId, FragmentInfo, NodeId, Packet, Proto};

/// Everything the network needs to materialize an outgoing packet.
#[derive(Debug, Clone)]
pub struct SendSpec<P> {
    /// Destination host.
    pub dst: NodeId,
    /// Flow label for classification and accounting.
    pub flow: FlowId,
    /// Bytes on the wire including headers.
    pub size: u32,
    /// Initial DSCP marking (hosts may pre-mark, as the paper's remote
    /// server pre-marked EF; edge conditioners may re-mark).
    pub dscp: Dscp,
    /// Transport tag.
    pub proto: Proto,
    /// Fragmentation bookkeeping if this is an IP fragment.
    pub fragment: Option<FragmentInfo>,
    /// Application payload.
    pub payload: P,
}

/// Commands an application can issue during a callback.
#[derive(Debug)]
pub enum AppCommand<P> {
    /// Transmit a packet via this host's access port.
    Send(SendSpec<P>),
    /// Request an [`Application::on_timer`] callback after `delay` carrying
    /// `token`.
    SetTimer {
        /// Delay from now.
        delay: SimDuration,
        /// Opaque token returned in the callback.
        token: u64,
    },
}

/// The command buffer handed to application callbacks.
pub struct AppCtx<P> {
    now: SimTime,
    host: NodeId,
    commands: Vec<AppCommand<P>>,
}

impl<P> AppCtx<P> {
    /// Create a context for a callback at `now` on `host`. Exposed so that
    /// transport/application unit tests can drive state machines directly.
    pub fn new(now: SimTime, host: NodeId) -> Self {
        Self::with_buffer(now, host, Vec::new())
    }

    /// Create a context that records commands into a recycled buffer. The
    /// network threads one buffer through every callback so steady-state
    /// dispatch allocates nothing.
    pub fn with_buffer(now: SimTime, host: NodeId, commands: Vec<AppCommand<P>>) -> Self {
        debug_assert!(commands.is_empty());
        AppCtx {
            now,
            host,
            commands,
        }
    }

    /// Current virtual time.
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// The host this application is attached to.
    pub fn host(&self) -> NodeId {
        self.host
    }

    /// Queue a packet for transmission.
    pub fn send(&mut self, spec: SendSpec<P>) {
        self.commands.push(AppCommand::Send(spec));
    }

    /// Request a timer callback after `delay` carrying `token`.
    pub fn set_timer(&mut self, delay: SimDuration, token: u64) {
        self.commands.push(AppCommand::SetTimer { delay, token });
    }

    /// Drain accumulated commands (consumed by the network after the
    /// callback returns).
    pub fn take_commands(&mut self) -> Vec<AppCommand<P>> {
        std::mem::take(&mut self.commands)
    }

    /// Number of buffered commands (test helper).
    pub fn pending_commands(&self) -> usize {
        self.commands.len()
    }
}

/// An event-driven application attached to a host.
pub trait Application<P> {
    /// Called once when the simulation starts (or at the host's configured
    /// start time).
    fn on_start(&mut self, ctx: &mut AppCtx<P>);

    /// Called when a packet addressed to this host is fully received.
    fn on_packet(&mut self, ctx: &mut AppCtx<P>, pkt: Packet<P>);

    /// Called when a timer set via [`AppCtx::set_timer`] fires.
    fn on_timer(&mut self, ctx: &mut AppCtx<P>, token: u64);
}

/// A keepable handle to an application owned by the network via
/// [`Shared`]: read (or mutate) the application's state from outside the
/// simulation, typically after the run finishes.
///
/// The handle is an `Arc<Mutex<…>>` so a `Shared` application can ride a
/// network domain onto a worker thread in the sharded engine. The lock is
/// uncontended by construction — the network never re-enters an
/// application (commands are buffered), and experiment code reads handles
/// only after the run — so [`Handle::borrow`] keeps the ergonomics (and
/// call sites) of the `Rc<RefCell<…>>` it replaced.
pub struct Handle<T>(std::sync::Arc<std::sync::Mutex<T>>);

impl<T> Handle<T> {
    /// Lock and borrow the application state.
    ///
    /// # Panics
    /// Panics if the mutex is poisoned (an application callback panicked
    /// on another thread — the run is already lost at that point).
    pub fn borrow(&self) -> std::sync::MutexGuard<'_, T> {
        self.0.lock().expect("application state poisoned")
    }
}

impl<T> Clone for Handle<T> {
    fn clone(&self) -> Self {
        Handle(self.0.clone())
    }
}

/// A delegating adapter that lets the experiment code keep a [`Handle`] to
/// an application after handing it to the network: build the application
/// with [`Shared::new`], give the network the `Shared`, and read the
/// handle's state back once the run finishes.
pub struct Shared<T>(std::sync::Arc<std::sync::Mutex<T>>);

impl<T> Shared<T> {
    /// Wrap a freshly built application, returning the keepable handle and
    /// the boxed adapter in one step.
    pub fn new(app: T) -> (Handle<T>, Shared<T>) {
        let arc = std::sync::Arc::new(std::sync::Mutex::new(app));
        (Handle(arc.clone()), Shared(arc))
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, T> {
        self.0.lock().expect("application state poisoned")
    }
}

impl<P, T: Application<P>> Application<P> for Shared<T> {
    fn on_start(&mut self, ctx: &mut AppCtx<P>) {
        self.lock().on_start(ctx);
    }
    fn on_packet(&mut self, ctx: &mut AppCtx<P>, pkt: Packet<P>) {
        self.lock().on_packet(ctx, pkt);
    }
    fn on_timer(&mut self, ctx: &mut AppCtx<P>, token: u64) {
        self.lock().on_timer(ctx, token);
    }
}

/// An application that ignores everything (placeholder for pure sink hosts
/// whose statistics are collected by the network itself).
#[derive(Debug, Default)]
pub struct NullApp;

impl<P> Application<P> for NullApp {
    fn on_start(&mut self, _ctx: &mut AppCtx<P>) {}
    fn on_packet(&mut self, _ctx: &mut AppCtx<P>, _pkt: Packet<P>) {}
    fn on_timer(&mut self, _ctx: &mut AppCtx<P>, _token: u64) {}
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ctx_buffers_commands_in_order() {
        let mut ctx: AppCtx<()> = AppCtx::new(SimTime::from_secs(1), NodeId(3));
        assert_eq!(ctx.now(), SimTime::from_secs(1));
        assert_eq!(ctx.host(), NodeId(3));
        ctx.set_timer(SimDuration::from_millis(10), 42);
        ctx.send(SendSpec {
            dst: NodeId(9),
            flow: FlowId(1),
            size: 500,
            dscp: Dscp::BEST_EFFORT,
            proto: Proto::Udp,
            fragment: None,
            payload: (),
        });
        assert_eq!(ctx.pending_commands(), 2);
        let cmds = ctx.take_commands();
        assert_eq!(cmds.len(), 2);
        assert!(matches!(cmds[0], AppCommand::SetTimer { token: 42, .. }));
        assert!(matches!(&cmds[1], AppCommand::Send(s) if s.dst == NodeId(9)));
        assert_eq!(ctx.pending_commands(), 0);
    }
}
