//! Cross-traffic generators and sinks.
//!
//! The paper's wide-area experiments ran against uncontrolled Internet2
//! background traffic, and a few local experiments added interfering
//! cross-traffic explicitly. These applications reproduce that: constant
//! bit rate, Poisson, and on-off (bursty) sources plus a counting sink.
//! All randomness comes from a seeded [`SimRng`], so "background Internet
//! load" is exactly reproducible.

use dsv_sim::{SimDuration, SimRng, SimTime};

use crate::app::{AppCtx, Application, SendSpec};
use crate::packet::{Dscp, FlowId, NodeId, Packet, Proto};

/// Constant-bit-rate source: fixed-size packets at a fixed interval.
pub struct CbrSource {
    /// Destination host.
    pub dst: NodeId,
    /// Flow label.
    pub flow: FlowId,
    /// Packet size in bytes.
    pub packet_size: u32,
    /// Target rate in bits per second.
    pub rate_bps: u64,
    /// DSCP marking.
    pub dscp: Dscp,
    /// Stop sending at this time (packets strictly before).
    pub stop_at: SimTime,
}

impl CbrSource {
    fn interval(&self) -> SimDuration {
        SimDuration::for_bytes_at_bps(self.packet_size as u64, self.rate_bps)
    }

    fn emit<P: Default>(&self, ctx: &mut AppCtx<P>) {
        ctx.send(SendSpec {
            dst: self.dst,
            flow: self.flow,
            size: self.packet_size,
            dscp: self.dscp,
            proto: Proto::Udp,
            fragment: None,
            payload: P::default(),
        });
    }
}

impl<P: Default> Application<P> for CbrSource {
    fn on_start(&mut self, ctx: &mut AppCtx<P>) {
        if ctx.now() < self.stop_at {
            self.emit(ctx);
            ctx.set_timer(self.interval(), 0);
        }
    }

    fn on_packet(&mut self, _ctx: &mut AppCtx<P>, _pkt: Packet<P>) {}

    fn on_timer(&mut self, ctx: &mut AppCtx<P>, _token: u64) {
        if ctx.now() < self.stop_at {
            self.emit(ctx);
            ctx.set_timer(self.interval(), 0);
        }
    }
}

/// Poisson source: fixed-size packets with exponential inter-arrivals.
pub struct PoissonSource {
    /// Destination host.
    pub dst: NodeId,
    /// Flow label.
    pub flow: FlowId,
    /// Packet size in bytes.
    pub packet_size: u32,
    /// Mean rate in bits per second.
    pub mean_rate_bps: u64,
    /// DSCP marking.
    pub dscp: Dscp,
    /// Stop time.
    pub stop_at: SimTime,
    /// Seeded generator for inter-arrival draws.
    pub rng: SimRng,
}

impl PoissonSource {
    fn next_gap(&mut self) -> SimDuration {
        let mean = SimDuration::for_bytes_at_bps(self.packet_size as u64, self.mean_rate_bps)
            .as_secs_f64();
        SimDuration::from_secs_f64(self.rng.exponential(mean))
    }
}

impl<P: Default> Application<P> for PoissonSource {
    fn on_start(&mut self, ctx: &mut AppCtx<P>) {
        let gap = self.next_gap();
        ctx.set_timer(gap, 0);
    }

    fn on_packet(&mut self, _ctx: &mut AppCtx<P>, _pkt: Packet<P>) {}

    fn on_timer(&mut self, ctx: &mut AppCtx<P>, _token: u64) {
        if ctx.now() >= self.stop_at {
            return;
        }
        ctx.send(SendSpec {
            dst: self.dst,
            flow: self.flow,
            size: self.packet_size,
            dscp: self.dscp,
            proto: Proto::Udp,
            fragment: None,
            payload: P::default(),
        });
        let gap = self.next_gap();
        ctx.set_timer(gap, 0);
    }
}

/// On-off source: exponentially distributed ON periods during which it sends
/// CBR at `peak_rate_bps`, separated by exponentially distributed OFF
/// periods. Aggregates of such sources are the classic bursty-background
/// model.
pub struct OnOffSource {
    /// Destination host.
    pub dst: NodeId,
    /// Flow label.
    pub flow: FlowId,
    /// Packet size in bytes.
    pub packet_size: u32,
    /// Send rate while ON, bits per second.
    pub peak_rate_bps: u64,
    /// Mean ON duration.
    pub mean_on: SimDuration,
    /// Mean OFF duration.
    pub mean_off: SimDuration,
    /// DSCP marking.
    pub dscp: Dscp,
    /// Stop time.
    pub stop_at: SimTime,
    /// Seeded generator.
    pub rng: SimRng,
    on_until: SimTime,
}

/// Timer tokens for [`OnOffSource`].
const TOK_SEND: u64 = 0;
const TOK_START_ON: u64 = 1;

impl OnOffSource {
    /// Construct with the burst state initialised to OFF.
    #[allow(clippy::too_many_arguments)]
    pub fn new(
        dst: NodeId,
        flow: FlowId,
        packet_size: u32,
        peak_rate_bps: u64,
        mean_on: SimDuration,
        mean_off: SimDuration,
        dscp: Dscp,
        stop_at: SimTime,
        rng: SimRng,
    ) -> Self {
        OnOffSource {
            dst,
            flow,
            packet_size,
            peak_rate_bps,
            mean_on,
            mean_off,
            dscp,
            stop_at,
            rng,
            on_until: SimTime::ZERO,
        }
    }

    fn schedule_on<P>(&mut self, ctx: &mut AppCtx<P>) {
        let off = self.rng.exponential(self.mean_off.as_secs_f64());
        ctx.set_timer(SimDuration::from_secs_f64(off), TOK_START_ON);
    }

    fn send_interval(&self) -> SimDuration {
        SimDuration::for_bytes_at_bps(self.packet_size as u64, self.peak_rate_bps)
    }
}

impl<P: Default> Application<P> for OnOffSource {
    fn on_start(&mut self, ctx: &mut AppCtx<P>) {
        self.schedule_on(ctx);
    }

    fn on_packet(&mut self, _ctx: &mut AppCtx<P>, _pkt: Packet<P>) {}

    fn on_timer(&mut self, ctx: &mut AppCtx<P>, token: u64) {
        if ctx.now() >= self.stop_at {
            return;
        }
        match token {
            TOK_START_ON => {
                let on = self.rng.exponential(self.mean_on.as_secs_f64());
                self.on_until = ctx.now() + SimDuration::from_secs_f64(on);
                ctx.set_timer(SimDuration::ZERO, TOK_SEND);
            }
            TOK_SEND => {
                if ctx.now() < self.on_until {
                    ctx.send(SendSpec {
                        dst: self.dst,
                        flow: self.flow,
                        size: self.packet_size,
                        dscp: self.dscp,
                        proto: Proto::Udp,
                        fragment: None,
                        payload: P::default(),
                    });
                    ctx.set_timer(self.send_interval(), TOK_SEND);
                } else {
                    self.schedule_on(ctx);
                }
            }
            _ => unreachable!("unknown timer token {token}"),
        }
    }
}

/// A sink that counts what it receives (delivery stats also accumulate in
/// [`crate::stats::NetStats`]; the sink's own counter is occasionally
/// convenient in unit tests).
#[derive(Debug, Default)]
pub struct CountingSink {
    /// Packets received.
    pub packets: u64,
    /// Bytes received.
    pub bytes: u64,
}

impl<P> Application<P> for CountingSink {
    fn on_start(&mut self, _ctx: &mut AppCtx<P>) {}
    fn on_packet(&mut self, _ctx: &mut AppCtx<P>, pkt: Packet<P>) {
        self.packets += 1;
        self.bytes += pkt.size as u64;
    }
    fn on_timer(&mut self, _ctx: &mut AppCtx<P>, _token: u64) {}
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::link::Link;
    use crate::network::{NetworkBuilder, Simulation};

    fn run_source(app: Box<dyn Application<()> + Send>) -> crate::stats::FlowCounters {
        let mut b = NetworkBuilder::new();
        let rx = b.add_host("rx", Box::new(CountingSink::default()));
        let r = b.add_router("r");
        let tx = b.add_host("tx", app);
        b.connect(tx, r, Link::fast_ethernet());
        b.connect(r, rx, Link::fast_ethernet());
        let mut sim = Simulation::new(b.build());
        sim.run();
        sim.net.stats.flow(FlowId(5))
    }

    #[test]
    fn cbr_rate_is_exact() {
        // 1 Mbps of 500-B packets for 2 s = 500 packets.
        let c = run_source(Box::new(CbrSource {
            dst: NodeId(0),
            flow: FlowId(5),
            packet_size: 500,
            rate_bps: 1_000_000,
            dscp: Dscp::BEST_EFFORT,
            stop_at: SimTime::from_secs(2),
        }));
        assert_eq!(c.tx_packets, 500);
        assert_eq!(c.rx_packets, 500);
    }

    #[test]
    fn poisson_rate_is_approximate() {
        let c = run_source(Box::new(PoissonSource {
            dst: NodeId(0),
            flow: FlowId(5),
            packet_size: 500,
            mean_rate_bps: 1_000_000,
            dscp: Dscp::BEST_EFFORT,
            stop_at: SimTime::from_secs(10),
            rng: SimRng::seed_from_u64(11),
        }));
        // 10 s at 250 pkt/s mean = 2500 expected; allow ±10 %.
        assert!(
            (2250..=2750).contains(&c.tx_packets),
            "sent {}",
            c.tx_packets
        );
    }

    #[test]
    fn onoff_duty_cycle_scales_rate() {
        let c = run_source(Box::new(OnOffSource::new(
            NodeId(0),
            FlowId(5),
            500,
            2_000_000,
            SimDuration::from_millis(100),
            SimDuration::from_millis(100),
            Dscp::BEST_EFFORT,
            SimTime::from_secs(20),
            SimRng::seed_from_u64(3),
        )));
        // 50 % duty cycle at 2 Mbps ≈ 1 Mbps ⇒ ~250 pkt/s × 20 s = 5000.
        // On/off boundaries are random; allow a generous band.
        assert!(
            (3500..=6500).contains(&c.tx_packets),
            "sent {}",
            c.tx_packets
        );
    }

    #[test]
    fn sources_are_deterministic() {
        let mk = || {
            run_source(Box::new(PoissonSource {
                dst: NodeId(0),
                flow: FlowId(5),
                packet_size: 500,
                mean_rate_bps: 500_000,
                dscp: Dscp::BEST_EFFORT,
                stop_at: SimTime::from_secs(3),
                rng: SimRng::seed_from_u64(99),
            }))
        };
        assert_eq!(mk().tx_packets, mk().tx_packets);
    }
}
