//! A generational slab for in-flight packets.
//!
//! Every hop a packet takes used to allocate: the network boxed the packet
//! into its `Arrive` event and freed the box on delivery. [`PacketPool`]
//! replaces that traffic with slot recycling — a packet entering the wire
//! is `insert`ed into the pool and the event carries only a small
//! [`PacketRef`]; the arrival handler `take`s it back out, returning the
//! slot to a free list. Steady-state forwarding performs **zero** heap
//! allocations regardless of how many packets are in flight.
//!
//! Refs are *generational*: each slot carries a generation counter bumped
//! on every `take`, and a [`PacketRef`] only resolves against the
//! generation it was issued for. A stale or duplicated ref (an event bug —
//! e.g. an `Arrive` dispatched twice) panics immediately instead of
//! silently delivering some other packet that happens to occupy the slot.
//!
//! The generation counter does **not** wrap: a slot whose counter reaches
//! `u32::MAX` is retired (never returned to the free list), so no two
//! refs to the same slot are ever issued with the same generation — even
//! across the 2^32 recycle cycles a long sharded run can accumulate. The
//! cost is one leaked slot per 2^32 takes, which is unreachable as a
//! memory concern long before it is reachable as a correctness one.

use crate::packet::Packet;

/// A small, `Copy` handle to a packet parked in a [`PacketPool`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PacketRef {
    idx: u32,
    gen: u32,
}

struct Slot<P> {
    gen: u32,
    pkt: Option<Packet<P>>,
}

/// Generational slab holding packets between transmission and arrival.
pub struct PacketPool<P> {
    slots: Vec<Slot<P>>,
    free: Vec<u32>,
    live: usize,
    high_water: usize,
}

impl<P> PacketPool<P> {
    /// An empty pool.
    pub fn new() -> Self {
        Self::with_capacity(0)
    }

    /// An empty pool with room for `cap` in-flight packets before the
    /// backing storage reallocates.
    pub fn with_capacity(cap: usize) -> Self {
        PacketPool {
            slots: Vec::with_capacity(cap),
            free: Vec::with_capacity(cap),
            live: 0,
            high_water: 0,
        }
    }

    /// Park a packet, returning the handle that retrieves it.
    pub fn insert(&mut self, pkt: Packet<P>) -> PacketRef {
        self.live += 1;
        if self.live > self.high_water {
            self.high_water = self.live;
        }
        match self.free.pop() {
            Some(idx) => {
                let slot = &mut self.slots[idx as usize];
                debug_assert!(slot.pkt.is_none());
                slot.pkt = Some(pkt);
                PacketRef { idx, gen: slot.gen }
            }
            None => {
                let idx = u32::try_from(self.slots.len()).expect("pool capacity");
                self.slots.push(Slot {
                    gen: 0,
                    pkt: Some(pkt),
                });
                PacketRef { idx, gen: 0 }
            }
        }
    }

    /// Retrieve a parked packet, freeing its slot.
    ///
    /// # Panics
    /// Panics if `r` is stale (its slot was already taken) — that means an
    /// event was duplicated or delivered out of its lifecycle.
    pub fn take(&mut self, r: PacketRef) -> Packet<P> {
        let slot = &mut self.slots[r.idx as usize];
        assert_eq!(
            slot.gen, r.gen,
            "stale PacketRef: slot {} is at generation {}, ref was issued for {}",
            r.idx, slot.gen, r.gen
        );
        let pkt = slot.pkt.take().expect("live generation implies a packet");
        // Never wrap the generation: refs are only issued for generations
        // `< u32::MAX`, so retiring the slot at the ceiling guarantees a
        // stale ref can never collide with a later one (aliasing after
        // 2^32 recycles of one slot). The retired slot is simply not
        // returned to the free list.
        slot.gen += 1;
        if slot.gen < u32::MAX {
            self.free.push(r.idx);
        }
        self.live -= 1;
        pkt
    }

    /// Borrow a parked packet mutably without freeing its slot — the
    /// router pass-through path inspects (and may re-mark) a packet while
    /// it stays parked for its next hop.
    ///
    /// # Panics
    /// Panics if `r` is stale, exactly like [`PacketPool::take`].
    pub fn get_mut(&mut self, r: PacketRef) -> &mut Packet<P> {
        let slot = &mut self.slots[r.idx as usize];
        assert_eq!(
            slot.gen, r.gen,
            "stale PacketRef: slot {} is at generation {}, ref was issued for {}",
            r.idx, slot.gen, r.gen
        );
        slot.pkt.as_mut().expect("live generation implies a packet")
    }

    /// Packets currently parked.
    pub fn live(&self) -> usize {
        self.live
    }

    /// Peak number of simultaneously parked packets — the in-flight
    /// high-water mark that sizes [`PacketPool::with_capacity`].
    pub fn high_water(&self) -> usize {
        self.high_water
    }

    /// Fold another pool's peak into this one's high-water mark — used
    /// when per-domain pools are merged back after a sharded run so the
    /// profile report reflects the true in-flight peak.
    pub(crate) fn absorb_high_water(&mut self, peak: usize) {
        if peak > self.high_water {
            self.high_water = peak;
        }
    }

    /// Test hook: age a slot's generation counter to `gen`, returning the
    /// ref re-issued for that generation, so tests can force the retire
    /// path without 2^32 real recycles.
    #[cfg(test)]
    fn force_generation(&mut self, r: PacketRef, gen: u32) -> PacketRef {
        let slot = &mut self.slots[r.idx as usize];
        assert_eq!(slot.gen, r.gen, "can only age a live, current ref");
        slot.gen = gen;
        PacketRef { idx: r.idx, gen }
    }
}

impl<P> Default for PacketPool<P> {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::packet::{Dscp, FlowId, NodeId, PacketId, Proto};
    use dsv_sim::SimTime;

    fn pkt(id: u64) -> Packet<u32> {
        Packet {
            id: PacketId(id),
            flow: FlowId(1),
            src: NodeId(0),
            dst: NodeId(1),
            size: 1500,
            dscp: Dscp::BEST_EFFORT,
            proto: Proto::Udp,
            fragment: None,
            sent_at: SimTime::ZERO,
            payload: id as u32,
        }
    }

    #[test]
    fn roundtrips_and_recycles_slots() {
        let mut pool = PacketPool::new();
        let a = pool.insert(pkt(1));
        let b = pool.insert(pkt(2));
        assert_eq!(pool.live(), 2);
        assert_eq!(pool.take(a).id, PacketId(1));
        // The freed slot is reused for the next insert...
        let c = pool.insert(pkt(3));
        assert_eq!(pool.live(), 2);
        assert_eq!(pool.high_water(), 2);
        assert_eq!(pool.take(c).id, PacketId(3));
        assert_eq!(pool.take(b).id, PacketId(2));
        assert_eq!(pool.live(), 0);
    }

    #[test]
    #[should_panic(expected = "stale PacketRef")]
    fn stale_ref_panics() {
        let mut pool = PacketPool::new();
        let a = pool.insert(pkt(1));
        pool.take(a);
        pool.insert(pkt(2)); // reuses the slot under a new generation
        pool.take(a); // the old handle must not resolve
    }

    /// Forcing a slot's generation to the ceiling must retire it: the
    /// slot is never handed out again, so a ref from before the "wrap"
    /// can never alias a later packet.
    #[test]
    fn generation_ceiling_retires_slot_instead_of_wrapping() {
        let mut pool = PacketPool::new();
        let a = pool.insert(pkt(1));
        // Age the slot to one take away from the ceiling.
        let a = pool.force_generation(a, u32::MAX - 1);
        assert_eq!(pool.take(a).id, PacketId(1));
        // The slot hit u32::MAX and was retired: the next insert must use
        // a fresh slot rather than recycling it at a wrapped generation.
        let b = pool.insert(pkt(2));
        assert_eq!(pool.live(), 1);
        let taken = pool.take(b);
        assert_eq!(taken.id, PacketId(2));
        // With the old wrapping behaviour, `a` (gen MAX-1) could
        // eventually alias a recycled slot whose counter wrapped back to
        // MAX-1. Now the retired slot's counter is pinned at MAX, which
        // no issued ref ever carries.
        let stale = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            let mut p = pool;
            p.take(a)
        }));
        assert!(stale.is_err(), "stale ref into a retired slot must panic");
    }

    #[test]
    fn high_water_tracks_peak() {
        let mut pool = PacketPool::new();
        let refs: Vec<_> = (0..10).map(|i| pool.insert(pkt(i))).collect();
        for r in refs {
            pool.take(r);
        }
        pool.insert(pkt(99));
        assert_eq!(pool.high_water(), 10);
        assert_eq!(pool.live(), 1);
    }
}
