//! Frame-Relay interface profiles (paper Table 1).
//!
//! The local testbed's routers were interconnected by Frame Relay over HSSI
//! and V.35 serial interfaces, each configured with a Committed Information
//! Rate (CIR), Committed Burst size (Bc) and Excess Burst size (Be). The
//! paper states the configuration's purpose plainly: *"The main purpose of
//! the configurations used was to emulate a set of constant rate links
//! connecting the different routers."* With Be = 0 and Bc = CIR·1s, a FR
//! interface behaves as a constant-rate serial link at CIR, which is exactly
//! how we realize it — a [`Link`] whose rate is the CIR.
//!
//! The V.35 interface caps out at E1 speed (2.048 Mbps); it was "the main
//! bandwidth bottleneck of the system" and the reason the local experiments
//! could not push token rates above ≈2 Mbps.

use dsv_sim::SimDuration;

use crate::link::Link;

/// Physical interface type of a Frame-Relay circuit.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FrInterfaceType {
    /// High-Speed Serial Interface (up to 52 Mbps).
    Hssi,
    /// V.35 serial (up to E1 = 2.048 Mbps).
    V35,
}

impl FrInterfaceType {
    /// Maximum line rate supported by the interface hardware, bits/s.
    pub const fn max_rate_bps(self) -> u64 {
        match self {
            FrInterfaceType::Hssi => 52_000_000,
            FrInterfaceType::V35 => 2_048_000,
        }
    }
}

/// One row of the paper's Table 1.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FrameRelayProfile {
    /// Committed Information Rate, bits per second.
    pub cir_bps: u64,
    /// Committed burst size, bits per Tc window.
    pub bc_bits: u64,
    /// Excess burst size, bits per Tc window.
    pub be_bits: u64,
    /// Physical interface.
    pub interface: FrInterfaceType,
}

impl FrameRelayProfile {
    /// Validate and build a profile.
    ///
    /// # Panics
    /// Panics if CIR exceeds the interface's line rate — the same
    /// configuration error a real router would reject.
    pub fn new(cir_bps: u64, bc_bits: u64, be_bits: u64, interface: FrInterfaceType) -> Self {
        assert!(
            cir_bps <= interface.max_rate_bps(),
            "CIR {cir_bps} exceeds {interface:?} line rate"
        );
        FrameRelayProfile {
            cir_bps,
            bc_bits,
            be_bits,
            interface,
        }
    }

    /// The committed-rate measurement window Tc = Bc / CIR.
    pub fn tc(&self) -> SimDuration {
        SimDuration::from_secs_f64(self.bc_bits as f64 / self.cir_bps as f64)
    }

    /// Realize the circuit as a constant-rate link (Be = 0 ⇒ no excess
    /// traffic is ever admitted, so the circuit is exactly a CIR-rate pipe).
    pub fn as_link(&self, propagation: SimDuration) -> Link {
        Link::new(self.cir_bps, propagation)
    }
}

/// Table 1 of the paper: all three interfaces use CIR = Bc = 2·10⁶, Be = 0.
pub mod table1 {
    use super::*;

    /// Router 1, interface FR 0 (V.35).
    pub fn router1_fr0() -> FrameRelayProfile {
        FrameRelayProfile::new(2_000_000, 2_000_000, 0, FrInterfaceType::V35)
    }

    /// Router 2, interface FR 1 (HSSI).
    pub fn router2_fr1() -> FrameRelayProfile {
        FrameRelayProfile::new(2_000_000, 2_000_000, 0, FrInterfaceType::Hssi)
    }

    /// Router 3, interface FR 0 (V.35).
    pub fn router3_fr0() -> FrameRelayProfile {
        FrameRelayProfile::new(2_000_000, 2_000_000, 0, FrInterfaceType::V35)
    }

    /// All rows in table order: (router, interface name, profile).
    pub fn all() -> Vec<(u8, &'static str, FrameRelayProfile)> {
        vec![
            (1, "FR 0", router1_fr0()),
            (2, "FR 1", router2_fr1()),
            (3, "FR 0", router3_fr0()),
        ]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table1_rows() {
        let rows = table1::all();
        assert_eq!(rows.len(), 3);
        for (_, _, p) in &rows {
            assert_eq!(p.cir_bps, 2_000_000);
            assert_eq!(p.bc_bits, 2_000_000);
            assert_eq!(p.be_bits, 0);
            assert_eq!(p.tc(), SimDuration::from_secs(1));
        }
        assert_eq!(rows[0].2.interface, FrInterfaceType::V35);
        assert_eq!(rows[1].2.interface, FrInterfaceType::Hssi);
    }

    #[test]
    fn cir_below_line_rate() {
        // All Table 1 CIRs are below the V.35 E1 cap, as the paper notes.
        assert!(2_000_000 < FrInterfaceType::V35.max_rate_bps());
    }

    #[test]
    #[should_panic(expected = "exceeds")]
    fn cir_above_line_rate_rejected() {
        FrameRelayProfile::new(10_000_000, 10_000_000, 0, FrInterfaceType::V35);
    }

    #[test]
    fn link_realization() {
        let p = table1::router1_fr0();
        let link = p.as_link(SimDuration::from_micros(50));
        assert_eq!(link.rate_bps, 2_000_000);
        // 1500 B at 2 Mbps = 6 ms serialization.
        assert_eq!(link.serialization(1500), SimDuration::from_millis(6));
    }
}
