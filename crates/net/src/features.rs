//! Streaming per-flow feature extraction on the delivery path.
//!
//! The QoE proxy path (DESIGN.md §12) replaces per-frame VQM scoring with
//! a regression over flow-level signals, which means the receiver must
//! measure those signals **as packets arrive** — the same observer shape
//! as [`crate::audit`]: ride the event path, keep O(1) state, never
//! retain packets or frames. [`FeatureExtractor`] is that observer; its
//! [`finish`](FeatureExtractor::finish) snapshot is the [`FlowFeatures`]
//! record the estimators consume.
//!
//! Everything here is a pure function of the per-flow delivery sequence
//! `(seq, bytes, arrival, delay)`, which the engine guarantees is
//! identical across event-queue backends, shard counts and cluster
//! modes — so extracted features inherit the simulator's byte-identity
//! contract (pinned by the `qoe_features` proptest suite).

use dsv_sim::{SimDuration, SimTime};
use serde::{Deserialize, Serialize};

/// Width of one throughput-measurement window (500 ms): long enough to
/// smooth per-packet pacing, short enough that a policer-induced outage
/// shows up as zero-throughput windows.
pub const THROUGHPUT_WINDOW: SimDuration = SimDuration::from_millis(500);

/// Flow-level features of one delivery session, accumulated without
/// retaining any per-packet or per-frame state. All derived quantities
/// are computed once, in [`FeatureExtractor::finish`], in a fixed order.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct FlowFeatures {
    /// Media packets delivered (sequence-tracked and untracked).
    pub packets: u64,
    /// Media bytes delivered.
    pub bytes: u64,
    /// The flow's nominal media rate, bps (0 when unknown): the
    /// normalizer for throughput-deficit features.
    pub target_bps: u64,
    /// Packets inferred lost from sequence gaps (late arrivals subtract).
    pub lost_packets: u64,
    /// `lost / (delivered + lost)` over sequence-tracked packets.
    pub loss_fraction: f64,
    /// Number of distinct loss runs (maximal sequence gaps).
    pub loss_runs: u64,
    /// Length of the longest loss run, packets.
    pub max_burst_loss: u64,
    /// Mean loss-run length, packets (0 with no losses).
    pub mean_burst_loss: f64,
    /// Packets that arrived after a higher sequence number.
    pub reordered: u64,
    /// Overall delivered throughput, bps (bytes over first→last arrival).
    pub mean_throughput_bps: f64,
    /// Coefficient of variation of per-window throughput over complete
    /// [`THROUGHPUT_WINDOW`]s (0 with fewer than two windows).
    pub throughput_cv: f64,
    /// Mean packet inter-arrival time, ms.
    pub mean_interarrival_ms: f64,
    /// RFC 3550-style smoothed inter-arrival jitter, ms.
    pub jitter_ms: f64,
    /// Mean one-way delay of delivered packets, ms.
    pub mean_delay_ms: f64,
    /// First→last arrival span, ms.
    pub duration_ms: f64,
}

impl FlowFeatures {
    /// Canonical byte serialization — the identity the determinism suite
    /// compares across engine configurations, and the hash input for
    /// deterministic `sampled:<k>` flow selection (field order is the
    /// declaration order, floats print exactly).
    pub fn canonical_bytes(&self) -> String {
        serde_json::to_string(self).expect("features serialize")
    }
}

/// O(1)-state streaming accumulator for [`FlowFeatures`].
///
/// Feed one [`observe`](FeatureExtractor::observe) per delivered packet;
/// pass the transport sequence number when the transport exposes one
/// (UDP media chunks), or `None` for byte-stream transports whose
/// retransmissions hide network loss from the application (mini-TCP) —
/// those flows still get throughput/jitter/delay features, with the loss
/// block zeroed.
#[derive(Debug, Clone)]
pub struct FeatureExtractor {
    target_bps: u64,
    packets: u64,
    bytes: u64,
    /// Next expected sequence number, once the first tracked packet lands.
    next_seq: Option<u64>,
    seq_packets: u64,
    lost: u64,
    loss_runs: u64,
    max_burst: u64,
    burst_sum: u64,
    reordered: u64,
    first_arrival: Option<SimTime>,
    last_arrival: Option<SimTime>,
    delay_sum: SimDuration,
    prev_delay: Option<SimDuration>,
    /// RFC 3550 §6.4.1 smoothed jitter estimate, nanoseconds.
    jitter_ns: f64,
    /// Index of the open throughput window and the bytes landed in it.
    window_index: u64,
    window_bytes: u64,
    /// Closed-window statistics: count, Σbytes, Σbytes².
    windows: u64,
    win_sum: f64,
    win_sumsq: f64,
}

impl FeatureExtractor {
    /// A fresh extractor for a flow with the given nominal media rate.
    pub fn new(target_bps: u64) -> FeatureExtractor {
        FeatureExtractor {
            target_bps,
            packets: 0,
            bytes: 0,
            next_seq: None,
            seq_packets: 0,
            lost: 0,
            loss_runs: 0,
            max_burst: 0,
            burst_sum: 0,
            reordered: 0,
            first_arrival: None,
            last_arrival: None,
            delay_sum: SimDuration::ZERO,
            prev_delay: None,
            jitter_ns: 0.0,
            window_index: 0,
            window_bytes: 0,
            windows: 0,
            win_sum: 0.0,
            win_sumsq: 0.0,
        }
    }

    /// Record one delivered packet: arrival time, transport sequence
    /// number (if the transport exposes one), wire size, and one-way
    /// delay.
    pub fn observe(&mut self, now: SimTime, seq: Option<u64>, bytes: u32, delay: SimDuration) {
        self.packets += 1;
        self.bytes += bytes as u64;
        if self.first_arrival.is_none() {
            self.first_arrival = Some(now);
        }
        self.last_arrival = Some(now);
        self.delay_sum += delay;

        // RFC 3550 jitter: D = delay_i - delay_{i-1} (transit-time
        // difference), J += (|D| - J) / 16.
        if let Some(prev) = self.prev_delay {
            let d = (delay.as_nanos() as f64 - prev.as_nanos() as f64).abs();
            self.jitter_ns += (d - self.jitter_ns) / 16.0;
        }
        self.prev_delay = Some(delay);

        // Throughput windows, indexed from the first arrival so the
        // session-setup idle time never reads as an outage. Windows the
        // flow skipped entirely close as zero-throughput windows.
        let base = self.first_arrival.expect("set above");
        let w = now.saturating_since(base).as_nanos() / THROUGHPUT_WINDOW.as_nanos();
        while self.window_index < w {
            self.close_window();
        }
        self.window_bytes += bytes as u64;

        if let Some(seq) = seq {
            self.seq_packets += 1;
            match self.next_seq {
                None => self.next_seq = Some(seq + 1),
                Some(expected) if seq == expected => self.next_seq = Some(seq + 1),
                Some(expected) if seq > expected => {
                    let gap = seq - expected;
                    self.lost += gap;
                    self.loss_runs += 1;
                    self.burst_sum += gap;
                    self.max_burst = self.max_burst.max(gap);
                    self.next_seq = Some(seq + 1);
                }
                Some(_) => {
                    // A sequence number below the expectation: the packet
                    // was counted into a gap when its successors arrived.
                    // Take one loss back; the run statistics keep the
                    // original gap (reordering, not recovery, is the
                    // signal there).
                    self.reordered += 1;
                    self.lost = self.lost.saturating_sub(1);
                }
            }
        }
    }

    fn close_window(&mut self) {
        let b = self.window_bytes as f64;
        self.windows += 1;
        self.win_sum += b;
        self.win_sumsq += b * b;
        self.window_bytes = 0;
        self.window_index += 1;
    }

    /// Snapshot the accumulated state into a [`FlowFeatures`] record.
    /// The open (partial) throughput window is excluded from the CV so
    /// the feature does not depend on where the horizon cut the session.
    pub fn finish(&self) -> FlowFeatures {
        let duration = match (self.first_arrival, self.last_arrival) {
            (Some(f), Some(l)) => l.saturating_since(f),
            _ => SimDuration::ZERO,
        };
        let duration_secs = duration.as_secs_f64();
        let expected = self.seq_packets + self.lost;
        let loss_fraction = if expected == 0 {
            0.0
        } else {
            self.lost as f64 / expected as f64
        };
        let mean_burst_loss = if self.loss_runs == 0 {
            0.0
        } else {
            self.burst_sum as f64 / self.loss_runs as f64
        };
        let mean_throughput_bps = if duration_secs > 0.0 {
            self.bytes as f64 * 8.0 / duration_secs
        } else {
            0.0
        };
        let throughput_cv = if self.windows >= 2 {
            let n = self.windows as f64;
            let mean = self.win_sum / n;
            let var = (self.win_sumsq / n - mean * mean).max(0.0);
            if mean > 0.0 {
                var.sqrt() / mean
            } else {
                0.0
            }
        } else {
            0.0
        };
        let mean_interarrival_ms = if self.packets >= 2 {
            duration.as_millis_f64() / (self.packets - 1) as f64
        } else {
            0.0
        };
        let mean_delay_ms = if self.packets == 0 {
            0.0
        } else {
            (self.delay_sum / self.packets).as_millis_f64()
        };
        FlowFeatures {
            packets: self.packets,
            bytes: self.bytes,
            target_bps: self.target_bps,
            lost_packets: self.lost,
            loss_fraction,
            loss_runs: self.loss_runs,
            max_burst_loss: self.max_burst,
            mean_burst_loss,
            reordered: self.reordered,
            mean_throughput_bps,
            throughput_cv,
            mean_interarrival_ms,
            jitter_ms: self.jitter_ns / 1e6,
            mean_delay_ms,
            duration_ms: duration.as_millis_f64(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ms(m: u64) -> SimTime {
        SimTime::from_millis(m)
    }

    #[test]
    fn empty_flow_has_finite_zero_features() {
        let f = FeatureExtractor::new(1_000_000).finish();
        assert_eq!(f.packets, 0);
        assert_eq!(f.loss_fraction, 0.0);
        assert_eq!(f.mean_throughput_bps, 0.0);
        assert_eq!(f.duration_ms, 0.0);
        assert!(f.canonical_bytes().contains("\"target_bps\":1000000"));
    }

    #[test]
    fn contiguous_delivery_sees_no_loss() {
        let mut e = FeatureExtractor::new(800_000);
        for s in 0..100u64 {
            e.observe(ms(10 * s), Some(s), 1000, SimDuration::from_millis(5));
        }
        let f = e.finish();
        assert_eq!(f.packets, 100);
        assert_eq!(f.lost_packets, 0);
        assert_eq!(f.loss_runs, 0);
        assert_eq!(f.reordered, 0);
        assert!((f.loss_fraction).abs() < 1e-12);
        // 100 kB over 990 ms.
        assert!((f.mean_throughput_bps - 100_000.0 * 8.0 / 0.99).abs() < 1.0);
        assert!((f.mean_interarrival_ms - 10.0).abs() < 1e-9);
        assert_eq!(f.jitter_ms, 0.0, "constant delay has zero jitter");
        assert!((f.mean_delay_ms - 5.0).abs() < 1e-12);
    }

    #[test]
    fn gaps_become_loss_runs() {
        let mut e = FeatureExtractor::new(0);
        // Deliver 0,1, skip 2-4, deliver 5, skip 6, deliver 7.
        for &s in &[0u64, 1, 5, 7] {
            e.observe(ms(s), Some(s), 100, SimDuration::ZERO);
        }
        let f = e.finish();
        assert_eq!(f.lost_packets, 4);
        assert_eq!(f.loss_runs, 2);
        assert_eq!(f.max_burst_loss, 3);
        assert!((f.mean_burst_loss - 2.0).abs() < 1e-12);
        assert!((f.loss_fraction - 4.0 / 8.0).abs() < 1e-12);
    }

    #[test]
    fn late_arrival_is_reordering_not_loss() {
        let mut e = FeatureExtractor::new(0);
        for &s in &[0u64, 2, 1, 3] {
            e.observe(ms(s), Some(s), 100, SimDuration::ZERO);
        }
        let f = e.finish();
        assert_eq!(f.reordered, 1);
        assert_eq!(f.lost_packets, 0, "the late packet repays its gap");
        assert_eq!(f.loss_runs, 1, "the transient gap still counts as a run");
    }

    #[test]
    fn jitter_tracks_delay_variation() {
        let mut e = FeatureExtractor::new(0);
        for s in 0..64u64 {
            let delay = SimDuration::from_millis(if s % 2 == 0 { 5 } else { 15 });
            e.observe(ms(10 * s), Some(s), 500, delay);
        }
        let f = e.finish();
        // |D| = 10 ms every packet: J converges toward 10 ms.
        assert!(f.jitter_ms > 8.0 && f.jitter_ms <= 10.0, "{}", f.jitter_ms);
    }

    #[test]
    fn outage_inflates_throughput_cv() {
        let steady = {
            let mut e = FeatureExtractor::new(0);
            for s in 0..600u64 {
                e.observe(ms(10 * s), Some(s), 1000, SimDuration::ZERO);
            }
            e.finish()
        };
        let bursty = {
            let mut e = FeatureExtractor::new(0);
            // Same byte count, but all traffic bunched into every fourth
            // 500 ms window (s spans 0..6 s like the steady flow).
            for s in 0..600u64 {
                let t = (s / 25) * 2000 + (s % 25) * 20;
                e.observe(SimTime::from_millis(t), Some(s), 1000, SimDuration::ZERO);
            }
            e.finish()
        };
        assert!(steady.throughput_cv < 0.05, "{}", steady.throughput_cv);
        assert!(
            bursty.throughput_cv > steady.throughput_cv + 0.5,
            "bursty {} vs steady {}",
            bursty.throughput_cv,
            steady.throughput_cv
        );
    }

    #[test]
    fn untracked_packets_skip_the_loss_block() {
        let mut e = FeatureExtractor::new(1_000_000);
        for s in 0..10u64 {
            e.observe(ms(100 * s), None, 1448, SimDuration::from_millis(2));
        }
        let f = e.finish();
        assert_eq!(f.packets, 10);
        assert_eq!(f.loss_fraction, 0.0);
        assert_eq!(f.loss_runs, 0);
        assert!(f.mean_throughput_bps > 0.0);
    }

    #[test]
    fn canonical_bytes_round_trip() {
        let mut e = FeatureExtractor::new(1_500_000);
        for &s in &[0u64, 1, 4, 5, 3] {
            e.observe(ms(7 * s + 1), Some(s), 1200, SimDuration::from_micros(1500));
        }
        let f = e.finish();
        let bytes = f.canonical_bytes();
        let back: FlowFeatures = serde_json::from_str(&bytes).expect("parses");
        assert_eq!(back, f);
        assert_eq!(back.canonical_bytes(), bytes);
    }
}
