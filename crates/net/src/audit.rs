//! In-simulation audit oracles: online invariant checking for every run.
//!
//! The workspace's regression story leans on byte-identical `results/*.json`
//! goldens, which silently re-bless a bug the moment they are regenerated.
//! [`SimAudit`] is the complementary defence: an observer compiled in under
//! `--features audit` (and armed at run time by `DSV_AUDIT=1` or
//! [`set_enabled_for_process`]) that taps the network's packet lifecycle and
//! verifies, *while the simulation runs*, properties that must hold under
//! any refactor of the hot path:
//!
//! * **causality** — event delivery times never go backwards;
//! * **packet conservation** — per flow and per node, every packet sent is
//!   eventually delivered, dropped, or still physically somewhere (on the
//!   wire in the [`crate::pool::PacketPool`], in a port queue, or held by a
//!   conditioner); nothing is leaked and nothing is delivered twice;
//! * **FIFO** — per (node, port, flow) transmit order and per-flow delivery
//!   order follow send order (packet ids are issued monotonically);
//! * **payload integrity** — a packet's size never changes in flight;
//! * **token-bucket conformance** — at every registered policer, cumulative
//!   admitted traffic respects the analytic bound
//!   `admitted_bytes · 8 ≤ depth_bytes · 8 + rate_bps · t` at all times.
//!
//! Violations are collected (capped) rather than panicking at the hook
//! site, so fault-injection self-tests can assert that a *specific* class
//! of corruption is caught; production runners call
//! [`AuditReport::assert_clean`] to turn any violation into a loud failure.
//!
//! When the `audit` feature is compiled out, none of this module exists and
//! the network carries zero extra state or branches.

use std::collections::HashMap;

use dsv_sim::SimTime;

pub use dsv_sim::audit::{runtime_enabled, set_enabled_for_process};

use crate::packet::{FlowId, NodeId, PacketId, PortId};

/// Cap on *recorded* violation messages (all violations are still counted).
const MAX_RECORDED: usize = 32;

/// Nanoseconds per second — the token-bucket integer scale.
const NANOS_PER_SEC: u128 = 1_000_000_000;

#[derive(Debug, Default, Clone, Copy)]
struct FlowAudit {
    sent: u64,
    delivered: u64,
    dropped: u64,
}

#[derive(Debug, Default, Clone, Copy)]
struct NodeAudit {
    /// Packets fully received at this node (`Arrive` events).
    arrivals: u64,
    /// Packets originated here by an application send.
    generated: u64,
    /// Packets put on the wire out of one of this node's ports.
    transmits: u64,
    /// Packets accounted as dropped at this node.
    drops: u64,
    /// Packets delivered to this node's application.
    delivered: u64,
}

/// An analytic token-bucket admission bound registered for one policer.
#[derive(Debug, Clone)]
struct ConformanceBound {
    node: NodeId,
    flow: FlowId,
    rate_bps: u64,
    depth_bytes: u32,
    admitted_bytes: u64,
}

/// A delivery or drop observed in a domain whose ledger never saw the
/// matching send (it happened in another domain). Recorded instead of a
/// violation and reconciled by [`SimAudit::resolve_foreign`] once every
/// domain ledger has been merged.
#[derive(Debug)]
struct ForeignEvent {
    flow: u32,
    id: u64,
    size: u32,
    node: u32,
    /// What happened: `"delivered"` or `"dropped"`.
    kind: &'static str,
}

/// The audit observer. One per [`crate::network::Network`]; see module docs.
pub struct SimAudit {
    enabled: bool,
    last_event: SimTime,
    events: u64,
    checks: u64,
    total_violations: u64,
    violations: Vec<String>,
    flows: Vec<(FlowId, FlowAudit)>,
    nodes: Vec<NodeAudit>,
    /// Sent-but-not-yet-delivered/dropped packets: (flow, id) → size.
    /// Packet ids are issued per flow, so the flow belongs in the key.
    outstanding: HashMap<(u32, u64), u32>,
    /// Last packet id transmitted per (node, port, flow).
    port_last_tx: HashMap<(u32, u16, u32), u64>,
    /// Last packet id delivered per flow.
    flow_last_rx: Vec<(FlowId, u64)>,
    bounds: Vec<ConformanceBound>,
    /// Sharded-run mode: a terminal lifecycle event with no matching send
    /// in *this* ledger goes to `foreign` instead of the violation log.
    distributed: bool,
    foreign: Vec<ForeignEvent>,
    finished: bool,
}

impl SimAudit {
    /// A new observer for a network of `node_count` nodes, armed iff the
    /// process-level audit switch ([`runtime_enabled`]) is on.
    pub fn new(node_count: usize) -> Self {
        SimAudit {
            enabled: runtime_enabled(),
            last_event: SimTime::ZERO,
            events: 0,
            checks: 0,
            total_violations: 0,
            violations: Vec::new(),
            flows: Vec::new(),
            nodes: vec![NodeAudit::default(); node_count],
            outstanding: HashMap::new(),
            port_last_tx: HashMap::new(),
            flow_last_rx: Vec::new(),
            bounds: Vec::new(),
            distributed: false,
            foreign: Vec::new(),
            finished: false,
        }
    }

    /// Arm the observer regardless of `DSV_AUDIT` (self-tests).
    pub fn enable(&mut self) {
        self.enabled = true;
    }

    /// Disarm the observer.
    pub fn disable(&mut self) {
        self.enabled = false;
    }

    /// Whether hooks are currently recording.
    pub fn enabled(&self) -> bool {
        self.enabled
    }

    /// Register the analytic admission bound of a policer: traffic of
    /// `flow` transmitted out of `node` must satisfy
    /// `admitted_bytes · 8 ≤ depth_bytes · 8 + rate_bps · t` at all times
    /// (the token bucket starts full at `t = 0`).
    ///
    /// The check runs at *transmit* time, which is at or after the policing
    /// decision — later only loosens the bound, so a conformant policer can
    /// never trip it, while an over-admitting one (or a skewed clock feeding
    /// it) must.
    pub fn register_conformance_bound(
        &mut self,
        node: NodeId,
        flow: FlowId,
        rate_bps: u64,
        depth_bytes: u32,
    ) {
        self.bounds.push(ConformanceBound {
            node,
            flow,
            rate_bps,
            depth_bytes,
            admitted_bytes: 0,
        });
    }

    fn violation(&mut self, msg: String) {
        self.total_violations += 1;
        if self.violations.len() < MAX_RECORDED {
            self.violations.push(msg);
        }
    }

    fn flow_entry(&mut self, flow: FlowId) -> &mut FlowAudit {
        if let Some(i) = self.flows.iter().position(|(f, _)| *f == flow) {
            return &mut self.flows[i].1;
        }
        self.flows.push((flow, FlowAudit::default()));
        &mut self.flows.last_mut().expect("just pushed").1
    }

    /// An event is being dispatched to the network at `now`.
    pub(crate) fn on_event(&mut self, now: SimTime) {
        if !self.enabled {
            return;
        }
        self.events += 1;
        if now < self.last_event {
            let last = self.last_event;
            self.violation(format!(
                "causality: event at {now:?} dispatched after {last:?}"
            ));
        }
        self.last_event = now;
    }

    /// An application originated a packet at `node`.
    pub(crate) fn on_sent(&mut self, flow: FlowId, id: PacketId, size: u32, node: NodeId) {
        if !self.enabled {
            return;
        }
        self.checks += 1;
        self.flow_entry(flow).sent += 1;
        self.nodes[node.0 as usize].generated += 1;
        if self.outstanding.insert((flow.0, id.0), size).is_some() {
            self.violation(format!(
                "conservation: flow {} packet id {} sent twice",
                flow.0, id.0
            ));
        }
    }

    /// A packet fully arrived at `node` (router or host).
    pub(crate) fn on_arrive(&mut self, node: NodeId) {
        if !self.enabled {
            return;
        }
        self.nodes[node.0 as usize].arrivals += 1;
    }

    /// A packet was put on the wire out of `node`'s `port`.
    pub(crate) fn on_transmit(
        &mut self,
        now: SimTime,
        node: NodeId,
        port: PortId,
        flow: FlowId,
        id: PacketId,
        size: u32,
    ) {
        if !self.enabled {
            return;
        }
        self.checks += 1;
        self.nodes[node.0 as usize].transmits += 1;

        // In-flight integrity: the size must match what was sent. (In a
        // sharded run a packet sent in another domain is absent from this
        // ledger and the check is skipped at intermediate hops; the
        // terminal delivery/drop still verifies the size end to end.)
        if let Some(&sent_size) = self.outstanding.get(&(flow.0, id.0)) {
            if sent_size != size {
                self.violation(format!(
                    "integrity: packet {} size changed in flight ({} -> {} bytes at node {})",
                    id.0, sent_size, size, node.0
                ));
            }
        }

        // Per-(node, port, flow) FIFO: ids are issued in send order, so the
        // sequence leaving any single port for one flow must be increasing.
        let key = (node.0, port.0, flow.0);
        if let Some(&last) = self.port_last_tx.get(&key) {
            if id.0 <= last {
                self.violation(format!(
                    "fifo: node {} port {} flow {} transmitted packet {} after {}",
                    node.0, port.0, flow.0, id.0, last
                ));
            }
        }
        self.port_last_tx.insert(key, id.0);

        // Token-bucket conformance for registered policer egresses.
        let mut pending: Option<String> = None;
        for b in &mut self.bounds {
            if b.node == node && b.flow == flow {
                b.admitted_bytes += u64::from(size);
                let admitted_bits = u128::from(b.admitted_bytes) * 8 * NANOS_PER_SEC;
                let budget_bits = u128::from(b.depth_bytes) * 8 * NANOS_PER_SEC
                    + u128::from(b.rate_bps) * u128::from(now.as_nanos());
                if admitted_bits > budget_bits {
                    pending = Some(format!(
                        "conformance: node {} flow {} admitted {} bytes by {:?}, \
                         exceeding depth {} B + rate {} bps bound",
                        node.0, flow.0, b.admitted_bytes, now, b.depth_bytes, b.rate_bps
                    ));
                }
            }
        }
        if let Some(msg) = pending {
            self.violation(msg);
        }
    }

    /// A packet reached its destination application at `node`.
    pub(crate) fn on_delivered(&mut self, flow: FlowId, id: PacketId, size: u32, node: NodeId) {
        if !self.enabled {
            return;
        }
        self.checks += 1;
        self.nodes[node.0 as usize].delivered += 1;
        self.flow_entry(flow).delivered += 1;

        match self.outstanding.remove(&(flow.0, id.0)) {
            None if self.distributed => self.foreign.push(ForeignEvent {
                flow: flow.0,
                id: id.0,
                size,
                node: node.0,
                kind: "delivered",
            }),
            None => self.violation(format!(
                "conservation: packet {} delivered at node {} but never sent, \
                 or delivered twice",
                id.0, node.0
            )),
            Some(sent_size) if sent_size != size => self.violation(format!(
                "integrity: packet {} delivered with size {} B, sent with {} B",
                id.0, size, sent_size
            )),
            Some(_) => {}
        }

        // Per-flow delivery FIFO.
        if let Some(i) = self.flow_last_rx.iter().position(|(f, _)| *f == flow) {
            let last = self.flow_last_rx[i].1;
            if id.0 <= last {
                self.violation(format!(
                    "fifo: flow {} delivered packet {} after {}",
                    flow.0, id.0, last
                ));
            }
            self.flow_last_rx[i].1 = id.0;
        } else {
            self.flow_last_rx.push((flow, id.0));
        }
    }

    /// A packet was accounted as dropped at `node`.
    pub(crate) fn on_dropped(&mut self, flow: FlowId, id: PacketId, size: u32, node: NodeId) {
        if !self.enabled {
            return;
        }
        self.checks += 1;
        self.nodes[node.0 as usize].drops += 1;
        self.flow_entry(flow).dropped += 1;
        match self.outstanding.remove(&(flow.0, id.0)) {
            None if self.distributed => self.foreign.push(ForeignEvent {
                flow: flow.0,
                id: id.0,
                size,
                node: node.0,
                kind: "dropped",
            }),
            None => self.violation(format!(
                "conservation: packet {} dropped at node {} but never sent, \
                 or already accounted",
                id.0, node.0
            )),
            Some(sent_size) if sent_size != size => self.violation(format!(
                "integrity: packet {} dropped with size {} B, sent with {} B",
                id.0, size, sent_size
            )),
            Some(_) => {}
        }
    }

    /// End-of-run conservation closure. `pool_live` is the number of
    /// packets parked in the in-flight pool; `held[i]` is the number of
    /// packets physically held at node `i` (port queues + conditioner).
    pub(crate) fn finish(&mut self, pool_live: usize, held: &[u64]) {
        if !self.enabled {
            return;
        }
        self.finished = true;

        // Per node: everything that entered (arrived or was generated)
        // either left (transmit), terminated (delivered / dropped), or is
        // still held here.
        for (i, n) in self.nodes.clone().iter().enumerate() {
            let inflow = n.arrivals + n.generated;
            let outflow = n.transmits + n.drops + n.delivered + held[i];
            if inflow != outflow {
                self.violation(format!(
                    "conservation: node {i} saw {inflow} packets in \
                     (arrivals {} + generated {}) but {outflow} out \
                     (transmits {} + drops {} + delivered {} + held {})",
                    n.arrivals, n.generated, n.transmits, n.drops, n.delivered, held[i]
                ));
            }
        }

        // Per flow: sent = delivered + dropped + in-flight.
        let mut inflight: Vec<(FlowId, u64)> = Vec::new();
        for &(flow, _) in self.outstanding.keys() {
            let flow = FlowId(flow);
            match inflight.iter_mut().find(|(f, _)| *f == flow) {
                Some((_, n)) => *n += 1,
                None => inflight.push((flow, 1)),
            }
        }
        for (flow, f) in self.flows.clone() {
            let still = inflight
                .iter()
                .find(|(g, _)| *g == flow)
                .map_or(0, |&(_, n)| n);
            if f.sent != f.delivered + f.dropped + still {
                self.violation(format!(
                    "conservation: flow {} sent {} != delivered {} + dropped {} \
                     + in-flight {}",
                    flow.0, f.sent, f.delivered, f.dropped, still
                ));
            }
        }

        // Globally: every unaccounted packet must be physically somewhere —
        // parked in the pool (on the wire) or held at a node. A leak (a
        // conditioner that swallowed a packet, a double-free that vacated a
        // slot) breaks this equation.
        let held_total: u64 = held.iter().sum();
        let outstanding = self.outstanding.len() as u64;
        if outstanding != pool_live as u64 + held_total {
            self.violation(format!(
                "conservation: {outstanding} packets unaccounted but only \
                 {pool_live} on the wire + {held_total} held at nodes"
            ));
        }
    }

    /// A domain observer for the sharded engine: same arming and the same
    /// registered bounds (with zeroed admission counters), flagged as
    /// *distributed* so a delivery or drop whose send happened in another
    /// domain is deferred for [`SimAudit::resolve_foreign`] instead of
    /// being misreported as a conservation violation. Every per-packet
    /// oracle stays exact inside the domain: a flow's sends all happen at
    /// one node, its deliveries at one node, and each port lives in
    /// exactly one domain.
    pub(crate) fn fork_domain(&self) -> SimAudit {
        SimAudit {
            enabled: self.enabled,
            last_event: SimTime::ZERO,
            events: 0,
            checks: 0,
            total_violations: 0,
            violations: Vec::new(),
            flows: Vec::new(),
            nodes: vec![NodeAudit::default(); self.nodes.len()],
            outstanding: HashMap::new(),
            port_last_tx: HashMap::new(),
            flow_last_rx: Vec::new(),
            bounds: self
                .bounds
                .iter()
                .map(|b| ConformanceBound {
                    admitted_bytes: 0,
                    ..b.clone()
                })
                .collect(),
            distributed: true,
            foreign: Vec::new(),
            finished: false,
        }
    }

    /// Fold a domain ledger into this one after a sharded run. Counters
    /// sum; the outstanding sets union (a collision is a genuine
    /// double-send); per-port transmit cursors are disjoint across
    /// domains and simply move over; conformance counters sum into the
    /// matching registered bound. Cross-domain lifecycle stitching is
    /// deferred to [`SimAudit::resolve_foreign`].
    pub(crate) fn merge_from(&mut self, other: SimAudit) {
        if !self.enabled {
            return;
        }
        self.events += other.events;
        self.checks += other.checks;
        self.total_violations += other.total_violations;
        for v in other.violations {
            if self.violations.len() < MAX_RECORDED {
                self.violations.push(v);
            }
        }
        self.last_event = self.last_event.max(other.last_event);
        for (mine, theirs) in self.nodes.iter_mut().zip(other.nodes.iter()) {
            mine.arrivals += theirs.arrivals;
            mine.generated += theirs.generated;
            mine.transmits += theirs.transmits;
            mine.drops += theirs.drops;
            mine.delivered += theirs.delivered;
        }
        for (flow, theirs) in other.flows {
            let mine = self.flow_entry(flow);
            mine.sent += theirs.sent;
            mine.delivered += theirs.delivered;
            mine.dropped += theirs.dropped;
        }
        for (key, size) in other.outstanding {
            if self.outstanding.insert(key, size).is_some() {
                self.violation(format!(
                    "conservation: flow {} packet id {} sent twice",
                    key.0, key.1
                ));
            }
        }
        self.port_last_tx.extend(other.port_last_tx);
        for (flow, last) in other.flow_last_rx {
            match self.flow_last_rx.iter_mut().find(|(f, _)| *f == flow) {
                Some((_, mine)) => *mine = (*mine).max(last),
                None => self.flow_last_rx.push((flow, last)),
            }
        }
        for b in other.bounds {
            if let Some(mine) = self.bounds.iter_mut().find(|m| {
                m.node == b.node
                    && m.flow == b.flow
                    && m.rate_bps == b.rate_bps
                    && m.depth_bytes == b.depth_bytes
            }) {
                mine.admitted_bytes += b.admitted_bytes;
            }
        }
        self.foreign.extend(other.foreign);
    }

    /// Reconcile the terminal lifecycle events whose send was observed in
    /// a different domain. Must run once, after every domain ledger has
    /// been merged; afterwards the observer is back in single-ledger mode
    /// and [`SimAudit::finish`] closes conservation exactly as a serial
    /// run would.
    pub(crate) fn resolve_foreign(&mut self) {
        if !self.enabled {
            self.foreign.clear();
            self.distributed = false;
            return;
        }
        let foreign = std::mem::take(&mut self.foreign);
        for f in foreign {
            self.checks += 1;
            match self.outstanding.remove(&(f.flow, f.id)) {
                None => self.violation(format!(
                    "conservation: flow {} packet {} {} at node {} but never sent, \
                     or accounted twice",
                    f.flow, f.id, f.kind, f.node
                )),
                Some(sent_size) if sent_size != f.size => self.violation(format!(
                    "integrity: flow {} packet {} {} with size {} B, sent with {} B",
                    f.flow, f.id, f.kind, f.size, sent_size
                )),
                Some(_) => {}
            }
        }
        self.distributed = false;
    }

    /// Snapshot the audit outcome.
    pub fn report(&self) -> AuditReport {
        AuditReport {
            enabled: self.enabled,
            events: self.events,
            checks: self.checks,
            total_violations: self.total_violations,
            violations: self.violations.clone(),
            finished: self.finished,
        }
    }
}

/// Outcome of an audited run (see [`SimAudit::report`]).
#[derive(Debug, Clone)]
pub struct AuditReport {
    /// Whether the observer was armed (if false, nothing was checked).
    pub enabled: bool,
    /// Events observed by the causality oracle.
    pub events: u64,
    /// Lifecycle hook invocations checked.
    pub checks: u64,
    /// Total violations detected (including ones beyond the recording cap).
    pub total_violations: u64,
    /// First few violation messages, for diagnostics.
    pub violations: Vec<String>,
    /// Whether end-of-run conservation closure ran.
    pub finished: bool,
}

impl AuditReport {
    /// Panic with every recorded violation if any invariant was broken.
    pub fn assert_clean(&self, label: &str) {
        assert!(
            self.total_violations == 0,
            "audit: {} violation(s) in {label}:\n  {}",
            self.total_violations,
            self.violations.join("\n  ")
        );
    }

    /// True if any violation message contains `needle` — self-tests use
    /// this to pin a fault class to the oracle that must catch it.
    pub fn has_violation_matching(&self, needle: &str) -> bool {
        self.violations.iter().any(|v| v.contains(needle))
    }
}
