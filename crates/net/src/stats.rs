//! Measurement: per-flow counters, drop accounting, delay statistics, and
//! optional packet-level traces.
//!
//! The paper's analysis needs three observables from the network: how many
//! packets a flow lost and *where* (the EF policer vs. queue overflow), the
//! one-way delay distribution of delivered packets, and — for Figure 6 — a
//! time series of bytes leaving the source. [`NetStats`] collects all three
//! with O(1) per-packet cost; full traces are opt-in per flow.

use std::collections::HashMap;

use dsv_sim::{SimDuration, SimTime};

use crate::histogram::DurationHistogram;
use crate::packet::{DropReason, FlowId, NodeId, PacketId};

/// Running summary of a sequence of durations.
#[derive(Debug, Clone, Copy, Default)]
pub struct DelaySummary {
    /// Number of samples.
    pub count: u64,
    /// Sum of all samples (for the mean).
    sum_ns: u128,
    /// Smallest sample.
    pub min: SimDuration,
    /// Largest sample.
    pub max: SimDuration,
}

impl DelaySummary {
    /// Record one sample.
    pub fn record(&mut self, d: SimDuration) {
        if self.count == 0 {
            self.min = d;
            self.max = d;
        } else {
            self.min = self.min.min(d);
            self.max = self.max.max(d);
        }
        self.count += 1;
        self.sum_ns += d.as_nanos() as u128;
    }

    /// Fold another summary's samples into this one, as if every sample
    /// had been recorded here.
    pub fn merge(&mut self, other: &DelaySummary) {
        if other.count == 0 {
            return;
        }
        if self.count == 0 {
            *self = *other;
            return;
        }
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
        self.count += other.count;
        self.sum_ns += other.sum_ns;
    }

    /// Mean of the recorded samples, or zero if none.
    pub fn mean(&self) -> SimDuration {
        if self.count == 0 {
            SimDuration::ZERO
        } else {
            SimDuration::from_nanos((self.sum_ns / self.count as u128) as u64)
        }
    }
}

/// Per-flow counters.
#[derive(Debug, Clone, Default)]
pub struct FlowCounters {
    /// Packets handed to the network by the source application.
    pub tx_packets: u64,
    /// Bytes handed to the network by the source application.
    pub tx_bytes: u64,
    /// Packets delivered to the destination application.
    pub rx_packets: u64,
    /// Bytes delivered to the destination application.
    pub rx_bytes: u64,
    /// Drops by reason.
    pub drops: HashMap<DropReason, u64>,
    /// One-way delay of delivered packets.
    pub delay: DelaySummary,
    /// Full delay distribution (log-scale buckets) for jitter analysis.
    pub delay_hist: DurationHistogram,
}

impl FlowCounters {
    /// Total packets dropped for any reason.
    pub fn total_drops(&self) -> u64 {
        self.drops.values().sum()
    }

    /// Drops attributed to one reason.
    pub fn drops_for(&self, reason: DropReason) -> u64 {
        self.drops.get(&reason).copied().unwrap_or(0)
    }

    /// Fraction of transmitted packets that were lost (0 if nothing sent).
    pub fn loss_fraction(&self) -> f64 {
        if self.tx_packets == 0 {
            0.0
        } else {
            1.0 - self.rx_packets as f64 / self.tx_packets as f64
        }
    }

    /// Mean throughput over `span` based on delivered bytes.
    pub fn goodput_bps(&self, span: SimDuration) -> f64 {
        if span.is_zero() {
            0.0
        } else {
            self.rx_bytes as f64 * 8.0 / span.as_secs_f64()
        }
    }
}

/// One entry of an opt-in packet trace.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TraceEntry {
    /// When the event occurred.
    pub at: SimTime,
    /// The packet involved.
    pub packet: PacketId,
    /// Wire size in bytes.
    pub size: u32,
    /// What happened.
    pub kind: TraceKind,
    /// Where it happened.
    pub node: NodeId,
}

/// Trace event kinds.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TraceKind {
    /// Source application handed the packet to the network.
    Sent,
    /// Destination application received the packet.
    Delivered,
    /// The packet was discarded.
    Dropped(DropReason),
}

/// Workspace-wide network statistics collector.
#[derive(Debug, Default)]
pub struct NetStats {
    /// A simulation tracks a handful of flows, and the counters are
    /// touched for every packet event: a linear scan over a small vector
    /// is cheaper than hashing the flow id each time (and gives the
    /// [`flows`](NetStats::flows) iterator first-seen order for free).
    flows: Vec<(FlowId, FlowCounters)>,
    traced: HashMap<FlowId, Vec<TraceEntry>>,
    /// Fast path: skip the trace-table probe entirely when no flow is
    /// traced (the common case for sweep runs).
    tracing: bool,
}

impl NetStats {
    /// Create an empty collector.
    pub fn new() -> Self {
        Self::default()
    }

    /// Enable full per-packet tracing for `flow` (needed by rate-series
    /// figures; costs memory proportional to packet count).
    pub fn trace_flow(&mut self, flow: FlowId) {
        self.traced.entry(flow).or_default();
        self.tracing = true;
    }

    fn flow_mut(&mut self, flow: FlowId) -> &mut FlowCounters {
        match self.flows.iter().position(|(f, _)| *f == flow) {
            Some(i) => &mut self.flows[i].1,
            None => {
                self.flows.push((flow, FlowCounters::default()));
                &mut self.flows.last_mut().expect("just pushed").1
            }
        }
    }

    /// Record a transmission by the source application.
    pub fn on_sent(
        &mut self,
        at: SimTime,
        flow: FlowId,
        packet: PacketId,
        size: u32,
        node: NodeId,
    ) {
        let c = self.flow_mut(flow);
        c.tx_packets += 1;
        c.tx_bytes += size as u64;
        self.trace(
            flow,
            TraceEntry {
                at,
                packet,
                size,
                kind: TraceKind::Sent,
                node,
            },
        );
    }

    /// Record a delivery to the destination application.
    pub fn on_delivered(
        &mut self,
        at: SimTime,
        flow: FlowId,
        packet: PacketId,
        size: u32,
        node: NodeId,
        delay: SimDuration,
    ) {
        let c = self.flow_mut(flow);
        c.rx_packets += 1;
        c.rx_bytes += size as u64;
        c.delay.record(delay);
        c.delay_hist.record(delay);
        self.trace(
            flow,
            TraceEntry {
                at,
                packet,
                size,
                kind: TraceKind::Delivered,
                node,
            },
        );
    }

    /// Record a drop.
    pub fn on_dropped(
        &mut self,
        at: SimTime,
        flow: FlowId,
        packet: PacketId,
        size: u32,
        node: NodeId,
        reason: DropReason,
    ) {
        let c = self.flow_mut(flow);
        *c.drops.entry(reason).or_insert(0) += 1;
        self.trace(
            flow,
            TraceEntry {
                at,
                packet,
                size,
                kind: TraceKind::Dropped(reason),
                node,
            },
        );
    }

    fn trace(&mut self, flow: FlowId, entry: TraceEntry) {
        if !self.tracing {
            return;
        }
        if let Some(log) = self.traced.get_mut(&flow) {
            log.push(entry);
        }
    }

    /// A fresh collector carrying over only the *registrations* — which
    /// flows are traced — so a per-domain collector observes its share of
    /// a sharded run under the same configuration as the main one. No
    /// counter or trace state is copied (the split happens before any
    /// event is dispatched).
    pub(crate) fn fork_registrations(&self) -> NetStats {
        NetStats {
            flows: Vec::new(),
            traced: self.traced.keys().map(|&f| (f, Vec::new())).collect(),
            tracing: self.tracing,
        }
    }

    /// Fold a domain collector's observations into this one after a
    /// sharded run. Counters sum; traces merge by timestamp with ties
    /// keeping this collector's entries first (domains are absorbed in
    /// domain order, so the result is ordered by `(at, domain)` — a flow's
    /// packets are all observed within one domain per node, making the
    /// per-node subsequences identical to a serial run's).
    pub(crate) fn merge_from(&mut self, other: NetStats) {
        for (flow, theirs) in other.flows {
            let mine = self.flow_mut(flow);
            mine.tx_packets += theirs.tx_packets;
            mine.tx_bytes += theirs.tx_bytes;
            mine.rx_packets += theirs.rx_packets;
            mine.rx_bytes += theirs.rx_bytes;
            for (reason, n) in theirs.drops {
                *mine.drops.entry(reason).or_insert(0) += n;
            }
            mine.delay.merge(&theirs.delay);
            mine.delay_hist.merge(&theirs.delay_hist);
        }
        for (flow, entries) in other.traced {
            self.tracing = true;
            let log = self.traced.entry(flow).or_default();
            if log.is_empty() {
                *log = entries;
            } else if !entries.is_empty() {
                let mine = std::mem::take(log);
                let mut a = mine.into_iter().peekable();
                let mut b = entries.into_iter().peekable();
                while let (Some(x), Some(y)) = (a.peek(), b.peek()) {
                    if y.at < x.at {
                        log.push(b.next().expect("peeked"));
                    } else {
                        log.push(a.next().expect("peeked"));
                    }
                }
                log.extend(a);
                log.extend(b);
            }
        }
    }

    /// Counters for one flow (zeroes if the flow never appeared).
    pub fn flow(&self, flow: FlowId) -> FlowCounters {
        self.flows
            .iter()
            .find(|(f, _)| *f == flow)
            .map(|(_, c)| c.clone())
            .unwrap_or_default()
    }

    /// All flows observed, in first-seen order.
    pub fn flows(&self) -> impl Iterator<Item = (&FlowId, &FlowCounters)> {
        self.flows.iter().map(|(f, c)| (f, c))
    }

    /// The trace for a flow, if tracing was enabled.
    pub fn trace_of(&self, flow: FlowId) -> Option<&[TraceEntry]> {
        self.traced.get(&flow).map(|v| v.as_slice())
    }

    /// Windowed send-rate series for a traced flow: bits per second of
    /// `Sent` events in consecutive windows of `window` length, from t=0.
    /// This regenerates Figure 6-style "instantaneous transmission rate"
    /// curves.
    pub fn send_rate_series(&self, flow: FlowId, window: SimDuration) -> Vec<(SimTime, f64)> {
        let Some(trace) = self.traced.get(&flow) else {
            return Vec::new();
        };
        assert!(!window.is_zero(), "window must be positive");
        let mut out: Vec<(SimTime, f64)> = Vec::new();
        let mut win_start = SimTime::ZERO;
        let mut bytes_in_win = 0u64;
        for e in trace {
            if e.kind != TraceKind::Sent {
                continue;
            }
            while e.at >= win_start + window {
                out.push((win_start, bytes_in_win as f64 * 8.0 / window.as_secs_f64()));
                win_start += window;
                bytes_in_win = 0;
            }
            bytes_in_win += e.size as u64;
        }
        out.push((win_start, bytes_in_win as f64 * 8.0 / window.as_secs_f64()));
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const F: FlowId = FlowId(1);
    const N: NodeId = NodeId(0);

    #[test]
    fn counters_accumulate() {
        let mut s = NetStats::new();
        s.on_sent(SimTime::ZERO, F, PacketId(1), 1000, N);
        s.on_sent(SimTime::ZERO, F, PacketId(2), 500, N);
        s.on_delivered(
            SimTime::from_millis(10),
            F,
            PacketId(1),
            1000,
            N,
            SimDuration::from_millis(10),
        );
        s.on_dropped(
            SimTime::from_millis(5),
            F,
            PacketId(2),
            500,
            N,
            DropReason::PolicerNonConformant,
        );
        let c = s.flow(F);
        assert_eq!(c.tx_packets, 2);
        assert_eq!(c.tx_bytes, 1500);
        assert_eq!(c.rx_packets, 1);
        assert_eq!(c.drops_for(DropReason::PolicerNonConformant), 1);
        assert_eq!(c.total_drops(), 1);
        assert!((c.loss_fraction() - 0.5).abs() < 1e-12);
        assert_eq!(c.delay.mean(), SimDuration::from_millis(10));
    }

    #[test]
    fn unknown_flow_is_zero() {
        let s = NetStats::new();
        let c = s.flow(FlowId(99));
        assert_eq!(c.tx_packets, 0);
        assert_eq!(c.loss_fraction(), 0.0);
    }

    #[test]
    fn delay_summary_min_max_mean() {
        let mut d = DelaySummary::default();
        d.record(SimDuration::from_millis(10));
        d.record(SimDuration::from_millis(30));
        d.record(SimDuration::from_millis(20));
        assert_eq!(d.min, SimDuration::from_millis(10));
        assert_eq!(d.max, SimDuration::from_millis(30));
        assert_eq!(d.mean(), SimDuration::from_millis(20));
        assert_eq!(d.count, 3);
    }

    #[test]
    fn tracing_is_opt_in() {
        let mut s = NetStats::new();
        s.on_sent(SimTime::ZERO, F, PacketId(1), 100, N);
        assert!(s.trace_of(F).is_none());
        s.trace_flow(FlowId(2));
        s.on_sent(SimTime::ZERO, FlowId(2), PacketId(2), 100, N);
        assert_eq!(s.trace_of(FlowId(2)).unwrap().len(), 1);
    }

    #[test]
    fn rate_series_windows() {
        let mut s = NetStats::new();
        s.trace_flow(F);
        // 1000 B at t=0.1s, 2000 B at t=0.15s, 500 B at t=1.2s.
        s.on_sent(SimTime::from_millis(100), F, PacketId(1), 1000, N);
        s.on_sent(SimTime::from_millis(150), F, PacketId(2), 2000, N);
        s.on_sent(SimTime::from_millis(1200), F, PacketId(3), 500, N);
        let series = s.send_rate_series(F, SimDuration::from_secs(1));
        assert_eq!(series.len(), 2);
        assert!((series[0].1 - 24_000.0).abs() < 1e-9); // 3000 B in 1 s
        assert!((series[1].1 - 4_000.0).abs() < 1e-9); // 500 B in 1 s
    }

    #[test]
    fn merge_matches_single_collector() {
        // Split the observations of `counters_accumulate` across two
        // collectors and merge: every aggregate must match a single
        // collector that saw everything.
        let mut whole = NetStats::new();
        whole.trace_flow(F);
        let mut a = whole.fork_registrations();
        let mut b = whole.fork_registrations();
        a.on_sent(SimTime::ZERO, F, PacketId(1), 1000, N);
        b.on_sent(SimTime::from_millis(1), F, PacketId(2), 500, N);
        a.on_delivered(
            SimTime::from_millis(10),
            F,
            PacketId(1),
            1000,
            N,
            SimDuration::from_millis(10),
        );
        b.on_dropped(
            SimTime::from_millis(5),
            F,
            PacketId(2),
            500,
            N,
            DropReason::PolicerNonConformant,
        );
        whole.merge_from(a);
        whole.merge_from(b);
        let c = whole.flow(F);
        assert_eq!(c.tx_packets, 2);
        assert_eq!(c.tx_bytes, 1500);
        assert_eq!(c.rx_packets, 1);
        assert_eq!(c.drops_for(DropReason::PolicerNonConformant), 1);
        assert_eq!(c.delay.mean(), SimDuration::from_millis(10));
        assert_eq!(c.delay_hist.count(), 1);
        // The merged trace is sorted by timestamp across both collectors.
        let trace = whole.trace_of(F).unwrap();
        let ats: Vec<_> = trace.iter().map(|e| e.at).collect();
        let mut sorted = ats.clone();
        sorted.sort();
        assert_eq!(ats, sorted);
        assert_eq!(trace.len(), 4);
    }

    #[test]
    fn goodput() {
        let c = FlowCounters {
            rx_bytes: 125_000, // 1 Mbit
            ..FlowCounters::default()
        };
        assert!((c.goodput_bps(SimDuration::from_secs(1)) - 1_000_000.0).abs() < 1e-9);
        assert_eq!(c.goodput_bps(SimDuration::ZERO), 0.0);
    }
}
