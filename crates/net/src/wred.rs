//! Weighted RED: the buffer-management side of the Assured Forwarding PHB.
//!
//! The paper's headline experiments use EF, but §2.1 describes the AF PHB
//! group — policers that "mark packets with different colors (DSCPs)
//! depending on their level of non-conformance" — and notes that the
//! authors' preliminary AF experiments were excluded because results "were
//! heavily dependent on the level of cross traffic". This queue is the
//! core-router half of AF: a single FIFO whose admission applies RED with
//! per-drop-precedence thresholds, so yellow/red packets are shed earlier
//! than green as the queue builds. Together with the srTCM in
//! `dsv-diffserv` it lets the AF experiments in `dsv-core` reproduce that
//! excluded-result sensitivity.
//!
//! Implementation notes: the average queue is an EWMA updated on every
//! enqueue attempt (the classic idle-time correction is omitted — under
//! the sustained loads of interest the queue is rarely idle, and the
//! simplification keeps the discipline free of wall-clock state).
//! Randomness is a seeded [`SimRng`], so WRED drops are reproducible.

use std::collections::VecDeque;

use dsv_sim::SimRng;

use crate::packet::{Dscp, Packet};
use crate::qdisc::Qdisc;

/// RED thresholds for one drop precedence.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct WredParams {
    /// Average queue size (bytes) below which nothing is dropped.
    pub min_bytes: f64,
    /// Average queue size at/above which everything of this precedence is
    /// dropped.
    pub max_bytes: f64,
    /// Drop probability as the average reaches `max_bytes`.
    pub max_p: f64,
}

impl WredParams {
    fn drop_probability(&self, avg: f64) -> f64 {
        if avg < self.min_bytes {
            0.0
        } else if avg >= self.max_bytes {
            1.0
        } else {
            self.max_p * (avg - self.min_bytes) / (self.max_bytes - self.min_bytes)
        }
    }
}

/// Drop precedence extracted from an AF DSCP (0 = green … 2 = red).
/// Non-AF packets are treated as green.
pub fn drop_precedence(dscp: Dscp) -> usize {
    let dp = (dscp.bits() >> 1) & 0x3;
    (dp as usize).saturating_sub(1).min(2)
}

/// A WRED-managed FIFO.
pub struct WredQueue<P> {
    q: VecDeque<Packet<P>>,
    bytes: u64,
    /// Hard byte cap (tail-drop backstop above RED).
    capacity_bytes: u64,
    avg: f64,
    /// EWMA weight for the average queue estimate.
    weight: f64,
    /// Per-precedence parameters (green, yellow, red).
    params: [WredParams; 3],
    rng: SimRng,
    /// Cumulative RED/tail drops per precedence (diagnostics).
    pub drops: [u64; 3],
}

impl<P> WredQueue<P> {
    /// Build with explicit parameters.
    pub fn new(capacity_bytes: u64, params: [WredParams; 3], seed: u64) -> Self {
        assert!(capacity_bytes > 0);
        for p in &params {
            assert!(p.min_bytes < p.max_bytes, "min must be below max");
            assert!((0.0..=1.0).contains(&p.max_p));
        }
        WredQueue {
            q: VecDeque::new(),
            bytes: 0,
            capacity_bytes,
            avg: 0.0,
            weight: 0.1,
            params,
            rng: SimRng::seed_from_u64(seed ^ 0x57ED_0000),
            drops: [0; 3],
        }
    }

    /// A standard three-color AF profile over a queue of `capacity_bytes`:
    /// green protected until 60 % average occupancy, yellow until 35 %,
    /// red until 15 %.
    pub fn af_default(capacity_bytes: u64, seed: u64) -> Self {
        let c = capacity_bytes as f64;
        WredQueue::new(
            capacity_bytes,
            [
                WredParams {
                    min_bytes: 0.60 * c,
                    max_bytes: 0.95 * c,
                    max_p: 0.1,
                },
                WredParams {
                    min_bytes: 0.35 * c,
                    max_bytes: 0.80 * c,
                    max_p: 0.3,
                },
                WredParams {
                    min_bytes: 0.15 * c,
                    max_bytes: 0.60 * c,
                    max_p: 0.6,
                },
            ],
            seed,
        )
    }

    /// Current average-queue estimate in bytes (diagnostics).
    pub fn avg_bytes(&self) -> f64 {
        self.avg
    }
}

impl<P> Qdisc<P> for WredQueue<P> {
    fn enqueue(&mut self, pkt: Packet<P>) -> Result<(), Packet<P>> {
        // Update the EWMA with the instantaneous occupancy.
        self.avg = (1.0 - self.weight) * self.avg + self.weight * self.bytes as f64;
        let prec = drop_precedence(pkt.dscp);
        let p_drop = self.params[prec].drop_probability(self.avg);
        let tail_full = self.bytes + pkt.size as u64 > self.capacity_bytes;
        if tail_full || (p_drop > 0.0 && self.rng.chance(p_drop)) {
            self.drops[prec] += 1;
            return Err(pkt);
        }
        self.bytes += pkt.size as u64;
        self.q.push_back(pkt);
        Ok(())
    }

    fn dequeue(&mut self) -> Option<Packet<P>> {
        let pkt = self.q.pop_front()?;
        self.bytes -= pkt.size as u64;
        Some(pkt)
    }

    fn len(&self) -> usize {
        self.q.len()
    }

    fn bytes(&self) -> u64 {
        self.bytes
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::packet::{FlowId, NodeId, PacketId, Proto};
    use dsv_sim::SimTime;

    fn pkt(id: u64, dscp: Dscp) -> Packet<()> {
        Packet {
            id: PacketId(id),
            flow: FlowId(0),
            src: NodeId(0),
            dst: NodeId(1),
            size: 1000,
            dscp,
            proto: Proto::Udp,
            fragment: None,
            sent_at: SimTime::ZERO,
            payload: (),
        }
    }

    #[test]
    fn precedence_mapping() {
        assert_eq!(drop_precedence(Dscp::af(1, 1)), 0);
        assert_eq!(drop_precedence(Dscp::af(1, 2)), 1);
        assert_eq!(drop_precedence(Dscp::af(1, 3)), 2);
        assert_eq!(drop_precedence(Dscp::af(4, 3)), 2);
        assert_eq!(drop_precedence(Dscp::BEST_EFFORT), 0);
    }

    #[test]
    fn empty_queue_accepts_everything() {
        let mut q: WredQueue<()> = WredQueue::af_default(100_000, 1);
        for i in 0..10 {
            assert!(q.enqueue(pkt(i, Dscp::af(1, 3))).is_ok());
        }
        assert_eq!(q.len(), 10);
    }

    #[test]
    fn red_sheds_before_green_under_pressure() {
        let mut q: WredQueue<()> = WredQueue::af_default(60_000, 2);
        // Push the queue to a sustained mid occupancy and count drops by
        // color for interleaved traffic.
        let mut id = 0;
        for round in 0..2000 {
            let dscp = match round % 3 {
                0 => Dscp::af(1, 1),
                1 => Dscp::af(1, 2),
                _ => Dscp::af(1, 3),
            };
            id += 1;
            let _ = q.enqueue(pkt(id, dscp));
            // Drain slower than we fill: 2 in, 1 out.
            if round % 2 == 0 {
                q.dequeue();
            }
        }
        assert!(
            q.drops[2] > q.drops[1],
            "red {} should exceed yellow {}",
            q.drops[2],
            q.drops[1]
        );
        assert!(
            q.drops[1] > q.drops[0],
            "yellow {} should exceed green {}",
            q.drops[1],
            q.drops[0]
        );
    }

    #[test]
    fn hard_cap_is_enforced() {
        let mut q: WredQueue<()> = WredQueue::new(
            5_000,
            [WredParams {
                min_bytes: 4_000.0,
                max_bytes: 4_999.0,
                max_p: 0.0,
            }; 3],
            3,
        );
        for i in 0..5 {
            assert!(q.enqueue(pkt(i, Dscp::af(1, 1))).is_ok());
        }
        assert!(q.enqueue(pkt(9, Dscp::af(1, 1))).is_err());
        assert_eq!(q.bytes(), 5_000);
    }

    #[test]
    fn deterministic_given_seed() {
        let run = || {
            let mut q: WredQueue<()> = WredQueue::af_default(40_000, 7);
            let mut accepted = 0;
            for i in 0..1000 {
                if q.enqueue(pkt(i, Dscp::af(1, 3))).is_ok() {
                    accepted += 1;
                }
                if i % 2 == 0 {
                    q.dequeue();
                }
            }
            (accepted, q.drops)
        };
        assert_eq!(run(), run());
    }

    #[test]
    #[should_panic(expected = "min must be below max")]
    fn validates_thresholds() {
        let _: WredQueue<()> = WredQueue::new(
            1000,
            [WredParams {
                min_bytes: 10.0,
                max_bytes: 10.0,
                max_p: 0.5,
            }; 3],
            1,
        );
    }
}
