//! Conservative parallel execution: partition the network into domains at
//! link boundaries and run each domain on its own thread.
//!
//! ## Why this is safe
//!
//! The only way one node influences another is a packet crossing a link,
//! and a link imposes a propagation delay. Cut the topology into domains
//! and let `W` be the minimum propagation delay over all *cut* links: an
//! event dispatched at time `t` in one domain cannot cause an event before
//! `t + W` in any other. So all domains may advance in lockstep windows of
//! width `W` — from the global minimum pending time `m` up to and
//! including `m + W − 1 ns` — with no communication at all inside a
//! window. Packets that cross a domain boundary are exchanged in batches
//! between windows; by construction they arrive at `≥ m + W`, strictly
//! after the window both sides just executed.
//!
//! ## Why it is deterministic
//!
//! Same-instant ties are broken by [`EventStamp`]s — pure functions of the
//! scheduling *decision* (its virtual instant, the deciding node, that
//! node's decision counter), not of any queue's global state. Packet ids
//! are issued per flow by the sending node, so they too are independent of
//! how the network is carved up. Any shard count and any domain-to-thread
//! assignment therefore dispatches the same events at the same times with
//! the same tie order; the serial-equivalence gate in `ci.sh` additionally
//! regenerates every committed result under `DSV_SHARDS=2` and diffs
//! byte-for-byte against the serial engine's output.
//!
//! ## Selection
//!
//! The serial engine remains the default. `DSV_SHARDS=k` (or
//! [`set_shards_for_process`]) requests `k` domains; the request quietly
//! falls back to serial when the topology cannot be cut (fewer nodes than
//! shards, no cut with a positive window) or when the run is not pristine
//! (a second `run_for` segment resumes leftover events serially).

use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Condvar, Mutex, Once, OnceLock};

use dsv_sim::engine::RunStats;
use dsv_sim::{EventQueue, EventStamp, SimDuration, SimTime, StampedQueue};

use crate::network::{NetEvent, NetSink, Network};
use crate::packet::{NodeId, Packet};

/// Process-wide shard-count override (0 = unset, read `DSV_SHARDS`).
static SHARDS_OVERRIDE: AtomicUsize = AtomicUsize::new(0);

/// Override the shard count for this process, taking precedence over
/// `DSV_SHARDS`. Pass `0` to clear the override. Metamorphic tests use
/// this to vary the shard count without touching the environment.
pub fn set_shards_for_process(n: usize) {
    SHARDS_OVERRIDE.store(n, Ordering::SeqCst);
}

/// The requested shard count: the process override if set, else
/// `DSV_SHARDS`, else 1 (serial). `0`, empty, or garbage values of
/// `DSV_SHARDS` fall back to 1 with a warning on stderr.
///
/// The environment value is read and validated once per process (this is
/// consulted on every `run_until`, and a sweep would otherwise repeat
/// the garbage-value warning per point); [`set_shards_for_process`]
/// bypasses the cache, so tests vary the count without the environment.
pub fn shards_from_env() -> usize {
    let o = SHARDS_OVERRIDE.load(Ordering::SeqCst);
    if o > 0 {
        return o;
    }
    static FROM_ENV: OnceLock<usize> = OnceLock::new();
    *FROM_ENV.get_or_init(|| dsv_sim::env::count_from_env("DSV_SHARDS", 1))
}

/// A computed domain decomposition of a topology.
#[derive(Debug, Clone)]
pub struct Partition {
    /// Domain id of each node, dense in `0..domains`, numbered by first
    /// appearance in node-id order (so the numbering itself is a pure
    /// function of the topology, not of merge order).
    pub domain_of: Vec<u32>,
    /// Number of domains.
    pub domains: usize,
    /// The safe lockstep window: the minimum propagation delay across all
    /// cut links. Always positive.
    pub window: SimDuration,
    /// Number of directed cut edges (diagnostics).
    pub cut_links: usize,
}

fn find(parent: &mut [u32], mut x: u32) -> u32 {
    while parent[x as usize] != x {
        // Path halving: point at the grandparent while walking up.
        let g = parent[parent[x as usize] as usize];
        parent[x as usize] = g;
        x = g;
    }
    x
}

/// Partition `n` nodes into `k` domains so that the minimum propagation
/// delay across cut links — the parallel window — is as large as the
/// greedy merge can make it: edges are merged in ascending weight order
/// (Kruskal-style) until exactly `k` components remain, which keeps the
/// *small*-delay links internal and leaves the large-delay links as cuts.
///
/// Returns `None` when no usable partition exists: `k < 2`, fewer nodes
/// than domains, a disconnected residue, or a cut whose window is zero
/// (a zero-propagation cut link admits no safe parallel window).
pub fn partition_nodes(n: usize, edges: &[(u32, u32, SimDuration)], k: usize) -> Option<Partition> {
    if k < 2 || n < k {
        return None;
    }
    let mut parent: Vec<u32> = (0..n as u32).collect();
    let mut order: Vec<usize> = (0..edges.len()).collect();
    order.sort_by_key(|&i| (edges[i].2, i));
    let mut components = n;
    for &i in &order {
        if components == k {
            break;
        }
        let (a, b, _) = edges[i];
        let (ra, rb) = (find(&mut parent, a), find(&mut parent, b));
        if ra != rb {
            parent[ra as usize] = rb;
            components -= 1;
        }
    }
    if components != k {
        // Not enough edges to merge down to k components: the graph has
        // more than k connected pieces.
        return None;
    }
    let mut window: Option<SimDuration> = None;
    let mut cut_links = 0usize;
    for &(a, b, w) in edges {
        if find(&mut parent, a) != find(&mut parent, b) {
            cut_links += 1;
            window = Some(window.map_or(w, |cur| cur.min(w)));
        }
    }
    let window = window?;
    if window.is_zero() {
        return None;
    }
    let mut domain_of = vec![0u32; n];
    let mut root_dom: Vec<Option<u32>> = vec![None; n];
    let mut next = 0u32;
    for (i, slot) in domain_of.iter_mut().enumerate() {
        let r = find(&mut parent, i as u32) as usize;
        *slot = *root_dom[r].get_or_insert_with(|| {
            let d = next;
            next += 1;
            d
        });
    }
    debug_assert_eq!(next as usize, k);
    Some(Partition {
        domain_of,
        domains: k,
        window,
        cut_links,
    })
}

/// A packet crossing a domain boundary, carrying the stamp its scheduling
/// decision earned in the sending domain.
struct BoundaryMsg<P> {
    at: SimTime,
    stamp: EventStamp,
    dst: NodeId,
    pkt: Packet<P>,
}

/// The per-domain [`NetSink`]: stamps every scheduling decision with a
/// partition-independent [`EventStamp`] and diverts boundary-crossing
/// packets into per-destination outboxes.
struct DomainSink<'a, P> {
    queue: StampedQueue<NetEvent>,
    domain_of: &'a [u32],
    me: u32,
    /// Per-node decision counters, globally indexed. Only this domain's
    /// nodes ever advance theirs, so counters are identical under every
    /// partitioning.
    origin_seq: Vec<u64>,
    /// Stamp context of the event currently being dispatched: the node it
    /// was addressed to, and its dispatch instant + 1 ns.
    cur_origin: u32,
    cur_sched: u64,
    /// One outbox per destination domain.
    outbox: Vec<Vec<BoundaryMsg<P>>>,
}

impl<P> DomainSink<'_, P> {
    fn stamp(&mut self) -> EventStamp {
        let seq = &mut self.origin_seq[self.cur_origin as usize];
        let s = EventStamp {
            sched: self.cur_sched,
            origin: self.cur_origin,
            origin_seq: *seq,
        };
        *seq += 1;
        s
    }
}

impl<P> NetSink<P> for DomainSink<'_, P> {
    fn schedule(&mut self, at: SimTime, event: NetEvent) {
        let stamp = self.stamp();
        self.queue.schedule(at, stamp, event);
    }

    fn is_local(&self, node: NodeId) -> bool {
        self.domain_of[node.0 as usize] == self.me
    }

    fn send_remote(&mut self, at: SimTime, dst: NodeId, pkt: Packet<P>) {
        let stamp = self.stamp();
        let dest = self.domain_of[dst.0 as usize] as usize;
        self.outbox[dest].push(BoundaryMsg {
            at,
            stamp,
            dst,
            pkt,
        });
    }
}

/// An event left pending when the run stopped at its horizon. `Arrive`
/// events carry their packet by value — the per-domain pools are torn
/// down with their domains, so the packet rides along and is re-parked in
/// the main pool during reassembly.
enum Left<P> {
    Ev(NetEvent),
    Arr(NodeId, Packet<P>),
}

/// What a domain worker hands back when the run is over.
struct DomainOutcome<P> {
    net: Network<P>,
    dispatched: u64,
    end_time: SimTime,
    audit_events: u64,
    leftovers: Vec<(SimTime, EventStamp, Left<P>)>,
}

fn warn_fallback(reason: &str) {
    static ONCE: Once = Once::new();
    ONCE.call_once(|| {
        eprintln!("warning: DSV_SHARDS requested but {reason}; running the serial engine");
    });
}

/// A reusable rendezvous like [`std::sync::Barrier`], but panic-aware.
///
/// `std::sync::Barrier` has no poisoning: if one lockstep worker dies
/// mid-round, its peers sleep forever at a rendezvous that can no longer
/// complete, and the whole run presents as a silent deadlock with the
/// original panic message unread. Here a dying worker [`poison`]s the
/// barrier (via [`PoisonOnPanic`]), which releases every current waiter
/// and makes every future `wait` panic immediately — the engine fails
/// loudly with the root cause on stderr instead of hanging.
///
/// [`poison`]: DomainBarrier::poison
struct DomainBarrier {
    state: Mutex<BarrierState>,
    cv: Condvar,
    n: usize,
    failed: AtomicBool,
}

struct BarrierState {
    arrived: usize,
    generation: u64,
}

impl DomainBarrier {
    fn new(n: usize) -> Self {
        DomainBarrier {
            state: Mutex::new(BarrierState {
                arrived: 0,
                generation: 0,
            }),
            cv: Condvar::new(),
            n,
            failed: AtomicBool::new(false),
        }
    }

    /// Block until all `n` workers arrive.
    ///
    /// # Panics
    /// Panics if the barrier is poisoned — whether before this call or
    /// while waiting — because a missing peer means the rendezvous can
    /// never complete.
    fn wait(&self) {
        let mut s = self.state.lock().unwrap_or_else(|e| e.into_inner());
        if self.failed.load(Ordering::SeqCst) {
            drop(s);
            panic!("a peer domain worker panicked; lockstep cannot continue");
        }
        if s.arrived + 1 == self.n {
            s.arrived = 0;
            s.generation += 1;
            drop(s);
            self.cv.notify_all();
            return;
        }
        s.arrived += 1;
        let gen = s.generation;
        while s.generation == gen && !self.failed.load(Ordering::SeqCst) {
            s = self.cv.wait(s).unwrap_or_else(|e| e.into_inner());
        }
        // A generation bump means the round completed (a poison racing in
        // after completion is caught at the next wait); an unchanged
        // generation means we were woken by the poison itself.
        let stuck = s.generation == gen;
        drop(s);
        if stuck {
            panic!("a peer domain worker panicked; lockstep cannot continue");
        }
    }

    /// Mark the barrier failed and wake every waiter. Idempotent. Taking
    /// the state lock around the store ensures no waiter can check the
    /// flag and go to sleep between the store and the notify.
    fn poison(&self) {
        let guard = self.state.lock().unwrap_or_else(|e| e.into_inner());
        self.failed.store(true, Ordering::SeqCst);
        drop(guard);
        self.cv.notify_all();
    }
}

/// Poisons the barrier if the holding worker unwinds, so peers panic out
/// of their rendezvous instead of deadlocking (see [`DomainBarrier`]).
struct PoisonOnPanic<'a>(&'a DomainBarrier);

impl Drop for PoisonOnPanic<'_> {
    fn drop(&mut self) {
        if std::thread::panicking() {
            self.0.poison();
        }
    }
}

/// Run the simulation with `shards` parallel domains, or return `None`
/// (leaving the network and queue untouched) when the sharded engine
/// cannot take this run — the caller then falls back to the serial loop.
///
/// On success the network and queue are left in the same observable state
/// a serial [`dsv_sim::run_until`] would have produced: statistics and
/// audit ledgers merged, leftover events re-queued in `(time, stamp)`
/// order, and the queue's watermark advanced to the last dispatched
/// instant, so a subsequent `run_for` resumes identically (serially).
pub(crate) fn run_sharded<P: Send + 'static>(
    net: &mut Network<P>,
    queue: &mut EventQueue<NetEvent>,
    horizon: SimTime,
    shards: usize,
) -> Option<RunStats> {
    // Only a pristine run can be sharded: every pending event must carry a
    // reconstructible setup stamp and every `Arrive` must be resolvable
    // against a freshly split domain pool. Three observable signs of a
    // resumed segment, each disqualifying on its own:
    //   - the watermark moved: a previous segment (sharded or serial)
    //     already dispatched up to some instant, and the reassembled queue
    //     of a horizon stop looks freshly scheduled otherwise;
    //   - a pop happened without the watermark moving (a time-zero serial
    //     segment);
    //   - packets are parked in the main pool: pending `Arrive` refs
    //     resolve against it, and the split domains get empty pools.
    // Resumed segments run serially — a documented continuation, not a
    // misconfiguration, so no warning.
    if queue.now() != SimTime::ZERO
        || queue.scheduled_count() != queue.len() as u64
        || net.pool_mut().live() != 0
    {
        return None;
    }
    let n = net.node_count();
    let k = shards.min(n);
    let part = match partition_nodes(n, &net.link_edges(), k) {
        Some(p) => p,
        None => {
            warn_fallback("the topology yields no cut with a positive window");
            return None;
        }
    };
    let w_ns = part.window.as_nanos();
    let h_ns = horizon.as_nanos();

    // Distribute the setup events, stamping them in pop order — the exact
    // order the serial engine would have dispatched same-instant setup
    // events — with per-node counters so the stamps are independent of
    // which other events share a queue.
    let mut dom_queues: Vec<StampedQueue<NetEvent>> =
        (0..k).map(|_| StampedQueue::with_capacity(1024)).collect();
    let mut setup_seq = vec![0u64; n];
    while let Some((at, ev)) = queue.pop() {
        let node = ev.node().0 as usize;
        let stamp = EventStamp::setup(node as u32, setup_seq[node]);
        setup_seq[node] += 1;
        dom_queues[part.domain_of[node] as usize].schedule(at, stamp, ev);
    }

    let domains = net.split_domains(&part.domain_of, k);

    // Inter-domain mailboxes, indexed [destination][source], and the
    // lockstep-window agreement state: double-buffered by round parity so
    // a thread may publish round r+1's minimum while a straggler is still
    // reading round r's.
    let exchange: Vec<Vec<Mutex<Vec<BoundaryMsg<P>>>>> = (0..k)
        .map(|_| (0..k).map(|_| Mutex::new(Vec::new())).collect())
        .collect();
    let barrier = DomainBarrier::new(k);
    let mins = [AtomicU64::new(u64::MAX), AtomicU64::new(u64::MAX)];
    let pendings = [AtomicU64::new(0), AtomicU64::new(0)];
    let domain_of: &[u32] = &part.domain_of;

    let mut outcomes: Vec<Option<DomainOutcome<P>>> = (0..k).map(|_| None).collect();
    std::thread::scope(|scope| {
        let mut handles = Vec::with_capacity(k);
        for (me, (dnet, dqueue)) in domains.into_iter().zip(dom_queues).enumerate() {
            let exchange = &exchange;
            let barrier = &barrier;
            let mins = &mins;
            let pendings = &pendings;
            handles.push(scope.spawn(move || {
                run_domain(
                    dnet, dqueue, me, k, domain_of, w_ns, h_ns, exchange, barrier, mins, pendings,
                )
            }));
        }
        for (me, h) in handles.into_iter().enumerate() {
            outcomes[me] = Some(h.join().expect("domain worker panicked"));
        }
    });

    // Reassemble: merge statistics, collect leftovers, rebuild the queue.
    let mut dispatched = 0u64;
    let mut end_time = SimTime::ZERO;
    let mut audit_events = 0u64;
    let mut leftovers: Vec<(SimTime, EventStamp, Left<P>)> = Vec::new();
    for (d, outcome) in outcomes.into_iter().enumerate() {
        let mut o = outcome.expect("every domain joined");
        dispatched += o.dispatched;
        end_time = end_time.max(o.end_time);
        audit_events += o.audit_events;
        leftovers.append(&mut o.leftovers);
        net.absorb_domain(o.net, d as u32, domain_of);
    }
    #[cfg(feature = "audit")]
    net.audit_mut().resolve_foreign();

    // Leftovers from different domains interleave; stamps are globally
    // unique, so one sort restores the total `(time, stamp)` order and the
    // fresh queue's sequence counters reproduce it for the serial resume.
    leftovers.sort_by_key(|l| (l.0, l.1));
    let hit_horizon = !leftovers.is_empty();
    let mut fresh = EventQueue::with_capacity(4096);
    for (at, _, left) in leftovers {
        match left {
            Left::Ev(ev) => fresh.schedule(at, ev),
            Left::Arr(node, pkt) => {
                let packet = net.pool_mut().insert(pkt);
                fresh.schedule(at, NetEvent::Arrive { node, packet });
            }
        }
    }
    fresh.advance_to(end_time);
    *queue = fresh;

    Some(RunStats {
        dispatched,
        end_time,
        hit_horizon,
        audit_events,
    })
}

/// One domain's worker loop: agree on the global minimum pending time,
/// execute the safe window, exchange boundary packets, repeat.
#[allow(clippy::too_many_arguments)]
fn run_domain<P: Send + 'static>(
    mut net: Network<P>,
    queue: StampedQueue<NetEvent>,
    me: usize,
    k: usize,
    domain_of: &[u32],
    w_ns: u64,
    h_ns: u64,
    exchange: &[Vec<Mutex<Vec<BoundaryMsg<P>>>>],
    barrier: &DomainBarrier,
    mins: &[AtomicU64; 2],
    pendings: &[AtomicU64; 2],
) -> DomainOutcome<P> {
    // If this worker dies, release the peers stuck at the barrier so the
    // run fails with the root-cause panic instead of deadlocking.
    let _poison_on_panic = PoisonOnPanic(barrier);
    let mut sink = DomainSink {
        queue,
        domain_of,
        me: me as u32,
        origin_seq: vec![0u64; domain_of.len()],
        cur_origin: 0,
        cur_sched: 0,
        outbox: (0..k).map(|_| Vec::new()).collect(),
    };
    let mut dispatched = 0u64;
    let mut end_time = SimTime::ZERO;
    let mut audit_events = 0u64;
    #[cfg(feature = "audit")]
    let audit_on = crate::audit::runtime_enabled();
    #[cfg(not(feature = "audit"))]
    let audit_on = false;

    let mut p = 0usize; // round parity
    loop {
        // Publish this domain's next-event time and pending count, agree
        // on the global minimum, and reset the *other* parity's slots for
        // the next round (safe: the barrier guarantees every thread is
        // done reading them).
        let local_min = sink.queue.peek_time().map_or(u64::MAX, |t| t.as_nanos());
        mins[p].fetch_min(local_min, Ordering::SeqCst);
        pendings[p].fetch_add(sink.queue.len() as u64, Ordering::SeqCst);
        barrier.wait();
        let m = mins[p].load(Ordering::SeqCst);
        let total = pendings[p].load(Ordering::SeqCst);
        mins[p ^ 1].store(u64::MAX, Ordering::SeqCst);
        pendings[p ^ 1].store(0, Ordering::SeqCst);
        // Every thread computes the same (m, total), so every thread makes
        // the same stop decision — no one is left waiting at a barrier.
        if total == 0 || m > h_ns {
            break;
        }

        // The window [m, m + W − 1] clipped to the horizon (inclusive):
        // boundary packets dispatched inside it arrive at ≥ m + W, strictly
        // after it, so no in-window communication is needed.
        let hz = SimTime::from_nanos(m.saturating_add(w_ns - 1).min(h_ns));
        while let Some((at, _, ev)) = sink.queue.pop_at_or_before(hz) {
            if audit_on {
                assert!(
                    at >= end_time,
                    "audit: dispatch time went backwards: {at:?} after {end_time:?}"
                );
                audit_events += 1;
            }
            sink.cur_origin = ev.node().0;
            sink.cur_sched = at.as_nanos().saturating_add(1);
            net.handle_event(at, ev, &mut sink);
            dispatched += 1;
            end_time = at;
        }

        // Publish boundary packets, wait for everyone, ingest our inbox.
        for (dest, box_) in sink.outbox.iter_mut().enumerate() {
            if !box_.is_empty() {
                exchange[dest][me]
                    .lock()
                    .expect("exchange mailbox poisoned")
                    .append(box_);
            }
        }
        barrier.wait();
        for mailbox in &exchange[me] {
            let msgs = std::mem::take(&mut *mailbox.lock().expect("exchange mailbox poisoned"));
            for msg in msgs {
                let packet = net.pool_mut().insert(msg.pkt);
                sink.queue.schedule(
                    msg.at,
                    msg.stamp,
                    NetEvent::Arrive {
                        node: msg.dst,
                        packet,
                    },
                );
            }
        }
        p ^= 1;
    }

    // Drain what remains (events past the horizon) into plain values; the
    // domain pool must come back empty.
    let mut leftovers = Vec::new();
    while let Some((at, stamp, ev)) = sink.queue.pop_at_or_before(SimTime::MAX) {
        let left = match ev {
            NetEvent::Arrive { node, packet } => Left::Arr(node, net.pool_mut().take(packet)),
            other => Left::Ev(other),
        };
        leftovers.push((at, stamp, left));
    }
    DomainOutcome {
        net,
        dispatched,
        end_time,
        audit_events,
        leftovers,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::link::Link;
    use crate::network::{NetworkBuilder, Simulation};
    use crate::packet::{Dscp, FlowId};
    use crate::traffic::{CbrSource, CountingSink};

    fn us(n: u64) -> SimDuration {
        SimDuration::from_micros(n)
    }

    #[test]
    fn chain_splits_at_largest_delay_link() {
        // 0 —1µs— 1 —10µs— 2 —1µs— 3: the 10 µs link is the natural cut.
        let edges = vec![
            (0, 1, us(1)),
            (0, 1, us(1)),
            (1, 2, us(10)),
            (1, 2, us(10)),
            (2, 3, us(1)),
            (2, 3, us(1)),
        ];
        let p = partition_nodes(4, &edges, 2).unwrap();
        assert_eq!(p.domain_of, vec![0, 0, 1, 1]);
        assert_eq!(p.window, us(10));
        assert_eq!(p.domains, 2);
        assert_eq!(p.cut_links, 2);
    }

    #[test]
    fn domain_ids_are_dense_in_node_order() {
        // Merge order leaves node 0 alone: its domain must still be 0.
        let edges = vec![(1, 2, us(1)), (0, 1, us(50)), (0, 2, us(50))];
        let p = partition_nodes(3, &edges, 2).unwrap();
        assert_eq!(p.domain_of, vec![0, 1, 1]);
        assert_eq!(p.window, us(50));
    }

    #[test]
    fn asymmetric_cut_takes_the_minimum_direction() {
        let edges = vec![(0, 1, us(2)), (0, 1, us(7))];
        let p = partition_nodes(2, &edges, 2).unwrap();
        assert_eq!(p.window, us(2));
    }

    #[test]
    fn degenerate_requests_fall_back() {
        let edges = vec![(0, 1, us(1)), (1, 2, us(1))];
        assert!(partition_nodes(3, &edges, 1).is_none(), "k < 2");
        assert!(partition_nodes(2, &edges[..1], 3).is_none(), "k > n");
        // A zero-propagation cut admits no window.
        let zero = vec![(0, 1, SimDuration::ZERO)];
        assert!(partition_nodes(2, &zero, 2).is_none());
        // Disconnected residue: 4 nodes, one edge, want 2 domains — the
        // merge can reach 3 components but never 2.
        let sparse = vec![(0, 1, us(1))];
        assert!(partition_nodes(4, &sparse, 2).is_none());
    }

    #[test]
    fn process_override_beats_environment() {
        set_shards_for_process(5);
        assert_eq!(shards_from_env(), 5);
        set_shards_for_process(0);
        // Back to the environment/default path (DSV_SHARDS unset in tests
        // gives 1; a sweep harness setting it would give its value).
    }

    /// src — r1 —(5 ms)— r2 — dst, CBR traffic: a 4-node chain whose long
    /// middle link is the natural 2-domain cut.
    fn chain_sim() -> Simulation<()> {
        let mut b = NetworkBuilder::<()>::new();
        let dst = b.add_host("dst", Box::new(CountingSink::default()));
        let r2 = b.add_router("r2");
        let r1 = b.add_router("r1");
        let src = b.add_host(
            "src",
            Box::new(CbrSource {
                dst,
                flow: FlowId(7),
                packet_size: 1200,
                rate_bps: 2_000_000,
                dscp: Dscp::BEST_EFFORT,
                stop_at: SimTime::from_millis(200),
            }),
        );
        b.connect(src, r1, Link::ethernet_10mbps());
        b.connect(r1, r2, Link::new(8_000_000, SimDuration::from_millis(5)));
        b.connect(r2, dst, Link::ethernet_10mbps());
        Simulation::new(b.build())
    }

    fn flow_fingerprint(sim: &Simulation<()>) -> (u64, u64, u64, u64, SimDuration, SimDuration) {
        let c = sim.net.stats.flow(FlowId(7));
        (
            c.tx_packets,
            c.rx_packets,
            c.tx_bytes,
            c.rx_bytes,
            c.delay.min,
            c.delay.max,
        )
    }

    #[test]
    fn sharded_run_matches_serial_exactly() {
        let mut serial = chain_sim();
        let s_stats = dsv_sim::run_until(&mut serial.net, &mut serial.queue, SimTime::MAX);

        for shards in [2, 3, 4] {
            let mut sharded = chain_sim();
            let stats = run_sharded(&mut sharded.net, &mut sharded.queue, SimTime::MAX, shards)
                .expect("chain topology must shard");
            assert_eq!(stats.dispatched, s_stats.dispatched, "shards={shards}");
            assert_eq!(stats.end_time, s_stats.end_time, "shards={shards}");
            assert_eq!(stats.hit_horizon, s_stats.hit_horizon);
            assert_eq!(
                flow_fingerprint(&sharded),
                flow_fingerprint(&serial),
                "shards={shards}"
            );
            assert_eq!(
                sharded.net.stats.flow(FlowId(7)).delay.mean(),
                serial.net.stats.flow(FlowId(7)).delay.mean()
            );
        }
    }

    #[test]
    fn horizon_stop_and_serial_resume_match_pure_serial() {
        let mut serial = chain_sim();
        dsv_sim::run_until(&mut serial.net, &mut serial.queue, SimTime::from_millis(60));
        let s_final = dsv_sim::run_until(&mut serial.net, &mut serial.queue, SimTime::MAX);

        let mut mixed = chain_sim();
        let mid = run_sharded(
            &mut mixed.net,
            &mut mixed.queue,
            SimTime::from_millis(60),
            2,
        )
        .expect("chain topology must shard");
        assert!(mid.hit_horizon);
        // The queue is no longer pristine: the second segment must decline
        // sharding and resume serially from the reassembled queue.
        assert!(run_sharded(&mut mixed.net, &mut mixed.queue, SimTime::MAX, 2).is_none());
        let m_final = dsv_sim::run_until(&mut mixed.net, &mut mixed.queue, SimTime::MAX);

        assert_eq!(m_final.end_time, s_final.end_time);
        assert_eq!(flow_fingerprint(&mixed), flow_fingerprint(&serial));
        assert_eq!(
            serial.queue.now(),
            mixed.queue.now(),
            "watermarks must agree for any further run_for"
        );
    }

    #[test]
    fn barrier_rendezvous_is_reusable_across_rounds() {
        let b = DomainBarrier::new(3);
        std::thread::scope(|s| {
            for _ in 0..3 {
                s.spawn(|| {
                    for _ in 0..100 {
                        b.wait();
                    }
                });
            }
        });
        // Completing at all is the assertion: a generation-tracking bug
        // would deadlock round 2 (and the test would time out).
    }

    #[test]
    fn poisoned_barrier_releases_waiters_instead_of_hanging() {
        let b = DomainBarrier::new(2);
        std::thread::scope(|s| {
            let waiter = s.spawn(|| {
                std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| b.wait())).is_err()
            });
            // Whether the poison lands before or mid-wait, the waiter
            // must panic out rather than sleep against a rendezvous its
            // dead peer can never complete.
            b.poison();
            assert!(waiter.join().unwrap(), "waiter must panic, not rendezvous");
            // And every later wait fails fast.
            let after =
                std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| b.wait())).is_err();
            assert!(after, "waits after the poison must fail immediately");
        });
    }

    #[test]
    fn resumed_segments_decline_sharding() {
        // After a serial segment the watermark has moved (and in-flight
        // packets may be parked in the main pool): the sharded engine
        // must decline, because split domains get empty pools and setup
        // stamps cannot be reconstructed for already-dispatched decisions.
        let mut sim = chain_sim();
        dsv_sim::run_until(&mut sim.net, &mut sim.queue, SimTime::from_millis(30));
        assert!(run_sharded(&mut sim.net, &mut sim.queue, SimTime::MAX, 2).is_none());
        let stats = dsv_sim::run_until(&mut sim.net, &mut sim.queue, SimTime::MAX);
        assert!(stats.dispatched > 0, "serial resume still works");
    }

    #[test]
    fn single_node_topologies_decline() {
        let mut b = NetworkBuilder::<()>::new();
        let dst = b.add_host("dst", Box::new(CountingSink::default()));
        let src = b.add_host(
            "src",
            Box::new(CbrSource {
                dst,
                flow: FlowId(1),
                packet_size: 100,
                rate_bps: 1_000_000,
                dscp: Dscp::BEST_EFFORT,
                stop_at: SimTime::from_millis(1),
            }),
        );
        b.connect(src, dst, Link::new(1_000_000, SimDuration::ZERO));
        let mut sim = Simulation::new(b.build());
        // Zero-propagation link: no positive window exists.
        assert!(run_sharded(&mut sim.net, &mut sim.queue, SimTime::MAX, 2).is_none());
        // The declined run left everything intact; serial still works.
        let stats = dsv_sim::run_until(&mut sim.net, &mut sim.queue, SimTime::MAX);
        assert!(stats.dispatched > 0);
    }
}
