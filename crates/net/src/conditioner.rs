//! The ingress-conditioning hook.
//!
//! Diff-Serv traffic conditioning (classification, metering, marking,
//! policing, shaping) happens where packets *enter* a router. This crate
//! knows nothing about token buckets — it only defines the [`Conditioner`]
//! interface that `dsv-diffserv` implements and [`crate::network::Network`]
//! invokes on every packet arriving at a router that has a conditioner
//! attached.
//!
//! The interface is poll-based so that *shaping* (delaying non-conformant
//! packets rather than dropping them) fits without callbacks: a conditioner
//! may absorb a packet and name the time at which the network should poll it
//! for releases.

use dsv_sim::SimTime;

use crate::packet::{DropReason, Packet};

/// What a conditioner decided about one submitted packet.
#[derive(Debug)]
pub enum ConditionOutcome<P> {
    /// Forward now (possibly re-marked).
    Pass(Packet<P>),
    /// Discard; the packet is returned for accounting.
    Drop(Packet<P>, DropReason),
    /// The conditioner absorbed the packet (shaping). The network must call
    /// [`Conditioner::release`] at `poll_at`.
    Absorbed {
        /// When to poll for released packets.
        poll_at: SimTime,
    },
}

/// Released packets plus the next time to poll, if any packets remain
/// absorbed.
#[derive(Debug)]
pub struct Released<P> {
    /// Packets that became conformant and should be forwarded now, in order.
    pub packets: Vec<Packet<P>>,
    /// Next poll time, if the conditioner still holds packets.
    pub next_poll: Option<SimTime>,
}

impl<P> Released<P> {
    /// A release result carrying nothing.
    pub fn empty() -> Self {
        Released {
            packets: Vec::new(),
            next_poll: None,
        }
    }
}

/// A conditioning decision reached without taking the packet out of the
/// caller's hands (see [`Conditioner::quick`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum QuickVerdict {
    /// Forward the packet now. The conditioner may have re-marked it in
    /// place; it must be byte-for-byte what [`Conditioner::submit`] would
    /// have returned inside [`ConditionOutcome::Pass`].
    Pass,
    /// Discard the packet for this reason — identical to what `submit`
    /// would have returned inside [`ConditionOutcome::Drop`].
    Drop(DropReason),
    /// The decision needs ownership (e.g. shaping absorbs the packet):
    /// the caller must fall back to [`Conditioner::submit`]. The packet
    /// must not have been mutated.
    NeedsSubmit,
}

/// An ingress traffic conditioner.
pub trait Conditioner<P> {
    /// Submit a packet arriving at the router.
    fn submit(&mut self, now: SimTime, pkt: Packet<P>) -> ConditionOutcome<P>;

    /// Decide the packet's fate in place, when possible.
    ///
    /// This is the network's fast path: a [`QuickVerdict::Pass`] lets the
    /// router forward the packet without lifting it out of the in-flight
    /// pool. Implementations must behave exactly like
    /// [`Conditioner::submit`] (same metering state updates, same marking,
    /// same verdict) or return [`QuickVerdict::NeedsSubmit`] untouched; the
    /// default conservatively always defers.
    fn quick(&mut self, _now: SimTime, _pkt: &mut Packet<P>) -> QuickVerdict {
        QuickVerdict::NeedsSubmit
    }

    /// Poll for packets whose release time has come. Only called if a prior
    /// [`ConditionOutcome::Absorbed`] or [`Released::next_poll`] asked for
    /// it, but implementations must tolerate spurious polls.
    fn release(&mut self, now: SimTime) -> Released<P>;

    /// Number of packets currently absorbed (shaping backlog). Pure
    /// accounting — the audit oracles use it to close the end-of-run
    /// packet-conservation equation; conditioners that never absorb keep
    /// the default.
    fn held(&self) -> usize {
        0
    }
}

/// A conditioner that passes everything through untouched (routers without
/// policies — e.g. the over-provisioned QBone core).
#[derive(Debug, Default)]
pub struct PassThrough;

impl<P> Conditioner<P> for PassThrough {
    fn submit(&mut self, _now: SimTime, pkt: Packet<P>) -> ConditionOutcome<P> {
        ConditionOutcome::Pass(pkt)
    }

    fn quick(&mut self, _now: SimTime, _pkt: &mut Packet<P>) -> QuickVerdict {
        QuickVerdict::Pass
    }

    fn release(&mut self, _now: SimTime) -> Released<P> {
        Released::empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::packet::{Dscp, FlowId, NodeId, PacketId, Proto};

    #[test]
    fn passthrough_passes() {
        let mut c = PassThrough;
        let pkt: Packet<()> = Packet {
            id: PacketId(7),
            flow: FlowId(1),
            src: NodeId(0),
            dst: NodeId(1),
            size: 100,
            dscp: Dscp::BEST_EFFORT,
            proto: Proto::Udp,
            fragment: None,
            sent_at: SimTime::ZERO,
            payload: (),
        };
        match Conditioner::submit(&mut c, SimTime::ZERO, pkt) {
            ConditionOutcome::Pass(p) => assert_eq!(p.id, PacketId(7)),
            other => panic!("unexpected outcome {other:?}"),
        }
        let rel: Released<()> = Conditioner::release(&mut c, SimTime::ZERO);
        assert!(rel.packets.is_empty());
        assert!(rel.next_poll.is_none());
    }
}
