//! Queueing disciplines for output ports.
//!
//! Two disciplines cover the paper's router configurations:
//!
//! * [`DropTailQueue`] — a plain FIFO with byte and packet limits, used on
//!   hosts and best-effort ports;
//! * [`StrictPriorityQueue`] — "a simple priority queue structure, with the
//!   high priority queue being assigned to traffic marked with the EF DSCP"
//!   (paper §3.2.1.2). Lower band index = higher priority; each band is its
//!   own drop-tail FIFO.

use std::collections::VecDeque;

use crate::packet::{Dscp, Packet};

/// Outcome of an enqueue attempt.
#[derive(Debug, PartialEq, Eq, Clone, Copy)]
pub enum EnqueueResult {
    /// Packet accepted.
    Queued,
    /// Packet rejected (queue full); the caller owns the drop accounting.
    Dropped,
}

/// A queueing discipline attached to an output port.
///
/// Disciplines are passive containers: the port logic calls
/// [`Qdisc::enqueue`] on arrival and [`Qdisc::dequeue`] whenever the link
/// becomes idle.
pub trait Qdisc<P> {
    /// Offer a packet. Returns [`EnqueueResult::Dropped`] if rejected; the
    /// packet is handed back via the return slot in that case.
    fn enqueue(&mut self, pkt: Packet<P>) -> Result<(), Packet<P>>;

    /// Take the next packet to transmit, honouring the discipline's order.
    fn dequeue(&mut self) -> Option<Packet<P>>;

    /// Number of queued packets across all internal bands.
    fn len(&self) -> usize;

    /// Queued bytes across all internal bands.
    fn bytes(&self) -> u64;

    /// True if nothing is queued.
    fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Largest packet size (bytes) for which, **whenever the discipline is
    /// empty**, an [`Qdisc::enqueue`] immediately followed by a
    /// [`Qdisc::dequeue`] is guaranteed to hand the very same packet back
    /// unchanged — for any DSCP, with no observable side effects.
    ///
    /// The port logic caches this bound and transmits straight through an
    /// idle port when `size <= cap`, skipping both virtual calls on the
    /// forwarding fast path. The bound may be conservative (a packet above
    /// it simply takes the classic enqueue/dequeue route, which produces
    /// the identical event sequence); disciplines whose admission decision
    /// has per-packet side effects (e.g. WRED's average-occupancy filter)
    /// keep the default of `0`, which disables pass-through entirely.
    fn direct_admit_cap(&self) -> u32 {
        0
    }
}

/// Capacity limits for a FIFO band.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct QueueLimits {
    /// Maximum queued packets (inclusive).
    pub max_packets: usize,
    /// Maximum queued bytes (inclusive).
    pub max_bytes: u64,
}

impl QueueLimits {
    /// A practically unlimited queue (used for host send buffers).
    pub const UNBOUNDED: QueueLimits = QueueLimits {
        max_packets: usize::MAX,
        max_bytes: u64::MAX,
    };

    /// A limit expressed in packets only.
    pub const fn packets(n: usize) -> QueueLimits {
        QueueLimits {
            max_packets: n,
            max_bytes: u64::MAX,
        }
    }

    /// A limit expressed in bytes only.
    pub const fn bytes(n: u64) -> QueueLimits {
        QueueLimits {
            max_packets: usize::MAX,
            max_bytes: n,
        }
    }
}

/// A drop-tail FIFO.
#[derive(Debug)]
pub struct DropTailQueue<P> {
    q: VecDeque<Packet<P>>,
    bytes: u64,
    limits: QueueLimits,
    /// Cumulative count of rejected packets (diagnostic).
    pub drops: u64,
}

impl<P> DropTailQueue<P> {
    /// Create with the given limits.
    pub fn new(limits: QueueLimits) -> Self {
        DropTailQueue {
            q: VecDeque::new(),
            bytes: 0,
            limits,
            drops: 0,
        }
    }

    fn fits(&self, pkt_size: u32) -> bool {
        self.q.len() < self.limits.max_packets
            && self.bytes + pkt_size as u64 <= self.limits.max_bytes
    }
}

impl<P> Qdisc<P> for DropTailQueue<P> {
    fn enqueue(&mut self, pkt: Packet<P>) -> Result<(), Packet<P>> {
        if self.fits(pkt.size) {
            self.bytes += pkt.size as u64;
            self.q.push_back(pkt);
            Ok(())
        } else {
            self.drops += 1;
            Err(pkt)
        }
    }

    fn dequeue(&mut self) -> Option<Packet<P>> {
        let pkt = self.q.pop_front()?;
        self.bytes -= pkt.size as u64;
        Some(pkt)
    }

    fn len(&self) -> usize {
        self.q.len()
    }

    fn bytes(&self) -> u64 {
        self.bytes
    }

    fn direct_admit_cap(&self) -> u32 {
        if self.limits.max_packets == 0 {
            return 0;
        }
        u32::try_from(self.limits.max_bytes).unwrap_or(u32::MAX)
    }
}

/// Maps a DSCP to a priority band (0 = highest priority).
pub type BandClassifier = fn(Dscp) -> usize;

/// The classifier used by the paper's routers: EF-marked packets go to the
/// high-priority band 0, everything else to band 1.
pub fn ef_high_priority(dscp: Dscp) -> usize {
    if dscp.is_ef() {
        0
    } else {
        1
    }
}

/// Strict priority scheduler over N drop-tail bands.
///
/// `dequeue` always serves the lowest-indexed non-empty band, emulating the
/// paper's EF-over-best-effort service at every core router.
pub struct StrictPriorityQueue<P> {
    bands: Vec<DropTailQueue<P>>,
    classify: BandClassifier,
}

impl<P> StrictPriorityQueue<P> {
    /// Create with per-band limits; `limits.len()` fixes the band count.
    pub fn new(limits: Vec<QueueLimits>, classify: BandClassifier) -> Self {
        assert!(!limits.is_empty(), "need at least one band");
        StrictPriorityQueue {
            bands: limits.into_iter().map(DropTailQueue::new).collect(),
            classify,
        }
    }

    /// The standard two-band EF configuration used across the testbeds.
    pub fn ef_default(ef_limits: QueueLimits, be_limits: QueueLimits) -> Self {
        StrictPriorityQueue::new(vec![ef_limits, be_limits], ef_high_priority)
    }

    /// Number of queued packets in one band (diagnostic).
    pub fn band_len(&self, band: usize) -> usize {
        self.bands[band].len()
    }

    /// Cumulative drops in one band (diagnostic).
    pub fn band_drops(&self, band: usize) -> u64 {
        self.bands[band].drops
    }
}

impl<P> Qdisc<P> for StrictPriorityQueue<P> {
    fn enqueue(&mut self, pkt: Packet<P>) -> Result<(), Packet<P>> {
        let band = (self.classify)(pkt.dscp).min(self.bands.len() - 1);
        self.bands[band].enqueue(pkt)
    }

    fn dequeue(&mut self) -> Option<Packet<P>> {
        self.bands.iter_mut().find_map(|b| b.dequeue())
    }

    fn len(&self) -> usize {
        self.bands.iter().map(|b| b.q.len()).sum()
    }

    fn bytes(&self) -> u64 {
        self.bands.iter().map(|b| b.bytes).sum()
    }

    fn direct_admit_cap(&self) -> u32 {
        // The min across bands is conservative: a packet may classify to a
        // roomier band, but underestimating only reroutes it through the
        // ordinary enqueue/dequeue pair.
        self.bands
            .iter()
            .map(|b| Qdisc::<P>::direct_admit_cap(b))
            .min()
            .unwrap_or(0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::packet::{FlowId, NodeId, PacketId, Proto};
    use dsv_sim::SimTime;

    fn pkt(id: u64, size: u32, dscp: Dscp) -> Packet<()> {
        Packet {
            id: PacketId(id),
            flow: FlowId(0),
            src: NodeId(0),
            dst: NodeId(1),
            size,
            dscp,
            proto: Proto::Udp,
            fragment: None,
            sent_at: SimTime::ZERO,
            payload: (),
        }
    }

    #[test]
    fn droptail_fifo_order() {
        let mut q = DropTailQueue::new(QueueLimits::UNBOUNDED);
        for i in 0..5 {
            q.enqueue(pkt(i, 100, Dscp::BEST_EFFORT)).unwrap();
        }
        for i in 0..5 {
            assert_eq!(q.dequeue().unwrap().id, PacketId(i));
        }
        assert!(q.is_empty());
    }

    #[test]
    fn droptail_packet_limit() {
        let mut q = DropTailQueue::new(QueueLimits::packets(2));
        assert!(q.enqueue(pkt(0, 100, Dscp::BEST_EFFORT)).is_ok());
        assert!(q.enqueue(pkt(1, 100, Dscp::BEST_EFFORT)).is_ok());
        let rejected = q.enqueue(pkt(2, 100, Dscp::BEST_EFFORT));
        assert_eq!(rejected.unwrap_err().id, PacketId(2));
        assert_eq!(q.drops, 1);
        q.dequeue();
        assert!(q.enqueue(pkt(3, 100, Dscp::BEST_EFFORT)).is_ok());
    }

    #[test]
    fn droptail_byte_limit() {
        let mut q = DropTailQueue::new(QueueLimits::bytes(3000));
        assert!(q.enqueue(pkt(0, 1500, Dscp::BEST_EFFORT)).is_ok());
        assert!(q.enqueue(pkt(1, 1500, Dscp::BEST_EFFORT)).is_ok());
        assert!(q.enqueue(pkt(2, 1, Dscp::BEST_EFFORT)).is_err());
        assert_eq!(q.bytes(), 3000);
        q.dequeue();
        assert_eq!(q.bytes(), 1500);
        assert!(q.enqueue(pkt(3, 1500, Dscp::BEST_EFFORT)).is_ok());
    }

    #[test]
    fn priority_serves_ef_first() {
        let mut q: StrictPriorityQueue<()> =
            StrictPriorityQueue::ef_default(QueueLimits::packets(10), QueueLimits::packets(10));
        q.enqueue(pkt(0, 100, Dscp::BEST_EFFORT)).unwrap();
        q.enqueue(pkt(1, 100, Dscp::EF)).unwrap();
        q.enqueue(pkt(2, 100, Dscp::BEST_EFFORT)).unwrap();
        q.enqueue(pkt(3, 100, Dscp::EF_QBONE)).unwrap();
        assert_eq!(q.dequeue().unwrap().id, PacketId(1));
        assert_eq!(q.dequeue().unwrap().id, PacketId(3));
        assert_eq!(q.dequeue().unwrap().id, PacketId(0));
        assert_eq!(q.dequeue().unwrap().id, PacketId(2));
    }

    #[test]
    fn priority_band_isolation_on_overflow() {
        let mut q: StrictPriorityQueue<()> =
            StrictPriorityQueue::ef_default(QueueLimits::packets(1), QueueLimits::packets(10));
        q.enqueue(pkt(0, 100, Dscp::EF)).unwrap();
        // EF band full: EF packet dropped, BE unaffected.
        assert!(q.enqueue(pkt(1, 100, Dscp::EF)).is_err());
        assert!(q.enqueue(pkt(2, 100, Dscp::BEST_EFFORT)).is_ok());
        assert_eq!(q.band_drops(0), 1);
        assert_eq!(q.band_len(1), 1);
        assert_eq!(q.len(), 2);
    }

    #[test]
    fn out_of_range_band_clamps() {
        fn everything_band_9(_: Dscp) -> usize {
            9
        }
        let mut q: StrictPriorityQueue<()> =
            StrictPriorityQueue::new(vec![QueueLimits::packets(4); 2], everything_band_9);
        q.enqueue(pkt(0, 10, Dscp::BEST_EFFORT)).unwrap();
        assert_eq!(q.band_len(1), 1);
    }

    #[test]
    fn bytes_accounting_across_bands() {
        let mut q: StrictPriorityQueue<()> =
            StrictPriorityQueue::ef_default(QueueLimits::UNBOUNDED, QueueLimits::UNBOUNDED);
        q.enqueue(pkt(0, 700, Dscp::EF)).unwrap();
        q.enqueue(pkt(1, 300, Dscp::BEST_EFFORT)).unwrap();
        assert_eq!(q.bytes(), 1000);
        q.dequeue();
        assert_eq!(q.bytes(), 300);
    }
}
