//! Packets and their identifiers.
//!
//! A [`Packet`] is what traverses the simulated network: a wire size, a
//! Diff-Serv code point, addressing, optional IP-fragmentation bookkeeping,
//! and a typed payload `P` supplied by the layer above (the streaming crate
//! uses this to carry media/transport headers; tests often use `()`).
//!
//! The DSCP type lives here rather than in `dsv-diffserv` because queueing
//! disciplines in this crate map code points to priority bands; the
//! conditioning logic that *sets* code points lives in `dsv-diffserv`.

use std::fmt;

use dsv_sim::SimTime;

/// Identifies a node (host or router) in a [`crate::network::Network`].
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct NodeId(pub u32);

/// Identifies an output port on a node.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct PortId(pub u16);

/// Identifies a flow (an application conversation) for classification and
/// accounting.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct FlowId(pub u32);

/// Globally unique packet identifier, assigned at send time.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct PacketId(pub u64);

/// A Differentiated Services code point (6 bits, RFC 2474).
#[derive(Clone, Copy, PartialEq, Eq, Hash)]
pub struct Dscp(pub u8);

impl Dscp {
    /// Default forwarding / best effort (000000).
    pub const BEST_EFFORT: Dscp = Dscp(0b000000);
    /// Expedited Forwarding (RFC 3246): 101110.
    ///
    /// The paper quotes the pre-RFC3246 QBone marking `101100`; both are
    /// provided, and equality is on the raw bits, so testbeds pick one.
    pub const EF: Dscp = Dscp(0b101110);
    /// The EF code point as configured on the paper's routers (101100).
    pub const EF_QBONE: Dscp = Dscp(0b101100);
    /// Class selector 0..7 (backwards-compatible IP precedence).
    pub const fn cs(class: u8) -> Dscp {
        Dscp((class & 0x7) << 3)
    }
    /// Assured Forwarding class `c` in 1..=4, drop precedence `p` in 1..=3
    /// (RFC 2597 layout: cccdd0).
    pub const fn af(c: u8, p: u8) -> Dscp {
        Dscp((c << 3) | (p << 1))
    }

    /// Raw 6-bit value.
    pub const fn bits(self) -> u8 {
        self.0 & 0x3F
    }

    /// True if this code point is one of the EF markings.
    pub fn is_ef(self) -> bool {
        self == Dscp::EF || self == Dscp::EF_QBONE
    }
}

impl fmt::Debug for Dscp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.is_ef() {
            write!(f, "EF({:06b})", self.0)
        } else if *self == Dscp::BEST_EFFORT {
            write!(f, "BE")
        } else {
            write!(f, "DSCP({:06b})", self.0)
        }
    }
}

/// Transport protocol tag — affects nothing in the forwarding plane, but
/// lets classifiers and traces distinguish streams.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum Proto {
    /// Datagram traffic (the paper's UDP streaming and cross traffic).
    Udp,
    /// The mini-TCP transport in `dsv-stream`.
    Tcp,
    /// Anything else.
    Other,
}

/// IP-fragmentation bookkeeping.
///
/// Servers that write application datagrams larger than the MTU (the paper's
/// NetShow Theater / ThunderCastIP behaviour, up to 16280 bytes) have them
/// split into MTU-sized fragments by the host stack. Losing **any** fragment
/// loses the whole datagram — the amplification behind the paper's
/// "bi-modal" finding for such servers.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub struct FragmentInfo {
    /// Identifies the original application datagram.
    pub datagram: u64,
    /// Index of this fragment within the datagram (0-based).
    pub index: u16,
    /// Total number of fragments in the datagram.
    pub count: u16,
}

/// A packet on the wire.
#[derive(Clone, Debug)]
pub struct Packet<P> {
    /// Unique id, assigned by the network at send time.
    pub id: PacketId,
    /// Flow this packet belongs to.
    pub flow: FlowId,
    /// Originating host.
    pub src: NodeId,
    /// Destination host.
    pub dst: NodeId,
    /// Bytes on the wire, including all headers.
    pub size: u32,
    /// Diff-Serv code point currently marked on the packet.
    pub dscp: Dscp,
    /// Transport protocol tag.
    pub proto: Proto,
    /// Fragmentation bookkeeping, if this packet is an IP fragment.
    pub fragment: Option<FragmentInfo>,
    /// Time the packet left its source application.
    pub sent_at: SimTime,
    /// Typed payload carried for the receiving application.
    pub payload: P,
}

impl<P> Packet<P> {
    /// One-way delay experienced so far, relative to `now`.
    pub fn age(&self, now: SimTime) -> dsv_sim::SimDuration {
        now.saturating_since(self.sent_at)
    }
}

/// Why a packet was discarded.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum DropReason {
    /// Token-bucket policer found it non-conformant.
    PolicerNonConformant,
    /// A shaper's delay queue overflowed.
    ShaperOverflow,
    /// A router/host queue was full.
    QueueOverflow,
    /// No route to the destination (configuration error surfaced as a drop
    /// in stats rather than a panic inside the event loop).
    NoRoute,
    /// Dropped by an application-level decision (e.g. reassembly timeout).
    Application,
}

impl fmt::Display for DropReason {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            DropReason::PolicerNonConformant => "policer",
            DropReason::ShaperOverflow => "shaper-overflow",
            DropReason::QueueOverflow => "queue-overflow",
            DropReason::NoRoute => "no-route",
            DropReason::Application => "application",
        };
        f.write_str(s)
    }
}

/// The Ethernet MTU used throughout the paper's experiments.
pub const ETHERNET_MTU: u32 = 1500;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dscp_constants() {
        assert_eq!(Dscp::EF.bits(), 0b101110);
        assert_eq!(Dscp::EF_QBONE.bits(), 0b101100);
        assert!(Dscp::EF.is_ef());
        assert!(Dscp::EF_QBONE.is_ef());
        assert!(!Dscp::BEST_EFFORT.is_ef());
        assert_eq!(Dscp::cs(5).bits(), 0b101000);
        assert_eq!(Dscp::af(1, 1).bits(), 0b001010);
        assert_eq!(Dscp::af(4, 3).bits(), 0b100110);
    }

    #[test]
    fn dscp_debug_formatting() {
        assert_eq!(format!("{:?}", Dscp::EF), "EF(101110)");
        assert_eq!(format!("{:?}", Dscp::BEST_EFFORT), "BE");
        assert_eq!(format!("{:?}", Dscp::cs(1)), "DSCP(001000)");
    }

    #[test]
    fn packet_age() {
        let p = Packet {
            id: PacketId(1),
            flow: FlowId(1),
            src: NodeId(0),
            dst: NodeId(1),
            size: 1500,
            dscp: Dscp::EF,
            proto: Proto::Udp,
            fragment: None,
            sent_at: SimTime::from_millis(10),
            payload: (),
        };
        assert_eq!(
            p.age(SimTime::from_millis(25)),
            dsv_sim::SimDuration::from_millis(15)
        );
        // Age never goes negative.
        assert_eq!(p.age(SimTime::from_millis(5)), dsv_sim::SimDuration::ZERO);
    }
}
