//! Log-scale duration histogram for delay/jitter analysis.
//!
//! The paper's delay discussion (and its conclusion-section concern about
//! EF burst accumulation across hops) needs more than mean/min/max: the
//! spread of the delay distribution is the jitter a playback buffer must
//! absorb. [`DurationHistogram`] keeps 64 logarithmic buckets from 1 µs to
//! ~2.6 hours with O(1) recording and no allocation, and answers quantile
//! queries with bucket resolution (≤ ~19 % relative error — ample for
//! jitter comparisons across configurations).

use dsv_sim::SimDuration;

/// Number of buckets (eighth-decade spacing covers 1 µs → ~28 minutes).
const BUCKETS: usize = 128;

/// A fixed-size logarithmic histogram of durations.
#[derive(Debug, Clone)]
pub struct DurationHistogram {
    counts: [u64; BUCKETS],
    total: u64,
}

impl Default for DurationHistogram {
    fn default() -> Self {
        DurationHistogram {
            counts: [0; BUCKETS],
            total: 0,
        }
    }
}

/// Bucket boundaries: bucket k covers [1 µs · G^k, 1 µs · G^(k+1)) with
/// G = 10^(1/8) ≈ 1.334 (eighth-decade).
fn bucket_floor_ns(k: usize) -> f64 {
    1_000.0 * 10f64.powf(k as f64 / 8.0)
}

/// `bucket_of` as originally defined by the float formula; kept as the
/// source of truth the integer thresholds are derived from (and checked
/// against in tests).
fn bucket_of_float(ns_total: u64) -> usize {
    let ns = ns_total as f64;
    if ns < 1_000.0 {
        return 0;
    }
    let k = ((ns / 1_000.0).log10() * 8.0).floor() as usize;
    k.min(BUCKETS - 1)
}

/// Smallest nanosecond value belonging to each bucket, derived once from
/// the float formula so the integer classifier reproduces it bit-exactly
/// (including any floating-point quirks at the decade boundaries).
fn bucket_thresholds() -> &'static [u64; BUCKETS] {
    use std::sync::OnceLock;
    static THRESHOLDS: OnceLock<[u64; BUCKETS]> = OnceLock::new();
    THRESHOLDS.get_or_init(|| {
        let mut t = [0u64; BUCKETS];
        for (k, slot) in t.iter_mut().enumerate().skip(1) {
            // Start from the analytic boundary and walk to the exact
            // integer where the float formula first reports bucket k.
            let mut ns = (1_000.0 * 10f64.powf(k as f64 / 8.0)) as u64;
            while bucket_of_float(ns) >= k {
                ns -= 1;
            }
            while bucket_of_float(ns) < k {
                ns += 1;
            }
            *slot = ns;
        }
        t
    })
}

fn bucket_of(d: SimDuration) -> usize {
    let ns = d.as_nanos();
    let t = bucket_thresholds();
    // partition_point returns how many thresholds are <= ns; thresholds
    // for buckets 1.. are strictly increasing, so that count is the
    // bucket index (values below 1 µs fall into bucket 0).
    t[1..].partition_point(|&b| b <= ns)
}

impl DurationHistogram {
    /// Create empty.
    pub fn new() -> Self {
        Self::default()
    }

    /// Record one duration.
    pub fn record(&mut self, d: SimDuration) {
        self.counts[bucket_of(d)] += 1;
        self.total += 1;
    }

    /// Number of samples.
    pub fn count(&self) -> u64 {
        self.total
    }

    /// Fold another histogram's samples into this one. Buckets are fixed
    /// and identical across instances, so the merge is an element-wise
    /// sum — exactly the histogram a single collector would have built
    /// from the union of the samples (the sharded engine merges per-domain
    /// statistics this way).
    pub fn merge(&mut self, other: &DurationHistogram) {
        for (mine, theirs) in self.counts.iter_mut().zip(other.counts.iter()) {
            *mine += theirs;
        }
        self.total += other.total;
    }

    /// Approximate quantile `q` in [0, 1]; `None` if empty. Returns the
    /// geometric midpoint of the bucket containing the quantile.
    pub fn quantile(&self, q: f64) -> Option<SimDuration> {
        if self.total == 0 {
            return None;
        }
        let q = q.clamp(0.0, 1.0);
        let target = (q * self.total as f64).ceil().max(1.0) as u64;
        let mut cum = 0u64;
        for (k, &c) in self.counts.iter().enumerate() {
            cum += c;
            if cum >= target {
                let mid = bucket_floor_ns(k) * 10f64.powf(1.0 / 16.0);
                return Some(SimDuration::from_nanos(mid as u64));
            }
        }
        unreachable!("cumulative count must reach total");
    }

    /// p99 − p50 spread: a robust jitter measure.
    pub fn jitter(&self) -> Option<SimDuration> {
        let p99 = self.quantile(0.99)?;
        let p50 = self.quantile(0.50)?;
        Some(p99.saturating_sub_or_zero(p50))
    }
}

/// Saturating subtraction helper on durations.
trait SatSub {
    fn saturating_sub_or_zero(self, other: SimDuration) -> SimDuration;
}

impl SatSub for SimDuration {
    fn saturating_sub_or_zero(self, other: SimDuration) -> SimDuration {
        if self > other {
            self - other
        } else {
            SimDuration::ZERO
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_has_no_quantiles() {
        let h = DurationHistogram::new();
        assert_eq!(h.quantile(0.5), None);
        assert_eq!(h.jitter(), None);
        assert_eq!(h.count(), 0);
    }

    #[test]
    fn single_sample_every_quantile_in_its_bucket() {
        let mut h = DurationHistogram::new();
        h.record(SimDuration::from_millis(10));
        for q in [0.0, 0.5, 0.99, 1.0] {
            let v = h.quantile(q).unwrap().as_secs_f64();
            assert!(
                (0.008..0.020).contains(&v),
                "q={q}: {v}s should be within the 10 ms bucket"
            );
        }
    }

    #[test]
    fn quantiles_are_ordered_and_roughly_correct() {
        let mut h = DurationHistogram::new();
        // 90 fast samples at ~1 ms, 10 slow at ~1 s.
        for _ in 0..90 {
            h.record(SimDuration::from_millis(1));
        }
        for _ in 0..10 {
            h.record(SimDuration::from_secs(1));
        }
        let p50 = h.quantile(0.5).unwrap();
        let p95 = h.quantile(0.95).unwrap();
        let p99 = h.quantile(0.99).unwrap();
        assert!(p50 <= p95);
        assert!(p95 <= p99);
        assert!(p50.as_secs_f64() < 0.01, "p50 {p50}");
        assert!(p99.as_secs_f64() > 0.5, "p99 {p99}");
        let jitter = h.jitter().unwrap();
        assert!(jitter.as_secs_f64() > 0.5);
    }

    #[test]
    fn bucket_resolution_error_is_bounded() {
        // Any value maps to a bucket whose midpoint is within a factor of
        // G^(1/2) ≈ 1.155.
        for &ms in &[1u64, 3, 10, 33, 100, 333, 1000] {
            let mut h = DurationHistogram::new();
            let d = SimDuration::from_millis(ms);
            h.record(d);
            let est = h.quantile(0.5).unwrap().as_secs_f64();
            let truth = d.as_secs_f64();
            let ratio = (est / truth).max(truth / est);
            assert!(ratio < 1.19, "{ms} ms: ratio {ratio}");
        }
    }

    #[test]
    fn integer_thresholds_match_float_formula_exactly() {
        // Around every bucket boundary the table classifier must agree
        // with the original float formula bit-for-bit.
        for &t in bucket_thresholds().iter().skip(1) {
            for ns in t.saturating_sub(3)..=t + 3 {
                assert_eq!(
                    bucket_of(SimDuration::from_nanos(ns)),
                    bucket_of_float(ns),
                    "divergence at {ns} ns"
                );
            }
        }
        // And across a deterministic pseudo-random sweep of magnitudes.
        let mut x = 0x9e37_79b9_7f4a_7c15u64;
        for _ in 0..20_000 {
            x ^= x << 13;
            x ^= x >> 7;
            x ^= x << 17;
            let ns = x % 8_000_000_000_000_000_000;
            assert_eq!(
                bucket_of(SimDuration::from_nanos(ns)),
                bucket_of_float(ns),
                "divergence at {ns} ns"
            );
        }
    }

    #[test]
    fn sub_microsecond_and_huge_values_clamp() {
        let mut h = DurationHistogram::new();
        h.record(SimDuration::from_nanos(5));
        h.record(SimDuration::from_secs(100_000));
        assert_eq!(h.count(), 2);
        assert!(h.quantile(0.0).is_some());
        assert!(h.quantile(1.0).is_some());
    }
}
