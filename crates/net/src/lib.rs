//! # dsv-net — the packet network substrate
//!
//! Deterministic store-and-forward packet network built on the
//! [`dsv_sim`] event engine: packets, links, queueing disciplines, routers
//! with ingress-conditioning hooks, host applications, cross-traffic
//! generators and measurement.
//!
//! This crate reproduces the *plumbing* of the paper's two testbeds — the
//! three-router Frame-Relay local testbed and the multi-hop QBone path —
//! while knowing nothing about Diff-Serv semantics (see `dsv-diffserv`) or
//! video (see `dsv-media` / `dsv-stream`). The split mirrors the Diff-Serv
//! architecture itself: forwarding and scheduling here, conditioning policy
//! above.
//!
//! ## Quick tour
//!
//! ```
//! use dsv_net::prelude::*;
//! use dsv_sim::{SimDuration, SimTime};
//!
//! // Build: source host — router — sink host, 2 Mbps bottleneck.
//! // (The payload type is `()` here; `dsv-stream` uses its own.)
//! let mut b = NetworkBuilder::<()>::new();
//! let sink = b.add_host("sink", Box::new(CountingSink::default()));
//! let r = b.add_router("r1");
//! let src = b.add_host("src", Box::new(CbrSource {
//!     dst: sink,
//!     flow: FlowId(1),
//!     packet_size: 1500,
//!     rate_bps: 1_000_000,
//!     dscp: Dscp::BEST_EFFORT,
//!     stop_at: SimTime::from_secs(1),
//! }));
//! b.connect(src, r, Link::ethernet_10mbps());
//! b.connect(r, sink, Link::new(2_000_000, SimDuration::from_micros(500)));
//!
//! let mut sim = Simulation::new(b.build());
//! sim.run();
//! let stats = sim.net.stats.flow(FlowId(1));
//! assert_eq!(stats.tx_packets, stats.rx_packets);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod app;
#[cfg(feature = "audit")]
pub mod audit;
pub mod conditioner;
pub mod features;
pub mod frame_relay;
pub mod histogram;
pub mod link;
pub mod network;
pub mod packet;
pub mod pool;
pub mod qdisc;
pub mod shard;
pub mod stats;
pub mod traffic;
pub mod wred;

/// Convenient re-exports of the names almost every user needs.
pub mod prelude {
    pub use crate::app::{AppCtx, Application, Handle, NullApp, SendSpec, Shared};
    pub use crate::conditioner::{
        ConditionOutcome, Conditioner, PassThrough, QuickVerdict, Released,
    };
    pub use crate::features::{FeatureExtractor, FlowFeatures};
    pub use crate::frame_relay::{FrInterfaceType, FrameRelayProfile};
    pub use crate::histogram::DurationHistogram;
    pub use crate::link::Link;
    pub use crate::network::{NetEvent, Network, NetworkBuilder, Simulation};
    pub use crate::packet::{
        DropReason, Dscp, FlowId, FragmentInfo, NodeId, Packet, PacketId, PortId, Proto,
        ETHERNET_MTU,
    };
    pub use crate::pool::{PacketPool, PacketRef};
    pub use crate::qdisc::{
        ef_high_priority, DropTailQueue, EnqueueResult, Qdisc, QueueLimits, StrictPriorityQueue,
    };
    pub use crate::shard::{partition_nodes, set_shards_for_process, shards_from_env, Partition};
    pub use crate::stats::{DelaySummary, FlowCounters, NetStats, TraceEntry, TraceKind};
    pub use crate::traffic::{CbrSource, CountingSink, OnOffSource, PoissonSource};
    pub use crate::wred::{drop_precedence, WredParams, WredQueue};
}
