//! Symmetry-normal form of a [`ScenarioSpec`].
//!
//! Grid sweeps produce many specs that describe *the same simulation*
//! under different presentation: node names differ, flow labels differ,
//! order-insensitive declarations (audit bounds, conditioners on distinct
//! routers) are listed in a different order, or whole client/server pairs
//! are the same declarations rotated through different labels. The
//! canonicalizer rewrites a spec into a normal form that erases exactly
//! those degrees of freedom — and nothing else — so two specs have equal
//! canonical JSON **iff** the rewrites below prove their simulations
//! byte-identical per declaration position.
//!
//! What the canonical form erases (presentation-only):
//!
//! * the scenario `name` and conditioner fault-`tap` labels;
//! * node **names** — the compiler resolves names to positional
//!   `NodeId`s, so node `i` is renamed `"n{i}"` and every reference
//!   (app targets, link endpoints, conditioner and bound nodes) follows;
//! * flow **labels** — the engine routes by destination node and matches
//!   flows only through rules the canonicalizer rewrites consistently,
//!   so flow ids are relabelled densely in first-appearance order;
//! * the order of audit `bounds` (pure observers) and of conditioners
//!   (each installs on a distinct router; installation order across
//!   routers does not affect packet processing).
//!
//! What it deliberately **keeps** (semantic):
//!
//! * node declaration order — it fixes `NodeId`s, and ids break event
//!   ties (`EventStamp` orders same-instant events by origin node), so
//!   reordering non-identical declarations changes drop attribution;
//! * link declaration order — port order and route tie-breaking follow
//!   it;
//! * rule order within one conditioner — first match wins;
//! * `seed` and every `rng_fork` label — the scenario RNG is stateful:
//!   `SimRng::fork` consumes parent state at each stochastic app in node
//!   order (the PR-5 determinism contract), so fork *labels* and fork
//!   *order* are both part of the simulation's identity and must survive
//!   canonicalization verbatim.
//!
//! Because identical declarations relabel to identical bytes, a
//! permutation of symmetric client/server pairs (the N-flow aggregate's
//! in-phase flows) canonicalizes to the same spec; the retained
//! [`Canonical::flow_canon`] map then lets a caller transplant per-flow
//! outcomes between two specs that share a canonical form — see
//! `dsv-core`'s cluster layer.

use std::collections::HashMap;

use crate::spec::{AppSpec, BoundSpec, ConditionerSpec, LinkSpec, NodeSpec, ScenarioSpec};

/// A spec in symmetry-normal form, plus the maps back to the original
/// labels.
#[derive(Debug, Clone)]
pub struct Canonical {
    /// The normalized spec; its [`ScenarioSpec::canonical_json`] is the
    /// clustering / cache identity.
    pub spec: ScenarioSpec,
    /// Original node names in declaration (= id) order; entry `i` is the
    /// name `"n{i}"` replaced.
    pub node_names: Vec<String>,
    /// Original flow id → canonical flow id, in first-appearance order
    /// (canonical ids are dense from 0).
    pub flow_canon: Vec<(u32, u32)>,
}

impl Canonical {
    /// The canonical flow id of an original flow id, if the flow appears
    /// anywhere in the spec.
    pub fn canon_flow(&self, orig: u32) -> Option<u32> {
        self.flow_canon
            .iter()
            .find(|(o, _)| *o == orig)
            .map(|(_, c)| *c)
    }

    /// The original flow id carrying canonical id `canon`.
    pub fn orig_flow(&self, canon: u32) -> Option<u32> {
        self.flow_canon
            .iter()
            .find(|(_, c)| *c == canon)
            .map(|(o, _)| *o)
    }

    /// Canonical JSON of the normalized spec.
    pub fn json(&self) -> String {
        self.spec.canonical_json()
    }
}

/// Relabelling state: node renames and the dense flow map.
struct Relabel {
    nodes: HashMap<String, String>,
    flows: HashMap<u32, u32>,
    flow_order: Vec<(u32, u32)>,
}

impl Relabel {
    fn node(&self, name: &str) -> String {
        // An unresolved name is a spec error the compiler reports; the
        // canonical form keeps it verbatim so the error stays visible.
        self.nodes
            .get(name)
            .cloned()
            .unwrap_or_else(|| name.to_string())
    }

    fn flow(&mut self, orig: u32) -> u32 {
        if let Some(&c) = self.flows.get(&orig) {
            return c;
        }
        let c = self.flows.len() as u32;
        self.flows.insert(orig, c);
        self.flow_order.push((orig, c));
        c
    }
}

fn canon_app(app: &AppSpec, r: &mut Relabel) -> AppSpec {
    let mut app = app.clone();
    match &mut app {
        AppSpec::PacedServer { client, flow, .. }
        | AppSpec::BurstyServer { client, flow, .. }
        | AppSpec::MultiRatePacedServer { client, flow, .. }
        | AppSpec::AdaptiveServer { client, flow, .. }
        | AppSpec::TcpServer { client, flow, .. }
        | AppSpec::AbrServer { client, flow, .. }
        | AppSpec::BulkTcpSender { client, flow, .. } => {
            *client = r.node(client);
            *flow = r.flow(*flow);
        }
        AppSpec::StreamClient {
            server, up_flow, ..
        }
        | AppSpec::AbrClient {
            server, up_flow, ..
        }
        | AppSpec::BulkTcpSink {
            server, up_flow, ..
        } => {
            *server = r.node(server);
            *up_flow = r.flow(*up_flow);
        }
        AppSpec::OnOffSource { dst, flow, .. } | AppSpec::Pump { dst, flow, .. } => {
            *dst = r.node(dst);
            *flow = r.flow(*flow);
        }
        AppSpec::CountingSink | AppSpec::IdSink => {}
    }
    app
}

/// Canonicalize `spec`. See the module docs for exactly which rewrites
/// this applies and why each is simulation-preserving.
pub fn canonicalize(spec: &ScenarioSpec) -> Canonical {
    let mut r = Relabel {
        nodes: spec
            .nodes
            .iter()
            .enumerate()
            .map(|(i, n)| (n.name.clone(), format!("n{i}")))
            .collect(),
        flows: HashMap::new(),
        flow_order: Vec::new(),
    };

    // Nodes first (declaration order is id order and RNG-fork order, so
    // it is preserved — and it fixes the flow relabelling).
    let nodes: Vec<NodeSpec> = spec
        .nodes
        .iter()
        .enumerate()
        .map(|(i, n)| NodeSpec {
            name: format!("n{i}"),
            app: n.app.as_ref().map(|a| canon_app(a, &mut r)),
        })
        .collect();

    let links: Vec<LinkSpec> = spec
        .links
        .iter()
        .map(|l| LinkSpec {
            a: r.node(&l.a),
            b: r.node(&l.b),
            ..l.clone()
        })
        .collect();

    let mut conditioners: Vec<ConditionerSpec> = spec
        .conditioners
        .iter()
        .map(|c| ConditionerSpec {
            node: r.node(&c.node),
            tap: None,
            rules: c
                .rules
                .iter()
                .map(|rule| {
                    let mut rule = rule.clone();
                    if let Some(src) = &rule.matches.src {
                        rule.matches.src = Some(r.node(src));
                    }
                    if let Some(dst) = &rule.matches.dst {
                        rule.matches.dst = Some(r.node(dst));
                    }
                    if let Some(flow) = rule.matches.flow {
                        rule.matches.flow = Some(r.flow(flow));
                    }
                    rule
                })
                .collect(),
        })
        .collect();
    // Conditioners install on distinct routers; cross-router order is
    // presentation. Sort by the canonical spec bytes so ties (several
    // conditioners on one node — rule-order within each is untouched)
    // still order deterministically.
    conditioners.sort_by(|a, b| {
        (
            node_index(&a.node),
            serde_json::to_string(a).unwrap_or_default(),
        )
            .cmp(&(
                node_index(&b.node),
                serde_json::to_string(b).unwrap_or_default(),
            ))
    });

    let mut bounds: Vec<BoundSpec> = spec
        .bounds
        .iter()
        .map(|bnd| BoundSpec {
            node: r.node(&bnd.node),
            flow: r.flow(bnd.flow),
            ..*bnd
        })
        .collect();
    bounds.sort_by_key(|b| (node_index(&b.node), b.flow, b.rate_bps, b.depth_bytes));

    Canonical {
        spec: ScenarioSpec {
            name: String::new(),
            seed: spec.seed,
            nodes,
            links,
            conditioners,
            bounds,
            horizon_ns: spec.horizon_ns,
        },
        node_names: spec.nodes.iter().map(|n| n.name.clone()).collect(),
        flow_canon: r.flow_order,
    }
}

/// Positional index behind a canonical node name (`"n{i}"` → `i`); names
/// the relabeller left verbatim sort after all canonical ones.
fn node_index(canon_name: &str) -> u64 {
    canon_name
        .strip_prefix('n')
        .and_then(|s| s.parse().ok())
        .unwrap_or(u64::MAX)
}

/// For every flow of `member`, the flow of `rep` occupying the same
/// canonical position. Only meaningful when both canonicalize to the same
/// spec (`member.json() == rep.json()`); returns `None` otherwise or when
/// the flow sets do not line up.
pub fn flow_counterparts(member: &Canonical, rep: &Canonical) -> Option<Vec<(u32, u32)>> {
    if member.flow_canon.len() != rep.flow_canon.len() {
        return None;
    }
    member
        .flow_canon
        .iter()
        .map(|&(orig, canon)| rep.orig_flow(canon).map(|r| (orig, r)))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::{
        ActionSpec, AppSpec, ClipId2, CodecSpec, DscpSpec, LinkParams, MatchSpec, MediaRef,
        RuleSpec, TransportSpec,
    };

    fn media() -> MediaRef {
        MediaRef {
            clip: ClipId2::Lost,
            codec: CodecSpec::Mpeg1,
            rate_bps: 1_000_000,
        }
    }

    /// A two-pair aggregate-shaped scenario with the pair carrying label
    /// `l(p)` declared at position `p`.
    fn pairs_spec(labels: [u32; 2], name: &str) -> ScenarioSpec {
        let mut s = ScenarioSpec::new(name, 7);
        for &l in &labels {
            s.nodes.push(NodeSpec::host(
                &format!("client-{l}"),
                AppSpec::StreamClient {
                    server: format!("server-{l}"),
                    up_flow: 1000 + l,
                    media: media(),
                    transport: TransportSpec::Udp,
                    feedback_us: None,
                },
            ));
        }
        s.nodes.push(NodeSpec::router("edge"));
        for &l in &labels {
            s.nodes.push(NodeSpec::host(
                &format!("server-{l}"),
                AppSpec::PacedServer {
                    client: format!("client-{l}"),
                    flow: 1 + l,
                    dscp: DscpSpec::EfQbone,
                    media: media(),
                },
            ));
        }
        for &l in &labels {
            s.links.push(LinkSpec::simple(
                &format!("client-{l}"),
                "edge",
                LinkParams::ethernet_10mbps(),
            ));
        }
        for &l in &labels {
            s.links.push(LinkSpec::simple(
                &format!("server-{l}"),
                "edge",
                LinkParams::fast_ethernet(),
            ));
        }
        s.conditioners.push(ConditionerSpec {
            node: "edge".to_string(),
            tap: Some("ingress".to_string()),
            rules: vec![RuleSpec {
                matches: MatchSpec::dscp(DscpSpec::EfQbone),
                action: ActionSpec::Police {
                    rate_bps: 2_000_000,
                    depth_bytes: 3000,
                    conform_mark: None,
                },
            }],
        });
        for &l in &[labels[0].min(labels[1]), labels[0].max(labels[1])] {
            s.bounds.push(crate::spec::BoundSpec {
                node: "edge".to_string(),
                flow: 1 + l,
                rate_bps: 2_000_000,
                depth_bytes: 3000,
            });
        }
        s
    }

    #[test]
    fn canonical_form_is_a_fixpoint() {
        let c = canonicalize(&pairs_spec([0, 1], "a"));
        let c2 = canonicalize(&c.spec);
        assert_eq!(c.json(), c2.json());
    }

    #[test]
    fn names_and_taps_are_presentation_only() {
        let a = pairs_spec([0, 1], "a");
        let mut b = pairs_spec([0, 1], "renamed");
        for n in &mut b.nodes {
            n.name = n.name.replace("client", "cl").replace("server", "sv");
        }
        for l in &mut b.links {
            l.a = l.a.replace("client", "cl").replace("server", "sv");
        }
        for app in b.nodes.iter_mut().filter_map(|n| n.app.as_mut()) {
            match app {
                AppSpec::StreamClient { server, .. } => *server = server.replace("server", "sv"),
                AppSpec::PacedServer { client, .. } => *client = client.replace("client", "cl"),
                _ => {}
            }
        }
        b.conditioners[0].tap = None;
        assert_ne!(a.canonical_json(), b.canonical_json());
        assert_eq!(canonicalize(&a).json(), canonicalize(&b).json());
    }

    #[test]
    fn rotated_pair_labels_share_a_canonical_form() {
        // The same two identical client/server pairs declared with the
        // labels swapped: a pure relabelling, so the canonical forms
        // coincide and the flow maps cross.
        let a = canonicalize(&pairs_spec([0, 1], "a"));
        let b = canonicalize(&pairs_spec([1, 0], "a"));
        assert_eq!(a.json(), b.json());
        let map = flow_counterparts(&b, &a).expect("flows line up");
        // b's media flow 2 (label 1, declared first) sits where a's
        // media flow 1 (label 0, declared first) sits.
        assert!(map.contains(&(2, 1)));
        assert!(map.contains(&(1, 2)));
        assert!(map.contains(&(1001, 1000)));
        assert!(map.contains(&(1000, 1001)));
    }

    #[test]
    fn bounds_order_is_presentation_only() {
        let a = pairs_spec([0, 1], "a");
        let mut b = pairs_spec([0, 1], "a");
        b.bounds.reverse();
        assert_eq!(canonicalize(&a).json(), canonicalize(&b).json());
    }

    #[test]
    fn perturbed_conditioner_row_breaks_the_symmetry() {
        let a = pairs_spec([0, 1], "a");
        let mut b = pairs_spec([1, 0], "a");
        if let ActionSpec::Police { depth_bytes, .. } = &mut b.conditioners[0].rules[0].action {
            *depth_bytes += 1;
        }
        assert_ne!(canonicalize(&a).json(), canonicalize(&b).json());
    }

    #[test]
    fn node_declaration_order_is_semantic() {
        // Swapping two *different* declarations changes ids (event
        // tie-breaking, RNG fork order) — the canonical forms must
        // differ even though the name-resolved topology is the same.
        let a = pairs_spec([0, 1], "a");
        let mut b = pairs_spec([0, 1], "a");
        b.nodes.swap(0, 2); // client-0 ↔ the router
        assert_ne!(canonicalize(&a).json(), canonicalize(&b).json());
    }

    #[test]
    fn rng_fork_labels_are_semantic() {
        let mk = |fork: u64| {
            let mut s = ScenarioSpec::new("ct", 7);
            s.nodes.push(NodeSpec::host("sink", AppSpec::CountingSink));
            s.nodes.push(NodeSpec::host(
                "src",
                AppSpec::OnOffSource {
                    dst: "sink".to_string(),
                    flow: 100,
                    packet_size: 1000,
                    peak_rate_bps: 30_000_000,
                    mean_on_us: 200_000,
                    mean_off_us: 200_000,
                    dscp: DscpSpec::BestEffort,
                    stop_at_us: 200_000_000,
                    rng_fork: fork,
                },
            ));
            s.links
                .push(LinkSpec::simple("src", "sink", LinkParams::fast_ethernet()));
            s
        };
        assert_ne!(canonicalize(&mk(1)).json(), canonicalize(&mk(2)).json());
    }

    #[test]
    fn flow_labels_are_presentation_only_when_rules_follow() {
        // Relabelling a flow everywhere it appears — app, matching rule,
        // bound — canonicalizes identically; relabelling it only in the
        // app does not.
        let mk = |flow: u32, rule_flow: u32| {
            let mut s = ScenarioSpec::new("f", 7);
            s.nodes.push(NodeSpec::host("rx", AppSpec::IdSink));
            s.nodes.push(NodeSpec::router("mid"));
            s.nodes.push(NodeSpec::host(
                "tx",
                AppSpec::Pump {
                    dst: "rx".to_string(),
                    flow,
                    count: 10,
                    size: 1500,
                    gap_ns: 1_000_000,
                },
            ));
            s.links
                .push(LinkSpec::simple("tx", "mid", LinkParams::fast_ethernet()));
            s.links
                .push(LinkSpec::simple("mid", "rx", LinkParams::fast_ethernet()));
            s.conditioners.push(ConditionerSpec {
                node: "mid".to_string(),
                tap: None,
                rules: vec![RuleSpec {
                    matches: MatchSpec::flow(rule_flow),
                    action: ActionSpec::Pass,
                }],
            });
            s
        };
        assert_eq!(
            canonicalize(&mk(1, 1)).json(),
            canonicalize(&mk(9, 9)).json()
        );
        assert_ne!(
            canonicalize(&mk(1, 1)).json(),
            canonicalize(&mk(9, 1)).json()
        );
    }
}
