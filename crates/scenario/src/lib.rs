//! # dsv-scenario — the declarative scenario IR
//!
//! Every experiment in this repository is one shape: sources and sinks,
//! traffic conditioners (EF policers/shapers, AF meters), a topology, and
//! measurement taps. This crate makes that shape **data**: a serializable
//! [`ScenarioSpec`] names its nodes and wires them with links, queue
//! disciplines, conditioner tables (with named fault taps) and audit
//! bounds; [`compile`] lowers a spec onto `dsv-net`'s `NetworkBuilder`
//! with name-based node resolution, so experiment code never touches a
//! raw `NodeId` and can never break when creation order changes.
//!
//! ## Determinism
//!
//! The compiler is a pure function of the spec (plus the [`ClipStore`]
//! resolving media references): builder calls happen in spec declaration
//! order, the scenario RNG forks at each stochastic app in node order,
//! and two compiles of one spec produce byte-identical simulations. The
//! spec's canonical JSON ([`ScenarioSpec::canonical_json`]) is therefore
//! a faithful content address for a run's entire topology, which is what
//! the sweep runner's cache keys on.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod apps;
pub mod canonical;
pub mod compile;
pub mod partition;
pub mod spec;

pub use canonical::{canonicalize, flow_counterparts, Canonical};
pub use compile::{
    compile, BoxConditioner, ClipStore, CompileError, CompileOptions, CompiledScenario,
};
pub use partition::{shard_plan, ShardPlan};
pub use spec::{
    ActionSpec, AppSpec, BoundSpec, ClipId2, CodecSpec, ConditionerSpec, CrossTrafficSpec,
    DscpSpec, LimitsSpec, LinkParams, LinkSpec, MatchSpec, MediaRef, NodeSpec, ProtoSpec,
    QdiscSpec, RuleSpec, ScenarioSpec, TransportSpec,
};
