//! Minimal test applications the scenario IR can instantiate.
//!
//! The fault-injection and differential self-tests drive a media-free
//! chain — a constant-rate source through a policed router into a sink
//! that records arrival order. Both endpoints live here so every consumer
//! of the IR (core pipelines, check fixtures, the scenario crate's own
//! tests) compiles the same applications.

use dsv_net::app::{AppCtx, Application, SendSpec};
use dsv_net::packet::{Dscp, FlowId, NodeId, Packet, Proto};
use dsv_sim::SimDuration;

/// A constant-rate source: `count` packets of `size` bytes, one every
/// `gap`.
pub struct Pump {
    /// Destination host.
    pub dst: NodeId,
    /// Flow label.
    pub flow: FlowId,
    /// Packets to offer.
    pub count: u32,
    /// Wire size of each packet, bytes.
    pub size: u32,
    /// Inter-packet gap.
    pub gap: SimDuration,
    /// Packets offered so far.
    pub sent: u32,
}

impl<P: Default> Application<P> for Pump {
    fn on_start(&mut self, ctx: &mut AppCtx<P>) {
        ctx.set_timer(SimDuration::ZERO, 0);
    }
    fn on_packet(&mut self, _ctx: &mut AppCtx<P>, _pkt: Packet<P>) {}
    fn on_timer(&mut self, ctx: &mut AppCtx<P>, _token: u64) {
        if self.sent < self.count {
            self.sent += 1;
            ctx.send(SendSpec {
                dst: self.dst,
                flow: self.flow,
                size: self.size,
                dscp: Dscp::BEST_EFFORT,
                proto: Proto::Udp,
                fragment: None,
                payload: P::default(),
            });
            ctx.set_timer(self.gap, 0);
        }
    }
}

/// Records delivered packet ids in arrival order.
#[derive(Debug, Default)]
pub struct IdSink {
    /// Packet ids, in the order they arrived.
    pub ids: Vec<u64>,
}

impl<P> Application<P> for IdSink {
    fn on_start(&mut self, _ctx: &mut AppCtx<P>) {}
    fn on_packet(&mut self, _ctx: &mut AppCtx<P>, pkt: Packet<P>) {
        self.ids.push(pkt.id.0);
    }
    fn on_timer(&mut self, _ctx: &mut AppCtx<P>, _token: u64) {}
}
