//! The serializable scenario IR.
//!
//! A [`ScenarioSpec`] is a complete, declarative description of one
//! simulation: named nodes (hosts carry an [`AppSpec`], routers carry
//! none), links with per-direction rates and queue disciplines,
//! conditioner tables with named fault taps, and measurement bounds for
//! the audit oracles. Every cross-reference is **by node name**, never by
//! `NodeId` — the compiler ([`crate::compile`]) assigns ids positionally
//! and resolves names, so specs cannot break when creation order changes.
//!
//! All types serialize to the vendored serde's canonical JSON (object
//! fields in declaration order), which makes a spec's JSON byte-stable:
//! the sweep runner content-addresses its cache with exactly that string.
//! Data-carrying enums implement serde by hand (the offline derive only
//! handles named-field structs and fieldless enums); each serializes as
//! an object with a `"kind"` discriminant followed by its fields.

use dsv_media::scene::ClipId;
use dsv_net::packet::{Dscp, Proto};
use serde::{de_field, Deserialize, Error, Serialize, Value};

/// Serializable mirror of [`ClipId`] (keeps `dsv-media` serde-free).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
#[allow(missing_docs)]
pub enum ClipId2 {
    Lost,
    Dark,
    Talk,
}

impl From<ClipId2> for ClipId {
    fn from(c: ClipId2) -> ClipId {
        match c {
            ClipId2::Lost => ClipId::Lost,
            ClipId2::Dark => ClipId::Dark,
            ClipId2::Talk => ClipId::Talk,
        }
    }
}

impl From<ClipId> for ClipId2 {
    fn from(c: ClipId) -> ClipId2 {
        match c {
            ClipId::Lost => ClipId2::Lost,
            ClipId::Dark => ClipId2::Dark,
            ClipId::Talk => ClipId2::Talk,
        }
    }
}

/// Serializable mirror of the media codecs the experiment layer encodes
/// with.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
#[allow(missing_docs)]
pub enum CodecSpec {
    Mpeg1,
    Wmv,
}

/// Serializable DSCP marking.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
#[allow(missing_docs)]
pub enum DscpSpec {
    BestEffort,
    Ef,
    EfQbone,
}

impl DscpSpec {
    /// The wire code point this name stands for.
    pub fn to_dscp(self) -> Dscp {
        match self {
            DscpSpec::BestEffort => Dscp::BEST_EFFORT,
            DscpSpec::Ef => Dscp::EF,
            DscpSpec::EfQbone => Dscp::EF_QBONE,
        }
    }
}

/// Serializable transport tag for match rules.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
#[allow(missing_docs)]
pub enum ProtoSpec {
    Udp,
    Tcp,
}

impl ProtoSpec {
    /// The `dsv-net` transport tag.
    pub fn to_proto(self) -> Proto {
        match self {
            ProtoSpec::Udp => Proto::Udp,
            ProtoSpec::Tcp => Proto::Tcp,
        }
    }
}

/// Client transport discipline.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
#[allow(missing_docs)]
pub enum TransportSpec {
    Udp,
    Tcp,
}

/// A reference to an encoded clip: which clip, which codec, what rate.
/// The compiler resolves this against a [`crate::compile::ClipStore`], so
/// the (expensive) encoding artifact never lives in the spec itself.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct MediaRef {
    /// Which clip.
    pub clip: ClipId2,
    /// Which codec encodes it.
    pub codec: CodecSpec,
    /// Encoder rate parameter, bps (CBR target or bandwidth cap).
    pub rate_bps: u64,
}

/// The application bound to a host node. All node references are names.
#[derive(Debug, Clone, PartialEq)]
pub enum AppSpec {
    /// A Video-Charger-style paced media server.
    PacedServer {
        /// Client node name.
        client: String,
        /// Media flow id.
        flow: u32,
        /// DSCP the server marks outgoing media with.
        dscp: DscpSpec,
        /// What it streams.
        media: MediaRef,
    },
    /// A NetShow-Theater-style large-datagram server.
    BurstyServer {
        /// Client node name.
        client: String,
        /// Media flow id.
        flow: u32,
        /// DSCP the server marks outgoing media with.
        dscp: DscpSpec,
        /// What it streams.
        media: MediaRef,
        /// Wait for the client's PLAY before streaming.
        wait_for_play: bool,
    },
    /// A paced server with multi-rate content selection.
    MultiRatePacedServer {
        /// Client node name.
        client: String,
        /// Media flow id.
        flow: u32,
        /// DSCP the server marks outgoing media with.
        dscp: DscpSpec,
        /// Encoding tiers to choose between.
        tiers: Vec<MediaRef>,
        /// The server's estimate of deliverable bandwidth, bps.
        estimate_bps: u64,
    },
    /// The adaptive (WMT-style) UDP server.
    AdaptiveServer {
        /// Client node name.
        client: String,
        /// Media flow id.
        flow: u32,
        /// DSCP the server marks outgoing media with.
        dscp: DscpSpec,
        /// Encoding tiers (highest last).
        tiers: Vec<MediaRef>,
    },
    /// The mini-TCP streaming server.
    TcpServer {
        /// Client node name.
        client: String,
        /// Media flow id.
        flow: u32,
        /// DSCP the server marks outgoing media with.
        dscp: DscpSpec,
        /// What it streams.
        media: MediaRef,
    },
    /// The buffer-driven ABR origin server (serves whatever ladder rung
    /// each segment request names, over one mini-TCP stream).
    AbrServer {
        /// Client node name.
        client: String,
        /// Media flow id.
        flow: u32,
        /// DSCP the server marks outgoing media with.
        dscp: DscpSpec,
        /// Ladder of encoding rates, ascending, bps.
        rungs_bps: Vec<u64>,
        /// Segment duration, µs.
        segment_us: u64,
    },
    /// The buffer-driven ABR client: fetches segments over mini-TCP,
    /// choosing the ladder rung from buffer occupancy and measured
    /// throughput.
    AbrClient {
        /// Server node name.
        server: String,
        /// Flow id of client→server traffic (requests and ACKs).
        up_flow: u32,
        /// Ladder of encoding rates, ascending, bps (must match the
        /// server's).
        rungs_bps: Vec<u64>,
        /// Buffered µs required per ladder step.
        step_us: u64,
        /// Segment duration, µs.
        segment_us: u64,
        /// Segments in the session.
        segments: u32,
        /// Buffer high-water mark, µs.
        max_buffer_us: u64,
    },
    /// A greedy bulk TCP sender (the AF throughput-guarantee flows).
    BulkTcpSender {
        /// Sink node name.
        client: String,
        /// Flow id of the data segments.
        flow: u32,
        /// DSCP pre-marking of data segments.
        dscp: DscpSpec,
        /// Application bytes to transfer.
        total_bytes: u64,
    },
    /// The ACKing sink of a bulk TCP transfer.
    BulkTcpSink {
        /// Sender node name.
        server: String,
        /// Flow id of the ACK traffic.
        up_flow: u32,
    },
    /// The streaming client / playback model.
    StreamClient {
        /// Server node name.
        server: String,
        /// Flow id of client→server traffic.
        up_flow: u32,
        /// The clip it expects (frame count, kind function, and — for
        /// TCP — per-frame sizes come from this).
        media: MediaRef,
        /// Transport mode.
        transport: TransportSpec,
        /// Feedback-report interval, µs (UDP adaptive control loop).
        feedback_us: Option<u64>,
    },
    /// A bursty on/off background source.
    OnOffSource {
        /// Sink node name.
        dst: String,
        /// Flow id.
        flow: u32,
        /// Wire size of each packet, bytes.
        packet_size: u32,
        /// Peak (ON-state) rate, bps.
        peak_rate_bps: u64,
        /// Mean ON duration, µs.
        mean_on_us: u64,
        /// Mean OFF duration, µs.
        mean_off_us: u64,
        /// DSCP marking.
        dscp: DscpSpec,
        /// Stop offering traffic at this absolute time, µs.
        stop_at_us: u64,
        /// Label for the RNG fork deriving this source's stream from the
        /// scenario seed.
        rng_fork: u64,
    },
    /// A sink that counts what it receives.
    CountingSink,
    /// A constant-rate test source (the self-test chains' `Pump`).
    Pump {
        /// Sink node name.
        dst: String,
        /// Flow id.
        flow: u32,
        /// Packets to offer.
        count: u32,
        /// Wire size of each packet, bytes.
        size: u32,
        /// Inter-packet gap, ns.
        gap_ns: u64,
    },
    /// A sink recording delivered packet ids in arrival order.
    IdSink,
}

impl AppSpec {
    /// The one TCP streaming-server fragment every testbed shares: the
    /// figure builders and the smoothing sweep construct their server
    /// through this, so the configuration (and the pacing lead baked into
    /// the compiled `TcpServerConfig`) cannot drift between them.
    pub fn tcp_server(client: &str, flow: u32, dscp: DscpSpec, media: MediaRef) -> AppSpec {
        AppSpec::TcpServer {
            client: client.to_string(),
            flow,
            dscp,
            media,
        }
    }
}

fn obj(kind: &str, fields: Vec<(String, Value)>) -> Value {
    let mut all = vec![("kind".to_string(), Value::Str(kind.to_string()))];
    all.extend(fields);
    Value::Object(all)
}

fn f(name: &str, v: impl Serialize) -> (String, Value) {
    (name.to_string(), v.to_value())
}

impl Serialize for AppSpec {
    fn to_value(&self) -> Value {
        match self {
            AppSpec::PacedServer {
                client,
                flow,
                dscp,
                media,
            } => obj(
                "paced_server",
                vec![
                    f("client", client),
                    f("flow", flow),
                    f("dscp", dscp),
                    f("media", media),
                ],
            ),
            AppSpec::BurstyServer {
                client,
                flow,
                dscp,
                media,
                wait_for_play,
            } => obj(
                "bursty_server",
                vec![
                    f("client", client),
                    f("flow", flow),
                    f("dscp", dscp),
                    f("media", media),
                    f("wait_for_play", wait_for_play),
                ],
            ),
            AppSpec::MultiRatePacedServer {
                client,
                flow,
                dscp,
                tiers,
                estimate_bps,
            } => obj(
                "multi_rate_paced_server",
                vec![
                    f("client", client),
                    f("flow", flow),
                    f("dscp", dscp),
                    f("tiers", tiers),
                    f("estimate_bps", estimate_bps),
                ],
            ),
            AppSpec::AdaptiveServer {
                client,
                flow,
                dscp,
                tiers,
            } => obj(
                "adaptive_server",
                vec![
                    f("client", client),
                    f("flow", flow),
                    f("dscp", dscp),
                    f("tiers", tiers),
                ],
            ),
            AppSpec::TcpServer {
                client,
                flow,
                dscp,
                media,
            } => obj(
                "tcp_server",
                vec![
                    f("client", client),
                    f("flow", flow),
                    f("dscp", dscp),
                    f("media", media),
                ],
            ),
            AppSpec::AbrServer {
                client,
                flow,
                dscp,
                rungs_bps,
                segment_us,
            } => obj(
                "abr_server",
                vec![
                    f("client", client),
                    f("flow", flow),
                    f("dscp", dscp),
                    f("rungs_bps", rungs_bps),
                    f("segment_us", segment_us),
                ],
            ),
            AppSpec::AbrClient {
                server,
                up_flow,
                rungs_bps,
                step_us,
                segment_us,
                segments,
                max_buffer_us,
            } => obj(
                "abr_client",
                vec![
                    f("server", server),
                    f("up_flow", up_flow),
                    f("rungs_bps", rungs_bps),
                    f("step_us", step_us),
                    f("segment_us", segment_us),
                    f("segments", segments),
                    f("max_buffer_us", max_buffer_us),
                ],
            ),
            AppSpec::BulkTcpSender {
                client,
                flow,
                dscp,
                total_bytes,
            } => obj(
                "bulk_tcp_sender",
                vec![
                    f("client", client),
                    f("flow", flow),
                    f("dscp", dscp),
                    f("total_bytes", total_bytes),
                ],
            ),
            AppSpec::BulkTcpSink { server, up_flow } => obj(
                "bulk_tcp_sink",
                vec![f("server", server), f("up_flow", up_flow)],
            ),
            AppSpec::StreamClient {
                server,
                up_flow,
                media,
                transport,
                feedback_us,
            } => obj(
                "stream_client",
                vec![
                    f("server", server),
                    f("up_flow", up_flow),
                    f("media", media),
                    f("transport", transport),
                    f("feedback_us", feedback_us),
                ],
            ),
            AppSpec::OnOffSource {
                dst,
                flow,
                packet_size,
                peak_rate_bps,
                mean_on_us,
                mean_off_us,
                dscp,
                stop_at_us,
                rng_fork,
            } => obj(
                "on_off_source",
                vec![
                    f("dst", dst),
                    f("flow", flow),
                    f("packet_size", packet_size),
                    f("peak_rate_bps", peak_rate_bps),
                    f("mean_on_us", mean_on_us),
                    f("mean_off_us", mean_off_us),
                    f("dscp", dscp),
                    f("stop_at_us", stop_at_us),
                    f("rng_fork", rng_fork),
                ],
            ),
            AppSpec::CountingSink => obj("counting_sink", vec![]),
            AppSpec::Pump {
                dst,
                flow,
                count,
                size,
                gap_ns,
            } => obj(
                "pump",
                vec![
                    f("dst", dst),
                    f("flow", flow),
                    f("count", count),
                    f("size", size),
                    f("gap_ns", gap_ns),
                ],
            ),
            AppSpec::IdSink => obj("id_sink", vec![]),
        }
    }
}

impl Deserialize for AppSpec {
    fn from_value(v: &Value) -> Result<AppSpec, Error> {
        let kind: String = de_field(v, "kind")?;
        match kind.as_str() {
            "paced_server" => Ok(AppSpec::PacedServer {
                client: de_field(v, "client")?,
                flow: de_field(v, "flow")?,
                dscp: de_field(v, "dscp")?,
                media: de_field(v, "media")?,
            }),
            "bursty_server" => Ok(AppSpec::BurstyServer {
                client: de_field(v, "client")?,
                flow: de_field(v, "flow")?,
                dscp: de_field(v, "dscp")?,
                media: de_field(v, "media")?,
                wait_for_play: de_field(v, "wait_for_play")?,
            }),
            "multi_rate_paced_server" => Ok(AppSpec::MultiRatePacedServer {
                client: de_field(v, "client")?,
                flow: de_field(v, "flow")?,
                dscp: de_field(v, "dscp")?,
                tiers: de_field(v, "tiers")?,
                estimate_bps: de_field(v, "estimate_bps")?,
            }),
            "adaptive_server" => Ok(AppSpec::AdaptiveServer {
                client: de_field(v, "client")?,
                flow: de_field(v, "flow")?,
                dscp: de_field(v, "dscp")?,
                tiers: de_field(v, "tiers")?,
            }),
            "tcp_server" => Ok(AppSpec::TcpServer {
                client: de_field(v, "client")?,
                flow: de_field(v, "flow")?,
                dscp: de_field(v, "dscp")?,
                media: de_field(v, "media")?,
            }),
            "abr_server" => Ok(AppSpec::AbrServer {
                client: de_field(v, "client")?,
                flow: de_field(v, "flow")?,
                dscp: de_field(v, "dscp")?,
                rungs_bps: de_field(v, "rungs_bps")?,
                segment_us: de_field(v, "segment_us")?,
            }),
            "abr_client" => Ok(AppSpec::AbrClient {
                server: de_field(v, "server")?,
                up_flow: de_field(v, "up_flow")?,
                rungs_bps: de_field(v, "rungs_bps")?,
                step_us: de_field(v, "step_us")?,
                segment_us: de_field(v, "segment_us")?,
                segments: de_field(v, "segments")?,
                max_buffer_us: de_field(v, "max_buffer_us")?,
            }),
            "bulk_tcp_sender" => Ok(AppSpec::BulkTcpSender {
                client: de_field(v, "client")?,
                flow: de_field(v, "flow")?,
                dscp: de_field(v, "dscp")?,
                total_bytes: de_field(v, "total_bytes")?,
            }),
            "bulk_tcp_sink" => Ok(AppSpec::BulkTcpSink {
                server: de_field(v, "server")?,
                up_flow: de_field(v, "up_flow")?,
            }),
            "stream_client" => Ok(AppSpec::StreamClient {
                server: de_field(v, "server")?,
                up_flow: de_field(v, "up_flow")?,
                media: de_field(v, "media")?,
                transport: de_field(v, "transport")?,
                feedback_us: de_field(v, "feedback_us")?,
            }),
            "on_off_source" => Ok(AppSpec::OnOffSource {
                dst: de_field(v, "dst")?,
                flow: de_field(v, "flow")?,
                packet_size: de_field(v, "packet_size")?,
                peak_rate_bps: de_field(v, "peak_rate_bps")?,
                mean_on_us: de_field(v, "mean_on_us")?,
                mean_off_us: de_field(v, "mean_off_us")?,
                dscp: de_field(v, "dscp")?,
                stop_at_us: de_field(v, "stop_at_us")?,
                rng_fork: de_field(v, "rng_fork")?,
            }),
            "counting_sink" => Ok(AppSpec::CountingSink),
            "pump" => Ok(AppSpec::Pump {
                dst: de_field(v, "dst")?,
                flow: de_field(v, "flow")?,
                count: de_field(v, "count")?,
                size: de_field(v, "size")?,
                gap_ns: de_field(v, "gap_ns")?,
            }),
            "id_sink" => Ok(AppSpec::IdSink),
            other => Err(Error::msg(format!("unknown app kind `{other}`"))),
        }
    }
}

/// One node. Hosts carry an application; routers carry `None`.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct NodeSpec {
    /// Unique node name; every other part of the spec refers to it.
    pub name: String,
    /// The application, or `None` for a router.
    pub app: Option<AppSpec>,
}

impl NodeSpec {
    /// A router node.
    pub fn router(name: &str) -> NodeSpec {
        NodeSpec {
            name: name.to_string(),
            app: None,
        }
    }

    /// A host node running `app`.
    pub fn host(name: &str, app: AppSpec) -> NodeSpec {
        NodeSpec {
            name: name.to_string(),
            app: Some(app),
        }
    }
}

/// Per-direction physical link parameters.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct LinkParams {
    /// Serialization rate, bps.
    pub rate_bps: u64,
    /// Propagation delay, ns.
    pub propagation_ns: u64,
}

impl LinkParams {
    /// From a `dsv-net` link.
    pub fn from_link(l: dsv_net::link::Link) -> LinkParams {
        LinkParams {
            rate_bps: l.rate_bps,
            propagation_ns: l.propagation.as_nanos(),
        }
    }

    /// 10 Mbps Ethernet (5 µs propagation).
    pub fn ethernet_10mbps() -> LinkParams {
        LinkParams::from_link(dsv_net::link::Link::ethernet_10mbps())
    }

    /// 100 Mbps Fast Ethernet (5 µs propagation).
    pub fn fast_ethernet() -> LinkParams {
        LinkParams::from_link(dsv_net::link::Link::fast_ethernet())
    }
}

/// Queue-limit pair; `None` means unbounded on that axis.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct LimitsSpec {
    /// Maximum queued packets.
    pub max_packets: Option<u64>,
    /// Maximum queued bytes.
    pub max_bytes: Option<u64>,
}

impl LimitsSpec {
    /// No limits at all.
    pub const UNBOUNDED: LimitsSpec = LimitsSpec {
        max_packets: None,
        max_bytes: None,
    };

    /// Packet-count limit only.
    pub fn packets(n: u64) -> LimitsSpec {
        LimitsSpec {
            max_packets: Some(n),
            max_bytes: None,
        }
    }

    /// Byte limit only.
    pub fn bytes(n: u64) -> LimitsSpec {
        LimitsSpec {
            max_packets: None,
            max_bytes: Some(n),
        }
    }
}

/// The queue discipline on one port.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum QdiscSpec {
    /// FIFO drop-tail.
    DropTail {
        /// Queue limits.
        limits: LimitsSpec,
    },
    /// Two-band strict priority with EF in the high band.
    StrictPriorityEf {
        /// Limits of the EF band.
        ef: LimitsSpec,
        /// Limits of the best-effort band.
        be: LimitsSpec,
    },
    /// Three-drop-precedence WRED (AF PHB default curves).
    Wred {
        /// Buffer capacity, bytes.
        capacity_bytes: u64,
        /// Seed of the WRED probability stream.
        seed: u64,
    },
}

impl Serialize for QdiscSpec {
    fn to_value(&self) -> Value {
        match self {
            QdiscSpec::DropTail { limits } => obj("drop_tail", vec![f("limits", limits)]),
            QdiscSpec::StrictPriorityEf { ef, be } => {
                obj("strict_priority_ef", vec![f("ef", ef), f("be", be)])
            }
            QdiscSpec::Wred {
                capacity_bytes,
                seed,
            } => obj(
                "wred",
                vec![f("capacity_bytes", capacity_bytes), f("seed", seed)],
            ),
        }
    }
}

impl Deserialize for QdiscSpec {
    fn from_value(v: &Value) -> Result<QdiscSpec, Error> {
        let kind: String = de_field(v, "kind")?;
        match kind.as_str() {
            "drop_tail" => Ok(QdiscSpec::DropTail {
                limits: de_field(v, "limits")?,
            }),
            "strict_priority_ef" => Ok(QdiscSpec::StrictPriorityEf {
                ef: de_field(v, "ef")?,
                be: de_field(v, "be")?,
            }),
            "wred" => Ok(QdiscSpec::Wred {
                capacity_bytes: de_field(v, "capacity_bytes")?,
                seed: de_field(v, "seed")?,
            }),
            other => Err(Error::msg(format!("unknown qdisc kind `{other}`"))),
        }
    }
}

/// One bidirectional connection between two named nodes.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct LinkSpec {
    /// First endpoint (direction `ab` leaves here).
    pub a: String,
    /// Second endpoint.
    pub b: String,
    /// Physical parameters of the a→b direction.
    pub ab: LinkParams,
    /// Physical parameters of the b→a direction.
    pub ba: LinkParams,
    /// Queue discipline on `a`'s port toward `b`.
    pub qdisc_ab: QdiscSpec,
    /// Queue discipline on `b`'s port toward `a`.
    pub qdisc_ba: QdiscSpec,
}

impl LinkSpec {
    /// A symmetric link with unbounded drop-tail queues (the default
    /// `NetworkBuilder::connect` behaviour).
    pub fn simple(a: &str, b: &str, params: LinkParams) -> LinkSpec {
        LinkSpec {
            a: a.to_string(),
            b: b.to_string(),
            ab: params,
            ba: params,
            qdisc_ab: QdiscSpec::DropTail {
                limits: LimitsSpec::UNBOUNDED,
            },
            qdisc_ba: QdiscSpec::DropTail {
                limits: LimitsSpec::UNBOUNDED,
            },
        }
    }

    /// A symmetric link with the same qdisc in both directions.
    pub fn symmetric(a: &str, b: &str, params: LinkParams, qdisc: QdiscSpec) -> LinkSpec {
        LinkSpec {
            a: a.to_string(),
            b: b.to_string(),
            ab: params,
            ba: params,
            qdisc_ab: qdisc,
            qdisc_ba: qdisc,
        }
    }
}

/// A packet-matching profile over node **names** (mirrors
/// `dsv_diffserv::classifier::MatchRule`; absent fields are wildcards).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MatchSpec {
    /// Match the originating host, by name.
    pub src: Option<String>,
    /// Match the destination host, by name.
    pub dst: Option<String>,
    /// Match the flow label.
    pub flow: Option<u32>,
    /// Match the current DSCP marking.
    pub dscp: Option<DscpSpec>,
    /// Match the transport tag.
    pub proto: Option<ProtoSpec>,
}

impl MatchSpec {
    /// Matches everything.
    pub const ANY: MatchSpec = MatchSpec {
        src: None,
        dst: None,
        flow: None,
        dscp: None,
        proto: None,
    };

    /// The paper's router-1 profile: source and destination host.
    pub fn src_dst(src: &str, dst: &str) -> MatchSpec {
        MatchSpec {
            src: Some(src.to_string()),
            dst: Some(dst.to_string()),
            ..MatchSpec::ANY
        }
    }

    /// Match one flow id.
    pub fn flow(flow: u32) -> MatchSpec {
        MatchSpec {
            flow: Some(flow),
            ..MatchSpec::ANY
        }
    }

    /// Match one DSCP marking.
    pub fn dscp(dscp: DscpSpec) -> MatchSpec {
        MatchSpec {
            dscp: Some(dscp),
            ..MatchSpec::ANY
        }
    }
}

/// What a conditioner does with a matched packet.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum ActionSpec {
    /// Token-bucket police; non-conformant packets drop. `conform_mark`
    /// re-marks conformant packets (the paper's router-1 EF marking);
    /// `None` leaves the DSCP alone (Cisco CAR at the QBone border).
    Police {
        /// Token rate, bps.
        rate_bps: u64,
        /// Bucket depth, bytes.
        depth_bytes: u32,
        /// DSCP to set on conformant packets.
        conform_mark: Option<DscpSpec>,
    },
    /// Token-bucket shape (delay) with a bounded queue.
    Shape {
        /// Token rate, bps.
        rate_bps: u64,
        /// Bucket depth, bytes.
        depth_bytes: u32,
        /// Shaper queue bound, bytes.
        max_queue_bytes: u64,
    },
    /// srTCM-meter into an AF class (green/yellow/red).
    MeterAf {
        /// Committed information rate, bps.
        cir_bps: u64,
        /// Committed burst size, bytes.
        cbs_bytes: u32,
        /// Excess burst size, bytes.
        ebs_bytes: u32,
        /// AF class (1–4).
        class: u8,
    },
    /// trTCM-meter (two-rate, RFC 2698) into an AF class.
    MeterTrtcm {
        /// Peak information rate, bps.
        pir_bps: u64,
        /// Peak burst size, bytes.
        pbs_bytes: u32,
        /// Committed information rate, bps.
        cir_bps: u64,
        /// Committed burst size, bytes.
        cbs_bytes: u32,
        /// AF class (1–4).
        class: u8,
    },
    /// Set the DSCP.
    Mark {
        /// The new marking.
        dscp: DscpSpec,
    },
    /// Explicitly pass untouched.
    Pass,
}

impl Serialize for ActionSpec {
    fn to_value(&self) -> Value {
        match self {
            ActionSpec::Police {
                rate_bps,
                depth_bytes,
                conform_mark,
            } => obj(
                "police",
                vec![
                    f("rate_bps", rate_bps),
                    f("depth_bytes", depth_bytes),
                    f("conform_mark", conform_mark),
                ],
            ),
            ActionSpec::Shape {
                rate_bps,
                depth_bytes,
                max_queue_bytes,
            } => obj(
                "shape",
                vec![
                    f("rate_bps", rate_bps),
                    f("depth_bytes", depth_bytes),
                    f("max_queue_bytes", max_queue_bytes),
                ],
            ),
            ActionSpec::MeterAf {
                cir_bps,
                cbs_bytes,
                ebs_bytes,
                class,
            } => obj(
                "meter_af",
                vec![
                    f("cir_bps", cir_bps),
                    f("cbs_bytes", cbs_bytes),
                    f("ebs_bytes", ebs_bytes),
                    f("class", class),
                ],
            ),
            ActionSpec::MeterTrtcm {
                pir_bps,
                pbs_bytes,
                cir_bps,
                cbs_bytes,
                class,
            } => obj(
                "meter_trtcm",
                vec![
                    f("pir_bps", pir_bps),
                    f("pbs_bytes", pbs_bytes),
                    f("cir_bps", cir_bps),
                    f("cbs_bytes", cbs_bytes),
                    f("class", class),
                ],
            ),
            ActionSpec::Mark { dscp } => obj("mark", vec![f("dscp", dscp)]),
            ActionSpec::Pass => obj("pass", vec![]),
        }
    }
}

impl Deserialize for ActionSpec {
    fn from_value(v: &Value) -> Result<ActionSpec, Error> {
        let kind: String = de_field(v, "kind")?;
        match kind.as_str() {
            "police" => Ok(ActionSpec::Police {
                rate_bps: de_field(v, "rate_bps")?,
                depth_bytes: de_field(v, "depth_bytes")?,
                conform_mark: de_field(v, "conform_mark")?,
            }),
            "shape" => Ok(ActionSpec::Shape {
                rate_bps: de_field(v, "rate_bps")?,
                depth_bytes: de_field(v, "depth_bytes")?,
                max_queue_bytes: de_field(v, "max_queue_bytes")?,
            }),
            "meter_af" => Ok(ActionSpec::MeterAf {
                cir_bps: de_field(v, "cir_bps")?,
                cbs_bytes: de_field(v, "cbs_bytes")?,
                ebs_bytes: de_field(v, "ebs_bytes")?,
                class: de_field(v, "class")?,
            }),
            "meter_trtcm" => Ok(ActionSpec::MeterTrtcm {
                pir_bps: de_field(v, "pir_bps")?,
                pbs_bytes: de_field(v, "pbs_bytes")?,
                cir_bps: de_field(v, "cir_bps")?,
                cbs_bytes: de_field(v, "cbs_bytes")?,
                class: de_field(v, "class")?,
            }),
            "mark" => Ok(ActionSpec::Mark {
                dscp: de_field(v, "dscp")?,
            }),
            "pass" => Ok(ActionSpec::Pass),
            other => Err(Error::msg(format!("unknown action kind `{other}`"))),
        }
    }
}

/// One entry of a conditioner's policy table.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RuleSpec {
    /// What to match.
    pub matches: MatchSpec,
    /// What to do with matches.
    pub action: ActionSpec,
}

/// The traffic conditioner installed on one router.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ConditionerSpec {
    /// Router node name.
    pub node: String,
    /// Fault-tap name: fault plans address this conditioner by it. The
    /// compiler's tap hook wraps the built conditioner when set.
    pub tap: Option<String>,
    /// Policy table, first match wins.
    pub rules: Vec<RuleSpec>,
}

/// One conformance bound for the audit oracles (a measurement tap): flow
/// `flow` leaving `node` must conform to `(rate_bps, depth_bytes)`.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct BoundSpec {
    /// Router node name.
    pub node: String,
    /// Flow id the bound applies to.
    pub flow: u32,
    /// Token rate of the bound, bps.
    pub rate_bps: u64,
    /// Bucket depth of the bound, bytes.
    pub depth_bytes: u32,
}

/// A complete scenario: everything the compiler needs to build a
/// `Network` plus run metadata (seed, horizon, measurement bounds).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ScenarioSpec {
    /// Human-readable scenario name.
    pub name: String,
    /// Master seed; every stochastic app forks from it (see
    /// [`AppSpec::OnOffSource::rng_fork`]).
    pub seed: u64,
    /// All nodes. **Creation order is id order**: node `i` gets
    /// `NodeId(i)`.
    pub nodes: Vec<NodeSpec>,
    /// All links, in creation order (port order follows it).
    pub links: Vec<LinkSpec>,
    /// Conditioners to install on routers.
    pub conditioners: Vec<ConditionerSpec>,
    /// Audit conformance bounds.
    pub bounds: Vec<BoundSpec>,
    /// Run horizon from time zero, ns (`None`: run to quiescence).
    pub horizon_ns: Option<u64>,
}

impl ScenarioSpec {
    /// An empty scenario shell.
    pub fn new(name: &str, seed: u64) -> ScenarioSpec {
        ScenarioSpec {
            name: name.to_string(),
            seed,
            nodes: Vec::new(),
            links: Vec::new(),
            conditioners: Vec::new(),
            bounds: Vec::new(),
            horizon_ns: None,
        }
    }

    /// Canonical JSON of this spec — the string the runner's cache and
    /// any other content-addressing hashes. Field order is declaration
    /// order, so the bytes are stable across runs and platforms.
    pub fn canonical_json(&self) -> String {
        serde_json::to_string(self).expect("spec serializes")
    }
}

/// A reusable cross-traffic fragment: a counting sink and a bursty
/// on/off source attached to two (usually distinct) routers of an
/// existing topology. The same fragment serves the QBone backbone load,
/// the local testbed's pre-policer jitter source and the AF experiment's
/// colored background — cross-traffic is a property of a scenario, not
/// of one testbed.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CrossTrafficSpec {
    /// Name for the sink node.
    pub sink_name: String,
    /// Name for the source node.
    pub src_name: String,
    /// Router the sink hangs off.
    pub sink_attach: String,
    /// Router the source hangs off.
    pub src_attach: String,
    /// Both access links.
    pub link: LinkParams,
    /// Flow id of the cross traffic.
    pub flow: u32,
    /// Wire size of each packet, bytes.
    pub packet_size: u32,
    /// Peak (ON-state) rate, bps.
    pub peak_rate_bps: u64,
    /// Mean ON duration, µs.
    pub mean_on_us: u64,
    /// Mean OFF duration, µs.
    pub mean_off_us: u64,
    /// Stop offering traffic at this absolute time, µs.
    pub stop_at_us: u64,
    /// RNG fork label.
    pub rng_fork: u64,
}

impl CrossTrafficSpec {
    /// Append this fragment's nodes and links to `spec` (sink first,
    /// then source — the order every legacy testbed used).
    pub fn attach(&self, spec: &mut ScenarioSpec) {
        spec.nodes
            .push(NodeSpec::host(&self.sink_name, AppSpec::CountingSink));
        spec.nodes.push(NodeSpec::host(
            &self.src_name,
            AppSpec::OnOffSource {
                dst: self.sink_name.clone(),
                flow: self.flow,
                packet_size: self.packet_size,
                peak_rate_bps: self.peak_rate_bps,
                mean_on_us: self.mean_on_us,
                mean_off_us: self.mean_off_us,
                dscp: DscpSpec::BestEffort,
                stop_at_us: self.stop_at_us,
                rng_fork: self.rng_fork,
            },
        ));
        spec.links.push(LinkSpec::simple(
            &self.sink_name,
            &self.sink_attach,
            self.link,
        ));
        spec.links.push(LinkSpec::simple(
            &self.src_name,
            &self.src_attach,
            self.link,
        ));
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn chain_spec() -> ScenarioSpec {
        let mut s = ScenarioSpec::new("chain", 1);
        s.nodes.push(NodeSpec::host("rx", AppSpec::IdSink));
        s.nodes.push(NodeSpec::router("tap"));
        s.nodes.push(NodeSpec::host(
            "tx",
            AppSpec::Pump {
                dst: "rx".to_string(),
                flow: 1,
                count: 10,
                size: 1500,
                gap_ns: 1_000_000,
            },
        ));
        let link = LinkParams {
            rate_bps: 100_000_000,
            propagation_ns: 50_000,
        };
        s.links.push(LinkSpec::simple("tx", "tap", link));
        s.links.push(LinkSpec::simple("tap", "rx", link));
        s.conditioners.push(ConditionerSpec {
            node: "tap".to_string(),
            tap: Some("ingress".to_string()),
            rules: vec![RuleSpec {
                matches: MatchSpec::flow(1),
                action: ActionSpec::Police {
                    rate_bps: 20_000_000,
                    depth_bytes: 4500,
                    conform_mark: None,
                },
            }],
        });
        s.bounds.push(BoundSpec {
            node: "tap".to_string(),
            flow: 1,
            rate_bps: 20_000_000,
            depth_bytes: 4500,
        });
        s
    }

    #[test]
    fn spec_round_trips_through_json() {
        let spec = chain_spec();
        let json = spec.canonical_json();
        let back: ScenarioSpec = serde_json::from_str(&json).expect("parses");
        assert_eq!(back, spec);
        assert_eq!(back.canonical_json(), json, "canonical form is a fixpoint");
    }

    #[test]
    fn canonical_json_is_stable() {
        // Two structurally identical specs produce identical bytes.
        assert_eq!(chain_spec().canonical_json(), chain_spec().canonical_json());
    }

    #[test]
    fn every_app_kind_round_trips() {
        let media = MediaRef {
            clip: ClipId2::Lost,
            codec: CodecSpec::Mpeg1,
            rate_bps: 1_500_000,
        };
        let apps = vec![
            AppSpec::PacedServer {
                client: "c".into(),
                flow: 1,
                dscp: DscpSpec::EfQbone,
                media,
            },
            AppSpec::BurstyServer {
                client: "c".into(),
                flow: 1,
                dscp: DscpSpec::Ef,
                media,
                wait_for_play: true,
            },
            AppSpec::MultiRatePacedServer {
                client: "c".into(),
                flow: 1,
                dscp: DscpSpec::EfQbone,
                tiers: vec![media],
                estimate_bps: 1_300_000,
            },
            AppSpec::AdaptiveServer {
                client: "c".into(),
                flow: 1,
                dscp: DscpSpec::BestEffort,
                tiers: vec![media],
            },
            AppSpec::TcpServer {
                client: "c".into(),
                flow: 1,
                dscp: DscpSpec::BestEffort,
                media,
            },
            AppSpec::AbrServer {
                client: "c".into(),
                flow: 1,
                dscp: DscpSpec::BestEffort,
                rungs_bps: vec![300_000, 700_000, 1_500_000],
                segment_us: 2_000_000,
            },
            AppSpec::AbrClient {
                server: "s".into(),
                up_flow: 2,
                rungs_bps: vec![300_000, 700_000, 1_500_000],
                step_us: 4_000_000,
                segment_us: 2_000_000,
                segments: 30,
                max_buffer_us: 16_000_000,
            },
            AppSpec::BulkTcpSender {
                client: "c".into(),
                flow: 1,
                dscp: DscpSpec::BestEffort,
                total_bytes: 10_000_000,
            },
            AppSpec::BulkTcpSink {
                server: "s".into(),
                up_flow: 2,
            },
            AppSpec::StreamClient {
                server: "s".into(),
                up_flow: 2,
                media,
                transport: TransportSpec::Tcp,
                feedback_us: Some(1_000_000),
            },
            AppSpec::OnOffSource {
                dst: "sink".into(),
                flow: 100,
                packet_size: 1000,
                peak_rate_bps: 30_000_000,
                mean_on_us: 200_000,
                mean_off_us: 200_000,
                dscp: DscpSpec::BestEffort,
                stop_at_us: 200_000_000,
                rng_fork: 1,
            },
            AppSpec::CountingSink,
            AppSpec::Pump {
                dst: "rx".into(),
                flow: 1,
                count: 200,
                size: 1500,
                gap_ns: 1_000_000,
            },
            AppSpec::IdSink,
        ];
        for app in apps {
            let v = app.to_value();
            let back = AppSpec::from_value(&v).expect("round trip");
            assert_eq!(back, app);
        }
    }

    #[test]
    fn every_action_kind_round_trips() {
        let actions = vec![
            ActionSpec::Police {
                rate_bps: 1,
                depth_bytes: 2,
                conform_mark: Some(DscpSpec::Ef),
            },
            ActionSpec::Shape {
                rate_bps: 1,
                depth_bytes: 2,
                max_queue_bytes: 3,
            },
            ActionSpec::MeterAf {
                cir_bps: 1,
                cbs_bytes: 2,
                ebs_bytes: 3,
                class: 1,
            },
            ActionSpec::MeterTrtcm {
                pir_bps: 4,
                pbs_bytes: 3,
                cir_bps: 2,
                cbs_bytes: 1,
                class: 2,
            },
            ActionSpec::Mark {
                dscp: DscpSpec::BestEffort,
            },
            ActionSpec::Pass,
        ];
        for a in actions {
            assert_eq!(ActionSpec::from_value(&a.to_value()).unwrap(), a);
        }
    }

    #[test]
    fn cross_traffic_fragment_appends_nodes_and_links() {
        let mut spec = chain_spec();
        let n = spec.nodes.len();
        CrossTrafficSpec {
            sink_name: "ct-sink".into(),
            src_name: "ct-src".into(),
            sink_attach: "tap".into(),
            src_attach: "tap".into(),
            link: LinkParams::fast_ethernet(),
            flow: 100,
            packet_size: 1000,
            peak_rate_bps: 30_000_000,
            mean_on_us: 200_000,
            mean_off_us: 200_000,
            stop_at_us: 200_000_000,
            rng_fork: 1,
        }
        .attach(&mut spec);
        assert_eq!(spec.nodes.len(), n + 2);
        assert_eq!(spec.nodes[n].name, "ct-sink");
        assert!(matches!(
            spec.nodes[n + 1].app,
            Some(AppSpec::OnOffSource { .. })
        ));
    }
}
