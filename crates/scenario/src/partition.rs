//! Shard planning at the scenario level.
//!
//! The sharded engine (`dsv_net::shard`) partitions a *compiled* network
//! by cutting its widest-propagation links. This module answers the same
//! question one level up, on the declarative [`ScenarioSpec`]: which
//! named nodes land in which domain, and how wide is the safe lockstep
//! window — **without compiling anything**. That lets experiment drivers
//! and tooling report (or veto) a sharding before paying for media
//! loading and app construction, and gives tests a spec-level oracle to
//! cross-check against the runtime partition.
//!
//! The guarantee is exactness, not similarity: [`shard_plan`] rebuilds
//! the identical edge list the compiled network reports from
//! `Network::link_edges` — same endpoint normalization, same weights,
//! same order (order matters: the partitioner breaks weight ties by edge
//! index) — so the plan's domain assignment is the one the engine will
//! use at run time.

use std::collections::HashMap;

use dsv_net::shard::{partition_nodes, Partition};
use dsv_sim::SimDuration;

use crate::spec::ScenarioSpec;

/// A planned sharding of a scenario: the node-index [`Partition`] plus
/// the node names grouped per domain (the spec speaks names, not ids).
#[derive(Debug, Clone)]
pub struct ShardPlan {
    /// The underlying partition; `partition.domain_of[i]` is the domain
    /// of spec node `i` (spec order is id order).
    pub partition: Partition,
    /// Node names per domain, in node-id order within each domain.
    pub members: Vec<Vec<String>>,
}

/// Plan a `k`-way sharding of `spec` without compiling it.
///
/// Returns `None` for the same degenerate inputs the runtime partitioner
/// declines — `k < 2`, fewer nodes than domains, a graph that does not
/// split into exactly `k` connected domains, or a cut containing a
/// zero-propagation link — and additionally for a spec whose links name
/// unknown nodes (such a spec cannot compile either).
pub fn shard_plan(spec: &ScenarioSpec, k: usize) -> Option<ShardPlan> {
    let edges = spec_edges(spec)?;
    let partition = partition_nodes(spec.nodes.len(), &edges, k)?;
    let mut members = vec![Vec::new(); partition.domains];
    for (i, &d) in partition.domain_of.iter().enumerate() {
        members[d as usize].push(spec.nodes[i].name.clone());
    }
    Some(ShardPlan { partition, members })
}

/// The compiled network's `link_edges` list, reconstructed from the
/// spec.
///
/// `Network::link_edges` walks nodes in id order and each node's ports
/// in creation order. The compiler processes links in spec order, and
/// every link pushes one port on `a` (the `ab` direction) and one on `b`
/// (the `ba` direction) — so node `i`'s ports are precisely the spec
/// links that touch it, in spec order, with the direction leaving `i`.
/// `None` if a link names a node the spec does not declare.
fn spec_edges(spec: &ScenarioSpec) -> Option<Vec<(u32, u32, SimDuration)>> {
    let index: HashMap<&str, u32> = spec
        .nodes
        .iter()
        .enumerate()
        .map(|(i, n)| (n.name.as_str(), i as u32))
        .collect();
    let mut edges = Vec::with_capacity(spec.links.len() * 2);
    for (i, node) in spec.nodes.iter().enumerate() {
        let a = i as u32;
        for l in &spec.links {
            let la = *index.get(l.a.as_str())?;
            let lb = *index.get(l.b.as_str())?;
            if l.a == node.name {
                edges.push((
                    a.min(lb),
                    a.max(lb),
                    SimDuration::from_nanos(l.ab.propagation_ns),
                ));
            }
            if l.b == node.name {
                edges.push((
                    a.min(la),
                    a.max(la),
                    SimDuration::from_nanos(l.ba.propagation_ns),
                ));
            }
        }
    }
    Some(edges)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::{LinkParams, LinkSpec, NodeSpec};

    fn params(prop_us: u64) -> LinkParams {
        LinkParams {
            rate_bps: 10_000_000,
            propagation_ns: prop_us * 1_000,
        }
    }

    fn chain_spec() -> ScenarioSpec {
        let mut spec = ScenarioSpec::new("chain", 1);
        for name in ["a", "b", "c", "d"] {
            spec.nodes.push(NodeSpec::router(name));
        }
        spec.links.push(LinkSpec::simple("a", "b", params(5)));
        spec.links.push(LinkSpec::simple("b", "c", params(5_000)));
        spec.links.push(LinkSpec::simple("c", "d", params(5)));
        spec
    }

    #[test]
    fn plan_cuts_the_widest_link_and_names_members() {
        let plan = shard_plan(&chain_spec(), 2).expect("chain splits");
        assert_eq!(plan.partition.domains, 2);
        assert_eq!(plan.members[0], vec!["a", "b"]);
        assert_eq!(plan.members[1], vec!["c", "d"]);
        assert_eq!(plan.partition.window, SimDuration::from_millis(5));
    }

    #[test]
    fn unknown_link_endpoint_declines() {
        let mut spec = chain_spec();
        spec.links.push(LinkSpec::simple("c", "ghost", params(5)));
        assert!(shard_plan(&spec, 2).is_none());
    }

    #[test]
    fn degenerate_requests_decline() {
        let spec = chain_spec();
        assert!(shard_plan(&spec, 1).is_none(), "k < 2");
        assert!(shard_plan(&spec, 9).is_none(), "more domains than nodes");
        let mut zero = chain_spec();
        for l in &mut zero.links {
            l.ab.propagation_ns = 0;
            l.ba.propagation_ns = 0;
        }
        assert!(shard_plan(&zero, 2).is_none(), "zero-propagation cut");
    }

    #[test]
    fn spec_edges_match_the_compiled_network() {
        // The exactness guarantee: the reconstructed edge list is
        // byte-identical (order included) to what the compiled network
        // reports, so the plan equals the runtime partition.
        let spec = chain_spec();
        let compiled = crate::compile(
            &spec,
            crate::CompileOptions {
                store: None,
                wrap: None,
            },
        )
        .expect("chain compiles");
        let from_net = compiled.net.link_edges();
        let from_spec = spec_edges(&spec).expect("all endpoints known");
        assert_eq!(from_spec, from_net);
        let plan = shard_plan(&spec, 2).unwrap();
        let runtime = partition_nodes(compiled.net.node_count(), &from_net, 2).unwrap();
        assert_eq!(plan.partition.domain_of, runtime.domain_of);
        assert_eq!(plan.partition.window, runtime.window);
    }
}
