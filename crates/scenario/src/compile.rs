//! Lowering a [`ScenarioSpec`] onto `dsv-net`'s `NetworkBuilder`.
//!
//! The compiler resolves every node reference **by name** before any node
//! is instantiated: pass one assigns `NodeId(i)` to the `i`-th entry of
//! `spec.nodes` (the builder's own positional rule) and builds the
//! name→id map; pass two instantiates applications, links, conditioners
//! and bounds against that map. Applications that point at nodes created
//! later (a client naming its server) therefore need no creation-order
//! gymnastics and no `assert_eq!(…, NodeId(5))` tripwires.
//!
//! Determinism contract: the compiler performs builder calls in exactly
//! the spec's declaration order — nodes first (forking the scenario RNG
//! at each stochastic app, in node order), then links (port order and
//! route tie-breaking follow link order), then conditioners. Two compiles
//! of the same spec produce byte-identical simulations.

use std::collections::HashMap;
use std::fmt;
use std::sync::Arc;

use dsv_diffserv::classifier::MatchRule;
use dsv_diffserv::meter::{SrTcm, TrTcm};
use dsv_diffserv::policer::{ExceedAction, Policer};
use dsv_diffserv::policy::{PolicyAction, PolicyTable};
use dsv_diffserv::shaper::Shaper;
use dsv_diffserv::token_bucket::TokenBucket;
use dsv_media::encoder::{mpeg1, wmv, EncodedClip};
use dsv_net::app::{Application, Handle, Shared};
use dsv_net::conditioner::Conditioner;
use dsv_net::link::Link;
use dsv_net::network::{Network, NetworkBuilder};
use dsv_net::packet::{FlowId, NodeId};
use dsv_net::qdisc::{DropTailQueue, Qdisc, QueueLimits, StrictPriorityQueue};
use dsv_net::traffic::{CountingSink, OnOffSource};
use dsv_net::wred::WredQueue;
use dsv_sim::{SimDuration, SimRng, SimTime};
use dsv_stream::abr::{AbrClient, AbrClientConfig, AbrPolicy, AbrServer, AbrServerConfig};
use dsv_stream::bulk::{BulkTcpConfig, BulkTcpSender, BulkTcpSink};
use dsv_stream::client::{ClientConfig, ClientMode, StreamClient};
use dsv_stream::payload::StreamPayload;
use dsv_stream::playback::PlaybackConfig;
use dsv_stream::server::adaptive::{AdaptiveConfig, AdaptiveServer};
use dsv_stream::server::bursty::{BurstyConfig, BurstyServer};
use dsv_stream::server::paced::{PacedConfig, PacedServer};
use dsv_stream::server::tcp_server::{TcpServerConfig, TcpStreamServer};

use crate::apps::{IdSink, Pump};
use crate::spec::{
    ActionSpec, AppSpec, ClipId2, CodecSpec, LimitsSpec, MatchSpec, QdiscSpec, ScenarioSpec,
    TransportSpec,
};

/// A boxed conditioner over the stream payload — the type the compiler
/// installs and the tap hook wraps.
pub type BoxConditioner = Box<dyn Conditioner<StreamPayload> + Send>;

/// Resolves [`crate::spec::MediaRef`]s to encoded clips. The experiment
/// layer implements this over its memoized artifact store; specs stay
/// free of multi-megabyte encodings.
pub trait ClipStore {
    /// The encoding of `clip` under `codec` at `rate_bps`.
    fn encoding(&self, clip: ClipId2, codec: CodecSpec, rate_bps: u64) -> Arc<EncodedClip>;
}

/// Compile-time services a caller can provide.
///
/// Both are optional: a media-free spec needs no [`ClipStore`], and a
/// scenario without fault injection needs no tap hook.
#[derive(Clone, Copy, Default)]
pub struct CompileOptions<'a> {
    /// Resolves media references (required iff the spec binds media apps).
    pub store: Option<&'a dyn ClipStore>,
    /// Wraps a named conditioner tap — the fault-injection seam. Called
    /// once per conditioner with a `tap` name, in spec order.
    #[allow(clippy::type_complexity)]
    pub wrap: Option<&'a dyn Fn(&str, BoxConditioner) -> BoxConditioner>,
}

/// A spec error found during lowering.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CompileError {
    msg: String,
}

impl CompileError {
    fn new(msg: impl Into<String>) -> CompileError {
        CompileError { msg: msg.into() }
    }
}

impl fmt::Display for CompileError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "scenario compile error: {}", self.msg)
    }
}

impl std::error::Error for CompileError {}

/// The compiled scenario: the network plus every handle the experiment
/// layer needs to read results back after the run.
pub struct CompiledScenario {
    /// The built network (hand to `Simulation`).
    pub net: Network<StreamPayload>,
    /// Name → id for every node, in case a caller needs an id directly.
    pub ids: HashMap<String, NodeId>,
    /// Stream clients, by node name, in creation order.
    pub clients: Vec<(String, Handle<StreamClient>)>,
    /// Adaptive servers, by node name, in creation order.
    pub adaptives: Vec<(String, Handle<AdaptiveServer>)>,
    /// ABR clients, by node name, in creation order.
    pub abr_clients: Vec<(String, Handle<AbrClient>)>,
    /// Bulk TCP sinks, by node name, in creation order.
    pub bulk_sinks: Vec<(String, Handle<BulkTcpSink>)>,
    /// Id-recording sinks, by node name, in creation order.
    pub id_sinks: Vec<(String, Handle<IdSink>)>,
    /// Audit conformance bounds, resolved to node ids.
    pub bounds: Vec<(NodeId, FlowId, u64, u32)>,
    /// Run horizon, when the spec declares one.
    pub horizon: Option<SimDuration>,
}

impl CompiledScenario {
    /// The id of a named node.
    pub fn node(&self, name: &str) -> NodeId {
        self.ids[name]
    }

    /// The (single) stream client's handle, if the scenario has exactly
    /// one.
    pub fn sole_client(&self) -> Option<&Handle<StreamClient>> {
        match self.clients.as_slice() {
            [(_, h)] => Some(h),
            _ => None,
        }
    }
}

fn to_limits(l: &LimitsSpec) -> QueueLimits {
    QueueLimits {
        max_packets: l.max_packets.map(|n| n as usize).unwrap_or(usize::MAX),
        max_bytes: l.max_bytes.unwrap_or(u64::MAX),
    }
}

fn build_qdisc(q: &QdiscSpec) -> Box<dyn Qdisc<StreamPayload> + Send> {
    match q {
        QdiscSpec::DropTail { limits } => Box::new(DropTailQueue::new(to_limits(limits))),
        QdiscSpec::StrictPriorityEf { ef, be } => Box::new(StrictPriorityQueue::ef_default(
            to_limits(ef),
            to_limits(be),
        )),
        QdiscSpec::Wred {
            capacity_bytes,
            seed,
        } => Box::new(WredQueue::af_default(*capacity_bytes, *seed)),
    }
}

fn kind_fn(codec: CodecSpec) -> fn(u32) -> dsv_media::frame::FrameKind {
    match codec {
        CodecSpec::Mpeg1 => mpeg1::frame_kind,
        CodecSpec::Wmv => wmv::frame_kind,
    }
}

struct Resolver<'s> {
    ids: HashMap<&'s str, NodeId>,
}

impl<'s> Resolver<'s> {
    fn new(spec: &'s ScenarioSpec) -> Result<Resolver<'s>, CompileError> {
        let mut ids = HashMap::with_capacity(spec.nodes.len());
        for (i, node) in spec.nodes.iter().enumerate() {
            if ids.insert(node.name.as_str(), NodeId(i as u32)).is_some() {
                return Err(CompileError::new(format!(
                    "duplicate node name `{}`",
                    node.name
                )));
            }
        }
        Ok(Resolver { ids })
    }

    fn get(&self, name: &str) -> Result<NodeId, CompileError> {
        self.ids
            .get(name)
            .copied()
            .ok_or_else(|| CompileError::new(format!("unknown node name `{name}`")))
    }

    fn get_opt(&self, name: &Option<String>) -> Result<Option<NodeId>, CompileError> {
        name.as_deref().map(|n| self.get(n)).transpose()
    }
}

struct AppBuilder<'a> {
    store: Option<&'a dyn ClipStore>,
    clients: Vec<(String, Handle<StreamClient>)>,
    adaptives: Vec<(String, Handle<AdaptiveServer>)>,
    abr_clients: Vec<(String, Handle<AbrClient>)>,
    bulk_sinks: Vec<(String, Handle<BulkTcpSink>)>,
    id_sinks: Vec<(String, Handle<IdSink>)>,
}

impl AppBuilder<'_> {
    fn store(&self, name: &str) -> Result<&dyn ClipStore, CompileError> {
        self.store.ok_or_else(|| {
            CompileError::new(format!(
                "node `{name}` binds media but no ClipStore was provided"
            ))
        })
    }

    fn build(
        &mut self,
        name: &str,
        app: &AppSpec,
        ids: &Resolver<'_>,
        rng: &mut SimRng,
    ) -> Result<Box<dyn Application<StreamPayload> + Send>, CompileError> {
        Ok(match app {
            AppSpec::PacedServer {
                client,
                flow,
                dscp,
                media,
            } => {
                let clip = self
                    .store(name)?
                    .encoding(media.clip, media.codec, media.rate_bps);
                Box::new(PacedServer::new(
                    PacedConfig::new(ids.get(client)?, FlowId(*flow), dscp.to_dscp()),
                    &clip,
                ))
            }
            AppSpec::BurstyServer {
                client,
                flow,
                dscp,
                media,
                wait_for_play,
            } => {
                let clip = self
                    .store(name)?
                    .encoding(media.clip, media.codec, media.rate_bps);
                Box::new(BurstyServer::new(
                    BurstyConfig {
                        client: ids.get(client)?,
                        flow: FlowId(*flow),
                        dscp: dscp.to_dscp(),
                        wait_for_play: *wait_for_play,
                    },
                    &clip,
                ))
            }
            AppSpec::MultiRatePacedServer {
                client,
                flow,
                dscp,
                tiers,
                estimate_bps,
            } => {
                let store = self.store(name)?;
                let encoded: Vec<Arc<EncodedClip>> = tiers
                    .iter()
                    .map(|t| store.encoding(t.clip, t.codec, t.rate_bps))
                    .collect();
                let refs: Vec<&EncodedClip> = encoded.iter().map(|t| t.as_ref()).collect();
                Box::new(PacedServer::new_multi_rate_shared(
                    PacedConfig::new(ids.get(client)?, FlowId(*flow), dscp.to_dscp()),
                    &refs,
                    *estimate_bps,
                ))
            }
            AppSpec::AdaptiveServer {
                client,
                flow,
                dscp,
                tiers,
            } => {
                let store = self.store(name)?;
                let encoded: Vec<EncodedClip> = tiers
                    .iter()
                    .map(|t| (*store.encoding(t.clip, t.codec, t.rate_bps)).clone())
                    .collect();
                let (h, app) = Shared::new(AdaptiveServer::new(
                    AdaptiveConfig::new(ids.get(client)?, FlowId(*flow), dscp.to_dscp()),
                    encoded,
                ));
                self.adaptives.push((name.to_string(), h));
                Box::new(app)
            }
            AppSpec::TcpServer {
                client,
                flow,
                dscp,
                media,
            } => {
                let clip = self
                    .store(name)?
                    .encoding(media.clip, media.codec, media.rate_bps);
                Box::new(TcpStreamServer::new(
                    TcpServerConfig::new(ids.get(client)?, FlowId(*flow), dscp.to_dscp()),
                    &clip,
                ))
            }
            AppSpec::AbrServer {
                client,
                flow,
                dscp,
                rungs_bps,
                segment_us,
            } => Box::new(AbrServer::new(AbrServerConfig {
                client: ids.get(client)?,
                flow: FlowId(*flow),
                dscp: dscp.to_dscp(),
                rungs: rungs_bps.clone(),
                segment_us: *segment_us,
            })),
            AppSpec::AbrClient {
                server,
                up_flow,
                rungs_bps,
                step_us,
                segment_us,
                segments,
                max_buffer_us,
            } => {
                let (h, app) = Shared::new(AbrClient::new(AbrClientConfig {
                    server: ids.get(server)?,
                    up_flow: FlowId(*up_flow),
                    policy: AbrPolicy::new(rungs_bps.clone(), *step_us),
                    segment_us: *segment_us,
                    segments: *segments,
                    max_buffer_us: *max_buffer_us,
                }));
                self.abr_clients.push((name.to_string(), h));
                Box::new(app)
            }
            AppSpec::BulkTcpSender {
                client,
                flow,
                dscp,
                total_bytes,
            } => Box::new(BulkTcpSender::new(BulkTcpConfig {
                client: ids.get(client)?,
                flow: FlowId(*flow),
                dscp: dscp.to_dscp(),
                total_bytes: *total_bytes,
            })),
            AppSpec::BulkTcpSink { server, up_flow } => {
                let (h, app) = Shared::new(BulkTcpSink::new(ids.get(server)?, FlowId(*up_flow)));
                self.bulk_sinks.push((name.to_string(), h));
                Box::new(app)
            }
            AppSpec::StreamClient {
                server,
                up_flow,
                media,
                transport,
                feedback_us,
            } => {
                let clip = self
                    .store(name)?
                    .encoding(media.clip, media.codec, media.rate_bps);
                let mode = match transport {
                    TransportSpec::Udp => ClientMode::Udp,
                    TransportSpec::Tcp => ClientMode::Tcp {
                        frame_bytes: clip.frames.iter().map(|f| f.bytes).collect(),
                        fidelities: clip.frames.iter().map(|f| f.fidelity).collect(),
                    },
                };
                let (h, app) = Shared::new(StreamClient::new(ClientConfig {
                    server: ids.get(server)?,
                    up_flow: FlowId(*up_flow),
                    frames: clip.frames.len() as u32,
                    kind_fn: kind_fn(media.codec),
                    playback: PlaybackConfig::default(),
                    feedback_interval: feedback_us.map(SimDuration::from_micros),
                    mode,
                    media_rate_bps: media.rate_bps,
                }));
                self.clients.push((name.to_string(), h));
                Box::new(app)
            }
            AppSpec::OnOffSource {
                dst,
                flow,
                packet_size,
                peak_rate_bps,
                mean_on_us,
                mean_off_us,
                dscp,
                stop_at_us,
                rng_fork,
            } => Box::new(OnOffSource::new(
                ids.get(dst)?,
                FlowId(*flow),
                *packet_size,
                *peak_rate_bps,
                SimDuration::from_micros(*mean_on_us),
                SimDuration::from_micros(*mean_off_us),
                dscp.to_dscp(),
                SimTime::from_micros(*stop_at_us),
                rng.fork(*rng_fork),
            )),
            AppSpec::CountingSink => Box::new(CountingSink::default()),
            AppSpec::Pump {
                dst,
                flow,
                count,
                size,
                gap_ns,
            } => Box::new(Pump {
                dst: ids.get(dst)?,
                flow: FlowId(*flow),
                count: *count,
                size: *size,
                gap: SimDuration::from_nanos(*gap_ns),
                sent: 0,
            }),
            AppSpec::IdSink => {
                let (h, app) = Shared::new(IdSink::default());
                self.id_sinks.push((name.to_string(), h));
                Box::new(app)
            }
        })
    }
}

fn build_match(m: &MatchSpec, ids: &Resolver<'_>) -> Result<MatchRule, CompileError> {
    Ok(MatchRule {
        src: ids.get_opt(&m.src)?,
        dst: ids.get_opt(&m.dst)?,
        flow: m.flow.map(FlowId),
        dscp: m.dscp.map(|d| d.to_dscp()),
        proto: m.proto.map(|p| p.to_proto()),
    })
}

fn build_action(a: &ActionSpec) -> PolicyAction<StreamPayload> {
    match a {
        ActionSpec::Police {
            rate_bps,
            depth_bytes,
            conform_mark,
        } => PolicyAction::Police(Policer::new(
            TokenBucket::new(*rate_bps, *depth_bytes),
            conform_mark.map(|d| d.to_dscp()),
            ExceedAction::Drop,
        )),
        ActionSpec::Shape {
            rate_bps,
            depth_bytes,
            max_queue_bytes,
        } => PolicyAction::Shape(Shaper::new(*rate_bps, *depth_bytes, *max_queue_bytes)),
        ActionSpec::MeterAf {
            cir_bps,
            cbs_bytes,
            ebs_bytes,
            class,
        } => PolicyAction::MeterAf {
            meter: SrTcm::new(*cir_bps, *cbs_bytes, *ebs_bytes),
            class: *class,
        },
        ActionSpec::MeterTrtcm {
            pir_bps,
            pbs_bytes,
            cir_bps,
            cbs_bytes,
            class,
        } => PolicyAction::MeterTrtcm {
            meter: TrTcm::new(*pir_bps, *pbs_bytes, *cir_bps, *cbs_bytes),
            class: *class,
        },
        ActionSpec::Mark { dscp } => PolicyAction::Mark(dscp.to_dscp()),
        ActionSpec::Pass => PolicyAction::Pass,
    }
}

/// Lower `spec` to a built network plus result handles.
///
/// Builder calls happen in spec order: all nodes (forking the scenario
/// RNG per stochastic app), then all links, then all conditioners — see
/// the module docs for why that order is the determinism contract.
pub fn compile(
    spec: &ScenarioSpec,
    opts: CompileOptions<'_>,
) -> Result<CompiledScenario, CompileError> {
    let ids = Resolver::new(spec)?;
    let mut rng = SimRng::seed_from_u64(spec.seed);
    let mut b = NetworkBuilder::<StreamPayload>::new();
    let mut apps = AppBuilder {
        store: opts.store,
        clients: Vec::new(),
        adaptives: Vec::new(),
        abr_clients: Vec::new(),
        bulk_sinks: Vec::new(),
        id_sinks: Vec::new(),
    };

    for node in &spec.nodes {
        match &node.app {
            None => {
                b.add_router(&node.name);
            }
            Some(app) => {
                let built = apps.build(&node.name, app, &ids, &mut rng)?;
                b.add_host(&node.name, built);
            }
        }
    }

    for link in &spec.links {
        let a = ids.get(&link.a)?;
        let z = ids.get(&link.b)?;
        if a == z {
            return Err(CompileError::new(format!(
                "link connects `{}` to itself",
                link.a
            )));
        }
        b.connect_with(
            a,
            z,
            Link::new(
                link.ab.rate_bps,
                SimDuration::from_nanos(link.ab.propagation_ns),
            ),
            Link::new(
                link.ba.rate_bps,
                SimDuration::from_nanos(link.ba.propagation_ns),
            ),
            build_qdisc(&link.qdisc_ab),
            build_qdisc(&link.qdisc_ba),
        );
    }

    for cond in &spec.conditioners {
        let node = ids.get(&cond.node)?;
        if spec.nodes[node.0 as usize].app.is_some() {
            return Err(CompileError::new(format!(
                "conditioner target `{}` is a host; conditioners attach to routers",
                cond.node
            )));
        }
        let mut table = PolicyTable::new();
        for rule in &cond.rules {
            table.push(
                build_match(&rule.matches, &ids)?,
                build_action(&rule.action),
            );
        }
        let mut boxed: BoxConditioner = Box::new(table);
        if let (Some(tap), Some(wrap)) = (&cond.tap, opts.wrap) {
            boxed = wrap(tap, boxed);
        }
        b.set_conditioner(node, boxed);
    }

    let mut bounds = Vec::with_capacity(spec.bounds.len());
    for bound in &spec.bounds {
        bounds.push((
            ids.get(&bound.node)?,
            FlowId(bound.flow),
            bound.rate_bps,
            bound.depth_bytes,
        ));
    }

    let ids_owned = ids
        .ids
        .iter()
        .map(|(name, id)| (name.to_string(), *id))
        .collect();

    Ok(CompiledScenario {
        net: b.build(),
        ids: ids_owned,
        clients: apps.clients,
        adaptives: apps.adaptives,
        abr_clients: apps.abr_clients,
        bulk_sinks: apps.bulk_sinks,
        id_sinks: apps.id_sinks,
        bounds,
        horizon: spec.horizon_ns.map(SimDuration::from_nanos),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::{
        ActionSpec, AppSpec, BoundSpec, ConditionerSpec, LinkParams, LinkSpec, MatchSpec, NodeSpec,
        RuleSpec,
    };
    use dsv_net::network::Simulation;

    fn expect_err(r: Result<CompiledScenario, CompileError>) -> CompileError {
        match r {
            Ok(_) => panic!("expected a compile error"),
            Err(e) => e,
        }
    }

    fn chain_spec(rate_bps: u64) -> ScenarioSpec {
        let mut s = ScenarioSpec::new("chain", 1);
        s.nodes.push(NodeSpec::host("rx", AppSpec::IdSink));
        s.nodes.push(NodeSpec::router("tap"));
        s.nodes.push(NodeSpec::host(
            "tx",
            AppSpec::Pump {
                dst: "rx".to_string(),
                flow: 1,
                count: 200,
                size: 1500,
                gap_ns: 1_000_000,
            },
        ));
        let link = LinkParams {
            rate_bps: 100_000_000,
            propagation_ns: 50_000,
        };
        s.links.push(LinkSpec::simple("tx", "tap", link));
        s.links.push(LinkSpec::simple("tap", "rx", link));
        s.conditioners.push(ConditionerSpec {
            node: "tap".to_string(),
            tap: Some("ingress".to_string()),
            rules: vec![RuleSpec {
                matches: MatchSpec::flow(1),
                action: ActionSpec::Police {
                    rate_bps,
                    depth_bytes: 4500,
                    conform_mark: None,
                },
            }],
        });
        s.bounds.push(BoundSpec {
            node: "tap".to_string(),
            flow: 1,
            rate_bps,
            depth_bytes: 4500,
        });
        s
    }

    fn run_chain(spec: &ScenarioSpec) -> (Vec<u64>, dsv_sim::SimTime, u64) {
        let compiled = compile(spec, CompileOptions::default()).expect("compiles");
        let sink = compiled.id_sinks[0].1.clone();
        let mut sim = Simulation::new(compiled.net);
        let stats = sim.run();
        let ids = sink.borrow().ids.clone();
        (ids, stats.end_time, stats.dispatched)
    }

    #[test]
    fn name_resolution_replaces_creation_order() {
        let compiled =
            compile(&chain_spec(20_000_000), CompileOptions::default()).expect("compiles");
        assert_eq!(compiled.node("rx"), NodeId(0));
        assert_eq!(compiled.node("tap"), NodeId(1));
        assert_eq!(compiled.node("tx"), NodeId(2));
        assert_eq!(
            compiled.bounds,
            vec![(NodeId(1), FlowId(1), 20_000_000, 4500)]
        );
    }

    #[test]
    fn compile_twice_is_byte_identical() {
        let spec = chain_spec(2_000_000);
        let a = run_chain(&spec);
        let b = run_chain(&spec);
        assert_eq!(a, b, "same spec must produce the same simulation");
    }

    #[test]
    fn clean_chain_delivers_everything() {
        let (ids, _, _) = run_chain(&chain_spec(20_000_000));
        assert_eq!(ids.len(), 200);
        assert!(ids.windows(2).all(|w| w[0] < w[1]));
    }

    #[test]
    fn tap_hook_sees_named_taps() {
        use std::cell::RefCell;
        let seen: RefCell<Vec<String>> = RefCell::new(Vec::new());
        let wrap = |tap: &str, inner: BoxConditioner| -> BoxConditioner {
            seen.borrow_mut().push(tap.to_string());
            inner
        };
        let opts = CompileOptions {
            store: None,
            wrap: Some(&wrap),
        };
        compile(&chain_spec(20_000_000), opts).expect("compiles");
        assert_eq!(seen.into_inner(), vec!["ingress".to_string()]);
    }

    #[test]
    fn unknown_names_are_rejected() {
        let mut spec = chain_spec(20_000_000);
        spec.links[0].b = "no-such-node".to_string();
        let err = expect_err(compile(&spec, CompileOptions::default()));
        assert!(err.to_string().contains("no-such-node"), "{err}");
    }

    #[test]
    fn duplicate_names_are_rejected() {
        let mut spec = chain_spec(20_000_000);
        spec.nodes.push(NodeSpec::router("tap"));
        assert!(compile(&spec, CompileOptions::default()).is_err());
    }

    #[test]
    fn media_specs_require_a_store() {
        let mut spec = chain_spec(20_000_000);
        spec.nodes.push(NodeSpec::host(
            "client",
            AppSpec::StreamClient {
                server: "tx".to_string(),
                up_flow: 2,
                media: crate::spec::MediaRef {
                    clip: ClipId2::Lost,
                    codec: CodecSpec::Mpeg1,
                    rate_bps: 1_500_000,
                },
                transport: TransportSpec::Udp,
                feedback_us: None,
            },
        ));
        let err = expect_err(compile(&spec, CompileOptions::default()));
        assert!(err.to_string().contains("ClipStore"), "{err}");
    }
}
