//! The Assured-Forwarding experiment the paper ran but did not report.
//!
//! "Some preliminary experiments were conducted using the AF PHB that are
//! not reported in this paper, as the results were heavily dependent on
//! the level of cross traffic and its impact on the performance given to
//! marked packets" (§2.1). This module rebuilds that experiment so the
//! claim itself becomes measurable: the video stream is srTCM-metered into
//! AF green/yellow/red at the edge and shares a WRED-managed bottleneck
//! with colored cross traffic; unlike EF's strict isolation, the video's
//! quality now moves with the background load.

use dsv_diffserv::classifier::MatchRule;
use dsv_diffserv::meter::SrTcm;
use dsv_diffserv::policy::{PolicyAction, PolicyTable};
use dsv_media::encoder::mpeg1;
use dsv_media::scene::ClipId;
use dsv_net::app::Shared;
use dsv_net::link::Link;
use dsv_net::network::{NetworkBuilder, Simulation};
use dsv_net::packet::{Dscp, FlowId, NodeId};
use dsv_net::qdisc::{DropTailQueue, QueueLimits};
use dsv_net::traffic::{CountingSink, OnOffSource};
use dsv_net::wred::WredQueue;
use dsv_sim::{SimDuration, SimRng, SimTime};
use dsv_stream::client::{ClientConfig, ClientMode, StreamClient};
use dsv_stream::payload::StreamPayload;
use dsv_stream::playback::PlaybackConfig;
use dsv_stream::server::paced::{PacedConfig, PacedServer};
use serde::{Deserialize, Serialize};

use std::time::Instant;

use crate::artifacts::{self, Codec};
use crate::experiment::{run_horizon, score_run_shared, RunOutcome};
use crate::profile;
use crate::qbone::ClipId2;

/// Flow id of the media stream.
pub const MEDIA_FLOW: FlowId = FlowId(1);
/// Flow id of client→server control traffic.
pub const UP_FLOW: FlowId = FlowId(2);
/// Flow id of the colored cross traffic.
pub const CT_FLOW: FlowId = FlowId(100);

/// Configuration of one AF run.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct AfConfig {
    /// Which clip to stream.
    pub clip: ClipId2,
    /// MPEG-1 CBR encoding rate.
    pub encoding_bps: u64,
    /// srTCM committed rate for the video's AF profile.
    pub cir_bps: u64,
    /// srTCM committed burst (bytes).
    pub cbs_bytes: u32,
    /// srTCM excess burst (bytes).
    pub ebs_bytes: u32,
    /// Mean rate of the competing cross traffic.
    pub cross_load_bps: u64,
    /// Committed (green) rate of the cross traffic's own AF profile —
    /// in-profile background competes with the video's green packets,
    /// which is exactly the sensitivity that made the paper drop its AF
    /// results.
    pub cross_cir_bps: u64,
    /// Bottleneck link rate shared by video and cross traffic.
    pub bottleneck_bps: u64,
    /// Experiment seed.
    pub seed: u64,
}

impl AfConfig {
    /// A standard AF run: Lost @1.5 Mbps, CIR = 1.1× the encoding,
    /// sharing a 6 Mbps bottleneck with the given cross load.
    pub fn new(clip: ClipId2, encoding_bps: u64, cross_load_bps: u64) -> AfConfig {
        AfConfig {
            clip,
            encoding_bps,
            cir_bps: (encoding_bps as f64 * 1.1) as u64,
            cbs_bytes: 9_000,
            ebs_bytes: 9_000,
            cross_load_bps,
            cross_cir_bps: cross_load_bps / 2,
            bottleneck_bps: 6_000_000,
            seed: 23,
        }
    }
}

/// Run one AF streaming session and score it.
pub fn run_af(cfg: &AfConfig) -> RunOutcome {
    let clip_id: ClipId = cfg.clip.into();
    let t_artifacts = Instant::now();
    let clip = artifacts::encoding(clip_id, Codec::Mpeg1, cfg.encoding_bps);
    profile::add_encode(t_artifacts.elapsed());
    let mut rng = SimRng::seed_from_u64(cfg.seed);

    let mut b = NetworkBuilder::<StreamPayload>::new();
    let server_id = NodeId(3);
    let (client_handle, client_app) = Shared::new(StreamClient::new(ClientConfig {
        server: server_id,
        up_flow: UP_FLOW,
        frames: clip.frames.len() as u32,
        kind_fn: mpeg1::frame_kind,
        playback: PlaybackConfig::default(),
        feedback_interval: None,
        mode: ClientMode::Udp,
    }));
    let client = b.add_host("client", Box::new(client_app));
    let egress = b.add_router("egress");
    let edge = b.add_router("edge");
    let server = b.add_host(
        "video-server",
        Box::new(PacedServer::new(
            PacedConfig::new(client, MEDIA_FLOW, Dscp::BEST_EFFORT),
            &clip,
        )),
    );
    assert_eq!(server, server_id, "node creation order changed");

    b.connect(server, edge, Link::fast_ethernet());
    b.connect(client, egress, Link::ethernet_10mbps());

    // The shared bottleneck with a WRED-managed buffer.
    let bottleneck = Link::new(cfg.bottleneck_bps, SimDuration::from_millis(5));
    b.connect_with(
        edge,
        egress,
        bottleneck,
        bottleneck,
        Box::new(WredQueue::af_default(120_000, cfg.seed ^ 0xAF)),
        Box::new(DropTailQueue::new(QueueLimits::UNBOUNDED)),
    );

    // Edge conditioning: srTCM-color the video into AF class 1, and give
    // the cross traffic its own profile in the same class (other
    // customers' in-profile traffic shares the green pool).
    let table = PolicyTable::new()
        .with(
            MatchRule::src_dst(server, client),
            PolicyAction::MeterAf {
                meter: SrTcm::new(cfg.cir_bps, cfg.cbs_bytes, cfg.ebs_bytes),
                class: 1,
            },
        )
        .with(
            MatchRule {
                flow: Some(CT_FLOW),
                ..MatchRule::ANY
            },
            PolicyAction::MeterAf {
                meter: SrTcm::new(cfg.cross_cir_bps.max(1), 30_000, 30_000),
                class: 1,
            },
        );
    b.set_conditioner(edge, Box::new(table));

    // Cross traffic entering at the edge (where its own profile colors
    // it) and sharing the bottleneck.
    if cfg.cross_load_bps > 0 {
        let ct_sink = b.add_host("ct-sink", Box::new(CountingSink::default()));
        b.connect(ct_sink, egress, Link::fast_ethernet());
        let ct_src = b.add_host(
            "ct-src",
            Box::new(OnOffSource::new(
                ct_sink,
                CT_FLOW,
                1200,
                cfg.cross_load_bps * 2, // 50 % duty cycle → mean = load
                SimDuration::from_millis(150),
                SimDuration::from_millis(150),
                Dscp::BEST_EFFORT,
                SimTime::from_secs(220),
                rng.fork(5),
            )),
        );
        b.connect(ct_src, edge, Link::fast_ethernet());
    }

    let mut sim = Simulation::new(b.build());
    // Under `DSV_AUDIT=1`: lifecycle oracles only — the srTCM meter colors
    // but never drops, so there is no admission bound to register.
    crate::auditing::arm(&mut sim, &[]);
    let t_sim = Instant::now();
    let stats = sim.run_until(SimTime::ZERO + run_horizon(clip_id));
    profile::add_simulate(t_sim.elapsed(), stats.dispatched);
    profile::record_high_water(sim.queue.high_water(), sim.net.pool_high_water());
    crate::auditing::finish(&mut sim, "af run");

    let report = client_handle.borrow().report();
    let media = sim.net.stats.flow(MEDIA_FLOW);
    let t_features = Instant::now();
    let source = artifacts::source_features(clip_id);
    let reference = artifacts::reference_features(clip_id, Codec::Mpeg1, cfg.encoding_bps);
    profile::add_encode(t_features.elapsed());
    let t_score = Instant::now();
    let (same, _) = score_run_shared(&source, &reference, &report, None);
    profile::add_score(t_score.elapsed());
    RunOutcome::assemble(&report, &media, &same, None, 0, 0, false)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unloaded_af_delivers_good_quality() {
        let out = run_af(&AfConfig::new(ClipId2::Lost, 1_500_000, 0));
        assert!(out.quality < 0.1, "quality {}", out.quality);
        assert!(out.frame_loss < 0.02, "loss {}", out.frame_loss);
    }

    #[test]
    fn af_quality_depends_on_cross_traffic() {
        // The reason the paper excluded its AF results: with EF the
        // stream is isolated by strict priority; with AF it shares the
        // WRED buffer and heavy background load leaks into the green
        // traffic.
        let light = run_af(&AfConfig::new(ClipId2::Lost, 1_500_000, 1_000_000));
        let mut heavy_cfg = AfConfig::new(ClipId2::Lost, 1_500_000, 7_000_000);
        heavy_cfg.cross_cir_bps = 5_000_000; // mostly in-profile background
        let heavy = run_af(&heavy_cfg);
        assert!(
            heavy.quality > light.quality + 0.1,
            "heavy load {:.3} should hurt vs light {:.3}",
            heavy.quality,
            light.quality
        );
    }

    #[test]
    fn af_runs_are_deterministic() {
        let cfg = AfConfig::new(ClipId2::Lost, 1_500_000, 3_000_000);
        assert_eq!(run_af(&cfg).quality, run_af(&cfg).quality);
    }
}
