//! The Assured-Forwarding experiment the paper ran but did not report.
//!
//! "Some preliminary experiments were conducted using the AF PHB that are
//! not reported in this paper, as the results were heavily dependent on
//! the level of cross traffic and its impact on the performance given to
//! marked packets" (§2.1). This module rebuilds that experiment so the
//! claim itself becomes measurable: the video stream is srTCM-metered into
//! AF green/yellow/red at the edge and shares a WRED-managed bottleneck
//! with colored cross traffic; unlike EF's strict isolation, the video's
//! quality now moves with the background load.
//!
//! The topology is declared by [`af_spec`] and lowered by the scenario
//! compiler; nodes resolve by name, never by creation order.

use dsv_media::scene::ClipId;
use dsv_net::network::Simulation;
use dsv_net::packet::FlowId;
use dsv_scenario::{
    compile, ActionSpec, AppSpec, CompileOptions, ConditionerSpec, CrossTrafficSpec, DscpSpec,
    LimitsSpec, LinkParams, LinkSpec, MatchSpec, MediaRef, NodeSpec, QdiscSpec, RuleSpec,
    ScenarioSpec, TransportSpec,
};
use dsv_sim::SimTime;
use serde::{Deserialize, Serialize};

use std::time::Instant;

use crate::artifacts::{self, ArtifactStore, Codec};
use crate::experiment::{run_horizon, RunOutcome};
use crate::profile;
use crate::qbone::{ClipId2, CodecSpec};

/// Flow id of the media stream.
pub const MEDIA_FLOW: FlowId = FlowId(1);
/// Flow id of client→server control traffic.
pub const UP_FLOW: FlowId = FlowId(2);
/// Flow id of the colored cross traffic.
pub const CT_FLOW: FlowId = FlowId(100);

/// Configuration of one AF run.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct AfConfig {
    /// Which clip to stream.
    pub clip: ClipId2,
    /// MPEG-1 CBR encoding rate.
    pub encoding_bps: u64,
    /// srTCM committed rate for the video's AF profile.
    pub cir_bps: u64,
    /// srTCM committed burst (bytes).
    pub cbs_bytes: u32,
    /// srTCM excess burst (bytes).
    pub ebs_bytes: u32,
    /// Mean rate of the competing cross traffic.
    pub cross_load_bps: u64,
    /// Committed (green) rate of the cross traffic's own AF profile —
    /// in-profile background competes with the video's green packets,
    /// which is exactly the sensitivity that made the paper drop its AF
    /// results.
    pub cross_cir_bps: u64,
    /// Bottleneck link rate shared by video and cross traffic.
    pub bottleneck_bps: u64,
    /// Experiment seed.
    pub seed: u64,
}

impl AfConfig {
    /// A standard AF run: Lost @1.5 Mbps, CIR = 1.1× the encoding,
    /// sharing a 6 Mbps bottleneck with the given cross load.
    pub fn new(clip: ClipId2, encoding_bps: u64, cross_load_bps: u64) -> AfConfig {
        AfConfig {
            clip,
            encoding_bps,
            cir_bps: (encoding_bps as f64 * 1.1) as u64,
            cbs_bytes: 9_000,
            ebs_bytes: 9_000,
            cross_load_bps,
            cross_cir_bps: cross_load_bps / 2,
            bottleneck_bps: 6_000_000,
            seed: 23,
        }
    }
}

/// The AF experiment's colored background, as the same reusable
/// cross-traffic fragment the other testbeds use.
pub fn af_cross_traffic(cross_load_bps: u64) -> CrossTrafficSpec {
    CrossTrafficSpec {
        sink_name: "ct-sink".to_string(),
        src_name: "ct-src".to_string(),
        sink_attach: "egress".to_string(),
        src_attach: "edge".to_string(),
        link: LinkParams::fast_ethernet(),
        flow: CT_FLOW.0,
        packet_size: 1200,
        peak_rate_bps: cross_load_bps * 2, // 50 % duty cycle → mean = load
        mean_on_us: 150_000,
        mean_off_us: 150_000,
        stop_at_us: 220_000_000,
        rng_fork: 5,
    }
}

/// The declarative AF scenario for `cfg`.
pub fn af_spec(cfg: &AfConfig) -> ScenarioSpec {
    let media = MediaRef {
        clip: cfg.clip,
        codec: CodecSpec::Mpeg1,
        rate_bps: cfg.encoding_bps,
    };
    let mut spec = ScenarioSpec::new("af", cfg.seed);

    spec.nodes.push(NodeSpec::host(
        "client",
        AppSpec::StreamClient {
            server: "video-server".to_string(),
            up_flow: UP_FLOW.0,
            media,
            transport: TransportSpec::Udp,
            feedback_us: None,
        },
    ));
    spec.nodes.push(NodeSpec::router("egress"));
    spec.nodes.push(NodeSpec::router("edge"));
    spec.nodes.push(NodeSpec::host(
        "video-server",
        AppSpec::PacedServer {
            client: "client".to_string(),
            flow: MEDIA_FLOW.0,
            dscp: DscpSpec::BestEffort,
            media,
        },
    ));

    spec.links.push(LinkSpec::simple(
        "video-server",
        "edge",
        LinkParams::fast_ethernet(),
    ));
    spec.links.push(LinkSpec::simple(
        "client",
        "egress",
        LinkParams::ethernet_10mbps(),
    ));

    // The shared bottleneck with a WRED-managed buffer toward the client;
    // the return path is a plain unbounded FIFO.
    let bottleneck = LinkParams {
        rate_bps: cfg.bottleneck_bps,
        propagation_ns: 5_000_000,
    };
    spec.links.push(LinkSpec {
        a: "edge".to_string(),
        b: "egress".to_string(),
        ab: bottleneck,
        ba: bottleneck,
        qdisc_ab: QdiscSpec::Wred {
            capacity_bytes: 120_000,
            seed: cfg.seed ^ 0xAF,
        },
        qdisc_ba: QdiscSpec::DropTail {
            limits: LimitsSpec::UNBOUNDED,
        },
    });

    // Edge conditioning: srTCM-color the video into AF class 1, and give
    // the cross traffic its own profile in the same class (other
    // customers' in-profile traffic shares the green pool).
    spec.conditioners.push(ConditionerSpec {
        node: "edge".to_string(),
        tap: Some("edge".to_string()),
        rules: vec![
            RuleSpec {
                matches: MatchSpec::src_dst("video-server", "client"),
                action: ActionSpec::MeterAf {
                    cir_bps: cfg.cir_bps,
                    cbs_bytes: cfg.cbs_bytes,
                    ebs_bytes: cfg.ebs_bytes,
                    class: 1,
                },
            },
            RuleSpec {
                matches: MatchSpec::flow(CT_FLOW.0),
                action: ActionSpec::MeterAf {
                    cir_bps: cfg.cross_cir_bps.max(1),
                    cbs_bytes: 30_000,
                    ebs_bytes: 30_000,
                    class: 1,
                },
            },
        ],
    });

    // Cross traffic entering at the edge (where its own profile colors
    // it) and sharing the bottleneck.
    if cfg.cross_load_bps > 0 {
        af_cross_traffic(cfg.cross_load_bps).attach(&mut spec);
    }

    // No audit bounds: the srTCM meter colors but never drops, so there
    // is no admission bound to register.
    spec.horizon_ns = Some(run_horizon(cfg.clip.into()).as_nanos());
    spec
}

/// Run one AF streaming session and score it.
pub fn run_af(cfg: &AfConfig) -> RunOutcome {
    run_af_detailed(cfg).0
}

/// [`run_af`], also returning the raw client report (delivery detail and
/// the flow features the QoE proxy consumes).
pub fn run_af_detailed(cfg: &AfConfig) -> (RunOutcome, dsv_stream::client::ClientReport) {
    let clip_id: ClipId = cfg.clip.into();
    let t_artifacts = Instant::now();
    artifacts::encoding(clip_id, Codec::Mpeg1, cfg.encoding_bps);
    profile::add_encode(t_artifacts.elapsed());

    let spec = af_spec(cfg);
    let compiled = compile(
        &spec,
        CompileOptions {
            store: Some(&ArtifactStore),
            wrap: None,
        },
    )
    .expect("af spec compiles");
    let client_handle = compiled
        .sole_client()
        .expect("af scenario has one client")
        .clone();
    let horizon = compiled.horizon.expect("af spec sets a horizon");
    let bounds = compiled.bounds.clone();

    let mut sim = Simulation::new(compiled.net);
    crate::auditing::arm(&mut sim, &bounds);
    let t_sim = Instant::now();
    let stats = sim.run_until(SimTime::ZERO + horizon);
    profile::add_simulate(t_sim.elapsed(), stats.dispatched);
    profile::record_high_water(sim.queue.high_water(), sim.net.pool_high_water());
    crate::auditing::finish(&mut sim, "af run");

    let report = client_handle.borrow().report();
    let media = sim.net.stats.flow(MEDIA_FLOW);
    let t_features = Instant::now();
    let source = artifacts::source_features(clip_id);
    let reference = artifacts::reference_features(clip_id, Codec::Mpeg1, cfg.encoding_bps);
    profile::add_encode(t_features.elapsed());
    let t_score = Instant::now();
    let score = crate::qoe::score_session(&source, &reference, &report, None);
    profile::add_score(t_score.elapsed());
    let outcome = RunOutcome::assemble(&report, &media, &score, 0, 0, false);
    (outcome, report)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unloaded_af_delivers_good_quality() {
        let out = run_af(&AfConfig::new(ClipId2::Lost, 1_500_000, 0));
        assert!(out.quality < 0.1, "quality {}", out.quality);
        assert!(out.frame_loss < 0.02, "loss {}", out.frame_loss);
    }

    #[test]
    fn af_quality_depends_on_cross_traffic() {
        // The reason the paper excluded its AF results: with EF the
        // stream is isolated by strict priority; with AF it shares the
        // WRED buffer and heavy background load leaks into the green
        // traffic.
        let light = run_af(&AfConfig::new(ClipId2::Lost, 1_500_000, 1_000_000));
        let mut heavy_cfg = AfConfig::new(ClipId2::Lost, 1_500_000, 7_000_000);
        heavy_cfg.cross_cir_bps = 5_000_000; // mostly in-profile background
        let heavy = run_af(&heavy_cfg);
        assert!(
            heavy.quality > light.quality + 0.1,
            "heavy load {:.3} should hurt vs light {:.3}",
            heavy.quality,
            light.quality
        );
    }

    #[test]
    fn af_runs_are_deterministic() {
        let cfg = AfConfig::new(ClipId2::Lost, 1_500_000, 3_000_000);
        assert_eq!(run_af(&cfg).quality, run_af(&cfg).quality);
    }
}
