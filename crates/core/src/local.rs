//! The local Diff-Serv testbed (paper §3.2.1, Figure 4).
//!
//! A Windows-Media-style server streams WMV to the client across three
//! Diff-Serv routers joined by 2 Mbps Frame-Relay circuits (Table 1), the
//! V.35 hop being the E1-limited bottleneck. Router 1 classifies
//! server→client traffic, polices it against the EF profile (drop), and
//! marks conformant packets EF; routers 2 and 3 forward EF at high
//! priority. A Linux workstation between the server and router 1 can
//! optionally shape the stream to the same profile before it reaches the
//! policer. Transport is UDP (the adaptive WMT server) or mini-TCP.

use dsv_diffserv::classifier::MatchRule;
use dsv_diffserv::policer::Policer;
use dsv_diffserv::policy::{PolicyAction, PolicyTable};
use dsv_diffserv::shaper::Shaper;
use dsv_media::encoder::wmv;
use dsv_media::scene::ClipId;
use dsv_net::app::Shared;
use dsv_net::frame_relay::table1;
use dsv_net::link::Link;
use dsv_net::network::{NetworkBuilder, Simulation};
use dsv_net::packet::{Dscp, FlowId, NodeId};
use dsv_net::qdisc::{QueueLimits, StrictPriorityQueue};
use dsv_net::traffic::{CountingSink, OnOffSource};
use dsv_sim::{SimDuration, SimRng, SimTime};
use dsv_stream::client::{ClientConfig, ClientMode, StreamClient};
use dsv_stream::payload::StreamPayload;
use dsv_stream::playback::PlaybackConfig;
use dsv_stream::server::adaptive::{AdaptiveConfig, AdaptiveServer};
use dsv_stream::server::tcp_server::{TcpServerConfig, TcpStreamServer};
use serde::{Deserialize, Serialize};

use std::time::Instant;

use crate::artifacts::{self, Codec};
use crate::experiment::{run_horizon, score_run_shared, EfProfile, RunOutcome};
use crate::profile;
use crate::qbone::ClipId2;

/// Flow id of the media stream.
pub const MEDIA_FLOW: FlowId = FlowId(1);
/// Flow id of client→server traffic (control, feedback, ACKs).
pub const UP_FLOW: FlowId = FlowId(2);
/// Flow id of background cross traffic.
pub const CT_FLOW: FlowId = FlowId(100);
/// Flow id of pre-policer jitter traffic.
pub const JITTER_FLOW: FlowId = FlowId(101);

/// Transport used between server and client.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum LocalTransport {
    /// UDP streaming by the adaptive (WMT-style) server.
    Udp,
    /// Mini-TCP streaming.
    Tcp,
}

/// Configuration of one local-testbed run.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct LocalConfig {
    /// Which clip to stream.
    pub clip: ClipId2,
    /// WMV encoder bandwidth cap (the paper used ≈1015.5 kbps).
    pub cap_bps: u64,
    /// EF profile enforced (and optionally shaped to) at the edge.
    pub profile: EfProfile,
    /// Transport discipline.
    pub transport: LocalTransport,
    /// Shape at the Linux router before the policer.
    pub shaped: bool,
    /// Add best-effort cross traffic (both pre-policer jitter and
    /// FR-path load).
    pub cross_traffic: bool,
    /// Give the adaptive server a low-rate fallback encoding tier.
    pub multi_rate: bool,
    /// Experiment seed.
    pub seed: u64,
}

impl LocalConfig {
    /// A standard run at the paper's encoder setting.
    pub fn new(clip: ClipId2, profile: EfProfile, transport: LocalTransport) -> LocalConfig {
        LocalConfig {
            clip,
            cap_bps: wmv::PAPER_CAP_BPS,
            profile,
            transport,
            shaped: false,
            cross_traffic: false,
            multi_rate: false,
            seed: 11,
        }
    }
}

/// Run one local-testbed session and score it.
pub fn run_local(cfg: &LocalConfig) -> RunOutcome {
    run_local_detailed(cfg).0
}

/// Like [`run_local`], but also return the client's full report (arrival
/// times, decodability, playback schedule) for deeper analysis.
pub fn run_local_detailed(cfg: &LocalConfig) -> (RunOutcome, dsv_stream::client::ClientReport) {
    let clip_id: ClipId = cfg.clip.into();
    let t_artifacts = Instant::now();
    let clip = artifacts::encoding(clip_id, Codec::Wmv, cfg.cap_bps);
    profile::add_encode(t_artifacts.elapsed());
    let mut rng = SimRng::seed_from_u64(cfg.seed);

    let mut b = NetworkBuilder::<StreamPayload>::new();

    let frames = clip.frames.len() as u32;
    let server_id = NodeId(5);
    let client_mode = match cfg.transport {
        LocalTransport::Udp => ClientMode::Udp,
        LocalTransport::Tcp => ClientMode::Tcp {
            frame_bytes: clip.frames.iter().map(|f| f.bytes).collect(),
            fidelities: clip.frames.iter().map(|f| f.fidelity).collect(),
        },
    };
    let feedback = match cfg.transport {
        LocalTransport::Udp => Some(SimDuration::from_secs(1)),
        LocalTransport::Tcp => None,
    };
    let (client_handle, client_app) = Shared::new(StreamClient::new(ClientConfig {
        server: server_id,
        up_flow: UP_FLOW,
        frames,
        kind_fn: wmv::frame_kind,
        playback: PlaybackConfig::default(),
        feedback_interval: feedback,
        mode: client_mode,
    }));

    let client = b.add_host("client", Box::new(client_app));
    let r3 = b.add_router("router3");
    let r2 = b.add_router("router2");
    let r1 = b.add_router("router1");
    let linux = b.add_router("linux-shaper");

    // The server application.
    let mut adaptive_handle = None;
    let server = match cfg.transport {
        LocalTransport::Udp => {
            let tiers = if cfg.multi_rate {
                let t_tier = Instant::now();
                let low = artifacts::encoding(clip_id, Codec::Wmv, 300_000);
                profile::add_encode(t_tier.elapsed());
                vec![(*low).clone(), (*clip).clone()]
            } else {
                vec![(*clip).clone()]
            };
            let (h, app) = Shared::new(AdaptiveServer::new(
                AdaptiveConfig::new(client, MEDIA_FLOW, Dscp::BEST_EFFORT),
                tiers,
            ));
            adaptive_handle = Some(h);
            b.add_host("wmt-server", Box::new(app))
        }
        LocalTransport::Tcp => b.add_host(
            "wmt-server",
            Box::new(TcpStreamServer::new(
                TcpServerConfig::new(client, MEDIA_FLOW, Dscp::BEST_EFFORT),
                &clip,
            )),
        ),
    };
    assert_eq!(server, server_id, "node creation order changed");

    // Links per Figure 4. Ethernet hubs for local connectivity; the FR
    // circuits from Table 1 as constant-rate serial links; EF priority
    // queues on the FR-facing ports.
    let prio = || {
        Box::new(StrictPriorityQueue::ef_default(
            QueueLimits::bytes(60_000),
            QueueLimits::packets(50),
        ))
    };
    b.connect(client, r3, Link::ethernet_10mbps());
    let v35 = table1::router3_fr0().as_link(SimDuration::from_micros(500));
    b.connect_with(r2, r3, v35, v35, prio(), prio());
    let hssi = table1::router2_fr1().as_link(SimDuration::from_micros(500));
    b.connect_with(r1, r2, hssi, hssi, prio(), prio());
    b.connect(linux, r1, Link::ethernet_10mbps());
    b.connect(server, linux, Link::ethernet_10mbps());

    // Router 1: classify server→client, police to the EF profile, mark
    // conformant packets EF, drop the rest (paper §3.2.1.2).
    let policer = Policer::new(
        dsv_diffserv::token_bucket::TokenBucket::new(
            cfg.profile.token_rate_bps,
            cfg.profile.bucket_depth_bytes,
        ),
        Some(Dscp::EF),
        dsv_diffserv::policer::ExceedAction::Drop,
    );
    let table = PolicyTable::new().with(
        MatchRule::src_dst(server, client),
        PolicyAction::Police(policer),
    );
    b.set_conditioner(r1, Box::new(table));

    // The Linux workstation shapes the stream to the same profile before
    // it reaches the policer, when enabled.
    if cfg.shaped {
        // A modest delay buffer, as Linux tc-tbf defaults use: big enough
        // to absorb bursts, small enough not to bufferbloat TCP recovery.
        let shaper: Shaper<StreamPayload> = Shaper::new(
            cfg.profile.token_rate_bps,
            cfg.profile.bucket_depth_bytes,
            64 * 1024,
        );
        let table = PolicyTable::new().with(
            MatchRule::src_dst(server, client),
            PolicyAction::Shape(shaper),
        );
        b.set_conditioner(linux, Box::new(table));
    }

    // Optional interfering traffic: a bursty best-effort source whose path
    // shares the server's LAN segment ahead of the policer (the jitter
    // interaction the paper highlights) and then the FR circuits.
    if cfg.cross_traffic {
        let ct_sink = b.add_host("ct-sink", Box::new(CountingSink::default()));
        b.connect(ct_sink, r3, Link::ethernet_10mbps());
        let jitter_src = b.add_host(
            "jitter-src",
            Box::new(OnOffSource::new(
                ct_sink,
                JITTER_FLOW,
                1500,
                5_000_000,
                SimDuration::from_millis(50),
                SimDuration::from_millis(300),
                Dscp::BEST_EFFORT,
                SimTime::from_secs(200),
                rng.fork(2),
            )),
        );
        b.connect(jitter_src, linux, Link::ethernet_10mbps());
    }

    let mut sim = Simulation::new(b.build());
    // Under `DSV_AUDIT=1`: lifecycle oracles plus the EF policer's
    // admission bound at router 1 — and, when shaping, the same bound at
    // the Linux workstation's egress (a conformant shaper must respect
    // the very profile it shapes to).
    let mut bounds = vec![(
        r1,
        MEDIA_FLOW,
        cfg.profile.token_rate_bps,
        cfg.profile.bucket_depth_bytes,
    )];
    if cfg.shaped {
        bounds.push((
            linux,
            MEDIA_FLOW,
            cfg.profile.token_rate_bps,
            cfg.profile.bucket_depth_bytes,
        ));
    }
    crate::auditing::arm(&mut sim, &bounds);
    let t_sim = Instant::now();
    let stats = sim.run_until(SimTime::ZERO + run_horizon(clip_id) + SimDuration::from_secs(30));
    profile::add_simulate(t_sim.elapsed(), stats.dispatched);
    profile::record_high_water(sim.queue.high_water(), sim.net.pool_high_water());
    crate::auditing::finish(&mut sim, "local run");

    let report = client_handle.borrow().report();
    let media = sim.net.stats.flow(MEDIA_FLOW);
    let shaper_drops = media.drops_for(dsv_net::packet::DropReason::ShaperOverflow);
    let (collapses, broken) = adaptive_handle
        .map(|h| {
            let s = h.borrow();
            (s.collapses, s.broken)
        })
        .unwrap_or((0, false));
    let t_features = Instant::now();
    let source = artifacts::source_features(clip_id);
    let reference = artifacts::reference_features(clip_id, Codec::Wmv, cfg.cap_bps);
    profile::add_encode(t_features.elapsed());
    let t_score = Instant::now();
    let (same, _) = score_run_shared(&source, &reference, &report, None);
    profile::add_score(t_score.elapsed());
    let outcome = RunOutcome::assemble(
        &report,
        &media,
        &same,
        None,
        shaper_drops,
        collapses,
        broken,
    );
    (outcome, report)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::experiment::{DEPTH_2MTU, DEPTH_3MTU};

    fn base(rate: u64, depth: u32, transport: LocalTransport) -> LocalConfig {
        LocalConfig::new(ClipId2::Lost, EfProfile::new(rate, depth), transport)
    }

    #[test]
    fn generous_profile_udp_works() {
        // Token rate near the V.35 limit with the bigger bucket.
        let out = run_local(&base(2_000_000, DEPTH_3MTU, LocalTransport::Udp));
        assert!(out.quality < 0.25, "quality {}", out.quality);
        assert!(out.frame_loss < 0.08, "frame loss {}", out.frame_loss);
        assert!(!out.broken);
    }

    #[test]
    fn starved_profile_udp_fails() {
        let out = run_local(&base(400_000, DEPTH_2MTU, LocalTransport::Udp));
        assert!(out.quality > 0.6, "quality {}", out.quality);
    }

    #[test]
    fn tcp_survives_moderate_policing_when_shaped() {
        // The paper's TCP runs relied on the upstream shaper (§4.2). With
        // it, TCP adapts under the profile and delivers everything — late
        // at worst — so quality degrades gracefully.
        let mut cfg = base(1_300_000, DEPTH_3MTU, LocalTransport::Tcp);
        cfg.shaped = true;
        let out = run_local(&cfg);
        // Shaped traffic is conformant at the shaper's output, but link
        // serialization between shaper and policer compresses some gaps —
        // the jitter effect the paper likens to ATM CDV (§3.2). A handful
        // of drops is physical; wholesale dropping is not.
        assert!(
            out.policer_drops < 50,
            "shaped traffic should be nearly conformant: {} drops",
            out.policer_drops
        );
        assert!(
            out.quality < 0.45,
            "shaped TCP should degrade gracefully: {}",
            out.quality
        );
        // Everything was delivered eventually: losses are lateness only.
        let (_, report) = run_local_detailed(&cfg);
        let received = report.received.iter().filter(|&&x| x).count();
        assert_eq!(received, report.received.len(), "TCP is reliable");
    }

    #[test]
    fn tcp_through_bare_policer_thrashes() {
        // Without the shaper, a tiny-bucket drop policer starves TCP of
        // dupacks (flights of 2–3 segments), forcing RTO recovery — the
        // known policing-vs-TCP pathology. The shaped path must beat it.
        let bare = run_local(&base(1_300_000, DEPTH_3MTU, LocalTransport::Tcp));
        let mut cfg = base(1_300_000, DEPTH_3MTU, LocalTransport::Tcp);
        cfg.shaped = true;
        let shaped = run_local(&cfg);
        assert!(
            shaped.quality + 0.2 < bare.quality,
            "shaped {} vs bare {}",
            shaped.quality,
            bare.quality
        );
    }

    #[test]
    fn shaping_helps_udp_at_tight_profiles() {
        let unshaped = run_local(&base(1_300_000, DEPTH_2MTU, LocalTransport::Udp));
        let mut cfg = base(1_300_000, DEPTH_2MTU, LocalTransport::Udp);
        cfg.shaped = true;
        let shaped = run_local(&cfg);
        assert!(
            shaped.quality <= unshaped.quality + 0.05,
            "shaped {} vs unshaped {}",
            shaped.quality,
            unshaped.quality
        );
    }

    #[test]
    fn deterministic() {
        let cfg = base(1_500_000, DEPTH_2MTU, LocalTransport::Udp);
        let a = run_local(&cfg);
        let b = run_local(&cfg);
        assert_eq!(a.quality, b.quality);
        assert_eq!(a.policer_drops, b.policer_drops);
    }
}
