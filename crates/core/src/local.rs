//! The local Diff-Serv testbed (paper §3.2.1, Figure 4).
//!
//! A Windows-Media-style server streams WMV to the client across three
//! Diff-Serv routers joined by 2 Mbps Frame-Relay circuits (Table 1), the
//! V.35 hop being the E1-limited bottleneck. Router 1 classifies
//! server→client traffic, polices it against the EF profile (drop), and
//! marks conformant packets EF; routers 2 and 3 forward EF at high
//! priority. A Linux workstation between the server and router 1 can
//! optionally shape the stream to the same profile before it reaches the
//! policer. Transport is UDP (the adaptive WMT server) or mini-TCP.
//!
//! The topology is declared by [`local_spec`] and lowered by the scenario
//! compiler; nodes resolve by name, never by creation order.

use dsv_media::encoder::wmv;
use dsv_media::scene::ClipId;
use dsv_net::frame_relay::table1;
use dsv_net::network::Simulation;
use dsv_net::packet::FlowId;
use dsv_scenario::{
    compile, ActionSpec, AppSpec, BoundSpec, CompileOptions, ConditionerSpec, CrossTrafficSpec,
    DscpSpec, LimitsSpec, LinkParams, LinkSpec, MatchSpec, MediaRef, NodeSpec, QdiscSpec, RuleSpec,
    ScenarioSpec, TransportSpec,
};
use dsv_sim::{SimDuration, SimTime};
use serde::{Deserialize, Serialize};

use std::time::Instant;

use crate::artifacts::{self, ArtifactStore, Codec};
use crate::experiment::{run_horizon, EfProfile, RunOutcome};
use crate::profile;
use crate::qbone::{ClipId2, CodecSpec};

/// Flow id of the media stream.
pub const MEDIA_FLOW: FlowId = FlowId(1);
/// Flow id of client→server traffic (control, feedback, ACKs).
pub const UP_FLOW: FlowId = FlowId(2);
/// Flow id of background cross traffic.
pub const CT_FLOW: FlowId = FlowId(100);
/// Flow id of pre-policer jitter traffic.
pub const JITTER_FLOW: FlowId = FlowId(101);

/// Transport used between server and client.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum LocalTransport {
    /// UDP streaming by the adaptive (WMT-style) server.
    Udp,
    /// Mini-TCP streaming.
    Tcp,
}

/// Configuration of one local-testbed run.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct LocalConfig {
    /// Which clip to stream.
    pub clip: ClipId2,
    /// WMV encoder bandwidth cap (the paper used ≈1015.5 kbps).
    pub cap_bps: u64,
    /// EF profile enforced (and optionally shaped to) at the edge.
    pub profile: EfProfile,
    /// Transport discipline.
    pub transport: LocalTransport,
    /// Shape at the Linux router before the policer.
    pub shaped: bool,
    /// Add best-effort cross traffic (both pre-policer jitter and
    /// FR-path load).
    pub cross_traffic: bool,
    /// Give the adaptive server a low-rate fallback encoding tier.
    pub multi_rate: bool,
    /// Experiment seed.
    pub seed: u64,
}

impl LocalConfig {
    /// A standard run at the paper's encoder setting.
    pub fn new(clip: ClipId2, profile: EfProfile, transport: LocalTransport) -> LocalConfig {
        LocalConfig {
            clip,
            cap_bps: wmv::PAPER_CAP_BPS,
            profile,
            transport,
            shaped: false,
            cross_traffic: false,
            multi_rate: false,
            seed: 11,
        }
    }
}

/// The adaptive server's low-rate fallback tier (bps).
pub const LOW_TIER_BPS: u64 = 300_000;

/// The local testbed's pre-policer jitter source, as the same reusable
/// cross-traffic fragment the QBone backbone uses.
pub fn local_cross_traffic() -> CrossTrafficSpec {
    CrossTrafficSpec {
        sink_name: "ct-sink".to_string(),
        src_name: "jitter-src".to_string(),
        sink_attach: "router3".to_string(),
        src_attach: "linux-shaper".to_string(),
        link: LinkParams::ethernet_10mbps(),
        flow: JITTER_FLOW.0,
        packet_size: 1500,
        peak_rate_bps: 5_000_000,
        mean_on_us: 50_000,
        mean_off_us: 300_000,
        stop_at_us: 200_000_000,
        rng_fork: 2,
    }
}

/// The declarative local-testbed scenario for `cfg` (paper Figure 4 as
/// data).
pub fn local_spec(cfg: &LocalConfig) -> ScenarioSpec {
    let media = MediaRef {
        clip: cfg.clip,
        codec: CodecSpec::Wmv,
        rate_bps: cfg.cap_bps,
    };
    let mut spec = ScenarioSpec::new("local", cfg.seed);

    let (transport, feedback_us) = match cfg.transport {
        LocalTransport::Udp => (TransportSpec::Udp, Some(1_000_000)),
        LocalTransport::Tcp => (TransportSpec::Tcp, None),
    };
    spec.nodes.push(NodeSpec::host(
        "client",
        AppSpec::StreamClient {
            server: "wmt-server".to_string(),
            up_flow: UP_FLOW.0,
            media,
            transport,
            feedback_us,
        },
    ));
    spec.nodes.push(NodeSpec::router("router3"));
    spec.nodes.push(NodeSpec::router("router2"));
    spec.nodes.push(NodeSpec::router("router1"));
    spec.nodes.push(NodeSpec::router("linux-shaper"));
    let server_app = match cfg.transport {
        LocalTransport::Udp => AppSpec::AdaptiveServer {
            client: "client".to_string(),
            flow: MEDIA_FLOW.0,
            dscp: DscpSpec::BestEffort,
            tiers: if cfg.multi_rate {
                vec![
                    MediaRef {
                        clip: cfg.clip,
                        codec: CodecSpec::Wmv,
                        rate_bps: LOW_TIER_BPS,
                    },
                    media,
                ]
            } else {
                vec![media]
            },
        },
        // The shared TCP-server fragment (same constructor as the
        // smoothing sweep, so the pacing lead cannot drift between them).
        LocalTransport::Tcp => {
            AppSpec::tcp_server("client", MEDIA_FLOW.0, DscpSpec::BestEffort, media)
        }
    };
    spec.nodes.push(NodeSpec::host("wmt-server", server_app));

    // Links per Figure 4. Ethernet hubs for local connectivity; the FR
    // circuits from Table 1 as constant-rate serial links; EF priority
    // queues on the FR-facing ports.
    let prio = QdiscSpec::StrictPriorityEf {
        ef: LimitsSpec::bytes(60_000),
        be: LimitsSpec::packets(50),
    };
    spec.links.push(LinkSpec::simple(
        "client",
        "router3",
        LinkParams::ethernet_10mbps(),
    ));
    let v35 = LinkParams::from_link(table1::router3_fr0().as_link(SimDuration::from_micros(500)));
    spec.links
        .push(LinkSpec::symmetric("router2", "router3", v35, prio));
    let hssi = LinkParams::from_link(table1::router2_fr1().as_link(SimDuration::from_micros(500)));
    spec.links
        .push(LinkSpec::symmetric("router1", "router2", hssi, prio));
    spec.links.push(LinkSpec::simple(
        "linux-shaper",
        "router1",
        LinkParams::ethernet_10mbps(),
    ));
    spec.links.push(LinkSpec::simple(
        "wmt-server",
        "linux-shaper",
        LinkParams::ethernet_10mbps(),
    ));

    // Router 1: classify server→client, police to the EF profile, mark
    // conformant packets EF, drop the rest (paper §3.2.1.2).
    spec.conditioners.push(ConditionerSpec {
        node: "router1".to_string(),
        tap: Some("policer".to_string()),
        rules: vec![RuleSpec {
            matches: MatchSpec::src_dst("wmt-server", "client"),
            action: ActionSpec::Police {
                rate_bps: cfg.profile.token_rate_bps,
                depth_bytes: cfg.profile.bucket_depth_bytes,
                conform_mark: Some(DscpSpec::Ef),
            },
        }],
    });

    // The Linux workstation shapes the stream to the same profile before
    // it reaches the policer, when enabled. The delay buffer is modest,
    // as Linux tc-tbf defaults use: big enough to absorb bursts, small
    // enough not to bufferbloat TCP recovery.
    if cfg.shaped {
        spec.conditioners.push(ConditionerSpec {
            node: "linux-shaper".to_string(),
            tap: Some("shaper".to_string()),
            rules: vec![RuleSpec {
                matches: MatchSpec::src_dst("wmt-server", "client"),
                action: ActionSpec::Shape {
                    rate_bps: cfg.profile.token_rate_bps,
                    depth_bytes: cfg.profile.bucket_depth_bytes,
                    max_queue_bytes: 64 * 1024,
                },
            }],
        });
    }

    // Optional interfering traffic: a bursty best-effort source whose path
    // shares the server's LAN segment ahead of the policer (the jitter
    // interaction the paper highlights) and then the FR circuits.
    if cfg.cross_traffic {
        local_cross_traffic().attach(&mut spec);
    }

    // Audit bounds: the EF policer's admission bound at router 1 — and,
    // when shaping, the same bound at the Linux workstation's egress (a
    // conformant shaper must respect the very profile it shapes to).
    spec.bounds.push(BoundSpec {
        node: "router1".to_string(),
        flow: MEDIA_FLOW.0,
        rate_bps: cfg.profile.token_rate_bps,
        depth_bytes: cfg.profile.bucket_depth_bytes,
    });
    if cfg.shaped {
        spec.bounds.push(BoundSpec {
            node: "linux-shaper".to_string(),
            flow: MEDIA_FLOW.0,
            rate_bps: cfg.profile.token_rate_bps,
            depth_bytes: cfg.profile.bucket_depth_bytes,
        });
    }
    spec.horizon_ns = Some((run_horizon(cfg.clip.into()) + SimDuration::from_secs(30)).as_nanos());
    spec
}

/// Run one local-testbed session and score it.
pub fn run_local(cfg: &LocalConfig) -> RunOutcome {
    run_local_detailed(cfg).0
}

/// Like [`run_local`], but also return the client's full report (arrival
/// times, decodability, playback schedule) for deeper analysis.
pub fn run_local_detailed(cfg: &LocalConfig) -> (RunOutcome, dsv_stream::client::ClientReport) {
    let clip_id: ClipId = cfg.clip.into();
    // Warm the artifact store so the encode cost is attributed to the
    // encode phase; the compile below then resolves media for free.
    let t_artifacts = Instant::now();
    artifacts::encoding(clip_id, Codec::Wmv, cfg.cap_bps);
    if cfg.transport == LocalTransport::Udp && cfg.multi_rate {
        artifacts::encoding(clip_id, Codec::Wmv, LOW_TIER_BPS);
    }
    profile::add_encode(t_artifacts.elapsed());

    let spec = local_spec(cfg);
    let compiled = compile(
        &spec,
        CompileOptions {
            store: Some(&ArtifactStore),
            wrap: None,
        },
    )
    .expect("local spec compiles");
    let client_handle = compiled
        .sole_client()
        .expect("local scenario has one client")
        .clone();
    let adaptive_handle = compiled.adaptives.first().map(|(_, h)| h.clone());
    let horizon = compiled.horizon.expect("local spec sets a horizon");
    let bounds = compiled.bounds.clone();

    let mut sim = Simulation::new(compiled.net);
    crate::auditing::arm(&mut sim, &bounds);
    let t_sim = Instant::now();
    let stats = sim.run_until(SimTime::ZERO + horizon);
    profile::add_simulate(t_sim.elapsed(), stats.dispatched);
    profile::record_high_water(sim.queue.high_water(), sim.net.pool_high_water());
    crate::auditing::finish(&mut sim, "local run");

    let report = client_handle.borrow().report();
    let media = sim.net.stats.flow(MEDIA_FLOW);
    let shaper_drops = media.drops_for(dsv_net::packet::DropReason::ShaperOverflow);
    let (collapses, broken) = adaptive_handle
        .map(|h| {
            let s = h.borrow();
            (s.collapses, s.broken)
        })
        .unwrap_or((0, false));
    let t_features = Instant::now();
    let source = artifacts::source_features(clip_id);
    let reference = artifacts::reference_features(clip_id, Codec::Wmv, cfg.cap_bps);
    profile::add_encode(t_features.elapsed());
    let t_score = Instant::now();
    let score = crate::qoe::score_session(&source, &reference, &report, None);
    profile::add_score(t_score.elapsed());
    let outcome = RunOutcome::assemble(&report, &media, &score, shaper_drops, collapses, broken);
    (outcome, report)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::experiment::{DEPTH_2MTU, DEPTH_3MTU};

    fn base(rate: u64, depth: u32, transport: LocalTransport) -> LocalConfig {
        LocalConfig::new(ClipId2::Lost, EfProfile::new(rate, depth), transport)
    }

    #[test]
    fn generous_profile_udp_works() {
        // Token rate near the V.35 limit with the bigger bucket.
        let out = run_local(&base(2_000_000, DEPTH_3MTU, LocalTransport::Udp));
        assert!(out.quality < 0.25, "quality {}", out.quality);
        assert!(out.frame_loss < 0.08, "frame loss {}", out.frame_loss);
        assert!(!out.broken);
    }

    #[test]
    fn starved_profile_udp_fails() {
        let out = run_local(&base(400_000, DEPTH_2MTU, LocalTransport::Udp));
        assert!(out.quality > 0.6, "quality {}", out.quality);
    }

    #[test]
    fn tcp_survives_moderate_policing_when_shaped() {
        // The paper's TCP runs relied on the upstream shaper (§4.2). With
        // it, TCP adapts under the profile and delivers everything — late
        // at worst — so quality degrades gracefully.
        let mut cfg = base(1_300_000, DEPTH_3MTU, LocalTransport::Tcp);
        cfg.shaped = true;
        let out = run_local(&cfg);
        // Shaped traffic is conformant at the shaper's output, but link
        // serialization between shaper and policer compresses some gaps —
        // the jitter effect the paper likens to ATM CDV (§3.2). A handful
        // of drops is physical; wholesale dropping is not.
        assert!(
            out.policer_drops < 50,
            "shaped traffic should be nearly conformant: {} drops",
            out.policer_drops
        );
        assert!(
            out.quality < 0.45,
            "shaped TCP should degrade gracefully: {}",
            out.quality
        );
        // Everything was delivered eventually: losses are lateness only.
        let (_, report) = run_local_detailed(&cfg);
        let received = report.received.iter().filter(|&&x| x).count();
        assert_eq!(received, report.received.len(), "TCP is reliable");
    }

    #[test]
    fn tcp_through_bare_policer_thrashes() {
        // Without the shaper, a tiny-bucket drop policer starves TCP of
        // dupacks (flights of 2–3 segments), forcing RTO recovery — the
        // known policing-vs-TCP pathology. The shaped path must beat it.
        let bare = run_local(&base(1_300_000, DEPTH_3MTU, LocalTransport::Tcp));
        let mut cfg = base(1_300_000, DEPTH_3MTU, LocalTransport::Tcp);
        cfg.shaped = true;
        let shaped = run_local(&cfg);
        assert!(
            shaped.quality + 0.2 < bare.quality,
            "shaped {} vs bare {}",
            shaped.quality,
            bare.quality
        );
    }

    #[test]
    fn shaping_helps_udp_at_tight_profiles() {
        let unshaped = run_local(&base(1_300_000, DEPTH_2MTU, LocalTransport::Udp));
        let mut cfg = base(1_300_000, DEPTH_2MTU, LocalTransport::Udp);
        cfg.shaped = true;
        let shaped = run_local(&cfg);
        assert!(
            shaped.quality <= unshaped.quality + 0.05,
            "shaped {} vs unshaped {}",
            shaped.quality,
            unshaped.quality
        );
    }

    #[test]
    fn deterministic() {
        let cfg = base(1_500_000, DEPTH_2MTU, LocalTransport::Udp);
        let a = run_local(&cfg);
        let b = run_local(&cfg);
        assert_eq!(a.quality, b.quality);
        assert_eq!(a.policer_drops, b.policer_drops);
    }
}
