//! Multi-flow EF aggregates: N paced video flows behind one edge policer.
//!
//! The paper studies one video stream against its own EF profile. The
//! QBone deployment model, however, polices an *aggregate*: every Premium
//! flow a site sends shares one CAR token bucket at the border. This
//! experiment scales the paper's QBone scenario to N simultaneous paced
//! servers (one per client) whose EF-marked media flows all pass the same
//! aggregate policer — exposing the provisioning question the
//! single-flow sweeps cannot ask: how much aggregate token rate does a
//! site need per flow, and does the bucket-depth effect survive
//! aggregation?
//!
//! The scenario is pure data ([`aggregate_spec`]): the single-flow QBone
//! topology with its client/server pair replicated N times. Because the
//! spec compiler resolves nodes by name, the N-flow variant is a loop
//! over names, not a re-derivation of creation-order ids.

use std::time::Instant;

use dsv_media::scene::ClipId;
use dsv_net::network::Simulation;
use dsv_net::packet::FlowId;
use dsv_scenario::{
    compile, ActionSpec, AppSpec, BoundSpec, CompileOptions, ConditionerSpec, DscpSpec, LimitsSpec,
    LinkParams, LinkSpec, MatchSpec, MediaRef, NodeSpec, QdiscSpec, RuleSpec, ScenarioSpec,
    TransportSpec,
};
use dsv_sim::SimTime;
use serde::{Deserialize, Serialize};

use crate::artifacts::{self, ArtifactStore, Codec};
use crate::experiment::{run_horizon, EfProfile, RunOutcome};
use crate::profile;
use crate::qbone::{ClipId2, CodecSpec};

/// Base flow id of client→server control traffic (flow `1000 + i` for
/// client `i`); media flows are `1 + i`.
pub const UP_FLOW_BASE: u32 = 1000;

/// Configuration of one EF-aggregate run.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct AggregateConfig {
    /// Which clip every server streams.
    pub clip: ClipId2,
    /// MPEG-1 CBR encoding rate of every stream.
    pub encoding_bps: u64,
    /// How many simultaneous client/server pairs share the aggregate.
    pub flows: u32,
    /// The *aggregate* APS profile at the border policer — all N media
    /// flows share this one token bucket.
    pub profile: EfProfile,
    /// Experiment seed.
    pub seed: u64,
    /// Declaration-order rotation of the client/server pairs: the pair
    /// carrying label `(p + rotation) % flows` is declared at position
    /// `p`. The pairs are exact permutation symmetries (identical app,
    /// path and conditioner treatment; only names and flow labels
    /// differ), so every rotation canonicalizes to the same
    /// symmetry-normal form and a rotated run equals the unrotated run
    /// up to the flow↔position relabelling — which makes it the
    /// declaration-order fairness sweep the cluster layer collapses to
    /// one simulation.
    pub rotation: u32,
}

impl AggregateConfig {
    /// A standard aggregate run.
    pub fn new(
        clip: ClipId2,
        encoding_bps: u64,
        flows: u32,
        profile: EfProfile,
    ) -> AggregateConfig {
        AggregateConfig {
            clip,
            encoding_bps,
            flows,
            profile,
            seed: 7,
            rotation: 0,
        }
    }

    /// The same run with the client/server pairs declared rotated by
    /// `rotation` positions.
    pub fn with_rotation(mut self, rotation: u32) -> AggregateConfig {
        self.rotation = rotation;
        self
    }

    /// The media flow id of stream `i`.
    pub fn media_flow(i: u32) -> FlowId {
        FlowId(1 + i)
    }

    /// The pair label declared at position `p` under this config's
    /// rotation.
    fn label_at(&self, p: u32) -> u32 {
        (p + self.rotation) % self.flows.max(1)
    }
}

/// Per-flow outcomes of one aggregate run, in flow order.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct AggregateOutcome {
    /// One scored outcome per media flow (flow `1 + i` at index `i`).
    pub per_flow: Vec<RunOutcome>,
}

impl AggregateOutcome {
    /// Mean VQM quality across the aggregate's flows.
    pub fn mean_quality(&self) -> f64 {
        if self.per_flow.is_empty() {
            return 0.0;
        }
        self.per_flow.iter().map(|o| o.quality).sum::<f64>() / self.per_flow.len() as f64
    }

    /// Worst per-flow VQM quality (higher is worse).
    pub fn worst_quality(&self) -> f64 {
        self.per_flow.iter().map(|o| o.quality).fold(0.0, f64::max)
    }

    /// Mean per-flow packet loss.
    pub fn mean_packet_loss(&self) -> f64 {
        if self.per_flow.is_empty() {
            return 0.0;
        }
        self.per_flow.iter().map(|o| o.packet_loss).sum::<f64>() / self.per_flow.len() as f64
    }

    /// Total policer drops across all flows.
    pub fn total_policer_drops(&self) -> u64 {
        self.per_flow.iter().map(|o| o.policer_drops).sum()
    }
}

/// The declarative N-flow aggregate scenario: the QBone topology with
/// its client/server pair replicated `cfg.flows` times and a single
/// DSCP-matched policer rule at the remote border.
pub fn aggregate_spec(cfg: &AggregateConfig) -> ScenarioSpec {
    let media = MediaRef {
        clip: cfg.clip,
        codec: CodecSpec::Mpeg1,
        rate_bps: cfg.encoding_bps,
    };
    let mut spec = ScenarioSpec::new("aggregate", cfg.seed);

    // Clients first, then the backbone, then the servers — the same
    // shape as the single-flow QBone scenario, looped over names. Each
    // loop walks declaration *positions*; the label carried at a
    // position comes from `cfg.rotation` (0 everywhere but the
    // declaration-order fairness sweep).
    for p in 0..cfg.flows {
        let i = cfg.label_at(p);
        spec.nodes.push(NodeSpec::host(
            &format!("client-{i}"),
            AppSpec::StreamClient {
                server: format!("server-{i}"),
                up_flow: UP_FLOW_BASE + i,
                media,
                transport: TransportSpec::Udp,
                feedback_us: None,
            },
        ));
    }
    spec.nodes.push(NodeSpec::router("local-edge"));
    spec.nodes.push(NodeSpec::router("core2"));
    spec.nodes.push(NodeSpec::router("core1"));
    spec.nodes.push(NodeSpec::router("remote-edge"));
    for p in 0..cfg.flows {
        let i = cfg.label_at(p);
        spec.nodes.push(NodeSpec::host(
            &format!("server-{i}"),
            AppSpec::PacedServer {
                client: format!("client-{i}"),
                flow: AggregateConfig::media_flow(i).0,
                dscp: DscpSpec::EfQbone,
                media,
            },
        ));
    }

    // Access links (one per pair), then the shared wide-area path.
    for p in 0..cfg.flows {
        let i = cfg.label_at(p);
        spec.links.push(LinkSpec::simple(
            &format!("client-{i}"),
            "local-edge",
            LinkParams::ethernet_10mbps(),
        ));
    }
    for p in 0..cfg.flows {
        let i = cfg.label_at(p);
        spec.links.push(LinkSpec::simple(
            &format!("server-{i}"),
            "remote-edge",
            LinkParams::fast_ethernet(),
        ));
    }
    let prio = QdiscSpec::StrictPriorityEf {
        ef: LimitsSpec::bytes(120_000),
        be: LimitsSpec::packets(60),
    };
    let wan = |rate_bps: u64, ms: u64| LinkParams {
        rate_bps,
        propagation_ns: ms * 1_000_000,
    };
    spec.links.push(LinkSpec::symmetric(
        "remote-edge",
        "core1",
        wan(45_000_000, 5),
        prio,
    ));
    spec.links.push(LinkSpec::symmetric(
        "core1",
        "core2",
        wan(155_000_000, 20),
        prio,
    ));
    spec.links.push(LinkSpec::symmetric(
        "core2",
        "local-edge",
        wan(45_000_000, 5),
        prio,
    ));

    // The aggregate policer: one rule, one token bucket, every EF-marked
    // packet — exactly how a border router polices a site's Premium
    // aggregate. Client control traffic is best-effort and passes.
    spec.conditioners.push(ConditionerSpec {
        node: "remote-edge".to_string(),
        tap: Some("ingress".to_string()),
        rules: vec![RuleSpec {
            matches: MatchSpec::dscp(DscpSpec::EfQbone),
            action: ActionSpec::Police {
                rate_bps: cfg.profile.token_rate_bps,
                depth_bytes: cfg.profile.bucket_depth_bytes,
                conform_mark: None,
            },
        }],
    });

    // Every flow leaving the policed border conforms to the aggregate
    // bound (a subset of a conformant stream is conformant), so the
    // audit oracles can check each media flow against the full profile.
    for i in 0..cfg.flows {
        spec.bounds.push(BoundSpec {
            node: "remote-edge".to_string(),
            flow: AggregateConfig::media_flow(i).0,
            rate_bps: cfg.profile.token_rate_bps,
            depth_bytes: cfg.profile.bucket_depth_bytes,
        });
    }
    spec.horizon_ns = Some(run_horizon(cfg.clip.into()).as_nanos());
    spec
}

/// Canonical rank of each media flow: entry `i` is the position of flow
/// `1 + i`'s outcome in a canonical-order per-flow vector (media flows
/// sorted by their canonical flow ids). Two configs sharing a canonical
/// form agree on canonical positions, so ranks are the bridge for
/// transplanting per-flow outcomes between them (and the order cache
/// entries are stored in).
pub fn media_flow_ranks(canon: &dsv_scenario::Canonical, flows: u32) -> Vec<usize> {
    let mut by_canon: Vec<(u32, u32)> = (0..flows)
        .map(|i| {
            let canon_id = canon
                .canon_flow(AggregateConfig::media_flow(i).0)
                .expect("every media flow appears in the spec");
            (canon_id, i)
        })
        .collect();
    by_canon.sort_unstable();
    let mut rank = vec![0usize; flows as usize];
    for (pos, &(_, label)) in by_canon.iter().enumerate() {
        rank[label as usize] = pos;
    }
    rank
}

/// Reorder a label-indexed outcome into canonical order (`canon[rank[i]]
/// = per_flow[i]`).
pub fn to_canonical_order(out: &AggregateOutcome, rank: &[usize]) -> AggregateOutcome {
    let mut per_flow = out.per_flow.clone();
    for (i, f) in out.per_flow.iter().enumerate() {
        per_flow[rank[i]] = f.clone();
    }
    AggregateOutcome { per_flow }
}

/// Reorder a canonical-order outcome back into this config's flow-label
/// order (`per_flow[i] = canon[rank[i]]`).
pub fn from_canonical_order(canon_out: &AggregateOutcome, rank: &[usize]) -> AggregateOutcome {
    AggregateOutcome {
        per_flow: rank
            .iter()
            .map(|&p| canon_out.per_flow[p].clone())
            .collect(),
    }
}

/// Run one aggregate session and score every flow.
pub fn run_aggregate(cfg: &AggregateConfig) -> AggregateOutcome {
    run_aggregate_detailed(cfg).0
}

/// [`run_aggregate`], also returning every flow's raw client report
/// (per-flow features for the QoE proxy dataset), in flow-label order.
pub fn run_aggregate_detailed(
    cfg: &AggregateConfig,
) -> (AggregateOutcome, Vec<dsv_stream::client::ClientReport>) {
    let clip_id: ClipId = cfg.clip.into();
    let t_artifacts = Instant::now();
    artifacts::encoding(clip_id, Codec::Mpeg1, cfg.encoding_bps);
    profile::add_encode(t_artifacts.elapsed());

    let spec = aggregate_spec(cfg);
    let compiled = compile(
        &spec,
        CompileOptions {
            store: Some(&ArtifactStore),
            wrap: None,
        },
    )
    .expect("aggregate spec compiles");
    assert_eq!(
        compiled.clients.len(),
        cfg.flows as usize,
        "one client handle per flow"
    );
    // Outcomes are reported per flow *label* (flow `1 + i` at index
    // `i`), whatever declaration position the rotation put the pair at —
    // the compiler hands clients back by node name, so look each one up.
    let clients: Vec<_> = (0..cfg.flows)
        .map(|i| {
            let name = format!("client-{i}");
            compiled
                .clients
                .iter()
                .find(|(n, _)| *n == name)
                .map(|(_, h)| h.clone())
                .expect("every pair label has a client")
        })
        .collect();
    let horizon = compiled.horizon.expect("aggregate spec sets a horizon");
    let bounds = compiled.bounds.clone();

    let mut sim = Simulation::new(compiled.net);
    crate::auditing::arm(&mut sim, &bounds);
    let t_sim = Instant::now();
    let stats = sim.run_until(SimTime::ZERO + horizon);
    profile::add_simulate(t_sim.elapsed(), stats.dispatched);
    profile::record_high_water(sim.queue.high_water(), sim.net.pool_high_water());
    crate::auditing::finish(&mut sim, "aggregate run");

    // Every flow scores against the same shared source/reference
    // features — one encode, N scores.
    let t_features = Instant::now();
    let source = artifacts::source_features(clip_id);
    let reference = artifacts::reference_features(clip_id, Codec::Mpeg1, cfg.encoding_bps);
    profile::add_encode(t_features.elapsed());
    let t_score = Instant::now();
    let (per_flow, reports) = clients
        .iter()
        .enumerate()
        .map(|(i, handle)| {
            let report = handle.borrow().report();
            let media = sim.net.stats.flow(AggregateConfig::media_flow(i as u32));
            let score = crate::qoe::score_session(&source, &reference, &report, None);
            let outcome = RunOutcome::assemble(&report, &media, &score, 0, 0, false);
            (outcome, report)
        })
        .unzip();
    profile::add_score(t_score.elapsed());
    (AggregateOutcome { per_flow }, reports)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::experiment::{DEPTH_2MTU, DEPTH_3MTU};
    use crate::qbone::{run_qbone, QboneConfig};

    #[test]
    fn single_flow_aggregate_matches_the_qbone_run() {
        // With N = 1 the aggregate scenario is the QBone scenario (same
        // node positions, same links, same policer behaviour — only the
        // names and flow labels differ, neither of which affects
        // timing). The outcome must agree exactly.
        let profile = EfProfile::new(1_550_000, DEPTH_2MTU);
        let agg = run_aggregate(&AggregateConfig::new(ClipId2::Lost, 1_500_000, 1, profile));
        let single = run_qbone(&QboneConfig::new(ClipId2::Lost, 1_500_000, profile));
        assert_eq!(agg.per_flow.len(), 1);
        assert_eq!(
            serde_json::to_string(&agg.per_flow[0]).unwrap(),
            serde_json::to_string(&single).unwrap(),
            "one-flow aggregate must reproduce the single-flow run"
        );
    }

    #[test]
    fn per_flow_share_shrinks_with_aggregation() {
        // An aggregate rate that comfortably covers one flow starves
        // four: the provisioning must scale with N.
        let profile = EfProfile::new(1_400_000, DEPTH_3MTU);
        let one = run_aggregate(&AggregateConfig::new(ClipId2::Lost, 1_000_000, 1, profile));
        let four = run_aggregate(&AggregateConfig::new(ClipId2::Lost, 1_000_000, 4, profile));
        assert!(one.mean_quality() < 0.1, "one flow: {}", one.mean_quality());
        assert!(
            four.mean_quality() > one.mean_quality() + 0.3,
            "four flows under the same aggregate must starve: {} vs {}",
            four.mean_quality(),
            one.mean_quality()
        );
        assert!(four.total_policer_drops() > 0);
    }

    #[test]
    fn scaling_rate_and_depth_restores_quality() {
        // Rate alone is not enough: the N paced servers start in phase,
        // so their packets reach the policer as an N-MTU burst that a
        // fixed 3-MTU bucket cannot absorb no matter the token rate. The
        // aggregate profile must scale *both* dimensions — N × rate and
        // N × depth — to restore every flow's quality.
        let n = 4u32;
        let per_flow_rate = 1_400_000u64;
        let rate_only = EfProfile::new(per_flow_rate * n as u64, DEPTH_3MTU);
        let starved = run_aggregate(&AggregateConfig::new(
            ClipId2::Lost,
            1_000_000,
            n,
            rate_only,
        ));
        assert!(
            starved.worst_quality() > 0.5,
            "fixed depth should still starve some flow: {}",
            starved.worst_quality()
        );

        let scaled = EfProfile::new(per_flow_rate * n as u64, DEPTH_3MTU * n);
        let out = run_aggregate(&AggregateConfig::new(ClipId2::Lost, 1_000_000, n, scaled));
        assert_eq!(out.per_flow.len(), n as usize);
        assert!(
            out.worst_quality() < 0.15,
            "worst flow {}",
            out.worst_quality()
        );
    }

    #[test]
    fn rotated_declarations_permute_per_flow_outcomes_exactly() {
        // The pairs are identical and in phase, so declaration order is
        // the only asymmetry: the engine breaks same-instant ties by
        // node id, which is declaration position. A rotated declaration
        // must therefore reproduce the unrotated run *per position* —
        // i.e. per flow label the outcomes permute exactly. This is the
        // invariance the cluster layer's transplant relies on.
        let n = 4u32;
        let cfg = AggregateConfig::new(
            ClipId2::Lost,
            1_000_000,
            n,
            EfProfile::new(1_400_000 * n as u64, DEPTH_3MTU),
        );
        let r0 = run_aggregate(&cfg);
        let r1 = run_aggregate(&cfg.clone().with_rotation(1));
        let json = |o: &crate::experiment::RunOutcome| serde_json::to_string(o).unwrap();
        for l in 0..n as usize {
            // Label `l` sits at position `(l - rot) mod n`; rotation 0
            // has the position-`p` outcome at index `p`.
            let pos = (l + n as usize - 1) % n as usize;
            assert_eq!(
                json(&r1.per_flow[l]),
                json(&r0.per_flow[pos]),
                "flow {l} must reproduce position {pos}"
            );
        }
        // Non-vacuity: at this starved point the positions genuinely
        // differ (earlier declarations win policer ties), so the
        // permutation above is not an identity map.
        assert_ne!(json(&r0.per_flow[0]), json(&r0.per_flow[n as usize - 1]));
        // And the spec-level symmetry the runner keys on holds too.
        let a = dsv_scenario::canonicalize(&aggregate_spec(&cfg));
        let b = dsv_scenario::canonicalize(&aggregate_spec(&cfg.clone().with_rotation(1)));
        assert_eq!(a.json(), b.json());
        assert_ne!(
            aggregate_spec(&cfg).canonical_json(),
            aggregate_spec(&cfg.clone().with_rotation(1)).canonical_json(),
            "the raw specs differ; only the canonical forms coincide"
        );
    }

    #[test]
    fn canonical_ranks_bridge_rotations() {
        let n = 4u32;
        let cfg = AggregateConfig::new(
            ClipId2::Lost,
            1_000_000,
            n,
            EfProfile::new(5_600_000, DEPTH_3MTU),
        );
        let rot = cfg.clone().with_rotation(3);
        let rank0 = media_flow_ranks(&dsv_scenario::canonicalize(&aggregate_spec(&cfg)), n);
        let rank3 = media_flow_ranks(&dsv_scenario::canonicalize(&aggregate_spec(&rot)), n);
        // Rotation 0 declares labels in order: ranks are the identity.
        assert_eq!(rank0, vec![0, 1, 2, 3]);
        // Rotation 3 declares label 3 first: its media flow ranks first.
        assert_eq!(rank3[3], 0);
        // Round trip: to-canonical then from-canonical is the identity.
        let out = AggregateOutcome {
            per_flow: (0..n)
                .map(|i| crate::experiment::RunOutcome {
                    rx_packets: i as u64,
                    ..Default::default()
                })
                .collect(),
        };
        let back = from_canonical_order(&to_canonical_order(&out, &rank3), &rank3);
        assert_eq!(
            serde_json::to_string(&back).unwrap(),
            serde_json::to_string(&out).unwrap()
        );
    }

    #[test]
    fn aggregate_runs_are_deterministic() {
        let cfg = AggregateConfig::new(
            ClipId2::Lost,
            1_000_000,
            2,
            EfProfile::new(2_300_000, DEPTH_2MTU),
        );
        let a = run_aggregate(&cfg);
        let b = run_aggregate(&cfg);
        assert_eq!(
            serde_json::to_string(&a).unwrap(),
            serde_json::to_string(&b).unwrap()
        );
    }
}
