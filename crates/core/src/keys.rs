//! Content-address keys shared by the result cache and the cluster
//! layer.
//!
//! A grid point's identity is one string: `{"spec": …, "scoring": …}`
//! over the **canonical** (symmetry-normal, see
//! [`dsv_scenario::canonicalize`]) JSON of its compiled scenario spec
//! plus the scoring parameters that shape the outcome but live outside
//! the topology. The persistent result cache addresses files by an
//! FNV-1a hash of that string, and the exact clustering mode partitions
//! a grid by the very same string — factored here so the two identities
//! cannot silently fork: if two points share a cache entry they are in
//! one cluster class, and vice versa.
//!
//! Keying on the canonical form means two specs that are mere
//! relabellings of each other (names, flow labels, rotated symmetric
//! pairs) hit one cache entry. That is only sound because cached
//! outcomes are stored in canonical flow order and transplanted back
//! through each requester's flow map — see `crate::runner`.

use std::path::{Path, PathBuf};

use serde::{Serialize, Value};

use dsv_scenario::{canonicalize, ScenarioSpec};

/// FNV-1a, 64-bit: tiny, dependency-free, and stable across platforms —
/// exactly what a content-addressed filename needs.
pub fn fnv1a64(bytes: &[u8]) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x100_0000_01b3);
    }
    h
}

/// The canonical address JSON: `{"spec": …, "scoring": …}`. Field order
/// is declaration order (the vendored serde emits object fields in the
/// order given), so the bytes are stable across runs and platforms.
pub fn cache_address(spec: Value, scoring: Value) -> String {
    serde_json::to_string(&Value::Object(vec![
        ("spec".to_string(), spec),
        ("scoring".to_string(), scoring),
    ]))
    .expect("cache address serializes")
}

/// The address of a grid point: the spec's **symmetry-normal form** plus
/// its scoring parameters. This is both the cache identity and the
/// exact-cluster identity.
pub fn canonical_address(spec: &ScenarioSpec, scoring: Value) -> String {
    cache_address(canonicalize(spec).spec.to_value(), scoring)
}

/// The content-addressed cache path for `(kind, address)`.
pub fn cache_path(dir: &Path, kind: &str, address: &str) -> PathBuf {
    let mut keyed = Vec::with_capacity(kind.len() + 1 + address.len());
    keyed.extend_from_slice(kind.as_bytes());
    keyed.push(0);
    keyed.extend_from_slice(address.as_bytes());
    dir.join(format!("{}-{:016x}.json", kind, fnv1a64(&keyed)))
}

#[cfg(test)]
mod tests {
    use super::*;
    use dsv_scenario::{AppSpec, LinkParams, LinkSpec, NodeSpec};
    use serde::Num;

    #[test]
    fn fnv_matches_reference_values() {
        // Published FNV-1a 64 test vectors.
        assert_eq!(fnv1a64(b""), 0xcbf2_9ce4_8422_2325);
        assert_eq!(fnv1a64(b"a"), 0xaf63_dc4c_8601_ec8c);
        assert_eq!(fnv1a64(b"foobar"), 0x85944171f73967e8);
    }

    #[test]
    fn address_bytes_are_pinned() {
        // The exact address string is load-bearing: cache files on disk
        // and cluster classes both key on it, so field order and number
        // formatting may never drift. This pins the full bytes of a
        // small address; if this test breaks, every cached entry is
        // orphaned and cluster identity has changed — that must be a
        // deliberate, documented decision.
        let mut spec = ScenarioSpec::new("pinned", 7);
        spec.nodes.push(NodeSpec::host("sink", AppSpec::IdSink));
        spec.horizon_ns = Some(5_000_000_000);
        let scoring = Value::Object(vec![
            ("encoding_bps".to_string(), Value::Num(Num::U(1_500_000))),
            ("clip_fraction".to_string(), Value::Num(Num::F(0.88))),
            ("score_vs_best".to_string(), Value::Bool(false)),
        ]);
        let addr = canonical_address(&spec, scoring);
        assert_eq!(
            addr,
            concat!(
                r#"{"spec":{"name":"","seed":7,"nodes":[{"name":"n0","app":{"kind":"id_sink"}}],"#,
                r#""links":[],"conditioners":[],"bounds":[],"horizon_ns":5000000000},"#,
                r#""scoring":{"encoding_bps":1500000,"clip_fraction":0.88,"score_vs_best":false}}"#
            )
        );
    }

    #[test]
    fn float_formatting_is_shortest_round_trip() {
        // Rust's `Display` for f64 is shortest-round-trip; the address
        // relies on it so equal floats always print equal bytes.
        for (v, expect) in [
            (0.5f64, "0.5"),
            (0.88, "0.88"),
            (1.0, "1.0"),
            (0.1 + 0.2, "0.30000000000000004"),
        ] {
            let s = serde_json::to_string(&Value::Num(Num::F(v))).unwrap();
            assert_eq!(s, expect);
        }
    }

    #[test]
    fn relabelled_specs_share_an_address_and_a_cache_path() {
        let mk = |node: &str, sink: &str| {
            let mut s = ScenarioSpec::new(node, 7);
            s.nodes.push(NodeSpec::host(sink, AppSpec::IdSink));
            s.nodes.push(NodeSpec::host(
                "tx",
                AppSpec::Pump {
                    dst: sink.to_string(),
                    flow: 1,
                    count: 1,
                    size: 100,
                    gap_ns: 1,
                },
            ));
            s.links
                .push(LinkSpec::simple("tx", sink, LinkParams::fast_ethernet()));
            s
        };
        let a = canonical_address(&mk("a", "sink"), Value::Null);
        let b = canonical_address(&mk("b", "rx"), Value::Null);
        assert_eq!(a, b);
        let dir = Path::new("/tmp");
        assert_eq!(cache_path(dir, "k", &a), cache_path(dir, "k", &b));
        assert_ne!(cache_path(dir, "k", &a), cache_path(dir, "other", &a));
    }
}
