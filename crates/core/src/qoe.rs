//! Estimator selection for run scoring: `DSV_QOE=full|proxy|sampled:<k>`.
//!
//! Every testbed scores a finished session through [`score_session`],
//! which dispatches on the process-wide [`QoeMode`]:
//!
//! * **`full`** (the default) — the per-frame VQM pipeline, byte-for-byte
//!   the scoring path the committed figures were generated with. The
//!   received feature stream is materialized and
//!   [`dsv_vqm::Vqm::score_streams`] runs exactly as before.
//! * **`proxy`** — the committed [`ProxyModel`] regression over the
//!   client's streaming [`FlowFeatures`]. No per-frame stream is ever
//!   materialized: scoring cost drops from O(frames) to O(1), which is
//!   the population-scale win.
//! * **`sampled:<k>`** — every flow is scored by the proxy, and every
//!   k-th flow (selected by a stable hash of its feature record, so the
//!   sample is deterministic and independent of scheduling) is *also*
//!   scored by full VQM. The absolute proxy errors observed this way
//!   accumulate in process-global counters and yield a **live error
//!   bound** ([`QoeSnapshot::live_mae`]) that must stay consistent with
//!   the committed [`PROXY_MAE_BOUND`].
//!
//! The mode changes outcome *values* (proxy scores are estimates), so any
//! non-default mode is stamped into the cache/cluster identity by
//! [`stamp_scoring`] — full-mode addresses stay byte-identical to every
//! address ever written, and proxy results can never be served to a
//! full-mode run or vice versa.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Mutex, MutexGuard};

use dsv_media::features::FeatureFrame;
use dsv_net::features::FlowFeatures;
use dsv_stream::client::ClientReport;
use dsv_vqm::qoe::{FullVqm, ProxyModel, QoeEstimate, QoeEstimator, QoeInputs};
use serde::Value;

use crate::experiment::received_features_from;
use crate::keys::fnv1a64;

pub use dsv_vqm::qoe::PROXY_MAE_BOUND;

/// Which estimator scores runs (see the module docs).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum QoeMode {
    /// Full per-frame VQM — the default and the committed-figure path.
    Full,
    /// The committed linear proxy over flow features.
    Proxy,
    /// Proxy everywhere, full VQM on every k-th flow for a live bound.
    Sampled(u64),
}

impl QoeMode {
    /// The `DSV_QOE` spelling of the mode (also the cache-key stamp).
    pub fn label(&self) -> String {
        match self {
            QoeMode::Full => "full".to_string(),
            QoeMode::Proxy => "proxy".to_string(),
            QoeMode::Sampled(k) => format!("sampled:{k}"),
        }
    }
}

/// Parse a `DSV_QOE` value; unrecognized input warns on stderr and falls
/// back to the full default rather than silently changing semantics.
fn qoe_mode_from_str(v: &str) -> QoeMode {
    match v {
        "" | "full" | "1" => QoeMode::Full,
        "proxy" => QoeMode::Proxy,
        _ => {
            if let Some(k) = v.strip_prefix("sampled:") {
                match k.trim().parse::<u64>() {
                    Ok(k) if k >= 1 => return QoeMode::Sampled(k),
                    _ => eprintln!(
                        "[runner] DSV_QOE={v:?}: sample period must be an integer >= 1; \
                         using full VQM"
                    ),
                }
            } else {
                eprintln!(
                    "[runner] DSV_QOE={v:?} not recognized \
                     (expected full, proxy or sampled:<k>); using full VQM"
                );
            }
            QoeMode::Full
        }
    }
}

/// The active mode: a live test override if one is in scope, else
/// `DSV_QOE` from the environment, else [`QoeMode::Full`].
pub fn mode() -> QoeMode {
    match MODE_OVERRIDE.lock().expect("qoe override poisoned").1 {
        Some(forced) => forced,
        None => std::env::var("DSV_QOE").map_or(QoeMode::Full, |v| qoe_mode_from_str(v.trim())),
    }
}

/// (guard-holder marker, forced value). The marker mutex serializes test
/// scopes; the value rides in the same lock so reads are consistent.
#[allow(clippy::type_complexity)]
static MODE_OVERRIDE: Mutex<((), Option<QoeMode>)> = Mutex::new(((), None));
static OVERRIDE_SCOPE: Mutex<()> = Mutex::new(());

/// RAII scope that forces the QoE mode process-wide. Scopes are
/// serialized by a global lock, so concurrent tests cannot interleave
/// overrides. Intended for tests and the macro-bench.
pub struct QoeScope {
    _scope: MutexGuard<'static, ()>,
}

impl Drop for QoeScope {
    fn drop(&mut self) {
        MODE_OVERRIDE.lock().expect("qoe override poisoned").1 = None;
    }
}

/// Force a QoE mode until the returned guard drops.
pub fn force_mode(m: QoeMode) -> QoeScope {
    let scope = OVERRIDE_SCOPE
        .lock()
        .unwrap_or_else(|poisoned| poisoned.into_inner());
    MODE_OVERRIDE.lock().expect("qoe override poisoned").1 = Some(m);
    QoeScope { _scope: scope }
}

// Process-global scoring counters (same always-on shape as
// `crate::profile`): how many sessions each estimator scored, plus the
// sampled-mode error accumulators in fixed-point micro-quality units
// (atomics hold integers; 1 count = 1e-6 quality).
static FULL_SCORED: AtomicU64 = AtomicU64::new(0);
static PROXY_SCORED: AtomicU64 = AtomicU64::new(0);
static SAMPLED_CHECKED: AtomicU64 = AtomicU64::new(0);
static SAMPLED_ERRS: AtomicU64 = AtomicU64::new(0);
static SAMPLED_ERR_SUM_MICRO: AtomicU64 = AtomicU64::new(0);
static SAMPLED_ERR_MAX_MICRO: AtomicU64 = AtomicU64::new(0);

/// A point-in-time copy of the QoE scoring counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct QoeSnapshot {
    /// Sessions whose reported score came from full VQM.
    pub full_scored: u64,
    /// Sessions whose reported score came from the proxy.
    pub proxy_scored: u64,
    /// Proxy-scored sessions that were *also* full-VQM checked
    /// (`sampled:<k>` mode).
    pub sampled_checked: u64,
    /// Individual |proxy − full| comparisons accumulated (a checked
    /// session contributes one per reference it was scored against).
    pub sampled_errs: u64,
    /// Sum of absolute proxy errors, micro-quality units.
    pub err_sum_micro: u64,
    /// Largest absolute proxy error seen, micro-quality units.
    pub err_max_micro: u64,
}

impl QoeSnapshot {
    /// Counter totals since `other` (for bracketing a batch). The error
    /// maximum is a high-water mark, not a sum: the delta of a batch is
    /// simply the current peak.
    pub fn since(&self, other: &QoeSnapshot) -> QoeSnapshot {
        QoeSnapshot {
            full_scored: self.full_scored.saturating_sub(other.full_scored),
            proxy_scored: self.proxy_scored.saturating_sub(other.proxy_scored),
            sampled_checked: self.sampled_checked.saturating_sub(other.sampled_checked),
            sampled_errs: self.sampled_errs.saturating_sub(other.sampled_errs),
            err_sum_micro: self.err_sum_micro.saturating_sub(other.err_sum_micro),
            err_max_micro: self.err_max_micro,
        }
    }

    /// The live mean absolute proxy error measured by sampled checks,
    /// `None` until at least one comparison has run.
    pub fn live_mae(&self) -> Option<f64> {
        if self.sampled_errs == 0 {
            None
        } else {
            Some(self.err_sum_micro as f64 / 1e6 / self.sampled_errs as f64)
        }
    }

    /// The largest absolute proxy error measured by sampled checks.
    pub fn live_max_err(&self) -> f64 {
        self.err_max_micro as f64 / 1e6
    }
}

/// Copy the current totals.
pub fn snapshot() -> QoeSnapshot {
    QoeSnapshot {
        full_scored: FULL_SCORED.load(Ordering::Relaxed),
        proxy_scored: PROXY_SCORED.load(Ordering::Relaxed),
        sampled_checked: SAMPLED_CHECKED.load(Ordering::Relaxed),
        sampled_errs: SAMPLED_ERRS.load(Ordering::Relaxed),
        err_sum_micro: SAMPLED_ERR_SUM_MICRO.load(Ordering::Relaxed),
        err_max_micro: SAMPLED_ERR_MAX_MICRO.load(Ordering::Relaxed),
    }
}

/// Zero all totals (bench bracketing).
pub fn reset() {
    FULL_SCORED.store(0, Ordering::Relaxed);
    PROXY_SCORED.store(0, Ordering::Relaxed);
    SAMPLED_CHECKED.store(0, Ordering::Relaxed);
    SAMPLED_ERRS.store(0, Ordering::Relaxed);
    SAMPLED_ERR_SUM_MICRO.store(0, Ordering::Relaxed);
    SAMPLED_ERR_MAX_MICRO.store(0, Ordering::Relaxed);
}

fn record_err(abs_err: f64) {
    let micro = (abs_err.clamp(0.0, 1e6) * 1e6).round() as u64;
    SAMPLED_ERRS.fetch_add(1, Ordering::Relaxed);
    SAMPLED_ERR_SUM_MICRO.fetch_add(micro, Ordering::Relaxed);
    SAMPLED_ERR_MAX_MICRO.fetch_max(micro, Ordering::Relaxed);
}

/// Whether the stable per-flow hash selects this feature record for a
/// full-VQM check at sample period `k`. Keying on the canonical feature
/// bytes (not an arrival index) keeps the sample identical across thread
/// schedules, queue backends and shard counts.
pub fn sampled_selects(features: &FlowFeatures, k: u64) -> bool {
    k == 1 || fnv1a64(features.canonical_bytes().as_bytes()) % k == 0
}

/// Append the active QoE mode to a scoring identity **iff it is not the
/// default**. Full mode leaves the value untouched, so every address the
/// cache has ever written stays byte-identical; proxy/sampled runs get
/// their own cache entries and cluster classes.
pub fn stamp_scoring(scoring: Value) -> Value {
    let m = mode();
    if m == QoeMode::Full {
        return scoring;
    }
    match scoring {
        Value::Object(mut fields) => {
            fields.push(("qoe".to_string(), Value::Str(m.label())));
            Value::Object(fields)
        }
        other => Value::Object(vec![
            ("scoring".to_string(), other),
            ("qoe".to_string(), Value::Str(m.label())),
        ]),
    }
}

/// Score one finished session under the active [`mode`].
///
/// In full mode this is exactly the legacy
/// [`crate::experiment::score_run_shared`] computation; in proxy mode the
/// received stream is never materialized; in sampled mode the k-th-flow
/// full check feeds the live error bound and the *proxy* estimate is
/// still what the outcome reports (all flows in a sampled run are scored
/// by one estimator, so grids stay internally comparable).
pub fn score_session(
    source: &[FeatureFrame],
    reference: &[FeatureFrame],
    report: &ClientReport,
    best_reference: Option<&[FeatureFrame]>,
) -> QoeEstimate {
    match mode() {
        QoeMode::Full => {
            FULL_SCORED.fetch_add(1, Ordering::Relaxed);
            let received = received_features_from(source, report);
            FullVqm::default().estimate(&QoeInputs {
                reference,
                best_reference,
                received: Some(&received),
                features: &report.features,
            })
        }
        QoeMode::Proxy => {
            PROXY_SCORED.fetch_add(1, Ordering::Relaxed);
            ProxyModel::committed().estimate(&QoeInputs {
                reference,
                best_reference,
                received: None,
                features: &report.features,
            })
        }
        QoeMode::Sampled(k) => {
            PROXY_SCORED.fetch_add(1, Ordering::Relaxed);
            let proxy = ProxyModel::committed().estimate(&QoeInputs {
                reference,
                best_reference,
                received: None,
                features: &report.features,
            });
            if sampled_selects(&report.features, k) {
                SAMPLED_CHECKED.fetch_add(1, Ordering::Relaxed);
                let received = received_features_from(source, report);
                let full = FullVqm::default().estimate(&QoeInputs {
                    reference,
                    best_reference,
                    received: Some(&received),
                    features: &report.features,
                });
                record_err((proxy.quality - full.quality).abs());
                if let (Some(p), Some(f)) = (proxy.quality_vs_best, full.quality_vs_best) {
                    record_err((p - f).abs());
                }
            }
            proxy
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dsv_stream::playback::PlaybackResult;

    fn tiny_report(frames: usize) -> ClientReport {
        // A loss-free toy session: every slot displays its own frame.
        ClientReport {
            received: vec![true; frames],
            decodable: vec![true; frames],
            arrival: vec![Some(dsv_sim::SimTime::ZERO); frames],
            fidelity: vec![1.0; frames],
            playback: PlaybackResult {
                displayed: (0..frames as u32).collect(),
                start: dsv_sim::SimTime::ZERO,
                repeats: 0,
                longest_freeze: 0,
                total_failure: false,
            },
            packets_received: frames as u64,
            bytes_received: 1000 * frames as u64,
            features: FlowFeatures::default(),
        }
    }

    #[test]
    fn mode_parses_all_spellings() {
        assert_eq!(qoe_mode_from_str(""), QoeMode::Full);
        assert_eq!(qoe_mode_from_str("full"), QoeMode::Full);
        assert_eq!(qoe_mode_from_str("proxy"), QoeMode::Proxy);
        assert_eq!(qoe_mode_from_str("sampled:4"), QoeMode::Sampled(4));
        assert_eq!(qoe_mode_from_str("sampled:0"), QoeMode::Full);
        assert_eq!(qoe_mode_from_str("nonsense"), QoeMode::Full);
        assert_eq!(QoeMode::Sampled(7).label(), "sampled:7");
    }

    #[test]
    fn force_mode_overrides_and_resets() {
        {
            let _g = force_mode(QoeMode::Proxy);
            assert_eq!(mode(), QoeMode::Proxy);
        }
        assert_eq!(mode(), QoeMode::Full);
    }

    #[test]
    fn full_mode_matches_legacy_scoring_exactly() {
        use crate::experiment::score_run_shared;
        let _g = force_mode(QoeMode::Full);
        let src = dsv_media::scene::ClipId::Talk.model().source_features();
        let report = tiny_report(src.len());
        let (same, vs_best) = score_run_shared(&src, &src, &report, Some(&src));
        let est = score_session(&src, &src, &report, Some(&src));
        assert_eq!(est.quality, same.overall);
        assert_eq!(est.quality_vs_best, vs_best.map(|v| v.overall));
        assert_eq!(est.failed_segments, same.failed_segments);
    }

    #[test]
    fn proxy_mode_never_materializes_and_counts() {
        let _g = force_mode(QoeMode::Proxy);
        let before = snapshot();
        let src = dsv_media::scene::ClipId::Talk.model().source_features();
        let mut report = tiny_report(src.len());
        report.features.target_bps = 1_000_000;
        let est = score_session(&src, &src, &report, None);
        assert!(est.quality.is_finite());
        assert_eq!(est.quality_vs_best, None);
        assert_eq!(est.failed_segments, 0);
        let d = snapshot().since(&before);
        assert_eq!(d.proxy_scored, 1);
        assert_eq!(d.full_scored, 0);
    }

    #[test]
    fn sampled_every_flow_checks_and_bounds_error() {
        let _g = force_mode(QoeMode::Sampled(1));
        let before = snapshot();
        let src = dsv_media::scene::ClipId::Talk.model().source_features();
        let report = tiny_report(src.len());
        let est = score_session(&src, &src, &report, Some(&src));
        let d = snapshot().since(&before);
        assert_eq!(d.proxy_scored, 1);
        assert_eq!(d.sampled_checked, 1);
        assert_eq!(d.sampled_errs, 2, "same + vs_best comparisons");
        let mae = d.live_mae().expect("checked");
        assert!(mae.is_finite() && mae >= 0.0);
        assert!(d.live_max_err() >= mae);
        // The reported score is the proxy's, not the checker's.
        let proxy = ProxyModel::committed().predict_same(&report.features);
        assert_eq!(est.quality, proxy);
    }

    #[test]
    fn sampled_selection_is_a_stable_function_of_features() {
        let f = FlowFeatures {
            packets: 731,
            bytes: 1_000_000,
            ..FlowFeatures::default()
        };
        let k = 3;
        let first = sampled_selects(&f, k);
        for _ in 0..5 {
            assert_eq!(sampled_selects(&f, k), first);
        }
        assert!(sampled_selects(&f, 1), "k=1 checks every flow");
        // Over a population of distinct records roughly 1/k are selected.
        let hits = (0..300u64)
            .filter(|&i| {
                let g = FlowFeatures {
                    packets: i,
                    bytes: i * 1201,
                    ..FlowFeatures::default()
                };
                sampled_selects(&g, k)
            })
            .count();
        assert!((50..=150).contains(&hits), "selected {hits}/300 at k=3");
    }

    #[test]
    fn stamp_scoring_leaves_full_mode_addresses_untouched() {
        let scoring = || {
            Value::Object(vec![(
                "encoding_bps".to_string(),
                Value::Num(serde::Num::U(1_500_000)),
            )])
        };
        {
            let _g = force_mode(QoeMode::Full);
            let stamped = stamp_scoring(scoring());
            assert_eq!(
                serde_json::to_string(&stamped).unwrap(),
                serde_json::to_string(&scoring()).unwrap(),
                "full mode must not perturb a single address byte"
            );
        }
        {
            let _g = force_mode(QoeMode::Sampled(5));
            let stamped = serde_json::to_string(&stamp_scoring(scoring())).unwrap();
            assert!(stamped.contains(r#""qoe":"sampled:5""#), "{stamped}");
        }
        {
            let _g = force_mode(QoeMode::Proxy);
            let stamped = serde_json::to_string(&stamp_scoring(Value::Null)).unwrap();
            assert!(stamped.contains(r#""qoe":"proxy""#), "{stamped}");
        }
    }
}
