//! Audit wiring for the experiment entry points.
//!
//! Each testbed run (`run_qbone`, `run_local`, `run_af`) calls [`arm`]
//! right after building its [`Simulation`] — registering the analytic
//! token-bucket bounds of its policers/shapers — and [`finish`] right
//! after the run, which closes the end-of-run conservation equations and
//! panics with the full violation list if any oracle fired.
//!
//! Both functions are unconditional no-ops when the `audit` feature is
//! compiled out, and cheap no-ops when `DSV_AUDIT` is not enabled, so the
//! entry points carry no `cfg` noise and the hot path no cost.

use dsv_net::network::Simulation;
use dsv_net::packet::{FlowId, NodeId};

/// One analytic admission bound: traffic of `flow` leaving `node` must
/// satisfy `admitted_bytes · 8 ≤ depth_bytes · 8 + rate_bps · t`.
pub type Bound = (NodeId, FlowId, u64, u32);

/// Arm the run's audit observer (if `DSV_AUDIT` is on) and register the
/// token-bucket conformance bounds this topology promises to respect.
#[cfg(feature = "audit")]
pub fn arm<P: 'static>(sim: &mut Simulation<P>, bounds: &[Bound]) {
    if !dsv_net::audit::runtime_enabled() {
        return;
    }
    let audit = sim.net.audit_mut();
    audit.enable();
    for &(node, flow, rate_bps, depth_bytes) in bounds {
        audit.register_conformance_bound(node, flow, rate_bps, depth_bytes);
    }
}

/// No-op: audits compiled out.
#[cfg(not(feature = "audit"))]
pub fn arm<P: 'static>(_sim: &mut Simulation<P>, _bounds: &[Bound]) {}

/// Close the audit's conservation equations and panic (with the recorded
/// violation list) if any invariant was broken during the run.
#[cfg(feature = "audit")]
pub fn finish<P: 'static>(sim: &mut Simulation<P>, label: &str) {
    if !sim.net.audit().enabled() {
        return;
    }
    sim.net.audit_finish();
    sim.net.audit().report().assert_clean(label);
}

/// No-op: audits compiled out.
#[cfg(not(feature = "audit"))]
pub fn finish<P: 'static>(_sim: &mut Simulation<P>, _label: &str) {}
