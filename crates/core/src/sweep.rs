//! Parameter sweeps — the experiment grids behind the paper's figures.
//!
//! Every QBone figure (7–12) is a sweep of token rate for two bucket
//! depths at a fixed clip/encoding; the local-testbed figures sweep the
//! same parameters for the WMT server configurations. These helpers run
//! those grids and collect `(rate, depth) → outcome` points.

use serde::{Deserialize, Serialize};

use crate::experiment::RunOutcome;
use crate::local::LocalConfig;
use crate::qbone::QboneConfig;
use crate::runner::Runner;

/// One grid point.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct SweepPoint {
    /// Token rate, bps.
    pub token_rate_bps: u64,
    /// Bucket depth, bytes.
    pub bucket_depth_bytes: u32,
    /// What happened.
    pub outcome: RunOutcome,
}

/// A full sweep with its provenance label.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct SweepResult {
    /// Human-readable description ("QBone / Lost / 1.7 Mbps").
    pub label: String,
    /// All points, in (depth, rate) iteration order.
    pub points: Vec<SweepPoint>,
}

impl SweepResult {
    /// The curve for one bucket depth, ordered by token rate:
    /// `(rate, quality, frame_loss)`.
    pub fn curve(&self, depth: u32) -> Vec<(u64, f64, f64)> {
        let mut pts: Vec<(u64, f64, f64)> = self
            .points
            .iter()
            .filter(|p| p.bucket_depth_bytes == depth)
            .map(|p| (p.token_rate_bps, p.outcome.quality, p.outcome.frame_loss))
            .collect();
        pts.sort_by_key(|p| p.0);
        pts
    }

    /// Depths present in the sweep.
    pub fn depths(&self) -> Vec<u32> {
        let mut d: Vec<u32> = self.points.iter().map(|p| p.bucket_depth_bytes).collect();
        d.sort_unstable();
        d.dedup();
        d
    }
}

/// A standard token-rate grid for an encoding: from 0.85× the nominal rate
/// up to 1.45×, concentrated where the paper sampled (around and above
/// the average rate). Grid values round to the nearest bps, so the
/// endpoints are exactly `0.85×` and `1.45×` the nominal rate (truncation
/// used to shave up to 1 bps off every point, including both endpoints).
pub fn default_rate_grid(nominal_bps: u64, steps: usize) -> Vec<u64> {
    assert!(steps >= 2);
    let lo = 0.85 * nominal_bps as f64;
    let hi = 1.45 * nominal_bps as f64;
    (0..steps)
        .map(|i| (lo + (hi - lo) * i as f64 / (steps - 1) as f64).round() as u64)
        .collect()
}

/// Run a QBone figure's grid: `rates × depths` for one clip/encoding.
///
/// Executes through [`Runner::from_env`]: points fan out across worker
/// threads and hit the persistent result cache (see [`crate::runner`]);
/// the result is identical to a serial, uncached run.
pub fn qbone_sweep(
    base: &QboneConfig,
    rates: &[u64],
    depths: &[u32],
    label: impl Into<String>,
) -> SweepResult {
    Runner::from_env().qbone_sweep(base, rates, depths, label)
}

/// Run a local-testbed grid. Same execution model as [`qbone_sweep`].
pub fn local_sweep(
    base: &LocalConfig,
    rates: &[u64],
    depths: &[u32],
    label: impl Into<String>,
) -> SweepResult {
    Runner::from_env().local_sweep(base, rates, depths, label)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::experiment::{EfProfile, DEPTH_2MTU, DEPTH_3MTU};
    use crate::qbone::ClipId2;

    #[test]
    fn grid_spans_the_paper_range() {
        let g = default_rate_grid(1_700_000, 9);
        assert_eq!(g.len(), 9);
        assert!(g[0] < 1_700_000, "starts below the encoding rate");
        assert!(*g.last().unwrap() > 2_047_496, "ends above the max rate");
        assert!(g.windows(2).all(|w| w[0] < w[1]));
    }

    #[test]
    fn grid_endpoints_are_exact() {
        // 0.85 × 1.7M and 1.45 × 1.7M are whole bps values; rounding (not
        // truncation) must reproduce them exactly at both ends.
        let g = default_rate_grid(1_700_000, 9);
        assert_eq!(g[0], 1_445_000);
        assert_eq!(*g.last().unwrap(), 2_465_000);
        // A nominal rate that makes the endpoints non-integral rounds to
        // the nearest bps instead of truncating toward zero.
        let g = default_rate_grid(999_999, 2);
        assert_eq!(g[0], (0.85f64 * 999_999.0).round() as u64);
        assert_eq!(g[1], (1.45f64 * 999_999.0).round() as u64);
    }

    #[test]
    fn sweep_collects_all_points_and_curves() {
        // Tiny 2×2 grid to keep the test fast.
        let base = QboneConfig::new(
            ClipId2::Lost,
            1_000_000,
            EfProfile::new(1_000_000, DEPTH_2MTU),
        );
        let rates = vec![900_000u64, 1_400_000];
        let res = qbone_sweep(&base, &rates, &[DEPTH_2MTU, DEPTH_3MTU], "test");
        assert_eq!(res.points.len(), 4);
        assert_eq!(res.depths(), vec![DEPTH_2MTU, DEPTH_3MTU]);
        let c = res.curve(DEPTH_2MTU);
        assert_eq!(c.len(), 2);
        assert!(c[0].0 < c[1].0);
        // Starved should be worse than generous.
        assert!(c[0].1 > c[1].1, "curve {:?}", c);
    }
}
