//! Parallel, cached, symmetry-clustered execution of experiment grids.
//!
//! Every figure in the paper's evaluation is a grid of independent
//! experiment runs (token rate × bucket depth, or a list of ablation
//! configurations). Each run is a *pure function of its configuration*:
//! all randomness is drawn from seeds stored in the config, so a point's
//! [`RunOutcome`] does not depend on which thread computed it or in which
//! order. The [`Runner`] exploits that three ways:
//!
//! * **Parallelism** — grid points fan out over a scoped thread pool
//!   (work-stealing by atomic index). Results land in per-point slots, so
//!   the output order is the input order and a parallel run is
//!   bit-identical to a serial one.
//! * **Caching** — each point is content-addressed by an FNV-1a hash of
//!   its kind tag and the **canonical** (symmetry-normal, see
//!   [`dsv_scenario::canonicalize`]) JSON of its compiled scenario spec
//!   plus scoring parameters (`Job::cache_json`, built on
//!   [`crate::keys`]), so any topology or profile change changes the
//!   address. Outcomes persist under `results/cache/`, so re-running
//!   `all_figures` (or any figure binary) skips every already-computed
//!   point. A config change — different rate, depth, seed, clip,
//!   horizon — changes the hash and misses the cache; the stored config
//!   is compared byte-for-byte on load to guard against hash collisions
//!   and stale schema.
//! * **Clustering** — before simulating, the grid is partitioned into
//!   equivalence classes by the very same canonical address. In `exact`
//!   mode (the default) only one representative per class is simulated
//!   and every other member's outcome is transplanted from it — sound
//!   because equal canonical forms mean the specs are relabellings of
//!   one another and the engine's dynamics are label-blind (validated by
//!   `aggregate::tests::rotated_declarations_permute_per_flow_outcomes_exactly`).
//!   Aggregate outcomes transplant through per-flow canonical-rank maps
//!   ([`crate::aggregate::media_flow_ranks`]); single-stream outcomes are
//!   flow-agnostic and transplant by clone. In `approx:<eps>` mode,
//!   representatives that differ *only* in their single policer token
//!   rate are additionally bisected: if the outcomes at two bracketing
//!   rates agree within `eps` on every headline metric, the points
//!   between them inherit the nearest anchor's outcome, with the
//!   recorded [`ErrorBound`] (anchor spread plus a wobble allowance)
//!   riding along in the point's [`PointSource`].
//!
//! The cache deliberately does **not** hash the simulator code itself:
//! after changing simulation behaviour, delete `results/cache/` (or run
//! with `DSV_CACHE=0`) to force cold recomputation.
//!
//! Environment knobs (read by [`Runner::from_env`]):
//!
//! | variable       | effect                                              |
//! |----------------|-----------------------------------------------------|
//! | `DSV_THREADS`  | worker count (`1` = serial; default: all cores; `0`/garbage warn on stderr and use the default) |
//! | `DSV_CACHE`    | `0`/`off` disables; a path overrides the cache dir  |
//! | `DSV_PROGRESS` | `1`/`0` forces the progress meter on/off (default: on when stderr is a TTY) |
//! | `DSV_CLUSTER`  | `off` disables clustering; `exact` (default) merges provably symmetric points; `approx:<eps>` additionally interpolates across rate neighbours within `eps` |

use std::collections::HashMap;
use std::fs;
use std::io::{IsTerminal, Write};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::OnceLock;
use std::time::Instant;

use serde::{Deserialize, Serialize, Value};

use crate::af::{af_spec, run_af, AfConfig};
use crate::af_tcp::{af_tcp_spec, run_af_tcp, AfTcpConfig};
use crate::aggregate::{
    aggregate_spec, from_canonical_order, media_flow_ranks, run_aggregate, to_canonical_order,
    AggregateConfig, AggregateOutcome,
};
use crate::experiment::{EfProfile, RunOutcome};
use crate::flows::{flows_from_canonical_order, flows_to_canonical_order, FlowsOutcome};
use crate::keys;
use crate::local::{local_spec, run_local, LocalConfig};
use crate::profile;
use crate::qbone::{qbone_spec, run_qbone, QboneConfig};
use crate::smoothing::{run_smoothing, smoothing_spec, SmoothingConfig};
use crate::sweep::{SweepPoint, SweepResult};
use dsv_scenario::{canonicalize, ActionSpec, ScenarioSpec};

/// One unit of grid work: a fully specified experiment configuration.
#[derive(Debug, Clone)]
pub enum Job {
    /// A QBone wide-area run.
    Qbone(QboneConfig),
    /// A local Frame-Relay testbed run.
    Local(LocalConfig),
    /// An AF PHB run.
    Af(AfConfig),
}

impl Job {
    /// Short tag naming the testbed; part of the cache key.
    pub fn kind(&self) -> &'static str {
        match self {
            Job::Qbone(_) => "qbone",
            Job::Local(_) => "local",
            Job::Af(_) => "af",
        }
    }

    /// Canonical JSON of the configuration (the golden checksums hash
    /// this; see [`crate::golden`]).
    pub(crate) fn config_json(&self) -> String {
        match self {
            Job::Qbone(cfg) => serde_json::to_string(cfg),
            Job::Local(cfg) => serde_json::to_string(cfg),
            Job::Af(cfg) => serde_json::to_string(cfg),
        }
        .expect("config serializes")
    }

    /// The job's compiled scenario spec and the scoring parameters that
    /// shape the outcome but live outside the topology — together, the
    /// full semantic identity of the point.
    pub(crate) fn spec_scoring(&self) -> (ScenarioSpec, Value) {
        match self {
            Job::Qbone(cfg) => (
                qbone_spec(cfg),
                Value::Object(vec![
                    ("clip".to_string(), cfg.clip.to_value()),
                    ("encoding_bps".to_string(), cfg.encoding_bps.to_value()),
                    ("score_vs_best".to_string(), cfg.score_vs_best.to_value()),
                ]),
            ),
            Job::Local(cfg) => (
                local_spec(cfg),
                Value::Object(vec![
                    ("clip".to_string(), cfg.clip.to_value()),
                    ("cap_bps".to_string(), cfg.cap_bps.to_value()),
                ]),
            ),
            Job::Af(cfg) => (
                af_spec(cfg),
                Value::Object(vec![
                    ("clip".to_string(), cfg.clip.to_value()),
                    ("encoding_bps".to_string(), cfg.encoding_bps.to_value()),
                ]),
            ),
        }
    }

    /// The content the result cache addresses: the **symmetry-normal**
    /// form of the job's compiled scenario spec plus its scoring
    /// parameters (see [`crate::keys`]). Keying the cache off the
    /// canonical spec means two configs that lower to relabellings of
    /// one simulation *and* the same scoring share an entry, and any
    /// topology change — even one the config struct cannot express —
    /// changes the address. This string is also the exact-cluster class
    /// identity, by construction: one module computes both.
    pub(crate) fn cache_json(&self) -> String {
        let (spec, scoring) = self.spec_scoring();
        // A non-default `DSV_QOE` estimator changes outcome values, so it
        // is part of the identity; full mode stamps nothing, keeping
        // every historical address byte-identical.
        keys::canonical_address(&spec, crate::qoe::stamp_scoring(scoring))
    }

    /// Run the experiment this job describes.
    fn execute(&self) -> RunOutcome {
        match self {
            Job::Qbone(cfg) => run_qbone(cfg),
            Job::Local(cfg) => run_local(cfg),
            Job::Af(cfg) => run_af(cfg),
        }
    }
}

/// One unit of transport-level grid work: an experiment reporting
/// per-flow [`FlowsOutcome`]s instead of a VQM-scored [`RunOutcome`].
/// Runs through the same thread pool, persistent cache and exact-cluster
/// pre-pass as [`Job`] grids.
#[derive(Debug, Clone)]
pub enum FlowJob {
    /// A TCP-smoothing run on the QBone path (one media flow).
    Smoothing(SmoothingConfig),
    /// An AF-TCP rate-guarantee run (N bulk flows).
    AfTcp(AfTcpConfig),
}

impl FlowJob {
    /// Short tag naming the experiment; part of the cache key.
    pub fn kind(&self) -> &'static str {
        match self {
            FlowJob::Smoothing(_) => "smoothing",
            FlowJob::AfTcp(_) => "af_tcp",
        }
    }

    /// Canonical JSON of the configuration (the golden checksums hash
    /// this; see [`crate::golden::golden_flows`]).
    pub(crate) fn config_json(&self) -> String {
        match self {
            FlowJob::Smoothing(cfg) => serde_json::to_string(cfg),
            FlowJob::AfTcp(cfg) => serde_json::to_string(cfg),
        }
        .expect("config serializes")
    }

    /// The job's compiled scenario spec plus the scoring parameters
    /// living outside the topology (see [`Job::spec_scoring`]).
    pub(crate) fn spec_scoring(&self) -> (ScenarioSpec, Value) {
        match self {
            FlowJob::Smoothing(cfg) => (
                smoothing_spec(cfg),
                Value::Object(vec![
                    ("clip".to_string(), cfg.clip.to_value()),
                    ("encoding_bps".to_string(), cfg.encoding_bps.to_value()),
                ]),
            ),
            FlowJob::AfTcp(cfg) => (af_tcp_spec(cfg), Value::Object(Vec::new())),
        }
    }

    /// How many per-flow outcomes this job reports.
    fn flows(&self) -> u32 {
        match self {
            FlowJob::Smoothing(_) => 1,
            FlowJob::AfTcp(cfg) => cfg.flows(),
        }
    }

    /// Run the experiment this job describes.
    fn execute(&self) -> FlowsOutcome {
        match self {
            FlowJob::Smoothing(cfg) => run_smoothing(cfg),
            FlowJob::AfTcp(cfg) => run_af_tcp(cfg),
        }
    }
}

/// How the cluster layer treats a grid before simulating it.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum ClusterMode {
    /// Simulate every point; the determinism reference.
    Off,
    /// Partition the grid by canonical spec identity and simulate one
    /// representative per class; members get transplanted outcomes.
    /// Byte-identical to [`ClusterMode::Off`] wherever symmetry is
    /// provable — which is the only time points merge.
    Exact,
    /// [`ClusterMode::Exact`], plus: representatives differing only in
    /// their single policer token rate are bisected, and points whose
    /// bracketing anchors agree within the tolerance on every headline
    /// metric inherit the nearest anchor's outcome with a recorded
    /// [`ErrorBound`]. Trades exactness for fewer simulations.
    Approx(f64),
}

/// Slack added to an interpolated point's error bound beyond the anchor
/// spread, covering the "mostly" in the sweeps' mostly-monotone loss
/// curves (see `crate::analysis::mostly_monotone_decreasing`): loss-like
/// metrics may wobble this far against the trend between anchors.
pub const WOBBLE_LOSS: f64 = 0.02;
/// [`WOBBLE_LOSS`]'s counterpart for VQM quality metrics, which ride on
/// top of loss and wobble a little harder.
pub const WOBBLE_QUALITY: f64 = 0.05;

/// Per-metric bound on how far an interpolated outcome may sit from the
/// ground truth a real simulation would produce: the spread between the
/// two bracketing anchors (truth lies between them when the segment is
/// monotone) plus the wobble allowance for non-monotone jitter.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ErrorBound {
    /// Bound on `quality`.
    pub quality: f64,
    /// Bound on `frame_loss`.
    pub frame_loss: f64,
    /// Bound on `packet_loss`.
    pub packet_loss: f64,
    /// Bound on `quality_vs_best`, when both anchors scored it.
    pub quality_vs_best: Option<f64>,
}

/// Where a grid point's outcome came from.
#[derive(Debug, Clone)]
pub enum PointSource {
    /// Simulated in this batch.
    Simulated,
    /// Loaded from the persistent result cache.
    Cached,
    /// Transplanted from the simulated representative of this point's
    /// exact symmetry class (index into the batch's input order).
    Reused {
        /// Input index of the class representative.
        representative: usize,
    },
    /// Inherited from the nearest of two bracketing rate anchors that
    /// agreed within the approx tolerance.
    Interpolated {
        /// Input index of the lower-rate anchor.
        lo: usize,
        /// Input index of the higher-rate anchor.
        hi: usize,
        /// Recorded per-metric distance bound to ground truth.
        bound: ErrorBound,
    },
}

impl PointSource {
    /// True for outcomes an actual simulation (or its cached result)
    /// produced, false for transplants and interpolations.
    pub fn is_direct(&self) -> bool {
        matches!(self, PointSource::Simulated | PointSource::Cached)
    }
}

impl Serialize for PointSource {
    fn to_value(&self) -> Value {
        let kind = |k: &str| ("kind".to_string(), Value::Str(k.to_string()));
        match self {
            PointSource::Simulated => Value::Object(vec![kind("simulated")]),
            PointSource::Cached => Value::Object(vec![kind("cached")]),
            PointSource::Reused { representative } => Value::Object(vec![
                kind("reused"),
                ("representative".to_string(), representative.to_value()),
            ]),
            PointSource::Interpolated { lo, hi, bound } => Value::Object(vec![
                kind("interpolated"),
                ("lo".to_string(), lo.to_value()),
                ("hi".to_string(), hi.to_value()),
                ("bound".to_string(), bound.to_value()),
            ]),
        }
    }
}

/// One grid point's outcome plus its provenance.
#[derive(Debug, Clone)]
pub struct ClusterPoint<O> {
    /// The outcome, whatever its source.
    pub outcome: O,
    /// Where it came from.
    pub source: PointSource,
}

/// One persisted cache record. The address JSON rides along so a load
/// can verify it addressed the right content (collision/staleness
/// guard).
#[derive(Debug, Clone, Serialize, Deserialize)]
struct CacheEntry {
    kind: String,
    config: String,
    outcome: RunOutcome,
}

/// A persisted aggregate-run cache record (same guard discipline as
/// [`CacheEntry`], different outcome shape). The per-flow outcomes are
/// stored in **canonical flow order** so any config in the entry's
/// symmetry class can load it and transplant back through its own rank
/// map.
#[derive(Debug, Clone, Serialize, Deserialize)]
struct AggregateCacheEntry {
    kind: String,
    config: String,
    outcome: AggregateOutcome,
}

/// A persisted transport-run cache record (same guard discipline as
/// [`AggregateCacheEntry`]; per-flow outcomes stored in canonical flow
/// order so any member of the symmetry class can load the entry).
#[derive(Debug, Clone, Serialize, Deserialize)]
struct FlowsCacheEntry {
    kind: String,
    config: String,
    outcome: FlowsOutcome,
}

/// Live progress across worker threads: points done, throughput, ETA and
/// aggregate drop counters, reported on stderr.
///
/// The throughput/ETA estimate counts **simulation slots**
/// (`sims_done / planned_sims`), not grid points: cluster-reused and
/// interpolated points land in microseconds, so folding them into the
/// rate would first overestimate the remaining time (reused points
/// pending at the simulated points' rate) and then whipsaw the rate
/// upward when they all land at once.
struct Progress {
    total: usize,
    planned_sims: usize,
    done: AtomicUsize,
    sims_done: AtomicUsize,
    cached: AtomicUsize,
    reused: AtomicUsize,
    interpolated: AtomicUsize,
    policer_drops: AtomicU64,
    queue_drops: AtomicU64,
    shaper_drops: AtomicU64,
    /// QoE counter totals when the batch started; the line shows the
    /// delta, so concurrent batches only ever over-attribute, never
    /// double-print.
    qoe_start: crate::qoe::QoeSnapshot,
    start: Instant,
    enabled: bool,
}

impl Progress {
    fn new(total: usize, planned_sims: usize, enabled: bool) -> Progress {
        Progress {
            total,
            planned_sims,
            done: AtomicUsize::new(0),
            sims_done: AtomicUsize::new(0),
            cached: AtomicUsize::new(0),
            reused: AtomicUsize::new(0),
            interpolated: AtomicUsize::new(0),
            policer_drops: AtomicU64::new(0),
            queue_drops: AtomicU64::new(0),
            shaper_drops: AtomicU64::new(0),
            qoe_start: crate::qoe::snapshot(),
            start: Instant::now(),
            enabled,
        }
    }

    fn add_drops(&self, drops: (u64, u64, u64)) {
        self.policer_drops.fetch_add(drops.0, Ordering::Relaxed);
        self.queue_drops.fetch_add(drops.1, Ordering::Relaxed);
        self.shaper_drops.fetch_add(drops.2, Ordering::Relaxed);
    }

    /// Record a directly-produced point (simulated, or served from the
    /// persistent cache) given its aggregate drop counters
    /// `(policer, queue, shaper)`.
    fn record_counts(&self, drops: (u64, u64, u64), cache_hit: bool) {
        let done = self.done.fetch_add(1, Ordering::Relaxed) + 1;
        self.sims_done.fetch_add(1, Ordering::Relaxed);
        if cache_hit {
            self.cached.fetch_add(1, Ordering::Relaxed);
        }
        self.add_drops(drops);
        if self.enabled {
            self.print(done, false);
        }
    }

    /// Record a point transplanted from its symmetry-class representative.
    fn record_reused(&self, drops: (u64, u64, u64)) {
        let done = self.done.fetch_add(1, Ordering::Relaxed) + 1;
        self.reused.fetch_add(1, Ordering::Relaxed);
        self.add_drops(drops);
        if self.enabled {
            self.print(done, false);
        }
    }

    /// Record a point inherited from a rate anchor in approx mode.
    fn record_interpolated(&self, drops: (u64, u64, u64)) {
        let done = self.done.fetch_add(1, Ordering::Relaxed) + 1;
        self.interpolated.fetch_add(1, Ordering::Relaxed);
        self.add_drops(drops);
        if self.enabled {
            self.print(done, false);
        }
    }

    fn print(&self, done: usize, final_line: bool) {
        let sims_done = self.sims_done.load(Ordering::Relaxed);
        let cached = self.cached.load(Ordering::Relaxed);
        let reused = self.reused.load(Ordering::Relaxed);
        let interpolated = self.interpolated.load(Ordering::Relaxed);
        let (rate, eta) = throughput_eta(
            sims_done,
            self.planned_sims,
            self.start.elapsed().as_secs_f64(),
        );
        let eta = match eta {
            Some(secs) => format!("{secs:.0}s"),
            None => "?".to_string(),
        };
        let qoe = qoe_progress_segment(&crate::qoe::snapshot().since(&self.qoe_start))
            .unwrap_or_default();
        let mut err = std::io::stderr().lock();
        let _ = write!(
            err,
            "\r[runner] {done}/{} points ({} simulated, {cached} cached, {reused} reused, \
             {interpolated} interpolated) | {rate:.2} sims/s | ETA {eta}{qoe} | \
             drops: policer {}, queue {}, shaper {}",
            self.total,
            sims_done.saturating_sub(cached),
            self.policer_drops.load(Ordering::Relaxed),
            self.queue_drops.load(Ordering::Relaxed),
            self.shaper_drops.load(Ordering::Relaxed),
        );
        if final_line {
            let _ = writeln!(err);
        }
        let _ = err.flush();
    }

    fn finish(&self) {
        if self.enabled && self.total > 0 {
            self.print(self.done.load(Ordering::Relaxed), true);
        }
    }
}

/// The estimator-mix segment of a progress line, from the batch's QoE
/// counter delta: how many flows the proxy scored, how many full VQM
/// scored, and how many proxy scores were sampled-checked (with the live
/// error bound once checks have landed). `None` — print nothing — when
/// every score came from full VQM, so the default mode's line is
/// byte-identical to what it always printed.
fn qoe_progress_segment(d: &crate::qoe::QoeSnapshot) -> Option<String> {
    if d.proxy_scored == 0 && d.sampled_checked == 0 {
        return None;
    }
    let mut seg = format!(
        " | qoe: {} proxy, {} full, {} checked",
        d.proxy_scored, d.full_scored, d.sampled_checked
    );
    if let Some(mae) = d.live_mae() {
        seg.push_str(&format!(" (live MAE {mae:.4})"));
    }
    Some(seg)
}

/// Throughput and remaining-time estimate for a progress line.
///
/// Callers pass **simulation** counts (`sims_done`, `planned_sims`), not
/// grid-point counts — see [`Progress`] — so cluster-reused points never
/// inflate the ETA. Returns `(sims_per_sec, Some(eta_secs))`; the ETA is
/// `None` until the first slot lands (with `done == 0` there is no rate
/// to extrapolate from, and `total / ε` would print astronomical
/// nonsense). An instantly-served grid (all cache hits, elapsed ≈ 0)
/// yields a huge but finite rate and a zero ETA, never a division by
/// zero or `NaN`.
fn throughput_eta(done: usize, total: usize, elapsed_secs: f64) -> (f64, Option<f64>) {
    if done == 0 {
        return (0.0, None);
    }
    let rate = done as f64 / elapsed_secs.max(1e-9);
    let eta = total.saturating_sub(done) as f64 / rate;
    (rate, Some(eta))
}

/// The grid-execution engine: fans [`Job`]s over threads, with an
/// optional persistent result cache and a symmetry-cluster pre-pass. See
/// the module docs for semantics.
#[derive(Debug, Clone)]
pub struct Runner {
    threads: usize,
    cache_dir: Option<PathBuf>,
    progress: bool,
    cluster: ClusterMode,
}

/// Default cache location: `results/cache/` at the repository root.
pub fn default_cache_dir() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../../results/cache")
}

impl Default for Runner {
    fn default() -> Runner {
        Runner {
            threads: std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(1),
            cache_dir: Some(default_cache_dir()),
            progress: std::io::stderr().is_terminal(),
            cluster: ClusterMode::Exact,
        }
    }
}

impl Runner {
    /// A runner configured from the environment (`DSV_THREADS`,
    /// `DSV_CACHE`, `DSV_PROGRESS`, `DSV_CLUSTER`); the defaults are all
    /// cores, the persistent cache, a progress meter when stderr is a
    /// TTY, and exact clustering.
    pub fn from_env() -> Runner {
        let mut r = Runner::default();
        r.threads = dsv_sim::env::count_from_env("DSV_THREADS", r.threads);
        if let Ok(v) = std::env::var("DSV_CACHE") {
            let v = v.trim();
            r.cache_dir = match v {
                "0" | "off" | "" => None,
                path => Some(PathBuf::from(path)),
            };
        }
        if let Ok(v) = std::env::var("DSV_PROGRESS") {
            r.progress = v.trim() != "0";
        }
        if let Ok(v) = std::env::var("DSV_CLUSTER") {
            r.cluster = cluster_mode_from_str(v.trim());
        }
        r
    }

    /// A single-threaded runner with no cache, no progress output and no
    /// clustering — the reference configuration for determinism
    /// comparisons (every point individually simulated).
    pub fn serial() -> Runner {
        Runner {
            threads: 1,
            cache_dir: None,
            progress: false,
            cluster: ClusterMode::Off,
        }
    }

    /// Set the worker-thread count (1 = serial execution).
    pub fn with_threads(mut self, threads: usize) -> Runner {
        self.threads = threads.max(1);
        self
    }

    /// Set the cache directory, or disable caching with `None`.
    pub fn with_cache(mut self, dir: Option<PathBuf>) -> Runner {
        self.cache_dir = dir;
        self
    }

    /// Force the progress meter on or off.
    pub fn with_progress(mut self, on: bool) -> Runner {
        self.progress = on;
        self
    }

    /// Set the cluster mode.
    pub fn with_cluster(mut self, mode: ClusterMode) -> Runner {
        self.cluster = mode;
        self
    }

    /// Run every job, in parallel, returning outcomes **in job order**.
    ///
    /// Outcomes are pure functions of each job's config (every RNG in a
    /// run is seeded from it), so the result is identical for any thread
    /// count — parallel output is byte-for-byte the serial output. Under
    /// exact clustering (the default) symmetric points share one
    /// simulation, which is byte-identical too; use
    /// [`Runner::run_clustered`] to also see each point's provenance.
    pub fn run(&self, jobs: &[Job]) -> Vec<RunOutcome> {
        self.run_clustered(jobs)
            .into_iter()
            .map(|p| p.outcome)
            .collect()
    }

    /// Run a batch of aggregate configurations, outcomes in input order,
    /// through the same thread pool, persistent cache and cluster
    /// pre-pass as [`run`].
    ///
    /// [`run`]: Runner::run
    pub fn run_aggregate_batch(&self, cfgs: &[AggregateConfig]) -> Vec<AggregateOutcome> {
        self.run_aggregate_clustered(cfgs)
            .into_iter()
            .map(|p| p.outcome)
            .collect()
    }

    /// [`Runner::run`] with provenance: each outcome carries whether it
    /// was simulated, cache-served, cluster-reused or interpolated.
    pub fn run_clustered(&self, jobs: &[Job]) -> Vec<ClusterPoint<RunOutcome>> {
        let counts = |o: &RunOutcome| (o.policer_drops, o.queue_drops, o.shaper_drops);
        match self.cluster {
            ClusterMode::Off => self.run_direct(jobs.len(), |i| self.run_one(&jobs[i]), counts),
            ClusterMode::Exact => self.run_jobs_merged(jobs, None),
            ClusterMode::Approx(eps) => self.run_jobs_merged(jobs, Some(eps)),
        }
    }

    /// [`Runner::run_aggregate_batch`] with provenance. Approx mode
    /// falls back to exact transplanting here: rate interpolation is
    /// only defined for the single-stream sweeps whose monotone rate
    /// response the metamorphic oracles certify.
    pub fn run_aggregate_clustered(
        &self,
        cfgs: &[AggregateConfig],
    ) -> Vec<ClusterPoint<AggregateOutcome>> {
        let counts = |o: &AggregateOutcome| {
            (
                o.per_flow.iter().map(|f| f.policer_drops).sum(),
                o.per_flow.iter().map(|f| f.queue_drops).sum(),
                o.per_flow.iter().map(|f| f.shaper_drops).sum(),
            )
        };
        let n = cfgs.len();
        if n == 0 {
            return Vec::new();
        }
        if self.cluster == ClusterMode::Off {
            return self.run_direct(n, |i| self.run_one_aggregate(&cfgs[i]), counts);
        }

        // Exact classes over the shared canonical address, with each
        // config's flow-rank map retained to bridge per-flow outcomes
        // between members of one class.
        let canons: Vec<_> = cfgs
            .iter()
            .map(|c| canonicalize(&aggregate_spec(c)))
            .collect();
        let ranks: Vec<Vec<usize>> = canons
            .iter()
            .zip(cfgs)
            .map(|(canon, cfg)| media_flow_ranks(canon, cfg.flows))
            .collect();
        let keys: Vec<String> = canons
            .iter()
            .zip(cfgs)
            .map(|(canon, cfg)| {
                format!(
                    "{}\0{}",
                    AGGREGATE_KIND,
                    keys::cache_address(canon.spec.to_value(), aggregate_scoring(cfg))
                )
            })
            .collect();
        let rep_of = first_seen(&keys);
        let reps: Vec<usize> = (0..n).filter(|&i| rep_of[i] == i).collect();
        let mut slot_of = vec![usize::MAX; n];
        for (slot, &i) in reps.iter().enumerate() {
            slot_of[i] = slot;
        }

        let stages_before = profile::snapshot();
        let progress = Progress::new(n, reps.len(), self.progress);
        let rep_results = self.fan_out(
            reps.len(),
            &progress,
            |slot| self.run_one_aggregate(&cfgs[reps[slot]]),
            counts,
        );
        let out = (0..n)
            .map(|i| {
                let rep = rep_of[i];
                let (outcome, hit) = &rep_results[slot_of[rep]];
                if rep == i {
                    ClusterPoint {
                        outcome: outcome.clone(),
                        source: if *hit {
                            PointSource::Cached
                        } else {
                            PointSource::Simulated
                        },
                    }
                } else {
                    // Same canonical form ⟹ same flow count; transplant
                    // the representative's per-flow outcomes through the
                    // two rank maps (rep label order → canonical order →
                    // member label order).
                    let transplanted =
                        from_canonical_order(&to_canonical_order(outcome, &ranks[rep]), &ranks[i]);
                    progress.record_reused(counts(&transplanted));
                    ClusterPoint {
                        outcome: transplanted,
                        source: PointSource::Reused {
                            representative: rep,
                        },
                    }
                }
            })
            .collect();
        progress.finish();
        profile::report(&format!("batch of {n}"), &stages_before);
        out
    }

    /// Run a batch of transport-level jobs, outcomes in input order,
    /// through the same thread pool, persistent cache and cluster
    /// pre-pass as [`run`].
    ///
    /// [`run`]: Runner::run
    pub fn run_flows_batch(&self, jobs: &[FlowJob]) -> Vec<FlowsOutcome> {
        self.run_flows_clustered(jobs)
            .into_iter()
            .map(|p| p.outcome)
            .collect()
    }

    /// [`Runner::run_flows_batch`] with provenance. Approx mode falls
    /// back to exact transplanting (rate interpolation is certified only
    /// for the single-stream VQM sweeps).
    pub fn run_flows_clustered(&self, jobs: &[FlowJob]) -> Vec<ClusterPoint<FlowsOutcome>> {
        let counts = |o: &FlowsOutcome| {
            (
                o.per_flow.iter().map(|f| f.policer_drops).sum(),
                o.per_flow.iter().map(|f| f.queue_drops).sum(),
                0,
            )
        };
        let n = jobs.len();
        if n == 0 {
            return Vec::new();
        }
        if self.cluster == ClusterMode::Off {
            return self.run_direct(n, |i| self.run_one_flows(&jobs[i]), counts);
        }

        // Exact classes over the canonical address, with each job's
        // flow-rank map retained to bridge per-flow outcomes between
        // members of one class (the aggregate path's exact discipline).
        let canons: Vec<_> = jobs
            .iter()
            .map(|j| canonicalize(&j.spec_scoring().0))
            .collect();
        let ranks: Vec<Vec<usize>> = canons
            .iter()
            .zip(jobs)
            .map(|(canon, job)| media_flow_ranks(canon, job.flows()))
            .collect();
        let keys: Vec<String> = canons
            .iter()
            .zip(jobs)
            .map(|(canon, job)| {
                format!(
                    "{}\0{}",
                    job.kind(),
                    keys::cache_address(canon.spec.to_value(), job.spec_scoring().1)
                )
            })
            .collect();
        let rep_of = first_seen(&keys);
        let reps: Vec<usize> = (0..n).filter(|&i| rep_of[i] == i).collect();
        let mut slot_of = vec![usize::MAX; n];
        for (slot, &i) in reps.iter().enumerate() {
            slot_of[i] = slot;
        }

        let stages_before = profile::snapshot();
        let progress = Progress::new(n, reps.len(), self.progress);
        let rep_results = self.fan_out(
            reps.len(),
            &progress,
            |slot| self.run_one_flows(&jobs[reps[slot]]),
            counts,
        );
        let out = (0..n)
            .map(|i| {
                let rep = rep_of[i];
                let (outcome, hit) = &rep_results[slot_of[rep]];
                if rep == i {
                    ClusterPoint {
                        outcome: outcome.clone(),
                        source: if *hit {
                            PointSource::Cached
                        } else {
                            PointSource::Simulated
                        },
                    }
                } else {
                    let transplanted = flows_from_canonical_order(
                        &flows_to_canonical_order(outcome, &ranks[rep]),
                        &ranks[i],
                    );
                    progress.record_reused(counts(&transplanted));
                    ClusterPoint {
                        outcome: transplanted,
                        source: PointSource::Reused {
                            representative: rep,
                        },
                    }
                }
            })
            .collect();
        progress.finish();
        profile::report(&format!("batch of {n}"), &stages_before);
        out
    }

    /// Cluster-free execution: every point produced directly (simulated
    /// or cache-served), fanned over the thread pool.
    fn run_direct<O: Send + Sync + Clone>(
        &self,
        n: usize,
        exec: impl Fn(usize) -> (O, bool) + Sync,
        counts: impl Fn(&O) -> (u64, u64, u64) + Sync,
    ) -> Vec<ClusterPoint<O>> {
        if n == 0 {
            return Vec::new();
        }
        let stages_before = profile::snapshot();
        let progress = Progress::new(n, n, self.progress);
        let results = self.fan_out(n, &progress, exec, counts);
        progress.finish();
        profile::report(&format!("batch of {n}"), &stages_before);
        results
            .into_iter()
            .map(|(outcome, hit)| ClusterPoint {
                outcome,
                source: if hit {
                    PointSource::Cached
                } else {
                    PointSource::Simulated
                },
            })
            .collect()
    }

    /// The exact/approx cluster engine for [`Job`] grids: partition by
    /// canonical address, simulate representatives (bisecting rate
    /// families when `eps` is given), transplant members.
    fn run_jobs_merged(&self, jobs: &[Job], eps: Option<f64>) -> Vec<ClusterPoint<RunOutcome>> {
        let counts = |o: &RunOutcome| (o.policer_drops, o.queue_drops, o.shaper_drops);
        let n = jobs.len();
        if n == 0 {
            return Vec::new();
        }
        let keys: Vec<String> = jobs
            .iter()
            .map(|j| format!("{}\0{}", j.kind(), j.cache_json()))
            .collect();
        let rep_of = first_seen(&keys);
        let reps: Vec<usize> = (0..n).filter(|&i| rep_of[i] == i).collect();
        let mut slot_of = vec![usize::MAX; n];
        for (slot, &i) in reps.iter().enumerate() {
            slot_of[i] = slot;
        }

        // Approx mode: group representatives whose canonical specs
        // differ only in their single policer token rate. Families of at
        // least three points have an interior to interpolate; everything
        // else simulates directly.
        let mut singles: Vec<usize> = Vec::new();
        let mut families: Vec<Vec<(u64, usize)>> = Vec::new();
        if let Some(_eps) = eps {
            let mut by_family: HashMap<String, Vec<(u64, usize)>> = HashMap::new();
            for (slot, &i) in reps.iter().enumerate() {
                match rate_family(&jobs[i]) {
                    Some((fam, rate)) => by_family.entry(fam).or_default().push((rate, slot)),
                    None => singles.push(slot),
                }
            }
            // Deterministic order: families by their lowest member slot.
            let mut fams: Vec<Vec<(u64, usize)>> = by_family.into_values().collect();
            fams.sort_by_key(|f| f.iter().map(|&(_, slot)| slot).min());
            for mut fam in fams {
                if fam.len() < 3 {
                    singles.extend(fam.iter().map(|&(_, slot)| slot));
                } else {
                    fam.sort_unstable();
                    families.push(fam);
                }
            }
            singles.sort_unstable();
        } else {
            singles = (0..reps.len()).collect();
        }

        let stages_before = profile::snapshot();
        // `planned_sims` is the exact-mode upper bound; interpolation
        // only ever retires slots early, so the ETA stays conservative.
        let progress = Progress::new(n, reps.len(), self.progress);
        let mut rep_points: Vec<Option<ClusterPoint<RunOutcome>>> = vec![None; reps.len()];

        let single_results = self.fan_out(
            singles.len(),
            &progress,
            |k| self.run_one(&jobs[reps[singles[k]]]),
            counts,
        );
        for (&slot, (outcome, hit)) in singles.iter().zip(single_results) {
            rep_points[slot] = Some(ClusterPoint {
                outcome,
                source: if hit {
                    PointSource::Cached
                } else {
                    PointSource::Simulated
                },
            });
        }

        if let Some(eps) = eps {
            for fam in &families {
                self.bisect_family(jobs, &reps, fam, eps, &mut rep_points, &progress);
            }
        }

        let out = (0..n)
            .map(|i| {
                let rep = rep_of[i];
                let point = rep_points[slot_of[rep]]
                    .as_ref()
                    .expect("every representative resolved");
                if rep == i {
                    point.clone()
                } else {
                    progress.record_reused(counts(&point.outcome));
                    ClusterPoint {
                        outcome: point.outcome.clone(),
                        source: PointSource::Reused {
                            representative: rep,
                        },
                    }
                }
            })
            .collect();
        progress.finish();
        profile::report(&format!("batch of {n}"), &stages_before);
        out
    }

    /// Recursive (explicit-stack) bisection of one rate family, sorted
    /// by rate: simulate the endpoints; where two bracketing anchors
    /// agree within `eps` on every headline metric, the interior points
    /// inherit the nearest anchor's outcome with a recorded bound;
    /// otherwise split at the middle point and recurse on both halves.
    fn bisect_family(
        &self,
        jobs: &[Job],
        reps: &[usize],
        fam: &[(u64, usize)],
        eps: f64,
        rep_points: &mut [Option<ClusterPoint<RunOutcome>>],
        progress: &Progress,
    ) {
        let counts = |o: &RunOutcome| (o.policer_drops, o.queue_drops, o.shaper_drops);
        let simulate = |idx: usize, rep_points: &mut [Option<ClusterPoint<RunOutcome>>]| {
            let slot = fam[idx].1;
            if rep_points[slot].is_none() {
                let (outcome, hit) = self.run_one(&jobs[reps[slot]]);
                progress.record_counts(counts(&outcome), hit);
                rep_points[slot] = Some(ClusterPoint {
                    outcome,
                    source: if hit {
                        PointSource::Cached
                    } else {
                        PointSource::Simulated
                    },
                });
            }
        };
        simulate(0, rep_points);
        simulate(fam.len() - 1, rep_points);
        let mut stack = vec![(0usize, fam.len() - 1)];
        while let Some((lo, hi)) = stack.pop() {
            if hi - lo <= 1 {
                continue;
            }
            let olo = rep_points[fam[lo].1].as_ref().expect("lo anchor simulated");
            let ohi = rep_points[fam[hi].1].as_ref().expect("hi anchor simulated");
            if anchors_agree(&olo.outcome, &ohi.outcome, eps) {
                let bound = error_bound(&olo.outcome, &ohi.outcome);
                let (olo, ohi) = (olo.clone(), ohi.clone());
                for k in lo + 1..hi {
                    // Nearest anchor by token-rate distance, ties to the
                    // lower anchor.
                    let nearest = if fam[k].0 - fam[lo].0 <= fam[hi].0 - fam[k].0 {
                        &olo
                    } else {
                        &ohi
                    };
                    progress.record_interpolated(counts(&nearest.outcome));
                    rep_points[fam[k].1] = Some(ClusterPoint {
                        outcome: nearest.outcome.clone(),
                        source: PointSource::Interpolated {
                            lo: reps[fam[lo].1],
                            hi: reps[fam[hi].1],
                            bound: bound.clone(),
                        },
                    });
                }
            } else {
                let mid = (lo + hi) / 2;
                simulate(mid, rep_points);
                stack.push((lo, mid));
                stack.push((mid, hi));
            }
        }
    }

    /// The shared fan-out engine behind every batch entry point: `n`
    /// points, each produced by `exec(i) -> (outcome, cache_hit)`, fanned
    /// over the scoped thread pool with results returned **in index
    /// order** regardless of thread count. `counts` extracts the drop
    /// counters the live progress line accumulates.
    fn fan_out<O: Send + Sync>(
        &self,
        n: usize,
        progress: &Progress,
        exec: impl Fn(usize) -> (O, bool) + Sync,
        counts: impl Fn(&O) -> (u64, u64, u64) + Sync,
    ) -> Vec<(O, bool)> {
        if n == 0 {
            return Vec::new();
        }
        let slots: Vec<OnceLock<(O, bool)>> = (0..n).map(|_| OnceLock::new()).collect();
        let next = AtomicUsize::new(0);
        let workers = self.threads.clamp(1, n);
        std::thread::scope(|scope| {
            for _ in 0..workers {
                scope.spawn(|| loop {
                    let i = next.fetch_add(1, Ordering::Relaxed);
                    if i >= n {
                        break;
                    }
                    let result = exec(i);
                    progress.record_counts(counts(&result.0), result.1);
                    if slots[i].set(result).is_err() {
                        panic!("each slot is filled once");
                    }
                });
            }
        });
        slots
            .into_iter()
            .map(|s| s.into_inner().expect("worker filled every slot"))
            .collect()
    }

    /// Run one job, consulting the cache; returns `(outcome, cache_hit)`.
    fn run_one(&self, job: &Job) -> (RunOutcome, bool) {
        let Some(dir) = &self.cache_dir else {
            return (job.execute(), false);
        };
        let config = job.cache_json();
        let path = keys::cache_path(dir, job.kind(), &config);
        if let Some(outcome) = load_cached(&path, job.kind(), &config) {
            return (outcome, true);
        }
        let outcome = job.execute();
        store_cached(
            dir,
            &path,
            &CacheEntry {
                kind: job.kind().to_string(),
                config,
                outcome: outcome.clone(),
            },
        );
        (outcome, false)
    }

    /// Run one aggregate config, consulting the cache. Entries are
    /// addressed by the config's canonical spec and stored in canonical
    /// flow order, so every member of a symmetry class shares one entry;
    /// outcomes are transplanted back through this config's rank map.
    fn run_one_aggregate(&self, cfg: &AggregateConfig) -> (AggregateOutcome, bool) {
        let Some(dir) = &self.cache_dir else {
            return (run_aggregate(cfg), false);
        };
        let canon = canonicalize(&aggregate_spec(cfg));
        let rank = media_flow_ranks(&canon, cfg.flows);
        let config = keys::cache_address(canon.spec.to_value(), aggregate_scoring(cfg));
        let path = keys::cache_path(dir, AGGREGATE_KIND, &config);
        if let Some(canon_out) = load_cached_aggregate(&path, AGGREGATE_KIND, &config) {
            // Flow-count guard against a stale entry shape; the address
            // fixes the canonical spec, so the count always matches in
            // practice.
            if canon_out.per_flow.len() == cfg.flows as usize {
                return (from_canonical_order(&canon_out, &rank), true);
            }
        }
        let outcome = run_aggregate(cfg);
        store_cached_aggregate(
            dir,
            &path,
            &AggregateCacheEntry {
                kind: AGGREGATE_KIND.to_string(),
                config,
                outcome: to_canonical_order(&outcome, &rank),
            },
        );
        (outcome, false)
    }

    /// Run one transport-level job, consulting the cache. Entries are
    /// addressed by the canonical spec + scoring and stored in canonical
    /// flow order (the aggregate path's discipline).
    fn run_one_flows(&self, job: &FlowJob) -> (FlowsOutcome, bool) {
        let Some(dir) = &self.cache_dir else {
            return (job.execute(), false);
        };
        let (spec, scoring) = job.spec_scoring();
        let canon = canonicalize(&spec);
        let rank = media_flow_ranks(&canon, job.flows());
        let config = keys::cache_address(canon.spec.to_value(), scoring);
        let path = keys::cache_path(dir, job.kind(), &config);
        if let Some(canon_out) = load_cached_flows(&path, job.kind(), &config) {
            if canon_out.per_flow.len() == job.flows() as usize {
                return (flows_from_canonical_order(&canon_out, &rank), true);
            }
        }
        let outcome = job.execute();
        store_cached_flows(
            dir,
            &path,
            &FlowsCacheEntry {
                kind: job.kind().to_string(),
                config,
                outcome: flows_to_canonical_order(&outcome, &rank),
            },
        );
        (outcome, false)
    }

    /// Run a QBone figure's grid (`rates × depths`) through this runner.
    pub fn qbone_sweep(
        &self,
        base: &QboneConfig,
        rates: &[u64],
        depths: &[u32],
        label: impl Into<String>,
    ) -> SweepResult {
        let jobs = grid_jobs(rates, depths, |rate, depth| {
            let mut cfg = base.clone();
            cfg.profile = EfProfile::new(rate, depth);
            Job::Qbone(cfg)
        });
        self.collect_sweep(jobs, rates, depths, label)
    }

    /// Run a local-testbed grid through this runner.
    pub fn local_sweep(
        &self,
        base: &LocalConfig,
        rates: &[u64],
        depths: &[u32],
        label: impl Into<String>,
    ) -> SweepResult {
        let jobs = grid_jobs(rates, depths, |rate, depth| {
            let mut cfg = base.clone();
            cfg.profile = EfProfile::new(rate, depth);
            Job::Local(cfg)
        });
        self.collect_sweep(jobs, rates, depths, label)
    }

    fn collect_sweep(
        &self,
        jobs: Vec<Job>,
        rates: &[u64],
        depths: &[u32],
        label: impl Into<String>,
    ) -> SweepResult {
        let outcomes = self.run(&jobs);
        let points = depths
            .iter()
            .flat_map(|&depth| rates.iter().map(move |&rate| (rate, depth)))
            .zip(outcomes)
            .map(
                |((token_rate_bps, bucket_depth_bytes), outcome)| SweepPoint {
                    token_rate_bps,
                    bucket_depth_bytes,
                    outcome,
                },
            )
            .collect();
        SweepResult {
            label: label.into(),
            points,
        }
    }

    /// Run a batch of QBone configurations, outcomes in input order.
    pub fn run_qbone_batch(&self, cfgs: &[QboneConfig]) -> Vec<RunOutcome> {
        let jobs: Vec<Job> = cfgs.iter().cloned().map(Job::Qbone).collect();
        self.run(&jobs)
    }

    /// Run a batch of local-testbed configurations, outcomes in input order.
    pub fn run_local_batch(&self, cfgs: &[LocalConfig]) -> Vec<RunOutcome> {
        let jobs: Vec<Job> = cfgs.iter().cloned().map(Job::Local).collect();
        self.run(&jobs)
    }

    /// Run a batch of AF configurations, outcomes in input order.
    pub fn run_af_batch(&self, cfgs: &[AfConfig]) -> Vec<RunOutcome> {
        let jobs: Vec<Job> = cfgs.iter().cloned().map(Job::Af).collect();
        self.run(&jobs)
    }
}

/// The cache/cluster kind tag of aggregate runs.
const AGGREGATE_KIND: &str = "aggregate";

/// The scoring parameters of an aggregate run (its cache address pairs
/// these with the canonical spec).
fn aggregate_scoring(cfg: &AggregateConfig) -> Value {
    // Stamped like `Job::cache_json`: a non-default QoE estimator is part
    // of the identity (full mode adds nothing).
    crate::qoe::stamp_scoring(Value::Object(vec![
        ("clip".to_string(), cfg.clip.to_value()),
        ("encoding_bps".to_string(), cfg.encoding_bps.to_value()),
    ]))
}

/// Parse a `DSV_CLUSTER` value; unrecognized input warns on stderr and
/// falls back to the exact default rather than silently changing
/// semantics.
fn cluster_mode_from_str(v: &str) -> ClusterMode {
    match v {
        "off" | "0" => ClusterMode::Off,
        "" | "exact" | "1" => ClusterMode::Exact,
        _ => {
            if let Some(eps) = v.strip_prefix("approx:") {
                match eps.trim().parse::<f64>() {
                    Ok(e) if e.is_finite() && e >= 0.0 => return ClusterMode::Approx(e),
                    _ => eprintln!(
                        "[runner] DSV_CLUSTER={v:?}: tolerance must be a finite number >= 0; \
                         using exact clustering"
                    ),
                }
            } else {
                eprintln!(
                    "[runner] DSV_CLUSTER={v:?} not recognized \
                     (expected off, exact or approx:<eps>); using exact clustering"
                );
            }
            ClusterMode::Exact
        }
    }
}

/// Map each index to the first index carrying the same key (itself for
/// class representatives).
fn first_seen(keys: &[String]) -> Vec<usize> {
    let mut seen: HashMap<&str, usize> = HashMap::new();
    keys.iter()
        .enumerate()
        .map(|(i, k)| *seen.entry(k.as_str()).or_insert(i))
        .collect()
}

/// The approx-mode rate-family key of a job: its canonical spec with the
/// single distinct policer token rate masked out (in the policer actions
/// and the matching audit bounds), paired with that rate. Two jobs in one
/// family differ **only** in that rate — the one independent variable
/// the paper's rate sweeps move — so interpolating between them walks a
/// curve the metamorphic monotonicity oracles certify as mostly
/// monotone. Jobs with zero or several distinct policer rates have no
/// family and always simulate.
fn rate_family(job: &Job) -> Option<(String, u64)> {
    let (spec, scoring) = job.spec_scoring();
    let mut canon = canonicalize(&spec).spec;
    let mut rates: Vec<u64> = canon
        .conditioners
        .iter()
        .flat_map(|c| c.rules.iter())
        .filter_map(|r| match r.action {
            ActionSpec::Police { rate_bps, .. } => Some(rate_bps),
            _ => None,
        })
        .collect();
    rates.sort_unstable();
    rates.dedup();
    if rates.len() != 1 || rates[0] == 0 {
        return None;
    }
    let rate = rates[0];
    for c in &mut canon.conditioners {
        for r in &mut c.rules {
            if let ActionSpec::Police { rate_bps, .. } = &mut r.action {
                *rate_bps = 0;
            }
        }
    }
    for b in &mut canon.bounds {
        if b.rate_bps == rate {
            b.rate_bps = 0;
        }
    }
    Some((
        format!(
            "{}\0{}",
            job.kind(),
            keys::cache_address(canon.to_value(), scoring)
        ),
        rate,
    ))
}

/// True when two anchors agree within `eps` on every headline metric
/// (and broke down the same way) — the gate for interpolating between
/// them.
fn anchors_agree(a: &RunOutcome, b: &RunOutcome, eps: f64) -> bool {
    let close = |x: f64, y: f64| (x - y).abs() <= eps;
    close(a.quality, b.quality)
        && close(a.frame_loss, b.frame_loss)
        && close(a.packet_loss, b.packet_loss)
        && match (a.quality_vs_best, b.quality_vs_best) {
            (None, None) => true,
            (Some(x), Some(y)) => close(x, y),
            _ => false,
        }
        && a.broken == b.broken
}

/// The recorded bound for points interpolated between two anchors: the
/// anchor spread (monotone truth lies between the anchors) plus the
/// wobble allowance for the curves' residual non-monotonicity.
fn error_bound(a: &RunOutcome, b: &RunOutcome) -> ErrorBound {
    ErrorBound {
        quality: (a.quality - b.quality).abs() + WOBBLE_QUALITY,
        frame_loss: (a.frame_loss - b.frame_loss).abs() + WOBBLE_LOSS,
        packet_loss: (a.packet_loss - b.packet_loss).abs() + WOBBLE_LOSS,
        quality_vs_best: match (a.quality_vs_best, b.quality_vs_best) {
            (Some(x), Some(y)) => Some((x - y).abs() + WOBBLE_QUALITY),
            _ => None,
        },
    }
}

/// Build the depth-major job grid (the order `SweepResult` documents).
fn grid_jobs(rates: &[u64], depths: &[u32], mut make: impl FnMut(u64, u32) -> Job) -> Vec<Job> {
    let mut jobs = Vec::with_capacity(rates.len() * depths.len());
    for &depth in depths {
        for &rate in rates {
            jobs.push(make(rate, depth));
        }
    }
    jobs
}

/// Read `path` and run `parse` over its contents, re-reading once if the
/// first attempt does not yield a value.
///
/// `store_cached` publishes entries with a tmp-file write + rename, which
/// is atomic on POSIX — but when *another process* is recomputing the
/// same grid (two figure binaries sharing `results/cache/`), some
/// filesystems (overlay and network mounts in particular) expose a window
/// where a read racing the rename returns truncated or stale bytes. Every
/// writer of a given path serializes the same pure-function outcome, so
/// the content is never wrong, only possibly torn; one re-read after a
/// failed parse (or a guard mismatch) lands after the rename and
/// recovers the entry. A second failure means a genuinely absent or
/// corrupt entry, which degrades to recomputation as before.
fn retry_torn_read<T>(path: &Path, parse: impl Fn(&str) -> Option<T>) -> Option<T> {
    for attempt in 0..2 {
        // A missing file is a plain cache miss: nothing to retry.
        let text = fs::read_to_string(path).ok()?;
        if let Some(v) = parse(&text) {
            return Some(v);
        }
        if attempt == 0 {
            std::thread::yield_now();
        }
    }
    None
}

/// Load a cache entry if it exists *and* addresses exactly this config.
fn load_cached(path: &Path, kind: &str, config: &str) -> Option<RunOutcome> {
    retry_torn_read(path, |text| {
        let entry: CacheEntry = serde_json::from_str(text).ok()?;
        (entry.kind == kind && entry.config == config).then_some(entry.outcome)
    })
}

/// Persist a cache entry atomically (tmp file + rename), best-effort:
/// a read-only results directory degrades to "no cache", not a panic.
fn store_cached(dir: &Path, path: &Path, entry: &CacheEntry) {
    static TMP_SEQ: AtomicU64 = AtomicU64::new(0);
    if fs::create_dir_all(dir).is_err() {
        return;
    }
    let json = serde_json::to_string_pretty(entry).expect("cache entry serializes");
    let tmp = dir.join(format!(
        ".tmp-{}-{}",
        std::process::id(),
        TMP_SEQ.fetch_add(1, Ordering::Relaxed)
    ));
    if fs::write(&tmp, json).is_ok() && fs::rename(&tmp, path).is_err() {
        let _ = fs::remove_file(&tmp);
    }
}

/// Load a transport-run cache entry if it addresses exactly this config.
fn load_cached_flows(path: &Path, kind: &str, config: &str) -> Option<FlowsOutcome> {
    retry_torn_read(path, |text| {
        let entry: FlowsCacheEntry = serde_json::from_str(text).ok()?;
        (entry.kind == kind && entry.config == config).then_some(entry.outcome)
    })
}

/// Persist a transport-run cache entry atomically, best-effort.
fn store_cached_flows(dir: &Path, path: &Path, entry: &FlowsCacheEntry) {
    static TMP_SEQ: AtomicU64 = AtomicU64::new(0);
    if fs::create_dir_all(dir).is_err() {
        return;
    }
    let json = serde_json::to_string_pretty(entry).expect("cache entry serializes");
    let tmp = dir.join(format!(
        ".tmp-flows-{}-{}",
        std::process::id(),
        TMP_SEQ.fetch_add(1, Ordering::Relaxed)
    ));
    if fs::write(&tmp, json).is_ok() && fs::rename(&tmp, path).is_err() {
        let _ = fs::remove_file(&tmp);
    }
}

/// Load an aggregate cache entry if it addresses exactly this config.
fn load_cached_aggregate(path: &Path, kind: &str, config: &str) -> Option<AggregateOutcome> {
    retry_torn_read(path, |text| {
        let entry: AggregateCacheEntry = serde_json::from_str(text).ok()?;
        (entry.kind == kind && entry.config == config).then_some(entry.outcome)
    })
}

/// Persist an aggregate cache entry atomically, best-effort.
fn store_cached_aggregate(dir: &Path, path: &Path, entry: &AggregateCacheEntry) {
    static TMP_SEQ: AtomicU64 = AtomicU64::new(0);
    if fs::create_dir_all(dir).is_err() {
        return;
    }
    let json = serde_json::to_string_pretty(entry).expect("cache entry serializes");
    let tmp = dir.join(format!(
        ".tmp-agg-{}-{}",
        std::process::id(),
        TMP_SEQ.fetch_add(1, Ordering::Relaxed)
    ));
    if fs::write(&tmp, json).is_ok() && fs::rename(&tmp, path).is_err() {
        let _ = fs::remove_file(&tmp);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::experiment::{DEPTH_2MTU, DEPTH_3MTU};
    use crate::qbone::ClipId2;

    fn tiny_base() -> QboneConfig {
        QboneConfig::new(
            ClipId2::Lost,
            1_000_000,
            EfProfile::new(1_000_000, DEPTH_2MTU),
        )
    }

    #[test]
    fn parallel_matches_serial_exactly() {
        let base = tiny_base();
        let rates = [900_000u64, 1_400_000];
        let depths = [DEPTH_2MTU, DEPTH_3MTU];
        let serial = Runner::serial().qbone_sweep(&base, &rates, &depths, "d");
        let parallel = Runner::serial()
            .with_threads(4)
            .qbone_sweep(&base, &rates, &depths, "d");
        assert_eq!(
            serde_json::to_string(&serial).unwrap(),
            serde_json::to_string(&parallel).unwrap()
        );
    }

    #[test]
    fn duplicate_jobs_cluster_to_one_simulation() {
        // Three jobs, two identical: exact mode simulates the two
        // distinct points and transplants the duplicate, with the
        // provenance saying so — and the outcomes byte-match a full
        // unclustered run.
        let mut other = tiny_base();
        other.profile = EfProfile::new(1_400_000, DEPTH_3MTU);
        let jobs = [
            Job::Qbone(tiny_base()),
            Job::Qbone(other),
            Job::Qbone(tiny_base()),
        ];
        let clustered = Runner::serial()
            .with_cluster(ClusterMode::Exact)
            .run_clustered(&jobs);
        assert!(matches!(clustered[0].source, PointSource::Simulated));
        assert!(matches!(clustered[1].source, PointSource::Simulated));
        assert!(matches!(
            clustered[2].source,
            PointSource::Reused { representative: 0 }
        ));
        let full = Runner::serial().run(&jobs);
        for (c, f) in clustered.iter().zip(&full) {
            assert_eq!(
                serde_json::to_string(&c.outcome).unwrap(),
                serde_json::to_string(f).unwrap()
            );
        }
    }

    #[test]
    fn cluster_mode_parsing_warns_and_defaults() {
        assert_eq!(cluster_mode_from_str("off"), ClusterMode::Off);
        assert_eq!(cluster_mode_from_str("0"), ClusterMode::Off);
        assert_eq!(cluster_mode_from_str("exact"), ClusterMode::Exact);
        assert_eq!(cluster_mode_from_str("1"), ClusterMode::Exact);
        assert_eq!(cluster_mode_from_str(""), ClusterMode::Exact);
        assert_eq!(
            cluster_mode_from_str("approx:0.05"),
            ClusterMode::Approx(0.05)
        );
        // Garbage (including non-finite or negative tolerances) warns
        // and falls back to the exact default.
        assert_eq!(cluster_mode_from_str("approx:"), ClusterMode::Exact);
        assert_eq!(cluster_mode_from_str("approx:-1"), ClusterMode::Exact);
        assert_eq!(cluster_mode_from_str("approx:inf"), ClusterMode::Exact);
        assert_eq!(cluster_mode_from_str("fast"), ClusterMode::Exact);
    }

    #[test]
    fn rate_families_group_rate_neighbours_only() {
        // Two qbone configs differing only in policer token rate share a
        // family and carry their own rates; a different bucket depth is
        // a different family.
        let mut a = tiny_base();
        a.profile = EfProfile::new(1_000_000, DEPTH_2MTU);
        let mut b = tiny_base();
        b.profile = EfProfile::new(1_200_000, DEPTH_2MTU);
        let mut c = tiny_base();
        c.profile = EfProfile::new(1_000_000, DEPTH_3MTU);
        let (fam_a, rate_a) = rate_family(&Job::Qbone(a)).unwrap();
        let (fam_b, rate_b) = rate_family(&Job::Qbone(b)).unwrap();
        let (fam_c, _) = rate_family(&Job::Qbone(c)).unwrap();
        assert_eq!(fam_a, fam_b);
        assert_eq!((rate_a, rate_b), (1_000_000, 1_200_000));
        assert_ne!(fam_a, fam_c);
    }

    #[test]
    fn error_bounds_cover_anchor_spread_plus_wobble() {
        let a = RunOutcome {
            quality: 0.30,
            frame_loss: 0.10,
            packet_loss: 0.05,
            ..Default::default()
        };
        let mut b = RunOutcome {
            quality: 0.20,
            frame_loss: 0.12,
            packet_loss: 0.05,
            ..Default::default()
        };
        assert!(anchors_agree(&a, &b, 0.1));
        assert!(!anchors_agree(&a, &b, 0.05));
        let bound = error_bound(&a, &b);
        assert!((bound.quality - (0.10 + WOBBLE_QUALITY)).abs() < 1e-12);
        assert!((bound.frame_loss - (0.02 + WOBBLE_LOSS)).abs() < 1e-12);
        assert!((bound.packet_loss - WOBBLE_LOSS).abs() < 1e-12);
        assert!(bound.quality_vs_best.is_none());
        // A broken session never merges with a healthy one, however
        // close the numbers.
        b.broken = true;
        assert!(!anchors_agree(&a, &b, 1.0));
    }

    #[test]
    fn cache_round_trips_and_guards_config() {
        let dir = std::env::temp_dir().join(format!("dsv-runner-test-{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        let runner = Runner::serial().with_cache(Some(dir.clone()));
        let job = Job::Qbone(tiny_base());
        let (cold, hit0) = runner.run_one(&job);
        assert!(!hit0, "first run must be a miss");
        let (warm, hit1) = runner.run_one(&job);
        assert!(hit1, "second run must hit");
        assert_eq!(
            serde_json::to_string(&cold).unwrap(),
            serde_json::to_string(&warm).unwrap()
        );
        // A different profile is a different address: no false hit.
        let mut other = tiny_base();
        other.profile = EfProfile::new(1_100_000, DEPTH_3MTU);
        let (_, hit2) = runner.run_one(&Job::Qbone(other));
        assert!(!hit2, "changed config must miss");
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn corrupt_cache_entries_fall_back_to_execution() {
        let dir = std::env::temp_dir().join(format!("dsv-runner-corrupt-{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        fs::create_dir_all(&dir).unwrap();
        let runner = Runner::serial().with_cache(Some(dir.clone()));
        let job = Job::Qbone(tiny_base());
        // Poison the exact cache path this job addresses.
        let path = keys::cache_path(&dir, job.kind(), &job.cache_json());
        fs::write(&path, "{not json").unwrap();
        let (_, hit) = runner.run_one(&job);
        assert!(!hit, "corrupt entry must not count as a hit");
        // And it must have been repaired in place.
        let (_, hit2) = runner.run_one(&job);
        assert!(hit2, "repaired entry hits");
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn torn_reads_are_retried_exactly_once() {
        let dir = std::env::temp_dir().join(format!("dsv-runner-torn-{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        fs::create_dir_all(&dir).unwrap();
        let path = dir.join("entry.json");
        fs::write(&path, "payload").unwrap();

        // A parse that fails once (as if racing a rename) succeeds on the
        // re-read.
        let calls = std::cell::Cell::new(0usize);
        let got = retry_torn_read(&path, |text| {
            calls.set(calls.get() + 1);
            (calls.get() == 2).then(|| text.to_string())
        });
        assert_eq!(got.as_deref(), Some("payload"));
        assert_eq!(calls.get(), 2);

        // A persistently bad entry is read twice, no more.
        let calls = std::cell::Cell::new(0usize);
        let got: Option<()> = retry_torn_read(&path, |_| {
            calls.set(calls.get() + 1);
            None
        });
        assert_eq!(got, None);
        assert_eq!(calls.get(), 2);

        // A missing file is a plain miss: zero parse attempts, no retry.
        let calls = std::cell::Cell::new(0usize);
        let got: Option<()> = retry_torn_read(&dir.join("absent.json"), |_| {
            calls.set(calls.get() + 1);
            Some(())
        });
        assert_eq!(got, None);
        assert_eq!(calls.get(), 0);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn concurrent_writers_never_corrupt_a_read() {
        // Several "processes" recomputing the same point store the same
        // entry while readers poll it: every successful load must return
        // the one true outcome, and failed loads only mean "miss".
        let dir = std::env::temp_dir().join(format!("dsv-runner-race-{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        let job = Job::Qbone(tiny_base());
        let config = job.cache_json();
        let path = keys::cache_path(&dir, job.kind(), &config);
        let entry = CacheEntry {
            kind: job.kind().to_string(),
            config: config.clone(),
            outcome: job.execute(),
        };
        let expected = serde_json::to_string(&entry.outcome).unwrap();
        std::thread::scope(|scope| {
            for _ in 0..3 {
                scope.spawn(|| {
                    for _ in 0..40 {
                        store_cached(&dir, &path, &entry);
                    }
                });
            }
            for _ in 0..3 {
                scope.spawn(|| {
                    let mut hits = 0usize;
                    for _ in 0..200 {
                        if let Some(outcome) = load_cached(&path, job.kind(), &config) {
                            assert_eq!(serde_json::to_string(&outcome).unwrap(), expected);
                            hits += 1;
                        }
                    }
                    // By the end the entry is durably published.
                    assert!(
                        load_cached(&path, job.kind(), &config).is_some() || hits > 0,
                        "entry should become visible to readers"
                    );
                });
            }
        });
        // No temp files leak from the racing writers.
        let leftovers: Vec<_> = fs::read_dir(&dir)
            .unwrap()
            .filter_map(|e| e.ok())
            .filter(|e| e.file_name().to_string_lossy().starts_with(".tmp-"))
            .collect();
        assert!(leftovers.is_empty(), "stray temp files: {leftovers:?}");
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn thread_count_env_policy_warns_and_defaults() {
        // `from_env` routes DSV_THREADS through the shared dsv-sim parser:
        // valid values apply, garbage falls back to the default (with a
        // stderr warning) instead of being silently ignored.
        let default_threads = Runner::default().threads;
        std::env::set_var("DSV_THREADS", "3");
        assert_eq!(Runner::from_env().threads, 3);
        std::env::set_var("DSV_THREADS", "0");
        assert_eq!(Runner::from_env().threads, default_threads);
        std::env::set_var("DSV_THREADS", "many");
        assert_eq!(Runner::from_env().threads, default_threads);
        std::env::remove_var("DSV_THREADS");
        assert_eq!(Runner::from_env().threads, default_threads);
    }

    #[test]
    fn progress_eta_is_sane_on_edge_cases() {
        // Before any point lands there is no rate to extrapolate from:
        // no ETA rather than `total / ε` nonsense.
        let (rate, eta) = throughput_eta(0, 100, 0.0);
        assert_eq!(rate, 0.0);
        assert_eq!(eta, None);
        // An instantly-cached grid (elapsed ≈ 0) must stay finite.
        let (rate, eta) = throughput_eta(100, 100, 0.0);
        assert!(rate.is_finite() && rate > 0.0);
        assert_eq!(eta, Some(0.0));
        // Normal mid-flight estimate: 10 done in 5 s, 30 to go → 15 s.
        let (rate, eta) = throughput_eta(10, 40, 5.0);
        assert!((rate - 2.0).abs() < 1e-12);
        assert!((eta.unwrap() - 15.0).abs() < 1e-12);
        // done > total (caller bug or re-counted cache hits) saturates
        // to zero remaining rather than going negative.
        let (_, eta) = throughput_eta(5, 3, 1.0);
        assert_eq!(eta, Some(0.0));
    }

    #[test]
    fn eta_counts_simulation_slots_not_reused_points() {
        // A 40-point grid clustering down to 30 simulations, 10 of them
        // done after 5 s: the reused points land for free, so the honest
        // remaining time is the 20 pending *simulations* (10 s). Feeding
        // the ETA grid-point totals instead would promise 15 s — a 50%
        // overestimate that grows with the reuse ratio.
        let (_, eta_sims) = throughput_eta(10, 30, 5.0);
        assert!((eta_sims.unwrap() - 10.0).abs() < 1e-12);
        let (_, eta_points) = throughput_eta(10, 40, 5.0);
        assert!(eta_points.unwrap() > eta_sims.unwrap());
    }

    #[test]
    fn progress_qoe_segment_counts_estimators_not_points() {
        use crate::qoe::QoeSnapshot;
        // The default full-VQM path adds nothing: the progress line must
        // stay byte-identical to what it printed before the estimator
        // split existed.
        let full_only = QoeSnapshot {
            full_scored: 24,
            ..QoeSnapshot::default()
        };
        assert_eq!(qoe_progress_segment(&full_only), None);
        assert_eq!(qoe_progress_segment(&QoeSnapshot::default()), None);
        // A proxy batch reports the estimator mix; no checks yet, so no
        // live bound to print.
        let proxy = QoeSnapshot {
            proxy_scored: 24,
            ..QoeSnapshot::default()
        };
        assert_eq!(
            qoe_progress_segment(&proxy).unwrap(),
            " | qoe: 24 proxy, 0 full, 0 checked"
        );
        // A sampled batch adds the live MAE once comparisons land:
        // 3 checks, 6 comparisons, 0.012 total error -> MAE 0.002.
        let sampled = QoeSnapshot {
            proxy_scored: 24,
            sampled_checked: 3,
            sampled_errs: 6,
            err_sum_micro: 12_000,
            err_max_micro: 5_000,
            ..QoeSnapshot::default()
        };
        assert_eq!(
            qoe_progress_segment(&sampled).unwrap(),
            " | qoe: 24 proxy, 0 full, 3 checked (live MAE 0.0020)"
        );
    }

    #[test]
    fn empty_grid_produces_no_output_and_no_panic() {
        // An empty job list returns early: no progress line, no division
        // by the zero elapsed time, just an empty result.
        let out = Runner::serial().with_progress(true).run(&[]);
        assert!(out.is_empty());
        let out = Runner::serial()
            .with_cluster(ClusterMode::Exact)
            .with_progress(true)
            .run(&[]);
        assert!(out.is_empty());
    }
}
