//! Parallel, cached execution of experiment grids.
//!
//! Every figure in the paper's evaluation is a grid of independent
//! experiment runs (token rate × bucket depth, or a list of ablation
//! configurations). Each run is a *pure function of its configuration*:
//! all randomness is drawn from seeds stored in the config, so a point's
//! [`RunOutcome`] does not depend on which thread computed it or in which
//! order. The [`Runner`] exploits that twice:
//!
//! * **Parallelism** — grid points fan out over a scoped thread pool
//!   (work-stealing by atomic index). Results land in per-point slots, so
//!   the output order is the input order and a parallel run is
//!   bit-identical to a serial one.
//! * **Caching** — each point is content-addressed by an FNV-1a hash of
//!   its kind tag and the canonical JSON of its **compiled scenario
//!   spec** plus scoring parameters (`Job::cache_json`), so any
//!   topology or profile change changes the address. Outcomes persist under
//!   `results/cache/`, so re-running `all_figures` (or any figure binary)
//!   skips every already-computed point. A config change — different
//!   rate, depth, seed, clip, horizon — changes the hash and misses the
//!   cache; the stored config is compared byte-for-byte on load to guard
//!   against hash collisions and stale schema.
//!
//! The cache deliberately does **not** hash the simulator code itself:
//! after changing simulation behaviour, delete `results/cache/` (or run
//! with `DSV_CACHE=0`) to force cold recomputation.
//!
//! Environment knobs (read by [`Runner::from_env`]):
//!
//! | variable       | effect                                              |
//! |----------------|-----------------------------------------------------|
//! | `DSV_THREADS`  | worker count (`1` = serial; default: all cores; `0`/garbage warn on stderr and use the default) |
//! | `DSV_CACHE`    | `0`/`off` disables; a path overrides the cache dir  |
//! | `DSV_PROGRESS` | `1`/`0` forces the progress meter on/off (default: on when stderr is a TTY) |

use std::fs;
use std::io::{IsTerminal, Write};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::OnceLock;
use std::time::Instant;

use serde::{Deserialize, Serialize, Value};

use crate::af::{af_spec, run_af, AfConfig};
use crate::aggregate::{aggregate_spec, run_aggregate, AggregateConfig, AggregateOutcome};
use crate::experiment::{EfProfile, RunOutcome};
use crate::local::{local_spec, run_local, LocalConfig};
use crate::profile;
use crate::qbone::{qbone_spec, run_qbone, QboneConfig};
use crate::sweep::{SweepPoint, SweepResult};

/// One unit of grid work: a fully specified experiment configuration.
#[derive(Debug, Clone)]
pub enum Job {
    /// A QBone wide-area run.
    Qbone(QboneConfig),
    /// A local Frame-Relay testbed run.
    Local(LocalConfig),
    /// An AF PHB run.
    Af(AfConfig),
}

impl Job {
    /// Short tag naming the testbed; part of the cache key.
    pub fn kind(&self) -> &'static str {
        match self {
            Job::Qbone(_) => "qbone",
            Job::Local(_) => "local",
            Job::Af(_) => "af",
        }
    }

    /// Canonical JSON of the configuration (the golden checksums hash
    /// this; see [`crate::golden`]).
    pub(crate) fn config_json(&self) -> String {
        match self {
            Job::Qbone(cfg) => serde_json::to_string(cfg),
            Job::Local(cfg) => serde_json::to_string(cfg),
            Job::Af(cfg) => serde_json::to_string(cfg),
        }
        .expect("config serializes")
    }

    /// The content the result cache addresses: the job's **compiled
    /// scenario spec** (canonical JSON — the full topology, conditioners,
    /// seed and horizon) plus the scoring parameters that shape the
    /// outcome but live outside the topology. Keying the cache off the
    /// spec means two configs that lower to the same simulation *and*
    /// the same scoring share an entry, and any topology change — even
    /// one the config struct cannot express — changes the address.
    pub(crate) fn cache_json(&self) -> String {
        let (spec, scoring) = match self {
            Job::Qbone(cfg) => (
                qbone_spec(cfg).to_value(),
                Value::Object(vec![
                    ("clip".to_string(), cfg.clip.to_value()),
                    ("encoding_bps".to_string(), cfg.encoding_bps.to_value()),
                    ("score_vs_best".to_string(), cfg.score_vs_best.to_value()),
                ]),
            ),
            Job::Local(cfg) => (
                local_spec(cfg).to_value(),
                Value::Object(vec![
                    ("clip".to_string(), cfg.clip.to_value()),
                    ("cap_bps".to_string(), cfg.cap_bps.to_value()),
                ]),
            ),
            Job::Af(cfg) => (
                af_spec(cfg).to_value(),
                Value::Object(vec![
                    ("clip".to_string(), cfg.clip.to_value()),
                    ("encoding_bps".to_string(), cfg.encoding_bps.to_value()),
                ]),
            ),
        };
        cache_address(spec, scoring)
    }

    /// Run the experiment this job describes.
    fn execute(&self) -> RunOutcome {
        match self {
            Job::Qbone(cfg) => run_qbone(cfg),
            Job::Local(cfg) => run_local(cfg),
            Job::Af(cfg) => run_af(cfg),
        }
    }
}

/// FNV-1a, 64-bit: tiny, dependency-free, and stable across platforms —
/// exactly what a content-addressed filename needs.
pub(crate) fn fnv1a64(bytes: &[u8]) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x100_0000_01b3);
    }
    h
}

/// Canonical cache-address JSON: `{"spec": …, "scoring": …}`.
fn cache_address(spec: Value, scoring: Value) -> String {
    serde_json::to_string(&Value::Object(vec![
        ("spec".to_string(), spec),
        ("scoring".to_string(), scoring),
    ]))
    .expect("cache address serializes")
}

/// One persisted cache record. The address JSON rides along so a load
/// can verify it addressed the right content (collision/staleness
/// guard).
#[derive(Debug, Clone, Serialize, Deserialize)]
struct CacheEntry {
    kind: String,
    config: String,
    outcome: RunOutcome,
}

/// A persisted aggregate-run cache record (same guard discipline as
/// [`CacheEntry`], different outcome shape).
#[derive(Debug, Clone, Serialize, Deserialize)]
struct AggregateCacheEntry {
    kind: String,
    config: String,
    outcome: AggregateOutcome,
}

/// Live progress across worker threads: points done, throughput, ETA and
/// aggregate drop counters, reported on stderr.
struct Progress {
    total: usize,
    done: AtomicUsize,
    cached: AtomicUsize,
    policer_drops: AtomicU64,
    queue_drops: AtomicU64,
    shaper_drops: AtomicU64,
    start: Instant,
    enabled: bool,
}

impl Progress {
    fn new(total: usize, enabled: bool) -> Progress {
        Progress {
            total,
            done: AtomicUsize::new(0),
            cached: AtomicUsize::new(0),
            policer_drops: AtomicU64::new(0),
            queue_drops: AtomicU64::new(0),
            shaper_drops: AtomicU64::new(0),
            start: Instant::now(),
            enabled,
        }
    }

    /// Record a finished point given its aggregate drop counters
    /// `(policer, queue, shaper)` — the shape-independent core of
    /// progress accounting.
    fn record_counts(&self, drops: (u64, u64, u64), cache_hit: bool) {
        let done = self.done.fetch_add(1, Ordering::Relaxed) + 1;
        if cache_hit {
            self.cached.fetch_add(1, Ordering::Relaxed);
        }
        self.policer_drops.fetch_add(drops.0, Ordering::Relaxed);
        self.queue_drops.fetch_add(drops.1, Ordering::Relaxed);
        self.shaper_drops.fetch_add(drops.2, Ordering::Relaxed);
        if self.enabled {
            self.print(done, false);
        }
    }

    fn print(&self, done: usize, final_line: bool) {
        let (rate, eta) = throughput_eta(done, self.total, self.start.elapsed().as_secs_f64());
        let eta = match eta {
            Some(secs) => format!("{secs:.0}s"),
            None => "?".to_string(),
        };
        let mut err = std::io::stderr().lock();
        let _ = write!(
            err,
            "\r[runner] {done}/{} points ({} cached) | {rate:.2} pts/s | ETA {eta} | \
             drops: policer {}, queue {}, shaper {}",
            self.total,
            self.cached.load(Ordering::Relaxed),
            self.policer_drops.load(Ordering::Relaxed),
            self.queue_drops.load(Ordering::Relaxed),
            self.shaper_drops.load(Ordering::Relaxed),
        );
        if final_line {
            let _ = writeln!(err);
        }
        let _ = err.flush();
    }

    fn finish(&self) {
        if self.enabled && self.total > 0 {
            self.print(self.done.load(Ordering::Relaxed), true);
        }
    }
}

/// Throughput and remaining-time estimate for a progress line.
///
/// Returns `(points_per_sec, Some(eta_secs))`; the ETA is `None` until
/// the first point lands (with `done == 0` there is no rate to
/// extrapolate from, and `total / ε` would print astronomical nonsense).
/// An instantly-served grid (all cache hits, elapsed ≈ 0) yields a huge
/// but finite rate and a zero ETA, never a division by zero or `NaN`.
fn throughput_eta(done: usize, total: usize, elapsed_secs: f64) -> (f64, Option<f64>) {
    if done == 0 {
        return (0.0, None);
    }
    let rate = done as f64 / elapsed_secs.max(1e-9);
    let eta = total.saturating_sub(done) as f64 / rate;
    (rate, Some(eta))
}

/// The grid-execution engine: fans [`Job`]s over threads, with an
/// optional persistent result cache. See the module docs for semantics.
#[derive(Debug, Clone)]
pub struct Runner {
    threads: usize,
    cache_dir: Option<PathBuf>,
    progress: bool,
}

/// Default cache location: `results/cache/` at the repository root.
pub fn default_cache_dir() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../../results/cache")
}

impl Default for Runner {
    fn default() -> Runner {
        Runner {
            threads: std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(1),
            cache_dir: Some(default_cache_dir()),
            progress: std::io::stderr().is_terminal(),
        }
    }
}

impl Runner {
    /// A runner configured from the environment (`DSV_THREADS`,
    /// `DSV_CACHE`, `DSV_PROGRESS`); the defaults are all cores, the
    /// persistent cache, and a progress meter when stderr is a TTY.
    pub fn from_env() -> Runner {
        let mut r = Runner::default();
        r.threads = dsv_sim::env::count_from_env("DSV_THREADS", r.threads);
        if let Ok(v) = std::env::var("DSV_CACHE") {
            let v = v.trim();
            r.cache_dir = match v {
                "0" | "off" | "" => None,
                path => Some(PathBuf::from(path)),
            };
        }
        if let Ok(v) = std::env::var("DSV_PROGRESS") {
            r.progress = v.trim() != "0";
        }
        r
    }

    /// A single-threaded runner with no cache and no progress output —
    /// the reference configuration for determinism comparisons.
    pub fn serial() -> Runner {
        Runner {
            threads: 1,
            cache_dir: None,
            progress: false,
        }
    }

    /// Set the worker-thread count (1 = serial execution).
    pub fn with_threads(mut self, threads: usize) -> Runner {
        self.threads = threads.max(1);
        self
    }

    /// Set the cache directory, or disable caching with `None`.
    pub fn with_cache(mut self, dir: Option<PathBuf>) -> Runner {
        self.cache_dir = dir;
        self
    }

    /// Force the progress meter on or off.
    pub fn with_progress(mut self, on: bool) -> Runner {
        self.progress = on;
        self
    }

    /// Run every job, in parallel, returning outcomes **in job order**.
    ///
    /// Outcomes are pure functions of each job's config (every RNG in a
    /// run is seeded from it), so the result is identical for any thread
    /// count — parallel output is byte-for-byte the serial output.
    pub fn run(&self, jobs: &[Job]) -> Vec<RunOutcome> {
        self.run_indexed(
            jobs.len(),
            |i| self.run_one(&jobs[i]),
            |o| (o.policer_drops, o.queue_drops, o.shaper_drops),
        )
    }

    /// Run a batch of aggregate configurations, outcomes in input order,
    /// through the same thread pool and persistent cache as [`run`].
    ///
    /// [`run`]: Runner::run
    pub fn run_aggregate_batch(&self, cfgs: &[AggregateConfig]) -> Vec<AggregateOutcome> {
        self.run_indexed(
            cfgs.len(),
            |i| self.run_one_aggregate(&cfgs[i]),
            |o| {
                (
                    o.per_flow.iter().map(|f| f.policer_drops).sum(),
                    o.per_flow.iter().map(|f| f.queue_drops).sum(),
                    o.per_flow.iter().map(|f| f.shaper_drops).sum(),
                )
            },
        )
    }

    /// The shared fan-out engine behind every batch entry point: `n`
    /// points, each produced by `exec(i) -> (outcome, cache_hit)`, fanned
    /// over the scoped thread pool with results returned **in index
    /// order** regardless of thread count. `counts` extracts the drop
    /// counters the live progress line accumulates.
    fn run_indexed<O: Send + Sync>(
        &self,
        n: usize,
        exec: impl Fn(usize) -> (O, bool) + Sync,
        counts: impl Fn(&O) -> (u64, u64, u64) + Sync,
    ) -> Vec<O> {
        if n == 0 {
            return Vec::new();
        }
        let slots: Vec<OnceLock<(O, bool)>> = (0..n).map(|_| OnceLock::new()).collect();
        let next = AtomicUsize::new(0);
        let progress = Progress::new(n, self.progress);
        let stages_before = profile::snapshot();
        let workers = self.threads.clamp(1, n);
        std::thread::scope(|scope| {
            for _ in 0..workers {
                scope.spawn(|| loop {
                    let i = next.fetch_add(1, Ordering::Relaxed);
                    if i >= n {
                        break;
                    }
                    let result = exec(i);
                    progress.record_counts(counts(&result.0), result.1);
                    if slots[i].set(result).is_err() {
                        panic!("each slot is filled once");
                    }
                });
            }
        });
        progress.finish();
        profile::report(&format!("batch of {n}"), &stages_before);
        slots
            .into_iter()
            .map(|s| s.into_inner().expect("worker filled every slot").0)
            .collect()
    }

    /// The content-addressed cache path for `(kind, address)`.
    fn cache_path(dir: &Path, kind: &str, address: &str) -> PathBuf {
        let mut keyed = Vec::with_capacity(kind.len() + 1 + address.len());
        keyed.extend_from_slice(kind.as_bytes());
        keyed.push(0);
        keyed.extend_from_slice(address.as_bytes());
        dir.join(format!("{}-{:016x}.json", kind, fnv1a64(&keyed)))
    }

    /// Run one job, consulting the cache; returns `(outcome, cache_hit)`.
    fn run_one(&self, job: &Job) -> (RunOutcome, bool) {
        let Some(dir) = &self.cache_dir else {
            return (job.execute(), false);
        };
        let config = job.cache_json();
        let path = Self::cache_path(dir, job.kind(), &config);
        if let Some(outcome) = load_cached(&path, job.kind(), &config) {
            return (outcome, true);
        }
        let outcome = job.execute();
        store_cached(
            dir,
            &path,
            &CacheEntry {
                kind: job.kind().to_string(),
                config,
                outcome: outcome.clone(),
            },
        );
        (outcome, false)
    }

    /// Run one aggregate config, consulting the cache.
    fn run_one_aggregate(&self, cfg: &AggregateConfig) -> (AggregateOutcome, bool) {
        const KIND: &str = "aggregate";
        let Some(dir) = &self.cache_dir else {
            return (run_aggregate(cfg), false);
        };
        let config = cache_address(
            aggregate_spec(cfg).to_value(),
            Value::Object(vec![
                ("clip".to_string(), cfg.clip.to_value()),
                ("encoding_bps".to_string(), cfg.encoding_bps.to_value()),
            ]),
        );
        let path = Self::cache_path(dir, KIND, &config);
        if let Some(outcome) = load_cached_aggregate(&path, KIND, &config) {
            return (outcome, true);
        }
        let outcome = run_aggregate(cfg);
        store_cached_aggregate(
            dir,
            &path,
            &AggregateCacheEntry {
                kind: KIND.to_string(),
                config,
                outcome: outcome.clone(),
            },
        );
        (outcome, false)
    }

    /// Run a QBone figure's grid (`rates × depths`) through this runner.
    pub fn qbone_sweep(
        &self,
        base: &QboneConfig,
        rates: &[u64],
        depths: &[u32],
        label: impl Into<String>,
    ) -> SweepResult {
        let jobs = grid_jobs(rates, depths, |rate, depth| {
            let mut cfg = base.clone();
            cfg.profile = EfProfile::new(rate, depth);
            Job::Qbone(cfg)
        });
        self.collect_sweep(jobs, rates, depths, label)
    }

    /// Run a local-testbed grid through this runner.
    pub fn local_sweep(
        &self,
        base: &LocalConfig,
        rates: &[u64],
        depths: &[u32],
        label: impl Into<String>,
    ) -> SweepResult {
        let jobs = grid_jobs(rates, depths, |rate, depth| {
            let mut cfg = base.clone();
            cfg.profile = EfProfile::new(rate, depth);
            Job::Local(cfg)
        });
        self.collect_sweep(jobs, rates, depths, label)
    }

    fn collect_sweep(
        &self,
        jobs: Vec<Job>,
        rates: &[u64],
        depths: &[u32],
        label: impl Into<String>,
    ) -> SweepResult {
        let outcomes = self.run(&jobs);
        let points = depths
            .iter()
            .flat_map(|&depth| rates.iter().map(move |&rate| (rate, depth)))
            .zip(outcomes)
            .map(
                |((token_rate_bps, bucket_depth_bytes), outcome)| SweepPoint {
                    token_rate_bps,
                    bucket_depth_bytes,
                    outcome,
                },
            )
            .collect();
        SweepResult {
            label: label.into(),
            points,
        }
    }

    /// Run a batch of QBone configurations, outcomes in input order.
    pub fn run_qbone_batch(&self, cfgs: &[QboneConfig]) -> Vec<RunOutcome> {
        let jobs: Vec<Job> = cfgs.iter().cloned().map(Job::Qbone).collect();
        self.run(&jobs)
    }

    /// Run a batch of local-testbed configurations, outcomes in input order.
    pub fn run_local_batch(&self, cfgs: &[LocalConfig]) -> Vec<RunOutcome> {
        let jobs: Vec<Job> = cfgs.iter().cloned().map(Job::Local).collect();
        self.run(&jobs)
    }

    /// Run a batch of AF configurations, outcomes in input order.
    pub fn run_af_batch(&self, cfgs: &[AfConfig]) -> Vec<RunOutcome> {
        let jobs: Vec<Job> = cfgs.iter().cloned().map(Job::Af).collect();
        self.run(&jobs)
    }
}

/// Build the depth-major job grid (the order `SweepResult` documents).
fn grid_jobs(rates: &[u64], depths: &[u32], mut make: impl FnMut(u64, u32) -> Job) -> Vec<Job> {
    let mut jobs = Vec::with_capacity(rates.len() * depths.len());
    for &depth in depths {
        for &rate in rates {
            jobs.push(make(rate, depth));
        }
    }
    jobs
}

/// Read `path` and run `parse` over its contents, re-reading once if the
/// first attempt does not yield a value.
///
/// `store_cached` publishes entries with a tmp-file write + rename, which
/// is atomic on POSIX — but when *another process* is recomputing the
/// same grid (two figure binaries sharing `results/cache/`), some
/// filesystems (overlay and network mounts in particular) expose a window
/// where a read racing the rename returns truncated or stale bytes. Every
/// writer of a given path serializes the same pure-function outcome, so
/// the content is never wrong, only possibly torn; one re-read after a
/// failed parse (or a guard mismatch) lands after the rename and
/// recovers the entry. A second failure means a genuinely absent or
/// corrupt entry, which degrades to recomputation as before.
fn retry_torn_read<T>(path: &Path, parse: impl Fn(&str) -> Option<T>) -> Option<T> {
    for attempt in 0..2 {
        // A missing file is a plain cache miss: nothing to retry.
        let text = fs::read_to_string(path).ok()?;
        if let Some(v) = parse(&text) {
            return Some(v);
        }
        if attempt == 0 {
            std::thread::yield_now();
        }
    }
    None
}

/// Load a cache entry if it exists *and* addresses exactly this config.
fn load_cached(path: &Path, kind: &str, config: &str) -> Option<RunOutcome> {
    retry_torn_read(path, |text| {
        let entry: CacheEntry = serde_json::from_str(text).ok()?;
        (entry.kind == kind && entry.config == config).then_some(entry.outcome)
    })
}

/// Persist a cache entry atomically (tmp file + rename), best-effort:
/// a read-only results directory degrades to "no cache", not a panic.
fn store_cached(dir: &Path, path: &Path, entry: &CacheEntry) {
    static TMP_SEQ: AtomicU64 = AtomicU64::new(0);
    if fs::create_dir_all(dir).is_err() {
        return;
    }
    let json = serde_json::to_string_pretty(entry).expect("cache entry serializes");
    let tmp = dir.join(format!(
        ".tmp-{}-{}",
        std::process::id(),
        TMP_SEQ.fetch_add(1, Ordering::Relaxed)
    ));
    if fs::write(&tmp, json).is_ok() && fs::rename(&tmp, path).is_err() {
        let _ = fs::remove_file(&tmp);
    }
}

/// Load an aggregate cache entry if it addresses exactly this config.
fn load_cached_aggregate(path: &Path, kind: &str, config: &str) -> Option<AggregateOutcome> {
    retry_torn_read(path, |text| {
        let entry: AggregateCacheEntry = serde_json::from_str(text).ok()?;
        (entry.kind == kind && entry.config == config).then_some(entry.outcome)
    })
}

/// Persist an aggregate cache entry atomically, best-effort.
fn store_cached_aggregate(dir: &Path, path: &Path, entry: &AggregateCacheEntry) {
    static TMP_SEQ: AtomicU64 = AtomicU64::new(0);
    if fs::create_dir_all(dir).is_err() {
        return;
    }
    let json = serde_json::to_string_pretty(entry).expect("cache entry serializes");
    let tmp = dir.join(format!(
        ".tmp-agg-{}-{}",
        std::process::id(),
        TMP_SEQ.fetch_add(1, Ordering::Relaxed)
    ));
    if fs::write(&tmp, json).is_ok() && fs::rename(&tmp, path).is_err() {
        let _ = fs::remove_file(&tmp);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::experiment::{DEPTH_2MTU, DEPTH_3MTU};
    use crate::qbone::ClipId2;

    fn tiny_base() -> QboneConfig {
        QboneConfig::new(
            ClipId2::Lost,
            1_000_000,
            EfProfile::new(1_000_000, DEPTH_2MTU),
        )
    }

    #[test]
    fn parallel_matches_serial_exactly() {
        let base = tiny_base();
        let rates = [900_000u64, 1_400_000];
        let depths = [DEPTH_2MTU, DEPTH_3MTU];
        let serial = Runner::serial().qbone_sweep(&base, &rates, &depths, "d");
        let parallel = Runner::serial()
            .with_threads(4)
            .qbone_sweep(&base, &rates, &depths, "d");
        assert_eq!(
            serde_json::to_string(&serial).unwrap(),
            serde_json::to_string(&parallel).unwrap()
        );
    }

    #[test]
    fn cache_round_trips_and_guards_config() {
        let dir = std::env::temp_dir().join(format!("dsv-runner-test-{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        let runner = Runner::serial().with_cache(Some(dir.clone()));
        let job = Job::Qbone(tiny_base());
        let (cold, hit0) = runner.run_one(&job);
        assert!(!hit0, "first run must be a miss");
        let (warm, hit1) = runner.run_one(&job);
        assert!(hit1, "second run must hit");
        assert_eq!(
            serde_json::to_string(&cold).unwrap(),
            serde_json::to_string(&warm).unwrap()
        );
        // A different profile is a different address: no false hit.
        let mut other = tiny_base();
        other.profile = EfProfile::new(1_100_000, DEPTH_3MTU);
        let (_, hit2) = runner.run_one(&Job::Qbone(other));
        assert!(!hit2, "changed config must miss");
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn corrupt_cache_entries_fall_back_to_execution() {
        let dir = std::env::temp_dir().join(format!("dsv-runner-corrupt-{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        fs::create_dir_all(&dir).unwrap();
        let runner = Runner::serial().with_cache(Some(dir.clone()));
        let job = Job::Qbone(tiny_base());
        // Poison the exact cache path this job addresses.
        let path = Runner::cache_path(&dir, job.kind(), &job.cache_json());
        fs::write(&path, "{not json").unwrap();
        let (_, hit) = runner.run_one(&job);
        assert!(!hit, "corrupt entry must not count as a hit");
        // And it must have been repaired in place.
        let (_, hit2) = runner.run_one(&job);
        assert!(hit2, "repaired entry hits");
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn torn_reads_are_retried_exactly_once() {
        let dir = std::env::temp_dir().join(format!("dsv-runner-torn-{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        fs::create_dir_all(&dir).unwrap();
        let path = dir.join("entry.json");
        fs::write(&path, "payload").unwrap();

        // A parse that fails once (as if racing a rename) succeeds on the
        // re-read.
        let calls = std::cell::Cell::new(0usize);
        let got = retry_torn_read(&path, |text| {
            calls.set(calls.get() + 1);
            (calls.get() == 2).then(|| text.to_string())
        });
        assert_eq!(got.as_deref(), Some("payload"));
        assert_eq!(calls.get(), 2);

        // A persistently bad entry is read twice, no more.
        let calls = std::cell::Cell::new(0usize);
        let got: Option<()> = retry_torn_read(&path, |_| {
            calls.set(calls.get() + 1);
            None
        });
        assert_eq!(got, None);
        assert_eq!(calls.get(), 2);

        // A missing file is a plain miss: zero parse attempts, no retry.
        let calls = std::cell::Cell::new(0usize);
        let got: Option<()> = retry_torn_read(&dir.join("absent.json"), |_| {
            calls.set(calls.get() + 1);
            Some(())
        });
        assert_eq!(got, None);
        assert_eq!(calls.get(), 0);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn concurrent_writers_never_corrupt_a_read() {
        // Several "processes" recomputing the same point store the same
        // entry while readers poll it: every successful load must return
        // the one true outcome, and failed loads only mean "miss".
        let dir = std::env::temp_dir().join(format!("dsv-runner-race-{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        let job = Job::Qbone(tiny_base());
        let config = job.cache_json();
        let path = Runner::cache_path(&dir, job.kind(), &config);
        let entry = CacheEntry {
            kind: job.kind().to_string(),
            config: config.clone(),
            outcome: job.execute(),
        };
        let expected = serde_json::to_string(&entry.outcome).unwrap();
        std::thread::scope(|scope| {
            for _ in 0..3 {
                scope.spawn(|| {
                    for _ in 0..40 {
                        store_cached(&dir, &path, &entry);
                    }
                });
            }
            for _ in 0..3 {
                scope.spawn(|| {
                    let mut hits = 0usize;
                    for _ in 0..200 {
                        if let Some(outcome) = load_cached(&path, job.kind(), &config) {
                            assert_eq!(serde_json::to_string(&outcome).unwrap(), expected);
                            hits += 1;
                        }
                    }
                    // By the end the entry is durably published.
                    assert!(
                        load_cached(&path, job.kind(), &config).is_some() || hits > 0,
                        "entry should become visible to readers"
                    );
                });
            }
        });
        // No temp files leak from the racing writers.
        let leftovers: Vec<_> = fs::read_dir(&dir)
            .unwrap()
            .filter_map(|e| e.ok())
            .filter(|e| e.file_name().to_string_lossy().starts_with(".tmp-"))
            .collect();
        assert!(leftovers.is_empty(), "stray temp files: {leftovers:?}");
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn thread_count_env_policy_warns_and_defaults() {
        // `from_env` routes DSV_THREADS through the shared dsv-sim parser:
        // valid values apply, garbage falls back to the default (with a
        // stderr warning) instead of being silently ignored.
        let default_threads = Runner::default().threads;
        std::env::set_var("DSV_THREADS", "3");
        assert_eq!(Runner::from_env().threads, 3);
        std::env::set_var("DSV_THREADS", "0");
        assert_eq!(Runner::from_env().threads, default_threads);
        std::env::set_var("DSV_THREADS", "many");
        assert_eq!(Runner::from_env().threads, default_threads);
        std::env::remove_var("DSV_THREADS");
        assert_eq!(Runner::from_env().threads, default_threads);
    }

    #[test]
    fn progress_eta_is_sane_on_edge_cases() {
        // Before any point lands there is no rate to extrapolate from:
        // no ETA rather than `total / ε` nonsense.
        let (rate, eta) = throughput_eta(0, 100, 0.0);
        assert_eq!(rate, 0.0);
        assert_eq!(eta, None);
        // An instantly-cached grid (elapsed ≈ 0) must stay finite.
        let (rate, eta) = throughput_eta(100, 100, 0.0);
        assert!(rate.is_finite() && rate > 0.0);
        assert_eq!(eta, Some(0.0));
        // Normal mid-flight estimate: 10 done in 5 s, 30 to go → 15 s.
        let (rate, eta) = throughput_eta(10, 40, 5.0);
        assert!((rate - 2.0).abs() < 1e-12);
        assert!((eta.unwrap() - 15.0).abs() < 1e-12);
        // done > total (caller bug or re-counted cache hits) saturates
        // to zero remaining rather than going negative.
        let (_, eta) = throughput_eta(5, 3, 1.0);
        assert_eq!(eta, Some(0.0));
    }

    #[test]
    fn empty_grid_produces_no_output_and_no_panic() {
        // An empty job list returns early: no progress line, no division
        // by the zero elapsed time, just an empty result.
        let out = Runner::serial().with_progress(true).run(&[]);
        assert!(out.is_empty());
    }

    #[test]
    fn fnv_matches_reference_values() {
        // Published FNV-1a 64 test vectors.
        assert_eq!(fnv1a64(b""), 0xcbf2_9ce4_8422_2325);
        assert_eq!(fnv1a64(b"a"), 0xaf63_dc4c_8601_ec8c);
        assert_eq!(fnv1a64(b"foobar"), 0x85944171f73967e8);
    }
}
