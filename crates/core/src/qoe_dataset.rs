//! The QoE proxy's training/validation dataset: flow features paired
//! with full-VQM truth over the committed experiment grids.
//!
//! The [`ProxyModel`](dsv_vqm::qoe::ProxyModel) is fit offline (the
//! `fit_qoe` bench binary) against `results/findings_qoe_proxy.json`,
//! whose points this module defines and generates. The grids mirror the
//! committed figures — the same QBone, vs-best, local, AF and aggregate
//! configurations the paper's plots commit — so the bounded error the
//! `qoe_proxy` golden suite asserts is measured exactly on the
//! population the proxy is meant to stand in for.
//!
//! Same staleness contract as [`crate::golden`]: the file carries an
//! FNV-1a checksum over every generating config, and a mismatch panics
//! loudly instead of validating against a stale population. Generation
//! runs full simulations (features are never cached), so — unlike the
//! cheap goldens — regeneration goes through the **release** `fit_qoe`
//! binary, not `DSV_REGEN=1` under `cargo test`.

use std::fs;
use std::path::PathBuf;

use dsv_net::features::FlowFeatures;
use serde::{Deserialize, Serialize};

use crate::af::{run_af_detailed, AfConfig};
use crate::aggregate::{run_aggregate_detailed, AggregateConfig};
use crate::experiment::{EfProfile, DEPTH_2MTU, DEPTH_3MTU};
use crate::keys::fnv1a64;
use crate::local::{run_local_detailed, LocalConfig, LocalTransport};
use crate::qbone::{run_qbone_detailed, ClipId2, QboneConfig};
use crate::qoe::{force_mode, QoeMode};

/// One dataset record: a flow's extracted features and its full-VQM
/// truth.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct DatasetPoint {
    /// Event-path features of the delivered flow.
    pub features: FlowFeatures,
    /// Full-VQM quality against the same-encoding reference.
    pub quality: f64,
    /// Full-VQM quality against the 1.7 Mbps reference, when scored.
    pub quality_vs_best: Option<f64>,
}

/// One committed grid's worth of records.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct DatasetGrid {
    /// Which committed grid the points mirror.
    pub label: String,
    /// One record per flow, in config (and flow-label) order.
    pub points: Vec<DatasetPoint>,
}

/// On-disk format of the dataset (checksum rules as [`crate::golden`]).
#[derive(Debug, Serialize, Deserialize)]
pub struct QoeDataset {
    /// FNV-1a (hex) over the generating configs' kinds + config JSON.
    pub config_fnv: String,
    /// Total records across all grids (redundant, kept for diffs).
    pub points: usize,
    /// Per-grid records, in [`dataset_grids`] order.
    pub grids: Vec<DatasetGrid>,
}

/// A config whose detailed run contributes records to the dataset.
#[derive(Debug, Clone)]
pub enum DatasetConfig {
    /// A QBone point (one flow).
    Qbone(QboneConfig),
    /// A local-testbed point (one flow).
    Local(LocalConfig),
    /// An AF point (one flow).
    Af(AfConfig),
    /// An aggregate point (N flows, N records).
    Aggregate(AggregateConfig),
}

impl DatasetConfig {
    /// Cache-style kind tag (part of the checksum).
    pub fn kind(&self) -> &'static str {
        match self {
            DatasetConfig::Qbone(_) => "qbone",
            DatasetConfig::Local(_) => "local",
            DatasetConfig::Af(_) => "af",
            DatasetConfig::Aggregate(_) => "aggregate",
        }
    }

    /// Canonical JSON of the configuration (checksum input).
    pub fn config_json(&self) -> String {
        match self {
            DatasetConfig::Qbone(cfg) => serde_json::to_string(cfg),
            DatasetConfig::Local(cfg) => serde_json::to_string(cfg),
            DatasetConfig::Af(cfg) => serde_json::to_string(cfg),
            DatasetConfig::Aggregate(cfg) => serde_json::to_string(cfg),
        }
        .expect("config serializes")
    }

    /// Simulate the config and collect its records. Truth must come from
    /// the reference estimator — the caller wraps the batch in one
    /// `qoe::force_mode(QoeMode::Full)` scope (a per-call guard here
    /// would serialize parallel workers on the override lock).
    ///
    /// # Panics
    /// Panics unless the active QoE mode is full VQM.
    pub fn collect(&self) -> Vec<DatasetPoint> {
        assert_eq!(
            crate::qoe::mode(),
            QoeMode::Full,
            "dataset truth requires full VQM; wrap in qoe::force_mode(QoeMode::Full)"
        );
        match self {
            DatasetConfig::Qbone(cfg) => {
                let (out, report) = run_qbone_detailed(cfg);
                vec![DatasetPoint {
                    features: report.features,
                    quality: out.quality,
                    quality_vs_best: out.quality_vs_best,
                }]
            }
            DatasetConfig::Local(cfg) => {
                let (out, report) = run_local_detailed(cfg);
                vec![DatasetPoint {
                    features: report.features,
                    quality: out.quality,
                    quality_vs_best: out.quality_vs_best,
                }]
            }
            DatasetConfig::Af(cfg) => {
                let (out, report) = run_af_detailed(cfg);
                vec![DatasetPoint {
                    features: report.features,
                    quality: out.quality,
                    quality_vs_best: out.quality_vs_best,
                }]
            }
            DatasetConfig::Aggregate(cfg) => {
                let (outs, reports) = run_aggregate_detailed(cfg);
                outs.per_flow
                    .into_iter()
                    .zip(reports)
                    .map(|(out, report)| DatasetPoint {
                        features: report.features,
                        quality: out.quality,
                        quality_vs_best: out.quality_vs_best,
                    })
                    .collect()
            }
        }
    }
}

/// Token-rate grid of the QBone figures (same formula as the bench
/// crate's `qbone_grid`): 0.88×…1.45× the encoding rate, 12 points.
fn qbone_rates(encoding_bps: u64) -> Vec<u64> {
    (0..12)
        .map(|i| (encoding_bps as f64 * (0.88 + 0.052 * i as f64)) as u64)
        .collect()
}

/// The dataset's grids, mirroring the committed figures (fig07–13, 15,
/// 16, and the AF ablation). Order is load-bearing: the checksum and the
/// on-disk grid order both follow it.
pub fn dataset_grids() -> Vec<(String, Vec<DatasetConfig>)> {
    let mut grids = Vec::new();

    // Figures 07–12: Lost and Dark, three encodings, 12 rates × 2 depths.
    for clip in [ClipId2::Lost, ClipId2::Dark] {
        for enc in [1_700_000u64, 1_500_000, 1_000_000] {
            let mut cfgs = Vec::new();
            for &depth in &[DEPTH_2MTU, DEPTH_3MTU] {
                for rate in qbone_rates(enc) {
                    cfgs.push(DatasetConfig::Qbone(QboneConfig::new(
                        clip,
                        enc,
                        EfProfile::new(rate, depth),
                    )));
                }
            }
            grids.push((format!("qbone_{clip:?}_{}k", enc / 1000), cfgs));
        }
    }

    // Figure 13: relative quality against the 1.7 Mbps reference.
    let mut vs_best = Vec::new();
    for clip in [ClipId2::Lost, ClipId2::Dark] {
        for enc in [1_000_000u64, 1_500_000, 1_700_000] {
            for i in 0..10u64 {
                let rate = 1_000_000 + i * 150_000;
                let mut cfg = QboneConfig::new(clip, enc, EfProfile::new(rate, DEPTH_3MTU));
                cfg.score_vs_best = true;
                vs_best.push(DatasetConfig::Qbone(cfg));
            }
        }
    }
    grids.push(("qbone_vs_best".to_string(), vs_best));

    // Figure 15: the local testbed's four transport variants.
    for (tag, transport, shaped) in [
        ("udp_unshaped", LocalTransport::Udp, false),
        ("udp_shaped", LocalTransport::Udp, true),
        ("tcp", LocalTransport::Tcp, false),
        ("tcp_shaped", LocalTransport::Tcp, true),
    ] {
        let mut cfgs = Vec::new();
        for &depth in &[DEPTH_2MTU, DEPTH_3MTU] {
            for i in 0..10u64 {
                let rate = 700_000 + i * 150_000;
                let mut cfg =
                    LocalConfig::new(ClipId2::Lost, EfProfile::new(rate, depth), transport);
                cfg.shaped = shaped;
                cfgs.push(DatasetConfig::Local(cfg));
            }
        }
        grids.push((format!("local_{tag}"), cfgs));
    }

    // AF PHB ablation: quality vs in-profile cross-traffic load.
    let af = [
        (0u64, 0u64),
        (1_000_000, 500_000),
        (3_000_000, 2_000_000),
        (5_000_000, 3_500_000),
        (7_000_000, 5_000_000),
        (9_000_000, 6_500_000),
    ]
    .iter()
    .map(|&(load, cir)| {
        let mut cfg = AfConfig::new(ClipId2::Lost, 1_500_000, load);
        cfg.cross_cir_bps = cir;
        DatasetConfig::Af(cfg)
    })
    .collect();
    grids.push(("af_phb".to_string(), af));

    // Figure 16 subset: multi-flow aggregates (per-flow records).
    let mut agg = Vec::new();
    for &n in &[2u32, 4] {
        for &frac in &[0.9f64, 1.1, 1.4] {
            let rate = (1_000_000.0 * n as f64 * frac) as u64;
            agg.push(DatasetConfig::Aggregate(AggregateConfig::new(
                ClipId2::Lost,
                1_000_000,
                n,
                EfProfile::new(rate, DEPTH_3MTU),
            )));
        }
    }
    grids.push(("aggregate".to_string(), agg));

    grids
}

/// Checksum over every generating config, grid labels included (the
/// same kind + config-JSON content addressing as [`crate::golden`]).
pub fn dataset_fnv(grids: &[(String, Vec<DatasetConfig>)]) -> String {
    let mut bytes = Vec::new();
    for (label, cfgs) in grids {
        bytes.extend_from_slice(label.as_bytes());
        bytes.push(0xfe);
        for cfg in cfgs {
            bytes.extend_from_slice(cfg.kind().as_bytes());
            bytes.push(0);
            bytes.extend_from_slice(cfg.config_json().as_bytes());
            bytes.push(0xff);
        }
    }
    format!("{:016x}", fnv1a64(&bytes))
}

/// Where the committed dataset lives.
pub fn dataset_path() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../../results/findings_qoe_proxy.json")
}

/// Load the committed dataset, validating its checksum against today's
/// grid definitions.
///
/// # Panics
/// Panics if the file is missing, unreadable, or was generated from
/// different configs — regenerate with
/// `cargo run --release -p dsv-bench --bin fit_qoe`.
pub fn load() -> QoeDataset {
    let path = dataset_path();
    let sum = dataset_fnv(&dataset_grids());
    let text = fs::read_to_string(&path).unwrap_or_else(|e| {
        panic!(
            "QoE dataset {} is missing/unreadable ({e}); regenerate with \
             `cargo run --release -p dsv-bench --bin fit_qoe`",
            path.display()
        )
    });
    let file: QoeDataset = serde_json::from_str(&text).unwrap_or_else(|e| {
        panic!(
            "QoE dataset {} does not parse ({e}); regenerate with \
             `cargo run --release -p dsv-bench --bin fit_qoe`",
            path.display()
        )
    });
    assert_eq!(
        file.config_fnv,
        sum,
        "stale QoE dataset {}: generated from different configurations \
         (checksum {} on disk, {} expected). Regenerate with \
         `cargo run --release -p dsv-bench --bin fit_qoe` and refit.",
        path.display(),
        file.config_fnv,
        sum
    );
    file
}

/// Generate the dataset by simulating every grid (full VQM truth) and
/// write it to [`dataset_path`] atomically. Returns the fresh dataset.
/// Expensive — run from the release `fit_qoe` binary. Parallel over
/// configs (`DSV_THREADS` respected); output order is config order
/// regardless of completion order.
pub fn generate() -> QoeDataset {
    // One scope for the whole batch: truth is full VQM whatever DSV_QOE
    // says, and workers only take the brief mode() read lock.
    let _full = force_mode(QoeMode::Full);
    let grids = dataset_grids();
    let sum = dataset_fnv(&grids);
    let threads = dsv_sim::env::count_from_env(
        "DSV_THREADS",
        std::thread::available_parallelism().map_or(1, |n| n.get()),
    )
    .max(1);
    let out: Vec<DatasetGrid> = grids
        .iter()
        .map(|(label, cfgs)| {
            let results: Vec<std::sync::Mutex<Vec<DatasetPoint>>> = cfgs
                .iter()
                .map(|_| std::sync::Mutex::new(Vec::new()))
                .collect();
            let next = std::sync::atomic::AtomicUsize::new(0);
            std::thread::scope(|scope| {
                for _ in 0..threads.min(cfgs.len()) {
                    scope.spawn(|| loop {
                        let i = next.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
                        let Some(cfg) = cfgs.get(i) else { break };
                        *results[i].lock().expect("dataset slot poisoned") = cfg.collect();
                    });
                }
            });
            let points: Vec<DatasetPoint> = results
                .into_iter()
                .flat_map(|slot| slot.into_inner().expect("dataset slot poisoned"))
                .collect();
            eprintln!("[fit_qoe] grid {label}: {} points", points.len());
            DatasetGrid {
                label: label.clone(),
                points,
            }
        })
        .collect();
    let file = QoeDataset {
        config_fnv: sum,
        points: out.iter().map(|g| g.points.len()).sum(),
        grids: out,
    };
    let path = dataset_path();
    if let Some(parent) = path.parent() {
        let _ = fs::create_dir_all(parent);
    }
    let text = serde_json::to_string_pretty(&file).expect("dataset serializes");
    let tmp = path.with_extension("json.tmp");
    fs::write(&tmp, &text).expect("write dataset temp file");
    fs::rename(&tmp, &path).expect("publish dataset file");
    file
}

/// Per-grid mean absolute error of a proxy against the dataset's truth:
/// `(label, mae_same, mae_vs_best)` — the vs-best column is `None` for
/// grids that never scored a cross reference.
pub fn proxy_grid_maes(
    data: &QoeDataset,
    model: &dsv_vqm::qoe::ProxyModel,
) -> Vec<(String, f64, Option<f64>)> {
    data.grids
        .iter()
        .map(|grid| {
            let mut same_sum = 0.0;
            let mut best_sum = 0.0;
            let mut best_n = 0usize;
            for p in &grid.points {
                same_sum += (model.predict_same(&p.features) - p.quality).abs();
                if let Some(truth) = p.quality_vs_best {
                    best_sum += (model.predict_vs_best(&p.features) - truth).abs();
                    best_n += 1;
                }
            }
            let n = grid.points.len().max(1) as f64;
            (
                grid.label.clone(),
                same_sum / n,
                (best_n > 0).then(|| best_sum / best_n as f64),
            )
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn grid_definitions_are_stable() {
        let grids = dataset_grids();
        let labels: Vec<&str> = grids.iter().map(|(l, _)| l.as_str()).collect();
        assert_eq!(
            labels,
            [
                "qbone_Lost_1700k",
                "qbone_Lost_1500k",
                "qbone_Lost_1000k",
                "qbone_Dark_1700k",
                "qbone_Dark_1500k",
                "qbone_Dark_1000k",
                "qbone_vs_best",
                "local_udp_unshaped",
                "local_udp_shaped",
                "local_tcp",
                "local_tcp_shaped",
                "af_phb",
                "aggregate",
            ]
        );
        let sims: usize = grids.iter().map(|(_, c)| c.len()).sum();
        assert_eq!(sims, 6 * 24 + 60 + 4 * 20 + 6 + 6, "296 simulations");
        // The checksum is a pure function of the definitions.
        assert_eq!(dataset_fnv(&grids), dataset_fnv(&dataset_grids()));
    }

    #[test]
    fn checksum_tracks_configuration() {
        let mut grids = dataset_grids();
        let base = dataset_fnv(&grids);
        if let DatasetConfig::Qbone(cfg) = &mut grids[0].1[0] {
            cfg.encoding_bps += 1;
        }
        assert_ne!(dataset_fnv(&grids), base);
    }
}
