//! Golden-backed experiment results for the paper-finding tests.
//!
//! The paper-finding tests assert qualitative claims (monotonicity,
//! crossings, cutoffs) over grids of simulation runs. Re-simulating the
//! grids on every `cargo test` made the suite's cold-cache cost dominate
//! CI; [`golden_outcomes`] instead loads a committed `results/<name>.json`
//! when one exists and only re-simulates when
//!
//! * the file is missing (first run — the file is then written), or
//! * `DSV_REGEN=1` is set (explicit regeneration), or
//! * never silently: if the committed file was generated from *different*
//!   job configurations than the test now requests, the checksum guard
//!   fails loudly instead of returning stale outcomes.
//!
//! The checksum is FNV-1a over every job's `(kind, canonical config
//! JSON)` — the same content-addressing the runner's cache uses — so any
//! change to a tested configuration (grid points, seeds, profiles)
//! invalidates the golden by construction.

use std::fs;
use std::path::PathBuf;

use serde::{Deserialize, Serialize};

use crate::aggregate::{AggregateConfig, AggregateOutcome};
use crate::experiment::{EfProfile, RunOutcome};
use crate::flows::FlowsOutcome;
use crate::keys::fnv1a64;
use crate::local::LocalConfig;
use crate::qbone::QboneConfig;
use crate::runner::{FlowJob, Job, Runner};
use crate::sweep::{SweepPoint, SweepResult};

/// On-disk format of a golden results file.
#[derive(Debug, Serialize, Deserialize)]
struct GoldenFile {
    /// FNV-1a (hex) over the generating jobs' kinds + config JSON.
    config_fnv: String,
    /// Number of jobs (redundant with `outcomes.len()`, kept for diffs).
    jobs: usize,
    /// One outcome per job, in job order.
    outcomes: Vec<RunOutcome>,
}

fn results_dir() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../../results")
}

fn regen_requested() -> bool {
    matches!(
        std::env::var("DSV_REGEN").ok().as_deref(),
        Some("1") | Some("true") | Some("on")
    )
}

/// Checksum over the jobs that generate a golden file.
fn jobs_fnv(jobs: &[Job]) -> String {
    let mut bytes = Vec::new();
    for job in jobs {
        bytes.extend_from_slice(job.kind().as_bytes());
        bytes.push(0);
        bytes.extend_from_slice(job.config_json().as_bytes());
        bytes.push(0xff);
    }
    format!("{:016x}", fnv1a64(&bytes))
}

/// Outcomes for `jobs`, loaded from `results/<name>.json` when the
/// committed golden matches, otherwise simulated (and the golden
/// rewritten). See module docs for the exact rules.
///
/// # Panics
/// Panics if the committed golden was generated from different job
/// configurations (stale golden) or cannot be parsed — both cases need a
/// deliberate `DSV_REGEN=1` rerun, never a silent re-bless.
pub fn golden_outcomes(name: &str, jobs: &[Job]) -> Vec<RunOutcome> {
    let path = results_dir().join(format!("{name}.json"));
    let sum = jobs_fnv(jobs);

    if !regen_requested() {
        if let Ok(text) = fs::read_to_string(&path) {
            let file: GoldenFile = serde_json::from_str(&text).unwrap_or_else(|e| {
                panic!(
                    "golden {} is unreadable ({e}); regenerate with DSV_REGEN=1",
                    path.display()
                )
            });
            assert_eq!(
                file.config_fnv,
                sum,
                "stale golden {}: it was generated from different job \
                 configurations (checksum {} on disk, {} expected). The tested \
                 grid changed — rerun with DSV_REGEN=1 and commit the result.",
                path.display(),
                file.config_fnv,
                sum
            );
            assert_eq!(
                file.outcomes.len(),
                jobs.len(),
                "golden {}: outcome count mismatch despite matching checksum",
                path.display()
            );
            return file.outcomes;
        }
    }

    let outcomes = Runner::from_env().run(jobs);
    let file = GoldenFile {
        config_fnv: sum,
        jobs: jobs.len(),
        outcomes: outcomes.clone(),
    };
    let text = serde_json::to_string_pretty(&file).expect("golden serializes");
    if let Some(parent) = path.parent() {
        let _ = fs::create_dir_all(parent);
    }
    // Atomic replace so a parallel reader never sees a half-written file.
    let tmp = path.with_extension("json.tmp");
    fs::write(&tmp, &text).expect("write golden temp file");
    fs::rename(&tmp, &path).expect("publish golden file");
    outcomes
}

/// Assemble sweep points from outcomes in the runner's (depth-major)
/// grid order — the same zip [`crate::runner::Runner::qbone_sweep`] uses.
fn assemble_sweep(
    outcomes: Vec<RunOutcome>,
    rates: &[u64],
    depths: &[u32],
    label: &str,
) -> SweepResult {
    let points = depths
        .iter()
        .flat_map(|&depth| rates.iter().map(move |&rate| (rate, depth)))
        .zip(outcomes)
        .map(
            |((token_rate_bps, bucket_depth_bytes), outcome)| SweepPoint {
                token_rate_bps,
                bucket_depth_bytes,
                outcome,
            },
        )
        .collect();
    SweepResult {
        label: label.to_string(),
        points,
    }
}

/// A golden-backed QBone sweep: the same `rates × depths` grid
/// [`crate::sweep::qbone_sweep`] runs, with outcomes served through
/// [`golden_outcomes`] under the same staleness rules.
pub fn golden_qbone_sweep(
    name: &str,
    base: &QboneConfig,
    rates: &[u64],
    depths: &[u32],
    label: &str,
) -> SweepResult {
    let mut jobs = Vec::with_capacity(rates.len() * depths.len());
    for &depth in depths {
        for &rate in rates {
            let mut cfg = base.clone();
            cfg.profile = EfProfile::new(rate, depth);
            jobs.push(Job::Qbone(cfg));
        }
    }
    assemble_sweep(golden_outcomes(name, &jobs), rates, depths, label)
}

/// A golden-backed local-testbed sweep (see [`golden_qbone_sweep`]).
pub fn golden_local_sweep(
    name: &str,
    base: &LocalConfig,
    rates: &[u64],
    depths: &[u32],
    label: &str,
) -> SweepResult {
    let mut jobs = Vec::with_capacity(rates.len() * depths.len());
    for &depth in depths {
        for &rate in rates {
            let mut cfg = base.clone();
            cfg.profile = EfProfile::new(rate, depth);
            jobs.push(Job::Local(cfg));
        }
    }
    assemble_sweep(golden_outcomes(name, &jobs), rates, depths, label)
}

/// On-disk format of a golden aggregate-sweep file (same rules as
/// [`GoldenFile`], different outcome shape).
#[derive(Debug, Serialize, Deserialize)]
struct GoldenAggregateFile {
    /// FNV-1a (hex) over the generating configs' canonical JSON.
    config_fnv: String,
    /// Number of configs.
    jobs: usize,
    /// One aggregate outcome per config, in config order.
    outcomes: Vec<AggregateOutcome>,
}

/// Checksum over the aggregate configs that generate a golden file.
fn aggregate_fnv(cfgs: &[AggregateConfig]) -> String {
    let mut bytes = Vec::new();
    for cfg in cfgs {
        bytes.extend_from_slice(b"aggregate");
        bytes.push(0);
        let json = serde_json::to_string(cfg).expect("config serializes");
        bytes.extend_from_slice(json.as_bytes());
        bytes.push(0xff);
    }
    format!("{:016x}", fnv1a64(&bytes))
}

/// Golden-backed EF-aggregate outcomes: the multi-flow analogue of
/// [`golden_outcomes`], with the same load-else-simulate and staleness
/// rules over `results/<name>.json`.
///
/// # Panics
/// Panics on a stale or unreadable golden — regenerate deliberately with
/// `DSV_REGEN=1`.
pub fn golden_aggregate(name: &str, cfgs: &[AggregateConfig]) -> Vec<AggregateOutcome> {
    let path = results_dir().join(format!("{name}.json"));
    let sum = aggregate_fnv(cfgs);

    if !regen_requested() {
        if let Ok(text) = fs::read_to_string(&path) {
            let file: GoldenAggregateFile = serde_json::from_str(&text).unwrap_or_else(|e| {
                panic!(
                    "golden {} is unreadable ({e}); regenerate with DSV_REGEN=1",
                    path.display()
                )
            });
            assert_eq!(
                file.config_fnv,
                sum,
                "stale golden {}: it was generated from different aggregate \
                 configurations (checksum {} on disk, {} expected). The tested \
                 grid changed — rerun with DSV_REGEN=1 and commit the result.",
                path.display(),
                file.config_fnv,
                sum
            );
            assert_eq!(
                file.outcomes.len(),
                cfgs.len(),
                "golden {}: outcome count mismatch despite matching checksum",
                path.display()
            );
            return file.outcomes;
        }
    }

    let outcomes = Runner::from_env().run_aggregate_batch(cfgs);
    let file = GoldenAggregateFile {
        config_fnv: sum,
        jobs: cfgs.len(),
        outcomes: outcomes.clone(),
    };
    let text = serde_json::to_string_pretty(&file).expect("golden serializes");
    if let Some(parent) = path.parent() {
        let _ = fs::create_dir_all(parent);
    }
    let tmp = path.with_extension("json.tmp");
    fs::write(&tmp, &text).expect("write golden temp file");
    fs::rename(&tmp, &path).expect("publish golden file");
    outcomes
}

/// On-disk format of a golden transport-run file (same rules as
/// [`GoldenFile`], per-flow outcome shape).
#[derive(Debug, Serialize, Deserialize)]
struct GoldenFlowsFile {
    /// FNV-1a (hex) over the generating jobs' kinds + config JSON.
    config_fnv: String,
    /// Number of jobs.
    jobs: usize,
    /// One per-flow outcome set per job, in job order.
    outcomes: Vec<FlowsOutcome>,
}

/// Checksum over the transport jobs that generate a golden file.
fn flow_jobs_fnv(jobs: &[FlowJob]) -> String {
    let mut bytes = Vec::new();
    for job in jobs {
        bytes.extend_from_slice(job.kind().as_bytes());
        bytes.push(0);
        bytes.extend_from_slice(job.config_json().as_bytes());
        bytes.push(0xff);
    }
    format!("{:016x}", fnv1a64(&bytes))
}

/// Golden-backed transport-level outcomes: the [`FlowJob`] analogue of
/// [`golden_outcomes`], with the same load-else-simulate and staleness
/// rules over `results/<name>.json`.
///
/// # Panics
/// Panics on a stale or unreadable golden — regenerate deliberately with
/// `DSV_REGEN=1`.
pub fn golden_flows(name: &str, jobs: &[FlowJob]) -> Vec<FlowsOutcome> {
    let path = results_dir().join(format!("{name}.json"));
    let sum = flow_jobs_fnv(jobs);

    if !regen_requested() {
        if let Ok(text) = fs::read_to_string(&path) {
            let file: GoldenFlowsFile = serde_json::from_str(&text).unwrap_or_else(|e| {
                panic!(
                    "golden {} is unreadable ({e}); regenerate with DSV_REGEN=1",
                    path.display()
                )
            });
            assert_eq!(
                file.config_fnv,
                sum,
                "stale golden {}: it was generated from different job \
                 configurations (checksum {} on disk, {} expected). The tested \
                 grid changed — rerun with DSV_REGEN=1 and commit the result.",
                path.display(),
                file.config_fnv,
                sum
            );
            assert_eq!(
                file.outcomes.len(),
                jobs.len(),
                "golden {}: outcome count mismatch despite matching checksum",
                path.display()
            );
            return file.outcomes;
        }
    }

    let outcomes = Runner::from_env().run_flows_batch(jobs);
    let file = GoldenFlowsFile {
        config_fnv: sum,
        jobs: jobs.len(),
        outcomes: outcomes.clone(),
    };
    let text = serde_json::to_string_pretty(&file).expect("golden serializes");
    if let Some(parent) = path.parent() {
        let _ = fs::create_dir_all(parent);
    }
    let tmp = path.with_extension("json.tmp");
    fs::write(&tmp, &text).expect("write golden temp file");
    fs::rename(&tmp, &path).expect("publish golden file");
    outcomes
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::af_tcp::AfTcpConfig;
    use crate::experiment::{EfProfile, DEPTH_2MTU, DEPTH_3MTU};
    use crate::qbone::{ClipId2, QboneConfig};
    use crate::smoothing::{SmoothingConfig, SmoothingServer};

    #[test]
    fn checksum_tracks_configuration() {
        let a = Job::Qbone(QboneConfig::new(
            ClipId2::Lost,
            1_500_000,
            EfProfile::new(1_600_000, DEPTH_2MTU),
        ));
        let b = Job::Qbone(QboneConfig::new(
            ClipId2::Lost,
            1_500_000,
            EfProfile::new(1_600_000, DEPTH_3MTU),
        ));
        assert_eq!(
            jobs_fnv(std::slice::from_ref(&a)),
            jobs_fnv(std::slice::from_ref(&a))
        );
        assert_ne!(
            jobs_fnv(std::slice::from_ref(&a)),
            jobs_fnv(std::slice::from_ref(&b))
        );
        assert_ne!(jobs_fnv(&[a.clone(), b.clone()]), jobs_fnv(&[b, a]));
    }

    #[test]
    fn flow_checksum_tracks_configuration() {
        let a = FlowJob::Smoothing(SmoothingConfig::new(
            ClipId2::Lost,
            1_500_000,
            SmoothingServer::Tcp,
            EfProfile::new(1_600_000, DEPTH_2MTU),
        ));
        let b = FlowJob::AfTcp(AfTcpConfig::new(vec![1_000_000; 2], vec![0, 20]));
        let mut c = AfTcpConfig::new(vec![1_000_000; 2], vec![0, 20]);
        c.trtcm = true;
        let c = FlowJob::AfTcp(c);
        assert_eq!(
            flow_jobs_fnv(std::slice::from_ref(&a)),
            flow_jobs_fnv(std::slice::from_ref(&a))
        );
        assert_ne!(
            flow_jobs_fnv(std::slice::from_ref(&b)),
            flow_jobs_fnv(std::slice::from_ref(&c)),
            "the marker kind is part of the tested configuration"
        );
        assert_ne!(
            flow_jobs_fnv(&[a.clone(), b.clone()]),
            flow_jobs_fnv(&[b, a])
        );
    }
}
