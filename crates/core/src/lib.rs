//! # dsv-core — the experiment layer
//!
//! Reproduces the paper's study end-to-end: both testbeds (the QBone
//! wide-area path and the three-router Frame-Relay local testbed), the
//! token-rate × bucket-depth sweeps behind every figure, the VQM scoring
//! glue, and the curve analysis the paper's conclusions rest on.
//!
//! ## Quickstart
//!
//! ```no_run
//! use dsv_core::prelude::*;
//!
//! // Stream Lost @1.5 Mbps across the QBone with a 1.6 Mbps / 2-MTU
//! // EF profile and score the received video.
//! let cfg = QboneConfig::new(ClipId2::Lost, 1_500_000,
//!                            EfProfile::new(1_600_000, DEPTH_2MTU));
//! let out = run_qbone(&cfg);
//! println!("quality {:.3}, frame loss {:.2}%", out.quality,
//!          100.0 * out.frame_loss);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod af;
pub mod af_tcp;
pub mod aggregate;
pub mod analysis;
pub mod artifacts;
pub mod auditing;
pub mod experiment;
pub mod flows;
pub mod golden;
pub mod keys;
pub mod local;
pub mod profile;
pub mod qbone;
pub mod qoe;
pub mod qoe_dataset;
pub mod report;
pub mod runner;
pub mod smoothing;
pub mod sweep;

/// Convenient re-exports.
pub mod prelude {
    pub use crate::af::{run_af, AfConfig};
    pub use crate::af_tcp::{run_af_tcp, AfTcpConfig};
    pub use crate::aggregate::{run_aggregate, AggregateConfig, AggregateOutcome};
    pub use crate::analysis::{
        crossing_rate, cutoff_rate, max_quality_per_loss_slope, mostly_monotone_decreasing,
        quality_area,
    };
    pub use crate::experiment::{
        encoded_features, received_features, received_features_from, run_horizon, score_run,
        score_run_shared, EfProfile, RunOutcome, DEPTH_2MTU, DEPTH_3MTU,
    };
    pub use crate::flows::{FlowOutcome, FlowsOutcome};
    pub use crate::golden::{
        golden_aggregate, golden_flows, golden_local_sweep, golden_outcomes, golden_qbone_sweep,
    };
    pub use crate::local::{run_local, run_local_detailed, LocalConfig, LocalTransport};
    pub use crate::profile::ProfileSnapshot;
    pub use crate::qbone::{run_qbone, run_qbone_detailed, ClipId2, QboneConfig, QboneServer};
    pub use crate::qoe::{force_mode, score_session, QoeMode, QoeSnapshot, PROXY_MAE_BOUND};
    pub use crate::report::{format_sweep, format_table, table4_summary};
    pub use crate::runner::{ClusterMode, ClusterPoint, FlowJob, Job, PointSource, Runner};
    pub use crate::smoothing::{run_smoothing, SmoothingConfig, SmoothingServer};
    pub use crate::sweep::{default_rate_grid, local_sweep, qbone_sweep, SweepPoint, SweepResult};
    pub use dsv_media::scene::ClipId;
}
