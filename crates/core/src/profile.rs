//! Lightweight stage timing for the experiment pipeline.
//!
//! Every run is three stages — **encode** (artifact acquisition: scene
//! model, encoder, reference features), **simulate** (the discrete-event
//! loop) and **score** (feature extraction + VQM) — and perf work on any
//! of them starts with knowing where the wall time goes. This module
//! accumulates per-stage wall time and event counts in process-global
//! atomics (a handful of atomic adds per *point*, nothing per event, so
//! it is always on), and the [`Runner`](crate::runner::Runner) prints a
//! report after each batch when `DSV_PROFILE=1` is set.
//!
//! The macro-bench (`runner_bench`) uses [`snapshot`]/[`reset`] to embed
//! the same numbers in `results/BENCH_sweep.json`.

use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Duration;

use serde::{Deserialize, Serialize};

static ENCODE_NS: AtomicU64 = AtomicU64::new(0);
static SIMULATE_NS: AtomicU64 = AtomicU64::new(0);
static SCORE_NS: AtomicU64 = AtomicU64::new(0);
static EVENTS: AtomicU64 = AtomicU64::new(0);
static POINTS: AtomicU64 = AtomicU64::new(0);
static QUEUE_HIGH_WATER: AtomicU64 = AtomicU64::new(0);
static POOL_HIGH_WATER: AtomicU64 = AtomicU64::new(0);

/// Record time spent acquiring encode-stage artifacts (model/encoder/
/// reference features) for one run.
pub fn add_encode(d: Duration) {
    ENCODE_NS.fetch_add(d.as_nanos() as u64, Ordering::Relaxed);
}

/// Record the event-loop wall time and dispatched-event count of one run.
pub fn add_simulate(d: Duration, events: u64) {
    SIMULATE_NS.fetch_add(d.as_nanos() as u64, Ordering::Relaxed);
    EVENTS.fetch_add(events, Ordering::Relaxed);
    POINTS.fetch_add(1, Ordering::Relaxed);
}

/// Record time spent scoring (received features + VQM) for one run.
pub fn add_score(d: Duration) {
    SCORE_NS.fetch_add(d.as_nanos() as u64, Ordering::Relaxed);
}

/// Record one run's peak queue population and peak in-flight packet count.
/// The process-wide value is the max over all runs — the number that sizes
/// `EventQueue::with_capacity` / `PacketPool::with_capacity`.
pub fn record_high_water(queue: usize, pool: usize) {
    QUEUE_HIGH_WATER.fetch_max(queue as u64, Ordering::Relaxed);
    POOL_HIGH_WATER.fetch_max(pool as u64, Ordering::Relaxed);
}

/// Whether `DSV_PROFILE=1` asked for stderr stage reports.
pub fn enabled() -> bool {
    std::env::var("DSV_PROFILE").is_ok_and(|v| {
        let v = v.trim();
        !v.is_empty() && v != "0"
    })
}

/// A point-in-time copy of the accumulated stage totals.
#[derive(Debug, Clone, Copy, Default, Serialize, Deserialize)]
pub struct ProfileSnapshot {
    /// Wall time acquiring encode artifacts, nanoseconds.
    pub encode_ns: u64,
    /// Wall time inside the event loop, nanoseconds.
    pub simulate_ns: u64,
    /// Wall time scoring, nanoseconds.
    pub score_ns: u64,
    /// Events dispatched by the simulations.
    pub events: u64,
    /// Simulated points (one per run).
    pub points: u64,
    /// Peak event-queue population across all runs (sizes
    /// `EventQueue::with_capacity`).
    pub queue_high_water: u64,
    /// Peak in-flight packet count across all runs (sizes
    /// `PacketPool::with_capacity`).
    pub pool_high_water: u64,
}

impl ProfileSnapshot {
    /// Stage totals since `other` (for bracketing a batch).
    pub fn since(&self, other: &ProfileSnapshot) -> ProfileSnapshot {
        ProfileSnapshot {
            encode_ns: self.encode_ns.saturating_sub(other.encode_ns),
            simulate_ns: self.simulate_ns.saturating_sub(other.simulate_ns),
            score_ns: self.score_ns.saturating_sub(other.score_ns),
            events: self.events.saturating_sub(other.events),
            points: self.points.saturating_sub(other.points),
            // High-water marks are maxima, not sums: the delta of a batch
            // is simply the current peak.
            queue_high_water: self.queue_high_water,
            pool_high_water: self.pool_high_water,
        }
    }

    /// Event-loop throughput, dispatched events per second of simulate
    /// wall time (0 when nothing ran).
    pub fn event_rate_per_sec(&self) -> f64 {
        if self.simulate_ns == 0 {
            0.0
        } else {
            self.events as f64 / (self.simulate_ns as f64 / 1e9)
        }
    }

    /// One-line human summary.
    pub fn summary(&self) -> String {
        let ms = |ns: u64| ns as f64 / 1e6;
        format!(
            "{} points | encode {:.1} ms, simulate {:.1} ms, score {:.1} ms | \
             {} events ({:.2} M ev/s) | peak queue {}, peak in-flight {}",
            self.points,
            ms(self.encode_ns),
            ms(self.simulate_ns),
            ms(self.score_ns),
            self.events,
            self.event_rate_per_sec() / 1e6,
            self.queue_high_water,
            self.pool_high_water,
        )
    }
}

/// Copy the current totals.
pub fn snapshot() -> ProfileSnapshot {
    ProfileSnapshot {
        encode_ns: ENCODE_NS.load(Ordering::Relaxed),
        simulate_ns: SIMULATE_NS.load(Ordering::Relaxed),
        score_ns: SCORE_NS.load(Ordering::Relaxed),
        events: EVENTS.load(Ordering::Relaxed),
        points: POINTS.load(Ordering::Relaxed),
        queue_high_water: QUEUE_HIGH_WATER.load(Ordering::Relaxed),
        pool_high_water: POOL_HIGH_WATER.load(Ordering::Relaxed),
    }
}

/// Zero all totals (bench bracketing).
pub fn reset() {
    ENCODE_NS.store(0, Ordering::Relaxed);
    SIMULATE_NS.store(0, Ordering::Relaxed);
    SCORE_NS.store(0, Ordering::Relaxed);
    EVENTS.store(0, Ordering::Relaxed);
    POINTS.store(0, Ordering::Relaxed);
    QUEUE_HIGH_WATER.store(0, Ordering::Relaxed);
    POOL_HIGH_WATER.store(0, Ordering::Relaxed);
}

/// Print a labelled stage report for the delta since `since` on stderr
/// when [`enabled`]; always returns the delta for callers that want it.
pub fn report(label: &str, since: &ProfileSnapshot) -> ProfileSnapshot {
    let delta = snapshot().since(since);
    if enabled() {
        eprintln!("[profile] {label}: {}", delta.summary());
    }
    delta
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn accumulates_and_brackets() {
        let before = snapshot();
        add_encode(Duration::from_millis(2));
        add_simulate(Duration::from_millis(5), 1000);
        add_score(Duration::from_millis(1));
        let delta = snapshot().since(&before);
        assert!(delta.encode_ns >= 2_000_000);
        assert!(delta.simulate_ns >= 5_000_000);
        assert!(delta.score_ns >= 1_000_000);
        assert!(delta.events >= 1000);
        assert!(delta.points >= 1);
        assert!(delta.event_rate_per_sec() > 0.0);
        assert!(delta.summary().contains("events"));
    }

    #[test]
    fn high_water_is_a_process_wide_maximum() {
        record_high_water(10, 5);
        record_high_water(4, 2); // smaller run must not lower the peak
        let s = snapshot();
        assert!(s.queue_high_water >= 10);
        assert!(s.pool_high_water >= 5);
        assert!(s.summary().contains("peak queue"));
    }

    #[test]
    fn empty_snapshot_has_zero_rate() {
        let s = ProfileSnapshot::default();
        assert_eq!(s.event_rate_per_sec(), 0.0);
    }
}
