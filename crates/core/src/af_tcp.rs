//! AF rate guarantees for TCP flows (the Lochin & Anelli second act).
//!
//! The paper's AF experiment (§5) marks one *video* flow against a
//! committed rate and checks what survives congestion. The natural
//! follow-up — studied by Lochin & Anelli for exactly this DiffServ
//! machinery — is *TCP* under AF: N greedy TCP flows, each srTCM- (or
//! trTCM-) marked against its own committed rate, share one WRED
//! bottleneck. Does each flow achieve its target rate?
//!
//! The known answer, which the golden suite pins: the guarantee holds
//! only while the aggregate committed rate sits well below the
//! bottleneck capacity (out-of-profile yellow/red packets soak up the
//! slack and TCP fills in), and it erodes as provisioning approaches
//! capacity — with long-RTT and high-target flows losing first, because
//! a committed-rate token bucket refills RTT-blind while TCP's recovery
//! does not.
//!
//! The scenario is pure data ([`af_tcp_spec`]); targets and RTT extras
//! attach to declaration *positions*, so a rotated declaration is an
//! exact relabelling the cluster layer collapses (the same symmetry
//! contract as [`crate::aggregate`]).

use std::time::Instant;

use dsv_net::network::Simulation;
use dsv_net::packet::{DropReason, FlowId};
use dsv_scenario::{
    compile, ActionSpec, AppSpec, CompileOptions, ConditionerSpec, DscpSpec, LinkParams, LinkSpec,
    MatchSpec, NodeSpec, QdiscSpec, RuleSpec, ScenarioSpec,
};
use dsv_sim::{SimDuration, SimTime};
use serde::{Deserialize, Serialize};

use crate::artifacts::ArtifactStore;
use crate::flows::{FlowOutcome, FlowsOutcome};
use crate::profile;

/// Base flow id of sink→sender ACK traffic (flow `1000 + i` for pair
/// `i`); data flows are `1 + i` — the same labelling as
/// [`crate::aggregate`], so its canonical-rank bridge applies unchanged.
pub const UP_FLOW_BASE: u32 = 1000;

/// Committed/excess burst size of every per-flow meter (the AF
/// testbed's 9000-byte two-MTU allowance).
pub const AF_TCP_BURST: u32 = 9000;

/// Configuration of one AF-TCP run. Entry `p` of the per-flow vectors
/// describes the pair declared at position `p`.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct AfTcpConfig {
    /// Committed target rate of each position's flow, bps.
    pub targets_bps: Vec<u64>,
    /// Extra round-trip time of each position's access path, ms.
    pub rtt_extra_ms: Vec<u64>,
    /// The shared WRED bottleneck's rate.
    pub bottleneck_bps: u64,
    /// Mark with the two-rate trTCM (peak = 2 × committed) instead of
    /// the single-rate srTCM.
    pub trtcm: bool,
    /// Run length, microseconds.
    pub duration_us: u64,
    /// Declaration-order rotation: the pair carrying label
    /// `(p + rotation) % flows` is declared at position `p` (labels are
    /// presentation; positions carry the targets).
    pub rotation: u32,
    /// Experiment seed.
    pub seed: u64,
}

impl AfTcpConfig {
    /// A standard run: the given per-position targets and RTT extras
    /// over a 6 Mbps bottleneck for 60 simulated seconds.
    pub fn new(targets_bps: Vec<u64>, rtt_extra_ms: Vec<u64>) -> AfTcpConfig {
        assert_eq!(
            targets_bps.len(),
            rtt_extra_ms.len(),
            "one RTT extra per target"
        );
        assert!(!targets_bps.is_empty(), "at least one flow");
        AfTcpConfig {
            targets_bps,
            rtt_extra_ms,
            bottleneck_bps: 6_000_000,
            trtcm: false,
            duration_us: 60_000_000,
            rotation: 0,
            seed: 23,
        }
    }

    /// The same run with the pairs declared rotated by `rotation`.
    pub fn with_rotation(mut self, rotation: u32) -> AfTcpConfig {
        self.rotation = rotation;
        self
    }

    /// How many sender/sink pairs the run declares.
    pub fn flows(&self) -> u32 {
        self.targets_bps.len() as u32
    }

    /// The data flow id of pair `i`.
    pub fn media_flow(i: u32) -> FlowId {
        FlowId(1 + i)
    }

    /// Aggregate committed rate as a fraction of bottleneck capacity —
    /// the provisioning level the guarantee finding sweeps.
    pub fn provisioning(&self) -> f64 {
        self.targets_bps.iter().sum::<u64>() as f64 / self.bottleneck_bps as f64
    }

    /// The pair label declared at position `p` under this rotation.
    fn label_at(&self, p: u32) -> u32 {
        (p + self.rotation) % self.flows().max(1)
    }

    /// The declaration position of pair label `i`.
    fn position_of(&self, i: u32) -> usize {
        ((i + self.flows() - self.rotation % self.flows().max(1)) % self.flows().max(1)) as usize
    }
}

/// The declarative AF-TCP scenario: N bulk-TCP pairs, per-flow tricolor
/// marking at the shared edge, one WRED AF-PHB bottleneck.
pub fn af_tcp_spec(cfg: &AfTcpConfig) -> ScenarioSpec {
    let n = cfg.flows();
    let mut spec = ScenarioSpec::new("af_tcp", cfg.seed);

    // Sinks first, then the two routers, then the senders — receivers on
    // the client side of the bottleneck, mirroring the other testbeds'
    // declaration shape.
    for p in 0..n {
        let i = cfg.label_at(p);
        spec.nodes.push(NodeSpec::host(
            &format!("sink-{i}"),
            AppSpec::BulkTcpSink {
                server: format!("sender-{i}"),
                up_flow: UP_FLOW_BASE + i,
            },
        ));
    }
    spec.nodes.push(NodeSpec::router("egress"));
    spec.nodes.push(NodeSpec::router("edge"));
    for p in 0..n {
        let i = cfg.label_at(p);
        spec.nodes.push(NodeSpec::host(
            &format!("sender-{i}"),
            AppSpec::BulkTcpSender {
                client: format!("sink-{i}"),
                flow: AfTcpConfig::media_flow(i).0,
                dscp: DscpSpec::BestEffort,
                // More than any flow's fair share can move in the run:
                // every sender stays greedy to the horizon.
                total_bytes: cfg.bottleneck_bps * cfg.duration_us / 8_000_000,
            },
        ));
    }

    // Access links. The sender side carries each position's RTT extra
    // (half per direction of the round trip through this link).
    for p in 0..n {
        let i = cfg.label_at(p);
        spec.links.push(LinkSpec::simple(
            &format!("sink-{i}"),
            "egress",
            LinkParams::fast_ethernet(),
        ));
    }
    for p in 0..n {
        let i = cfg.label_at(p);
        spec.links.push(LinkSpec::simple(
            &format!("sender-{i}"),
            "edge",
            LinkParams {
                rate_bps: 100_000_000,
                // The per-position microsecond keeps otherwise-identical
                // pairs out of exact phase: no two access paths are the
                // same cable, and nanosecond-coincident decisions by
                // different nodes are the one tie class whose serial
                // FIFO order the sharded engine's event stamps cannot
                // reconstruct (see `dsv_sim::stamped`).
                propagation_ns: 100_000 + cfg.rtt_extra_ms[p as usize] * 500_000 + p as u64 * 1_000,
            },
        ));
    }
    // The shared bottleneck: WRED with the AF PHB's three-precedence
    // default curves on both directions (data one way, ACKs the other).
    spec.links.push(LinkSpec::symmetric(
        "edge",
        "egress",
        LinkParams {
            rate_bps: cfg.bottleneck_bps,
            propagation_ns: 5_000_000,
        },
        QdiscSpec::Wred {
            capacity_bytes: 120_000,
            seed: cfg.seed ^ 0xAF7C,
        },
    ));

    // Per-flow tricolor marking at the edge: each pair metered against
    // its own committed rate into AF class 1 (green/yellow/red by
    // conformance; the meters re-mark, never drop).
    spec.conditioners.push(ConditionerSpec {
        node: "edge".to_string(),
        tap: Some("ingress".to_string()),
        rules: (0..n)
            .map(|p| {
                let i = cfg.label_at(p);
                let cir_bps = cfg.targets_bps[p as usize];
                RuleSpec {
                    matches: MatchSpec::src_dst(&format!("sender-{i}"), &format!("sink-{i}")),
                    action: if cfg.trtcm {
                        ActionSpec::MeterTrtcm {
                            pir_bps: cir_bps * 2,
                            pbs_bytes: AF_TCP_BURST,
                            cir_bps,
                            cbs_bytes: AF_TCP_BURST,
                            class: 1,
                        }
                    } else {
                        ActionSpec::MeterAf {
                            cir_bps,
                            cbs_bytes: AF_TCP_BURST,
                            ebs_bytes: AF_TCP_BURST,
                            class: 1,
                        }
                    },
                }
            })
            .collect(),
    });

    // No audit bounds: the meters only re-mark, so no conformance bound
    // holds downstream of the edge by construction.
    spec.horizon_ns = Some(SimDuration::from_micros(cfg.duration_us).as_nanos());
    spec
}

/// Run one AF-TCP session and report every pair's transport outcome
/// (flow `1 + i` at index `i`, whatever position the rotation declared
/// it at).
pub fn run_af_tcp(cfg: &AfTcpConfig) -> FlowsOutcome {
    let spec = af_tcp_spec(cfg);
    let compiled = compile(
        &spec,
        CompileOptions {
            store: Some(&ArtifactStore),
            wrap: None,
        },
    )
    .expect("af_tcp spec compiles");
    assert_eq!(
        compiled.bulk_sinks.len(),
        cfg.flows() as usize,
        "one sink handle per pair"
    );
    let sinks: Vec<_> = (0..cfg.flows())
        .map(|i| {
            let name = format!("sink-{i}");
            compiled
                .bulk_sinks
                .iter()
                .find(|(n, _)| *n == name)
                .map(|(_, h)| h.clone())
                .expect("every pair label has a sink")
        })
        .collect();
    let horizon = compiled.horizon.expect("af_tcp spec sets a horizon");
    let bounds = compiled.bounds.clone();

    let mut sim = Simulation::new(compiled.net);
    // No admission bounds here (the meters re-mark, never drop), but the
    // lifecycle oracles still arm under DSV_AUDIT=1.
    crate::auditing::arm(&mut sim, &bounds);
    let t_sim = Instant::now();
    let stats = sim.run_until(SimTime::ZERO + horizon);
    profile::add_simulate(t_sim.elapsed(), stats.dispatched);
    profile::record_high_water(sim.queue.high_water(), sim.net.pool_high_water());
    crate::auditing::finish(&mut sim, "af_tcp run");

    let span = SimDuration::from_micros(cfg.duration_us);
    let per_flow = sinks
        .iter()
        .enumerate()
        .map(|(i, handle)| {
            let i = i as u32;
            let delivered = handle.borrow().delivered();
            let counters = sim.net.stats.flow(AfTcpConfig::media_flow(i));
            FlowOutcome {
                target_bps: cfg.targets_bps[cfg.position_of(i)],
                // Goodput over unique in-order bytes the sink accepted,
                // not wire bytes (which double-count retransmissions).
                achieved_bps: delivered as f64 * 8.0 / span.as_secs_f64(),
                delivered_bytes: delivered,
                packet_loss: counters.loss_fraction(),
                policer_drops: counters.drops_for(DropReason::PolicerNonConformant),
                queue_drops: counters.drops_for(DropReason::QueueOverflow),
                mean_delay_ms: counters.delay.mean().as_millis_f64(),
                ..Default::default()
            }
        })
        .collect();
    FlowsOutcome { per_flow }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn guarantee_holds_when_underprovisioned() {
        // Four equal targets at 50 % aggregate provisioning: every flow
        // must achieve its committed rate (TCP fills the slack beyond
        // it, so achieved ≥ target, not ≈ target).
        let cfg = AfTcpConfig::new(vec![750_000; 4], vec![0; 4]);
        let out = run_af_tcp(&cfg);
        assert!((cfg.provisioning() - 0.5).abs() < 1e-9);
        assert_eq!(
            out.flows_meeting_target(1.0),
            4,
            "achieved: {:?}",
            out.per_flow
                .iter()
                .map(|f| f.achieved_bps)
                .collect::<Vec<_>>()
        );
        assert!(out.total_policer_drops() == 0, "meters never drop");
    }

    #[test]
    fn guarantee_erodes_near_capacity() {
        // Heterogeneous targets summing to 95 % of the bottleneck: the
        // big-target flow cannot reach its committed rate — the
        // provisioning headroom the guarantee needs is gone.
        let near = AfTcpConfig::new(vec![500_000, 1_000_000, 1_500_000, 2_700_000], vec![0; 4]);
        assert!((near.provisioning() - 0.95).abs() < 1e-9);
        let out = run_af_tcp(&near);
        assert!(
            out.flows_meeting_target(0.95) < 4,
            "some flow must miss its target near capacity: {:?}",
            out.per_flow
                .iter()
                .map(|f| (f.target_bps, f.achieved_bps))
                .collect::<Vec<_>>()
        );
        assert!(out.total_queue_drops() > 0, "WRED must be active");
    }

    #[test]
    fn long_rtt_flows_achieve_less() {
        // Equal targets, unequal RTTs: TCP's window growth is RTT-bound
        // while the token bucket is not, so the long path undershoots
        // relative to the short one.
        let cfg = AfTcpConfig::new(vec![1_500_000; 2], vec![0, 80]);
        let out = run_af_tcp(&cfg);
        assert!(
            out.per_flow[0].achieved_bps > out.per_flow[1].achieved_bps,
            "short {} vs long {}",
            out.per_flow[0].achieved_bps,
            out.per_flow[1].achieved_bps
        );
    }

    #[test]
    fn rotated_declarations_permute_outcomes_exactly() {
        // Positions carry the targets, labels are presentation: a
        // rotated declaration reproduces the unrotated run per position,
        // and the canonical forms coincide — the symmetry contract the
        // cluster layer transplants across.
        let cfg = AfTcpConfig::new(vec![500_000, 1_000_000, 1_500_000, 2_700_000], vec![0; 4]);
        let rot = cfg.clone().with_rotation(1);
        let r0 = run_af_tcp(&cfg);
        let r1 = run_af_tcp(&rot);
        let json = |f: &FlowOutcome| serde_json::to_string(f).unwrap();
        for l in 0..4usize {
            let pos = (l + 3) % 4;
            assert_eq!(
                json(&r1.per_flow[l]),
                json(&r0.per_flow[pos]),
                "flow {l} must reproduce position {pos}"
            );
        }
        assert_ne!(
            json(&r0.per_flow[0]),
            json(&r0.per_flow[3]),
            "positions must genuinely differ (non-vacuity)"
        );
        let a = dsv_scenario::canonicalize(&af_tcp_spec(&cfg));
        let b = dsv_scenario::canonicalize(&af_tcp_spec(&rot));
        assert_eq!(a.json(), b.json());
    }

    #[test]
    fn deterministic_given_seed() {
        let cfg = AfTcpConfig::new(vec![1_000_000; 3], vec![0, 20, 40]);
        let a = run_af_tcp(&cfg);
        let b = run_af_tcp(&cfg);
        assert_eq!(
            serde_json::to_string(&a).unwrap(),
            serde_json::to_string(&b).unwrap()
        );
    }

    #[test]
    fn spec_round_trips() {
        let mut cfg = AfTcpConfig::new(vec![1_000_000, 2_000_000], vec![10, 0]);
        cfg.trtcm = true;
        let spec = af_tcp_spec(&cfg);
        let back: ScenarioSpec = serde_json::from_str(&spec.canonical_json()).expect("parses");
        assert_eq!(back, spec);
        assert_eq!(spec.nodes.len(), 6);
        assert_eq!(spec.conditioners[0].rules.len(), 2);
    }
}
