//! Transport-level per-flow outcomes for the TCP/ABR sweeps.
//!
//! The VQM-scored [`crate::experiment::RunOutcome`] answers "how did the
//! *video* look"; the TCP-smoothing and AF-TCP experiments ask a
//! different question — "what throughput, loss and (for ABR) rebuffering
//! did each *transport session* see" — so they report through this
//! leaner, flow-indexed shape instead of growing the scored outcome.
//!
//! Like [`crate::aggregate::AggregateOutcome`], a [`FlowsOutcome`] is
//! indexed by flow label and bridges symmetry classes through canonical
//! rank maps, so the runner's cache and exact-cluster transplants work
//! unchanged (see [`to_canonical_order`] / [`from_canonical_order`]).
//!
//! Because these outcomes are never VQM-scored, the `DSV_QOE` estimator
//! choice (see [`crate::qoe`]) deliberately does **not** enter a
//! `FlowJob`'s cache identity: a transport outcome is the same bytes
//! under every estimator, so stamping the mode would only orphan cache
//! entries.

use serde::{Deserialize, Serialize};

/// What one transport flow achieved in a run.
///
/// Field set is frozen once a golden commits it: the hand-rolled serde
/// layer errors on missing fields, so additions would invalidate every
/// committed `results/findings_*.json`.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct FlowOutcome {
    /// The rate this flow was promised (committed rate at the marker, or
    /// the encoding rate the server tried to sustain).
    pub target_bps: u64,
    /// Goodput actually delivered to the receiving application.
    pub achieved_bps: f64,
    /// Bytes delivered to the receiving application.
    pub delivered_bytes: u64,
    /// Fraction of transmitted packets lost anywhere on the path.
    pub packet_loss: f64,
    /// Drops by token-bucket policers.
    pub policer_drops: u64,
    /// Drops by router queues (drop-tail or WRED).
    pub queue_drops: u64,
    /// Mean one-way delay of delivered packets, milliseconds.
    pub mean_delay_ms: f64,
    /// ABR only: time from session start to first segment completion,
    /// seconds (zero for non-ABR flows).
    pub startup_s: f64,
    /// ABR only: total rebuffering time, seconds.
    pub stall_s: f64,
    /// ABR only: number of rebuffering events.
    pub rebuffers: u32,
    /// ABR only: mean quality-ladder rung fetched (0 = lowest).
    pub mean_rung: f64,
    /// ABR only: segments fully delivered.
    pub segments_completed: u32,
    /// The session failed outright (ABR session did not finish).
    pub broken: bool,
}

/// Per-flow outcomes of one multi-flow transport run, in flow-label
/// order (flow `1 + i` at index `i`).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct FlowsOutcome {
    /// One outcome per flow.
    pub per_flow: Vec<FlowOutcome>,
}

impl FlowsOutcome {
    /// Mean achieved goodput across flows.
    pub fn mean_achieved_bps(&self) -> f64 {
        if self.per_flow.is_empty() {
            return 0.0;
        }
        self.per_flow.iter().map(|f| f.achieved_bps).sum::<f64>() / self.per_flow.len() as f64
    }

    /// Worst (lowest) achieved goodput across flows.
    pub fn worst_achieved_bps(&self) -> f64 {
        self.per_flow
            .iter()
            .map(|f| f.achieved_bps)
            .fold(f64::INFINITY, f64::min)
    }

    /// Total policer drops across flows.
    pub fn total_policer_drops(&self) -> u64 {
        self.per_flow.iter().map(|f| f.policer_drops).sum()
    }

    /// Total queue drops across flows.
    pub fn total_queue_drops(&self) -> u64 {
        self.per_flow.iter().map(|f| f.queue_drops).sum()
    }

    /// How many flows achieved at least `fraction` of their target rate.
    pub fn flows_meeting_target(&self, fraction: f64) -> usize {
        self.per_flow
            .iter()
            .filter(|f| f.achieved_bps >= f.target_bps as f64 * fraction)
            .count()
    }
}

/// Reorder a label-indexed outcome into canonical order
/// (`canon[rank[i]] = per_flow[i]`; see
/// [`crate::aggregate::media_flow_ranks`]).
pub fn flows_to_canonical_order(out: &FlowsOutcome, rank: &[usize]) -> FlowsOutcome {
    let mut per_flow = out.per_flow.clone();
    for (i, f) in out.per_flow.iter().enumerate() {
        per_flow[rank[i]] = f.clone();
    }
    FlowsOutcome { per_flow }
}

/// Reorder a canonical-order outcome back into this config's flow-label
/// order (`per_flow[i] = canon[rank[i]]`).
pub fn flows_from_canonical_order(canon_out: &FlowsOutcome, rank: &[usize]) -> FlowsOutcome {
    FlowsOutcome {
        per_flow: rank
            .iter()
            .map(|&p| canon_out.per_flow[p].clone())
            .collect(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn out(n: usize) -> FlowsOutcome {
        FlowsOutcome {
            per_flow: (0..n)
                .map(|i| FlowOutcome {
                    target_bps: 1_000_000,
                    achieved_bps: (i as f64 + 1.0) * 100_000.0,
                    delivered_bytes: i as u64,
                    ..Default::default()
                })
                .collect(),
        }
    }

    #[test]
    fn rank_round_trip_is_identity() {
        let o = out(4);
        let rank = vec![2usize, 0, 3, 1];
        let back = flows_from_canonical_order(&flows_to_canonical_order(&o, &rank), &rank);
        assert_eq!(
            serde_json::to_string(&back).unwrap(),
            serde_json::to_string(&o).unwrap()
        );
    }

    #[test]
    fn summaries_agree_with_hand_computation() {
        let o = out(4);
        assert!((o.mean_achieved_bps() - 250_000.0).abs() < 1e-9);
        assert!((o.worst_achieved_bps() - 100_000.0).abs() < 1e-9);
        // Targets are 1 Mbps; only the 300k/400k flows clear 25 %.
        assert_eq!(o.flows_meeting_target(0.25), 2);
        assert_eq!(o.flows_meeting_target(0.05), 4);
    }

    #[test]
    fn outcome_round_trips_through_serde() {
        let o = FlowOutcome {
            target_bps: 2_000_000,
            achieved_bps: 1_234_567.8,
            delivered_bytes: 99,
            packet_loss: 0.125,
            policer_drops: 3,
            queue_drops: 4,
            mean_delay_ms: 17.5,
            startup_s: 0.4,
            stall_s: 1.25,
            rebuffers: 2,
            mean_rung: 1.5,
            segments_completed: 30,
            broken: false,
        };
        let json = serde_json::to_string(&o).unwrap();
        let back: FlowOutcome = serde_json::from_str(&json).unwrap();
        assert_eq!(serde_json::to_string(&back).unwrap(), json);
    }
}
