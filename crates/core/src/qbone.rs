//! The QBone testbed (paper §3.2.2, Figure 5).
//!
//! A Video-Charger-style paced server at a remote site streams MPEG-1 over
//! UDP across a wide-area path to the local client. Packets leave the
//! server already marked EF (code point 101100); the remote site's border
//! router polices them with a CAR-style drop policer configured with the
//! Abilene Premium Service profile (token rate, bucket depth). The
//! backbone is lightly loaded and gives EF priority; optional background
//! traffic exercises the priority queues without disturbing EF — matching
//! the paper's observation that interfering traffic caused "only minor
//! variations".

use std::time::Instant;

use dsv_diffserv::classifier::MatchRule;
use dsv_diffserv::policer::Policer;
use dsv_diffserv::policy::{PolicyAction, PolicyTable};
use dsv_media::encoder::{mpeg1, EncodedClip};
use dsv_media::scene::ClipId;
use dsv_net::app::Shared;
use dsv_net::link::Link;
use dsv_net::network::{NetworkBuilder, Simulation};
use dsv_net::packet::{Dscp, FlowId, NodeId};
use dsv_net::qdisc::{QueueLimits, StrictPriorityQueue};
use dsv_net::traffic::{CountingSink, OnOffSource};
use dsv_sim::{SimDuration, SimRng, SimTime};
use dsv_stream::client::{ClientConfig, ClientMode, StreamClient};
use dsv_stream::payload::StreamPayload;
use dsv_stream::playback::PlaybackConfig;
use dsv_stream::server::paced::{PacedConfig, PacedServer};
use serde::{Deserialize, Serialize};

use crate::artifacts::{self, Codec};
use crate::experiment::{run_horizon, score_run_shared, EfProfile, RunOutcome};
use crate::profile;

/// Flow id of the media stream.
pub const MEDIA_FLOW: FlowId = FlowId(1);
/// Flow id of client→server control traffic.
pub const UP_FLOW: FlowId = FlowId(2);
/// Flow id of background cross traffic.
pub const CT_FLOW: FlowId = FlowId(100);

/// Configuration of one QBone run.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct QboneConfig {
    /// Which clip to stream.
    pub clip: ClipId2,
    /// MPEG-1 CBR encoding rate (the paper's 1.0/1.5/1.7 Mbps).
    pub encoding_bps: u64,
    /// The APS profile at the ingress policer.
    pub profile: EfProfile,
    /// Add background best-effort traffic across the backbone.
    pub cross_traffic: bool,
    /// Also score against the 1.7 Mbps reference (paper's second set).
    pub score_vs_best: bool,
    /// Which server discipline streams the clip.
    pub server: QboneServer,
    /// Experiment seed.
    pub seed: u64,
}

/// Server disciplines available on the QBone testbed.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum QboneServer {
    /// Video-Charger-style paced small messages (the paper's main runs).
    Paced,
    /// NetShow-Theater-style large datagrams (the paper's "bi-modal"
    /// servers, dropped early from its study for exactly that behaviour).
    Bursty,
    /// A paced server with multi-rate content that picks the highest
    /// encoding fitting under the purchased token rate — the capability
    /// the paper anticipated in "future MPEG servers" (§3.3.1). Tiers are
    /// the paper's three encodings (1.0/1.5/1.7 Mbps).
    MultiRatePaced,
}

/// Serializable mirror of [`ClipId`] (keeps `dsv-media` serde-free).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
#[allow(missing_docs)]
pub enum ClipId2 {
    Lost,
    Dark,
    Talk,
}

impl From<ClipId2> for ClipId {
    fn from(c: ClipId2) -> ClipId {
        match c {
            ClipId2::Lost => ClipId::Lost,
            ClipId2::Dark => ClipId::Dark,
            ClipId2::Talk => ClipId::Talk,
        }
    }
}

impl QboneConfig {
    /// A standard run: Lost at 1.7 Mbps with the given profile.
    pub fn new(clip: ClipId2, encoding_bps: u64, profile: EfProfile) -> QboneConfig {
        QboneConfig {
            clip,
            encoding_bps,
            profile,
            cross_traffic: false,
            score_vs_best: false,
            server: QboneServer::Paced,
            seed: 7,
        }
    }
}

/// Run one QBone streaming session and score it.
pub fn run_qbone(cfg: &QboneConfig) -> RunOutcome {
    run_qbone_detailed(cfg).0
}

/// Like [`run_qbone`], but also return the client's full report.
pub fn run_qbone_detailed(cfg: &QboneConfig) -> (RunOutcome, dsv_stream::client::ClientReport) {
    let clip_id: ClipId = cfg.clip.into();
    let t_artifacts = Instant::now();
    let clip = artifacts::encoding(clip_id, Codec::Mpeg1, cfg.encoding_bps);
    profile::add_encode(t_artifacts.elapsed());
    let mut rng = SimRng::seed_from_u64(cfg.seed);

    let mut b = NetworkBuilder::<StreamPayload>::new();

    // Hosts and routers. Ids are assigned in creation order.
    let (client_handle, client_app) = Shared::new(StreamClient::new(ClientConfig {
        server: NodeId(5), // the server is created sixth (index 5)
        up_flow: UP_FLOW,
        frames: clip.frames.len() as u32,
        kind_fn: mpeg1::frame_kind,
        playback: PlaybackConfig::default(),
        feedback_interval: None,
        mode: ClientMode::Udp,
    }));
    let client = b.add_host("client", Box::new(client_app));
    let local_edge = b.add_router("local-edge");
    let core2 = b.add_router("core2");
    let core1 = b.add_router("core1");
    let remote_edge = b.add_router("remote-edge");
    let server_app: Box<dyn dsv_net::app::Application<StreamPayload>> = match cfg.server {
        QboneServer::Paced => Box::new(PacedServer::new(
            PacedConfig::new(client, MEDIA_FLOW, Dscp::EF_QBONE),
            &clip,
        )),
        QboneServer::Bursty => Box::new(dsv_stream::server::bursty::BurstyServer::new(
            dsv_stream::server::bursty::BurstyConfig {
                client,
                flow: MEDIA_FLOW,
                dscp: Dscp::EF_QBONE,
                wait_for_play: true,
            },
            &clip,
        )),
        QboneServer::MultiRatePaced => {
            let t_tiers = Instant::now();
            let tiers = [
                artifacts::encoding(clip_id, Codec::Mpeg1, 1_000_000),
                artifacts::encoding(clip_id, Codec::Mpeg1, 1_500_000),
                artifacts::encoding(clip_id, Codec::Mpeg1, 1_700_000),
            ];
            profile::add_encode(t_tiers.elapsed());
            let tier_refs: Vec<&EncodedClip> = tiers.iter().map(|t| t.as_ref()).collect();
            // The server sizes its encoding to the purchased profile,
            // leaving ~12 % headroom for packet overhead and burstiness.
            let estimate = (cfg.profile.token_rate_bps as f64 * 0.88) as u64;
            Box::new(PacedServer::new_multi_rate_shared(
                PacedConfig::new(client, MEDIA_FLOW, Dscp::EF_QBONE),
                &tier_refs,
                estimate,
            ))
        }
    };
    let server = b.add_host("video-server", server_app);
    assert_eq!(server, NodeId(5), "node creation order changed");

    // Access links.
    b.connect(client, local_edge, Link::ethernet_10mbps());
    b.connect(server, remote_edge, Link::fast_ethernet());

    // Wide-area links with EF priority queues on the router ports.
    let prio = || {
        Box::new(StrictPriorityQueue::ef_default(
            QueueLimits::bytes(120_000),
            QueueLimits::packets(60),
        ))
    };
    let wan = |rate: u64, ms: u64| Link::new(rate, SimDuration::from_millis(ms));
    b.connect_with(
        remote_edge,
        core1,
        wan(45_000_000, 5),
        wan(45_000_000, 5),
        prio(),
        prio(),
    );
    b.connect_with(
        core1,
        core2,
        wan(155_000_000, 20),
        wan(155_000_000, 20),
        prio(),
        prio(),
    );
    b.connect_with(
        core2,
        local_edge,
        wan(45_000_000, 5),
        wan(45_000_000, 5),
        prio(),
        prio(),
    );

    // Ingress policing at the remote border (Cisco CAR, drop).
    let policer = Policer::car_drop(cfg.profile.token_rate_bps, cfg.profile.bucket_depth_bytes);
    let table = PolicyTable::new().with(
        MatchRule::src_dst(server, client),
        PolicyAction::Police(policer),
    );
    b.set_conditioner(remote_edge, Box::new(table));

    // Optional background load across the backbone (best effort).
    if cfg.cross_traffic {
        let ct_sink = b.add_host("ct-sink", Box::new(CountingSink::default()));
        b.connect(ct_sink, core2, Link::fast_ethernet());
        let ct_src = b.add_host(
            "ct-src",
            Box::new(OnOffSource::new(
                ct_sink,
                CT_FLOW,
                1000,
                30_000_000,
                SimDuration::from_millis(200),
                SimDuration::from_millis(200),
                Dscp::BEST_EFFORT,
                SimTime::from_secs(200),
                rng.fork(1),
            )),
        );
        b.connect(ct_src, core1, Link::fast_ethernet());
    }

    let mut sim = Simulation::new(b.build());
    // Under `DSV_AUDIT=1`: check every lifecycle invariant online, plus
    // the CAR policer's admission bound at the remote border.
    crate::auditing::arm(
        &mut sim,
        &[(
            remote_edge,
            MEDIA_FLOW,
            cfg.profile.token_rate_bps,
            cfg.profile.bucket_depth_bytes,
        )],
    );
    let t_sim = Instant::now();
    let stats = sim.run_until(SimTime::ZERO + run_horizon(clip_id));
    profile::add_simulate(t_sim.elapsed(), stats.dispatched);
    profile::record_high_water(sim.queue.high_water(), sim.net.pool_high_water());
    crate::auditing::finish(&mut sim, "qbone run");

    let report = client_handle.borrow().report();
    let media = sim.net.stats.flow(MEDIA_FLOW);
    let t_features = Instant::now();
    let source = artifacts::source_features(clip_id);
    let reference = artifacts::reference_features(clip_id, Codec::Mpeg1, cfg.encoding_bps);
    let best_features = if cfg.score_vs_best {
        if cfg.encoding_bps == 1_700_000 {
            // The clip *is* the best encoding: its own reference stream
            // doubles as the cross reference — no second encode.
            Some(reference.clone())
        } else {
            Some(artifacts::reference_features(
                clip_id,
                Codec::Mpeg1,
                1_700_000,
            ))
        }
    } else {
        None
    };
    profile::add_encode(t_features.elapsed());
    let t_score = Instant::now();
    let (same, vs_best) = score_run_shared(
        &source,
        &reference,
        &report,
        best_features.as_ref().map(|a| a.as_slice()),
    );
    profile::add_score(t_score.elapsed());
    let outcome = RunOutcome::assemble(&report, &media, &same, vs_best.as_ref(), 0, 0, false);
    (outcome, report)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::experiment::{DEPTH_2MTU, DEPTH_3MTU};

    #[test]
    fn generous_profile_delivers_perfect_quality() {
        // Token rate far above the maximum encoding rate: nothing drops,
        // quality ~0.
        let cfg = QboneConfig::new(
            ClipId2::Lost,
            1_000_000,
            EfProfile::new(2_500_000, DEPTH_3MTU),
        );
        let out = run_qbone(&cfg);
        assert_eq!(out.policer_drops, 0, "no drops expected");
        assert!(out.frame_loss < 0.01, "frame loss {}", out.frame_loss);
        assert!(out.quality < 0.05, "quality {}", out.quality);
    }

    #[test]
    fn starved_profile_is_unwatchable() {
        // Token rate well below the encoding rate: massive policing loss.
        let cfg = QboneConfig::new(
            ClipId2::Lost,
            1_700_000,
            EfProfile::new(900_000, DEPTH_2MTU),
        );
        let out = run_qbone(&cfg);
        assert!(out.packet_loss > 0.2, "packet loss {}", out.packet_loss);
        assert!(out.frame_loss > 0.4, "frame loss {}", out.frame_loss);
        assert!(out.quality > 0.7, "quality {}", out.quality);
    }

    #[test]
    fn deterministic_given_seed() {
        let cfg = QboneConfig::new(
            ClipId2::Lost,
            1_500_000,
            EfProfile::new(1_550_000, DEPTH_2MTU),
        );
        let a = run_qbone(&cfg);
        let b = run_qbone(&cfg);
        assert_eq!(a.quality, b.quality);
        assert_eq!(a.rx_packets, b.rx_packets);
    }

    #[test]
    fn cross_traffic_changes_little_for_ef() {
        let mk = |ct: bool| {
            let mut cfg = QboneConfig::new(
                ClipId2::Lost,
                1_000_000,
                EfProfile::new(1_400_000, DEPTH_3MTU),
            );
            cfg.cross_traffic = ct;
            run_qbone(&cfg)
        };
        let quiet = mk(false);
        let loaded = mk(true);
        // "…only minor variations were observed" (paper §4).
        assert!(
            (quiet.quality - loaded.quality).abs() < 0.1,
            "quiet {} vs loaded {}",
            quiet.quality,
            loaded.quality
        );
    }
}
