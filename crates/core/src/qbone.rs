//! The QBone testbed (paper §3.2.2, Figure 5).
//!
//! A Video-Charger-style paced server at a remote site streams MPEG-1 over
//! UDP across a wide-area path to the local client. Packets leave the
//! server already marked EF (code point 101100); the remote site's border
//! router polices them with a CAR-style drop policer configured with the
//! Abilene Premium Service profile (token rate, bucket depth). The
//! backbone is lightly loaded and gives EF priority; optional background
//! traffic exercises the priority queues without disturbing EF — matching
//! the paper's observation that interfering traffic caused "only minor
//! variations".
//!
//! The topology itself lives in [`qbone_spec`]: a declarative
//! [`ScenarioSpec`] the scenario compiler lowers with name-based node
//! resolution, so this module never handles a raw `NodeId`.

use std::time::Instant;

use dsv_media::scene::ClipId;
use dsv_net::network::Simulation;
use dsv_net::packet::FlowId;
use dsv_scenario::{
    compile, ActionSpec, AppSpec, BoundSpec, CompileOptions, ConditionerSpec, CrossTrafficSpec,
    DscpSpec, LimitsSpec, LinkParams, LinkSpec, MatchSpec, MediaRef, NodeSpec, QdiscSpec, RuleSpec,
    ScenarioSpec, TransportSpec,
};
pub use dsv_scenario::{ClipId2, CodecSpec};
use dsv_sim::SimTime;
use serde::{Deserialize, Serialize};

use crate::artifacts::{self, ArtifactStore, Codec};
use crate::experiment::{run_horizon, EfProfile, RunOutcome};
use crate::profile;

/// Flow id of the media stream.
pub const MEDIA_FLOW: FlowId = FlowId(1);
/// Flow id of client→server control traffic.
pub const UP_FLOW: FlowId = FlowId(2);
/// Flow id of background cross traffic.
pub const CT_FLOW: FlowId = FlowId(100);

/// Configuration of one QBone run.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct QboneConfig {
    /// Which clip to stream.
    pub clip: ClipId2,
    /// MPEG-1 CBR encoding rate (the paper's 1.0/1.5/1.7 Mbps).
    pub encoding_bps: u64,
    /// The APS profile at the ingress policer.
    pub profile: EfProfile,
    /// Add background best-effort traffic across the backbone.
    pub cross_traffic: bool,
    /// Also score against the 1.7 Mbps reference (paper's second set).
    pub score_vs_best: bool,
    /// Which server discipline streams the clip.
    pub server: QboneServer,
    /// Experiment seed.
    pub seed: u64,
}

/// Server disciplines available on the QBone testbed.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum QboneServer {
    /// Video-Charger-style paced small messages (the paper's main runs).
    Paced,
    /// NetShow-Theater-style large datagrams (the paper's "bi-modal"
    /// servers, dropped early from its study for exactly that behaviour).
    Bursty,
    /// A paced server with multi-rate content that picks the highest
    /// encoding fitting under the purchased token rate — the capability
    /// the paper anticipated in "future MPEG servers" (§3.3.1). Tiers are
    /// the paper's three encodings (1.0/1.5/1.7 Mbps).
    MultiRatePaced,
}

impl QboneConfig {
    /// A standard run: Lost at 1.7 Mbps with the given profile.
    pub fn new(clip: ClipId2, encoding_bps: u64, profile: EfProfile) -> QboneConfig {
        QboneConfig {
            clip,
            encoding_bps,
            profile,
            cross_traffic: false,
            score_vs_best: false,
            server: QboneServer::Paced,
            seed: 7,
        }
    }
}

/// The multi-rate server's encoding tiers (the paper's three rates).
pub const QBONE_TIERS: [u64; 3] = [1_000_000, 1_500_000, 1_700_000];

/// The QBone backbone's background load as a reusable cross-traffic
/// fragment (the same [`CrossTrafficSpec`] shape serves the local
/// testbed's jitter source and the AF experiment's colored background).
pub fn qbone_cross_traffic() -> CrossTrafficSpec {
    CrossTrafficSpec {
        sink_name: "ct-sink".to_string(),
        src_name: "ct-src".to_string(),
        sink_attach: "core2".to_string(),
        src_attach: "core1".to_string(),
        link: LinkParams::fast_ethernet(),
        flow: CT_FLOW.0,
        packet_size: 1000,
        peak_rate_bps: 30_000_000,
        mean_on_us: 200_000,
        mean_off_us: 200_000,
        stop_at_us: 200_000_000,
        rng_fork: 1,
    }
}

/// The declarative QBone scenario for `cfg` (paper Figure 5 as data).
pub fn qbone_spec(cfg: &QboneConfig) -> ScenarioSpec {
    let media = MediaRef {
        clip: cfg.clip,
        codec: CodecSpec::Mpeg1,
        rate_bps: cfg.encoding_bps,
    };
    let mut spec = ScenarioSpec::new("qbone", cfg.seed);

    // Hosts and routers, in the historical creation order (ids are
    // positional, and the cross-traffic RNG fork consumes the scenario
    // RNG in node order).
    spec.nodes.push(NodeSpec::host(
        "client",
        AppSpec::StreamClient {
            server: "video-server".to_string(),
            up_flow: UP_FLOW.0,
            media,
            transport: TransportSpec::Udp,
            feedback_us: None,
        },
    ));
    spec.nodes.push(NodeSpec::router("local-edge"));
    spec.nodes.push(NodeSpec::router("core2"));
    spec.nodes.push(NodeSpec::router("core1"));
    spec.nodes.push(NodeSpec::router("remote-edge"));
    let server_app = match cfg.server {
        QboneServer::Paced => AppSpec::PacedServer {
            client: "client".to_string(),
            flow: MEDIA_FLOW.0,
            dscp: DscpSpec::EfQbone,
            media,
        },
        QboneServer::Bursty => AppSpec::BurstyServer {
            client: "client".to_string(),
            flow: MEDIA_FLOW.0,
            dscp: DscpSpec::EfQbone,
            media,
            wait_for_play: true,
        },
        QboneServer::MultiRatePaced => AppSpec::MultiRatePacedServer {
            client: "client".to_string(),
            flow: MEDIA_FLOW.0,
            dscp: DscpSpec::EfQbone,
            tiers: QBONE_TIERS
                .iter()
                .map(|&rate_bps| MediaRef {
                    clip: cfg.clip,
                    codec: CodecSpec::Mpeg1,
                    rate_bps,
                })
                .collect(),
            // The server sizes its encoding to the purchased profile,
            // leaving ~12 % headroom for packet overhead and burstiness.
            estimate_bps: (cfg.profile.token_rate_bps as f64 * 0.88) as u64,
        },
    };
    spec.nodes.push(NodeSpec::host("video-server", server_app));

    // Access links.
    spec.links.push(LinkSpec::simple(
        "client",
        "local-edge",
        LinkParams::ethernet_10mbps(),
    ));
    spec.links.push(LinkSpec::simple(
        "video-server",
        "remote-edge",
        LinkParams::fast_ethernet(),
    ));

    // Wide-area links with EF priority queues on the router ports.
    let prio = QdiscSpec::StrictPriorityEf {
        ef: LimitsSpec::bytes(120_000),
        be: LimitsSpec::packets(60),
    };
    let wan = |rate_bps: u64, ms: u64| LinkParams {
        rate_bps,
        propagation_ns: ms * 1_000_000,
    };
    spec.links.push(LinkSpec::symmetric(
        "remote-edge",
        "core1",
        wan(45_000_000, 5),
        prio,
    ));
    spec.links.push(LinkSpec::symmetric(
        "core1",
        "core2",
        wan(155_000_000, 20),
        prio,
    ));
    spec.links.push(LinkSpec::symmetric(
        "core2",
        "local-edge",
        wan(45_000_000, 5),
        prio,
    ));

    // Ingress policing at the remote border (Cisco CAR, drop; no
    // re-marking — the server already marks EF).
    spec.conditioners.push(ConditionerSpec {
        node: "remote-edge".to_string(),
        tap: Some("ingress".to_string()),
        rules: vec![RuleSpec {
            matches: MatchSpec::src_dst("video-server", "client"),
            action: ActionSpec::Police {
                rate_bps: cfg.profile.token_rate_bps,
                depth_bytes: cfg.profile.bucket_depth_bytes,
                conform_mark: None,
            },
        }],
    });

    // Optional background load across the backbone (best effort).
    if cfg.cross_traffic {
        qbone_cross_traffic().attach(&mut spec);
    }

    // The CAR policer's admission bound for the audit oracles.
    spec.bounds.push(BoundSpec {
        node: "remote-edge".to_string(),
        flow: MEDIA_FLOW.0,
        rate_bps: cfg.profile.token_rate_bps,
        depth_bytes: cfg.profile.bucket_depth_bytes,
    });
    spec.horizon_ns = Some(run_horizon(cfg.clip.into()).as_nanos());
    spec
}

/// Run one QBone streaming session and score it.
pub fn run_qbone(cfg: &QboneConfig) -> RunOutcome {
    run_qbone_detailed(cfg).0
}

/// Like [`run_qbone`], but also return the client's full report.
pub fn run_qbone_detailed(cfg: &QboneConfig) -> (RunOutcome, dsv_stream::client::ClientReport) {
    let clip_id: ClipId = cfg.clip.into();
    // Warm the artifact store first so the encode cost is attributed to
    // the encode phase, not the (cheap, memoized) compile below.
    let t_artifacts = Instant::now();
    artifacts::encoding(clip_id, Codec::Mpeg1, cfg.encoding_bps);
    if cfg.server == QboneServer::MultiRatePaced {
        for rate in QBONE_TIERS {
            artifacts::encoding(clip_id, Codec::Mpeg1, rate);
        }
    }
    profile::add_encode(t_artifacts.elapsed());

    let spec = qbone_spec(cfg);
    let compiled = compile(
        &spec,
        CompileOptions {
            store: Some(&ArtifactStore),
            wrap: None,
        },
    )
    .expect("qbone spec compiles");
    let client_handle = compiled
        .sole_client()
        .expect("qbone scenario has one client")
        .clone();
    let horizon = compiled.horizon.expect("qbone spec sets a horizon");
    let bounds = compiled.bounds.clone();

    let mut sim = Simulation::new(compiled.net);
    // Under `DSV_AUDIT=1`: check every lifecycle invariant online, plus
    // the CAR policer's admission bound at the remote border.
    crate::auditing::arm(&mut sim, &bounds);
    let t_sim = Instant::now();
    let stats = sim.run_until(SimTime::ZERO + horizon);
    profile::add_simulate(t_sim.elapsed(), stats.dispatched);
    profile::record_high_water(sim.queue.high_water(), sim.net.pool_high_water());
    crate::auditing::finish(&mut sim, "qbone run");

    let report = client_handle.borrow().report();
    let media = sim.net.stats.flow(MEDIA_FLOW);
    let t_features = Instant::now();
    let source = artifacts::source_features(clip_id);
    let reference = artifacts::reference_features(clip_id, Codec::Mpeg1, cfg.encoding_bps);
    let best_features = if cfg.score_vs_best {
        if cfg.encoding_bps == 1_700_000 {
            // The clip *is* the best encoding: its own reference stream
            // doubles as the cross reference — no second encode.
            Some(reference.clone())
        } else {
            Some(artifacts::reference_features(
                clip_id,
                Codec::Mpeg1,
                1_700_000,
            ))
        }
    } else {
        None
    };
    profile::add_encode(t_features.elapsed());
    let t_score = Instant::now();
    let score = crate::qoe::score_session(
        &source,
        &reference,
        &report,
        best_features.as_ref().map(|a| a.as_slice()),
    );
    profile::add_score(t_score.elapsed());
    let outcome = RunOutcome::assemble(&report, &media, &score, 0, 0, false);
    (outcome, report)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::experiment::{DEPTH_2MTU, DEPTH_3MTU};

    #[test]
    fn generous_profile_delivers_perfect_quality() {
        // Token rate far above the maximum encoding rate: nothing drops,
        // quality ~0.
        let cfg = QboneConfig::new(
            ClipId2::Lost,
            1_000_000,
            EfProfile::new(2_500_000, DEPTH_3MTU),
        );
        let out = run_qbone(&cfg);
        assert_eq!(out.policer_drops, 0, "no drops expected");
        assert!(out.frame_loss < 0.01, "frame loss {}", out.frame_loss);
        assert!(out.quality < 0.05, "quality {}", out.quality);
    }

    #[test]
    fn starved_profile_is_unwatchable() {
        // Token rate well below the encoding rate: massive policing loss.
        let cfg = QboneConfig::new(
            ClipId2::Lost,
            1_700_000,
            EfProfile::new(900_000, DEPTH_2MTU),
        );
        let out = run_qbone(&cfg);
        assert!(out.packet_loss > 0.2, "packet loss {}", out.packet_loss);
        assert!(out.frame_loss > 0.4, "frame loss {}", out.frame_loss);
        assert!(out.quality > 0.7, "quality {}", out.quality);
    }

    #[test]
    fn deterministic_given_seed() {
        let cfg = QboneConfig::new(
            ClipId2::Lost,
            1_500_000,
            EfProfile::new(1_550_000, DEPTH_2MTU),
        );
        let a = run_qbone(&cfg);
        let b = run_qbone(&cfg);
        assert_eq!(a.quality, b.quality);
        assert_eq!(a.rx_packets, b.rx_packets);
    }

    #[test]
    fn cross_traffic_changes_little_for_ef() {
        let mk = |ct: bool| {
            let mut cfg = QboneConfig::new(
                ClipId2::Lost,
                1_000_000,
                EfProfile::new(1_400_000, DEPTH_3MTU),
            );
            cfg.cross_traffic = ct;
            run_qbone(&cfg)
        };
        let quiet = mk(false);
        let loaded = mk(true);
        // "…only minor variations were observed" (paper §4).
        assert!(
            (quiet.quality - loaded.quality).abs() < 0.1,
            "quiet {} vs loaded {}",
            quiet.quality,
            loaded.quality
        );
    }

    #[test]
    fn spec_names_resolve_regardless_of_order() {
        // The compiled scenario resolves the client/server by name; the
        // spec's JSON is stable and parseable.
        let cfg = QboneConfig::new(
            ClipId2::Lost,
            1_500_000,
            EfProfile::new(1_550_000, DEPTH_2MTU),
        );
        let spec = qbone_spec(&cfg);
        let json = spec.canonical_json();
        let back: ScenarioSpec = serde_json::from_str(&json).expect("spec parses");
        assert_eq!(back, spec);
        assert_eq!(spec.nodes.len(), 6);
        assert_eq!(spec.bounds.len(), 1);
    }
}
