//! Experiment plumbing shared by both testbeds: configurations, the
//! outcome record, and the media/VQM glue.

use dsv_media::encoder::EncodedClip;
use dsv_media::features::{displayed_stream, encode_features, FeatureFrame};
use dsv_media::scene::{ClipId, SceneModel};
use dsv_net::stats::FlowCounters;
use dsv_sim::SimDuration;
use dsv_stream::client::ClientReport;
use dsv_vqm::qoe::QoeEstimate;
use dsv_vqm::{Vqm, VqmResult};
use serde::{Deserialize, Serialize};

/// The EF service profile under test: the paper's two independent
/// variables.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct EfProfile {
    /// Token rate, bits per second.
    pub token_rate_bps: u64,
    /// Token bucket depth, bytes (the paper tests 3000 and 4500).
    pub bucket_depth_bytes: u32,
}

impl EfProfile {
    /// Convenience constructor.
    pub fn new(token_rate_bps: u64, bucket_depth_bytes: u32) -> EfProfile {
        EfProfile {
            token_rate_bps,
            bucket_depth_bytes,
        }
    }
}

/// The two bucket depths used throughout the paper.
pub const DEPTH_2MTU: u32 = 3000;
/// See [`DEPTH_2MTU`].
pub const DEPTH_3MTU: u32 = 4500;

/// What a single streaming run produced — one point on a paper figure.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct RunOutcome {
    /// VQM score against the same encoding (paper's first experiment set):
    /// 0 best, 1 worst.
    pub quality: f64,
    /// VQM score against the 1.7 Mbps reference encoding, when computed
    /// (paper's second experiment set).
    pub quality_vs_best: Option<f64>,
    /// Fraction of presentation slots showing stale content.
    pub frame_loss: f64,
    /// Fraction of media packets lost in the network.
    pub packet_loss: f64,
    /// Packets dropped by policers.
    pub policer_drops: u64,
    /// Packets dropped by queue overflow.
    pub queue_drops: u64,
    /// Packets dropped by shaper overflow.
    pub shaper_drops: u64,
    /// Media packets delivered.
    pub rx_packets: u64,
    /// Mean one-way delay of delivered media packets, milliseconds.
    pub mean_delay_ms: f64,
    /// Longest freeze run, frames.
    pub longest_freeze: usize,
    /// VQM segments that failed temporal calibration.
    pub failed_segments: usize,
    /// The adaptive server's collapse count (0 for other servers).
    pub collapses: u32,
    /// True if the session broke down entirely.
    pub broken: bool,
}

impl RunOutcome {
    /// Assemble from the pieces every testbed produces. The quality
    /// fields come from whichever estimator [`crate::qoe::score_session`]
    /// dispatched to; everything else is transport-level fact.
    pub fn assemble(
        report: &ClientReport,
        media_flow: &FlowCounters,
        score: &QoeEstimate,
        shaper_drops: u64,
        collapses: u32,
        broken: bool,
    ) -> RunOutcome {
        RunOutcome {
            quality: score.quality,
            quality_vs_best: score.quality_vs_best,
            frame_loss: report.frame_loss_fraction(),
            packet_loss: media_flow.loss_fraction(),
            policer_drops: media_flow.drops_for(dsv_net::packet::DropReason::PolicerNonConformant),
            queue_drops: media_flow.drops_for(dsv_net::packet::DropReason::QueueOverflow),
            shaper_drops,
            rx_packets: media_flow.rx_packets,
            mean_delay_ms: media_flow.delay.mean().as_millis_f64(),
            longest_freeze: report.playback.longest_freeze,
            failed_segments: score.failed_segments,
            collapses,
            broken,
        }
    }
}

/// The per-frame features a decoder would produce for an encoded clip:
/// source content degraded by each frame's encoding fidelity. This is the
/// **reference** stream for same-encoding comparisons and the building
/// block for received streams.
pub fn encoded_features(model: &SceneModel, clip: &EncodedClip) -> Vec<FeatureFrame> {
    model
        .source_features()
        .iter()
        .zip(&clip.frames)
        .map(|(s, f)| encode_features(*s, f.fidelity))
        .collect()
}

/// Build the *received/displayed* feature stream from a client report:
/// what the emulated renderer put on screen, with each displayed frame
/// carrying the fidelity it was actually received at.
pub fn received_features(model: &SceneModel, report: &ClientReport) -> Vec<FeatureFrame> {
    received_features_from(&model.source_features(), report)
}

/// [`received_features`] over precomputed source features, so sweep runs
/// can borrow the shared per-clip artifact instead of regenerating it.
pub fn received_features_from(source: &[FeatureFrame], report: &ClientReport) -> Vec<FeatureFrame> {
    let per_frame: Vec<FeatureFrame> = source
        .iter()
        .enumerate()
        .map(|(i, s)| encode_features(*s, report.fidelity.get(i).copied().unwrap_or(1.0)))
        .collect();
    displayed_stream(&per_frame, &report.playback.displayed)
}

/// Score a run: same-encoding reference, plus optionally the cross
/// (1.7 Mbps "best") reference.
pub fn score_run(
    model: &SceneModel,
    clip: &EncodedClip,
    report: &ClientReport,
    best_reference: Option<&[FeatureFrame]>,
) -> (VqmResult, Option<VqmResult>) {
    let reference = encoded_features(model, clip);
    score_run_shared(&model.source_features(), &reference, report, best_reference)
}

/// [`score_run`] over precomputed artifacts: the clip's source features
/// and the encoding's reference stream both come from the caller (in
/// sweeps, from [`crate::artifacts`]), so scoring allocates only the
/// received stream.
pub fn score_run_shared(
    source: &[FeatureFrame],
    reference: &[FeatureFrame],
    report: &ClientReport,
    best_reference: Option<&[FeatureFrame]>,
) -> (VqmResult, Option<VqmResult>) {
    let vqm = Vqm::default();
    let received = received_features_from(source, report);
    let same = vqm.score_streams(reference, &received);
    let vs_best = best_reference.map(|best| vqm.score_streams(best, &received));
    (same, vs_best)
}

/// Standard experiment durations: the clip length plus margin for the
/// session handshake, buffering and stragglers.
pub fn run_horizon(clip: ClipId) -> SimDuration {
    let frames = clip.frames() as u64;
    let clip_len =
        dsv_media::frame::presentation_time(frames as u32).saturating_since(dsv_sim::SimTime::ZERO);
    clip_len + SimDuration::from_secs(30)
}

#[cfg(test)]
mod tests {
    use super::*;
    use dsv_media::encoder::mpeg1;

    #[test]
    fn encoded_features_cover_clip() {
        let model = ClipId::Lost.model();
        let clip = mpeg1::encode(&model, 1_700_000);
        let f = encoded_features(&model, &clip);
        assert_eq!(f.len(), 2150);
        // Encoding at 1.7M keeps most detail.
        let src = model.source_features();
        for (a, b) in f.iter().zip(&src) {
            assert!(a.si <= b.si);
            assert!(a.si > 0.5 * b.si);
        }
    }

    #[test]
    fn higher_rate_reference_scores_lower_rate_encoding_worse_than_itself() {
        // The crux of the paper's second experiment set: against the 1.7M
        // reference, an unimpaired 1.0M stream scores worse than an
        // unimpaired 1.7M stream does.
        let model = ClipId::Lost.model();
        let best = encoded_features(&model, &mpeg1::encode(&model, 1_700_000));
        let low = encoded_features(&model, &mpeg1::encode(&model, 1_000_000));
        let vqm = Vqm::default();
        let self_score = vqm.score_streams(&best, &best).overall;
        let cross = vqm.score_streams(&best, &low).overall;
        assert!(self_score < 1e-9);
        assert!(
            cross > 0.02 && cross < 0.35,
            "encoding gap should be modest: {cross}"
        );
    }

    #[test]
    fn run_horizon_covers_clip() {
        assert!(run_horizon(ClipId::Lost).as_secs_f64() > 71.74);
        assert!(run_horizon(ClipId::Dark).as_secs_f64() > 140.77);
    }
}
