//! Plain-text table/series formatting for the figure-regeneration
//! binaries, plus the paper's Table 4 configuration summary.

use crate::sweep::SweepResult;

/// Render rows as an aligned plain-text table.
pub fn format_table(headers: &[&str], rows: &[Vec<String>]) -> String {
    let ncol = headers.len();
    let mut widths: Vec<usize> = headers.iter().map(|h| h.len()).collect();
    for row in rows {
        assert_eq!(row.len(), ncol, "row arity mismatch");
        for (i, cell) in row.iter().enumerate() {
            widths[i] = widths[i].max(cell.len());
        }
    }
    let mut out = String::new();
    let fmt_row = |cells: &[String], widths: &[usize]| -> String {
        let mut line = String::new();
        for (i, c) in cells.iter().enumerate() {
            line.push_str(&format!("{:<w$}  ", c, w = widths[i]));
        }
        line.trim_end().to_string() + "\n"
    };
    let head: Vec<String> = headers.iter().map(|h| h.to_string()).collect();
    out.push_str(&fmt_row(&head, &widths));
    let rule: Vec<String> = widths.iter().map(|w| "-".repeat(*w)).collect();
    out.push_str(&fmt_row(&rule, &widths));
    for row in rows {
        out.push_str(&fmt_row(row, &widths));
    }
    out
}

/// Render a sweep as the two per-depth series a paper figure shows:
/// token rate vs quality and frame loss.
pub fn format_sweep(sweep: &SweepResult) -> String {
    let mut out = format!("# {}\n", sweep.label);
    for depth in sweep.depths() {
        out.push_str(&format!("\n## bucket depth {depth} bytes\n"));
        let rows: Vec<Vec<String>> = sweep
            .curve(depth)
            .iter()
            .map(|&(rate, quality, loss)| {
                vec![
                    format!("{:.3}", rate as f64 / 1e6),
                    format!("{quality:.3}"),
                    format!("{loss:.4}"),
                ]
            })
            .collect();
        out.push_str(&format_table(
            &["token rate (Mbps)", "quality (0=best)", "frame loss"],
            &rows,
        ));
    }
    out
}

/// The paper's Table 4: summary of experimental configurations.
pub fn table4_summary() -> String {
    let rows = vec![
        vec![
            "QBone".into(),
            "Video Charger (paced)".into(),
            "UDP".into(),
            "MPEG-1 CBR".into(),
            "EF".into(),
            "token rate × {3000, 4500} B".into(),
            "Drop (CAR at remote border)".into(),
        ],
        vec![
            "Local testbed".into(),
            "Windows Media (adaptive)".into(),
            "TCP, UDP".into(),
            "WMV capped VBR".into(),
            "EF".into(),
            "token rate × {3000, 4500} B".into(),
            "Drop (router 1); Shape (Linux router)".into(),
        ],
    ];
    format_table(
        &[
            "Testbed",
            "Video server",
            "Network protocol",
            "Content type",
            "PHB",
            "Service parameters",
            "Out-of-profile action",
        ],
        &rows,
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_alignment() {
        let t = format_table(
            &["a", "long-header"],
            &[
                vec!["xxxx".into(), "1".into()],
                vec!["y".into(), "22".into()],
            ],
        );
        let lines: Vec<&str> = t.lines().collect();
        assert_eq!(lines.len(), 4);
        assert!(lines[0].starts_with("a     long-header"));
        assert!(lines[1].starts_with("----  -----------"));
    }

    #[test]
    #[should_panic(expected = "row arity")]
    fn arity_mismatch_panics() {
        format_table(&["a", "b"], &[vec!["only-one".into()]]);
    }

    #[test]
    fn table4_mentions_both_testbeds() {
        let t = table4_summary();
        assert!(t.contains("QBone"));
        assert!(t.contains("Local testbed"));
        assert!(t.contains("Drop"));
        assert!(t.contains("Shape"));
    }
}
