//! Curve analysis: the quantities the paper reads off its figures.
//!
//! The paper's conclusions are about curve *shape*: where the quality
//! cutoff sits relative to the encoding's average/maximum rate, how far
//! apart the two bucket-depth curves are, and how decoupled quality is
//! from frame loss. These helpers extract those quantities from sweep
//! curves so that calibration tests and EXPERIMENTS.md can assert them.

/// Minimum token rate at which quality reaches `threshold` **and stays at
/// or below it** for all sampled higher rates — the paper's "cutoff
/// point". `curve` is `(rate, quality, …)` sorted by rate.
pub fn cutoff_rate(curve: &[(u64, f64, f64)], threshold: f64) -> Option<u64> {
    let mut candidate: Option<u64> = None;
    for &(rate, quality, _) in curve {
        if quality <= threshold {
            candidate.get_or_insert(rate);
        } else {
            candidate = None;
        }
    }
    candidate
}

/// Interpolated token rate at which quality first crosses `threshold`
/// going down (finer than [`cutoff_rate`] for coarse grids).
pub fn crossing_rate(curve: &[(u64, f64, f64)], threshold: f64) -> Option<f64> {
    for w in curve.windows(2) {
        let (r0, q0, _) = w[0];
        let (r1, q1, _) = w[1];
        if q0 > threshold && q1 <= threshold {
            let t = (q0 - threshold) / (q0 - q1);
            return Some(r0 as f64 + t * (r1 - r0) as f64);
        }
    }
    curve
        .first()
        .filter(|&&(_, q, _)| q <= threshold)
        .map(|&(r, _, _)| r as f64)
}

/// Largest quality improvement per unit of frame-loss improvement across
/// adjacent samples — evidence of the quality/loss decoupling (a large
/// value means a small loss change produced a big quality change).
pub fn max_quality_per_loss_slope(curve: &[(u64, f64, f64)]) -> f64 {
    let mut best: f64 = 0.0;
    for w in curve.windows(2) {
        let dq = w[0].1 - w[1].1; // quality improvement
        let dl = w[0].2 - w[1].2; // loss improvement
        if dq > 0.0 && dl > 1e-6 {
            best = best.max(dq / dl);
        }
    }
    best
}

/// Is the curve non-increasing within `tolerance` (quality never gets
/// *meaningfully* worse as the rate grows)? The paper notes small
/// non-monotonicities are expected run-to-run noise.
pub fn mostly_monotone_decreasing(curve: &[(u64, f64, f64)], tolerance: f64) -> bool {
    curve.windows(2).all(|w| w[1].1 <= w[0].1 + tolerance)
}

/// Area under the quality curve (lower = better service across the sweep);
/// used to compare bucket depths: the 4500-byte curve should dominate.
pub fn quality_area(curve: &[(u64, f64, f64)]) -> f64 {
    curve
        .windows(2)
        .map(|w| {
            let dr = (w[1].0 - w[0].0) as f64;
            dr * (w[0].1 + w[1].1) / 2.0
        })
        .sum()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn curve() -> Vec<(u64, f64, f64)> {
        vec![
            (900, 0.95, 0.60),
            (1000, 0.90, 0.40),
            (1100, 0.85, 0.20),
            (1200, 0.40, 0.05),
            (1300, 0.10, 0.02),
            (1400, 0.02, 0.001),
            (1500, 0.01, 0.0),
        ]
    }

    #[test]
    fn cutoff_finds_sustained_threshold() {
        assert_eq!(cutoff_rate(&curve(), 0.15), Some(1300));
        assert_eq!(cutoff_rate(&curve(), 0.05), Some(1400));
        assert_eq!(cutoff_rate(&curve(), 0.001), None);
    }

    #[test]
    fn cutoff_requires_staying_below() {
        let bouncy = vec![(1, 0.1, 0.0), (2, 0.5, 0.0), (3, 0.05, 0.0)];
        assert_eq!(cutoff_rate(&bouncy, 0.15), Some(3));
    }

    #[test]
    fn crossing_interpolates() {
        let c = crossing_rate(&curve(), 0.5).unwrap();
        // Between 1100 (0.85) and 1200 (0.40): 0.85->0.5 is 77.8% of step.
        assert!((c - 1177.8).abs() < 1.0, "{c}");
    }

    #[test]
    fn crossing_handles_already_below() {
        let c = vec![(10, 0.05, 0.0), (20, 0.01, 0.0)];
        assert_eq!(crossing_rate(&c, 0.5), Some(10.0));
        let none = vec![(10, 0.9, 0.0), (20, 0.8, 0.0)];
        assert_eq!(crossing_rate(&none, 0.5), None);
    }

    #[test]
    fn decoupling_slope() {
        // 1100->1200: dq = 0.45 for dl = 0.15 -> 3.0 quality per loss.
        let s = max_quality_per_loss_slope(&curve());
        assert!(s >= 3.0, "{s}");
    }

    #[test]
    fn monotonicity_with_tolerance() {
        assert!(mostly_monotone_decreasing(&curve(), 0.0));
        let noisy = vec![(1, 0.5, 0.0), (2, 0.52, 0.0), (3, 0.1, 0.0)];
        assert!(!mostly_monotone_decreasing(&noisy, 0.0));
        assert!(mostly_monotone_decreasing(&noisy, 0.05));
    }

    #[test]
    fn area_orders_curves() {
        let better: Vec<(u64, f64, f64)> =
            curve().iter().map(|&(r, q, l)| (r, q * 0.5, l)).collect();
        assert!(quality_area(&better) < quality_area(&curve()));
    }
}
