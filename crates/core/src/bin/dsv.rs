//! `dsv` — command-line front end for single experiments.
//!
//! ```text
//! dsv qbone --clip lost --encoding 1500000 --rate 1600000 --depth 3000 [--vs-best] [--cross-traffic] [--bursty|--multirate]
//! dsv local --clip dark --rate 1300000 --depth 4500 [--tcp] [--shaped] [--cross-traffic] [--multi-rate-tiers]
//! dsv af    --clip lost --encoding 1500000 --cross-load 5000000 [--cross-cir 3500000]
//! ```
//!
//! Prints the run outcome as aligned text and, with `--json`, as a JSON
//! object on stdout.

use std::process::exit;

use dsv_core::prelude::*;

fn usage() -> ! {
    eprintln!(
        "usage:\n  dsv qbone --clip <lost|dark> --encoding <bps> --rate <bps> --depth <bytes> \\\n            [--vs-best] [--cross-traffic] [--bursty|--multirate] [--seed N] [--json]\n  dsv local --clip <lost|dark> --rate <bps> --depth <bytes> \\\n            [--tcp] [--shaped] [--cross-traffic] [--multi-rate-tiers] [--seed N] [--json]\n  dsv af    --clip <lost|dark> --encoding <bps> --cross-load <bps> [--cross-cir <bps>] [--json]"
    );
    exit(2)
}

struct Args {
    flags: Vec<String>,
}

impl Args {
    fn flag(&self, name: &str) -> bool {
        self.flags.iter().any(|f| f == name)
    }
    fn value(&self, name: &str) -> Option<&str> {
        self.flags
            .iter()
            .position(|f| f == name)
            .and_then(|i| self.flags.get(i + 1))
            .map(|s| s.as_str())
    }
    fn u64_or(&self, name: &str, default: u64) -> u64 {
        match self.value(name) {
            None => default,
            Some(v) => v.parse().unwrap_or_else(|_| {
                eprintln!("invalid value for {name}: {v}");
                usage()
            }),
        }
    }
    fn required_u64(&self, name: &str) -> u64 {
        match self.value(name) {
            Some(v) => v.parse().unwrap_or_else(|_| {
                eprintln!("invalid value for {name}: {v}");
                usage()
            }),
            None => {
                eprintln!("missing required option {name}");
                usage()
            }
        }
    }
    fn clip(&self) -> ClipId2 {
        match self.value("--clip") {
            Some("lost") | None => ClipId2::Lost,
            Some("dark") => ClipId2::Dark,
            Some(other) => {
                eprintln!("unknown clip {other}");
                usage()
            }
        }
    }
}

fn print_outcome(out: &RunOutcome, json: bool) {
    if json {
        println!("{}", serde_json::to_string_pretty(out).expect("serialize"));
        return;
    }
    println!("quality (VQM, 0=best) : {:.3}", out.quality);
    if let Some(q) = out.quality_vs_best {
        println!("quality vs 1.7M ref   : {q:.3}");
    }
    println!("frame loss            : {:.2} %", 100.0 * out.frame_loss);
    println!("packet loss           : {:.2} %", 100.0 * out.packet_loss);
    println!("policer drops         : {}", out.policer_drops);
    println!("queue drops           : {}", out.queue_drops);
    println!("shaper drops          : {}", out.shaper_drops);
    println!("packets delivered     : {}", out.rx_packets);
    println!("mean delay            : {:.1} ms", out.mean_delay_ms);
    println!("longest freeze        : {} frames", out.longest_freeze);
    println!("failed VQM segments   : {}", out.failed_segments);
    if out.collapses > 0 || out.broken {
        println!(
            "server collapses      : {} (broken: {})",
            out.collapses, out.broken
        );
    }
}

fn main() {
    let mut argv = std::env::args().skip(1);
    let Some(cmd) = argv.next() else { usage() };
    let args = Args {
        flags: argv.collect(),
    };
    let json = args.flag("--json");

    let outcome = match cmd.as_str() {
        "qbone" => {
            let mut cfg = QboneConfig::new(
                args.clip(),
                args.required_u64("--encoding"),
                EfProfile::new(
                    args.required_u64("--rate"),
                    args.required_u64("--depth") as u32,
                ),
            );
            cfg.score_vs_best = args.flag("--vs-best");
            cfg.cross_traffic = args.flag("--cross-traffic");
            cfg.seed = args.u64_or("--seed", cfg.seed);
            if args.flag("--bursty") {
                cfg.server = QboneServer::Bursty;
            } else if args.flag("--multirate") {
                cfg.server = QboneServer::MultiRatePaced;
            }
            run_qbone(&cfg)
        }
        "local" => {
            let transport = if args.flag("--tcp") {
                LocalTransport::Tcp
            } else {
                LocalTransport::Udp
            };
            let mut cfg = LocalConfig::new(
                args.clip(),
                EfProfile::new(
                    args.required_u64("--rate"),
                    args.required_u64("--depth") as u32,
                ),
                transport,
            );
            cfg.shaped = args.flag("--shaped");
            cfg.cross_traffic = args.flag("--cross-traffic");
            cfg.multi_rate = args.flag("--multi-rate-tiers");
            cfg.seed = args.u64_or("--seed", cfg.seed);
            run_local(&cfg)
        }
        "af" => {
            let mut cfg = AfConfig::new(
                args.clip(),
                args.required_u64("--encoding"),
                args.required_u64("--cross-load"),
            );
            if let Some(_v) = args.value("--cross-cir") {
                cfg.cross_cir_bps = args.required_u64("--cross-cir");
            }
            run_af(&cfg)
        }
        _ => usage(),
    };
    print_outcome(&outcome, json);
}
