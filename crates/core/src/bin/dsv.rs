//! `dsv` — command-line front end for single experiments.
//!
//! ```text
//! dsv qbone --clip lost --encoding 1500000 --rate 1600000 --depth 3000 [--vs-best] [--cross-traffic] [--bursty|--multirate]
//! dsv local --clip dark --rate 1300000 --depth 4500 [--tcp] [--shaped] [--cross-traffic] [--multi-rate-tiers]
//! dsv af    --clip lost --encoding 1500000 --cross-load 5000000 [--cross-cir 3500000]
//! dsv run   --scenario examples/scenario_qbone.json
//! ```
//!
//! The first three subcommands run the paper's fixed testbeds. `run`
//! compiles an arbitrary declarative [`dsv_scenario::ScenarioSpec`] from
//! a JSON file and reports per-flow and per-client statistics.
//!
//! Prints the run outcome as aligned text and, with `--json`, as a JSON
//! object on stdout.

use std::process::exit;

use dsv_core::prelude::*;
use serde::Serialize;

fn usage() -> ! {
    eprintln!(
        "usage:\n  dsv qbone --clip <lost|dark> --encoding <bps> --rate <bps> --depth <bytes> \\\n            [--vs-best] [--cross-traffic] [--bursty|--multirate] [--seed N] [--json]\n  dsv local --clip <lost|dark> --rate <bps> --depth <bytes> \\\n            [--tcp] [--shaped] [--cross-traffic] [--multi-rate-tiers] [--seed N] [--json]\n  dsv af    --clip <lost|dark> --encoding <bps> --cross-load <bps> [--cross-cir <bps>] [--json]\n  dsv run   --scenario <spec.json> [--json]"
    );
    exit(2)
}

struct Args {
    flags: Vec<String>,
}

impl Args {
    fn flag(&self, name: &str) -> bool {
        self.flags.iter().any(|f| f == name)
    }
    fn value(&self, name: &str) -> Option<&str> {
        self.flags
            .iter()
            .position(|f| f == name)
            .and_then(|i| self.flags.get(i + 1))
            .map(|s| s.as_str())
    }
    fn u64_or(&self, name: &str, default: u64) -> u64 {
        match self.value(name) {
            None => default,
            Some(v) => v.parse().unwrap_or_else(|_| {
                eprintln!("invalid value for {name}: {v}");
                usage()
            }),
        }
    }
    fn required_u64(&self, name: &str) -> u64 {
        match self.value(name) {
            Some(v) => v.parse().unwrap_or_else(|_| {
                eprintln!("invalid value for {name}: {v}");
                usage()
            }),
            None => {
                eprintln!("missing required option {name}");
                usage()
            }
        }
    }
    fn clip(&self) -> ClipId2 {
        match self.value("--clip") {
            Some("lost") | None => ClipId2::Lost,
            Some("dark") => ClipId2::Dark,
            Some(other) => {
                eprintln!("unknown clip {other}");
                usage()
            }
        }
    }
}

fn print_outcome(out: &RunOutcome, json: bool) {
    if json {
        println!("{}", serde_json::to_string_pretty(out).expect("serialize"));
        return;
    }
    println!("quality (VQM, 0=best) : {:.3}", out.quality);
    if let Some(q) = out.quality_vs_best {
        println!("quality vs 1.7M ref   : {q:.3}");
    }
    println!("frame loss            : {:.2} %", 100.0 * out.frame_loss);
    println!("packet loss           : {:.2} %", 100.0 * out.packet_loss);
    println!("policer drops         : {}", out.policer_drops);
    println!("queue drops           : {}", out.queue_drops);
    println!("shaper drops          : {}", out.shaper_drops);
    println!("packets delivered     : {}", out.rx_packets);
    println!("mean delay            : {:.1} ms", out.mean_delay_ms);
    println!("longest freeze        : {} frames", out.longest_freeze);
    println!("failed VQM segments   : {}", out.failed_segments);
    if out.collapses > 0 || out.broken {
        println!(
            "server collapses      : {} (broken: {})",
            out.collapses, out.broken
        );
    }
}

/// Summary of one flow's counters after a scenario run.
#[derive(Serialize)]
struct FlowSummary {
    flow: u32,
    tx_packets: u64,
    rx_packets: u64,
    drops: u64,
    mean_delay_ms: f64,
}

/// Summary of one stream client after a scenario run.
#[derive(Serialize)]
struct ClientSummary {
    node: String,
    frames: u32,
    frame_loss: f64,
    packets_received: u64,
}

/// Summary of one id-recording sink after a scenario run.
#[derive(Serialize)]
struct SinkSummary {
    node: String,
    delivered: u64,
}

/// Everything `dsv run` reports about a scenario run.
#[derive(Serialize)]
struct ScenarioSummary {
    scenario: String,
    end_time_secs: f64,
    events: u64,
    flows: Vec<FlowSummary>,
    clients: Vec<ClientSummary>,
    sinks: Vec<SinkSummary>,
}

/// Compile and run a [`dsv_scenario::ScenarioSpec`] from a JSON file.
fn run_scenario(path: &str, json: bool) {
    use dsv_net::network::Simulation;
    use dsv_scenario::{compile, CompileOptions, ScenarioSpec};
    use dsv_sim::SimTime;

    let text = std::fs::read_to_string(path).unwrap_or_else(|e| {
        eprintln!("cannot read {path}: {e}");
        exit(2)
    });
    let spec: ScenarioSpec = serde_json::from_str(&text).unwrap_or_else(|e| {
        eprintln!("invalid scenario spec {path}: {e}");
        exit(2)
    });
    let compiled = compile(
        &spec,
        CompileOptions {
            store: Some(&dsv_core::artifacts::ArtifactStore),
            wrap: None,
        },
    )
    .unwrap_or_else(|e| {
        eprintln!("{e}");
        exit(2)
    });

    let clients = compiled.clients.clone();
    let sinks = compiled.id_sinks.clone();
    let horizon = compiled.horizon;
    let mut sim = Simulation::new(compiled.net);
    let stats = match horizon {
        Some(h) => sim.run_until(SimTime::ZERO + h),
        None => sim.run(),
    };

    let summary = ScenarioSummary {
        scenario: spec.name.clone(),
        end_time_secs: stats.end_time.as_secs_f64(),
        events: stats.dispatched,
        flows: sim
            .net
            .stats
            .flows()
            .map(|(f, c)| FlowSummary {
                flow: f.0,
                tx_packets: c.tx_packets,
                rx_packets: c.rx_packets,
                drops: c.drops.values().sum(),
                mean_delay_ms: c.delay.mean().as_millis_f64(),
            })
            .collect(),
        clients: clients
            .iter()
            .map(|(name, h)| {
                let rep = h.borrow().report();
                ClientSummary {
                    node: name.clone(),
                    frames: rep.received.len() as u32,
                    frame_loss: rep.frame_loss_fraction(),
                    packets_received: rep.packets_received,
                }
            })
            .collect(),
        sinks: sinks
            .iter()
            .map(|(name, h)| SinkSummary {
                node: name.clone(),
                delivered: h.borrow().ids.len() as u64,
            })
            .collect(),
    };

    if json {
        println!(
            "{}",
            serde_json::to_string_pretty(&summary).expect("serialize")
        );
        return;
    }
    println!("scenario              : {}", summary.scenario);
    println!("simulated time        : {:.3} s", summary.end_time_secs);
    println!("events dispatched     : {}", summary.events);
    for f in &summary.flows {
        println!(
            "flow {:>4}             : tx {} rx {} drops {} mean delay {:.2} ms",
            f.flow, f.tx_packets, f.rx_packets, f.drops, f.mean_delay_ms
        );
    }
    for c in &summary.clients {
        println!(
            "client {:<12}   : {} frames, {:.2} % frame loss, {} packets",
            c.node,
            c.frames,
            100.0 * c.frame_loss,
            c.packets_received
        );
    }
    for s in &summary.sinks {
        println!("sink {:<14}   : {} packets delivered", s.node, s.delivered);
    }
}

fn main() {
    let mut argv = std::env::args().skip(1);
    let Some(cmd) = argv.next() else { usage() };
    let args = Args {
        flags: argv.collect(),
    };
    let json = args.flag("--json");

    let outcome = match cmd.as_str() {
        "qbone" => {
            let mut cfg = QboneConfig::new(
                args.clip(),
                args.required_u64("--encoding"),
                EfProfile::new(
                    args.required_u64("--rate"),
                    args.required_u64("--depth") as u32,
                ),
            );
            cfg.score_vs_best = args.flag("--vs-best");
            cfg.cross_traffic = args.flag("--cross-traffic");
            cfg.seed = args.u64_or("--seed", cfg.seed);
            if args.flag("--bursty") {
                cfg.server = QboneServer::Bursty;
            } else if args.flag("--multirate") {
                cfg.server = QboneServer::MultiRatePaced;
            }
            run_qbone(&cfg)
        }
        "local" => {
            let transport = if args.flag("--tcp") {
                LocalTransport::Tcp
            } else {
                LocalTransport::Udp
            };
            let mut cfg = LocalConfig::new(
                args.clip(),
                EfProfile::new(
                    args.required_u64("--rate"),
                    args.required_u64("--depth") as u32,
                ),
                transport,
            );
            cfg.shaped = args.flag("--shaped");
            cfg.cross_traffic = args.flag("--cross-traffic");
            cfg.multi_rate = args.flag("--multi-rate-tiers");
            cfg.seed = args.u64_or("--seed", cfg.seed);
            run_local(&cfg)
        }
        "run" => {
            let path = args.value("--scenario").unwrap_or_else(|| {
                eprintln!("missing required option --scenario");
                usage()
            });
            run_scenario(path, json);
            return;
        }
        "af" => {
            let mut cfg = AfConfig::new(
                args.clip(),
                args.required_u64("--encoding"),
                args.required_u64("--cross-load"),
            );
            if let Some(_v) = args.value("--cross-cir") {
                cfg.cross_cir_bps = args.required_u64("--cross-cir");
            }
            run_af(&cfg)
        }
        _ => usage(),
    };
    print_outcome(&outcome, json);
}
