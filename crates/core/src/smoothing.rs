//! TCP self-smoothing under the QBone policer.
//!
//! The paper's QBone study polices *open-loop* servers: the paced sender
//! conforms by construction and the bursty sender loses whole bursts at
//! the token bucket. This experiment asks the question the paper's §6
//! outlook raises — what does the same drop policer do to a *closed-loop*
//! sender? Three server disciplines stream over the identical wide-area
//! path and Abilene-profile CAR policer:
//!
//! * **Bursty** — the open-loop large-datagram server (the baseline the
//!   paper dropped for bi-modal behaviour): bursts hit the bucket and die,
//!   and with no feedback the sender keeps blasting into the drops.
//! * **Tcp** — the mini-TCP streaming server: loss feedback concedes rate
//!   to the policer, so at the paper's shallow bucket depths TCP suffers a
//!   small fraction of the bursty sender's policer drops and delivers an
//!   intact (if slower) byte stream — "self-smoothing" in loss terms. The
//!   concession is real: at those same shallow depths the closed loop
//!   cannot hold the token rate either (the repo's
//!   [`crate::local`] thrashing finding), so the sweep also probes
//!   [`DEPTH_10MTU`]/[`DEPTH_40MTU`] buckets where it can.
//! * **Abr** — the buffer-driven ABR client/server pair: the rate ladder
//!   adds a second control loop on top of TCP's, trading resolution for
//!   continuity instead of trading loss for delay.
//!
//! Outcomes are transport-level ([`FlowOutcome`]) rather than VQM-scored:
//! the finding is about delivered bytes, loss and rebuffering, not about
//! a specific clip's frame salience.

use std::time::Instant;

use dsv_media::scene::ClipId;
use dsv_net::network::Simulation;
use dsv_net::packet::DropReason;
use dsv_scenario::{
    compile, ActionSpec, AppSpec, BoundSpec, CompileOptions, ConditionerSpec, DscpSpec, LimitsSpec,
    LinkParams, LinkSpec, MatchSpec, MediaRef, NodeSpec, QdiscSpec, RuleSpec, ScenarioSpec,
    TransportSpec,
};
use dsv_sim::{SimDuration, SimTime};
use serde::{Deserialize, Serialize};

use crate::artifacts::{self, ArtifactStore, Codec};
use crate::experiment::{run_horizon, EfProfile};
use crate::flows::{FlowOutcome, FlowsOutcome};
use crate::profile;
use crate::qbone::{ClipId2, CodecSpec, MEDIA_FLOW, UP_FLOW};

/// Server disciplines compared by the smoothing sweep.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum SmoothingServer {
    /// Open-loop large-datagram server (no feedback; bursts die at the
    /// policer).
    Bursty,
    /// Mini-TCP streaming server (loss-clocked; the policer shapes it).
    Tcp,
    /// Buffer-driven ABR client over mini-TCP (rate ladder on top of the
    /// TCP loop).
    Abr,
}

/// Configuration of one smoothing run.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct SmoothingConfig {
    /// Which clip the bursty/TCP servers stream (and whose length sets
    /// the ABR session length).
    pub clip: ClipId2,
    /// Encoding rate of the stream; also the top of the ABR ladder.
    pub encoding_bps: u64,
    /// Which server discipline runs.
    pub server: SmoothingServer,
    /// The Abilene-style profile at the remote border policer.
    pub profile: EfProfile,
    /// Experiment seed.
    pub seed: u64,
}

impl SmoothingConfig {
    /// A standard smoothing run.
    pub fn new(
        clip: ClipId2,
        encoding_bps: u64,
        server: SmoothingServer,
        profile: EfProfile,
    ) -> SmoothingConfig {
        SmoothingConfig {
            clip,
            encoding_bps,
            server,
            profile,
            seed: 7,
        }
    }
}

/// A bucket roomy enough for one congestion-window burst (10 MTU): the
/// shallow paper depths clip every line-rate TCP burst, so the smoothing
/// sweep also probes depths where the closed loop can actually run.
pub const DEPTH_10MTU: u32 = 15_000;
/// A deep bucket (40 MTU) that admits full windows — the "generous"
/// end of the smoothing sweep.
pub const DEPTH_40MTU: u32 = 60_000;

/// ABR segment length (and the buffer step of the rate ladder).
pub const ABR_SEGMENT_US: u64 = 2_000_000;
/// ABR client's buffer cap: fetch-ahead pauses beyond this.
pub const ABR_MAX_BUFFER_US: u64 = 10_000_000;

/// The ABR quality ladder for an encoding rate: four rungs topping out
/// at the encoding itself.
pub fn smoothing_ladder(encoding_bps: u64) -> Vec<u64> {
    vec![
        encoding_bps / 4,
        encoding_bps / 2,
        encoding_bps * 3 / 4,
        encoding_bps,
    ]
}

/// The clip's play length (the run horizon minus its drain slack).
fn clip_length(clip: ClipId2) -> SimDuration {
    run_horizon(clip.into()) - SimDuration::from_secs(30)
}

/// How many whole ABR segments the clip length covers.
pub fn abr_segments(clip: ClipId2) -> u32 {
    ((clip_length(clip).as_nanos() / 1_000) / ABR_SEGMENT_US).max(1) as u32
}

/// The declarative smoothing scenario: the QBone wide-area path and
/// border policer of [`crate::qbone::qbone_spec`], with the server/client
/// pair swapped per discipline.
pub fn smoothing_spec(cfg: &SmoothingConfig) -> ScenarioSpec {
    let media = MediaRef {
        clip: cfg.clip,
        codec: CodecSpec::Mpeg1,
        rate_bps: cfg.encoding_bps,
    };
    let mut spec = ScenarioSpec::new("smoothing", cfg.seed);

    let client_app = match cfg.server {
        SmoothingServer::Bursty | SmoothingServer::Tcp => AppSpec::StreamClient {
            server: "video-server".to_string(),
            up_flow: UP_FLOW.0,
            media,
            transport: match cfg.server {
                SmoothingServer::Bursty => TransportSpec::Udp,
                _ => TransportSpec::Tcp,
            },
            feedback_us: None,
        },
        SmoothingServer::Abr => AppSpec::AbrClient {
            server: "video-server".to_string(),
            up_flow: UP_FLOW.0,
            rungs_bps: smoothing_ladder(cfg.encoding_bps),
            step_us: ABR_SEGMENT_US,
            segment_us: ABR_SEGMENT_US,
            segments: abr_segments(cfg.clip),
            max_buffer_us: ABR_MAX_BUFFER_US,
        },
    };
    spec.nodes.push(NodeSpec::host("client", client_app));
    spec.nodes.push(NodeSpec::router("local-edge"));
    spec.nodes.push(NodeSpec::router("core2"));
    spec.nodes.push(NodeSpec::router("core1"));
    spec.nodes.push(NodeSpec::router("remote-edge"));
    let server_app = match cfg.server {
        SmoothingServer::Bursty => AppSpec::BurstyServer {
            client: "client".to_string(),
            flow: MEDIA_FLOW.0,
            dscp: DscpSpec::EfQbone,
            media,
            wait_for_play: true,
        },
        // The shared TCP-server fragment: same constructor (and pacing
        // lead) as the local testbed's fig15 runs.
        SmoothingServer::Tcp => {
            AppSpec::tcp_server("client", MEDIA_FLOW.0, DscpSpec::EfQbone, media)
        }
        SmoothingServer::Abr => AppSpec::AbrServer {
            client: "client".to_string(),
            flow: MEDIA_FLOW.0,
            dscp: DscpSpec::EfQbone,
            rungs_bps: smoothing_ladder(cfg.encoding_bps),
            segment_us: ABR_SEGMENT_US,
        },
    };
    spec.nodes.push(NodeSpec::host("video-server", server_app));

    // The QBone path: access links, EF-priority wide-area hops.
    spec.links.push(LinkSpec::simple(
        "client",
        "local-edge",
        LinkParams::ethernet_10mbps(),
    ));
    spec.links.push(LinkSpec::simple(
        "video-server",
        "remote-edge",
        LinkParams::fast_ethernet(),
    ));
    let prio = QdiscSpec::StrictPriorityEf {
        ef: LimitsSpec::bytes(120_000),
        be: LimitsSpec::packets(60),
    };
    let wan = |rate_bps: u64, ms: u64| LinkParams {
        rate_bps,
        propagation_ns: ms * 1_000_000,
    };
    spec.links.push(LinkSpec::symmetric(
        "remote-edge",
        "core1",
        wan(45_000_000, 5),
        prio,
    ));
    spec.links.push(LinkSpec::symmetric(
        "core1",
        "core2",
        wan(155_000_000, 20),
        prio,
    ));
    spec.links.push(LinkSpec::symmetric(
        "core2",
        "local-edge",
        wan(45_000_000, 5),
        prio,
    ));

    // The same CAR drop policer the paper's QBone runs face, whatever
    // the server discipline — that equality is the whole experiment.
    spec.conditioners.push(ConditionerSpec {
        node: "remote-edge".to_string(),
        tap: Some("ingress".to_string()),
        rules: vec![RuleSpec {
            matches: MatchSpec::src_dst("video-server", "client"),
            action: ActionSpec::Police {
                rate_bps: cfg.profile.token_rate_bps,
                depth_bytes: cfg.profile.bucket_depth_bytes,
                conform_mark: None,
            },
        }],
    });
    spec.bounds.push(BoundSpec {
        node: "remote-edge".to_string(),
        flow: MEDIA_FLOW.0,
        rate_bps: cfg.profile.token_rate_bps,
        depth_bytes: cfg.profile.bucket_depth_bytes,
    });
    spec.horizon_ns = Some(run_horizon(cfg.clip.into()).as_nanos());
    spec
}

/// Run one smoothing session and report its media flow's transport-level
/// outcome (a single-flow [`FlowsOutcome`]).
pub fn run_smoothing(cfg: &SmoothingConfig) -> FlowsOutcome {
    let clip_id: ClipId = cfg.clip.into();
    if cfg.server != SmoothingServer::Abr {
        let t_artifacts = Instant::now();
        artifacts::encoding(clip_id, Codec::Mpeg1, cfg.encoding_bps);
        profile::add_encode(t_artifacts.elapsed());
    }

    let spec = smoothing_spec(cfg);
    let compiled = compile(
        &spec,
        CompileOptions {
            store: Some(&ArtifactStore),
            wrap: None,
        },
    )
    .expect("smoothing spec compiles");
    let abr_handle = compiled.abr_clients.first().map(|(_, h)| h.clone());
    let horizon = compiled.horizon.expect("smoothing spec sets a horizon");
    let bounds = compiled.bounds.clone();

    let mut sim = Simulation::new(compiled.net);
    crate::auditing::arm(&mut sim, &bounds);
    let t_sim = Instant::now();
    let stats = sim.run_until(SimTime::ZERO + horizon);
    profile::add_simulate(t_sim.elapsed(), stats.dispatched);
    profile::record_high_water(sim.queue.high_water(), sim.net.pool_high_water());
    crate::auditing::finish(&mut sim, "smoothing run");

    let media = sim.net.stats.flow(MEDIA_FLOW);
    let span = clip_length(cfg.clip);
    let mut out = FlowOutcome {
        target_bps: cfg.encoding_bps,
        achieved_bps: media.goodput_bps(span),
        delivered_bytes: media.rx_bytes,
        packet_loss: media.loss_fraction(),
        policer_drops: media.drops_for(DropReason::PolicerNonConformant),
        queue_drops: media.drops_for(DropReason::QueueOverflow),
        mean_delay_ms: media.delay.mean().as_millis_f64(),
        ..Default::default()
    };
    if let Some(handle) = abr_handle {
        let report = handle.borrow().report();
        out.startup_s = report.startup.as_secs_f64();
        out.stall_s = report.stall.as_secs_f64();
        out.rebuffers = report.rebuffers;
        out.mean_rung = report.mean_rung();
        out.segments_completed = report.segments_completed;
        out.broken = !report.done;
    }
    FlowsOutcome {
        per_flow: vec![out],
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::experiment::{DEPTH_2MTU, DEPTH_3MTU};

    fn base(server: SmoothingServer, rate: u64, depth: u32) -> SmoothingConfig {
        SmoothingConfig::new(
            ClipId2::Lost,
            1_500_000,
            server,
            EfProfile::new(rate, depth),
        )
    }

    #[test]
    fn tcp_self_smooths_where_bursty_bleeds() {
        // The paper's shallow-bucket profile: token rate ~10 % above the
        // encoding, a 2-MTU bucket. Neither discipline can hold the
        // token rate here, but the open loop keeps blasting into the
        // drops (nearly half its packets die and what arrives is riddled
        // with holes) while the closed loop concedes rate and loses a
        // small fraction of that — the self-smoothing finding.
        let bursty = run_smoothing(&base(SmoothingServer::Bursty, 1_650_000, DEPTH_2MTU));
        let tcp = run_smoothing(&base(SmoothingServer::Tcp, 1_650_000, DEPTH_2MTU));
        let (b, t) = (&bursty.per_flow[0], &tcp.per_flow[0]);
        assert!(
            b.packet_loss > 0.4,
            "open-loop loss should be catastrophic, got {}",
            b.packet_loss
        );
        assert!(
            t.policer_drops * 3 < b.policer_drops,
            "tcp {} vs bursty {} policer drops",
            t.policer_drops,
            b.policer_drops
        );
        assert!(
            t.packet_loss < b.packet_loss,
            "tcp loss {} vs bursty {}",
            t.packet_loss,
            b.packet_loss
        );
    }

    #[test]
    fn deep_bucket_restores_the_open_loop() {
        // Self-smoothing is a shallow-bucket phenomenon: once the bucket
        // absorbs whole frame bursts, the conformant open-loop sender
        // sails through untouched while TCP's probing still overshoots.
        let bursty = run_smoothing(&base(SmoothingServer::Bursty, 1_650_000, DEPTH_40MTU));
        let b = &bursty.per_flow[0];
        assert_eq!(b.policer_drops, 0, "conformant bursts pass untouched");
        assert!(
            b.achieved_bps > 0.95 * b.target_bps as f64,
            "goodput {}",
            b.achieved_bps
        );
    }

    #[test]
    fn abr_downshifts_instead_of_stalling() {
        // A token rate at about half the top rung: a fixed-rate TCP
        // stream is infeasible (goodput well under the encoding), but
        // the ladder settles near its floor rung and the session plays
        // every segment without a single rebuffer.
        let tcp = run_smoothing(&base(SmoothingServer::Tcp, 800_000, DEPTH_10MTU));
        let abr = run_smoothing(&base(SmoothingServer::Abr, 800_000, DEPTH_10MTU));
        let (t, f) = (&tcp.per_flow[0], &abr.per_flow[0]);
        assert!(
            t.achieved_bps < 0.8 * t.target_bps as f64,
            "fixed-rate stream should be infeasible, got {}",
            t.achieved_bps
        );
        assert!(!f.broken, "session must complete");
        assert_eq!(f.segments_completed, abr_segments(ClipId2::Lost));
        assert!(
            f.mean_rung < 1.0,
            "ladder should sit low, got {}",
            f.mean_rung
        );
        assert_eq!(f.rebuffers, 0, "no stalls expected, got {}", f.rebuffers);
    }

    #[test]
    fn abr_climbs_the_ladder_under_a_generous_profile() {
        // Ample token rate and a deep bucket: the throughput estimate
        // clears the upper rungs and the buffer loop keeps them.
        let out = run_smoothing(&base(SmoothingServer::Abr, 5_000_000, DEPTH_40MTU));
        let f = &out.per_flow[0];
        assert!(!f.broken);
        assert!(f.mean_rung > 2.0, "mean rung {}", f.mean_rung);
        assert_eq!(f.rebuffers, 0);
        assert!(f.stall_s == 0.0, "stall {}", f.stall_s);
    }

    #[test]
    fn shallow_bucket_pins_the_ladder_to_the_floor() {
        // Even an ample token rate cannot lift the ladder through a
        // 3-MTU bucket: every window burst is clipped, the throughput
        // estimate never clears rung 1, and the session limps home at
        // the floor. Bucket depth, not token rate, is what the ABR
        // loop feels — the policing-vs-guarantee tension of the paper
        // replayed at the application layer.
        let out = run_smoothing(&base(SmoothingServer::Abr, 5_000_000, DEPTH_3MTU));
        let f = &out.per_flow[0];
        assert!(!f.broken, "session must still complete");
        assert!(f.mean_rung < 0.5, "mean rung {}", f.mean_rung);
    }

    #[test]
    fn deterministic_given_seed() {
        for server in [
            SmoothingServer::Bursty,
            SmoothingServer::Tcp,
            SmoothingServer::Abr,
        ] {
            let cfg = base(server, 1_200_000, DEPTH_2MTU);
            let a = run_smoothing(&cfg);
            let b = run_smoothing(&cfg);
            assert_eq!(
                serde_json::to_string(&a).unwrap(),
                serde_json::to_string(&b).unwrap(),
                "{server:?}"
            );
        }
    }

    #[test]
    fn spec_round_trips() {
        let spec = smoothing_spec(&base(SmoothingServer::Abr, 1_000_000, DEPTH_2MTU));
        let back: ScenarioSpec = serde_json::from_str(&spec.canonical_json()).expect("parses");
        assert_eq!(back, spec);
        assert_eq!(spec.nodes.len(), 6);
    }

    #[test]
    fn tcp_server_fragment_is_shared_with_the_local_testbed() {
        // Both sweeps build their TCP video server through the one
        // [`AppSpec::tcp_server`] constructor, and the compiled server's
        // pacing lead is the single [`TCP_READ_AHEAD`] constant — so the
        // fig15 local runs and this sweep cannot drift apart.
        use dsv_net::packet::{Dscp, FlowId, NodeId};
        use dsv_stream::server::tcp_server::{TcpServerConfig, TCP_READ_AHEAD};

        let compiled = TcpServerConfig::new(NodeId(0), FlowId(1), Dscp::BEST_EFFORT);
        assert_eq!(compiled.read_ahead, TCP_READ_AHEAD);

        let tcp_app = |spec: &ScenarioSpec| {
            let apps: Vec<_> = spec
                .nodes
                .iter()
                .filter(|n| matches!(n.app, Some(AppSpec::TcpServer { .. })))
                .collect();
            assert_eq!(apps.len(), 1, "exactly one TCP server per spec");
        };
        tcp_app(&smoothing_spec(&base(
            SmoothingServer::Tcp,
            1_650_000,
            DEPTH_2MTU,
        )));
        let mut local = crate::local::LocalConfig::new(
            ClipId2::Lost,
            EfProfile::new(1_100_000, DEPTH_2MTU),
            crate::local::LocalTransport::Tcp,
        );
        local.shaped = false;
        tcp_app(&crate::local::local_spec(&local));
    }
}
