//! Shared sweep artifacts: memoized, thread-safe stores for everything a
//! grid point rebuilds but that only depends on a *subset* of its config.
//!
//! Every figure is a sweep where only the EF profile `(token_rate,
//! bucket_depth)` varies, yet the scene model depends only on the clip,
//! an encoding only on `(clip, rate)`, and the reference feature stream
//! only on `(clip, codec, rate)`. Design decision 4 makes every run a
//! pure function of its config, so these artifacts are pure functions of
//! their keys — computing each **exactly once per process** and sharing
//! the result via `Arc` across all `rates × depths` points (and across
//! parallel workers) cannot change a single output byte.
//!
//! The keying rule is the same as the runner's result cache: **the
//! address is the config fields the artifact depends on**. There is no
//! other invalidation — a key change is a different artifact, and code
//! changes require a process restart (just like `results/cache/` requires
//! a `DSV_CACHE=0` rerun after simulator changes).
//!
//! `DSV_SHARE=0` disables sharing (every call recomputes), which is how
//! the macro-bench measures the honest before/after; the per-key encode
//! counters are always on so tests can assert the at-most-once property.

use std::collections::HashMap;
use std::sync::{Arc, Mutex, OnceLock};

use dsv_media::encoder::{mpeg1, wmv, EncodedClip};
use dsv_media::features::FeatureFrame;
use dsv_media::scene::{ClipId, SceneModel};

use crate::experiment::encoded_features;

/// Which encoder produced an artifact (part of the memo key).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Codec {
    /// The CBR MPEG-1 encoder (QBone/AF testbeds).
    Mpeg1,
    /// The capped WMV encoder (local testbed).
    Wmv,
}

/// One memo cell: workers asking for an in-flight key block on the
/// `OnceLock` instead of racing duplicate computations — this is what
/// makes the "encodes at most once" property deterministic rather than
/// best-effort.
type MemoCell<V> = Arc<OnceLock<Arc<V>>>;

/// A memoized, thread-safe `key -> Arc<value>` store. The map is
/// `Option`-wrapped because `HashMap::new` is not `const`.
struct Memo<K, V> {
    map: Mutex<Option<HashMap<K, MemoCell<V>>>>,
}

impl<K: std::hash::Hash + Eq + Clone, V> Memo<K, V> {
    const fn new() -> Memo<K, V> {
        Memo {
            map: Mutex::new(None),
        }
    }

    fn get_or(&self, key: K, compute: impl FnOnce() -> V) -> Arc<V> {
        if !sharing_enabled() {
            return Arc::new(compute());
        }
        let cell = {
            let mut map = self.map.lock().expect("artifact store poisoned");
            map.get_or_insert_with(HashMap::new)
                .entry(key)
                .or_default()
                .clone()
        };
        cell.get_or_init(|| Arc::new(compute())).clone()
    }

    fn clear(&self) {
        *self.map.lock().expect("artifact store poisoned") = None;
    }
}

static MODELS: Memo<ClipId, SceneModel> = Memo::new();
static SOURCE_FEATURES: Memo<ClipId, Vec<FeatureFrame>> = Memo::new();
static ENCODINGS: Memo<(ClipId, Codec, u64), EncodedClip> = Memo::new();
static REFERENCES: Memo<(ClipId, Codec, u64), Vec<FeatureFrame>> = Memo::new();

/// Key identifying one encoding: `(clip, codec, rate_bps)`.
type EncodeKey = (ClipId, Codec, u64);

/// Cumulative number of times each `(clip, codec, rate)` encoding was
/// actually computed (not served from the store). Test instrumentation
/// for the at-most-once property; never reset.
static ENCODE_RUNS: Mutex<Option<HashMap<EncodeKey, u64>>> = Mutex::new(None);

fn count_encode(key: (ClipId, Codec, u64)) {
    let mut runs = ENCODE_RUNS.lock().expect("encode counter poisoned");
    *runs
        .get_or_insert_with(HashMap::new)
        .entry(key)
        .or_insert(0) += 1;
}

/// How many times `(clip, codec, rate)` was encoded from scratch in this
/// process. With sharing enabled this is at most 1 per key.
pub fn encode_runs(clip: ClipId, codec: Codec, rate_bps: u64) -> u64 {
    ENCODE_RUNS
        .lock()
        .expect("encode counter poisoned")
        .as_ref()
        .and_then(|m| m.get(&(clip, codec, rate_bps)).copied())
        .unwrap_or(0)
}

/// Sharing switch: on unless `DSV_SHARE=0` (or a test override is live).
fn sharing_enabled() -> bool {
    match SHARING_OVERRIDE
        .lock()
        .expect("sharing override poisoned")
        .1
    {
        Some(forced) => forced,
        None => std::env::var("DSV_SHARE").map_or(true, |v| v.trim() != "0"),
    }
}

/// (guard-holder marker, forced value). The marker mutex serializes test
/// scopes; the value rides in the same lock so reads are consistent.
#[allow(clippy::type_complexity)]
static SHARING_OVERRIDE: Mutex<((), Option<bool>)> = Mutex::new(((), None));
static OVERRIDE_SCOPE: Mutex<()> = Mutex::new(());

/// RAII scope that forces sharing on/off process-wide. Scopes are
/// serialized by a global lock, so concurrent tests cannot interleave
/// overrides. Intended for tests and the macro-bench.
pub struct SharingScope {
    _scope: std::sync::MutexGuard<'static, ()>,
}

impl Drop for SharingScope {
    fn drop(&mut self) {
        SHARING_OVERRIDE
            .lock()
            .expect("sharing override poisoned")
            .1 = None;
    }
}

/// Force sharing on or off until the returned guard drops.
pub fn force_sharing(enabled: bool) -> SharingScope {
    let scope = OVERRIDE_SCOPE
        .lock()
        .unwrap_or_else(|poisoned| poisoned.into_inner());
    SHARING_OVERRIDE
        .lock()
        .expect("sharing override poisoned")
        .1 = Some(enabled);
    SharingScope { _scope: scope }
}

/// Drop every memoized artifact (the counters survive). The macro-bench
/// uses this to measure a cold store in a warm process.
pub fn clear() {
    MODELS.clear();
    SOURCE_FEATURES.clear();
    ENCODINGS.clear();
    REFERENCES.clear();
}

/// The scene model for a clip (depends on: clip).
pub fn model(clip: ClipId) -> Arc<SceneModel> {
    MODELS.get_or(clip, || clip.model())
}

/// The per-frame source features of a clip (depends on: clip).
pub fn source_features(clip: ClipId) -> Arc<Vec<FeatureFrame>> {
    let m = model(clip);
    SOURCE_FEATURES.get_or(clip, || m.source_features())
}

/// An encoding of `clip` at `rate_bps` (depends on: clip, codec, rate).
pub fn encoding(clip: ClipId, codec: Codec, rate_bps: u64) -> Arc<EncodedClip> {
    let m = model(clip);
    ENCODINGS.get_or((clip, codec, rate_bps), || {
        count_encode((clip, codec, rate_bps));
        match codec {
            Codec::Mpeg1 => mpeg1::encode(&m, rate_bps),
            Codec::Wmv => wmv::encode(&m, rate_bps),
        }
    })
}

/// The memoized artifact store, as the scenario compiler's clip
/// resolver: every `MediaRef` in a [`dsv_scenario::ScenarioSpec`] lowers
/// through [`encoding`], so compiling a spec costs nothing beyond the
/// first (shared) encode of each `(clip, codec, rate)` key.
pub struct ArtifactStore;

impl dsv_scenario::ClipStore for ArtifactStore {
    fn encoding(
        &self,
        clip: dsv_scenario::ClipId2,
        codec: dsv_scenario::CodecSpec,
        rate_bps: u64,
    ) -> Arc<EncodedClip> {
        let codec = match codec {
            dsv_scenario::CodecSpec::Mpeg1 => Codec::Mpeg1,
            dsv_scenario::CodecSpec::Wmv => Codec::Wmv,
        };
        encoding(clip.into(), codec, rate_bps)
    }
}

/// The decoded feature stream of an encoding — the VQM reference for that
/// encoding (depends on: clip, codec, rate). This is the artifact that
/// `score_vs_best` runs share: the 1.7 Mbps reference is computed once,
/// not once per grid point.
pub fn reference_features(clip: ClipId, codec: Codec, rate_bps: u64) -> Arc<Vec<FeatureFrame>> {
    let m = model(clip);
    let enc = encoding(clip, codec, rate_bps);
    REFERENCES.get_or((clip, codec, rate_bps), || encoded_features(&m, &enc))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_key_returns_the_same_arc() {
        let _guard = force_sharing(true);
        let a = encoding(ClipId::Talk, Codec::Mpeg1, 777_001);
        let b = encoding(ClipId::Talk, Codec::Mpeg1, 777_001);
        assert!(Arc::ptr_eq(&a, &b), "shared artifacts are one allocation");
        assert_eq!(encode_runs(ClipId::Talk, Codec::Mpeg1, 777_001), 1);
    }

    #[test]
    fn shared_artifacts_match_direct_computation() {
        let _guard = force_sharing(true);
        let m = ClipId::Talk.model();
        let direct = mpeg1::encode(&m, 1_050_003);
        let shared = encoding(ClipId::Talk, Codec::Mpeg1, 1_050_003);
        assert_eq!(shared.frames.len(), direct.frames.len());
        for (a, b) in shared.frames.iter().zip(&direct.frames) {
            assert_eq!(a.bytes, b.bytes);
            assert!((a.fidelity - b.fidelity).abs() == 0.0, "bit-identical");
        }
        let direct_ref = encoded_features(&m, &direct);
        let shared_ref = reference_features(ClipId::Talk, Codec::Mpeg1, 1_050_003);
        assert_eq!(direct_ref.len(), shared_ref.len());
        for (a, b) in shared_ref.iter().zip(&direct_ref) {
            assert_eq!(a.si.to_bits(), b.si.to_bits());
            assert_eq!(a.ti.to_bits(), b.ti.to_bits());
        }
    }

    #[test]
    fn disabled_sharing_recomputes_but_still_counts() {
        let _guard = force_sharing(false);
        let a = encoding(ClipId::Talk, Codec::Wmv, 321_001);
        let b = encoding(ClipId::Talk, Codec::Wmv, 321_001);
        assert!(!Arc::ptr_eq(&a, &b), "unshared calls are fresh");
        assert!(encode_runs(ClipId::Talk, Codec::Wmv, 321_001) >= 2);
    }

    #[test]
    fn models_and_features_are_shared() {
        let _guard = force_sharing(true);
        assert!(Arc::ptr_eq(&model(ClipId::Lost), &model(ClipId::Lost)));
        let f = source_features(ClipId::Lost);
        assert_eq!(f.len(), 2150);
        assert!(Arc::ptr_eq(&f, &source_features(ClipId::Lost)));
    }
}
