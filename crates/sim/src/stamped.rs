//! A time-ordered queue keyed by partition-independent event stamps.
//!
//! The serial [`crate::EventQueue`] breaks same-instant ties with a global
//! schedule counter — perfect for one queue, meaningless across several:
//! a counter's value depends on which other events happen to share the
//! queue. The sharded engine therefore orders events by an
//! [`EventStamp`] that is a pure function of the *scheduling action*
//! itself (when it was decided, by which node, as that node's how-manieth
//! decision), so any partitioning of the network produces the same
//! `(time, stamp)` total order per node.
//!
//! [`StampedQueue`] reuses both [`crate::EventQueue`] backends — the
//! hierarchical timing wheel and the binary-heap oracle — so the sharded
//! engine inherits the same `DSV_QUEUE` differential testing story.

use std::collections::BinaryHeap;

use crate::queue::{HeapEntry, QueueBackend};
use crate::time::SimTime;
use crate::wheel::{Entry, Wheel};

/// Total-order tie-break for same-instant events, independent of how the
/// network is partitioned into shards.
///
/// Ordering is lexicographic:
///
/// 1. `sched` — the virtual instant the scheduling decision was made
///    (`dispatch time + 1` ns, saturating; `0` is reserved for events
///    scheduled during setup, before the clock starts). A handler running
///    earlier schedules earlier, exactly as its schedule-counter values
///    would have been smaller in a serial run.
/// 2. `origin` — the node whose handler made the decision. Within one
///    instant, setup and symmetric topologies dispatch node handlers in
///    node-id order, so this matches the serial counter order for
///    same-instant decisions by different nodes.
/// 3. `origin_seq` — the node's own scheduling counter, incremented on
///    every decision in call order: two decisions by the same handler
///    keep their program order.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct EventStamp {
    /// Nanosecond instant of the scheduling decision, plus one (0 = setup).
    pub sched: u64,
    /// Node that made the scheduling decision.
    pub origin: u32,
    /// Per-origin decision counter, in call order.
    pub origin_seq: u64,
}

impl EventStamp {
    /// Stamp for events scheduled during setup, before any dispatch.
    /// Orders before every runtime stamp at the same instant; `origin`
    /// keeps setup order deterministic (nodes are set up in id order).
    pub fn setup(origin: u32, origin_seq: u64) -> Self {
        EventStamp {
            sched: 0,
            origin,
            origin_seq,
        }
    }
}

enum Backend<E> {
    Wheel(Wheel<E, EventStamp>),
    Heap(BinaryHeap<HeapEntry<E, EventStamp>>),
}

/// A time-ordered queue delivering `(time, stamp, event)` triples in the
/// total `(time, stamp)` order. Same backend choices (and the same
/// causality watermark) as [`crate::EventQueue`].
pub struct StampedQueue<E> {
    backend: Backend<E>,
    watermark: SimTime,
    len: usize,
    high_water: usize,
}

impl<E> StampedQueue<E> {
    /// Create an empty queue using the backend selected by `DSV_QUEUE`.
    pub fn new() -> Self {
        Self::with_backend_and_capacity(QueueBackend::from_env(), 0)
    }

    /// Create an empty queue with pre-allocated capacity (backend from
    /// `DSV_QUEUE`).
    pub fn with_capacity(cap: usize) -> Self {
        Self::with_backend_and_capacity(QueueBackend::from_env(), cap)
    }

    /// Explicit backend and pre-allocated capacity.
    pub fn with_backend_and_capacity(backend: QueueBackend, cap: usize) -> Self {
        let backend = match backend {
            QueueBackend::Wheel => Backend::Wheel(Wheel::with_capacity(cap)),
            QueueBackend::Heap => Backend::Heap(BinaryHeap::with_capacity(cap)),
        };
        StampedQueue {
            backend,
            watermark: SimTime::ZERO,
            len: 0,
            high_water: 0,
        }
    }

    /// Schedule `event` at absolute time `at` with its tie-break stamp.
    ///
    /// # Panics
    /// Panics if `at` is earlier than the last popped event's time, like
    /// [`crate::EventQueue::schedule`].
    pub fn schedule(&mut self, at: SimTime, stamp: EventStamp, event: E) {
        assert!(
            at >= self.watermark,
            "causality violation: scheduling an event at {at} but the queue \
             already delivered an event at {} (stamp {stamp:?})",
            self.watermark,
        );
        let entry = Entry {
            at,
            key: stamp,
            event,
        };
        match &mut self.backend {
            Backend::Wheel(w) => w.schedule(entry),
            Backend::Heap(h) => h.push(HeapEntry(entry)),
        }
        self.len += 1;
        if self.len > self.high_water {
            self.high_water = self.len;
        }
    }

    /// Remove and return the earliest event iff it is at or before
    /// `horizon` (inclusive), with its stamp.
    pub fn pop_at_or_before(&mut self, horizon: SimTime) -> Option<(SimTime, EventStamp, E)> {
        let entry = match &mut self.backend {
            Backend::Wheel(w) => w.pop_at_or_before(horizon)?,
            Backend::Heap(h) => {
                if h.peek()?.0.at > horizon {
                    return None;
                }
                h.pop().expect("peeked entry exists").0
            }
        };
        debug_assert!(entry.at >= self.watermark);
        self.watermark = entry.at;
        self.len -= 1;
        Some((entry.at, entry.key, entry.event))
    }

    /// The timestamp of the next event without removing it.
    pub fn peek_time(&self) -> Option<SimTime> {
        match &self.backend {
            Backend::Wheel(w) => w.peek(),
            Backend::Heap(h) => h.peek().map(|e| e.0.at),
        }
    }

    /// Number of pending events.
    pub fn len(&self) -> usize {
        self.len
    }

    /// True if no events are pending.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// The time of the most recently delivered event.
    pub fn now(&self) -> SimTime {
        self.watermark
    }

    /// Largest number of simultaneously pending events ever observed.
    pub fn high_water(&self) -> usize {
        self.high_water
    }
}

impl<E> Default for StampedQueue<E> {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn stamp(sched: u64, origin: u32, seq: u64) -> EventStamp {
        EventStamp {
            sched,
            origin,
            origin_seq: seq,
        }
    }

    fn on_both(f: impl Fn(StampedQueue<u32>)) {
        f(StampedQueue::with_backend_and_capacity(
            QueueBackend::Wheel,
            0,
        ));
        f(StampedQueue::with_backend_and_capacity(
            QueueBackend::Heap,
            0,
        ));
    }

    #[test]
    fn orders_by_time_then_stamp() {
        on_both(|mut q| {
            let t = SimTime::from_millis(1);
            // Same instant, stamps deliberately scheduled out of order.
            q.schedule(t, stamp(5, 0, 0), 2);
            q.schedule(t, stamp(3, 9, 7), 1);
            q.schedule(t, stamp(5, 0, 1), 3);
            q.schedule(SimTime::from_micros(1), stamp(9, 9, 9), 0);
            q.schedule(t, stamp(5, 1, 0), 4);
            let mut got = Vec::new();
            while let Some((_, _, v)) = q.pop_at_or_before(SimTime::MAX) {
                got.push(v);
            }
            assert_eq!(got, vec![0, 1, 2, 3, 4]);
        });
    }

    #[test]
    fn setup_stamps_order_before_runtime_ones() {
        on_both(|mut q| {
            let t = SimTime::ZERO;
            q.schedule(t, stamp(1, 0, 0), 1); // decided while handling t=0
            q.schedule(t, EventStamp::setup(3, 0), 0); // decided during setup
            assert_eq!(q.pop_at_or_before(t).unwrap().2, 0);
            assert_eq!(q.pop_at_or_before(t).unwrap().2, 1);
        });
    }

    #[test]
    fn horizon_is_inclusive_and_state_tracks() {
        on_both(|mut q| {
            assert!(q.is_empty());
            q.schedule(SimTime::from_millis(10), stamp(1, 0, 0), 1);
            q.schedule(SimTime::from_millis(20), stamp(1, 0, 1), 2);
            assert_eq!(q.peek_time(), Some(SimTime::from_millis(10)));
            assert_eq!(q.len(), 2);
            assert_eq!(q.high_water(), 2);
            let h = SimTime::from_millis(10);
            assert_eq!(q.pop_at_or_before(h).map(|(_, _, v)| v), Some(1));
            assert_eq!(q.pop_at_or_before(h), None);
            assert_eq!(q.now(), SimTime::from_millis(10));
            assert_eq!(q.len(), 1);
        });
    }

    #[test]
    #[should_panic(expected = "causality violation")]
    fn scheduling_into_past_panics() {
        let mut q = StampedQueue::new();
        q.schedule(SimTime::from_secs(1), stamp(1, 0, 0), ());
        q.pop_at_or_before(SimTime::MAX);
        q.schedule(SimTime::from_millis(1), stamp(2, 0, 1), ());
    }

    /// Differential: both backends produce identical sequences on a
    /// pseudo-random workload with heavy stamp ties.
    #[test]
    fn backends_agree_on_random_workload() {
        let mut wheel = StampedQueue::with_backend_and_capacity(QueueBackend::Wheel, 0);
        let mut heap = StampedQueue::with_backend_and_capacity(QueueBackend::Heap, 0);
        let mut x = 0x2545_f491_4f6c_dd1du64;
        let mut rnd = || {
            x ^= x << 13;
            x ^= x >> 7;
            x ^= x << 17;
            x
        };
        let mut pending = Vec::new();
        for i in 0..5_000u32 {
            let at = SimTime::from_nanos(rnd() % 50_000_000);
            let s = stamp(rnd() % 16, (rnd() % 4) as u32, i as u64);
            pending.push((at, s, i));
        }
        for &(at, s, v) in &pending {
            wheel.schedule(at, s, v);
            heap.schedule(at, s, v);
        }
        loop {
            let a = wheel.pop_at_or_before(SimTime::MAX);
            let b = heap.pop_at_or_before(SimTime::MAX);
            assert_eq!(a, b);
            if a.is_none() {
                break;
            }
        }
    }
}
