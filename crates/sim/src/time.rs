//! Virtual time: nanosecond-resolution instants and durations.
//!
//! All time in the workspace is virtual. [`SimTime`] is an absolute instant
//! measured from the start of the simulation; [`SimDuration`] is a span.
//! Both wrap a `u64` count of nanoseconds, which covers simulations of
//! roughly 584 years — comfortably more than a 150-second video clip.
//!
//! Rates are expressed in bits per second throughout the workspace (the
//! paper's token rates and encoding rates are all quoted in bps), and the
//! conversion helpers here ([`SimDuration::for_bytes_at_bps`],
//! [`SimTime::advance_bytes`]) are the single place where bytes, bits and
//! time meet, so rounding behaviour is consistent everywhere.

use std::fmt;
use std::ops::{Add, AddAssign, Div, Mul, Sub, SubAssign};

/// Nanoseconds in one second.
pub const NANOS_PER_SEC: u64 = 1_000_000_000;

/// An absolute instant of virtual time, in nanoseconds since simulation start.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SimTime(u64);

/// A span of virtual time, in nanoseconds.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SimDuration(u64);

impl SimTime {
    /// The simulation epoch (t = 0).
    pub const ZERO: SimTime = SimTime(0);
    /// The greatest representable instant; used as an "infinite" horizon.
    pub const MAX: SimTime = SimTime(u64::MAX);

    /// Construct from raw nanoseconds.
    #[inline]
    pub const fn from_nanos(ns: u64) -> Self {
        SimTime(ns)
    }

    /// Construct from whole microseconds.
    #[inline]
    pub const fn from_micros(us: u64) -> Self {
        SimTime(us * 1_000)
    }

    /// Construct from whole milliseconds.
    #[inline]
    pub const fn from_millis(ms: u64) -> Self {
        SimTime(ms * 1_000_000)
    }

    /// Construct from whole seconds.
    #[inline]
    pub const fn from_secs(s: u64) -> Self {
        SimTime(s * NANOS_PER_SEC)
    }

    /// Construct from fractional seconds. Panics on negative or non-finite
    /// input: virtual time never runs backwards.
    #[inline]
    pub fn from_secs_f64(s: f64) -> Self {
        assert!(s.is_finite() && s >= 0.0, "invalid time {s}");
        SimTime((s * NANOS_PER_SEC as f64).round() as u64)
    }

    /// Raw nanosecond count.
    #[inline]
    pub const fn as_nanos(self) -> u64 {
        self.0
    }

    /// This instant as fractional seconds.
    #[inline]
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / NANOS_PER_SEC as f64
    }

    /// Elapsed time since `earlier`, saturating to zero if `earlier` is later.
    #[inline]
    pub fn saturating_since(self, earlier: SimTime) -> SimDuration {
        SimDuration(self.0.saturating_sub(earlier.0))
    }

    /// Checked difference: `None` if `earlier` is after `self`.
    #[inline]
    pub fn checked_since(self, earlier: SimTime) -> Option<SimDuration> {
        self.0.checked_sub(earlier.0).map(SimDuration)
    }

    /// The instant after transmitting `bytes` at `bps` bits per second,
    /// starting at `self`. Saturates rather than overflowing.
    #[inline]
    pub fn advance_bytes(self, bytes: u64, bps: u64) -> SimTime {
        self + SimDuration::for_bytes_at_bps(bytes, bps)
    }

    /// Midpoint between two instants (used by analysis helpers when
    /// bisecting for quality cutoffs).
    #[inline]
    pub fn midpoint(self, other: SimTime) -> SimTime {
        SimTime(self.0 / 2 + other.0 / 2 + (self.0 & other.0 & 1))
    }
}

impl SimDuration {
    /// Zero-length span.
    pub const ZERO: SimDuration = SimDuration(0);
    /// Largest representable span.
    pub const MAX: SimDuration = SimDuration(u64::MAX);

    /// Construct from raw nanoseconds.
    #[inline]
    pub const fn from_nanos(ns: u64) -> Self {
        SimDuration(ns)
    }

    /// Construct from whole microseconds.
    #[inline]
    pub const fn from_micros(us: u64) -> Self {
        SimDuration(us * 1_000)
    }

    /// Construct from whole milliseconds.
    #[inline]
    pub const fn from_millis(ms: u64) -> Self {
        SimDuration(ms * 1_000_000)
    }

    /// Construct from whole seconds.
    #[inline]
    pub const fn from_secs(s: u64) -> Self {
        SimDuration(s * NANOS_PER_SEC)
    }

    /// Construct from fractional seconds. Panics on negative or non-finite
    /// input.
    #[inline]
    pub fn from_secs_f64(s: f64) -> Self {
        assert!(s.is_finite() && s >= 0.0, "invalid duration {s}");
        SimDuration((s * NANOS_PER_SEC as f64).round() as u64)
    }

    /// Raw nanosecond count.
    #[inline]
    pub const fn as_nanos(self) -> u64 {
        self.0
    }

    /// This span as fractional seconds.
    #[inline]
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / NANOS_PER_SEC as f64
    }

    /// This span as fractional milliseconds.
    #[inline]
    pub fn as_millis_f64(self) -> f64 {
        self.0 as f64 / 1_000_000.0
    }

    /// True if the span is zero.
    #[inline]
    pub const fn is_zero(self) -> bool {
        self.0 == 0
    }

    /// Serialization time of `bytes` bytes at `bps` bits per second,
    /// rounded up to the next nanosecond so that link capacity is never
    /// overstated. A rate of zero yields [`SimDuration::MAX`] (a stalled
    /// link), which callers treat as "never".
    #[inline]
    pub fn for_bytes_at_bps(bytes: u64, bps: u64) -> SimDuration {
        if bps == 0 {
            return SimDuration::MAX;
        }
        let bits = (bytes as u128) * 8;
        let ns = (bits * NANOS_PER_SEC as u128).div_ceil(bps as u128);
        SimDuration(u64::try_from(ns).unwrap_or(u64::MAX))
    }

    /// The number of whole bytes worth of credit accumulated over this span
    /// at `bps` bits per second (rounded down: credit is never invented).
    #[inline]
    pub fn bytes_at_bps(self, bps: u64) -> u64 {
        let bits = (self.0 as u128) * (bps as u128) / NANOS_PER_SEC as u128;
        u64::try_from(bits / 8).unwrap_or(u64::MAX)
    }

    /// Multiply by an integer factor, saturating.
    #[inline]
    pub fn saturating_mul(self, k: u64) -> SimDuration {
        SimDuration(self.0.saturating_mul(k))
    }
}

impl Add<SimDuration> for SimTime {
    type Output = SimTime;
    #[inline]
    fn add(self, rhs: SimDuration) -> SimTime {
        SimTime(self.0.saturating_add(rhs.0))
    }
}

impl AddAssign<SimDuration> for SimTime {
    #[inline]
    fn add_assign(&mut self, rhs: SimDuration) {
        *self = *self + rhs;
    }
}

impl Sub<SimDuration> for SimTime {
    type Output = SimTime;
    #[inline]
    fn sub(self, rhs: SimDuration) -> SimTime {
        SimTime(self.0.saturating_sub(rhs.0))
    }
}

impl Sub<SimTime> for SimTime {
    type Output = SimDuration;
    /// Panics if `rhs` is after `self`; use [`SimTime::saturating_since`]
    /// when the ordering is not guaranteed.
    #[inline]
    fn sub(self, rhs: SimTime) -> SimDuration {
        SimDuration(
            self.0
                .checked_sub(rhs.0)
                .expect("SimTime subtraction underflow"),
        )
    }
}

impl Add for SimDuration {
    type Output = SimDuration;
    #[inline]
    fn add(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0.saturating_add(rhs.0))
    }
}

impl AddAssign for SimDuration {
    #[inline]
    fn add_assign(&mut self, rhs: SimDuration) {
        *self = *self + rhs;
    }
}

impl Sub for SimDuration {
    type Output = SimDuration;
    #[inline]
    fn sub(self, rhs: SimDuration) -> SimDuration {
        SimDuration(
            self.0
                .checked_sub(rhs.0)
                .expect("SimDuration subtraction underflow"),
        )
    }
}

impl SubAssign for SimDuration {
    #[inline]
    fn sub_assign(&mut self, rhs: SimDuration) {
        *self = *self - rhs;
    }
}

impl Mul<u64> for SimDuration {
    type Output = SimDuration;
    #[inline]
    fn mul(self, rhs: u64) -> SimDuration {
        SimDuration(self.0.saturating_mul(rhs))
    }
}

impl Div<u64> for SimDuration {
    type Output = SimDuration;
    #[inline]
    fn div(self, rhs: u64) -> SimDuration {
        SimDuration(self.0 / rhs)
    }
}

impl fmt::Debug for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "t={:.6}s", self.as_secs_f64())
    }
}

impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.6}s", self.as_secs_f64())
    }
}

impl fmt::Debug for SimDuration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.6}s", self.as_secs_f64())
    }
}

impl fmt::Display for SimDuration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.6}s", self.as_secs_f64())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_roundtrips() {
        assert_eq!(SimTime::from_secs(2).as_nanos(), 2 * NANOS_PER_SEC);
        assert_eq!(SimTime::from_millis(1500).as_secs_f64(), 1.5);
        assert_eq!(SimTime::from_micros(7).as_nanos(), 7_000);
        assert_eq!(SimDuration::from_secs_f64(0.25).as_millis_f64(), 250.0);
    }

    #[test]
    fn arithmetic() {
        let t = SimTime::from_millis(10) + SimDuration::from_millis(5);
        assert_eq!(t, SimTime::from_millis(15));
        assert_eq!(t - SimTime::from_millis(5), SimDuration::from_millis(10));
        assert_eq!(t.saturating_since(SimTime::from_secs(1)), SimDuration::ZERO);
        assert_eq!(t.checked_since(SimTime::from_secs(1)), None);
    }

    #[test]
    #[should_panic(expected = "underflow")]
    fn instant_subtraction_underflow_panics() {
        let _ = SimTime::from_millis(1) - SimTime::from_millis(2);
    }

    #[test]
    fn serialization_time_rounds_up() {
        // 1500 bytes at 12 kbps = exactly 1 s.
        assert_eq!(
            SimDuration::for_bytes_at_bps(1500, 12_000),
            SimDuration::from_secs(1)
        );
        // 1 byte at 1 Gbps = 8 ns exactly.
        assert_eq!(
            SimDuration::for_bytes_at_bps(1, 1_000_000_000),
            SimDuration::from_nanos(8)
        );
        // Non-divisible case rounds up: 1 byte at 3 bps = 8/3 s -> ceil.
        let d = SimDuration::for_bytes_at_bps(1, 3);
        assert_eq!(d.as_nanos(), (8 * NANOS_PER_SEC).div_ceil(3));
    }

    #[test]
    fn zero_rate_never_completes() {
        assert_eq!(SimDuration::for_bytes_at_bps(1, 0), SimDuration::MAX);
    }

    #[test]
    fn credit_accumulation_rounds_down() {
        // 1 ms at 1 Mbps = 1000 bits = 125 bytes.
        assert_eq!(SimDuration::from_millis(1).bytes_at_bps(1_000_000), 125);
        // 1 ns at 1 bps = essentially nothing.
        assert_eq!(SimDuration::from_nanos(1).bytes_at_bps(1), 0);
    }

    #[test]
    fn credit_and_serialization_are_inverse_within_rounding() {
        for &(bytes, bps) in &[(1500u64, 2_000_000u64), (40, 64_000), (9000, 1_700_000)] {
            let d = SimDuration::for_bytes_at_bps(bytes, bps);
            let back = d.bytes_at_bps(bps);
            assert!(back >= bytes, "{back} < {bytes}");
            assert!(back <= bytes + 1, "{back} > {bytes}+1");
        }
    }

    #[test]
    fn advance_bytes() {
        let t0 = SimTime::from_secs(1);
        assert_eq!(t0.advance_bytes(1500, 12_000), SimTime::from_secs(2),);
    }

    #[test]
    fn display_formats() {
        assert_eq!(format!("{}", SimTime::from_millis(1500)), "1.500000s");
        assert_eq!(format!("{:?}", SimDuration::from_millis(2)), "0.002000s");
    }
}
