//! Shared parsing for numeric `DSV_*` environment knobs.
//!
//! `DSV_THREADS` and `DSV_SHARDS` are positive counts. Misconfiguration
//! must never panic a long sweep or silently serialize it: `0`, empty, or
//! garbage values fall back to the caller's documented default with a
//! warning on stderr. (`DSV_QUEUE` deliberately keeps its panic-on-typo
//! behaviour — a silently wrong backend would make perf comparisons lie;
//! a silently default thread count merely changes wall-clock time.)

/// Parse a raw environment value as a positive count.
///
/// Returns the count, or a human-readable reason the value is unusable.
/// Pure (no environment access, no I/O) so the policy is unit-testable.
pub fn parse_count(raw: &str) -> Result<usize, &'static str> {
    let t = raw.trim();
    if t.is_empty() {
        return Err("value is empty");
    }
    match t.parse::<usize>() {
        Ok(0) => Err("count must be at least 1"),
        Ok(n) => Ok(n),
        Err(_) => Err("not a positive integer"),
    }
}

/// Read a positive count from the environment variable `var`.
///
/// Unset means `default` (silently); set-but-unusable (`0`, empty,
/// garbage) also means `default`, with a one-line warning on stderr so a
/// typo in a sweep script is visible instead of silently serializing.
pub fn count_from_env(var: &str, default: usize) -> usize {
    match std::env::var(var) {
        Err(_) => default,
        Ok(v) => match parse_count(&v) {
            Ok(n) => n,
            Err(why) => {
                eprintln!("warning: ignoring {var}={v:?} ({why}); using default {default}");
                default
            }
        },
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn valid_counts_parse() {
        assert_eq!(parse_count("1"), Ok(1));
        assert_eq!(parse_count("8"), Ok(8));
        assert_eq!(parse_count(" 16 "), Ok(16));
    }

    #[test]
    fn zero_empty_and_garbage_are_rejected_with_reasons() {
        assert_eq!(parse_count("0"), Err("count must be at least 1"));
        assert_eq!(parse_count(""), Err("value is empty"));
        assert_eq!(parse_count("   "), Err("value is empty"));
        assert_eq!(parse_count("banana"), Err("not a positive integer"));
        assert_eq!(parse_count("-3"), Err("not a positive integer"));
        assert_eq!(parse_count("2.5"), Err("not a positive integer"));
        assert_eq!(parse_count("1e3"), Err("not a positive integer"));
    }

    #[test]
    fn env_fallback_uses_default() {
        // Unset: default, no warning path involved.
        std::env::remove_var("DSV_TEST_COUNT_UNSET");
        assert_eq!(count_from_env("DSV_TEST_COUNT_UNSET", 4), 4);
        // Set but unusable: default (warning goes to stderr).
        std::env::set_var("DSV_TEST_COUNT_BAD", "zero");
        assert_eq!(count_from_env("DSV_TEST_COUNT_BAD", 4), 4);
        std::env::set_var("DSV_TEST_COUNT_ZERO", "0");
        assert_eq!(count_from_env("DSV_TEST_COUNT_ZERO", 4), 4);
        // Set and valid: the value.
        std::env::set_var("DSV_TEST_COUNT_OK", "7");
        assert_eq!(count_from_env("DSV_TEST_COUNT_OK", 4), 7);
    }
}
