//! The dispatch loop.
//!
//! A simulation is a [`World`] — a state machine that consumes timestamped
//! events and may schedule more — plus an [`EventQueue`]. The [`run`] /
//! [`run_until`] functions drain the queue, dispatching each event to the
//! world at its scheduled time.
//!
//! This deliberately mirrors the poll-based structure of event-driven
//! network stacks: components never block and never own threads; all
//! interleaving is explicit in the queue.

use crate::queue::EventQueue;
use crate::time::SimTime;

/// A simulation world: the owner of all component state.
pub trait World {
    /// The event alphabet of this world.
    type Event;

    /// Handle one event at its scheduled time. New events may be scheduled
    /// on `queue` at any time `>= now`.
    fn handle(&mut self, now: SimTime, event: Self::Event, queue: &mut EventQueue<Self::Event>);
}

/// Statistics returned by the dispatch loop.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RunStats {
    /// Number of events dispatched.
    pub dispatched: u64,
    /// Virtual time of the last dispatched event (or `ZERO` if none).
    pub end_time: SimTime,
    /// True if the run stopped because the horizon was reached rather than
    /// because the queue drained.
    pub hit_horizon: bool,
    /// Events checked by the compiled-in audit oracles during this run.
    /// Always `0` when the `audit` feature is compiled out or `DSV_AUDIT`
    /// is not enabled — a nonzero value is positive proof the run was
    /// actually audited (sweep harnesses assert on it so a misconfigured
    /// audit pass cannot silently audit nothing).
    pub audit_events: u64,
}

/// Run until the event queue is empty.
pub fn run<W: World>(world: &mut W, queue: &mut EventQueue<W::Event>) -> RunStats {
    run_until(world, queue, SimTime::MAX)
}

/// Run until the queue is empty or the next event is strictly after
/// `horizon`. Events scheduled exactly at the horizon are dispatched.
///
/// The loop uses [`EventQueue::pop_at_or_before`] — a fused peek + pop —
/// so each dispatched event costs one queue operation, not two.
pub fn run_until<W: World>(
    world: &mut W,
    queue: &mut EventQueue<W::Event>,
    horizon: SimTime,
) -> RunStats {
    let mut dispatched = 0u64;
    let mut end_time = SimTime::ZERO;
    #[cfg(feature = "audit")]
    let mut audit_events = 0u64;
    #[cfg(not(feature = "audit"))]
    let audit_events = 0u64;
    #[cfg(feature = "audit")]
    let audit_on = crate::audit::runtime_enabled();
    while let Some((now, ev)) = queue.pop_at_or_before(horizon) {
        // Causality oracle: the queue must hand events back in
        // non-decreasing time order (the per-backend ordering contract the
        // differential tests check from outside, re-checked here from
        // inside every audited run).
        #[cfg(feature = "audit")]
        if audit_on {
            assert!(
                now >= end_time,
                "audit: dispatch time went backwards: {now:?} after {end_time:?}"
            );
            audit_events += 1;
        }
        world.handle(now, ev, queue);
        dispatched += 1;
        end_time = now;
    }
    RunStats {
        dispatched,
        end_time,
        // The loop exits either because the queue drained or because the
        // remaining events are all after the horizon.
        hit_horizon: !queue.is_empty(),
        audit_events,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::time::SimDuration;

    /// A world that re-schedules itself `remaining` times at a fixed period
    /// and records every delivery.
    struct Ticker {
        period: SimDuration,
        remaining: u32,
        log: Vec<SimTime>,
    }

    impl World for Ticker {
        type Event = ();
        fn handle(&mut self, now: SimTime, _ev: (), q: &mut EventQueue<()>) {
            self.log.push(now);
            if self.remaining > 0 {
                self.remaining -= 1;
                q.schedule(now + self.period, ());
            }
        }
    }

    #[test]
    fn runs_to_completion() {
        let mut w = Ticker {
            period: SimDuration::from_millis(10),
            remaining: 9,
            log: vec![],
        };
        let mut q = EventQueue::new();
        q.schedule(SimTime::ZERO, ());
        let stats = run(&mut w, &mut q);
        assert_eq!(stats.dispatched, 10);
        assert!(!stats.hit_horizon);
        assert_eq!(stats.end_time, SimTime::from_millis(90));
        assert_eq!(w.log.len(), 10);
        assert_eq!(w.log[3], SimTime::from_millis(30));
    }

    #[test]
    fn horizon_is_inclusive() {
        let mut w = Ticker {
            period: SimDuration::from_millis(10),
            remaining: 100,
            log: vec![],
        };
        let mut q = EventQueue::new();
        q.schedule(SimTime::ZERO, ());
        let stats = run_until(&mut w, &mut q, SimTime::from_millis(50));
        assert!(stats.hit_horizon);
        // Events at 0,10,20,30,40,50 fire; the one at 60 does not.
        assert_eq!(w.log.len(), 6);
        assert_eq!(*w.log.last().unwrap(), SimTime::from_millis(50));
        // The pending event is still queued.
        assert_eq!(q.peek_time(), Some(SimTime::from_millis(60)));
    }

    #[test]
    fn empty_queue_returns_immediately() {
        let mut w = Ticker {
            period: SimDuration::from_millis(1),
            remaining: 0,
            log: vec![],
        };
        let mut q = EventQueue::new();
        let stats = run(&mut w, &mut q);
        assert_eq!(stats.dispatched, 0);
        assert_eq!(stats.end_time, SimTime::ZERO);
    }

    #[test]
    fn resume_after_horizon_continues_cleanly() {
        let mut w = Ticker {
            period: SimDuration::from_millis(10),
            remaining: 5,
            log: vec![],
        };
        let mut q = EventQueue::new();
        q.schedule(SimTime::ZERO, ());
        run_until(&mut w, &mut q, SimTime::from_millis(25));
        let stats = run(&mut w, &mut q);
        assert_eq!(w.log.len(), 6);
        assert_eq!(stats.end_time, SimTime::from_millis(50));
    }
}
