//! # dsv-sim — deterministic discrete-event simulation core
//!
//! This crate is the foundation of the `dsv` workspace, a reproduction of the
//! SIGCOMM 2001 study *"On the Impact of Policing and Rate Guarantees in
//! Diff-Serv Networks: A Video Streaming Application Perspective"*.
//!
//! Everything above this crate (network substrate, Diff-Serv conditioning,
//! streaming servers and clients, video quality measurement) is expressed as
//! events on a single virtual clock. The design goals, in order:
//!
//! 1. **Determinism** — a simulation is a pure function of its configuration
//!    and RNG seed. Two runs with the same seed produce byte-identical packet
//!    traces and therefore identical quality scores. There is no wall clock
//!    and no OS interaction anywhere in the workspace.
//! 2. **Stability** — events scheduled for the same instant are delivered in
//!    the order they were scheduled (FIFO tie-breaking via a sequence
//!    counter), so component interleavings never depend on heap internals.
//! 3. **Simplicity** — in the spirit of event-driven stacks such as smoltcp,
//!    the engine is a time-ordered queue and a dispatch loop; components are
//!    state machines that take `now` explicitly and never block. The queue
//!    is a hierarchical timing wheel by default (`O(1)` schedule/pop for
//!    the simulator's near-future-dominated workload), with the original
//!    binary heap selectable via `DSV_QUEUE=heap` as an ordering oracle.
//!
//! The three building blocks are:
//!
//! * [`SimTime`] / [`SimDuration`] — nanosecond-resolution virtual time,
//! * [`EventQueue`] — a time-ordered queue of typed events,
//! * [`World`] and [`run`] / [`run_until`] — the dispatch loop,
//! * [`SimRng`] — a seeded random number generator with the distribution
//!   helpers the workload generators need.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

#[cfg(feature = "audit")]
pub mod audit;
pub mod engine;
pub mod env;
pub mod queue;
pub mod rng;
pub mod stamped;
pub mod time;
mod wheel;

pub use engine::{run, run_until, World};
pub use queue::{EventQueue, QueueBackend};
pub use rng::SimRng;
pub use stamped::{EventStamp, StampedQueue};
pub use time::{SimDuration, SimTime};
