//! Seeded randomness for workloads.
//!
//! Every stochastic component in the workspace (cross-traffic generators,
//! server jitter, scene synthesis) draws from a [`SimRng`] created from an
//! explicit seed, so simulations are exactly reproducible. `SimRng` also
//! provides `fork` for deriving independent per-component streams from a
//! single experiment seed without the components' draw counts interfering
//! with one another.

use rand::rngs::SmallRng;
use rand::{Rng, RngCore, SeedableRng};

/// A deterministic random number generator with distribution helpers.
#[derive(Debug, Clone)]
pub struct SimRng {
    inner: SmallRng,
}

impl SimRng {
    /// Create from a 64-bit seed.
    pub fn seed_from_u64(seed: u64) -> Self {
        SimRng {
            inner: SmallRng::seed_from_u64(seed),
        }
    }

    /// Derive an independent child generator. The child's stream is a pure
    /// function of `(parent seed and position, label)`, so adding draws to
    /// one component never perturbs another that forked with a different
    /// label.
    pub fn fork(&mut self, label: u64) -> SimRng {
        let a = self.inner.next_u64();
        // SplitMix-style mixing of the label into the derived seed.
        let mut z = a ^ label.wrapping_mul(0x9E37_79B9_7F4A_7C15);
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^= z >> 31;
        SimRng::seed_from_u64(z)
    }

    /// Uniform in `[0, 1)`.
    pub fn uniform(&mut self) -> f64 {
        self.inner.gen::<f64>()
    }

    /// Uniform in `[lo, hi)`. Panics if `lo >= hi`.
    pub fn uniform_range(&mut self, lo: f64, hi: f64) -> f64 {
        assert!(lo < hi, "empty range [{lo}, {hi})");
        lo + (hi - lo) * self.uniform()
    }

    /// Uniform integer in `[lo, hi]` inclusive.
    pub fn uniform_u64(&mut self, lo: u64, hi: u64) -> u64 {
        self.inner.gen_range(lo..=hi)
    }

    /// Bernoulli draw with probability `p` (clamped to `[0, 1]`).
    pub fn chance(&mut self, p: f64) -> bool {
        if p <= 0.0 {
            false
        } else if p >= 1.0 {
            true
        } else {
            self.uniform() < p
        }
    }

    /// Exponential variate with the given mean (used for Poisson
    /// inter-arrivals). Panics on non-positive mean.
    pub fn exponential(&mut self, mean: f64) -> f64 {
        assert!(mean > 0.0, "exponential mean must be positive");
        // Inverse-CDF with u in (0, 1].
        let u = 1.0 - self.uniform();
        -mean * u.ln()
    }

    /// Bounded Pareto variate (heavy-tailed burst sizes for cross traffic).
    /// `shape` must be positive; `lo < hi`.
    pub fn bounded_pareto(&mut self, shape: f64, lo: f64, hi: f64) -> f64 {
        assert!(shape > 0.0 && lo > 0.0 && lo < hi);
        let u = self.uniform();
        let la = lo.powf(shape);
        let ha = hi.powf(shape);
        (-(u * ha - u * la - ha) / (ha * la)).powf(-1.0 / shape)
    }

    /// Standard normal variate (Box–Muller; one draw per call, the pair's
    /// second value is discarded for simplicity).
    pub fn normal(&mut self, mean: f64, std_dev: f64) -> f64 {
        assert!(std_dev >= 0.0);
        let u1 = (1.0 - self.uniform()).max(f64::MIN_POSITIVE);
        let u2 = self.uniform();
        let z = (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos();
        mean + std_dev * z
    }

    /// Raw 64-bit draw.
    pub fn next_u64(&mut self) -> u64 {
        self.inner.next_u64()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_for_same_seed() {
        let mut a = SimRng::seed_from_u64(42);
        let mut b = SimRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn forks_are_label_dependent_and_deterministic() {
        let mut parent1 = SimRng::seed_from_u64(7);
        let mut parent2 = SimRng::seed_from_u64(7);
        let mut c1 = parent1.fork(1);
        let mut c2 = parent2.fork(1);
        assert_eq!(c1.next_u64(), c2.next_u64());

        let mut parent3 = SimRng::seed_from_u64(7);
        let mut c3 = parent3.fork(2);
        let mut parent4 = SimRng::seed_from_u64(7);
        let mut c4 = parent4.fork(1);
        assert_ne!(c3.next_u64(), c4.next_u64());
    }

    #[test]
    fn exponential_mean_is_close() {
        let mut rng = SimRng::seed_from_u64(1);
        let n = 20_000;
        let mean = 3.0;
        let sum: f64 = (0..n).map(|_| rng.exponential(mean)).sum();
        let est = sum / n as f64;
        assert!((est - mean).abs() < 0.1, "estimated mean {est}");
    }

    #[test]
    fn uniform_range_bounds() {
        let mut rng = SimRng::seed_from_u64(2);
        for _ in 0..1000 {
            let x = rng.uniform_range(2.0, 5.0);
            assert!((2.0..5.0).contains(&x));
        }
    }

    #[test]
    fn chance_extremes() {
        let mut rng = SimRng::seed_from_u64(3);
        assert!(!rng.chance(0.0));
        assert!(rng.chance(1.0));
        assert!(!rng.chance(-1.0));
        assert!(rng.chance(2.0));
    }

    #[test]
    fn bounded_pareto_stays_in_bounds() {
        let mut rng = SimRng::seed_from_u64(4);
        for _ in 0..1000 {
            let x = rng.bounded_pareto(1.2, 100.0, 10_000.0);
            assert!((100.0..=10_000.0 + 1e-6).contains(&x), "out of bounds: {x}");
        }
    }

    #[test]
    fn normal_moments_are_close() {
        let mut rng = SimRng::seed_from_u64(5);
        let n = 20_000;
        let samples: Vec<f64> = (0..n).map(|_| rng.normal(10.0, 2.0)).collect();
        let mean = samples.iter().sum::<f64>() / n as f64;
        let var = samples.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / n as f64;
        assert!((mean - 10.0).abs() < 0.1, "mean {mean}");
        assert!((var.sqrt() - 2.0).abs() < 0.1, "std {}", var.sqrt());
    }
}
