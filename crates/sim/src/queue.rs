//! The time-ordered event queue.
//!
//! [`EventQueue`] is a binary heap of `(time, sequence, event)` triples.
//! The sequence number makes ordering **total and stable**: two events
//! scheduled for the same instant are delivered in scheduling order. This is
//! what makes simulations reproducible — component interleavings never
//! depend on `BinaryHeap` internals.

use std::cmp::Ordering;
use std::collections::BinaryHeap;

use crate::time::SimTime;

struct Entry<E> {
    at: SimTime,
    seq: u64,
    event: E,
}

impl<E> PartialEq for Entry<E> {
    fn eq(&self, other: &Self) -> bool {
        self.at == other.at && self.seq == other.seq
    }
}
impl<E> Eq for Entry<E> {}

impl<E> PartialOrd for Entry<E> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl<E> Ord for Entry<E> {
    fn cmp(&self, other: &Self) -> Ordering {
        // BinaryHeap is a max-heap; invert so the earliest (time, seq) pops
        // first.
        other
            .at
            .cmp(&self.at)
            .then_with(|| other.seq.cmp(&self.seq))
    }
}

/// A time-ordered queue of events of type `E` with stable FIFO tie-breaking.
///
/// ```
/// use dsv_sim::{EventQueue, SimTime};
///
/// let mut q = EventQueue::new();
/// q.schedule(SimTime::from_millis(2), "b");
/// q.schedule(SimTime::from_millis(1), "a");
/// q.schedule(SimTime::from_millis(2), "c");
/// assert_eq!(q.pop(), Some((SimTime::from_millis(1), "a")));
/// assert_eq!(q.pop(), Some((SimTime::from_millis(2), "b")));
/// assert_eq!(q.pop(), Some((SimTime::from_millis(2), "c")));
/// assert_eq!(q.pop(), None);
/// ```
pub struct EventQueue<E> {
    heap: BinaryHeap<Entry<E>>,
    next_seq: u64,
    /// The timestamp of the most recently popped event; scheduling into the
    /// past is a logic error and panics (debug builds and release alike —
    /// a causality violation invalidates the whole run).
    watermark: SimTime,
}

impl<E> EventQueue<E> {
    /// Create an empty queue.
    pub fn new() -> Self {
        EventQueue {
            heap: BinaryHeap::new(),
            next_seq: 0,
            watermark: SimTime::ZERO,
        }
    }

    /// Create an empty queue with pre-allocated capacity.
    pub fn with_capacity(cap: usize) -> Self {
        EventQueue {
            heap: BinaryHeap::with_capacity(cap),
            next_seq: 0,
            watermark: SimTime::ZERO,
        }
    }

    /// Schedule `event` to fire at absolute time `at`.
    ///
    /// # Panics
    /// Panics if `at` is earlier than the last popped event's time — that
    /// would mean a component tried to rewrite history.
    pub fn schedule(&mut self, at: SimTime, event: E) {
        assert!(
            at >= self.watermark,
            "causality violation: scheduling at {at} before current time {}",
            self.watermark
        );
        let seq = self.next_seq;
        self.next_seq += 1;
        self.heap.push(Entry { at, seq, event });
    }

    /// Remove and return the earliest event together with its timestamp.
    pub fn pop(&mut self) -> Option<(SimTime, E)> {
        let entry = self.heap.pop()?;
        debug_assert!(entry.at >= self.watermark);
        self.watermark = entry.at;
        Some((entry.at, entry.event))
    }

    /// The timestamp of the next event without removing it.
    pub fn peek_time(&self) -> Option<SimTime> {
        self.heap.peek().map(|e| e.at)
    }

    /// Number of pending events.
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// True if no events are pending.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }

    /// The time of the most recently delivered event (the queue's notion of
    /// "now").
    pub fn now(&self) -> SimTime {
        self.watermark
    }

    /// Total number of events ever scheduled (diagnostic).
    pub fn scheduled_count(&self) -> u64 {
        self.next_seq
    }
}

impl<E> Default for EventQueue<E> {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::time::SimDuration;

    #[test]
    fn orders_by_time() {
        let mut q = EventQueue::new();
        for i in (0..100u64).rev() {
            q.schedule(SimTime::from_nanos(i * 10), i);
        }
        let mut last = SimTime::ZERO;
        let mut n = 0;
        while let Some((t, _)) = q.pop() {
            assert!(t >= last);
            last = t;
            n += 1;
        }
        assert_eq!(n, 100);
    }

    #[test]
    fn fifo_on_ties() {
        let mut q = EventQueue::new();
        let t = SimTime::from_millis(5);
        for i in 0..50 {
            q.schedule(t, i);
        }
        for i in 0..50 {
            assert_eq!(q.pop().unwrap().1, i);
        }
    }

    #[test]
    #[should_panic(expected = "causality violation")]
    fn scheduling_into_past_panics() {
        let mut q = EventQueue::new();
        q.schedule(SimTime::from_secs(1), ());
        q.pop();
        q.schedule(SimTime::from_millis(1), ());
    }

    #[test]
    fn scheduling_at_now_is_allowed() {
        let mut q = EventQueue::new();
        q.schedule(SimTime::from_secs(1), 1);
        q.pop();
        q.schedule(SimTime::from_secs(1), 2); // same instant: fine
        assert_eq!(q.pop(), Some((SimTime::from_secs(1), 2)));
    }

    #[test]
    fn peek_and_now_track_state() {
        let mut q = EventQueue::new();
        assert!(q.is_empty());
        assert_eq!(q.peek_time(), None);
        q.schedule(SimTime::from_millis(3), "x");
        assert_eq!(q.peek_time(), Some(SimTime::from_millis(3)));
        assert_eq!(q.len(), 1);
        q.pop();
        assert_eq!(q.now(), SimTime::from_millis(3));
        assert_eq!(q.scheduled_count(), 1);
    }

    #[test]
    fn interleaved_schedule_pop_is_stable() {
        // Schedule batches while draining; FIFO order must hold per instant.
        let mut q = EventQueue::new();
        let t = SimTime::from_secs(1);
        q.schedule(t, 0);
        q.schedule(t + SimDuration::from_nanos(1), 10);
        assert_eq!(q.pop().unwrap().1, 0);
        q.schedule(t + SimDuration::from_nanos(1), 11);
        assert_eq!(q.pop().unwrap().1, 10);
        assert_eq!(q.pop().unwrap().1, 11);
    }
}
