//! The time-ordered event queue.
//!
//! [`EventQueue`] delivers `(time, sequence, event)` triples in **total,
//! stable** order: events fire by ascending time, and two events scheduled
//! for the same instant are delivered in scheduling order. This is what
//! makes simulations reproducible — component interleavings never depend
//! on the container's internals.
//!
//! Two interchangeable backends implement that contract:
//!
//! * [`QueueBackend::Wheel`] (default) — a hierarchical timing wheel
//!   (see [`crate::wheel`]): `O(1)` schedule, amortized `O(1)` pop, no
//!   per-event comparisons through a heap. This is the fast path for the
//!   simulator's workload of densely clustered near-future events.
//! * [`QueueBackend::Heap`] — the original binary heap of
//!   `(time, seq, event)` triples, kept as a independently-correct oracle
//!   and selectable at runtime with `DSV_QUEUE=heap`.
//!
//! Both backends produce identical delivery sequences (property-tested in
//! `tests/queue_equivalence.rs` and asserted byte-for-byte across the
//! experiment pipeline by `pipeline_determinism` under both settings).

use std::cmp::Ordering;
use std::collections::BinaryHeap;
use std::sync::OnceLock;

use crate::time::SimTime;
use crate::wheel::{Entry, Wheel};

/// Which container implements the queue's ordering contract.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum QueueBackend {
    /// Hierarchical timing wheel (default).
    Wheel,
    /// Binary heap (the `DSV_QUEUE=heap` fallback oracle).
    Heap,
}

impl QueueBackend {
    /// The backend selected by the `DSV_QUEUE` environment variable:
    /// `wheel` (or unset/empty) and `heap` are accepted; anything else is
    /// a configuration error and panics, because silently falling back
    /// would make perf comparisons lie.
    pub fn from_env() -> QueueBackend {
        static CHOICE: OnceLock<QueueBackend> = OnceLock::new();
        *CHOICE.get_or_init(|| match std::env::var("DSV_QUEUE") {
            Err(_) => QueueBackend::Wheel,
            Ok(v) => match v.trim() {
                "" | "wheel" => QueueBackend::Wheel,
                "heap" => QueueBackend::Heap,
                other => panic!("DSV_QUEUE must be `wheel` or `heap`, got `{other}`"),
            },
        })
    }
}

/// Heap adapter shared with [`crate::stamped::StampedQueue`]: inverts the
/// `(time, key)` order so `BinaryHeap` (a max-heap) pops the earliest
/// entry first.
pub(crate) struct HeapEntry<E, K>(pub(crate) Entry<E, K>);

impl<E, K: Ord> PartialEq for HeapEntry<E, K> {
    fn eq(&self, other: &Self) -> bool {
        self.0.at == other.0.at && self.0.key == other.0.key
    }
}
impl<E, K: Ord> Eq for HeapEntry<E, K> {}

impl<E, K: Ord> PartialOrd for HeapEntry<E, K> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl<E, K: Ord> Ord for HeapEntry<E, K> {
    fn cmp(&self, other: &Self) -> Ordering {
        // BinaryHeap is a max-heap; invert so the earliest (time, key) pops
        // first.
        other
            .0
            .at
            .cmp(&self.0.at)
            .then_with(|| other.0.key.cmp(&self.0.key))
    }
}

enum Backend<E> {
    Wheel(Wheel<E, u64>),
    Heap(BinaryHeap<HeapEntry<E, u64>>),
}

/// A time-ordered queue of events of type `E` with stable FIFO tie-breaking.
///
/// ```
/// use dsv_sim::{EventQueue, SimTime};
///
/// let mut q = EventQueue::new();
/// q.schedule(SimTime::from_millis(2), "b");
/// q.schedule(SimTime::from_millis(1), "a");
/// q.schedule(SimTime::from_millis(2), "c");
/// assert_eq!(q.pop(), Some((SimTime::from_millis(1), "a")));
/// assert_eq!(q.pop(), Some((SimTime::from_millis(2), "b")));
/// assert_eq!(q.pop(), Some((SimTime::from_millis(2), "c")));
/// assert_eq!(q.pop(), None);
/// ```
pub struct EventQueue<E> {
    backend: Backend<E>,
    next_seq: u64,
    /// The timestamp of the most recently popped event; scheduling into the
    /// past is a logic error and panics (debug builds and release alike —
    /// a causality violation invalidates the whole run).
    watermark: SimTime,
    /// Pending-event count, tracked here so the schedule fast path never
    /// has to ask the backend (the wheel's answer would be a second enum
    /// dispatch per event).
    len: usize,
    /// Largest number of simultaneously pending events ever observed —
    /// the statistic that sizes [`EventQueue::with_capacity`] pre-sizing
    /// (surfaced per run through `dsv-core`'s `DSV_PROFILE=1` report).
    high_water: usize,
}

impl<E> EventQueue<E> {
    /// Create an empty queue using the backend selected by `DSV_QUEUE`
    /// (the timing wheel unless overridden).
    pub fn new() -> Self {
        Self::with_backend(QueueBackend::from_env())
    }

    /// Create an empty queue with pre-allocated capacity (backend from
    /// `DSV_QUEUE`).
    pub fn with_capacity(cap: usize) -> Self {
        Self::with_backend_and_capacity(QueueBackend::from_env(), cap)
    }

    /// Create an empty queue on an explicit backend (tests and benches
    /// compare backends regardless of the environment).
    pub fn with_backend(backend: QueueBackend) -> Self {
        Self::with_backend_and_capacity(backend, 0)
    }

    /// Explicit backend and pre-allocated capacity.
    pub fn with_backend_and_capacity(backend: QueueBackend, cap: usize) -> Self {
        let backend = match backend {
            QueueBackend::Wheel => Backend::Wheel(Wheel::with_capacity(cap)),
            QueueBackend::Heap => Backend::Heap(BinaryHeap::with_capacity(cap)),
        };
        EventQueue {
            backend,
            next_seq: 0,
            watermark: SimTime::ZERO,
            len: 0,
            high_water: 0,
        }
    }

    /// Which backend this queue runs on.
    pub fn backend(&self) -> QueueBackend {
        match self.backend {
            Backend::Wheel(_) => QueueBackend::Wheel,
            Backend::Heap(_) => QueueBackend::Heap,
        }
    }

    /// Schedule `event` to fire at absolute time `at`.
    ///
    /// # Panics
    /// Panics if `at` is earlier than the last popped event's time — that
    /// would mean a component tried to rewrite history. The message names
    /// both instants (and their difference), because a bare "causality
    /// violation" is useless when debugging a new qdisc.
    pub fn schedule(&mut self, at: SimTime, event: E) {
        if at < self.watermark {
            self.causality_panic(at);
        }
        let seq = self.next_seq;
        self.next_seq += 1;
        let entry = Entry {
            at,
            key: seq,
            event,
        };
        match &mut self.backend {
            Backend::Wheel(w) => w.schedule(entry),
            Backend::Heap(h) => h.push(HeapEntry(entry)),
        }
        self.len += 1;
        if self.len > self.high_water {
            self.high_water = self.len;
        }
    }

    #[cold]
    #[inline(never)]
    fn causality_panic(&self, at: SimTime) -> ! {
        panic!(
            "causality violation: scheduling an event at {at} but the queue \
             already delivered an event at {} (attempted timestamp is {} \
             before the watermark; seq of offending schedule: {})",
            self.watermark,
            self.watermark - at,
            self.next_seq,
        );
    }

    /// Remove and return the earliest event together with its timestamp.
    pub fn pop(&mut self) -> Option<(SimTime, E)> {
        let entry = match &mut self.backend {
            Backend::Wheel(w) => w.pop()?,
            Backend::Heap(h) => h.pop()?.0,
        };
        debug_assert!(entry.at >= self.watermark);
        self.watermark = entry.at;
        self.len -= 1;
        Some((entry.at, entry.event))
    }

    /// Fused `peek_time` + `pop`: remove and return the earliest event iff
    /// it is scheduled at or before `horizon`. One ordering decision per
    /// dispatched event instead of two — the dispatch loop's fast path.
    pub fn pop_at_or_before(&mut self, horizon: SimTime) -> Option<(SimTime, E)> {
        match &mut self.backend {
            Backend::Wheel(w) => {
                let entry = w.pop_at_or_before(horizon)?;
                debug_assert!(entry.at >= self.watermark);
                self.watermark = entry.at;
                self.len -= 1;
                Some((entry.at, entry.event))
            }
            Backend::Heap(h) => {
                if h.peek()?.0.at > horizon {
                    return None;
                }
                let entry = h.pop().expect("peeked entry exists").0;
                debug_assert!(entry.at >= self.watermark);
                self.watermark = entry.at;
                self.len -= 1;
                Some((entry.at, entry.event))
            }
        }
    }

    /// The timestamp of the next event without removing it.
    pub fn peek_time(&self) -> Option<SimTime> {
        match &self.backend {
            Backend::Wheel(w) => w.peek(),
            Backend::Heap(h) => h.peek().map(|e| e.0.at),
        }
    }

    /// Number of pending events.
    pub fn len(&self) -> usize {
        debug_assert_eq!(
            self.len,
            match &self.backend {
                Backend::Wheel(w) => w.len(),
                Backend::Heap(h) => h.len(),
            }
        );
        self.len
    }

    /// True if no events are pending.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The time of the most recently delivered event (the queue's notion of
    /// "now").
    pub fn now(&self) -> SimTime {
        self.watermark
    }

    /// Total number of events ever scheduled (diagnostic).
    pub fn scheduled_count(&self) -> u64 {
        self.next_seq
    }

    /// Declare that virtual time has reached `now` without popping an
    /// event: the watermark — the causality floor and the queue's notion
    /// of [`EventQueue::now`] — advances to `max(watermark, now)`. The
    /// sharded engine uses this after reassembling leftover events into a
    /// fresh queue, so a later `run_for` measures its span from the same
    /// instant a serial run would have reached.
    pub fn advance_to(&mut self, now: SimTime) {
        if now > self.watermark {
            self.watermark = now;
        }
    }

    /// Largest number of simultaneously pending events ever observed.
    /// Feed this back into [`EventQueue::with_capacity`] to pre-size the
    /// queue for a workload; `DSV_PROFILE=1` reports it per batch.
    pub fn high_water(&self) -> usize {
        self.high_water
    }
}

impl<E> Default for EventQueue<E> {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::time::SimDuration;

    /// Run a test closure against both backends — the ordering contract is
    /// backend-independent.
    fn on_both(f: impl Fn(EventQueue<u64>)) {
        f(EventQueue::with_backend(QueueBackend::Wheel));
        f(EventQueue::with_backend(QueueBackend::Heap));
    }

    #[test]
    fn orders_by_time() {
        on_both(|mut q| {
            for i in (0..100u64).rev() {
                q.schedule(SimTime::from_nanos(i * 10), i);
            }
            let mut last = SimTime::ZERO;
            let mut n = 0;
            while let Some((t, _)) = q.pop() {
                assert!(t >= last);
                last = t;
                n += 1;
            }
            assert_eq!(n, 100);
        });
    }

    #[test]
    fn fifo_on_ties() {
        on_both(|mut q| {
            let t = SimTime::from_millis(5);
            for i in 0..50 {
                q.schedule(t, i);
            }
            for i in 0..50 {
                assert_eq!(q.pop().unwrap().1, i);
            }
        });
    }

    #[test]
    #[should_panic(expected = "causality violation")]
    fn scheduling_into_past_panics() {
        let mut q = EventQueue::new();
        q.schedule(SimTime::from_secs(1), ());
        q.pop();
        q.schedule(SimTime::from_millis(1), ());
    }

    #[test]
    fn causality_panic_names_both_instants() {
        let result = std::panic::catch_unwind(|| {
            let mut q = EventQueue::new();
            q.schedule(SimTime::from_secs(2), ());
            q.pop();
            q.schedule(SimTime::from_millis(500), ());
        });
        let msg = *result.unwrap_err().downcast::<String>().expect("panic msg");
        assert!(msg.contains("2.000000s"), "watermark missing: {msg}");
        assert!(msg.contains("0.500000s"), "offender missing: {msg}");
        assert!(msg.contains("1.500000s"), "difference missing: {msg}");
    }

    #[test]
    fn scheduling_at_now_is_allowed() {
        on_both(|mut q| {
            q.schedule(SimTime::from_secs(1), 1);
            q.pop();
            q.schedule(SimTime::from_secs(1), 2); // same instant: fine
            assert_eq!(q.pop(), Some((SimTime::from_secs(1), 2)));
        });
    }

    #[test]
    fn peek_and_now_track_state() {
        on_both(|mut q| {
            assert!(q.is_empty());
            assert_eq!(q.peek_time(), None);
            q.schedule(SimTime::from_millis(3), 7);
            assert_eq!(q.peek_time(), Some(SimTime::from_millis(3)));
            assert_eq!(q.len(), 1);
            q.pop();
            assert_eq!(q.now(), SimTime::from_millis(3));
            assert_eq!(q.scheduled_count(), 1);
            assert_eq!(q.high_water(), 1);
        });
    }

    #[test]
    fn interleaved_schedule_pop_is_stable() {
        // Schedule batches while draining; FIFO order must hold per instant.
        on_both(|mut q| {
            let t = SimTime::from_secs(1);
            q.schedule(t, 0);
            q.schedule(t + SimDuration::from_nanos(1), 10);
            assert_eq!(q.pop().unwrap().1, 0);
            q.schedule(t + SimDuration::from_nanos(1), 11);
            assert_eq!(q.pop().unwrap().1, 10);
            assert_eq!(q.pop().unwrap().1, 11);
        });
    }

    #[test]
    fn pop_at_or_before_respects_horizon() {
        on_both(|mut q| {
            q.schedule(SimTime::from_millis(10), 1);
            q.schedule(SimTime::from_millis(20), 2);
            let h = SimTime::from_millis(10); // inclusive
            assert_eq!(q.pop_at_or_before(h), Some((SimTime::from_millis(10), 1)));
            assert_eq!(q.pop_at_or_before(h), None);
            assert_eq!(q.len(), 1); // the later event is untouched
            assert_eq!(
                q.pop_at_or_before(SimTime::MAX),
                Some((SimTime::from_millis(20), 2))
            );
            assert_eq!(q.pop_at_or_before(SimTime::MAX), None);
        });
    }

    #[test]
    fn high_water_tracks_peak_population() {
        on_both(|mut q| {
            for i in 0..32 {
                q.schedule(SimTime::from_micros(i), i);
            }
            for _ in 0..32 {
                q.pop();
            }
            q.schedule(SimTime::from_secs(1), 99);
            assert_eq!(q.high_water(), 32);
        });
    }

    #[test]
    fn backend_selection_is_explicit() {
        let q: EventQueue<()> = EventQueue::with_backend(QueueBackend::Heap);
        assert_eq!(q.backend(), QueueBackend::Heap);
        let q: EventQueue<()> = EventQueue::with_backend(QueueBackend::Wheel);
        assert_eq!(q.backend(), QueueBackend::Wheel);
    }

    #[test]
    fn max_time_sentinels_are_delivered_last() {
        on_both(|mut q| {
            q.schedule(SimTime::MAX, 1); // e.g. arrival over a stalled link
            q.schedule(SimTime::from_secs(100), 2);
            assert_eq!(q.pop().unwrap().1, 2);
            assert_eq!(q.pop(), Some((SimTime::MAX, 1)));
        });
    }
}
