//! Runtime gate shared by every compiled-in audit oracle.
//!
//! The oracles themselves live next to the state they check (`dsv-sim`'s
//! dispatch loop, `dsv-net`'s `SimAudit`, `dsv-diffserv`'s policer
//! cross-check); all of them exist only under `--features audit` and all
//! of them consult this single switch at run time. That two-level gate is
//! what lets one audit-enabled binary measure its own overhead: compile
//! the checks in, then flip them on and off per pass.
//!
//! The switch resolves, in order:
//! 1. a process-wide override set by [`set_enabled_for_process`]
//!    (used by benchmarks and the fault-injection self-tests), else
//! 2. the `DSV_AUDIT` environment variable (`1` / `true` / `on`).

use std::sync::atomic::{AtomicU8, Ordering};

/// 0 = follow `DSV_AUDIT`, 1 = forced on, 2 = forced off.
static FORCE: AtomicU8 = AtomicU8::new(0);

/// Force audits on or off for this process, overriding `DSV_AUDIT`;
/// `None` restores environment-variable control.
///
/// Benchmarks use this to compare audited and unaudited passes inside one
/// binary, and the fault-injection self-tests use it to arm the auditor
/// without mutating the process environment.
pub fn set_enabled_for_process(enabled: Option<bool>) {
    let v = match enabled {
        None => 0,
        Some(true) => 1,
        Some(false) => 2,
    };
    FORCE.store(v, Ordering::Relaxed);
}

/// Whether the compiled-in audit oracles should run right now.
///
/// Checked once per simulation run / network construction, not per event,
/// so the environment read is not on any hot path.
pub fn runtime_enabled() -> bool {
    match FORCE.load(Ordering::Relaxed) {
        1 => true,
        2 => false,
        _ => matches!(
            std::env::var("DSV_AUDIT").ok().as_deref(),
            Some("1") | Some("true") | Some("on")
        ),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn override_beats_environment() {
        set_enabled_for_process(Some(true));
        assert!(runtime_enabled());
        set_enabled_for_process(Some(false));
        assert!(!runtime_enabled());
        set_enabled_for_process(None);
    }
}
